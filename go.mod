module dynagg

go 1.24
