// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can archive one BENCH_*.json
// artifact per build and the perf trajectory of the engine can be
// tracked across pull requests without scraping logs.
//
// Usage:
//
//	go test -bench . -benchmem -benchtime 1x -run '^$' ./... | benchjson -o BENCH_results.json
//
// The parser understands the standard benchmark line format — name,
// iteration count, then (value, unit) pairs — plus the goos/goarch/
// pkg/cpu context lines the testing package prints. Unknown lines are
// ignored, so mixed test-and-bench output is fine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	doc, err := Parse(in)
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
