package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dynagg/internal/gossip
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRoundPush-4         	     100	   1407760 ns/op	  552540 B/op	       4 allocs/op
BenchmarkEngine/n=100000/push/workers=0-4  	       5	  11658897 ns/op	 6177168 B/op	       6 allocs/op
PASS
ok  	dynagg/internal/gossip	0.367s
pkg: dynagg
BenchmarkFig8UncorrelatedFailures/workers=0    	       2	 500000000 ns/op	 1000000 B/op	    5000 allocs/op
BenchmarkFast	 1000000000	         0.25 ns/op
--- BENCH: BenchmarkNoise
    some indented free-form output
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" {
		t.Errorf("goos/goarch = %q/%q", doc.Goos, doc.Goarch)
	}
	if !strings.Contains(doc.CPU, "Xeon") {
		t.Errorf("cpu = %q", doc.CPU)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(doc.Benchmarks))
	}

	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkRoundPush" || b.Procs != 4 || b.Package != "dynagg/internal/gossip" {
		t.Errorf("first benchmark = %+v", b)
	}
	if b.Iterations != 100 || b.Metrics["ns/op"] != 1407760 || b.Metrics["allocs/op"] != 4 {
		t.Errorf("first benchmark metrics = %+v", b)
	}

	e := doc.Benchmarks[1]
	if e.Name != "BenchmarkEngine/n=100000/push/workers=0" || e.Procs != 4 {
		t.Errorf("sub-benchmark name/procs = %q/%d", e.Name, e.Procs)
	}
	if e.Metrics["B/op"] != 6177168 {
		t.Errorf("sub-benchmark B/op = %v", e.Metrics["B/op"])
	}

	// The pkg: context switches mid-stream.
	f := doc.Benchmarks[2]
	if f.Package != "dynagg" || f.Name != "BenchmarkFig8UncorrelatedFailures/workers=0" || f.Procs != 1 {
		t.Errorf("third benchmark = %+v", f)
	}

	// Fractional metrics and missing -procs suffix.
	fast := doc.Benchmarks[3]
	if fast.Name != "BenchmarkFast" || fast.Procs != 1 || fast.Metrics["ns/op"] != 0.25 {
		t.Errorf("fast benchmark = %+v", fast)
	}
}

// TestParsePeakRSS pins the memory-ceiling promotion: the
// peak-rss-bytes custom metric the N=1M engine benchmarks emit must
// surface as the dedicated peak_rss_bytes field (and stay absent from
// JSON for benchmarks that never reported it).
func TestParsePeakRSS(t *testing.T) {
	const text = `pkg: dynagg/internal/gossip
BenchmarkEngine/n=1000000/push/pushsum-columnar/workers=0-4   1   68966002 ns/op   414814208 peak-rss-bytes   0 B/op   0 allocs/op
BenchmarkRoundPush-4   100   1407760 ns/op   0 B/op   0 allocs/op
`
	doc, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	withRSS := doc.Benchmarks[0]
	if withRSS.PeakRSSBytes != 414814208 {
		t.Errorf("PeakRSSBytes = %d, want 414814208", withRSS.PeakRSSBytes)
	}
	if withRSS.Metrics["peak-rss-bytes"] != 414814208 {
		t.Errorf("raw metric lost: %v", withRSS.Metrics)
	}
	if withRSS.Metrics["ns/op"] != 68966002 {
		t.Errorf("ns/op alongside RSS = %v", withRSS.Metrics["ns/op"])
	}
	without := doc.Benchmarks[1]
	if without.PeakRSSBytes != 0 {
		t.Errorf("PeakRSSBytes = %d for benchmark without the metric, want 0", without.PeakRSSBytes)
	}
	// omitempty: the zero field must not appear in the JSON document.
	blob, err := json.Marshal(without)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), "peak_rss_bytes") {
		t.Errorf("zero peak_rss_bytes serialized: %s", blob)
	}
	blob, err = json.Marshal(withRSS)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"peak_rss_bytes":414814208`) {
		t.Errorf("peak_rss_bytes missing from JSON: %s", blob)
	}
}

// TestParsePushPullRows pins the push-pull benchmark rows `make
// bench-1m` merges into BENCH_results.json: the "push-pull" model
// segment contains a dash, so the -GOMAXPROCS splitter must not eat it
// (with or without the procs suffix), and the rows must round-trip
// through the JSON document intact.
func TestParsePushPullRows(t *testing.T) {
	const text = `pkg: dynagg/internal/gossip
BenchmarkEngine/n=1000000/push-pull/pushsum-aos/workers=0-4   1   125757390 ns/op   177422336 peak-rss-bytes   0 B/op   0 allocs/op
BenchmarkEngine/n=1000000/push-pull/pushsum-columnar/workers=0   1   56480978 ns/op   177438720 peak-rss-bytes   0 B/op   0 allocs/op
`
	doc, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	aos := doc.Benchmarks[0]
	if aos.Name != "BenchmarkEngine/n=1000000/push-pull/pushsum-aos/workers=0" || aos.Procs != 4 {
		t.Errorf("aos row name/procs = %q/%d", aos.Name, aos.Procs)
	}
	col := doc.Benchmarks[1]
	if col.Name != "BenchmarkEngine/n=1000000/push-pull/pushsum-columnar/workers=0" || col.Procs != 1 {
		t.Errorf("columnar row name/procs = %q/%d (the push-pull dash must survive)", col.Name, col.Procs)
	}
	if col.Metrics["ns/op"] != 56480978 || col.PeakRSSBytes != 177438720 {
		t.Errorf("columnar row metrics = %+v", col)
	}
	// Round-trip: marshal the document and re-decode; the rows must
	// come back identical.
	blob, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back Doc
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Benchmarks) != 2 {
		t.Fatalf("round-trip lost rows: %d", len(back.Benchmarks))
	}
	got := back.Benchmarks[1]
	if got.Name != col.Name || got.PeakRSSBytes != col.PeakRSSBytes ||
		got.Metrics["ns/op"] != col.Metrics["ns/op"] || got.Metrics["allocs/op"] != col.Metrics["allocs/op"] {
		t.Errorf("round-tripped row = %+v, want %+v", got, col)
	}
}

func TestParseIgnoresNonResultLines(t *testing.T) {
	doc, err := Parse(strings.NewReader("PASS\nok  \tdynagg\t0.1s\nBenchmarkOnlyName\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from noise, want 0", len(doc.Benchmarks))
	}
}

func TestParseRejectsCorruptMetric(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkX 10 abc ns/op\n"))
	if err == nil {
		t.Error("corrupt metric value accepted")
	}
}

func TestSplitProcs(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkFoo-8", "BenchmarkFoo", 8},
		{"BenchmarkFoo", "BenchmarkFoo", 1},
		{"BenchmarkFoo/n=10-2", "BenchmarkFoo/n=10", 2},
		{"BenchmarkFoo/deep-dive", "BenchmarkFoo/deep-dive", 1},
	} {
		name, procs := splitProcs(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("splitProcs(%q) = %q, %d; want %q, %d", tc.in, name, procs, tc.name, tc.procs)
		}
	}
}
