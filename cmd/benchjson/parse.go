package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Doc is the JSON document benchjson emits.
type Doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Package is the import path from the preceding "pkg:" line.
	Package string `json:"package,omitempty"`
	// Name is the benchmark name with the -GOMAXPROCS suffix removed.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix, 1 when absent.
	Procs int `json:"procs"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit to value: "ns/op", "B/op", "allocs/op",
	// plus any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
	// PeakRSSBytes is the process peak resident set size reported by
	// memory-ceiling benchmarks (the "peak-rss-bytes" metric the N=1M
	// engine runs emit via b.ReportMetric), promoted to a first-class
	// field so BENCH_results.json tracks the memory wall alongside
	// ns/op without consumers knowing the unit string. Zero when the
	// benchmark reported no such metric.
	PeakRSSBytes int64 `json:"peak_rss_bytes,omitempty"`
}

// peakRSSUnit is the b.ReportMetric unit promoted to
// Benchmark.PeakRSSBytes.
const peakRSSUnit = "peak-rss-bytes"

// Parse reads `go test -bench` text output and collects every
// benchmark result line, carrying the goos/goarch/cpu/pkg context.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		b, ok, err := parseBenchLine(line)
		if err != nil {
			return nil, err
		}
		if ok {
			b.Package = pkg
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// parseBenchLine parses one "BenchmarkName-P  N  v unit  v unit ..."
// line; ok is false for lines that are not benchmark results.
func parseBenchLine(line string) (Benchmark, bool, error) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false, nil
	}
	f := strings.Fields(line)
	// A result line needs at least name, iterations, and one
	// value/unit pair; "BenchmarkFoo" alone is a progress line.
	if len(f) < 4 {
		return Benchmark{}, false, nil
	}
	iterations, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	name, procs := splitProcs(f[0])
	b := Benchmark{
		Name:       name,
		Procs:      procs,
		Iterations: iterations,
		Metrics:    make(map[string]float64, (len(f)-2)/2),
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("bad metric value %q in %q: %v", f[i], line, err)
		}
		b.Metrics[f[i+1]] = v
	}
	if v, ok := b.Metrics[peakRSSUnit]; ok {
		b.PeakRSSBytes = int64(v)
	}
	return b, true, nil
}

// splitProcs strips the trailing -GOMAXPROCS suffix the testing
// package appends to benchmark names ("BenchmarkEngine/push-4").
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	p, err := strconv.Atoi(name[i+1:])
	if err != nil || p <= 0 {
		return name, 1
	}
	return name[:i], p
}
