// Command doclint fails the build when an exported identifier lacks a
// doc comment, keeping the godoc surface of the listed packages from
// rotting. CI runs it (via `make doc-lint`) over the packages whose
// exported API is part of the documented contract:
//
//	go run ./cmd/doclint internal/gateway internal/gossip/live ...
//
// The check mirrors godoc's rendering rules: package clauses need one
// package comment per package; exported funcs, methods on exported
// receivers, and exported type/var/const specs need a comment on the
// spec or its enclosing declaration group. Test files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package-dir> [<package-dir> ...]")
		os.Exit(2)
	}
	var problems []string
	for _, dir := range os.Args[1:] {
		probs, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		problems = append(problems, probs...)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifier(s)\n", len(problems))
		os.Exit(1)
	}
}

// lintDir parses one package directory (tests excluded) and returns a
// report line per undocumented exported identifier.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, name))
		}
		for fname, f := range pkg.Files {
			problems = append(problems, lintFile(fset, fname, f)...)
		}
	}
	return problems, nil
}

// lintFile reports undocumented exported top-level declarations in one
// parsed file.
func lintFile(fset *token.FileSet, fname string, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s is undocumented", fname, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			// Methods on unexported receiver types are invisible in
			// godoc; only flag those on exported receivers.
			if d.Recv != nil && !receiverExported(d.Recv) {
				continue
			}
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			report(d.Pos(), kind, d.Name.Name)
		case *ast.GenDecl:
			// A comment on the declaration group documents every spec
			// inside it (the `const ( ... )` block idiom).
			if d.Doc != nil {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							kind := "variable"
							if d.Tok == token.CONST {
								kind = "constant"
							}
							report(n.Pos(), kind, n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverExported reports whether a method's receiver names an
// exported type (unwrapping pointers and type parameters).
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
