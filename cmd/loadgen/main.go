// Command loadgen drives a closed-loop HTTP read workload against a
// running gateway (see cmd/dynaggsim's gateway mode) and reports
// throughput and latency percentiles.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080/aggregate/load \
//	        [-clients 32] [-duration 5s] [-benchline NAME]
//
// With -benchline the summary is also printed as one Go testing
// Benchmark row (req/s, p50-ns, p99-ns metrics) so cmd/benchjson can
// merge it into BENCH_results.json alongside `go test -bench` output.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"dynagg/internal/gateway"
)

func main() {
	url := flag.String("url", "", "request URL, e.g. http://127.0.0.1:8080/aggregate/load (required)")
	clients := flag.Int("clients", 32, "concurrent closed-loop requesters")
	duration := flag.Duration("duration", 5*time.Second, "load window")
	benchline := flag.String("benchline", "", "also print a Benchmark-formatted row under this name (for cmd/benchjson)")
	flag.Parse()
	if *url == "" {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "loadgen: -url is required")
		os.Exit(2)
	}
	rep, err := gateway.RunLoad(context.Background(), gateway.LoadConfig{
		URL:      *url,
		Clients:  *clients,
		Duration: *duration,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Println(rep)
	if *benchline != "" {
		fmt.Println(rep.BenchLine(*benchline))
	}
	if rep.Requests == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: zero successful requests")
		os.Exit(1)
	}
}
