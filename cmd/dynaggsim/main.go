// Command dynaggsim regenerates every figure of "Dynamic Approaches to
// In-Network Aggregation" (Kennedy, Koch, Demers, ICDE 2009) plus the
// ablations listed in DESIGN.md, printing paper-style data tables to
// stdout (or CSV/JSON for plotting tools).
//
// Usage:
//
//	dynaggsim <experiment> [flags]
//
// Experiments:
//
//	fig6   bit-counter distribution CDFs (Count-Sketch-Reset cutoff)
//	fig8   dynamic averaging, uncorrelated failures
//	fig9   dynamic counting under failure
//	fig10a dynamic averaging, correlated failures (basic)
//	fig10b dynamic averaging, correlated failures (full-transfer)
//	fig11avg  trace-driven dynamic average (use -dataset 1..3)
//	fig11sum  trace-driven dynamic size estimate (use -dataset 1..3)
//	ablation-pushpull | ablation-adaptive | ablation-bins |
//	ablation-epoch    | ablation-overlay  | ablation-moments |
//	ablation-extremes | ablation-gridcutoff | ablation-bandwidth |
//	ablation-mobility
//	all    run everything at the current scale
//
// Live engine (asynchronous, pluggable transport):
//
//	live   run a protocol on the live engine (-protocol pushsum|
//	       revert|sketchreset) over a transport (-transport
//	       chan|udp|tcp) on either population backend (-backend
//	       agents|columnar, or the -columnar shorthand: per-host
//	       goroutine-safe agents vs. the struct-of-arrays columns that
//	       scale to a million live hosts), with optional injected loss
//	       (-loss 0.2) or a canned WAN preset (-wan lan|3g|sat:
//	       loss+delay+jitter à la netem; over tcp a loss draw kills
//	       the carrying connection instead of dropping a datagram),
//	       socket/shard group count (-udp-groups 4), UDP receive
//	       buffer (-rcvbuf bytes), wall-clock duty cycle (-pace 4ms),
//	       tick count (-ticks 60), and -benchline to append a
//	       Benchmark-formatted summary row for cmd/benchjson.
//	       With -transport=tcp a process can join a multi-process
//	       cluster: -span lo:hi names the host range it drives,
//	       -listen its TCP address, and -seeds the shared seed list
//	       every process bootstraps its membership from (see
//	       live.Bootstrap and examples/live_cluster); -reannounce sets
//	       the keepalive heartbeat cadence and -replace announces with
//	       restart semantics (a supervised respawn taking over its dead
//	       predecessor's span)
//
// Self-healing cluster (failure detection + supervised takeover):
//
//	supervise  launch -members live cluster member processes (spans of
//	           [0,-n) split evenly), serve as their bootstrap seed, run
//	           the heartbeat failure detector (internal/gossip/live/
//	           health) over their keepalives, and restart members
//	           pronounced dead with -replace takeover — under a
//	           -restart-budget storm brake. -kill-after/-kill inject a
//	           chaos kill to demonstrate the heal; -benchline appends a
//	           BenchmarkSupervisorHeal row (ms-to-detect,
//	           ms-to-recover) for cmd/benchjson. See docs/operations.md
//
// Query gateway (HTTP front end over a live TCP cluster):
//
//	gateway  join a running -transport=tcp multi-protocol cluster as a
//	         zero-mass observer span and serve its converged estimates
//	         over HTTP/JSON (-seeds the cluster's seed list, -n the
//	         worker population size, -listen the observer's TCP bind,
//	         -listen-http the query API bind, -aggregates the initial
//	         names). Workers run `live -protocol=multi
//	         -observer-slots=1`. See docs/gateway-api.md.
//
// Chaos engine (seeded fault/adversary scenarios, see docs/scenarios.md):
//
//	chaos  run a chaos scenario on the round engine: composed faults
//	       (healing partitions, regional outages, churn storms, clock
//	       skew) and Byzantine adversaries (lying mass, replayed
//	       sketches, inflated sketch bits) against one protocol, with
//	       a per-round mass-conservation audit and damage scoring
//	       against ground truth. -scenario names a catalog entry
//	       (internal/chaos) or a scenario JSON file; -seed makes the
//	       whole run — and its Report — deterministic. -format json
//	       emits the machine-readable chaos.Report; -benchline appends
//	       a Benchmark-formatted damage row for cmd/benchjson
//
// Engine benchmark (the ROADMAP's million-host target):
//
//	bench  raw gossip rounds of one protocol (-protocol pushsum|
//	       revert|sketchreset|sketchcount|extremes|moments) under one
//	       model (-model push|pushpull) at -n hosts (default
//	       1,000,000), on the classic or, with -columnar, the
//	       struct-of-arrays engine path; reports ns/round, msgs/round,
//	       and peak RSS
//
// Trace tooling:
//
//	trace-gen   generate a synthetic contact trace (-dataset 1..3,
//	            -o file; interchange format, see package trace)
//	trace-info  summarize a trace file (-in file; reads the
//	            interchange format, or CRAWDAD contact tables with
//	            -contacts)
//
// Flags:
//
//	-full       paper-scale populations (100,000 hosts; slower)
//	-n N        override host count
//	-rounds R   override round count
//	-seed S     PRNG seed
//	-workers W  engine worker pool: 0 sequential (default), -1 all
//	            CPUs, k>0 exactly k workers; results are byte-identical
//	            at any setting. Applies to the Scale-driven experiments
//	            (fig8/9/10*, ablation-pushpull/adaptive/epoch/moments/
//	            extremes/mobility); the fixed-size drivers (fig6,
//	            fig11*, ablation-bins/overlay/gridcutoff/bandwidth)
//	            always run sequentially
//	-columnar   run the struct-of-arrays engine path (every protocol,
//	            both gossip models — push/pull runs the pair-batch
//	            wave executor); byte-identical results, measured ~3x
//	            faster at N=1M
//	-cpuprofile FILE  write a CPU profile of the run
//	-memprofile FILE  write an end-of-run heap profile
//	-dataset D  trace dataset 1-3 (fig11 experiments; default 1)
//	-format F   output format: table (default), csv, json
//	-o FILE     write output to FILE instead of stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"dynagg/internal/experiments"
	"dynagg/internal/gossip"
	"dynagg/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dynaggsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing experiment name")
	}
	name := args[0]
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	full := fs.Bool("full", false, "paper-scale populations (100,000 hosts)")
	n := fs.Int("n", 0, "override host count")
	rounds := fs.Int("rounds", 0, "override round count")
	seed := fs.Uint64("seed", 1, "PRNG seed")
	workers := fs.Int("workers", 0, "engine worker pool for Scale-driven experiments: 0 sequential, -1 all CPUs, k>0 exactly k workers (same results at any setting; fig6/fig11/bins/overlay/gridcutoff/bandwidth run sequentially regardless)")
	columnar := fs.Bool("columnar", false, "run the struct-of-arrays engine path (every protocol, both gossip models; byte-identical results, flat-loop speed)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile taken at the end of the run to this file")
	dataset := fs.Int("dataset", 1, "trace dataset 1-3")
	format := fs.String("format", "table", "output format: table, csv, json")
	outPath := fs.String("o", "", "write output to file instead of stdout")
	inPath := fs.String("in", "", "input trace file (trace-info)")
	contacts := fs.Bool("contacts", false, "parse -in as a CRAWDAD contact table")
	protocol := fs.String("protocol", "pushsum", "protocol for bench/live modes (bench: pushsum, revert, sketchreset, sketchcount, extremes, moments; live: pushsum, revert, sketchreset)")
	benchModel := fs.String("model", "push", "bench gossip model: push or pushpull")
	transportName := fs.String("transport", "chan", "live transport: chan (in-process channels), udp (wire-encoded loopback datagrams), or tcp (length-prefixed frames over cached connections)")
	loss := fs.Float64("loss", 0, "live per-message drop probability injected over the transport")
	wan := fs.String("wan", "", "live canned WAN preset layered over the transport: lan, 3g, or sat (loss+delay+jitter; mutually exclusive with -loss)")
	groups := fs.Int("udp-groups", 4, "live UDP/TCP loopback transports: host groups (= sockets/listeners)")
	pace := fs.Duration("pace", 0, "live tick duty cycle; 0 = free-running (sketchreset defaults to 4ms)")
	ticks := fs.Int("ticks", 0, "live ticks per host (default 60)")
	backend := fs.String("backend", "", "live population backend: agents (default; per-host boxed agents) or columnar (dense struct-of-arrays columns; -columnar is shorthand)")
	rcvbuf := fs.Int("rcvbuf", 0, "live UDP socket receive buffer in bytes; 0 = auto (4 MiB for the columnar backend)")
	benchline := fs.Bool("benchline", false, "live/chaos: also print a Benchmark-formatted summary line for cmd/benchjson (live: ns/tick, msgs/s, peak-rss-bytes; chaos: ns/run, damage and audit numbers)")
	seeds := fs.String("seeds", "", "live/gateway TCP bootstrap: comma-separated seed addresses shared by every process of the deployment (live: requires -span and -transport=tcp)")
	spanFlag := fs.String("span", "", "live TCP bootstrap: this process's host range lo:hi of the -n population (requires -seeds)")
	listen := fs.String("listen", "", "live/gateway TCP: listen address for this process's span; default 127.0.0.1:0 (a seed process must listen on its advertised seed address)")
	listenHTTP := fs.String("listen-http", "127.0.0.1:8080", "gateway: HTTP listen address for the query API")
	aggregates := fs.String("aggregates", "load", "live -protocol=multi / gateway: comma-separated aggregate names (hosts register gateway.DemoValue per name)")
	observerSlots := fs.Int("observer-slots", 0, "live cluster member: extra environment slots above -n reserved for observer spans (gateway processes); every process of a deployment must agree")
	scenario := fs.String("scenario", "", "chaos: catalog scenario name or path to a scenario JSON file (see internal/chaos and docs/scenarios.md)")
	replace := fs.Bool("replace", false, "live cluster member: announce with restart semantics — seeds update a stale registration of this span to our address instead of reporting a conflict (set by the supervisor on respawns)")
	reannounce := fs.Duration("reannounce", 0, "live cluster member: keepalive re-announce cadence, the failure detector's heartbeat (0 = 1s default)")
	membersN := fs.Int("members", 0, "supervise: member process count, spans split evenly (0 = 2)")
	heartbeat := fs.Duration("heartbeat", 0, "supervise: members' keepalive cadence and the failure detector's expected heartbeat (0 = 250ms)")
	killAfter := fs.Duration("kill-after", 0, "supervise: chaos injection — kill the -kill member this long into the run (0 = no kill)")
	killName := fs.String("kill", "", "supervise: member name to kill at -kill-after (\"\" = m0)")
	restartBudget := fs.Int("restart-budget", 0, "supervise: restarts allowed per member per minute before the run fails (0 = default 5)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	// Loss injection only exists on the live path; catching the flags
	// here stops a silently ignored `bench -loss 0.2` from reading as a
	// loss measurement.
	if name != "live" && (*loss != 0 || *wan != "") {
		return fmt.Errorf("%s: -loss and -wan apply only to the live experiment", name)
	}
	if name != "live" && name != "gateway" && (*seeds != "" || *spanFlag != "" || *listen != "") {
		return fmt.Errorf("%s: -seeds, -span, and -listen apply only to the live and gateway modes", name)
	}
	if name != "live" && *observerSlots != 0 {
		return fmt.Errorf("%s: -observer-slots applies only to the live experiment", name)
	}
	if name != "chaos" && *scenario != "" {
		return fmt.Errorf("%s: -scenario applies only to the chaos mode", name)
	}
	if name != "live" && (*replace || *reannounce != 0) {
		return fmt.Errorf("%s: -replace and -reannounce apply only to the live experiment", name)
	}
	if name != "supervise" && (*membersN != 0 || *heartbeat != 0 || *killAfter != 0 || *killName != "" || *restartBudget != 0) {
		return fmt.Errorf("%s: -members, -heartbeat, -kill-after, -kill, and -restart-budget apply only to the supervise mode", name)
	}

	// Profiling wraps every mode, so the N=1M engine profile (or any
	// figure driver's) is one flag away.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dynaggsim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dynaggsim: memprofile:", err)
			}
		}()
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	emit := func(r experiments.Result) error {
		return experiments.WriteResult(out, r, experiments.Format(*format))
	}

	sc := experiments.Default()
	if *full {
		sc = experiments.Full()
	}
	if *n > 0 {
		sc.N = *n
	}
	if *rounds > 0 {
		sc.Rounds = *rounds
	}
	sc.Seed = *seed
	sc.Columnar = *columnar
	switch {
	case *workers < 0:
		sc.Workers = gossip.DefaultWorkers()
	default:
		sc.Workers = *workers
	}

	switch name {
	case "trace-gen":
		return traceGen(out, *dataset, *seed, *n)
	case "trace-info":
		return traceInfo(out, *inPath, *contacts)
	case "bench":
		return runEngineBench(out, benchOpts{
			protocol: *protocol, model: *benchModel, n: *n, rounds: *rounds,
			workers: sc.Workers, columnar: *columnar, seed: *seed,
		})
	case "live":
		// -columnar is shorthand for -backend=columnar; an explicit
		// conflicting pair is a user error, not a coin flip.
		be := *backend
		if *columnar {
			if be != "" && be != "columnar" {
				return fmt.Errorf("live: -columnar conflicts with -backend=%s", be)
			}
			be = "columnar"
		}
		return runLive(out, liveOpts{
			protocol: *protocol, backend: be, transport: *transportName,
			loss: *loss, wan: *wan, groups: *groups, pace: *pace, n: *n,
			ticks: *ticks, workers: sc.Workers, seed: *seed,
			rcvbuf: *rcvbuf, benchline: *benchline,
			seeds: *seeds, span: *spanFlag, listen: *listen,
			aggregates: *aggregates, observerSlots: *observerSlots,
			replace: *replace, reannounce: *reannounce,
		})
	case "chaos":
		return runChaos(out, chaosOpts{
			scenario: *scenario, seed: *seed, columnar: *columnar,
			workers: sc.Workers, n: *n, rounds: *rounds,
			format: *format, benchline: *benchline,
		})
	case "gateway":
		return runGateway(out, gatewayOpts{
			n: *n, seeds: *seeds, listen: *listen, listenHTTP: *listenHTTP,
			aggregates: *aggregates, pace: *pace, seed: *seed,
		})
	case "supervise":
		return runSupervise(out, superviseOpts{
			n: *n, members: *membersN, protocol: *protocol,
			ticks: *ticks, pace: *pace, heartbeat: *heartbeat,
			killAfter: *killAfter, killName: *killName,
			budget: *restartBudget, seed: *seed, benchline: *benchline,
		})
	}

	switch name {
	case "fig6":
		opts := experiments.DefaultFig6()
		if *full {
			opts = experiments.FullFig6()
		}
		opts.Seed = *seed
		frs, table := experiments.Fig6(opts)
		if err := emit(table); err != nil {
			return err
		}
		intercept, invSlope := experiments.FitCutoff(frs, 0.99)
		fmt.Fprintf(out, "# fitted cutoff: f(k) = %.1f + k/%.1f (paper: 7 + k/4)\n", intercept, invSlope)
		printFig6CDFs(out, frs)
	case "fig8":
		return emit(experiments.Fig8(sc))
	case "fig9":
		return emit(experiments.Fig9(sc))
	case "fig10a":
		return emit(experiments.Fig10a(sc))
	case "fig10b":
		return emit(experiments.Fig10b(sc))
	case "fig11avg":
		return emit(experiments.Fig11Avg(*dataset, *seed))
	case "fig11sum":
		return emit(experiments.Fig11Sum(*dataset, *seed))
	case "ablation-pushpull":
		return emit(experiments.AblationPushPull(sc))
	case "ablation-adaptive":
		return emit(experiments.AblationAdaptive(sc))
	case "ablation-bins":
		return emit(experiments.AblationBins(20, 20000, *seed))
	case "ablation-epoch":
		return emit(experiments.AblationEpoch(sc))
	case "ablation-overlay":
		return emit(experiments.AblationOverlay(50, *seed))
	case "ablation-moments":
		return emit(experiments.AblationMoments(sc))
	case "ablation-extremes":
		return emit(experiments.AblationExtremes(sc))
	case "ablation-gridcutoff":
		side := 28
		if *n > 0 {
			side = *n
		}
		return emit(experiments.AblationGridCutoff(side, *seed))
	case "ablation-bandwidth":
		bn := 2000
		if *n > 0 {
			bn = *n
		}
		return emit(experiments.AblationBandwidth(bn, *seed))
	case "ablation-mobility":
		return emit(experiments.AblationMobility(sc))
	case "all":
		return runAll(out, sc, *full, *seed)
	default:
		usage()
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// traceGen writes a synthetic contact trace in the interchange format.
func traceGen(out io.Writer, dataset int, seed uint64, n int) error {
	if dataset < 1 || dataset > 3 {
		return fmt.Errorf("trace-gen: -dataset must be 1..3, got %d", dataset)
	}
	params := experiments.TraceDataset(dataset)
	params.Seed = seed
	if n > 1 {
		params.N = n
	}
	return trace.Write(out, trace.Generate(params))
}

// traceInfo summarizes a trace file: device count, duration, event
// volume, and hourly connectivity statistics.
func traceInfo(out io.Writer, path string, contacts bool) error {
	if path == "" {
		return fmt.Errorf("trace-info: -in file required")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var tr *trace.Trace
	if contacts {
		tr, err = trace.ReadContacts(path, f)
	} else {
		tr, err = trace.Read(f)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "name:     %s\n", tr.Name)
	fmt.Fprintf(out, "devices:  %d\n", tr.N)
	fmt.Fprintf(out, "duration: %v (%.1f hours)\n", tr.Duration, tr.Duration.Hours())
	fmt.Fprintf(out, "events:   %d\n", len(tr.Events))

	c := trace.NewCursor(tr)
	fmt.Fprintf(out, "%6s  %10s  %12s\n", "hour", "links up", "mean degree")
	hours := int(tr.Duration.Hours())
	for h := 0; h <= hours; h++ {
		c.AdvanceTo(time.Duration(h) * time.Hour)
		links := 0
		for d := 0; d < tr.N; d++ {
			links += c.Degree(d)
		}
		fmt.Fprintf(out, "%6d  %10d  %12.2f\n", h, links/2, float64(links)/float64(tr.N))
	}
	return nil
}

func runAll(out io.Writer, sc experiments.Scale, full bool, seed uint64) error {
	opts := experiments.DefaultFig6()
	if full {
		opts = experiments.FullFig6()
	}
	opts.Seed = seed
	frs, table := experiments.Fig6(opts)
	experiments.PrintResult(out, table)
	intercept, invSlope := experiments.FitCutoff(frs, 0.99)
	fmt.Fprintf(out, "# fitted cutoff: f(k) = %.1f + k/%.1f (paper: 7 + k/4)\n\n", intercept, invSlope)

	for _, r := range []experiments.Result{
		experiments.Fig8(sc),
		experiments.Fig9(sc),
		experiments.Fig10a(sc),
		experiments.Fig10b(sc),
		experiments.Fig11Avg(1, seed),
		experiments.Fig11Sum(1, seed),
		experiments.AblationPushPull(sc),
		experiments.AblationAdaptive(sc),
		experiments.AblationBins(20, 20000, seed),
		experiments.AblationEpoch(sc),
		experiments.AblationOverlay(50, seed),
		experiments.AblationMoments(sc),
		experiments.AblationExtremes(sc),
		experiments.AblationGridCutoff(28, seed),
		experiments.AblationBandwidth(2000, seed),
		experiments.AblationMobility(sc),
	} {
		experiments.PrintResult(out, r)
		fmt.Fprintln(out)
	}
	return nil
}

// printFig6CDFs dumps the per-bit CDFs, one block per network size,
// matching the paper's three panels.
func printFig6CDFs(out io.Writer, frs []experiments.Fig6Result) {
	for _, fr := range frs {
		fmt.Fprintf(out, "\n# counter CDFs, %d nodes (value: P[counter<=value])\n", fr.Size)
		for k, cdf := range fr.PerBit {
			if cdf.Total() == 0 {
				continue
			}
			fmt.Fprintf(out, "bit %-2d", k)
			for _, p := range cdf.Points() {
				if p.Value > 12 {
					break
				}
				fmt.Fprintf(out, "\t%s", p.String())
			}
			fmt.Fprintln(out)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dynaggsim <experiment> [-full] [-n N] [-rounds R] [-seed S] [-workers W] [-columnar]
                          [-dataset D] [-format table|csv|json] [-o FILE]
                          [-cpuprofile FILE] [-memprofile FILE]
experiments: fig6 fig8 fig9 fig10a fig10b fig11avg fig11sum
             ablation-pushpull ablation-adaptive ablation-bins
             ablation-epoch ablation-overlay ablation-moments
             ablation-extremes ablation-gridcutoff ablation-bandwidth
             ablation-mobility all
engine bench: bench [-protocol pushsum|revert|sketchreset|sketchcount|extremes|moments]
             [-model push|pushpull] [-columnar]
             [-n N (default 1,000,000)] [-rounds R] [-workers W] [-seed S]
live engine: live [-protocol pushsum|revert|sketchreset|multi]
             [-backend agents|columnar | -columnar]
             [-transport chan|udp|tcp] [-loss P | -wan lan|3g|sat]
             [-udp-groups G] [-rcvbuf BYTES] [-pace DUR] [-ticks T]
             [-n N] [-workers W] [-seed S] [-benchline]
             [-span LO:HI -seeds ADDRS [-listen ADDR]]  (tcp cluster member)
             [-replace] [-reannounce DUR]               (supervised member)
             [-aggregates NAMES] [-observer-slots K]    (multi protocol)
gateway:     gateway -seeds ADDRS [-n N] [-listen ADDR]
             [-listen-http ADDR] [-aggregates NAMES] [-pace DUR] [-seed S]
supervise:   supervise [-n N] [-members M] [-protocol P] [-ticks T]
             [-pace DUR] [-heartbeat DUR] [-kill-after DUR] [-kill NAME]
             [-restart-budget B] [-seed S] [-benchline]
chaos:       chaos -scenario NAME|FILE [-seed S] [-columnar] [-workers W]
             [-n N] [-rounds R] [-format table|json] [-benchline]
trace tools: trace-gen [-dataset D] [-o FILE]
             trace-info -in FILE [-contacts]`)
}
