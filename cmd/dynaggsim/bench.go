package main

import (
	"fmt"
	"io"
	"time"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/extremes"
	"dynagg/internal/protocol/moments"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchcount"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
	"dynagg/internal/stats"
	"dynagg/internal/sysmem"
)

// benchOpts parametrizes the raw engine benchmark mode.
type benchOpts struct {
	protocol string
	model    string // push | pushpull
	n        int
	rounds   int
	workers  int
	columnar bool
	seed     uint64
}

// benchSketchParams keeps the million-host sketch benchmark inside
// laptop memory: 8 bins × 16 levels is 128 counters per host (2 ×
// 128 MB of state at N=1M with the shadow block) instead of the
// paper's 64×24 (2 × 1.5 GB).
var benchSketchParams = sketch.Params{Bins: 8, Levels: 16}

// benchBuild assembles the protocol under test on the requested
// execution path and gossip model.
func benchBuild(o benchOpts, model gossip.Model, values []float64) (gossip.Config, error) {
	cfg := gossip.Config{
		Env:     env.NewUniform(o.n),
		Model:   model,
		Seed:    o.seed,
		Workers: o.workers,
	}
	pushPull := model == gossip.PushPull
	agents := func(mk func(i int) gossip.Agent) {
		as := make([]gossip.Agent, o.n)
		for i := range as {
			as[i] = mk(i)
		}
		cfg.Agents = as
	}
	switch o.protocol {
	case "pushsum":
		if o.columnar {
			cfg.Columnar = pushsum.NewColumnarAverage(values)
		} else {
			agents(func(i int) gossip.Agent { return pushsum.NewAverage(gossip.NodeID(i), values[i]) })
		}
	case "revert":
		rcfg := pushsumrevert.Config{Lambda: 0.01, PushPull: pushPull}
		if o.columnar {
			cfg.Columnar = pushsumrevert.NewColumnar(values, rcfg)
		} else {
			agents(func(i int) gossip.Agent { return pushsumrevert.New(gossip.NodeID(i), values[i], rcfg) })
		}
	case "sketchreset":
		scfg := sketchreset.Config{Params: benchSketchParams, Identifiers: 1}
		if o.columnar {
			cfg.Columnar = sketchreset.NewColumnar(o.n, scfg)
		} else {
			agents(func(i int) gossip.Agent { return sketchreset.New(gossip.NodeID(i), scfg) })
		}
	case "sketchcount":
		if o.columnar {
			cfg.Columnar = sketchcount.NewColumnarCount(o.n, benchSketchParams)
		} else {
			agents(func(i int) gossip.Agent { return sketchcount.NewCount(gossip.NodeID(i), benchSketchParams) })
		}
	case "extremes":
		ecfg := extremes.Config{Mode: extremes.Max}
		if o.columnar {
			cfg.Columnar = extremes.NewColumnar(values, ecfg)
		} else {
			agents(func(i int) gossip.Agent { return extremes.New(gossip.NodeID(i), values[i], ecfg) })
		}
	case "moments":
		mcfg := moments.Config{Lambda: 0.01, PushPull: pushPull}
		if o.columnar {
			cfg.Columnar = moments.NewColumnar(values, mcfg)
		} else {
			agents(func(i int) gossip.Agent { return moments.New(gossip.NodeID(i), values[i], mcfg) })
		}
	default:
		return cfg, fmt.Errorf("bench: unknown -protocol %q (pushsum, revert, sketchreset, sketchcount, extremes, moments)", o.protocol)
	}
	return cfg, nil
}

// runEngineBench is the `dynaggsim bench` mode: raw gossip rounds of
// one protocol at a configurable population — by default the
// ROADMAP's N=1,000,000 — on either execution path and either gossip
// model (-model=push|pushpull), reporting ns/round, messages/round,
// and peak RSS. This is the reproducible form of the profile that
// motivated the columnar engine; combine with
// -cpuprofile/-memprofile to regenerate it.
func runEngineBench(out io.Writer, o benchOpts) error {
	if o.n <= 0 {
		o.n = 1000000
	}
	if o.rounds <= 0 {
		o.rounds = 10
	}
	var model gossip.Model
	switch o.model {
	case "", "push":
		model = gossip.Push
	case "pushpull":
		model = gossip.PushPull
	default:
		return fmt.Errorf("bench: unknown -model %q (push, pushpull)", o.model)
	}
	values := make([]float64, o.n)
	for i := range values {
		values[i] = float64(i % 101)
	}
	cfg, err := benchBuild(o, model, values)
	if err != nil {
		return err
	}

	path := "aos"
	if o.columnar {
		path = "columnar"
	}
	fmt.Fprintf(out, "# engine bench: %s/%s/%s n=%d workers=%d rounds=%d seed=%d\n",
		o.protocol, model, path, o.n, o.workers, o.rounds, o.seed)

	engine, err := gossip.NewEngine(cfg)
	if err != nil {
		return err
	}
	// Warm-up: emission columns, arena, outboxes, and wave storage grow
	// to capacity.
	engine.Run(2)

	start := time.Now()
	engine.Run(o.rounds)
	elapsed := time.Since(start)

	perRound := elapsed / time.Duration(o.rounds)
	fmt.Fprintf(out, "rounds          %d\n", o.rounds)
	fmt.Fprintf(out, "total           %v\n", elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "ns/round        %d\n", perRound.Nanoseconds())
	fmt.Fprintf(out, "msgs/round      %d\n", engine.Messages()/int64(engine.Round()))
	fmt.Fprintf(out, "peak_rss_bytes  %d\n", sysmem.PeakRSSBytes())
	if ests := engine.Estimates(); len(ests) > 0 {
		fmt.Fprintf(out, "estimate mean   %.4f (over %d live hosts)\n", stats.Mean(ests), len(ests))
	}
	return nil
}
