package main

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live"
	"dynagg/internal/gossip/live/transport"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
)

// liveOpts parametrizes the `live` experiment: run a protocol on the
// asynchronous live engine over a selectable transport, optionally
// with injected loss — the knob set of live.Config surfaced on the
// command line.
type liveOpts struct {
	protocol  string // pushsum | revert | sketchreset
	transport string // chan | udp
	loss      float64
	wan       string // canned WAN preset name, or ""
	groups    int
	pace      time.Duration
	n         int
	ticks     int
	workers   int
	seed      uint64
}

// runLive executes one live-engine run and prints a small report:
// population, transport, tick count, the mean estimate against the
// truth, and the transport's sent/dropped books.
func runLive(out io.Writer, o liveOpts) error {
	if o.n <= 0 {
		o.n = 256
	}
	if o.ticks <= 0 {
		o.ticks = 60
	}
	if o.groups <= 0 {
		o.groups = 4
	}
	// Count-Sketch-Reset bounds counter ages assuming loosely equal
	// iteration rates across the population, so it defaults to a paced
	// duty cycle; the mass protocols are rate-independent and default
	// to free-running.
	if o.pace == 0 && o.protocol == "sketchreset" {
		o.pace = 4 * time.Millisecond
	}

	u := env.NewUniform(o.n)
	agents := make([]gossip.Agent, o.n)
	var truth float64
	switch o.protocol {
	case "pushsum":
		var sum float64
		for i := 0; i < o.n; i++ {
			v := float64(i % 100)
			sum += v
			agents[i] = pushsum.NewAverage(gossip.NodeID(i), v)
		}
		truth = sum / float64(o.n)
	case "revert":
		var sum float64
		for i := 0; i < o.n; i++ {
			v := float64(i % 100)
			sum += v
			agents[i] = pushsumrevert.New(gossip.NodeID(i), v, pushsumrevert.Config{Lambda: 0.01})
		}
		truth = sum / float64(o.n)
	case "sketchreset":
		for i := 0; i < o.n; i++ {
			agents[i] = sketchreset.New(gossip.NodeID(i), sketchreset.Config{
				Params: sketch.DefaultParams, Identifiers: 1,
			})
		}
		truth = float64(o.n)
	default:
		return fmt.Errorf("live: unknown -protocol %q (pushsum, revert, sketchreset)", o.protocol)
	}

	var tr transport.Transport
	switch o.transport {
	case "", "chan":
		tr = transport.NewChannel(o.n, 0)
	case "udp":
		udp, err := transport.NewUDPLoopback(o.n, o.groups, 0)
		if err != nil {
			return err
		}
		defer udp.Close()
		tr = udp
	default:
		return fmt.Errorf("live: unknown -transport %q (chan, udp)", o.transport)
	}
	injectedLoss := o.loss
	switch {
	case o.wan != "" && o.loss > 0:
		return fmt.Errorf("live: -wan and -loss are mutually exclusive (the preset already sets a loss rate)")
	case o.wan != "":
		p, ok := transport.ProfileByName(o.wan)
		if !ok {
			return fmt.Errorf("live: unknown -wan preset %q (%s)", o.wan, strings.Join(transport.ProfileNames(), ", "))
		}
		injectedLoss = p.Loss
		lt := p.Wrap(tr, o.seed+1)
		defer lt.Close()
		tr = lt
	case o.loss > 0:
		lt := &transport.Lossy{T: tr, P: o.loss, Seed: o.seed + 1}
		defer lt.Close()
		tr = lt
	}

	e, err := live.New(live.Config{
		Env: u, Agents: agents, Model: gossip.Push, Seed: o.seed,
		Ticks: o.ticks, Workers: o.workers, Transport: tr, TickEvery: o.pace,
	})
	if err != nil {
		return err
	}
	start := time.Now()
	if err := e.Run(context.Background()); err != nil {
		return err
	}
	elapsed := time.Since(start)

	ests := e.Estimates()
	var mean float64
	for _, v := range ests {
		mean += v
	}
	if len(ests) > 0 {
		mean /= float64(len(ests))
	}
	name := o.transport
	if name == "" {
		name = "chan"
	}
	if o.wan != "" {
		name += "+" + o.wan
	}
	fmt.Fprintf(out, "live %s over %s: n=%d ticks=%d loss=%.2f pace=%v workers=%d\n",
		o.protocol, name, o.n, o.ticks, injectedLoss, o.pace, o.workers)
	fmt.Fprintf(out, "mean estimate %.4f  truth %.4f  rel.err %.2f%%\n",
		mean, truth, 100*relErr(mean, truth))
	fmt.Fprintf(out, "sent %d  dropped %d  elapsed %v\n", e.Sent(), e.Dropped(), elapsed.Round(time.Millisecond))
	return nil
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	d := (got - want) / want
	if d < 0 {
		d = -d
	}
	return d
}
