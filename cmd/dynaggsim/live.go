package main

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"dynagg/internal/env"
	"dynagg/internal/gateway"
	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live"
	"dynagg/internal/gossip/live/transport"
	"dynagg/internal/protocol/multi"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
	"dynagg/internal/sysmem"
)

// liveOpts parametrizes the `live` experiment: run a protocol on the
// asynchronous live engine over a selectable transport and backend,
// optionally with injected loss — the knob set of live.Config surfaced
// on the command line.
type liveOpts struct {
	protocol   string // pushsum | revert | sketchreset
	backend    string // agents | columnar
	transport  string // chan | udp | tcp
	loss       float64
	wan        string // canned WAN preset name, or ""
	groups     int
	pace       time.Duration
	n          int
	ticks      int
	workers    int
	seed       uint64
	rcvbuf     int           // SO_RCVBUF for UDP sockets; 0 = auto
	benchline  bool          // also print a Benchmark-formatted summary line
	seeds      string        // comma-separated TCP bootstrap seed addrs; "" = single process
	span       string        // this process's host range "lo:hi"; "" = full population
	listen     string        // TCP listen address for the span's group; "" = 127.0.0.1:0
	replace    bool          // announce with restart semantics (supervised respawn)
	reannounce time.Duration // keepalive cadence; 0 = the bootstrap default

	// multi-protocol knobs: the named aggregates every host registers
	// (with gateway.DemoValue values) and how many environment slots
	// above n are reserved for observer spans — gateway processes —
	// that peers gossip with but the bootstrap does not wait for.
	aggregates    string
	observerSlots int
}

// parseSpan parses the -span flag's "lo:hi" form against the
// population size.
func parseSpan(s string, n int) (live.Span, error) {
	loS, hiS, ok := strings.Cut(s, ":")
	if !ok {
		return live.Span{}, fmt.Errorf("live: -span must be lo:hi, got %q", s)
	}
	lo, err1 := strconv.Atoi(strings.TrimSpace(loS))
	hi, err2 := strconv.Atoi(strings.TrimSpace(hiS))
	if err1 != nil || err2 != nil {
		return live.Span{}, fmt.Errorf("live: -span must be lo:hi, got %q", s)
	}
	if lo < 0 || lo >= hi || hi > n {
		return live.Span{}, fmt.Errorf("live: -span [%d,%d) outside population [0,%d)", lo, hi, n)
	}
	return live.Span{Lo: gossip.NodeID(lo), Hi: gossip.NodeID(hi)}, nil
}

// resolveLossTransport layers -wan / -loss over a base transport with
// the shared validation both CLI modes use: the two flags are mutually
// exclusive (a preset already sets a loss rate), and unknown preset
// names list the valid ones. It returns the (possibly wrapped)
// transport and the effective injected loss rate.
func resolveLossTransport(tr transport.Transport, wan string, loss float64, seed uint64) (transport.Transport, float64, error) {
	switch {
	case wan != "" && loss > 0:
		return nil, 0, fmt.Errorf("-wan and -loss are mutually exclusive (the preset already sets a loss rate)")
	case wan != "":
		p, ok := transport.ProfileByName(wan)
		if !ok {
			return nil, 0, fmt.Errorf("unknown -wan preset %q (%s)", wan, strings.Join(transport.ProfileNames(), ", "))
		}
		lt, err := transport.NewLossy(tr, transport.WithProfile(p), transport.WithLossSeed(seed))
		if err != nil {
			return nil, 0, err
		}
		return lt, p.Loss, nil
	case loss > 0:
		lt, err := transport.NewLossy(tr, transport.WithLoss(loss), transport.WithLossSeed(seed))
		if err != nil {
			return nil, 0, err
		}
		return lt, loss, nil
	}
	return tr, 0, nil
}

// runLive executes one live-engine run and prints a small report:
// the resolved configuration, the mean estimate against the truth,
// the transport's sent/dropped books, throughput, and peak RSS.
func runLive(out io.Writer, o liveOpts) error {
	if o.n <= 0 {
		o.n = 256
	}
	if o.ticks <= 0 {
		o.ticks = 60
	}
	if o.groups <= 0 {
		o.groups = 4
	}
	if o.backend == "" {
		o.backend = "agents"
	}
	if o.backend != "agents" && o.backend != "columnar" {
		return fmt.Errorf("live: unknown -backend %q (agents, columnar)", o.backend)
	}
	// Count-Sketch-Reset bounds counter ages assuming loosely equal
	// iteration rates across the population, so it defaults to a paced
	// duty cycle; the mass protocols are rate-independent and default
	// to free-running.
	if o.pace == 0 && (o.protocol == "sketchreset" || o.protocol == "multi") {
		o.pace = 4 * time.Millisecond
	}
	if o.transport == "" {
		o.transport = "chan"
	}
	// TCP sends queue for an asynchronous writer goroutine, so a
	// free-running agent population finishes its ticks before the first
	// dial completes and most traffic drops on the outbox. Pace it like
	// a deployed duty cycle by default (columnar drains batches inline
	// per shard wave and keeps up unpaced).
	if o.pace == 0 && o.transport == "tcp" && o.backend == "agents" {
		o.pace = 4 * time.Millisecond
	}

	cluster := o.seeds != "" || o.span != ""
	var span live.Span
	if cluster {
		if o.seeds == "" || o.span == "" {
			return fmt.Errorf("live: -seeds and -span must be set together (each process announces its span to the shared seed list)")
		}
		if o.transport != "tcp" {
			return fmt.Errorf("live: -seeds/-span require -transport=tcp (bootstrap is the TCP membership layer; UDP spans exchange addresses out of band)")
		}
		if o.backend == "columnar" {
			return fmt.Errorf("live: the columnar backend drives the full population in one process; -seeds/-span need -backend=agents")
		}
		var err error
		if span, err = parseSpan(o.span, o.n); err != nil {
			return err
		}
	}
	if o.listen != "" && o.transport != "tcp" {
		return fmt.Errorf("live: -listen applies only to -transport=tcp")
	}
	if (o.replace || o.reannounce != 0) && !cluster {
		return fmt.Errorf("live: -replace and -reannounce apply only to cluster members (-seeds/-span)")
	}

	if o.observerSlots < 0 {
		return fmt.Errorf("live: -observer-slots must be >= 0, got %d", o.observerSlots)
	}
	if o.observerSlots > 0 && !cluster {
		return fmt.Errorf("live: -observer-slots only makes sense for a cluster member (-seeds/-span); a single-process run has no observer processes to reserve slots for")
	}

	// Observer slots sit above the counted population: peers pick them
	// (mass flows through gateways), the bootstrap does not wait for
	// them (Total stays o.n).
	u := env.NewUniform(o.n + o.observerSlots)
	values := make([]float64, o.n)
	var sum float64
	for i := range values {
		values[i] = float64(i % 100)
		sum += values[i]
	}
	// The full-size sketch matrix is 1536 counters per host — 3 GiB of
	// double-buffered columns at a million hosts — so large columnar
	// counting runs shrink the sketch the same way the engine bench
	// does.
	sketchParams := sketch.DefaultParams
	if o.backend == "columnar" && o.n > 200_000 {
		sketchParams = benchSketchParams
	}

	var pop live.Population
	var truth float64
	switch o.backend {
	case "agents":
		agents := make([]gossip.Agent, o.n)
		switch o.protocol {
		case "pushsum":
			for i := 0; i < o.n; i++ {
				agents[i] = pushsum.NewAverage(gossip.NodeID(i), values[i])
			}
			truth = sum / float64(o.n)
		case "revert":
			for i := 0; i < o.n; i++ {
				agents[i] = pushsumrevert.New(gossip.NodeID(i), values[i], pushsumrevert.Config{Lambda: 0.01})
			}
			truth = sum / float64(o.n)
		case "sketchreset":
			for i := 0; i < o.n; i++ {
				agents[i] = sketchreset.New(gossip.NodeID(i), sketchreset.Config{
					Params: sketchParams, Identifiers: 1,
				})
			}
			truth = float64(o.n)
		case "multi":
			names := splitNames(o.aggregates)
			if len(names) == 0 {
				return fmt.Errorf("live: -protocol=multi needs -aggregates (comma-separated names)")
			}
			for i := 0; i < o.n; i++ {
				vals := make(map[string]float64, len(names))
				for _, name := range names {
					vals[name] = gateway.DemoValue(name, i)
				}
				node := multi.New(gossip.NodeID(i), vals,
					sketchreset.Config{Params: sketchParams},
					pushsumrevert.Config{Lambda: gateway.DefaultLambda},
				)
				// A resolver lets dynamically registered names (a
				// gateway's POST /aggregate/{name}) reach this host with
				// a real local value instead of being ignored.
				hostID := i
				node.SetResolver(func(name string) (float64, bool) {
					return gateway.DemoValue(name, hostID), true
				})
				agents[i] = node
			}
			// multi's Estimate is the sketch network-size estimate.
			truth = float64(o.n)
		default:
			return fmt.Errorf("live: unknown -protocol %q (pushsum, revert, sketchreset, multi)", o.protocol)
		}
		if cluster {
			// This process drives only its span; the other spans'
			// agents live in the other processes of the deployment.
			agents = agents[span.Lo:span.Hi]
		}
		pop = live.NewAgentPopulation(agents)
	case "columnar":
		switch o.protocol {
		case "multi":
			return fmt.Errorf("live: -protocol=multi requires -backend=agents (no columnar form yet)")
		case "pushsum":
			pop = live.NewColumnarPopulation(pushsum.NewColumnarAverage(values))
			truth = sum / float64(o.n)
		case "revert":
			pop = live.NewColumnarPopulation(pushsumrevert.NewColumnar(values, pushsumrevert.Config{Lambda: 0.01}))
			truth = sum / float64(o.n)
		case "sketchreset":
			pop = live.NewColumnarPopulation(sketchreset.NewColumnar(o.n, sketchreset.Config{
				Params: sketchParams, Identifiers: 1,
			}))
			truth = float64(o.n)
		default:
			return fmt.Errorf("live: unknown -protocol %q (pushsum, revert, sketchreset)", o.protocol)
		}
	}

	rcvbuf := o.rcvbuf
	if rcvbuf == 0 && o.backend == "columnar" {
		// A whole shard's wave lands on one socket between drains;
		// give the kernel room for it.
		rcvbuf = 4 << 20
	}
	var tr transport.Transport
	switch o.transport {
	case "chan":
		if o.backend == "columnar" {
			// Group count doubles as the columnar shard count.
			tr = transport.NewChannelGroups(o.n, 0, o.groups)
		} else {
			tr = transport.NewChannel(o.n, 0)
		}
	case "udp":
		queue := 0
		if o.backend == "columnar" {
			// A columnar tick arrives at each group as one burst of
			// whole-shard batches; the default 256-batch queue sheds
			// most of a million-host wave, so give the drains a
			// tick's worth of headroom (~64 MiB of pooled buffers
			// worst case).
			queue = 1024
		}
		udp, err := transport.NewUDP(
			transport.WithLoopbackGroups(o.n, o.groups),
			transport.WithReadBuffer(rcvbuf),
			transport.WithQueueCapacity(queue),
		)
		if err != nil {
			return err
		}
		defer udp.Close()
		tr = udp
	case "tcp":
		queue := 0
		if o.backend == "columnar" {
			// Same headroom rationale as UDP: a columnar tick is one
			// burst of whole-shard batch frames per group.
			queue = 1024
		}
		var tcp *transport.TCP
		var err error
		if cluster {
			listen := o.listen
			if listen == "" {
				listen = "127.0.0.1:0"
			}
			tcp, err = transport.NewTCP(
				transport.WithGroups(transport.Group{Lo: span.Lo, Hi: span.Hi, Addr: listen}),
				transport.WithLocal(0),
				transport.WithQueueCapacity(queue),
			)
		} else {
			tcp, err = transport.NewTCP(
				transport.WithLoopbackGroups(o.n, o.groups),
				transport.WithQueueCapacity(queue),
			)
		}
		if err != nil {
			return err
		}
		defer tcp.Close()
		tr = tcp
	default:
		return fmt.Errorf("live: unknown -transport %q (chan, udp, tcp)", o.transport)
	}
	tr, injectedLoss, err := resolveLossTransport(tr, o.wan, o.loss, o.seed+1)
	if err != nil {
		return fmt.Errorf("live: %w", err)
	}
	if lt, ok := tr.(*transport.Lossy); ok {
		defer lt.Close()
	}

	cfg := live.Config{
		Env: u, Population: pop, Model: gossip.Push, Seed: o.seed,
		Ticks: o.ticks, Workers: o.workers, Transport: tr, TickEvery: o.pace,
	}
	var selfAddr string
	if cluster {
		cfg.Span = span
		var seeds []string
		for _, s := range strings.Split(o.seeds, ",") {
			seeds = append(seeds, strings.TrimSpace(s))
		}
		cfg.Bootstrap = &live.Bootstrap{
			Seeds: seeds, Span: span, Total: o.n,
			Replace: o.replace, ReAnnounce: o.reannounce,
		}
		// Our own group is table index 0 at construction, but merging a
		// seed's membership can insert lower spans and shift it — so the
		// listen address must be captured before Run bootstraps.
		tcp, _ := transport.AsTCP(tr)
		selfAddr = tcp.GroupAddr(0)
	}
	e, err := live.New(cfg)
	if err != nil {
		return err
	}

	name := o.transport
	if o.wan != "" {
		name += "+" + o.wan
	}
	lossNote := ""
	if o.transport == "tcp" && injectedLoss > 0 {
		// On a stream transport an injected "datagram loss" severs the
		// carrying connection instead of silently dropping a frame.
		lossNote = " (tcp: link-kill)"
	}
	fmt.Fprintf(out, "live config: protocol=%s backend=%s transport=%s n=%d ticks=%d groups=%d\n",
		o.protocol, o.backend, name, o.n, o.ticks, o.groups)
	fmt.Fprintf(out, "             loss=%.4f%s pace=%v workers=%d seed=%d rcvbuf=%d\n",
		injectedLoss, lossNote, o.pace, o.workers, o.seed, rcvbuf)
	if cluster {
		fmt.Fprintf(out, "bootstrap:   span [%d,%d) listening on %s  seeds %s\n",
			span.Lo, span.Hi, selfAddr, o.seeds)
	}

	start := time.Now()
	if err := e.Run(context.Background()); err != nil {
		return err
	}
	elapsed := time.Since(start)

	ests := e.Estimates()
	var mean float64
	for _, v := range ests {
		mean += v
	}
	if len(ests) > 0 {
		mean /= float64(len(ests))
	}
	rss := sysmem.PeakRSSBytes()
	if tcp, ok := transport.AsTCP(tr); ok && cluster {
		// The resolved view the bootstrap converged on: every span of
		// the population and the address serving it.
		fmt.Fprintf(out, "membership: ")
		for i, g := range tcp.Groups() {
			if i > 0 {
				fmt.Fprintf(out, "  ")
			}
			fmt.Fprintf(out, "[%d,%d)@%s", g.Lo, g.Hi, g.Addr)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "mean estimate %.4f  truth %.4f  rel.err %.2f%%\n",
		mean, truth, 100*relErr(mean, truth))
	if o.protocol == "multi" {
		// Per-aggregate running averages over the locally driven hosts,
		// against the exact DemoValue population means.
		ap := pop.(*live.AgentPopulation)
		for _, name := range splitNames(o.aggregates) {
			var s float64
			c := 0
			for _, a := range ap.Agents() {
				if v, ok := a.(*multi.Node).Average(name); ok {
					s += v
					c++
				}
			}
			if c > 0 {
				s /= float64(c)
			}
			want := gateway.DemoMean(name, o.n)
			fmt.Fprintf(out, "aggregate %-12s mean %.4f  truth %.4f  rel.err %.2f%%  (%d/%d hosts)\n",
				name, s, want, 100*relErr(s, want), c, len(ap.Agents()))
		}
	}
	fmt.Fprintf(out, "sent %d  dropped %d  elapsed %v  peak_rss_bytes %d\n",
		e.Sent(), e.Dropped(), elapsed.Round(time.Millisecond), rss)
	if tcp, ok := transport.AsTCP(tr); ok && injectedLoss > 0 {
		fmt.Fprintf(out, "link kills %d (loss over tcp severs connections)\n", tcp.Kills())
	}
	if o.benchline {
		// Benchmark-formatted so cmd/benchjson (and benchstat) ingest
		// the run alongside the `go test -bench` rows.
		nsPerTick := elapsed.Nanoseconds() / int64(o.ticks)
		msgsPerSec := int64(float64(e.Sent()) / elapsed.Seconds())
		fmt.Fprintf(out, "BenchmarkLiveEngine/backend=%s/proto=%s/transport=%s/n=%d 1 %d ns/tick %d msgs/s %d peak-rss-bytes\n",
			o.backend, o.protocol, o.transport, o.n, nsPerTick, msgsPerSec, rss)
	}
	return nil
}

// splitNames parses a comma-separated -aggregates list, dropping
// blanks.
func splitNames(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	d := (got - want) / want
	if d < 0 {
		d = -d
	}
	return d
}
