package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dynagg/internal/chaos"
)

// chaosOpts carries the chaos-mode flags.
type chaosOpts struct {
	scenario  string // catalog name or path to a scenario JSON file
	seed      uint64
	columnar  bool
	workers   int
	n         int    // override Scenario.N when > 0
	rounds    int    // override Scenario.Rounds when > 0
	format    string // "table" (human summary) or "json" (full Report)
	benchline bool
}

// runChaos resolves a scenario (catalog name first, then file path),
// runs it on the round engine, and reports the outcome.
func runChaos(out io.Writer, o chaosOpts) error {
	if o.scenario == "" {
		return fmt.Errorf("chaos: -scenario is required (one of: %s; or a scenario JSON file)",
			strings.Join(chaos.Names(), " "))
	}
	s, err := resolveScenario(o.scenario)
	if err != nil {
		return err
	}
	if o.n > 0 {
		s.N = o.n
	}
	if o.rounds > 0 {
		s.Rounds = o.rounds
	}

	start := time.Now()
	rep, err := chaos.RunWith(s, o.seed, chaos.RunOpts{Columnar: o.columnar, Workers: o.workers})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	switch o.format {
	case "json":
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if _, err := out.Write(append(data, '\n')); err != nil {
			return err
		}
	case "", "table":
		printChaosSummary(out, rep)
	default:
		return fmt.Errorf("chaos: -format must be table or json, got %q", o.format)
	}

	if o.benchline {
		// Benchmark-formatted so cmd/benchjson (and benchstat) ingest
		// chaos damage numbers alongside the `go test -bench` rows.
		fmt.Fprintf(out, "BenchmarkChaos/scenario=%s/n=%d 1 %d ns/run %g max-rel-err %g final-rel-err %d recovery-round %d audit-violations\n",
			rep.Scenario, rep.N, elapsed.Nanoseconds(),
			rep.Damage.MaxRelErr, rep.Damage.FinalRelErr,
			rep.Damage.RecoveryRound, rep.Audit.Violations)
		// The crashrestart family additionally reports how many rounds
		// past the restart the population needed to reabsorb the reset
		// span — the round-engine twin of the supervisor's
		// ms-to-recover benchline (-1: never recovered).
		for _, f := range s.Faults {
			if f.Kind != chaos.FaultCrashRestart {
				continue
			}
			rec := -1
			if rep.Damage.RecoveryRound >= 0 {
				rec = rep.Damage.RecoveryRound - f.End
				if rec < 0 {
					rec = 0
				}
			}
			fmt.Fprintf(out, "BenchmarkChaosHeal/scenario=%s/n=%d 1 %d recovery-rounds\n",
				rep.Scenario, rep.N, rec)
		}
	}
	return nil
}

// resolveScenario maps -scenario to a Scenario: a catalog name wins,
// anything else is read as a JSON scenario file.
func resolveScenario(name string) (chaos.Scenario, error) {
	if s, ok := chaos.ByName(name); ok {
		return s, nil
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return chaos.Scenario{}, fmt.Errorf("chaos: %q is neither a catalog scenario (%s) nor a readable file: %v",
			name, strings.Join(chaos.Names(), " "), err)
	}
	s, err := chaos.Decode(data)
	if err != nil {
		return chaos.Scenario{}, fmt.Errorf("chaos: %s: %v", name, err)
	}
	return s, nil
}

// printChaosSummary renders the human-facing view of a Report: what
// was injected, what it cost, and the two verdicts (estimator damage
// vs ground truth, mass-conservation audit).
func printChaosSummary(out io.Writer, rep *chaos.Report) {
	fmt.Fprintf(out, "scenario %s  backend %s  protocol %s  n %d  rounds %d  seed %d\n",
		rep.Scenario, rep.Backend, rep.Protocol, rep.N, rep.Rounds, rep.Seed)
	if rep.Byzantine > 0 {
		fmt.Fprintf(out, "byzantine hosts: %d\n", rep.Byzantine)
	}
	for _, l := range rep.Lost {
		fmt.Fprintf(out, "fault %-12s blocked contacts %d\n", l.Kind, l.Count)
	}
	fmt.Fprintf(out, "messages %d  final truth %.4f\n", rep.Messages, rep.FinalTruth)
	fmt.Fprintf(out, "damage: max rel err %.4g  final rel err %.4g  recovery round %s (tol %g)\n",
		rep.Damage.MaxRelErr, rep.Damage.FinalRelErr,
		recoveryString(rep.Damage.RecoveryRound), rep.Damage.RecoveryTol)
	if !rep.Audit.Applicable {
		fmt.Fprintf(out, "audit: not applicable (no mass semantics for %s)\n", rep.Protocol)
	} else if rep.Audit.Violations == 0 {
		fmt.Fprintf(out, "audit: clean — mass conserved every round (max drift %.3g, tol %g)\n",
			rep.Audit.MaxDrift, rep.Audit.Tolerance)
	} else {
		fmt.Fprintf(out, "audit: FLAGGED — %d rounds violated conservation, first at round %d (max drift %.3g, tol %g)\n",
			rep.Audit.Violations, rep.Audit.FirstViolation, rep.Audit.MaxDrift, rep.Audit.Tolerance)
	}
	// The error trajectory, decimated to at most 16 sample rounds so
	// the shape (fault impact, recovery) reads at a glance.
	step := (len(rep.Trajectory) + 15) / 16
	if step < 1 {
		step = 1
	}
	samples := make([]string, 0, 16)
	for r := 0; r < len(rep.Trajectory); r += step {
		samples = append(samples, fmt.Sprintf("%d:%.3g", r, rep.Trajectory[r]))
	}
	fmt.Fprintf(out, "trajectory (round:err): %s\n", strings.Join(samples, " "))
}

func recoveryString(round int) string {
	if round < 0 {
		return "never"
	}
	return fmt.Sprintf("%d", round)
}
