package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"time"

	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live/health"
	"dynagg/internal/supervise"
)

// superviseOpts carries the supervise-mode flags: a self-healing
// mini-deployment in one command. The supervisor binds the bootstrap
// seed, re-execs this binary as `live` cluster members (one per span),
// watches their keepalive heartbeats through the failure detector, and
// restarts any member it pronounces dead — optionally after murdering
// one on cue to demonstrate the heal.
type superviseOpts struct {
	n         int           // counted population size
	members   int           // member process count (spans split evenly)
	protocol  string        // protocol each member runs
	ticks     int           // ticks per member engine run
	pace      time.Duration // member tick duty cycle
	heartbeat time.Duration // keepalive cadence = detector HeartbeatEvery
	killAfter time.Duration // chaos: kill -kill this long into the run (0 = no kill)
	killName  string        // member to kill ("" = m0)
	budget    int           // restarts per member per minute (0 = default)
	seed      uint64
	benchline bool
}

// runSupervise builds the member fleet, supervises it to completion,
// and reports restarts and heal latencies. The spawner re-execs this
// same binary: `dynaggsim live -transport=tcp -span=... -seeds=<sup>`,
// with -replace added from the first restart so the seeds accept the
// fresh incarnation's address over the dead one's.
func runSupervise(out io.Writer, o superviseOpts) error {
	if o.n <= 0 {
		o.n = 64
	}
	if o.members <= 0 {
		o.members = 2
	}
	if o.members > o.n {
		return fmt.Errorf("supervise: -members %d exceeds population %d", o.members, o.n)
	}
	if o.protocol == "" {
		o.protocol = "pushsum"
	}
	if o.ticks <= 0 {
		o.ticks = 300
	}
	if o.pace <= 0 {
		o.pace = 20 * time.Millisecond
	}
	if o.heartbeat <= 0 {
		o.heartbeat = 250 * time.Millisecond
	}
	if o.killName == "" {
		o.killName = "m0"
	}
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("supervise: %w", err)
	}

	// Split [0, n) into -members even spans, the first spans absorbing
	// the remainder.
	members := make([]supervise.Member, o.members)
	per, extra := o.n/o.members, o.n%o.members
	lo := 0
	for i := range members {
		hi := lo + per
		if i < extra {
			hi++
		}
		members[i] = supervise.Member{Name: fmt.Sprintf("m%d", i), Lo: gossip.NodeID(lo), Hi: gossip.NodeID(hi)}
		lo = hi
	}

	var sup *supervise.Supervisor
	cfg := supervise.Config{
		Total:         o.n,
		Members:       members,
		Detector:      health.Config{HeartbeatEvery: o.heartbeat},
		RestartBudget: o.budget,
		Spawn: func(m supervise.Member, incarnation int) (*exec.Cmd, error) {
			args := []string{
				"live", "-transport=tcp", "-backend=agents",
				"-protocol=" + o.protocol,
				"-n=" + strconv.Itoa(o.n),
				fmt.Sprintf("-span=%d:%d", m.Lo, m.Hi),
				"-seeds=" + sup.SeedAddr(),
				"-ticks=" + strconv.Itoa(o.ticks),
				"-pace=" + o.pace.String(),
				"-reannounce=" + o.heartbeat.String(),
				"-seed=" + strconv.FormatUint(o.seed+uint64(incarnation), 10),
			}
			if incarnation > 0 {
				args = append(args, "-replace")
			}
			cmd := exec.Command(exe, args...)
			// Member reports would interleave with the supervision log;
			// drop them and keep stderr for member errors.
			cmd.Stdout = io.Discard
			cmd.Stderr = os.Stderr
			return cmd, nil
		},
		Logf: func(format string, a ...any) { fmt.Fprintf(out, format+"\n", a...) },
	}
	sup, err = supervise.New(cfg)
	if err != nil {
		return err
	}
	defer sup.Close()

	fmt.Fprintf(out, "supervise config: n=%d members=%d protocol=%s ticks=%d pace=%v heartbeat=%v seed=%s\n",
		o.n, o.members, o.protocol, o.ticks, o.pace, o.heartbeat, sup.SeedAddr())
	if o.killAfter > 0 {
		go func() {
			time.Sleep(o.killAfter)
			if err := sup.Kill(o.killName); err != nil {
				fmt.Fprintf(out, "supervise: chaos kill: %v\n", err)
			}
		}()
	}

	start := time.Now()
	runErr := sup.Run(context.Background())
	elapsed := time.Since(start)

	stats := sup.Stats()
	fmt.Fprintf(out, "completed %d  restarts %d  failed %d  elapsed %v\n",
		stats.Completed, stats.Restarts, len(stats.Failed), elapsed.Round(time.Millisecond))
	var detectMS, recoverMS int64
	for _, h := range stats.Heals {
		fmt.Fprintf(out, "heal %-4s incarnation %d  detect %v  recover %v\n",
			h.Member, h.Incarnation, h.DetectLatency().Round(time.Millisecond), h.RecoverLatency().Round(time.Millisecond))
		detectMS += h.DetectLatency().Milliseconds()
		recoverMS += h.RecoverLatency().Milliseconds()
	}
	if runErr != nil {
		return runErr
	}
	if o.benchline {
		// Benchmark-formatted so cmd/benchjson (and benchstat) ingest
		// the heal latencies alongside the `go test -bench` rows; means
		// over the run's heals.
		if n := int64(len(stats.Heals)); n > 0 {
			detectMS /= n
			recoverMS /= n
		}
		fmt.Fprintf(out, "BenchmarkSupervisorHeal/members=%d/protocol=%s 1 %d ms-to-detect %d ms-to-recover %d restarts\n",
			o.members, o.protocol, detectMS, recoverMS, stats.Restarts)
	}
	return nil
}
