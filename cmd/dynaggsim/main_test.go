package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"no-such-experiment"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunRejectsMissingName(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing experiment name accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"fig8", "-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestTraceGenAndInfo(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	if err := run([]string{"trace-gen", "-dataset", "1", "-o", path}); err != nil {
		t.Fatalf("trace-gen: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# devices 9") {
		t.Errorf("generated trace missing devices header")
	}
	infoPath := filepath.Join(dir, "info.txt")
	if err := run([]string{"trace-info", "-in", path, "-o", infoPath}); err != nil {
		t.Fatalf("trace-info: %v", err)
	}
	info, err := os.ReadFile(infoPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(info), "devices:  9") {
		t.Errorf("trace-info output unexpected:\n%s", info)
	}
}

func TestTraceGenRejectsBadDataset(t *testing.T) {
	if err := run([]string{"trace-gen", "-dataset", "7"}); err == nil {
		t.Error("bad dataset accepted")
	}
}

func TestTraceInfoRequiresInput(t *testing.T) {
	if err := run([]string{"trace-info"}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"trace-info", "-in", "/nonexistent/file"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestTraceInfoContacts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "contacts.dat")
	if err := os.WriteFile(path, []byte("1 2 0 3600\n2 3 1800 7200\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "info.txt")
	if err := run([]string{"trace-info", "-in", path, "-contacts", "-o", out}); err != nil {
		t.Fatalf("trace-info -contacts: %v", err)
	}
	info, _ := os.ReadFile(out)
	if !strings.Contains(string(info), "devices:  3") {
		t.Errorf("contacts info unexpected:\n%s", info)
	}
}

func TestOutputFormats(t *testing.T) {
	dir := t.TempDir()
	for _, format := range []string{"table", "csv", "json"} {
		path := filepath.Join(dir, "out."+format)
		args := []string{"fig8", "-n", "300", "-rounds", "8", "-format", format, "-o", path}
		if err := run(args); err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Errorf("format %s produced empty output", format)
		}
	}
	if err := run([]string{"fig8", "-n", "300", "-rounds", "8", "-format", "xml"}); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestRunLiveTransports smoke-runs the live engine through the CLI
// over both transports, with and without injected loss. Estimate
// quality is asserted in package live; here we check the plumbing and
// that the report reaches the writer.
func TestRunLiveTransports(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"live", "-n", "128", "-ticks", "30"},
		{"live", "-n", "128", "-ticks", "30", "-transport", "udp", "-udp-groups", "2"},
		{"live", "-n", "128", "-ticks", "30", "-transport", "udp", "-loss", "0.2"},
		{"live", "-n", "128", "-ticks", "30", "-protocol", "revert", "-loss", "0.1"},
	}
	for i, args := range cases {
		path := filepath.Join(dir, "live.txt")
		if err := run(append(args, "-o", path)); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "mean estimate") {
			t.Errorf("case %d: report missing estimate:\n%s", i, data)
		}
	}
}

func TestRunLiveRejectsBadKnobs(t *testing.T) {
	if err := run([]string{"live", "-protocol", "nope"}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if err := run([]string{"live", "-transport", "carrier-pigeon"}); err == nil {
		t.Error("unknown transport accepted")
	}
	if err := run([]string{"live", "-loss", "1.5", "-n", "16", "-ticks", "1"}); err == nil {
		t.Error("loss probability above 1 accepted")
	}
}

// TestRunSuperviseRejectsBadKnobs pins the supervise-mode flag
// validation; the healing run itself is exercised by `make heal-soak`
// and the internal/supervise tests (re-exec spawning does not work
// from inside a test binary).
func TestRunSuperviseRejectsBadKnobs(t *testing.T) {
	if err := run([]string{"supervise", "-members", "10", "-n", "4"}); err == nil {
		t.Error("members > population accepted")
	}
	if err := run([]string{"fig8", "-members", "3"}); err == nil {
		t.Error("-members outside supervise accepted")
	}
	if err := run([]string{"bench", "-replace"}); err == nil {
		t.Error("-replace outside live accepted")
	}
	if err := run([]string{"live", "-replace", "-n", "16", "-ticks", "1"}); err == nil {
		t.Error("-replace without -seeds/-span accepted")
	}
	if err := run([]string{"live", "-reannounce", "50ms", "-n", "16", "-ticks", "1"}); err == nil {
		t.Error("-reannounce without -seeds/-span accepted")
	}
}

// Smoke-run the cheapest experiments end to end through the CLI path.
// Output goes to stdout; correctness of the numbers is asserted in
// package experiments — here we only care that the plumbing works.
func TestRunSmallExperiments(t *testing.T) {
	cases := [][]string{
		{"fig8", "-n", "400", "-rounds", "15"},
		{"fig10a", "-n", "400", "-rounds", "15"},
		{"ablation-pushpull", "-n", "400", "-rounds", "15"},
		{"ablation-pushpull", "-n", "400", "-rounds", "15", "-columnar"},
		{"ablation-epoch", "-n", "400", "-rounds", "15"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

// TestRunEngineBench smoke-runs the raw engine benchmark mode on both
// execution paths at a tiny population, checks the report fields, and
// exercises the profiling flags every 1M investigation starts from.
func TestRunEngineBench(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"aos", []string{"bench", "-n", "500", "-rounds", "4"}},
		{"columnar", []string{"bench", "-n", "500", "-rounds", "4", "-columnar"}},
		{"revert", []string{"bench", "-n", "500", "-rounds", "4", "-protocol", "revert", "-columnar"}},
		{"sketchreset", []string{"bench", "-n", "500", "-rounds", "4", "-protocol", "sketchreset", "-columnar", "-workers", "2"}},
	} {
		path := filepath.Join(dir, tc.name+".txt")
		cpu := filepath.Join(dir, tc.name+".cpu.pprof")
		mem := filepath.Join(dir, tc.name+".mem.pprof")
		args := append(tc.args, "-o", path, "-cpuprofile", cpu, "-memprofile", mem)
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, field := range []string{"ns/round", "msgs/round", "peak_rss_bytes", "estimate mean"} {
			if !strings.Contains(string(data), field) {
				t.Errorf("%s: report missing %q:\n%s", tc.name, field, data)
			}
		}
		for _, prof := range []string{cpu, mem} {
			if fi, err := os.Stat(prof); err != nil || fi.Size() == 0 {
				t.Errorf("%s: profile %s missing or empty (err=%v)", tc.name, prof, err)
			}
		}
	}
	if err := run([]string{"bench", "-protocol", "nope", "-n", "10"}); err == nil {
		t.Error("unknown bench protocol accepted")
	}
}
