package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"os/signal"
	"syscall"
	"time"

	"dynagg/internal/gateway"
)

// gatewayOpts parametrizes the `gateway` mode: join a running TCP
// cluster as a zero-mass observer span and serve its converged
// estimates over HTTP.
type gatewayOpts struct {
	n          int    // worker population size (observer takes slot n)
	seeds      string // comma-separated bootstrap seed addresses
	listen     string // observer span's TCP bind; "" = 127.0.0.1:0
	listenHTTP string // query API bind
	aggregates string // comma-separated initial aggregate names
	pace       time.Duration
	seed       uint64
}

// runGateway builds the observer gateway, bootstraps it into the
// cluster, and serves HTTP until SIGINT/SIGTERM.
func runGateway(out io.Writer, o gatewayOpts) error {
	if o.seeds == "" {
		return fmt.Errorf("gateway: -seeds is required (the cluster's shared seed list)")
	}
	if o.n <= 0 {
		o.n = 256
	}
	s, err := gateway.New(gateway.Config{
		Workers:    o.n,
		Seeds:      splitNames(o.seeds),
		Listen:     o.listen,
		Aggregates: splitNames(o.aggregates),
		TickEvery:  o.pace,
		Seed:       o.seed,
		Replace:    true, // a restarted gateway reclaims its span
	})
	if err != nil {
		return err
	}
	defer s.Close()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(out, "gateway: observer span [%d,%d) listening on %s, bootstrapping from %s\n",
		o.n, o.n+1, s.TransportAddr(), o.seeds)
	if err := s.Start(ctx); err != nil {
		return fmt.Errorf("gateway: bootstrap: %w", err)
	}
	ln, err := net.Listen("tcp", o.listenHTTP)
	if err != nil {
		return fmt.Errorf("gateway: http listen: %w", err)
	}
	fmt.Fprintf(out, "gateway: membership complete; serving HTTP on http://%s\n", ln.Addr())

	if err := s.Serve(ctx, ln); err != nil && err != context.Canceled {
		return err
	}
	if err := s.Wait(); err != nil && err != context.Canceled {
		return err
	}
	fmt.Fprintln(out, "gateway: shut down cleanly")
	return nil
}
