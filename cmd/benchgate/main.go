// Command benchgate turns the CI bench lane's benchstat commentary
// into a hard perf-regression gate: it compares two cmd/benchjson
// documents — the PR head's benchmark run against the base branch's —
// and exits nonzero when a benchmark's median regresses past the
// threshold, so a pull request that slows the engine down fails
// instead of merging with a comment nobody read.
//
// Usage:
//
//	benchgate -base BENCH_base.json -head BENCH_head.json [-threshold 0.10] [-metric ns/op]
//
// Gating rules (see Gate):
//
//   - Samples are grouped by (package, benchmark name); the median
//     across a -count series is compared, which absorbs one-off
//     scheduler hiccups without hiding a real slide.
//   - Only benchmarks where BOTH sides have at least one sample with
//     >= 2 iterations are enforced. benchtime=1x rows (the 1M
//     million-host configuration) time a single cold iteration and are
//     reported as directional only.
//   - Benchmarks new in head are reported but exempt — there is
//     nothing to regress from.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

func main() {
	basePath := flag.String("base", "", "benchjson document of the base branch (required)")
	headPath := flag.String("head", "", "benchjson document of the PR head (required)")
	threshold := flag.Float64("threshold", 0.10, "fail when the median regresses by more than this fraction")
	metric := flag.String("metric", "ns/op", "metric to gate on")
	flag.Parse()
	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -head are required")
		os.Exit(2)
	}

	base, err := load(*basePath)
	if err != nil {
		fatal(err)
	}
	head, err := load(*headPath)
	if err != nil {
		fatal(err)
	}

	rows, failed := Gate(base, head, *metric, *threshold)
	fmt.Printf("benchgate: %s, threshold %+.0f%%\n\n", *metric, 100**threshold)
	fmt.Printf("%-72s %14s %14s %8s  %s\n", "benchmark", "base", "head", "delta", "verdict")
	for _, r := range rows {
		fmt.Printf("%-72s %14s %14s %8s  %s\n",
			r.Key, num(r.Base), num(r.Head), pct(r.Delta), r.Status)
	}
	if failed {
		fmt.Printf("\nbenchgate: FAIL — a benchmark regressed past %+.0f%%\n", 100**threshold)
		os.Exit(1)
	}
	fmt.Printf("\nbenchgate: ok\n")
}

func load(path string) (Doc, error) {
	var d Doc
	f, err := os.Open(path)
	if err != nil {
		return d, err
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(&d); err != nil {
		return d, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

func num(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}

func pct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", 100*v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
