package main

import (
	"math"
	"testing"
)

func bench(name string, iters int64, nsOp float64) Benchmark {
	return Benchmark{
		Package: "dynagg/internal/gossip", Name: name, Procs: 1,
		Iterations: iters, Metrics: map[string]float64{"ns/op": nsOp},
	}
}

func doc(bs ...Benchmark) Doc { return Doc{Benchmarks: bs} }

func findRow(t *testing.T, rows []Row, key string) Row {
	t.Helper()
	for _, r := range rows {
		if r.Key == key {
			return r
		}
	}
	t.Fatalf("no row for %q in %+v", key, rows)
	return Row{}
}

const key = "dynagg/internal/gossip BenchmarkEngine/n=10000/push/workers=0"

// TestGateFailsOnSlowedBenchmark is the gate's reason to exist: a row
// 25% slower than base must fail a 10% threshold.
func TestGateFailsOnSlowedBenchmark(t *testing.T) {
	base := doc(bench("BenchmarkEngine/n=10000/push/workers=0", 100, 1000))
	head := doc(bench("BenchmarkEngine/n=10000/push/workers=0", 100, 1250))
	rows, failed := Gate(base, head, "ns/op", 0.10)
	if !failed {
		t.Fatal("a 25% regression passed a 10% gate")
	}
	r := findRow(t, rows, key)
	if !r.Failed {
		t.Errorf("row not marked failed: %+v", r)
	}
	if math.Abs(r.Delta-0.25) > 1e-9 {
		t.Errorf("delta = %v, want 0.25", r.Delta)
	}
}

// TestGatePassesWithinThreshold: an 8% slide is under the 10% line.
func TestGatePassesWithinThreshold(t *testing.T) {
	base := doc(bench("BenchmarkEngine/n=10000/push/workers=0", 100, 1000))
	head := doc(bench("BenchmarkEngine/n=10000/push/workers=0", 100, 1080))
	if _, failed := Gate(base, head, "ns/op", 0.10); failed {
		t.Fatal("an 8% delta failed a 10% gate")
	}
}

// TestGatePassesOnImprovement: faster is never a failure.
func TestGatePassesOnImprovement(t *testing.T) {
	base := doc(bench("BenchmarkEngine/n=10000/push/workers=0", 100, 1000))
	head := doc(bench("BenchmarkEngine/n=10000/push/workers=0", 100, 500))
	rows, failed := Gate(base, head, "ns/op", 0.10)
	if failed {
		t.Fatal("a 2x improvement failed the gate")
	}
	if r := findRow(t, rows, key); r.Status != "ok" {
		t.Errorf("status = %q, want ok", r.Status)
	}
}

// TestGateExemptsSingleIterationSamples: benchtime=1x rows (the 1M
// configuration) are directional only — even a 3x slowdown must not
// fail the build.
func TestGateExemptsSingleIterationSamples(t *testing.T) {
	base := doc(bench("BenchmarkEngine/n=1000000/push/columnar", 1, 1e9))
	head := doc(bench("BenchmarkEngine/n=1000000/push/columnar", 1, 3e9))
	rows, failed := Gate(base, head, "ns/op", 0.10)
	if failed {
		t.Fatal("a single-iteration sample failed the gate")
	}
	r := findRow(t, rows, "dynagg/internal/gossip BenchmarkEngine/n=1000000/push/columnar")
	if r.Failed {
		t.Errorf("row marked failed: %+v", r)
	}
	// Still reported directionally: the table shows the 3x delta.
	if math.IsNaN(r.Delta) {
		t.Error("directional row lost its delta")
	}
}

// TestGateExemptsNewBenchmark: a benchmark absent from base has
// nothing to regress from.
func TestGateExemptsNewBenchmark(t *testing.T) {
	base := doc(bench("BenchmarkEngine/n=10000/push/workers=0", 100, 1000))
	head := doc(
		bench("BenchmarkEngine/n=10000/push/workers=0", 100, 1000),
		bench("BenchmarkEngine/n=10000/tcp/new", 100, 5000),
	)
	rows, failed := Gate(base, head, "ns/op", 0.10)
	if failed {
		t.Fatal("a new benchmark failed the gate")
	}
	r := findRow(t, rows, "dynagg/internal/gossip BenchmarkEngine/n=10000/tcp/new")
	if r.Status != "new benchmark (exempt)" {
		t.Errorf("status = %q", r.Status)
	}
}

// TestGateMedianAbsorbsOutlier: one scheduler hiccup in a -count
// series must not fail the gate — the median is compared, not the
// worst sample.
func TestGateMedianAbsorbsOutlier(t *testing.T) {
	name := "BenchmarkEngine/n=10000/push/workers=0"
	base := doc(bench(name, 100, 1000), bench(name, 100, 1010), bench(name, 100, 1020))
	head := doc(bench(name, 100, 1030), bench(name, 100, 2500), bench(name, 100, 1040))
	rows, failed := Gate(base, head, "ns/op", 0.10)
	if failed {
		t.Fatalf("median gate failed on a single outlier: %+v", rows)
	}
	r := findRow(t, rows, key)
	if r.Head != 1040 {
		t.Errorf("head median = %v, want 1040", r.Head)
	}
}

// TestGateMixedIterationSamples: single-iteration rows in a series
// that also has solid samples are simply excluded from the gated
// median rather than exempting the whole benchmark.
func TestGateMixedIterationSamples(t *testing.T) {
	name := "BenchmarkEngine/n=10000/push/workers=0"
	base := doc(bench(name, 100, 1000), bench(name, 1, 9000))
	head := doc(bench(name, 100, 1300), bench(name, 1, 900))
	_, failed := Gate(base, head, "ns/op", 0.10)
	if !failed {
		t.Fatal("a 30% regression hid behind a single-iteration sample")
	}
}
