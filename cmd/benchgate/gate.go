package main

import (
	"fmt"
	"math"
	"sort"
)

// Doc and Benchmark mirror cmd/benchjson's output document (package
// main can't be imported, and the four fields the gate reads are a
// stable artifact format CI archives anyway).
type Doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one result row of a benchjson document.
type Benchmark struct {
	Package    string             `json:"package,omitempty"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Row is the gate's verdict on one benchmark: the medians it compared
// and why it did or did not enforce the threshold.
type Row struct {
	Key        string  // package + name
	Base, Head float64 // median metric values (NaN when absent)
	Delta      float64 // (head-base)/base, NaN when not comparable
	Status     string  // human-readable verdict
	Failed     bool    // true: this row regressed past the threshold
}

// minGatedIterations is the iteration floor below which a sample is
// treated as directional only: a benchtime=1x row (the 1M
// million-host configuration, live-run benchline rows) measures a
// single cold iteration, and single-shot timings on a shared CI
// runner swing far past any useful threshold. A key is gated only
// when base AND head both retain at least one multi-iteration sample.
const minGatedIterations = 2

// samplesByKey groups a document's rows by (package, name), keeping
// only samples that carry the gated metric.
func samplesByKey(d Doc, metric string) map[string][]Benchmark {
	m := make(map[string][]Benchmark)
	for _, b := range d.Benchmarks {
		if _, ok := b.Metrics[metric]; !ok {
			continue
		}
		key := b.Name
		if b.Package != "" {
			key = b.Package + " " + b.Name
		}
		m[key] = append(m[key], b)
	}
	return m
}

// median returns the median of the metric across samples, or NaN on
// an empty slice. The median (not the mean) absorbs the occasional
// scheduler hiccup in a -count series.
func median(samples []Benchmark, metric string) float64 {
	vals := make([]float64, 0, len(samples))
	for _, s := range samples {
		vals = append(vals, s.Metrics[metric])
	}
	if len(vals) == 0 {
		return math.NaN()
	}
	sort.Float64s(vals)
	if n := len(vals); n%2 == 1 {
		return vals[n/2]
	} else {
		return (vals[n/2-1] + vals[n/2]) / 2
	}
}

// multiIter filters a sample set down to the rows solid enough to
// gate on (see minGatedIterations).
func multiIter(samples []Benchmark) []Benchmark {
	var out []Benchmark
	for _, s := range samples {
		if s.Iterations >= minGatedIterations {
			out = append(out, s)
		}
	}
	return out
}

// Gate compares head against base and returns one row per benchmark
// present in head, sorted by key, plus whether any row failed. A row
// fails when its median regresses by more than threshold AND both
// sides have multi-iteration samples to stand on; new benchmarks and
// directional-only rows are reported but exempt.
func Gate(base, head Doc, metric string, threshold float64) ([]Row, bool) {
	baseBy := samplesByKey(base, metric)
	headBy := samplesByKey(head, metric)

	keys := make([]string, 0, len(headBy))
	for k := range headBy {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var rows []Row
	failed := false
	for _, key := range keys {
		headAll := headBy[key]
		baseAll, inBase := baseBy[key]
		r := Row{Key: key, Base: math.NaN(), Head: math.NaN(), Delta: math.NaN()}
		baseGated, headGated := multiIter(baseAll), multiIter(headAll)
		switch {
		case !inBase:
			r.Head = median(headAll, metric)
			r.Status = "new benchmark (exempt)"
		case len(baseGated) == 0 || len(headGated) == 0:
			// Compare what's there so the table stays informative, but
			// a single-iteration timing never fails the build.
			r.Base, r.Head = median(baseAll, metric), median(headAll, metric)
			r.Delta = (r.Head - r.Base) / r.Base
			r.Status = "directional only (single-iteration samples, exempt)"
		default:
			r.Base, r.Head = median(baseGated, metric), median(headGated, metric)
			r.Delta = (r.Head - r.Base) / r.Base
			if r.Delta > threshold {
				r.Status = fmt.Sprintf("REGRESSION (>%+.0f%%)", 100*threshold)
				r.Failed = true
				failed = true
			} else {
				r.Status = "ok"
			}
		}
		rows = append(rows, r)
	}
	return rows, failed
}
