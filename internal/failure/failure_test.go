package failure

import (
	"testing"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/pushsum"
)

// newEngine builds a minimal engine over the population so hooks can be
// driven through real rounds.
func newEngine(t *testing.T, u *env.Uniform, hooks []gossip.Hook) *gossip.Engine {
	t.Helper()
	agents := make([]gossip.Agent, u.Size())
	for i := range agents {
		agents[i] = pushsum.NewAverage(gossip.NodeID(i), float64(i))
	}
	e, err := gossip.NewEngine(gossip.Config{
		Env: u, Agents: agents, Model: gossip.Push, Seed: 1, BeforeRound: hooks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRandomAtFailsFraction(t *testing.T) {
	u := env.NewUniform(100)
	e := newEngine(t, u, []gossip.Hook{RandomAt(2, 0.5, u.Population, 7)})
	e.Run(2)
	if u.AliveCount() != 100 {
		t.Fatalf("hook fired early: %d alive", u.AliveCount())
	}
	e.Step() // round 2
	if u.AliveCount() != 50 {
		t.Errorf("alive after RandomAt(0.5) = %d, want 50", u.AliveCount())
	}
	e.Run(3)
	if u.AliveCount() != 50 {
		t.Errorf("hook fired again: %d alive", u.AliveCount())
	}
}

func TestRandomAtDeterministic(t *testing.T) {
	survivors := func() map[gossip.NodeID]bool {
		u := env.NewUniform(60)
		e := newEngine(t, u, []gossip.Hook{RandomAt(0, 0.3, u.Population, 42)})
		e.Step()
		out := map[gossip.NodeID]bool{}
		for _, id := range u.AliveIDs() {
			out[id] = true
		}
		return out
	}
	a, b := survivors(), survivors()
	if len(a) != len(b) {
		t.Fatalf("different survivor counts: %d vs %d", len(a), len(b))
	}
	for id := range a {
		if !b[id] {
			t.Fatalf("survivor sets differ at %d", id)
		}
	}
}

func TestTopValuedAtFailsHighest(t *testing.T) {
	u := env.NewUniform(10)
	values := []float64{5, 1, 9, 3, 7, 2, 8, 0, 6, 4}
	e := newEngine(t, u, []gossip.Hook{TopValuedAt(0, 0.5, u.Population, values)})
	e.Step()
	if u.AliveCount() != 5 {
		t.Fatalf("alive = %d, want 5", u.AliveCount())
	}
	// Survivors must be the lowest-valued half: values 0..4.
	for _, id := range u.AliveIDs() {
		if values[id] >= 5 {
			t.Errorf("high-valued host %d (value %v) survived", id, values[id])
		}
	}
}

func TestTopValuedAtTieBreaksById(t *testing.T) {
	u := env.NewUniform(4)
	values := []float64{1, 1, 1, 1}
	e := newEngine(t, u, []gossip.Hook{TopValuedAt(0, 0.5, u.Population, values)})
	e.Step()
	// Deterministic: ties sort ascending by id, so the lowest ids are
	// failed first and the highest survive.
	if u.Population.Alive(0) || u.Population.Alive(1) || !u.Population.Alive(2) || !u.Population.Alive(3) {
		t.Errorf("tie-break wrong: alive = %v %v %v %v",
			u.Population.Alive(0), u.Population.Alive(1), u.Population.Alive(2), u.Population.Alive(3))
	}
}

func TestChurnKeepsPopulationInMotion(t *testing.T) {
	u := env.NewUniform(200)
	e := newEngine(t, u, []gossip.Hook{Churn(0, 0.05, u.Population, 3)})
	e.Run(40)
	alive := u.AliveCount()
	// Churn fails and revives at the same rate; the population should
	// hover near its size, never drain.
	if alive < 100 || alive > 200 {
		t.Errorf("alive after churn = %d, want 100..200", alive)
	}
	// At least someone must have died at some point.
	dead := 0
	for i := 0; i < u.Size(); i++ {
		if !u.Population.Alive(gossip.NodeID(i)) {
			dead++
		}
	}
	if dead == 0 {
		t.Error("churn never failed anyone")
	}
}

func TestChurnStartsAtRound(t *testing.T) {
	u := env.NewUniform(100)
	e := newEngine(t, u, []gossip.Hook{Churn(5, 0.5, u.Population, 4)})
	e.Run(5)
	if u.AliveCount() != 100 {
		t.Errorf("churn fired before its start round: %d alive", u.AliveCount())
	}
}

func TestFailAndReviveSet(t *testing.T) {
	u := env.NewUniform(10)
	ids := []gossip.NodeID{1, 3, 5}
	e := newEngine(t, u, []gossip.Hook{
		FailSet(1, ids, u.Population),
		ReviveSet(3, ids, u.Population),
	})
	e.Run(2)
	for _, id := range ids {
		if u.Population.Alive(id) {
			t.Errorf("host %d alive after FailSet", id)
		}
	}
	if u.AliveCount() != 7 {
		t.Errorf("alive = %d, want 7", u.AliveCount())
	}
	e.Run(2)
	for _, id := range ids {
		if !u.Population.Alive(id) {
			t.Errorf("host %d dead after ReviveSet", id)
		}
	}
	if u.AliveCount() != 10 {
		t.Errorf("alive = %d, want 10", u.AliveCount())
	}
}
