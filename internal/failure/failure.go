// Package failure injects the evaluation's failure models into a
// running simulation. Failures are always *silent*: the environment's
// liveness flips and nothing else is told. Locally, a failed peer is
// indistinguishable from one that moved away — the situation the
// dynamic protocols are designed for.
package failure

import (
	"sort"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/xrand"
)

// RandomAt returns a BeforeRound hook that, at the given round, fails
// a uniform random fraction of the currently live hosts — the
// "uncorrelated failures" model of Figure 8 (50,000 of 100,000 random
// hosts at round 20).
func RandomAt(round int, frac float64, pop *env.Population, seed uint64) gossip.Hook {
	return func(r int, e *gossip.Engine) {
		if r != round {
			return
		}
		rng := xrand.New(seed)
		live := append([]gossip.NodeID(nil), pop.AliveIDs()...)
		// Sort for determinism: AliveIDs order depends on history.
		sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
		k := int(frac * float64(len(live)))
		idx := rng.Sample(make([]int, k), len(live))
		for _, i := range idx {
			pop.Fail(live[i])
		}
	}
}

// TopValuedAt returns a BeforeRound hook that, at the given round,
// fails the highest-valued fraction of the live hosts — the
// "correlated failures" model of Figure 10 (failing the top-valued
// half drops the true average from 50 to 25). values[i] is host i's
// data value.
func TopValuedAt(round int, frac float64, pop *env.Population, values []float64) gossip.Hook {
	return func(r int, e *gossip.Engine) {
		if r != round {
			return
		}
		live := append([]gossip.NodeID(nil), pop.AliveIDs()...)
		sort.Slice(live, func(i, j int) bool {
			vi, vj := values[live[i]], values[live[j]]
			if vi != vj {
				return vi > vj // highest first
			}
			return live[i] < live[j]
		})
		k := int(frac * float64(len(live)))
		for _, id := range live[:k] {
			pop.Fail(id)
		}
	}
}

// Churn returns a BeforeRound hook implementing continuous membership
// churn from startRound on: each round, a Poisson-ish number of live
// hosts (rate × live population) fail and the same expected number of
// dead hosts rejoin. It keeps long-running simulations in motion
// without draining the population.
func Churn(startRound int, rate float64, pop *env.Population, seed uint64) gossip.Hook {
	rng := xrand.New(seed)
	return func(r int, e *gossip.Engine) {
		if r < startRound {
			return
		}
		n := pop.Size()
		for i := 0; i < n; i++ {
			id := gossip.NodeID(i)
			if pop.Alive(id) {
				if rng.Prob(rate) {
					pop.Fail(id)
				}
			} else if rng.Prob(rate) {
				pop.Revive(id)
			}
		}
	}
}

// RegionOutage returns a BeforeRound hook implementing a correlated
// regional outage that heals: every host in [lo, hi) fails at round
// start and revives at round end. Hosts outside the region never
// notice beyond their peers going silent — the datacenter-loses-power
// model the uncorrelated Churn cannot express.
func RegionOutage(start, end, lo, hi int, pop *env.Population) gossip.Hook {
	return func(r int, e *gossip.Engine) {
		switch r {
		case start:
			for id := lo; id < hi; id++ {
				pop.Fail(gossip.NodeID(id))
			}
		case end:
			for id := lo; id < hi; id++ {
				pop.Revive(gossip.NodeID(id))
			}
		}
	}
}

// ChurnStorm returns a BeforeRound hook implementing repeating churn
// bursts: from round start on, every period rounds the population
// endures burst consecutive rounds of per-host fail/revive churn at
// the given rate, then goes quiet again — sustained instability with
// calm windows for recovery, unlike the continuous Churn.
func ChurnStorm(start, period, burst int, rate float64, pop *env.Population, seed uint64) gossip.Hook {
	rng := xrand.New(seed)
	return func(r int, e *gossip.Engine) {
		if r < start || (r-start)%period >= burst {
			return
		}
		n := pop.Size()
		for i := 0; i < n; i++ {
			id := gossip.NodeID(i)
			if pop.Alive(id) {
				if rng.Prob(rate) {
					pop.Fail(id)
				}
			} else if rng.Prob(rate) {
				pop.Revive(id)
			}
		}
	}
}

// FailSet returns a BeforeRound hook that fails an explicit host set at
// the given round, for scripted scenarios.
func FailSet(round int, ids []gossip.NodeID, pop *env.Population) gossip.Hook {
	return func(r int, e *gossip.Engine) {
		if r != round {
			return
		}
		for _, id := range ids {
			pop.Fail(id)
		}
	}
}

// ReviveSet returns a BeforeRound hook that revives an explicit host
// set at the given round (a join wave).
func ReviveSet(round int, ids []gossip.NodeID, pop *env.Population) gossip.Hook {
	return func(r int, e *gossip.Engine) {
		if r != round {
			return
		}
		for _, id := range ids {
			pop.Revive(id)
		}
	}
}
