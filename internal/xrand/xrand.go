// Package xrand provides a small, fast, deterministic pseudo-random
// number generator for the simulator.
//
// The simulator needs three properties the stdlib generators do not
// guarantee together:
//
//  1. Stable streams across Go releases (math/rand's global functions
//     changed seeding behaviour in Go 1.20): experiment output for a
//     given seed must be reproducible forever.
//  2. Cheap splittable sub-streams, so each simulated host can own an
//     independent generator derived from the experiment seed and the
//     host id, with no cross-correlation between hosts.
//  3. No locking: the round engine runs hosts in parallel, so every
//     host needs a private generator.
//
// The implementation is PCG-XSH-RR 64/32 (O'Neill, 2014) with a
// SplitMix64 seed scrambler. Both are public-domain algorithms that
// are trivially reimplemented from the reference definitions.
package xrand

import (
	"math"
	"math/bits"
)

const (
	pcgMultiplier = 6364136223846793005
	splitmixGamma = 0x9e3779b97f4a7c15
)

// Rand is a deterministic PCG-32 generator. It is not safe for
// concurrent use; create one per goroutine with Split.
type Rand struct {
	state uint64
	inc   uint64 // stream selector; always odd
}

// New returns a generator seeded from seed on the default stream.
func New(seed uint64) *Rand {
	return NewStream(seed, 0)
}

// NewStream returns a generator seeded from seed on the given stream.
// Different streams with the same seed produce independent sequences.
func NewStream(seed, stream uint64) *Rand {
	r := &Rand{inc: (splitmix(stream) << 1) | 1}
	r.state = splitmix(seed) + r.inc
	r.Uint32()
	return r
}

// splitmix is the SplitMix64 output function, used to scramble seeds so
// that consecutive integer seeds yield unrelated states.
func splitmix(x uint64) uint64 {
	x += splitmixGamma
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Split derives an independent generator for sub-entity i (for example
// a host id). The derived stream is stable: Split(i) on generators with
// equal state yields equal streams.
func (r *Rand) Split(i uint64) *Rand {
	return NewStream(r.state^splitmix(i), splitmix(i)^r.inc)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMultiplier + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint(old >> 59)
	return bits.RotateLeft32(xorshifted, -int(rot))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
//
// Uses Lemire's nearly-divisionless multiply-shift reduction: the
// high word of a 32×32 multiply is the draw, and the biased region at
// the bottom of the low word is rejected. The rejection threshold
// (2³² mod n) costs a hardware divide, so it is computed lazily, only
// when the low word falls below n — which happens with probability
// n/2³², so the hot path (a million peer picks per round at
// simulation scale) is multiply-shift-compare with no division at
// all. The lazy form accepts and rejects exactly the same draws as
// the eager one, so the output stream is unchanged
// (TestIntnMatchesEagerLemire pins this).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	if uint64(n) > 1<<32-1 {
		// A 32-bit draw cannot cover the range; refuse loudly rather
		// than truncate the bound (or, for exact multiples of 2³²,
		// degenerate into a constant 0).
		panic("xrand: Intn bound exceeds 32 bits")
	}
	bound := uint32(n)
	prod := uint64(r.Uint32()) * uint64(bound)
	if low := uint32(prod); low < bound {
		// threshold = 2³² mod bound < bound, so low ≥ bound always
		// passes and never needed the divide.
		threshold := -bound % bound
		for low < threshold {
			prod = uint64(r.Uint32()) * uint64(bound)
			low = uint32(prod)
		}
	}
	return int(prod >> 32)
}

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *Rand) Bool() bool {
	return r.Uint32()&1 == 1
}

// Prob returns true with probability p (clamped to [0,1]).
func (r *Rand) Prob(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1,
// via inversion. Multiply by the desired mean.
func (r *Rand) ExpFloat64() float64 {
	// 1 - Float64() is in (0, 1], so the log is finite.
	return -math.Log(1 - r.Float64())
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap, Fisher-Yates.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample fills dst with a uniform sample of distinct ints from [0, n)
// using Floyd's algorithm, and returns dst. It panics if len(dst) > n.
func (r *Rand) Sample(dst []int, n int) []int {
	k := len(dst)
	if k > n {
		panic("xrand: Sample size exceeds population")
	}
	seen := make(map[int]struct{}, k)
	idx := 0
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := seen[t]; dup {
			t = j
		}
		seen[t] = struct{}{}
		dst[idx] = t
		idx++
	}
	return dst
}
