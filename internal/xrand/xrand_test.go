package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("sequence diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 0 and 1 produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(99)
	a := root.Split(1)
	b := root.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams produced %d/100 identical draws", same)
	}
}

func TestSplitStable(t *testing.T) {
	a := New(5).Split(17)
	b := New(5).Split(17)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Split not stable at draw %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnPanicsBeyond32Bits(t *testing.T) {
	if uint64(^uint(0)) <= 1<<32-1 {
		t.Skip("32-bit int platform: oversized bounds unrepresentable")
	}
	// 1<<32 wraps uint32(n) to 0: the eager form panicked on the
	// threshold divide, and the lazy form must stay loud rather than
	// returning a constant 0.
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(1<<32) did not panic")
		}
	}()
	New(1).Intn(1 << 32)
}

// eagerLemireIntn is the reference bounded draw Intn replaced: the
// same multiply-shift rejection, with the threshold divide paid
// eagerly on every call. The lazy implementation must accept and
// reject exactly the same Uint32 draws, so the two produce identical
// value streams from identical generator states.
func eagerLemireIntn(r *Rand, n int) int {
	bound := uint32(n)
	threshold := -bound % bound
	for {
		v := r.Uint32()
		prod := uint64(v) * uint64(bound)
		if uint32(prod) >= threshold {
			return int(prod >> 32)
		}
	}
}

// TestIntnMatchesEagerLemire pins the nearly-divisionless Intn to the
// eager reference draw-for-draw across awkward bounds (powers of two,
// off-by-one neighbours, primes, and bounds large enough to make
// rejection common), guaranteeing that the optimization moved no
// golden value anywhere in the simulator.
func TestIntnMatchesEagerLemire(t *testing.T) {
	bounds := []int{1, 2, 3, 7, 10, 16, 17, 97, 1000, 4096, 1 << 20,
		1<<31 - 1, 3<<29 + 11}
	for _, n := range bounds {
		a := New(42)
		b := New(42)
		for i := 0; i < 2000; i++ {
			got, want := a.Intn(n), eagerLemireIntn(b, n)
			if got != want {
				t.Fatalf("Intn(%d) draw %d: got %d, reference %d", n, i, got, want)
			}
			if a.state != b.state {
				t.Fatalf("Intn(%d) draw %d: generator states diverged", n, i)
			}
		}
	}
}

// TestIntnGolden pins absolute values of the bounded draw, so any
// future change to the reduction (or to the underlying PCG stream)
// that would silently invalidate recorded experiment output fails
// loudly here.
func TestIntnGolden(t *testing.T) {
	r := New(1)
	got := make([]int, 12)
	for i := range got {
		got[i] = r.Intn(100000)
	}
	want := []int{38048, 84187, 69173, 77767, 24074, 92061, 39646, 38957, 38461, 38466, 51196, 33884}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Intn(100000) sequence diverged at %d: got %v, want %v", i, got, want)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n = 10
	const draws = 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expected := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("value %d drawn %d times, expected ~%.0f", v, c, expected)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(8)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(21)
	var sum float64
	const draws = 200000
	for i := 0; i < draws; i++ {
		sum += r.Float64()
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestProbExtremes(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Prob(0) {
			t.Fatal("Prob(0) returned true")
		}
		if !r.Prob(1) {
			t.Fatal("Prob(1) returned false")
		}
	}
}

func TestProbRate(t *testing.T) {
	r := New(13)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Prob(0.3) {
			hits++
		}
	}
	rate := float64(hits) / draws
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Prob(0.3) hit rate = %v", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(77)
	f := func(nRaw uint8) bool {
		n := int(nRaw % 64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(31)
	f := func(kRaw, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		k := int(kRaw) % (n + 1)
		dst := r.Sample(make([]int, k), n)
		seen := make(map[int]bool, k)
		for _, v := range dst {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(dst) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamplePanicsWhenTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample with k > n did not panic")
		}
	}()
	New(1).Sample(make([]int, 5), 3)
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(55)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: sum=%d", sum)
	}
}

func TestExpFloat64Positive(t *testing.T) {
	r := New(9)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(12)
	var sum, sumsq float64
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("NormFloat64 mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("NormFloat64 variance = %v, want ~1", variance)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(66)
	trues := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool() {
			trues++
		}
	}
	rate := float64(trues) / draws
	if math.Abs(rate-0.5) > 0.01 {
		t.Fatalf("Bool true rate = %v", rate)
	}
}

func BenchmarkUint32(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint32()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(100000)
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}
