// Package env implements the paper's three gossip environments:
// idealized uniform gossip over a fully connected population, spatially
// distributed gossip on a grid with 1/d²-biased multi-hop walks, and
// trace-driven gossip replaying wireless contact traces.
package env

import (
	"fmt"

	"dynagg/internal/gossip"
	"dynagg/internal/xrand"
)

// Population tracks which hosts are currently participating. It is the
// mutable liveness substrate shared by the environments; failure
// schedules flip hosts here. Hosts fail *silently*: nothing in the
// protocol layer is notified.
type Population struct {
	alive []bool
	ids   []gossip.NodeID // live ids in arbitrary order, for O(1) picks
	pos   []int32         // index of id within ids, -1 when dead
}

// NewPopulation returns a population of n hosts, all alive.
func NewPopulation(n int) *Population {
	p := &Population{
		alive: make([]bool, n),
		ids:   make([]gossip.NodeID, n),
		pos:   make([]int32, n),
	}
	for i := 0; i < n; i++ {
		p.alive[i] = true
		p.ids[i] = gossip.NodeID(i)
		p.pos[i] = int32(i)
	}
	return p
}

// Size returns the total population, dead or alive.
func (p *Population) Size() int { return len(p.alive) }

// AliveCount returns the number of live hosts.
func (p *Population) AliveCount() int { return len(p.ids) }

// Alive reports whether the host participates.
func (p *Population) Alive(id gossip.NodeID) bool { return p.alive[id] }

// Fail silently removes a host. Failing a dead host is a no-op.
func (p *Population) Fail(id gossip.NodeID) {
	if !p.alive[id] {
		return
	}
	p.alive[id] = false
	// Swap-remove from the live list.
	i := p.pos[id]
	last := len(p.ids) - 1
	moved := p.ids[last]
	p.ids[i] = moved
	p.pos[moved] = i
	p.ids = p.ids[:last]
	p.pos[id] = -1
}

// Revive returns a host to the population (a join). Reviving a live
// host is a no-op.
func (p *Population) Revive(id gossip.NodeID) {
	if p.alive[id] {
		return
	}
	p.alive[id] = true
	p.pos[id] = int32(len(p.ids))
	p.ids = append(p.ids, id)
}

// AliveIDs returns the live hosts in arbitrary order. The slice is
// shared; callers must not modify it.
func (p *Population) AliveIDs() []gossip.NodeID { return p.ids }

// PickOther draws a uniform live host different from self; ok is false
// when self is the only live host (or none are).
func (p *Population) PickOther(self gossip.NodeID, rng *xrand.Rand) (gossip.NodeID, bool) {
	n := len(p.ids)
	if n == 0 || (n == 1 && p.ids[0] == self) {
		return 0, false
	}
	for {
		c := p.ids[rng.Intn(n)]
		if c != self {
			return c, true
		}
	}
}

// Uniform is the idealized fully connected gossip environment used for
// the 100,000-host experiments: every live host can contact every
// other live host with equal probability.
type Uniform struct {
	*Population
}

// NewUniform returns a uniform environment over n hosts.
func NewUniform(n int) *Uniform {
	return &Uniform{Population: NewPopulation(n)}
}

// Alive implements gossip.Environment.
func (u *Uniform) Alive(id gossip.NodeID, round int) bool { return u.Population.Alive(id) }

// Pick implements gossip.Environment: a uniform live peer.
func (u *Uniform) Pick(id gossip.NodeID, round int, rng *xrand.Rand) (gossip.NodeID, bool) {
	return u.PickOther(id, rng)
}

// Advance implements gossip.Environment; the uniform topology is
// static.
func (u *Uniform) Advance(round int) {}

// Grid is the spatially distributed environment of §IV: hosts sit on a
// W×H torus and reach peers through multi-hop random walks whose
// length d is drawn with P[d] ∝ 1/d², the spatial-gossip distribution
// of Kempe/Kleinberg/Demers that preserves logarithmic convergence.
type Grid struct {
	*Population
	w, h    int
	maxDist int
	distCDF []float64 // cumulative P[d <= k], k from 1..maxDist
}

// NewGrid returns a grid environment of w×h hosts with walk lengths up
// to maxDist (0 means a default of max(w,h)/2).
func NewGrid(w, h, maxDist int) *Grid {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("env: invalid grid %dx%d", w, h))
	}
	if maxDist <= 0 {
		maxDist = max(w, h) / 2
		if maxDist < 1 {
			maxDist = 1
		}
	}
	g := &Grid{
		Population: NewPopulation(w * h),
		w:          w,
		h:          h,
		maxDist:    maxDist,
	}
	// P[d] ∝ 1/d², normalized over 1..maxDist.
	var total float64
	g.distCDF = make([]float64, maxDist)
	for d := 1; d <= maxDist; d++ {
		total += 1 / float64(d*d)
		g.distCDF[d-1] = total
	}
	for i := range g.distCDF {
		g.distCDF[i] /= total
	}
	return g
}

// Width returns the grid width.
func (g *Grid) Width() int { return g.w }

// Height returns the grid height.
func (g *Grid) Height() int { return g.h }

// Alive implements gossip.Environment.
func (g *Grid) Alive(id gossip.NodeID, round int) bool { return g.Population.Alive(id) }

// Advance implements gossip.Environment; the grid is static.
func (g *Grid) Advance(round int) {}

// coord converts a node id to grid coordinates.
func (g *Grid) coord(id gossip.NodeID) (x, y int) {
	return int(id) % g.w, int(id) / g.w
}

// node converts torus coordinates to a node id.
func (g *Grid) node(x, y int) gossip.NodeID {
	x = ((x % g.w) + g.w) % g.w
	y = ((y % g.h) + g.h) % g.h
	return gossip.NodeID(y*g.w + x)
}

// NeighborsOf returns the four torus-adjacent hosts of id (dead or
// alive), for overlay construction.
func (g *Grid) NeighborsOf(id gossip.NodeID) []gossip.NodeID {
	x, y := g.coord(id)
	return []gossip.NodeID{
		g.node(x+1, y), g.node(x-1, y), g.node(x, y+1), g.node(x, y-1),
	}
}

// sampleDistance draws a walk length with P[d] ∝ 1/d².
func (g *Grid) sampleDistance(rng *xrand.Rand) int {
	u := rng.Float64()
	for d, c := range g.distCDF {
		if u <= c {
			return d + 1
		}
	}
	return g.maxDist
}

// Pick implements gossip.Environment: a random walk of 1/d²-sampled
// length over the torus; the endpoint is the peer. A handful of
// retries cover walks that end at self or at a dead host.
func (g *Grid) Pick(id gossip.NodeID, round int, rng *xrand.Rand) (gossip.NodeID, bool) {
	if g.AliveCount() <= 1 {
		return 0, false
	}
	const retries = 8
	for attempt := 0; attempt < retries; attempt++ {
		d := g.sampleDistance(rng)
		x, y := g.coord(id)
		for step := 0; step < d; step++ {
			switch rng.Intn(4) {
			case 0:
				x++
			case 1:
				x--
			case 2:
				y++
			default:
				y--
			}
		}
		peer := g.node(x, y)
		if peer != id && g.Population.Alive(peer) {
			return peer, true
		}
	}
	// Fall back to any live neighbor by walking outward one step at a
	// time; guarantees progress on sparse populations.
	return g.PickOther(id, rng)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
