package env

import (
	"fmt"
	"math"

	"dynagg/internal/gossip"
	"dynagg/internal/xrand"
)

// Mobile is a random-waypoint mobility environment: hosts move through
// a rectangular field and can gossip only with hosts currently within
// radio range. This is the paper's motivating setting — "wireless-
// enabled mobile devices ... create a highly dynamic environment" —
// with mobility itself providing the long-distance mixing that §IV's
// spatial-gossip analysis otherwise gets from multi-hop walks.
//
// Each host repeatedly picks a uniform waypoint in the field and a
// speed, walks there in straight-line steps of speed×Δt per round,
// then picks the next. Neighbor queries use a uniform grid hash with
// cell size equal to the radio range, so a round costs O(n + contacts).
//
// Mobile is deterministic per seed and implements gossip.Environment.
type Mobile struct {
	*Population
	cfg MobileConfig
	rng *xrand.Rand

	x, y   []float64
	wx, wy []float64 // current waypoint
	speed  []float64

	cells    map[[2]int32][]gossip.NodeID
	lastMove int // last round whose movement has been applied
}

// MobileConfig parametrizes the mobility model.
type MobileConfig struct {
	// N is the host count.
	N int
	// Width and Height are the field dimensions, in meters.
	Width, Height float64
	// Range is the radio range, in meters.
	Range float64
	// MinSpeed and MaxSpeed bound the per-leg speeds, in meters per
	// round (speed × Δt pre-multiplied).
	MinSpeed, MaxSpeed float64
	// Seed drives waypoint selection.
	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c MobileConfig) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("env: Mobile needs hosts, got %d", c.N)
	}
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("env: Mobile field %vx%v invalid", c.Width, c.Height)
	}
	if c.Range <= 0 {
		return fmt.Errorf("env: Mobile radio range %v invalid", c.Range)
	}
	if c.MinSpeed < 0 || c.MaxSpeed < c.MinSpeed {
		return fmt.Errorf("env: Mobile speeds [%v, %v] invalid", c.MinSpeed, c.MaxSpeed)
	}
	return nil
}

// NewMobile returns a mobility environment with hosts placed uniformly
// at random and already heading to their first waypoints.
func NewMobile(cfg MobileConfig) (*Mobile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Mobile{
		Population: NewPopulation(cfg.N),
		cfg:        cfg,
		rng:        xrand.New(cfg.Seed),
		x:          make([]float64, cfg.N),
		y:          make([]float64, cfg.N),
		wx:         make([]float64, cfg.N),
		wy:         make([]float64, cfg.N),
		speed:      make([]float64, cfg.N),
		cells:      make(map[[2]int32][]gossip.NodeID),
		lastMove:   -1,
	}
	for i := 0; i < cfg.N; i++ {
		m.x[i] = m.rng.Float64() * cfg.Width
		m.y[i] = m.rng.Float64() * cfg.Height
		m.newLeg(i)
	}
	m.rebuildIndex()
	return m, nil
}

// newLeg assigns host i a fresh waypoint and speed.
func (m *Mobile) newLeg(i int) {
	m.wx[i] = m.rng.Float64() * m.cfg.Width
	m.wy[i] = m.rng.Float64() * m.cfg.Height
	m.speed[i] = m.cfg.MinSpeed + m.rng.Float64()*(m.cfg.MaxSpeed-m.cfg.MinSpeed)
}

// Position returns host id's current coordinates.
func (m *Mobile) Position(id gossip.NodeID) (x, y float64) {
	return m.x[id], m.y[id]
}

// Advance implements gossip.Environment: move every host one step and
// rebuild the neighbor index. Dead hosts keep moving — a departed
// device does not stop existing, it merely stops participating — so a
// revived host reappears wherever its carrier has wandered.
func (m *Mobile) Advance(round int) {
	if round <= m.lastMove {
		return
	}
	m.lastMove = round
	for i := 0; i < m.cfg.N; i++ {
		dx := m.wx[i] - m.x[i]
		dy := m.wy[i] - m.y[i]
		dist := math.Hypot(dx, dy)
		if dist <= m.speed[i] || dist == 0 {
			m.x[i], m.y[i] = m.wx[i], m.wy[i]
			m.newLeg(i)
			continue
		}
		m.x[i] += dx / dist * m.speed[i]
		m.y[i] += dy / dist * m.speed[i]
	}
	m.rebuildIndex()
}

func (m *Mobile) cellOf(x, y float64) [2]int32 {
	return [2]int32{int32(x / m.cfg.Range), int32(y / m.cfg.Range)}
}

func (m *Mobile) rebuildIndex() {
	for k := range m.cells {
		delete(m.cells, k)
	}
	for i := 0; i < m.cfg.N; i++ {
		c := m.cellOf(m.x[i], m.y[i])
		m.cells[c] = append(m.cells[c], gossip.NodeID(i))
	}
}

// Alive implements gossip.Environment.
func (m *Mobile) Alive(id gossip.NodeID, round int) bool {
	return m.Population.Alive(id)
}

// inRange reports whether hosts a and b are within radio range.
func (m *Mobile) inRange(a, b gossip.NodeID) bool {
	dx := m.x[a] - m.x[b]
	dy := m.y[a] - m.y[b]
	return dx*dx+dy*dy <= m.cfg.Range*m.cfg.Range
}

// NeighborsOf returns the live hosts currently within radio range of
// id, in ascending order of cell scan (deterministic).
func (m *Mobile) NeighborsOf(id gossip.NodeID) []gossip.NodeID {
	var out []gossip.NodeID
	c := m.cellOf(m.x[id], m.y[id])
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for _, other := range m.cells[[2]int32{c[0] + dx, c[1] + dy}] {
				if other != id && m.Population.Alive(other) && m.inRange(id, other) {
					out = append(out, other)
				}
			}
		}
	}
	return out
}

// Degree returns the number of live hosts in radio range of id.
func (m *Mobile) Degree(id gossip.NodeID) int { return len(m.NeighborsOf(id)) }

// Pick implements gossip.Environment: a uniform live host within radio
// range, or ok=false when the host is isolated.
func (m *Mobile) Pick(id gossip.NodeID, round int, rng *xrand.Rand) (gossip.NodeID, bool) {
	nbrs := m.NeighborsOf(id)
	if len(nbrs) == 0 {
		return 0, false
	}
	return nbrs[rng.Intn(len(nbrs))], true
}

// MeanDegree returns the average live-neighbor count over live hosts —
// the density statistic the paper suggests feeding back into protocol
// parameters ("Push-Sum-Revert may be used to compute average node
// degree").
func (m *Mobile) MeanDegree() float64 {
	ids := m.AliveIDs()
	if len(ids) == 0 {
		return 0
	}
	var sum int
	for _, id := range ids {
		sum += m.Degree(id)
	}
	return float64(sum) / float64(len(ids))
}
