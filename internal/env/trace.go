package env

import (
	"time"

	"dynagg/internal/gossip"
	"dynagg/internal/groups"
	"dynagg/internal/trace"
	"dynagg/internal/xrand"
)

// TraceEnv replays a wireless contact trace: hosts may gossip only
// with devices currently in radio range, one round per gossip
// interval (the paper uses 30 seconds). Ground truth for trace runs is
// per connectivity group, computed over the 10-minute edge union.
type TraceEnv struct {
	*Population
	cursor   *trace.Cursor
	interval time.Duration
	window   time.Duration
}

// NewTraceEnv wraps a trace. interval is the simulated time per gossip
// round; window is the "nearby" edge-union horizon. Zero values get
// the paper's defaults (30 s, 10 min).
func NewTraceEnv(t *trace.Trace, interval, window time.Duration) *TraceEnv {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	if window <= 0 {
		window = groups.DefaultWindowSeconds * time.Second
	}
	return &TraceEnv{
		Population: NewPopulation(t.N),
		cursor:     trace.NewCursor(t),
		interval:   interval,
		window:     window,
	}
}

// Interval returns the simulated time per gossip round.
func (e *TraceEnv) Interval() time.Duration { return e.interval }

// Now returns the current simulated time.
func (e *TraceEnv) Now() time.Duration { return e.cursor.Now() }

// Rounds returns the number of gossip rounds the underlying trace
// spans.
func (e *TraceEnv) Rounds() int {
	return int(e.cursor.TraceDuration() / e.interval)
}

// Advance implements gossip.Environment: move simulated time to the
// round boundary.
func (e *TraceEnv) Advance(round int) {
	e.cursor.AdvanceTo(time.Duration(round) * e.interval)
}

// Alive implements gossip.Environment.
func (e *TraceEnv) Alive(id gossip.NodeID, round int) bool {
	return e.Population.Alive(id)
}

// Pick implements gossip.Environment: a uniform live device currently
// in radio range.
func (e *TraceEnv) Pick(id gossip.NodeID, round int, rng *xrand.Rand) (gossip.NodeID, bool) {
	nbrs := e.cursor.Neighbors(int(id))
	if len(nbrs) == 0 {
		return 0, false
	}
	// Reservoir-pick a live neighbor without allocating a filtered
	// slice: count live first (neighbor lists are tiny).
	live := 0
	for _, b := range nbrs {
		if e.Population.Alive(gossip.NodeID(b)) {
			live++
		}
	}
	if live == 0 {
		return 0, false
	}
	k := rng.Intn(live)
	for _, b := range nbrs {
		if e.Population.Alive(gossip.NodeID(b)) {
			if k == 0 {
				return gossip.NodeID(b), true
			}
			k--
		}
	}
	return 0, false // unreachable
}

// Groups returns the current group assignment over the 10-minute edge
// union, restricted to live devices (edges touching dead devices are
// dropped).
func (e *TraceEnv) Groups() groups.Assignment {
	edges := e.cursor.RecentEdges(e.window)
	filtered := edges[:0]
	for _, ed := range edges {
		if e.Population.Alive(gossip.NodeID(ed[0])) && e.Population.Alive(gossip.NodeID(ed[1])) {
			filtered = append(filtered, ed)
		}
	}
	return groups.Assign(e.Size(), filtered)
}

// Degree returns the current radio-range neighbor count of a device.
func (e *TraceEnv) Degree(id gossip.NodeID) int { return e.cursor.Degree(int(id)) }

// NeighborsOf returns the devices currently in radio range of id, for
// overlay construction.
func (e *TraceEnv) NeighborsOf(id gossip.NodeID) []gossip.NodeID {
	nbrs := e.cursor.Neighbors(int(id))
	out := make([]gossip.NodeID, len(nbrs))
	for i, b := range nbrs {
		out[i] = gossip.NodeID(b)
	}
	return out
}
