package env

import (
	"testing"
	"testing/quick"
	"time"

	"dynagg/internal/gossip"
	"dynagg/internal/trace"
	"dynagg/internal/xrand"
)

func TestPopulationLifecycle(t *testing.T) {
	p := NewPopulation(5)
	if p.Size() != 5 || p.AliveCount() != 5 {
		t.Fatalf("fresh population: size %d alive %d", p.Size(), p.AliveCount())
	}
	p.Fail(2)
	if p.Alive(2) {
		t.Error("host 2 alive after Fail")
	}
	if p.AliveCount() != 4 {
		t.Errorf("alive count %d, want 4", p.AliveCount())
	}
	p.Fail(2) // idempotent
	if p.AliveCount() != 4 {
		t.Errorf("double-fail changed count to %d", p.AliveCount())
	}
	p.Revive(2)
	if !p.Alive(2) || p.AliveCount() != 5 {
		t.Error("revive did not restore host 2")
	}
	p.Revive(2) // idempotent
	if p.AliveCount() != 5 {
		t.Errorf("double-revive changed count to %d", p.AliveCount())
	}
}

// Property: after any sequence of fails and revives, AliveIDs matches
// the Alive predicate exactly.
func TestPopulationConsistency(t *testing.T) {
	prop := func(ops []uint16) bool {
		const n = 32
		p := NewPopulation(n)
		want := make(map[gossip.NodeID]bool, n)
		for i := 0; i < n; i++ {
			want[gossip.NodeID(i)] = true
		}
		for _, op := range ops {
			id := gossip.NodeID(op % n)
			if op&0x8000 != 0 {
				p.Revive(id)
				want[id] = true
			} else {
				p.Fail(id)
				want[id] = false
			}
		}
		alive := 0
		for id, w := range want {
			if p.Alive(id) != w {
				return false
			}
			if w {
				alive++
			}
		}
		if p.AliveCount() != alive {
			return false
		}
		seen := make(map[gossip.NodeID]bool)
		for _, id := range p.AliveIDs() {
			if seen[id] || !want[id] {
				return false
			}
			seen[id] = true
		}
		return len(seen) == alive
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPickOtherNeverReturnsSelfOrDead(t *testing.T) {
	p := NewPopulation(10)
	for i := 0; i < 10; i += 2 {
		p.Fail(gossip.NodeID(i))
	}
	rng := xrand.New(1)
	for trial := 0; trial < 200; trial++ {
		id, ok := p.PickOther(3, rng)
		if !ok {
			t.Fatal("PickOther failed with live peers available")
		}
		if id == 3 {
			t.Fatal("PickOther returned self")
		}
		if !p.Alive(id) {
			t.Fatalf("PickOther returned dead host %d", id)
		}
	}
}

func TestPickOtherExhausted(t *testing.T) {
	p := NewPopulation(3)
	p.Fail(0)
	p.Fail(1)
	rng := xrand.New(1)
	if _, ok := p.PickOther(2, rng); ok {
		t.Error("PickOther succeeded with self as only live host")
	}
	p.Fail(2)
	if _, ok := p.PickOther(2, rng); ok {
		t.Error("PickOther succeeded with empty population")
	}
}

func TestUniformEnvironment(t *testing.T) {
	u := NewUniform(100)
	if u.Size() != 100 {
		t.Errorf("Size = %d", u.Size())
	}
	rng := xrand.New(2)
	counts := make(map[gossip.NodeID]int)
	for i := 0; i < 5000; i++ {
		id, ok := u.Pick(0, 0, rng)
		if !ok || id == 0 {
			t.Fatal("bad pick")
		}
		counts[id]++
	}
	// Every other host should be picked at least once in 5000 draws
	// (P[miss] ≈ (98/99)^5000 ≈ 1e-22).
	if len(counts) != 99 {
		t.Errorf("picked %d distinct peers, want 99", len(counts))
	}
	u.Advance(0) // no-op, must not panic
	u.Population.Fail(5)
	if u.Alive(5, 0) {
		t.Error("failed host reported alive")
	}
}

func TestGridGeometry(t *testing.T) {
	g := NewGrid(4, 3, 2)
	if g.Width() != 4 || g.Height() != 3 || g.Size() != 12 {
		t.Fatalf("grid geometry wrong: %dx%d size %d", g.Width(), g.Height(), g.Size())
	}
	// Torus neighbors of corner 0 = (0,0): (1,0)=1, (3,0)=3, (0,1)=4, (0,2)=8.
	nb := g.NeighborsOf(0)
	want := map[gossip.NodeID]bool{1: true, 3: true, 4: true, 8: true}
	if len(nb) != 4 {
		t.Fatalf("NeighborsOf(0) = %v", nb)
	}
	for _, id := range nb {
		if !want[id] {
			t.Errorf("unexpected neighbor %d", id)
		}
	}
}

func TestGridPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGrid(0, 5) did not panic")
		}
	}()
	NewGrid(0, 5, 1)
}

func TestGridPickValid(t *testing.T) {
	g := NewGrid(8, 8, 4)
	rng := xrand.New(3)
	for trial := 0; trial < 500; trial++ {
		id, ok := g.Pick(10, 0, rng)
		if !ok {
			t.Fatal("Pick failed on healthy grid")
		}
		if id == 10 {
			t.Fatal("Pick returned self")
		}
		if int(id) < 0 || int(id) >= g.Size() {
			t.Fatalf("Pick returned out-of-range %d", id)
		}
	}
}

// Walk lengths follow P[d] ∝ 1/d²: d=1 should be drawn roughly four
// times as often as d=2.
func TestGridDistanceDistribution(t *testing.T) {
	g := NewGrid(32, 32, 8)
	rng := xrand.New(4)
	counts := make([]int, g.maxDist+1)
	const trials = 200000
	for i := 0; i < trials; i++ {
		counts[g.sampleDistance(rng)]++
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("P[d=1]/P[d=2] = %.2f, want ≈ 4", ratio)
	}
	ratio13 := float64(counts[1]) / float64(counts[3])
	if ratio13 < 8 || ratio13 > 10 {
		t.Errorf("P[d=1]/P[d=3] = %.2f, want ≈ 9", ratio13)
	}
}

func TestGridPickSurvivesSparsePopulation(t *testing.T) {
	g := NewGrid(6, 6, 3)
	// Kill everything except two far-apart hosts.
	for i := 0; i < g.Size(); i++ {
		if i != 0 && i != 21 {
			g.Population.Fail(gossip.NodeID(i))
		}
	}
	rng := xrand.New(5)
	id, ok := g.Pick(0, 0, rng)
	if !ok || id != 21 {
		t.Errorf("Pick on sparse grid = %d, %v; want 21, true", id, ok)
	}
	g.Population.Fail(21)
	if _, ok := g.Pick(0, 0, rng); ok {
		t.Error("Pick succeeded with one live host")
	}
}

func TestGridDefaultMaxDist(t *testing.T) {
	g := NewGrid(10, 4, 0)
	if g.maxDist != 5 {
		t.Errorf("default maxDist = %d, want max(10,4)/2 = 5", g.maxDist)
	}
	g1 := NewGrid(1, 1, 0)
	if g1.maxDist != 1 {
		t.Errorf("1x1 default maxDist = %d, want 1", g1.maxDist)
	}
}

// twoPhaseTrace builds a tiny trace: devices 0-1 linked for the first
// half, 1-2 linked for the second half.
func twoPhaseTrace() *trace.Trace {
	hour := time.Hour
	tr := &trace.Trace{
		Name:     "two-phase",
		N:        3,
		Duration: 2 * hour,
		Events: []trace.Event{
			{At: 0, A: 0, B: 1, Up: true},
			{At: hour, A: 0, B: 1, Up: false},
			{At: hour, A: 1, B: 2, Up: true},
		},
	}
	return tr
}

func TestTraceEnvBasics(t *testing.T) {
	tr := twoPhaseTrace()
	e := NewTraceEnv(tr, 30*time.Second, 10*time.Minute)
	if e.Size() != 3 {
		t.Fatalf("Size = %d", e.Size())
	}
	if e.Interval() != 30*time.Second {
		t.Errorf("Interval = %v", e.Interval())
	}
	wantRounds := int(tr.Duration / (30 * time.Second))
	if e.Rounds() != wantRounds {
		t.Errorf("Rounds = %d, want %d", e.Rounds(), wantRounds)
	}
}

func TestTraceEnvConnectivityFollowsTrace(t *testing.T) {
	tr := twoPhaseTrace()
	e := NewTraceEnv(tr, 30*time.Second, 10*time.Minute)
	rng := xrand.New(6)

	e.Advance(0) // t = 30s: link 0-1 up
	if id, ok := e.Pick(0, 0, rng); !ok || id != 1 {
		t.Errorf("round 0: Pick(0) = %d, %v; want 1, true", id, ok)
	}
	if _, ok := e.Pick(2, 0, rng); ok {
		t.Error("round 0: isolated device 2 found a peer")
	}

	// Advance into the second phase (past 1 hour).
	rounds := int(time.Hour/(30*time.Second)) + 1
	for r := 1; r <= rounds; r++ {
		e.Advance(r)
	}
	if id, ok := e.Pick(2, rounds, rng); !ok || id != 1 {
		t.Errorf("second phase: Pick(2) = %d, %v; want 1, true", id, ok)
	}
	if _, ok := e.Pick(0, rounds, rng); ok {
		t.Error("second phase: device 0 should be isolated")
	}
}

func TestTraceEnvGroups(t *testing.T) {
	tr := twoPhaseTrace()
	e := NewTraceEnv(tr, 30*time.Second, 5*time.Minute)
	e.Advance(0)
	asg := e.Groups()
	if !asg.SameGroup(0, 1) {
		t.Error("linked devices 0,1 in different groups")
	}
	if asg.SameGroup(0, 2) {
		t.Error("isolated device 2 grouped with 0")
	}
}

func TestTraceEnvDefaults(t *testing.T) {
	tr := twoPhaseTrace()
	e := NewTraceEnv(tr, 0, 0)
	if e.Interval() != 30*time.Second {
		t.Errorf("default interval = %v, want 30s (the paper's gossip period)", e.Interval())
	}
}

func TestTraceEnvDegreeAndNeighbors(t *testing.T) {
	tr := twoPhaseTrace()
	e := NewTraceEnv(tr, 30*time.Second, 10*time.Minute)
	e.Advance(0)
	if d := e.Degree(0); d != 1 {
		t.Errorf("Degree(0) = %d, want 1", d)
	}
	nb := e.NeighborsOf(0)
	if len(nb) != 1 || nb[0] != 1 {
		t.Errorf("NeighborsOf(0) = %v, want [1]", nb)
	}
}
