package env

import (
	"math"
	"testing"

	"dynagg/internal/gossip"
	"dynagg/internal/xrand"
)

func mobileCfg(n int) MobileConfig {
	return MobileConfig{
		N: n, Width: 1000, Height: 1000, Range: 100,
		MinSpeed: 5, MaxSpeed: 20, Seed: 1,
	}
}

func TestMobileConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*MobileConfig)
	}{
		{"no hosts", func(c *MobileConfig) { c.N = 0 }},
		{"zero width", func(c *MobileConfig) { c.Width = 0 }},
		{"zero height", func(c *MobileConfig) { c.Height = 0 }},
		{"zero range", func(c *MobileConfig) { c.Range = 0 }},
		{"negative min speed", func(c *MobileConfig) { c.MinSpeed = -1 }},
		{"max below min", func(c *MobileConfig) { c.MinSpeed = 10; c.MaxSpeed = 5 }},
	}
	for _, c := range cases {
		cfg := mobileCfg(10)
		c.mutate(&cfg)
		if _, err := NewMobile(cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := NewMobile(mobileCfg(10)); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMobileHostsStayInField(t *testing.T) {
	m, err := NewMobile(mobileCfg(50))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 200; r++ {
		m.Advance(r)
		for i := 0; i < 50; i++ {
			x, y := m.Position(gossip.NodeID(i))
			if x < 0 || x > 1000 || y < 0 || y > 1000 {
				t.Fatalf("host %d left the field at round %d: (%v, %v)", i, r, x, y)
			}
		}
	}
}

func TestMobileHostsActuallyMove(t *testing.T) {
	m, err := NewMobile(mobileCfg(20))
	if err != nil {
		t.Fatal(err)
	}
	x0, y0 := m.Position(0)
	for r := 0; r < 50; r++ {
		m.Advance(r)
	}
	x1, y1 := m.Position(0)
	if math.Hypot(x1-x0, y1-y0) < 1 {
		t.Errorf("host 0 barely moved in 50 rounds: (%v,%v) -> (%v,%v)", x0, y0, x1, y1)
	}
}

func TestMobileSpeedBound(t *testing.T) {
	m, err := NewMobile(mobileCfg(20))
	if err != nil {
		t.Fatal(err)
	}
	prevX := append([]float64(nil), m.x...)
	prevY := append([]float64(nil), m.y...)
	for r := 0; r < 50; r++ {
		m.Advance(r)
		for i := range prevX {
			d := math.Hypot(m.x[i]-prevX[i], m.y[i]-prevY[i])
			if d > m.cfg.MaxSpeed+1e-9 {
				t.Fatalf("host %d moved %v in one round, max speed %v", i, d, m.cfg.MaxSpeed)
			}
		}
		copy(prevX, m.x)
		copy(prevY, m.y)
	}
}

func TestMobileNeighborsSymmetricAndInRange(t *testing.T) {
	m, err := NewMobile(mobileCfg(100))
	if err != nil {
		t.Fatal(err)
	}
	m.Advance(0)
	for i := 0; i < 100; i++ {
		id := gossip.NodeID(i)
		for _, nb := range m.NeighborsOf(id) {
			ax, ay := m.Position(id)
			bx, by := m.Position(nb)
			if math.Hypot(ax-bx, ay-by) > m.cfg.Range+1e-9 {
				t.Fatalf("neighbor %d of %d out of range", nb, id)
			}
			// Symmetry: id must appear among nb's neighbors.
			found := false
			for _, back := range m.NeighborsOf(nb) {
				if back == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("neighbor relation not symmetric: %d -> %d", id, nb)
			}
		}
	}
}

func TestMobilePickRespectsRangeAndLiveness(t *testing.T) {
	m, err := NewMobile(mobileCfg(100))
	if err != nil {
		t.Fatal(err)
	}
	m.Advance(0)
	rng := xrand.New(2)
	// Kill half.
	for i := 0; i < 100; i += 2 {
		m.Population.Fail(gossip.NodeID(i))
	}
	for trial := 0; trial < 200; trial++ {
		id := gossip.NodeID(1 + 2*(trial%50))
		peer, ok := m.Pick(id, 0, rng)
		if !ok {
			continue // isolated is legal
		}
		if peer == id {
			t.Fatal("picked self")
		}
		if !m.Population.Alive(peer) {
			t.Fatalf("picked dead host %d", peer)
		}
		if !m.inRange(id, peer) {
			t.Fatalf("picked out-of-range host %d", peer)
		}
	}
}

func TestMobileDeterministicPerSeed(t *testing.T) {
	run := func() []float64 {
		m, err := NewMobile(mobileCfg(30))
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 30; r++ {
			m.Advance(r)
		}
		out := make([]float64, 0, 60)
		for i := 0; i < 30; i++ {
			x, y := m.Position(gossip.NodeID(i))
			out = append(out, x, y)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("positions diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMobileAdvanceIdempotentPerRound(t *testing.T) {
	m, err := NewMobile(mobileCfg(20))
	if err != nil {
		t.Fatal(err)
	}
	m.Advance(5)
	x0, y0 := m.Position(0)
	m.Advance(5) // same round again: no double movement
	m.Advance(3) // going backwards: no movement
	x1, y1 := m.Position(0)
	if x0 != x1 || y0 != y1 {
		t.Error("Advance moved hosts on repeated/backward rounds")
	}
}

func TestMobileMeanDegreeScalesWithRange(t *testing.T) {
	sparse := mobileCfg(200)
	sparse.Range = 40
	dense := mobileCfg(200)
	dense.Range = 200
	ms, err := NewMobile(sparse)
	if err != nil {
		t.Fatal(err)
	}
	md, err := NewMobile(dense)
	if err != nil {
		t.Fatal(err)
	}
	ms.Advance(0)
	md.Advance(0)
	if ms.MeanDegree() >= md.MeanDegree() {
		t.Errorf("sparse degree %v >= dense degree %v", ms.MeanDegree(), md.MeanDegree())
	}
	// Analytic check: mean degree ≈ (n-1)·πR²/area for R ≪ field.
	want := 199 * math.Pi * 40 * 40 / (1000 * 1000)
	if got := ms.MeanDegree(); got < want/3 || got > want*3 {
		t.Errorf("sparse mean degree %v, want ≈ %v", got, want)
	}
}
