package core

import (
	"fmt"

	"dynagg/internal/gossip"
	"dynagg/internal/protocol/extremes"
	"dynagg/internal/protocol/moments"
	"dynagg/internal/protocol/multi"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
)

// StdDevConfig configures a dynamic standard-deviation network
// (package moments: Push-Sum-Revert lifted to the second moment).
type StdDevConfig struct {
	Common
	// Values holds one data value per host.
	Values []float64
	// Lambda is the reversion constant λ; 0 degenerates to the static
	// protocol.
	Lambda float64
}

// NewStdDev builds a network maintaining a running estimate of the
// standard deviation over the live hosts' values. The per-host
// estimate is the standard deviation; Mean and Variance are available
// through the underlying moments.Node (via Engine().Agent).
func NewStdDev(cfg StdDevConfig) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Env.Size()
	if len(cfg.Values) != n {
		return nil, fmt.Errorf("core: %d values for %d hosts", len(cfg.Values), n)
	}
	if cfg.Lambda < 0 || cfg.Lambda > 1 {
		return nil, fmt.Errorf("core: Lambda %v outside [0,1]", cfg.Lambda)
	}
	mcfg := moments.Config{Lambda: cfg.Lambda, PushPull: cfg.Model == gossip.PushPull}
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = moments.New(gossip.NodeID(i), cfg.Values[i], mcfg)
	}
	return assemble(cfg.Common, agents, "stddev")
}

// ExtremumConfig configures a dynamic min/max network (package
// extremes: candidate age-out in the style of Count-Sketch-Reset).
type ExtremumConfig struct {
	Common
	// Values holds one data value per host.
	Values []float64
	// Mode selects Min or Max aggregation.
	Mode extremes.Mode
	// Cutoff is the candidate age limit; zero takes the package
	// default, sized for uniform gossip. Slow environments (grids,
	// sparse traces) need larger cutoffs, as with the counting sketch.
	Cutoff int
	// TableSize is the per-host candidate table size; zero takes the
	// default.
	TableSize int
}

// MultiConfig configures a multi-aggregate network: one shared
// Count-Sketch-Reset instance amortized over any number of named
// Push-Sum-Revert aggregates (the paper's Figure 7 in full).
type MultiConfig struct {
	Common
	// Values maps aggregate names to the per-host data values;
	// Values[name][i] is host i's value for that aggregate. Every
	// aggregate must cover all hosts.
	Values map[string][]float64
	// Lambda is the shared reversion constant.
	Lambda float64
	// Sketch sizes the shared counting sketch; zero takes the default.
	Sketch sketch.Params
	// Cutoff overrides the bit-age cutoff f(k); nil takes 7 + k/4.
	Cutoff func(k int) float64
}

// MultiNetwork is a running multi-aggregate overlay. In addition to
// the Network surface (whose Estimate is the network-size estimate),
// it exposes per-aggregate running averages and sums.
type MultiNetwork struct {
	Network
}

// NewMulti builds a multi-aggregate network.
func NewMulti(cfg MultiConfig) (*MultiNetwork, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(cfg.Values) == 0 {
		return nil, fmt.Errorf("core: NewMulti needs at least one named aggregate")
	}
	n := cfg.Env.Size()
	for name, vs := range cfg.Values {
		if len(vs) != n {
			return nil, fmt.Errorf("core: aggregate %q has %d values for %d hosts", name, len(vs), n)
		}
	}
	if cfg.Sketch == (sketch.Params{}) {
		cfg.Sketch = sketch.DefaultParams
	}
	pcfg := pushsumrevert.Config{Lambda: cfg.Lambda, PushPull: cfg.Model == gossip.PushPull}
	if err := pcfg.Validate(); err != nil {
		return nil, err
	}
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		values := make(map[string]float64, len(cfg.Values))
		for name, vs := range cfg.Values {
			values[name] = vs[i]
		}
		agents[i] = multi.New(gossip.NodeID(i), values,
			sketchreset.Config{Params: cfg.Sketch, Cutoff: cfg.Cutoff, Identifiers: 1},
			pcfg,
		)
	}
	net, err := assemble(cfg.Common, agents, "multi")
	if err != nil {
		return nil, err
	}
	return &MultiNetwork{Network: *net}, nil
}

// AverageOf returns host id's running average estimate for one named
// aggregate; ok is false for dead hosts or unknown names.
func (m *MultiNetwork) AverageOf(id gossip.NodeID, name string) (float64, bool) {
	if !m.engine.Env().Alive(id, m.engine.Round()) {
		return 0, false
	}
	return m.engine.Agent(id).(*multi.Node).Average(name)
}

// SumOf returns host id's running sum estimate for one named
// aggregate.
func (m *MultiNetwork) SumOf(id gossip.NodeID, name string) (float64, bool) {
	if !m.engine.Env().Alive(id, m.engine.Round()) {
		return 0, false
	}
	return m.engine.Agent(id).(*multi.Node).Sum(name)
}

// SizeOf returns host id's running network-size estimate.
func (m *MultiNetwork) SizeOf(id gossip.NodeID) (float64, bool) {
	return m.EstimateOf(id)
}

// NewExtremum builds a network maintaining a running estimate of the
// minimum or maximum value over the live hosts.
func NewExtremum(cfg ExtremumConfig) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Env.Size()
	if len(cfg.Values) != n {
		return nil, fmt.Errorf("core: %d values for %d hosts", len(cfg.Values), n)
	}
	ecfg := extremes.Config{Mode: cfg.Mode, Cutoff: cfg.Cutoff, TableSize: cfg.TableSize}
	if err := ecfg.Validate(); err != nil {
		return nil, err
	}
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = extremes.New(gossip.NodeID(i), cfg.Values[i], ecfg)
	}
	return assemble(cfg.Common, agents, cfg.Mode.String())
}
