package core_test

import (
	"fmt"

	"dynagg/internal/core"
	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/extremes"
)

// A dynamic average survives a silent departure: after the failure the
// estimate re-converges to the survivors' average.
func ExampleNewAverage() {
	e := env.NewUniform(400)
	values := make([]float64, 400)
	for i := range values {
		values[i] = float64(i % 100) // average 49.5
	}
	net, err := core.NewAverage(core.AverageConfig{
		Common: core.Common{Env: e, Seed: 1, Model: gossip.PushPull},
		Values: values,
		Lambda: 0.1,
	})
	if err != nil {
		panic(err)
	}
	net.Run(30)
	// Probe a host whose own value sits near the average: λ biases
	// each estimate toward the local initial value (§III-A).
	before, _ := net.EstimateOf(50)
	fmt.Printf("converged near 49.5: %t\n", before > 45 && before < 55)

	// The highest-valued quarter departs silently; the true average of
	// the survivors drops.
	for i, v := range values {
		if v >= 75 {
			e.Population.Fail(gossip.NodeID(i))
		}
	}
	net.Run(60)
	after, _ := net.EstimateOf(50)
	fmt.Printf("re-converged near 37: %t\n", after > 32 && after < 42)
	// Output:
	// converged near 49.5: true
	// re-converged near 37: true
}

// A dynamic count decays back after half the network leaves.
func ExampleNewCount() {
	e := env.NewUniform(1000)
	net, err := core.NewCount(core.CountConfig{
		Common: core.Common{Env: e, Seed: 2, Model: gossip.PushPull},
	})
	if err != nil {
		panic(err)
	}
	net.Run(20)
	before, _ := net.EstimateOf(0)
	fmt.Printf("counted roughly 1000: %t\n", before > 650 && before < 1350)

	for i := 0; i < 500; i++ {
		e.Population.Fail(gossip.NodeID(i))
	}
	net.Run(30)
	after, _ := net.EstimateOf(999)
	fmt.Printf("decayed toward 500: %t\n", after > 300 && after < 700)
	// Output:
	// counted roughly 1000: true
	// decayed toward 500: true
}

// A dynamic maximum falls back to the runner-up when its owner leaves.
func ExampleNewExtremum() {
	e := env.NewUniform(300)
	values := make([]float64, 300)
	for i := range values {
		values[i] = float64(i)
	}
	net, err := core.NewExtremum(core.ExtremumConfig{
		Common: core.Common{Env: e, Seed: 3, Model: gossip.PushPull},
		Values: values,
		Mode:   extremes.Max,
		Cutoff: 12,
	})
	if err != nil {
		panic(err)
	}
	net.Run(15)
	max1, _ := net.EstimateOf(0)
	fmt.Println("max:", max1)

	e.Population.Fail(299) // the maximum's owner departs
	net.Run(40)
	max2, _ := net.EstimateOf(0)
	fmt.Println("max after departure:", max2)
	// Output:
	// max: 299
	// max after departure: 298
}
