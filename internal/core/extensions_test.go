package core

import (
	"math"
	"testing"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/extremes"
	"dynagg/internal/protocol/moments"
)

func TestStdDevValidation(t *testing.T) {
	e := env.NewUniform(3)
	if _, err := NewStdDev(StdDevConfig{Values: make([]float64, 3)}); err == nil {
		t.Error("nil env accepted")
	}
	if _, err := NewStdDev(StdDevConfig{Common: Common{Env: e}, Values: make([]float64, 2)}); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := NewStdDev(StdDevConfig{Common: Common{Env: e}, Values: make([]float64, 3), Lambda: -1}); err == nil {
		t.Error("bad lambda accepted")
	}
}

func TestStdDevConverges(t *testing.T) {
	const n = 500
	e := env.NewUniform(n)
	values := make([]float64, n)
	var sum, sq float64
	for i := range values {
		values[i] = float64(i % 100)
		sum += values[i]
		sq += values[i] * values[i]
	}
	mean := sum / n
	want := math.Sqrt(sq/n - mean*mean)

	net, err := NewStdDev(StdDevConfig{
		Common: Common{Env: e, Seed: 1, Model: gossip.PushPull},
		Values: values,
		Lambda: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(40)
	if net.Kind() != "stddev" {
		t.Errorf("Kind = %q", net.Kind())
	}
	est, ok := net.EstimateOf(0)
	if !ok {
		t.Fatal("no estimate")
	}
	if math.Abs(est-want) > 0.1*want {
		t.Errorf("stddev estimate %v, want ≈ %v", est, want)
	}
	// The richer API is reachable through the engine.
	node := net.Engine().Agent(0).(*moments.Node)
	if m, _ := node.Mean(); math.Abs(m-mean) > 0.1*mean {
		t.Errorf("mean via node %v, want ≈ %v", m, mean)
	}
}

func TestExtremumValidation(t *testing.T) {
	e := env.NewUniform(3)
	if _, err := NewExtremum(ExtremumConfig{Values: make([]float64, 3)}); err == nil {
		t.Error("nil env accepted")
	}
	if _, err := NewExtremum(ExtremumConfig{Common: Common{Env: e}, Values: make([]float64, 2)}); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := NewExtremum(ExtremumConfig{
		Common: Common{Env: e}, Values: make([]float64, 3), Cutoff: -2,
	}); err == nil {
		t.Error("bad cutoff accepted")
	}
}

func TestExtremumMaxSelfHeals(t *testing.T) {
	const n = 300
	e := env.NewUniform(n)
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	net, err := NewExtremum(ExtremumConfig{
		Common: Common{Env: e, Seed: 2, Model: gossip.PushPull},
		Values: values,
		Mode:   extremes.Max,
		Cutoff: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(15)
	if est, _ := net.EstimateOf(0); est != n-1 {
		t.Fatalf("max estimate %v, want %d", est, n-1)
	}
	if net.Kind() != "max" {
		t.Errorf("Kind = %q", net.Kind())
	}
	e.Population.Fail(gossip.NodeID(n - 1))
	net.Run(40)
	if est, _ := net.EstimateOf(0); est != n-2 {
		t.Errorf("max after departure %v, want %d", est, n-2)
	}
}

func TestMultiValidation(t *testing.T) {
	e := env.NewUniform(3)
	if _, err := NewMulti(MultiConfig{Values: map[string][]float64{"a": make([]float64, 3)}}); err == nil {
		t.Error("nil env accepted")
	}
	if _, err := NewMulti(MultiConfig{Common: Common{Env: e}}); err == nil {
		t.Error("no aggregates accepted")
	}
	if _, err := NewMulti(MultiConfig{
		Common: Common{Env: e},
		Values: map[string][]float64{"a": make([]float64, 2)},
	}); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := NewMulti(MultiConfig{
		Common: Common{Env: e},
		Values: map[string][]float64{"a": make([]float64, 3)},
		Lambda: 2,
	}); err == nil {
		t.Error("bad lambda accepted")
	}
}

func TestMultiNetworkEndToEnd(t *testing.T) {
	const n = 600
	e := env.NewUniform(n)
	temp := make([]float64, n)
	load := make([]float64, n)
	for i := 0; i < n; i++ {
		temp[i] = float64(i % 40)
		load[i] = float64(i % 10)
	}
	net, err := NewMulti(MultiConfig{
		Common: Common{Env: e, Seed: 4, Model: gossip.PushPull},
		Values: map[string][]float64{"temp": temp, "load": load},
		Lambda: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(25)
	if net.Kind() != "multi" {
		t.Errorf("Kind = %q", net.Kind())
	}
	if avg, ok := net.AverageOf(0, "temp"); !ok || math.Abs(avg-19.5) > 2 {
		t.Errorf("temp average %v, %v", avg, ok)
	}
	if avg, ok := net.AverageOf(0, "load"); !ok || math.Abs(avg-4.5) > 1 {
		t.Errorf("load average %v, %v", avg, ok)
	}
	if size, ok := net.SizeOf(0); !ok || math.Abs(size-n) > 0.35*n {
		t.Errorf("size %v, %v", size, ok)
	}
	wantSum := 4.5 * n
	if sum, ok := net.SumOf(0, "load"); !ok || math.Abs(sum-wantSum) > 0.4*wantSum {
		t.Errorf("load sum %v, %v; want ≈ %v", sum, ok, wantSum)
	}
	if _, ok := net.AverageOf(0, "nope"); ok {
		t.Error("unknown aggregate accepted")
	}
	e.Population.Fail(0)
	if _, ok := net.AverageOf(0, "temp"); ok {
		t.Error("dead host returned an estimate")
	}
	if _, ok := net.SumOf(0, "temp"); ok {
		t.Error("dead host returned a sum")
	}
}

func TestExtremumMin(t *testing.T) {
	const n = 200
	e := env.NewUniform(n)
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(100 + i)
	}
	net, err := NewExtremum(ExtremumConfig{
		Common: Common{Env: e, Seed: 3, Model: gossip.PushPull},
		Values: values,
		Mode:   extremes.Min,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(15)
	if est, _ := net.EstimateOf(5); est != 100 {
		t.Errorf("min estimate %v, want 100", est)
	}
}
