package core

import (
	"math"
	"testing"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/metrics"
	"dynagg/internal/sketch"
)

func TestValidationErrors(t *testing.T) {
	values := []float64{1, 2, 3}
	if _, err := NewAverage(AverageConfig{Values: values}); err == nil {
		t.Error("nil Env accepted")
	}
	e := env.NewUniform(4)
	if _, err := NewAverage(AverageConfig{
		Common: Common{Env: e}, Values: values,
	}); err == nil {
		t.Error("value/size mismatch accepted")
	}
	if _, err := NewAverage(AverageConfig{
		Common: Common{Env: e}, Values: make([]float64, 4), Lambda: 3,
	}); err == nil {
		t.Error("invalid lambda accepted")
	}
	if _, err := NewSum(SumConfig{
		Common: Common{Env: e}, Values: make([]float64, 3),
	}); err == nil {
		t.Error("sum value/size mismatch accepted")
	}
	if _, err := NewSum(SumConfig{
		Common: Common{Env: e}, Values: []float64{1, 2, 3, -4}, Method: MultipleInsertions,
	}); err == nil {
		t.Error("negative value accepted by sketch summation")
	}
	if _, err := NewSum(SumConfig{
		Common: Common{Env: e}, Values: make([]float64, 4), Method: SumMethod(99),
	}); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := NewPushSumBaseline(Common{Env: e}, values); err == nil {
		t.Error("baseline value/size mismatch accepted")
	}
	if _, err := NewPushSumBaseline(Common{}, values); err == nil {
		t.Error("baseline nil Env accepted")
	}
}

func TestAverageNetworkConverges(t *testing.T) {
	const n = 500
	e := env.NewUniform(n)
	values := UniformValues(n, 3)
	net, err := NewAverage(AverageConfig{
		Common: Common{Env: e, Seed: 1, Model: gossip.PushPull},
		Values: values,
		Lambda: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := metrics.NewTruth(values, e.Population)
	net.Run(30)
	if net.Round() != 30 {
		t.Errorf("Round = %d", net.Round())
	}
	if net.Kind() != "average" {
		t.Errorf("Kind = %q", net.Kind())
	}
	est, ok := net.EstimateOf(0)
	if !ok {
		t.Fatal("no estimate at host 0")
	}
	if math.Abs(est-truth.Average()) > 5 {
		t.Errorf("estimate %v, truth %v", est, truth.Average())
	}
	if len(net.Estimates()) != n {
		t.Errorf("Estimates count %d", len(net.Estimates()))
	}
	if net.Messages() == 0 {
		t.Error("no messages counted")
	}
	if net.Engine() == nil {
		t.Error("Engine accessor nil")
	}
}

func TestAverageFullTransferDefaults(t *testing.T) {
	const n = 300
	e := env.NewUniform(n)
	values := UniformValues(n, 5)
	net, err := NewAverage(AverageConfig{
		Common:       Common{Env: e, Seed: 2, Model: gossip.Push},
		Values:       values,
		Lambda:       0.1,
		FullTransfer: true, // Parcels and Window default to the paper's 4 and 3
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(30)
	truth := metrics.NewTruth(values, e.Population)
	var mean float64
	ests := net.Estimates()
	for _, v := range ests {
		mean += v
	}
	mean /= float64(len(ests))
	if math.Abs(mean-truth.Average()) > 8 {
		t.Errorf("full-transfer mean estimate %v, truth %v", mean, truth.Average())
	}
}

func TestWeightedAverageNetwork(t *testing.T) {
	const n = 400
	e := env.NewUniform(n)
	values := make([]float64, n)
	weights := make([]float64, n)
	var num, den float64
	for i := range values {
		values[i] = float64(i % 50)
		weights[i] = 1 + float64(i%3)
		num += weights[i] * values[i]
		den += weights[i]
	}
	net, err := NewAverage(AverageConfig{
		Common:  Common{Env: e, Seed: 11, Model: gossip.PushPull},
		Values:  values,
		Weights: weights,
		Lambda:  0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(30)
	if net.Kind() != "weighted average" {
		t.Errorf("Kind = %q", net.Kind())
	}
	want := num / den
	est, _ := net.EstimateOf(0)
	if math.Abs(est-want) > 2 {
		t.Errorf("weighted estimate %v, want ≈ %v", est, want)
	}
}

func TestWeightedAverageValidation(t *testing.T) {
	e := env.NewUniform(3)
	if _, err := NewAverage(AverageConfig{
		Common: Common{Env: e}, Values: make([]float64, 3), Weights: make([]float64, 2),
	}); err == nil {
		t.Error("weight/size mismatch accepted")
	}
	if _, err := NewAverage(AverageConfig{
		Common: Common{Env: e}, Values: make([]float64, 3), Weights: []float64{1, 0, 1},
	}); err == nil {
		t.Error("zero weight accepted")
	}
}

func TestCountNetwork(t *testing.T) {
	const n = 1000
	e := env.NewUniform(n)
	net, err := NewCount(CountConfig{
		Common: Common{Env: e, Seed: 3, Model: gossip.PushPull},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(25)
	est, ok := net.EstimateOf(0)
	if !ok {
		t.Fatal("no count estimate")
	}
	if math.Abs(est-n) > 0.35*n {
		t.Errorf("count estimate %v, want ≈ %d", est, n)
	}
	if net.Kind() != "count" {
		t.Errorf("Kind = %q", net.Kind())
	}
}

func TestCountNetworkSelfHeals(t *testing.T) {
	const n = 1000
	e := env.NewUniform(n)
	net, err := NewCount(CountConfig{
		Common: Common{Env: e, Seed: 4, Model: gossip.PushPull},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(20)
	for i := 0; i < n/2; i++ {
		e.Population.Fail(gossip.NodeID(i))
	}
	net.Run(25)
	var mean float64
	ests := net.Estimates()
	for _, v := range ests {
		mean += v
	}
	mean /= float64(len(ests))
	if math.Abs(mean-n/2) > 0.45*n/2 {
		t.Errorf("post-failure count %v, want ≈ %d", mean, n/2)
	}
}

func TestSumNetworkAllMethods(t *testing.T) {
	const n = 500
	values := make([]float64, n)
	var want float64
	for i := range values {
		values[i] = float64(i % 7)
		want += values[i]
	}
	for _, m := range []SumMethod{InvertAverage, MultipleInsertions, StaticSketch} {
		e := env.NewUniform(n)
		net, err := NewSum(SumConfig{
			Common: Common{Env: e, Seed: 5, Model: gossip.PushPull},
			Values: values,
			Method: m,
			Lambda: 0.01,
		})
		if err != nil {
			t.Fatalf("method %d: %v", m, err)
		}
		net.Run(25)
		est, ok := net.EstimateOf(10)
		if !ok {
			t.Fatalf("method %d: no estimate", m)
		}
		if math.Abs(est-want) > 0.5*want {
			t.Errorf("method %d: estimate %v, want %v ± 50%%", m, est, want)
		}
	}
}

func TestPushSumBaseline(t *testing.T) {
	const n = 300
	e := env.NewUniform(n)
	values := UniformValues(n, 6)
	net, err := NewPushSumBaseline(Common{Env: e, Seed: 7, Model: gossip.PushPull}, values)
	if err != nil {
		t.Fatal(err)
	}
	net.Run(25)
	truth := metrics.NewTruth(values, e.Population)
	est, _ := net.EstimateOf(0)
	if math.Abs(est-truth.Average()) > 1 {
		t.Errorf("baseline estimate %v, truth %v", est, truth.Average())
	}
}

func TestCountCustomSketchAndCutoff(t *testing.T) {
	const n = 200
	e := env.NewUniform(n)
	net, err := NewCount(CountConfig{
		Common: Common{Env: e, Seed: 8, Model: gossip.PushPull},
		Sketch: sketch.Params{Bins: 32, Levels: 16},
		Cutoff: func(k int) float64 { return 12 + float64(k)/2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(20)
	est, ok := net.EstimateOf(0)
	if !ok || est <= 0 {
		t.Errorf("estimate = %v, %v", est, ok)
	}
}

func TestUniformValuesRange(t *testing.T) {
	values := UniformValues(1000, 1)
	if len(values) != 1000 {
		t.Fatalf("len = %d", len(values))
	}
	var sum float64
	for _, v := range values {
		if v < 0 || v >= 100 {
			t.Fatalf("value %v outside [0,100)", v)
		}
		sum += v
	}
	mean := sum / 1000
	if mean < 45 || mean > 55 {
		t.Errorf("mean %v implausible for U[0,100)", mean)
	}
	again := UniformValues(1000, 1)
	for i := range again {
		if again[i] != values[i] {
			t.Fatal("UniformValues not deterministic per seed")
		}
	}
}

func TestOnes(t *testing.T) {
	ones := Ones(5)
	for _, v := range ones {
		if v != 1 {
			t.Fatalf("Ones = %v", ones)
		}
	}
}

func TestNewUniformEnv(t *testing.T) {
	e := NewUniformEnv(10)
	if e.Size() != 10 {
		t.Errorf("Size = %d", e.Size())
	}
}

func TestEstimateOfDeadHost(t *testing.T) {
	e := env.NewUniform(5)
	net, err := NewAverage(AverageConfig{
		Common: Common{Env: e, Seed: 9, Model: gossip.PushPull},
		Values: make([]float64, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Population.Fail(2)
	if _, ok := net.EstimateOf(2); ok {
		t.Error("dead host returned an estimate")
	}
	if got := len(net.Estimates()); got != 4 {
		t.Errorf("Estimates over 4 live hosts returned %d", got)
	}
}

func TestHooksArePlumbed(t *testing.T) {
	e := env.NewUniform(10)
	var before, after int
	net, err := NewAverage(AverageConfig{
		Common: Common{
			Env: e, Seed: 10, Model: gossip.PushPull,
			BeforeRound: []gossip.Hook{func(int, *gossip.Engine) { before++ }},
			AfterRound:  []gossip.Hook{func(int, *gossip.Engine) { after++ }},
		},
		Values: make([]float64, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(7)
	if before != 7 || after != 7 {
		t.Errorf("hooks ran before=%d after=%d, want 7 each", before, after)
	}
}
