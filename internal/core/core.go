// Package core is the public façade of the dynamic in-network
// aggregation library. It assembles the paper's protocols —
// Push-Sum-Revert for averages, Count-Sketch-Reset for counts,
// Invert-Average (or multiple-insertion sketches) for sums — with a
// gossip engine and environment into a Network handle that
// applications step and query.
//
// A Network maintains, at every host, a running estimate of the
// aggregate over the hosts currently participating — even as hosts
// join, move, and fail silently. That is the paper's "dynamic
// distributed aggregation" contract.
//
// Quick start:
//
//	e := env.NewUniform(1000)
//	values := make([]float64, 1000) // one data value per host
//	net, err := core.NewAverage(core.AverageConfig{
//	    Common: core.Common{Env: e, Seed: 1},
//	    Values: values,
//	    Lambda: 0.01,
//	})
//	net.Run(30)
//	est, _ := net.EstimateOf(0) // ≈ mean(values), maintained live
package core

import (
	"fmt"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/invertavg"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchcount"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
	"dynagg/internal/xrand"
)

func newSeeded(seed uint64) *xrand.Rand { return xrand.New(seed) }

// Common carries the configuration shared by all aggregate kinds.
type Common struct {
	// Env is the gossip environment. Required.
	Env gossip.Environment
	// Seed drives all protocol randomness; equal seeds reproduce runs
	// exactly.
	Seed uint64
	// Model selects push or push/pull gossip. The default is
	// push/pull, the variant the paper's large-network figures use.
	Model gossip.Model
	// Workers sizes the engine's worker pool: 0 runs rounds
	// sequentially, k >= 1 runs the sharded parallel executor with k
	// workers. Results are byte-identical either way. Every built-in
	// protocol implements gossip.AppendEmitter, so both executors run
	// the zero-allocation message plane in steady state.
	Workers int
	// BeforeRound and AfterRound hooks observe or perturb the run
	// (failure injection, metrics).
	BeforeRound []gossip.Hook
	AfterRound  []gossip.Hook
}

func (c Common) validate() error {
	if c.Env == nil {
		return fmt.Errorf("core: Env is required")
	}
	return nil
}

// AverageConfig configures a dynamic averaging network
// (Push-Sum-Revert, §III).
type AverageConfig struct {
	Common
	// Values holds one data value per host; len must equal Env.Size().
	Values []float64
	// Weights optionally holds one positive weight per host; the
	// network then maintains the weighted average Σwᵢvᵢ/Σwᵢ. Nil means
	// uniform weights.
	Weights []float64
	// Lambda is the reversion constant λ; 0 degenerates to static
	// Push-Sum.
	Lambda float64
	// FullTransfer enables the §III-A optimization (push model only).
	FullTransfer bool
	// Parcels and Window parametrize Full-Transfer; zero values take
	// the paper's 4 and 3.
	Parcels int
	Window  int
	// Adaptive enables indegree-scaled reversion (push model only).
	Adaptive bool
}

// CountConfig configures a dynamic counting network
// (Count-Sketch-Reset, §IV).
type CountConfig struct {
	Common
	// Sketch sizes the counting sketch; the zero value takes the
	// paper's 64 bins × 24 levels.
	Sketch sketch.Params
	// IdentifiersPerHost inflates each host's contribution by a
	// constant (the paper uses 100 on small trace networks); the
	// estimate is scaled back automatically. Zero means 1.
	IdentifiersPerHost int
	// Cutoff overrides the bit-age cutoff f(k); nil takes the paper's
	// 7 + k/4.
	Cutoff func(k int) float64
	// NoDecay disables aging: static Sketch-Count behaviour.
	NoDecay bool
}

// SumConfig configures a dynamic summation network.
type SumConfig struct {
	Common
	// Values holds one non-negative data value per host.
	Values []float64
	// Method selects the summation strategy.
	Method SumMethod
	// Lambda is the reversion constant for the Invert-Average method.
	Lambda float64
	// Sketch sizes the sketch; zero takes the default.
	Sketch sketch.Params
	// Cutoff overrides f(k) for sketch-based methods.
	Cutoff func(k int) float64
}

// SumMethod selects how sums are computed.
type SumMethod int

const (
	// InvertAverage runs Count-Sketch-Reset × Push-Sum-Revert (§IV-B):
	// cheap, self-healing, with multiplied error.
	InvertAverage SumMethod = iota
	// MultipleInsertions registers value-many identifiers in a
	// Count-Sketch-Reset sketch: more bandwidth, single error source.
	MultipleInsertions
	// StaticSketch uses Considine et al.'s static protocol (no decay,
	// baseline only).
	StaticSketch
)

// Network is a running aggregation overlay: one protocol agent per
// host driven by a gossip engine.
type Network struct {
	engine *gossip.Engine
	kind   string
}

// NewAverage builds a dynamic averaging network.
func NewAverage(cfg AverageConfig) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Env.Size()
	if len(cfg.Values) != n {
		return nil, fmt.Errorf("core: %d values for %d hosts", len(cfg.Values), n)
	}
	if cfg.Weights != nil && len(cfg.Weights) != n {
		return nil, fmt.Errorf("core: %d weights for %d hosts", len(cfg.Weights), n)
	}
	pcfg := pushsumrevert.Config{
		Lambda:       cfg.Lambda,
		FullTransfer: cfg.FullTransfer,
		Parcels:      cfg.Parcels,
		Window:       cfg.Window,
		Adaptive:     cfg.Adaptive,
		PushPull:     cfg.Model == gossip.PushPull,
	}
	if pcfg.FullTransfer {
		if pcfg.Parcels == 0 {
			pcfg.Parcels = 4
		}
		if pcfg.Window == 0 {
			pcfg.Window = 3
		}
	}
	if err := pcfg.Validate(); err != nil {
		return nil, err
	}
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		hostCfg := pcfg
		if cfg.Weights != nil {
			if cfg.Weights[i] <= 0 {
				return nil, fmt.Errorf("core: non-positive weight %v at host %d", cfg.Weights[i], i)
			}
			hostCfg.Weight = cfg.Weights[i]
		}
		agents[i] = pushsumrevert.New(gossip.NodeID(i), cfg.Values[i], hostCfg)
	}
	kind := "average"
	if cfg.Weights != nil {
		kind = "weighted average"
	}
	return assemble(cfg.Common, agents, kind)
}

// NewCount builds a dynamic counting network.
func NewCount(cfg CountConfig) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Sketch == (sketch.Params{}) {
		cfg.Sketch = sketch.DefaultParams
	}
	ids := cfg.IdentifiersPerHost
	if ids == 0 {
		ids = 1
	}
	n := cfg.Env.Size()
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = sketchreset.New(gossip.NodeID(i), sketchreset.Config{
			Params:      cfg.Sketch,
			Cutoff:      cfg.Cutoff,
			Identifiers: ids,
			Scale:       float64(ids),
			NoDecay:     cfg.NoDecay,
		})
	}
	return assemble(cfg.Common, agents, "count")
}

// NewSum builds a dynamic summation network.
func NewSum(cfg SumConfig) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Env.Size()
	if len(cfg.Values) != n {
		return nil, fmt.Errorf("core: %d values for %d hosts", len(cfg.Values), n)
	}
	if cfg.Sketch == (sketch.Params{}) {
		cfg.Sketch = sketch.DefaultParams
	}
	agents := make([]gossip.Agent, n)
	switch cfg.Method {
	case InvertAverage:
		for i := 0; i < n; i++ {
			agents[i] = invertavg.New(gossip.NodeID(i), cfg.Values[i],
				sketchreset.Config{Params: cfg.Sketch, Cutoff: cfg.Cutoff, Identifiers: 1},
				pushsumrevert.Config{Lambda: cfg.Lambda, PushPull: cfg.Model == gossip.PushPull},
			)
		}
	case MultipleInsertions:
		for i := 0; i < n; i++ {
			v := int(cfg.Values[i])
			if v < 0 {
				return nil, fmt.Errorf("core: negative value %v at host %d not summable by sketch", cfg.Values[i], i)
			}
			agents[i] = sketchreset.New(gossip.NodeID(i), sketchreset.Config{
				Params: cfg.Sketch, Cutoff: cfg.Cutoff, Identifiers: v,
			})
		}
	case StaticSketch:
		for i := 0; i < n; i++ {
			v := int(cfg.Values[i])
			if v < 0 {
				return nil, fmt.Errorf("core: negative value %v at host %d not summable by sketch", cfg.Values[i], i)
			}
			agents[i] = sketchcount.NewSum(gossip.NodeID(i), cfg.Sketch, v)
		}
	default:
		return nil, fmt.Errorf("core: unknown SumMethod %d", cfg.Method)
	}
	return assemble(cfg.Common, agents, "sum")
}

// NewPushSumBaseline builds a static Push-Sum averaging network, the
// λ=0 baseline, for comparisons.
func NewPushSumBaseline(common Common, values []float64) (*Network, error) {
	if err := common.validate(); err != nil {
		return nil, err
	}
	n := common.Env.Size()
	if len(values) != n {
		return nil, fmt.Errorf("core: %d values for %d hosts", len(values), n)
	}
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = pushsum.NewAverage(gossip.NodeID(i), values[i])
	}
	return assemble(common, agents, "average (static)")
}

func assemble(common Common, agents []gossip.Agent, kind string) (*Network, error) {
	engine, err := gossip.NewEngine(gossip.Config{
		Env:         common.Env,
		Agents:      agents,
		Model:       common.Model,
		Seed:        common.Seed,
		Workers:     common.Workers,
		BeforeRound: common.BeforeRound,
		AfterRound:  common.AfterRound,
	})
	if err != nil {
		return nil, err
	}
	return &Network{engine: engine, kind: kind}, nil
}

// Kind returns a human-readable description of the aggregate.
func (n *Network) Kind() string { return n.kind }

// Step runs one gossip round.
func (n *Network) Step() { n.engine.Step() }

// Run runs the given number of gossip rounds.
func (n *Network) Run(rounds int) { n.engine.Run(rounds) }

// Round returns the number of completed rounds.
func (n *Network) Round() int { return n.engine.Round() }

// Messages returns the cumulative protocol message count.
func (n *Network) Messages() int64 { return n.engine.Messages() }

// Contacts returns the cumulative count of gossip contacts initiated
// (emissions under push, pairwise meetings under push/pull).
func (n *Network) Contacts() int64 { return n.engine.Contacts() }

// Estimates returns the live hosts' current estimates.
func (n *Network) Estimates() []float64 { return n.engine.Estimates() }

// EstimateOf returns host id's estimate; ok is false for dead hosts or
// before an estimate exists.
func (n *Network) EstimateOf(id gossip.NodeID) (float64, bool) {
	return n.engine.EstimateOf(id)
}

// Engine exposes the underlying engine for metrics hooks and tests.
func (n *Network) Engine() *gossip.Engine { return n.engine }

// UniformValues is a convenience generating the paper's standard
// workload: n values uniform in [0, 100).
func UniformValues(n int, seed uint64) []float64 {
	rng := newSeeded(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64() * 100
	}
	return out
}

// Ones returns n values of 1.0 (the Figure 9 counting workload).
func Ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// NewUniformEnv re-exports the uniform environment so example programs
// can depend on package core alone.
func NewUniformEnv(n int) *env.Uniform { return env.NewUniform(n) }
