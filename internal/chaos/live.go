package chaos

import (
	"math"

	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live/transport"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
)

// Corrupt applies the scenario's adversary schedule to an agent slice
// — the live-engine counterpart of what RunWith does internally
// before building the round engine. It replaces the leading hosts
// with Byzantine wrappers (one contiguous block per adversary) and
// returns how many hosts were corrupted. Rounds in the adversary
// schedule map to live ticks.
func Corrupt(s Scenario, agents []gossip.Agent) int {
	return applyAdversaries(s, agents)
}

// SumMass censuses the total (w, v) mass held by an agent slice,
// unwrapping Byzantine agents so the census sees true state. ok is
// false if any agent has no mass semantics.
func SumMass(agents []gossip.Agent) (w, v float64, ok bool) {
	for _, ag := range agents {
		aw, av, aok := agentMass(ag)
		if !aok {
			return 0, 0, false
		}
		w += aw
		v += av
	}
	return w, v, true
}

// agentMass reads one classic agent's true mass vector, unwrapping
// Byzantine wrappers.
func agentMass(ag gossip.Agent) (w, v float64, ok bool) {
	for {
		b, isByz := ag.(byzantineAgent)
		if !isByz {
			break
		}
		ag = b.unwrap()
	}
	switch n := ag.(type) {
	case *pushsum.Node:
		m := n.Mass()
		return m.W, m.V, true
	case *pushsumrevert.Node:
		m := n.Mass()
		return m.W, m.V, true
	}
	return 0, 0, false
}

// InFlightMass drains every host queue of tr, summing the mass
// payloads still undelivered when a run ended. The live engine has no
// final synchronized drain — hosts that finish their ticks early stop
// consuming, so a census over agent state alone undercounts by
// whatever is stranded in their queues. Call this once after Run and
// add the result to SumMass totals. Destructive: the drained messages
// are consumed. Non-mass payloads are ignored.
func InFlightMass(tr transport.Transport, hosts int) (w, v float64) {
	for id := gossip.NodeID(0); id < gossip.NodeID(hosts); id++ {
		tr.Drain(id, func(p any) {
			switch m := p.(type) {
			case pushsum.Mass:
				w += m.W
				v += m.V
			case *pushsum.Mass:
				w += m.W
				v += m.V
			case pushsumrevert.Mass:
				w += m.W
				v += m.V
			case *pushsumrevert.Mass:
				w += m.W
				v += m.V
			}
		})
	}
	return w, v
}

// LiveMassAudit judges an end-of-run mass census from a live run
// (SumMass over agents plus InFlightMass over the transport, taken
// before and after Run). The live engine has no synchronous rounds to
// audit a conservation recurrence against, and absolute totals are
// not invariant there: a λ-reverting population legally regenerates
// mass whenever peers stop consuming (a crashed process, a stalled
// shard), so honest totals can drift far from the endowment. What
// honest runs cannot move is the system-wide mass RATIO ΣV/ΣW —
// splitting preserves each parcel's ratio, merging and reversion keep
// the global ratio a convex combination of true host values — so it
// stays near the endowment ratio (the true mean). Fabricated payloads
// claiming values outside the population's are the only thing that
// drags it away; a relative ratio drift above tol flags them. Losses
// biased toward one value region shift the honest ratio too, which is
// why tol is a tolerance and not zero.
func LiveMassAudit(initialW, initialV, finalW, finalV, tol float64) AuditReport {
	rep := AuditReport{Applicable: true, Tolerance: tol, FirstViolation: -1}
	if initialW == 0 || finalW == 0 {
		rep.Violations = 1
		rep.FirstViolation = 0
		rep.MaxDrift = math.Inf(1)
		return rep
	}
	ratio0 := initialV / initialW
	ratio1 := finalV / finalW
	rep.MaxDrift = math.Abs(ratio1-ratio0) / math.Abs(ratio0)
	if rep.MaxDrift > tol {
		rep.Violations = 1
		rep.FirstViolation = 0
	}
	return rep
}
