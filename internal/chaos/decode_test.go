package chaos

import (
	"reflect"
	"strings"
	"testing"
)

func TestDecodeRoundTrip(t *testing.T) {
	for _, name := range Names() {
		s, _ := ByName(name)
		data, err := Encode(s)
		if err != nil {
			t.Fatalf("Encode(%s): %v", name, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("Decode(%s): %v", name, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("round trip changed %s:\n%+v\nvs\n%+v", name, got, s)
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown field", `{"name":"x","n":8,"rounds":4,"protocol":"pushsum","bogus":1}`, "bogus"},
		{"trailing data", `{"name":"x","n":8,"rounds":4,"protocol":"pushsum"} {"again":true}`, "trailing"},
		{"invalid scenario", `{"name":"x","n":0,"rounds":4,"protocol":"pushsum"}`, "n"},
		{"bad fault", `{"name":"x","n":8,"rounds":4,"protocol":"pushsum","faults":[{"kind":"nosuch"}]}`, "nosuch"},
		{"not json", `]`, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.in))
			if err == nil {
				t.Fatalf("Decode accepted %q", tc.in)
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// FuzzDecodeScenario: any input Decode accepts must validate and
// survive an Encode/Decode round trip unchanged.
func FuzzDecodeScenario(f *testing.F) {
	for _, name := range Names() {
		s, _ := ByName(name)
		data, err := Encode(s)
		if err != nil {
			f.Fatalf("Encode(%s): %v", name, err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","n":8,"rounds":4,"protocol":"pushsum"}`))
	f.Add([]byte(`{"name":"","n":-1}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("Decode accepted a scenario that fails Validate: %v\n%+v", verr, s)
		}
		again, err := Encode(s)
		if err != nil {
			t.Fatalf("Encode after Decode: %v", err)
		}
		s2, err := Decode(again)
		if err != nil {
			t.Fatalf("Decode(Encode(s)): %v", err)
		}
		// Compare canonical encodings rather than structs: a JSON
		// input spelling a list as [] decodes to an empty non-nil
		// slice that omitempty then drops, so the re-decoded struct
		// holds nil — same scenario, different Go representation.
		canon, err := Encode(s2)
		if err != nil {
			t.Fatalf("Encode(Decode(Encode(s))): %v", err)
		}
		if string(again) != string(canon) {
			t.Fatalf("round trip changed scenario:\n%s\nvs\n%s", again, canon)
		}
	})
}
