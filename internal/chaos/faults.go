package chaos

import (
	"sync/atomic"

	"dynagg/internal/env"
	"dynagg/internal/failure"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/xrand"
)

// pickRetries bounds how many environment draws the fault filter
// spends looking for a reachable peer before declaring the host
// isolated (ok=false). Both engine backends consume the same PRNG
// stream through Pick, so retrying preserves classic/columnar parity.
const pickRetries = 16

// faultEnv wraps the base Environment with the round-scoped fault
// filters of a Scenario: partitions reject cross-side peers, clock
// skew puts host regions to sleep on off-cycle rounds. Mass never
// leaves the system through the filter — an isolated host's protocol
// keeps its mass locally (ok=false from Pick), and sleeping hosts
// neither emit nor get picked.
type faultEnv struct {
	inner  gossip.Environment
	n      int
	faults []Fault
	// denied counts contacts denied per fault (same index as faults);
	// atomics because the sharded executor calls Pick concurrently.
	denied []atomic.Int64
}

func newFaultEnv(inner gossip.Environment, s Scenario) *faultEnv {
	fe := &faultEnv{inner: inner, n: s.N}
	for _, f := range s.Faults {
		if f.Kind == FaultPartition || f.Kind == FaultClockSkew {
			fe.faults = append(fe.faults, f)
		}
	}
	fe.denied = make([]atomic.Int64, len(fe.faults))
	return fe
}

// Size implements gossip.Environment.
func (fe *faultEnv) Size() int { return fe.inner.Size() }

// Advance implements gossip.Environment.
func (fe *faultEnv) Advance(round int) { fe.inner.Advance(round) }

// Alive implements gossip.Environment: the base liveness, minus hosts
// whose clock-skewed group is asleep this round.
func (fe *faultEnv) Alive(id gossip.NodeID, round int) bool {
	return fe.inner.Alive(id, round) && fe.awake(id, round)
}

// Pick implements gossip.Environment: draws from the base
// environment, rejecting peers that are across an active partition or
// asleep under clock skew. Every rejected draw counts against the
// fault (the denied-contact tally is fault pressure: how often the
// fault forced gossip away from its chosen peer); after pickRetries
// rejections the host counts as isolated this round and ok is false.
func (fe *faultEnv) Pick(id gossip.NodeID, round int, rng *xrand.Rand) (gossip.NodeID, bool) {
	for attempt := 0; attempt < pickRetries; attempt++ {
		peer, ok := fe.inner.Pick(id, round, rng)
		if !ok {
			return 0, false
		}
		if fi := fe.blocks(id, peer, round); fi >= 0 {
			fe.denied[fi].Add(1)
			continue
		}
		return peer, true
	}
	return 0, false
}

// blocks returns the index of the first fault that forbids the
// id→peer contact this round, or −1 if the contact is allowed.
func (fe *faultEnv) blocks(id, peer gossip.NodeID, round int) int {
	for i := range fe.faults {
		f := &fe.faults[i]
		if round < f.Start || round >= f.End {
			continue
		}
		switch f.Kind {
		case FaultPartition:
			if partitionSide(int(id), fe.n, f.parts()) != partitionSide(int(peer), fe.n, f.parts()) {
				return i
			}
		case FaultClockSkew:
			if !skewAwake(int(peer), round, f) {
				return i
			}
		}
	}
	return -1
}

func (fe *faultEnv) awake(id gossip.NodeID, round int) bool {
	for i := range fe.faults {
		f := &fe.faults[i]
		if f.Kind != FaultClockSkew || round < f.Start || round >= f.End {
			continue
		}
		if !skewAwake(int(id), round, f) {
			return false
		}
	}
	return true
}

// deniedCounts snapshots the per-fault denied-contact counters in
// fault order.
func (fe *faultEnv) deniedCounts() []FaultLoss {
	out := make([]FaultLoss, len(fe.faults))
	for i := range fe.faults {
		out[i] = FaultLoss{Kind: fe.faults[i].Kind, Count: fe.denied[i].Load()}
	}
	return out
}

func (f *Fault) parts() int {
	if f.Parts == 0 {
		return 2
	}
	return f.Parts
}

// partitionSide maps host id to its contiguous partition block: the
// population splits into parts equal ranges, matching how live spans
// tile the id space.
func partitionSide(id, n, parts int) int {
	s := id * parts / n
	if s >= parts {
		s = parts - 1
	}
	return s
}

// skewAwake reports whether a host in fault f's skewed region acts
// this round: hosts outside [Lo,Hi) always do, hosts inside only on
// every Period-th round of the window.
func skewAwake(id, round int, f *Fault) bool {
	if id < f.Lo || id >= f.Hi {
		return true
	}
	return (round-f.Start)%f.Period == 0
}

// populationHooks builds the BeforeRound hooks for the faults that
// mutate the live/dead population (outages, churn storms). seed salts
// the churn PRNG so distinct storms in one scenario stay independent.
func populationHooks(s Scenario, pop *env.Population, seed uint64) []gossip.Hook {
	var hooks []gossip.Hook
	for i, f := range s.Faults {
		switch f.Kind {
		case FaultOutage:
			hooks = append(hooks, failure.RegionOutage(f.Start, f.End, f.Lo, f.Hi, pop))
		case FaultChurnStorm:
			burst := f.Burst
			if burst == 0 {
				burst = 1
			}
			hooks = append(hooks, failure.ChurnStorm(f.Start, f.Period, burst, f.Rate, pop, seed+uint64(i)*0x9e3779b97f4a7c15))
		case FaultCrashRestart:
			hooks = append(hooks, crashRestart(f.Start, f.End, f.Lo, f.Hi, pop))
		}
	}
	return hooks
}

// crashRestart returns a BeforeRound hook executing the crashrestart
// fault on the round engine: the region fails at start — silence,
// exactly like RegionOutage — and revives at end with RESET protocol
// state, so the region's accumulated gossip mass is gone and only the
// initial endowment returns. Running as a fault hook (before the
// audit's expectation hook) keeps the mass audit clean: the audit
// measures the post-reset totals, just as the live audit censuses a
// respawned member's fresh endowment.
func crashRestart(start, end, lo, hi int, pop *env.Population) gossip.Hook {
	return func(r int, e *gossip.Engine) {
		switch r {
		case start:
			for id := lo; id < hi; id++ {
				pop.Fail(gossip.NodeID(id))
			}
		case end:
			for id := lo; id < hi; id++ {
				resetHost(e, gossip.NodeID(id))
				pop.Revive(gossip.NodeID(id))
			}
		}
	}
}

// resetHost restores host id's protocol state to its initial
// endowment on either backend, unwrapping Byzantine shims so the real
// node resets (the adversary behaviour resumes on the fresh state,
// as a re-infected restarted process would).
func resetHost(e *gossip.Engine, id gossip.NodeID) {
	switch col := e.Columnar().(type) {
	case *pushsum.Columnar:
		col.Reset(id)
		return
	case *pushsumrevert.Columnar:
		col.Reset(id)
		return
	}
	if e.Columnar() != nil {
		return
	}
	ag := e.Agent(id)
	for {
		if b, isByz := ag.(byzantineAgent); isByz {
			ag = b.unwrap()
			continue
		}
		break
	}
	switch n := ag.(type) {
	case *pushsum.Node:
		n.Reset()
	case *pushsumrevert.Node:
		n.Reset()
	}
}
