package chaos

import (
	"math"

	"dynagg/internal/gossip"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
)

// AuditReport is the mass-conservation verdict of one run.
//
// The invariant: with fault-filtered peer picking nothing ever drops
// in flight, so after every round the total (w, v) mass over all
// hosts — dead ones included, their state is frozen, not lost — must
// equal the round-start total plus the λ-reversion each live host
// applies at emission, Σ_live λ·(m0 − m). Plain Push-Sum is the λ=0
// case: exact conservation. Every honest fault in the vocabulary
// (partition, outage, churn storm, clock skew) preserves the
// invariant; every mass adversary breaks it, which is what makes the
// audit a defense rather than a metric.
type AuditReport struct {
	// Applicable is false for protocols without mass semantics
	// (sketchreset); such runs are judged by damage metrics instead.
	Applicable bool `json:"applicable"`
	// Tolerance is the relative drift above which a round counts as a
	// violation.
	Tolerance float64 `json:"tolerance"`
	// Violations is the number of rounds that broke conservation.
	Violations int `json:"violations"`
	// FirstViolation is the earliest violating round, −1 if none.
	FirstViolation int `json:"first_violation"`
	// MaxDrift is the largest relative drift observed in any round.
	MaxDrift float64 `json:"max_drift"`
}

// auditTolerance absorbs float summation error over hundreds of
// hosts; real violations (fabricated mass) sit orders of magnitude
// above it.
const auditTolerance = 1e-6

// massAudit implements the conservation audit as a BeforeRound /
// AfterRound hook pair. The before hook (registered after the fault
// hooks, so the round's fail/revive script has already run) computes
// the expected post-round totals; the after hook compares.
type massAudit struct {
	lambda  float64
	w0, mv0 []float64 // per-host reversion targets
	expW    float64
	expV    float64
	report  AuditReport
}

func newMassAudit(lambda float64, w0, mv0 []float64) *massAudit {
	return &massAudit{
		lambda: lambda,
		w0:     w0,
		mv0:    mv0,
		report: AuditReport{Applicable: true, Tolerance: auditTolerance, FirstViolation: -1},
	}
}

// before computes the expected post-round mass totals: the current
// totals plus each live host's reversion delta.
func (a *massAudit) before(r int, e *gossip.Engine) {
	sumW, sumV := a.totals(e)
	if a.lambda != 0 {
		env := e.Env()
		n := env.Size()
		for id := 0; id < n; id++ {
			nid := gossip.NodeID(id)
			if !env.Alive(nid, r) {
				continue
			}
			w, v, ok := massOf(e, nid)
			if !ok {
				return
			}
			sumW += a.lambda * (a.w0[id] - w)
			sumV += a.lambda * (a.mv0[id] - v)
		}
	}
	a.expW, a.expV = sumW, sumV
}

// after compares the actual post-round totals to the expectation.
func (a *massAudit) after(r int, e *gossip.Engine) {
	totW, totV := a.totals(e)
	drift := math.Max(relDrift(totW, a.expW), relDrift(totV, a.expV))
	if drift > a.report.MaxDrift {
		a.report.MaxDrift = drift
	}
	if drift > a.report.Tolerance {
		a.report.Violations++
		if a.report.FirstViolation < 0 {
			a.report.FirstViolation = r
		}
	}
}

func (a *massAudit) totals(e *gossip.Engine) (sumW, sumV float64) {
	n := e.Env().Size()
	for id := 0; id < n; id++ {
		w, v, ok := massOf(e, gossip.NodeID(id))
		if !ok {
			return 0, 0
		}
		sumW += w
		sumV += v
	}
	return sumW, sumV
}

func relDrift(actual, expected float64) float64 {
	return math.Abs(actual-expected) / math.Max(1, math.Abs(expected))
}

// massOf reads host id's true mass vector on either backend,
// unwrapping Byzantine agents so the audit sees real state, not the
// lie. ok is false for protocols without mass semantics.
func massOf(e *gossip.Engine, id gossip.NodeID) (w, v float64, ok bool) {
	switch col := e.Columnar().(type) {
	case *pushsum.Columnar:
		m := col.Mass(id)
		return m.W, m.V, true
	case *pushsumrevert.Columnar:
		m := col.Mass(id)
		return m.W, m.V, true
	}
	if e.Columnar() != nil {
		return 0, 0, false
	}
	ag := e.Agent(id)
	for {
		if b, isByz := ag.(byzantineAgent); isByz {
			ag = b.unwrap()
			continue
		}
		break
	}
	switch n := ag.(type) {
	case *pushsum.Node:
		m := n.Mass()
		return m.W, m.V, true
	case *pushsumrevert.Node:
		m := n.Mass()
		return m.W, m.V, true
	}
	return 0, 0, false
}
