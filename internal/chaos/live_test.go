package chaos

import (
	"context"
	"math"
	"testing"
	"time"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live"
	"dynagg/internal/gossip/live/transport"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
)

// TestNetPartitionFilter pins the Net delivery filter: cross-cut
// sends inside the fault window are destroyed and tallied, everything
// else forwards untouched.
func TestNetPartitionFilter(t *testing.T) {
	const n = 8
	s := Scenario{
		Name: "net", N: n, Rounds: 40, Protocol: ProtoPushSum,
		Faults: []Fault{{Kind: FaultPartition, Start: 10, End: 20, Parts: 2}},
	}
	inner := transport.NewChannel(n, 16)
	net := NewNet(inner, n, s)
	defer net.Close()

	// Host 0 and host 7 sit on opposite sides of a 2-way cut.
	if !net.Send(0, 7, 5, "before") {
		t.Fatalf("pre-fault cross send dropped")
	}
	if net.Send(0, 7, 10, "during") {
		t.Fatalf("cross send delivered inside the partition window")
	}
	if net.Send(7, 0, 19, "during") {
		t.Fatalf("reverse cross send delivered inside the partition window")
	}
	if !net.Send(0, 1, 15, "same side") {
		t.Fatalf("same-side send dropped during the partition")
	}
	if !net.Send(0, 7, 20, "healed") {
		t.Fatalf("cross send dropped after heal")
	}

	lost := net.Lost()
	if len(lost) != 1 || lost[0].Kind != FaultPartition || lost[0].Count != 2 {
		t.Fatalf("loss tally = %+v, want one partition entry with count 2", lost)
	}
	if net.Dropped() != 0 {
		t.Fatalf("fault-destroyed messages leaked into Dropped(): %d", net.Dropped())
	}
	delivered := 0
	for id := gossip.NodeID(0); id < n; id++ {
		net.Drain(id, func(any) { delivered++ })
	}
	if delivered != 3 {
		t.Fatalf("delivered %d messages, want 3", delivered)
	}
}

// TestNetOutageFilter pins the outage variant: any send touching the
// dead region is destroyed while the window is open.
func TestNetOutageFilter(t *testing.T) {
	const n = 8
	s := Scenario{
		Name: "net", N: n, Rounds: 40, Protocol: ProtoPushSum,
		Faults: []Fault{{Kind: FaultOutage, Start: 5, End: 15, Lo: 0, Hi: 4}},
	}
	net := NewNet(transport.NewChannel(n, 16), n, s)
	defer net.Close()

	if net.Send(2, 6, 5, "from dead region") || net.Send(6, 2, 14, "into dead region") {
		t.Fatalf("send touching the outage region delivered")
	}
	if !net.Send(5, 6, 10, "outside region") {
		t.Fatalf("send clear of the outage region dropped")
	}
	if got := net.Lost()[0].Count; got != 2 {
		t.Fatalf("outage destroyed %d messages, want 2", got)
	}
}

// TestNetUnwrapsToTCP pins the AsTCP plumbing: the gateway (and the
// chaos example) must reach the TCP core through a chaos.Net wrapper,
// and blocked sends must sever the cached connection via LinkKiller.
func TestNetUnwrapsToTCP(t *testing.T) {
	tcp, err := transport.NewTCPLoopback(4, 2, 16)
	if err != nil {
		t.Fatalf("NewTCPLoopback: %v", err)
	}
	s := Scenario{
		Name: "net", N: 4, Rounds: 40, Protocol: ProtoPushSum,
		Faults: []Fault{{Kind: FaultPartition, Start: 5, End: 40, Parts: 2}},
	}
	net := NewNet(tcp, 4, s)
	defer net.Close()

	if got, ok := transport.AsTCP(net); !ok || got != tcp {
		t.Fatalf("AsTCP failed to reach the TCP core through chaos.Net")
	}
	if _, ok := transport.AsTCP(NewNet(transport.NewChannel(4, 16), 4, s)); ok {
		t.Fatalf("AsTCP invented a TCP core from a channel transport")
	}

	// Establish the cached connection toward host 3's group with a
	// pre-window send (delivery proves the dial completed), so the
	// link-kill below has a connection to sever.
	if !net.Send(0, 3, 0, pushsum.Mass{W: 1, V: 1}) {
		t.Fatalf("pre-fault cross send dropped")
	}
	deadline := time.Now().Add(10 * time.Second)
	for arrived := false; !arrived; {
		net.Drain(3, func(any) { arrived = true })
		if !arrived && time.Now().After(deadline) {
			t.Fatalf("pre-fault message never delivered over TCP loopback")
		}
	}

	// A blocked cross-cut send must register a link kill on the core.
	before := tcp.Kills()
	if net.Send(0, 3, 5, pushsum.Mass{W: 1, V: 1}) {
		t.Fatalf("cross-cut send delivered")
	}
	if tcp.Kills() <= before {
		t.Fatalf("blocked send did not sever the cached link: kills %d -> %d", before, tcp.Kills())
	}
}

// liveScenarioAgents builds an honest reverting population sharing the
// deterministic value assignment the round runner uses.
func liveScenarioAgents(n int, lambda float64, seed uint64) ([]gossip.Agent, float64) {
	values := scenarioValues(n, seed)
	truth := 0.0
	agents := make([]gossip.Agent, n)
	for i := range agents {
		agents[i] = pushsumrevert.New(gossip.NodeID(i), values[i], pushsumrevert.Config{Lambda: lambda})
		truth += values[i]
	}
	return agents, truth / float64(n)
}

// liveCensus totals the system mass after a run: agent-held state
// plus whatever is stranded in transport queues (hosts that finish
// their ticks stop draining, so in-flight mass is substantial).
func liveCensus(t *testing.T, agents []gossip.Agent, tr transport.Transport) (w, v float64) {
	t.Helper()
	w, v, ok := SumMass(agents)
	if !ok {
		t.Fatalf("census failed (wrappers not unwrapped?)")
	}
	fw, fv := InFlightMass(tr, len(agents))
	return w + fw, v + fv
}

// TestLiveChaosHonestMassAudit runs a partitioned-then-healed live
// engine over a chaos.Net and asserts the end-of-run census: the cut
// destroys messages and reversion regenerates mass, but the system
// mass ratio stays pinned to the endowment's, so the audit must stay
// clean — and the population mean must be back near truth.
func TestLiveChaosHonestMassAudit(t *testing.T) {
	const (
		n     = 64
		ticks = 80
		seed  = 99
	)
	s := Scenario{
		Name: "live-partition", N: n, Rounds: ticks, Protocol: ProtoRevert, Lambda: 0.2,
		Faults: []Fault{{Kind: FaultPartition, Start: 10, End: 30, Parts: 2}},
	}
	agents, truth := liveScenarioAgents(n, s.Lambda, seed)
	w0, v0, ok := SumMass(agents)
	if !ok {
		t.Fatalf("census failed on honest agents")
	}

	net := NewNet(transport.NewChannel(n, 1024), n, s)
	eng, err := live.New(live.Config{
		Population: live.NewAgentPopulation(agents),
		Env:        env.NewUniform(n),
		Seed:       seed,
		Ticks:      ticks,
		Transport:  net,
	})
	if err != nil {
		t.Fatalf("live.New: %v", err)
	}
	if err := eng.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}

	if lost := net.Lost(); lost[0].Count == 0 {
		t.Fatalf("partition destroyed no messages")
	}
	w1, v1 := liveCensus(t, agents, net)
	audit := LiveMassAudit(w0, v0, w1, v1, 0.1)
	if audit.Violations != 0 {
		t.Fatalf("honest live run flagged: %+v (mass %g/%g -> %g/%g)", audit, w0, v0, w1, v1)
	}

	// Reversion heals destroyed mass, so the population mean must be
	// back near truth despite the mid-run cut.
	ests := eng.Estimates()
	mean := 0.0
	for _, e := range ests {
		mean += e
	}
	mean /= float64(len(ests))
	if rel := math.Abs(mean-truth) / truth; rel > 0.05 {
		t.Fatalf("post-heal mean %g strays %.1f%% from truth %g", mean, 100*rel, truth)
	}
}

// TestLiveChaosByzantineFlagged corrupts a slice of a live population
// with lying-mass agents and asserts the census catches the
// fabricated mass the liars inject: the claimed value sits far
// outside the honest population's, so the system mass ratio drifts
// toward it and the audit flags the run.
func TestLiveChaosByzantineFlagged(t *testing.T) {
	const (
		n     = 64
		ticks = 60
		seed  = 17
	)
	s := Scenario{
		Name: "live-liars", N: n, Rounds: ticks, Protocol: ProtoRevert, Lambda: 0.1,
		Adversaries: []Adversary{{Kind: AdvLyingMass, Frac: 0.1, Value: 500, Start: 5}},
	}
	agents, _ := liveScenarioAgents(n, s.Lambda, seed)
	w0, v0, _ := SumMass(agents)
	if got := Corrupt(s, agents); got == 0 {
		t.Fatalf("Corrupt touched no hosts")
	}

	tr := transport.NewChannel(n, 1024)
	eng, err := live.New(live.Config{
		Population: live.NewAgentPopulation(agents),
		Env:        env.NewUniform(n),
		Seed:       seed,
		Ticks:      ticks,
		Transport:  tr,
	})
	if err != nil {
		t.Fatalf("live.New: %v", err)
	}
	if err := eng.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}

	w1, v1 := liveCensus(t, agents, tr)
	audit := LiveMassAudit(w0, v0, w1, v1, 0.1)
	if audit.Violations == 0 {
		t.Fatalf("lying-mass run not flagged: %+v (mass %g/%g -> %g/%g)", audit, w0, v0, w1, v1)
	}
}
