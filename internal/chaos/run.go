package chaos

import (
	"encoding/json"
	"fmt"
	"math"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
	"dynagg/internal/xrand"
)

// valueSeedSalt decouples the data-value draw from the engine's
// per-host gossip PRNGs so the two streams never correlate.
const valueSeedSalt = 0x9e3779b97f4a7c15

// FaultLoss is the per-fault loss tally of a Report. On the round
// engine Count is the number of peer draws the fault deflected or
// denied — fault pressure on gossip, since mass never drops in flight
// there (see AuditReport); on the live engine it is real messages the
// fault destroyed.
type FaultLoss struct {
	// Kind names the fault.
	Kind string `json:"kind"`
	// Count is the tally.
	Count int64 `json:"count"`
}

// DamageReport scores estimator damage against ground truth.
type DamageReport struct {
	// MaxRelErr is the worst per-round population error over the run
	// — the peak of the Trajectory, the headline damage number.
	MaxRelErr float64 `json:"max_rel_err"`
	// FinalRelErr is the last round's population error.
	FinalRelErr float64 `json:"final_rel_err"`
	// RecoveryRound is the first round from which the error stays
	// within RecoveryTol to the end of the run; −1 if it never does.
	RecoveryRound int `json:"recovery_round"`
	// RecoveryTol is the threshold used.
	RecoveryTol float64 `json:"recovery_tol"`
}

// Report is the machine-readable outcome of one scenario run. For a
// given Scenario and seed the round engine produces a byte-identical
// JSON report (same backend), pinned by test.
type Report struct {
	// Scenario is the scenario name.
	Scenario string `json:"scenario"`
	// Seed is the run seed.
	Seed uint64 `json:"seed"`
	// Backend is "classic" or "columnar".
	Backend string `json:"backend"`
	// N and Rounds echo the scenario dimensions.
	N      int `json:"n"`
	Rounds int `json:"rounds"`
	// Protocol echoes the scenario protocol.
	Protocol string `json:"protocol"`
	// Byzantine is the number of hosts running adversary wrappers.
	Byzantine int `json:"byzantine"`
	// FinalTruth is the ground truth at the last round (the live
	// mean, or the live host count for sketchreset).
	FinalTruth float64 `json:"final_truth"`
	// Trajectory is the per-round population error: the mean relative
	// estimate error across live hosts (the error metric of the
	// paper's Figures 7 and 10 — a mean, not a max, because the
	// reverting protocols carry an intrinsic per-host bias toward the
	// local initial value that a worst-host metric would amplify into
	// noise).
	Trajectory []float64 `json:"trajectory"`
	// Lost tallies denied contacts (round engine) or destroyed
	// messages (live engine) per fault.
	Lost []FaultLoss `json:"lost"`
	// Messages is the total protocol payloads delivered.
	Messages int64 `json:"messages"`
	// Audit is the mass-conservation verdict.
	Audit AuditReport `json:"audit"`
	// Damage scores the estimators against ground truth.
	Damage DamageReport `json:"damage"`
}

// JSON renders the report as indented JSON (the determinism-pinned
// form).
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// RunOpts selects the execution backend for Run.
type RunOpts struct {
	// Columnar runs the struct-of-arrays engine. Scenarios with
	// adversaries need per-host agents and reject it.
	Columnar bool
	// Workers is the round-executor worker count (0 = sequential).
	Workers int
}

// Run executes the scenario on the round engine with the classic
// per-agent backend.
func Run(s Scenario, seed uint64) (*Report, error) {
	return RunWith(s, seed, RunOpts{})
}

// RunWith executes the scenario on the round engine with explicit
// backend options and returns its Report.
func RunWith(s Scenario, seed uint64, opts RunOpts) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	for _, f := range s.Faults {
		if f.needsMass() && s.Protocol == ProtoSketchReset {
			return nil, fmt.Errorf("chaos: scenario %q: fault %q needs a mass protocol to reset, scenario runs %q",
				s.Name, f.Kind, s.Protocol)
		}
	}
	if opts.Columnar && len(s.Adversaries) > 0 {
		return nil, fmt.Errorf("chaos: scenario %q: adversaries need per-host agents; columnar backend unsupported", s.Name)
	}

	values := scenarioValues(s.N, seed)
	environment := env.NewUniform(s.N)
	pop := environment.Population
	fe := newFaultEnv(environment, s)

	cfg := gossip.Config{Env: fe, Seed: seed, Workers: opts.Workers}
	lambda := 0.0
	byzantine := 0
	switch s.Protocol {
	case ProtoPushSum:
		if opts.Columnar {
			cfg.Columnar = pushsum.NewColumnarAverage(values)
		} else {
			agents := make([]gossip.Agent, s.N)
			for i := range agents {
				agents[i] = pushsum.NewAverage(gossip.NodeID(i), values[i])
			}
			byzantine = applyAdversaries(s, agents)
			cfg.Agents = agents
		}
	case ProtoRevert:
		lambda = s.Lambda
		if lambda == 0 {
			lambda = 0.1
		}
		rcfg := pushsumrevert.Config{Lambda: lambda}
		if opts.Columnar {
			cfg.Columnar = pushsumrevert.NewColumnar(values, rcfg)
		} else {
			agents := make([]gossip.Agent, s.N)
			for i := range agents {
				agents[i] = pushsumrevert.New(gossip.NodeID(i), values[i], rcfg)
			}
			byzantine = applyAdversaries(s, agents)
			cfg.Agents = agents
		}
	case ProtoSketchReset:
		scfg := sketchreset.Config{Params: sketch.DefaultParams, Identifiers: 1}
		if opts.Columnar {
			cfg.Columnar = sketchreset.NewColumnar(s.N, scfg)
		} else {
			agents := make([]gossip.Agent, s.N)
			for i := range agents {
				agents[i] = sketchreset.New(gossip.NodeID(i), scfg)
			}
			byzantine = applyAdversaries(s, agents)
			cfg.Agents = agents
		}
	}

	cfg.BeforeRound = populationHooks(s, pop, seed)

	var audit *massAudit
	if s.Protocol != ProtoSketchReset {
		w0 := make([]float64, s.N)
		mv0 := make([]float64, s.N)
		for i := range w0 {
			w0[i] = 1
			mv0[i] = values[i]
		}
		audit = newMassAudit(lambda, w0, mv0)
		cfg.BeforeRound = append(cfg.BeforeRound, audit.before)
		cfg.AfterRound = append(cfg.AfterRound, audit.after)
	}

	trajectory := make([]float64, 0, s.Rounds)
	finalTruth := 0.0
	cfg.AfterRound = append(cfg.AfterRound, func(r int, e *gossip.Engine) {
		truth := groundTruth(s.Protocol, values, pop)
		finalTruth = truth
		trajectory = append(trajectory, meanRelErr(e, truth))
	})

	eng, err := gossip.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	for r := 0; r < s.Rounds; r++ {
		eng.Step()
	}

	rep := &Report{
		Scenario:   s.Name,
		Seed:       seed,
		Backend:    backendName(opts.Columnar),
		N:          s.N,
		Rounds:     s.Rounds,
		Protocol:   s.Protocol,
		Byzantine:  byzantine,
		FinalTruth: finalTruth,
		Trajectory: trajectory,
		Lost:       fe.deniedCounts(),
		Messages:   eng.Messages(),
		Damage:     damage(trajectory, s.recoveryTol()),
	}
	if audit != nil {
		rep.Audit = audit.report
	} else {
		rep.Audit = AuditReport{Applicable: false, FirstViolation: -1}
	}
	return rep, nil
}

func backendName(columnar bool) string {
	if columnar {
		return "columnar"
	}
	return "classic"
}

// recoveryTol returns the scenario's recovery threshold with the
// 0.05 default applied.
func (s Scenario) recoveryTol() float64 {
	if s.RecoveryTol > 0 {
		return s.RecoveryTol
	}
	return 0.05
}

// scenarioValues draws the deterministic per-host data values for a
// run: uniform in [1, 100) so relative error is always well-defined.
func scenarioValues(n int, seed uint64) []float64 {
	rng := xrand.New(seed ^ valueSeedSalt)
	values := make([]float64, n)
	for i := range values {
		values[i] = 1 + 99*rng.Float64()
	}
	return values
}

// groundTruth is the current true aggregate: the mean of the live
// hosts' values, or the live count for sketchreset.
func groundTruth(protocol string, values []float64, pop *env.Population) float64 {
	if protocol == ProtoSketchReset {
		return float64(pop.AliveCount())
	}
	sum := 0.0
	ids := pop.AliveIDs()
	for _, id := range ids {
		sum += values[id]
	}
	return sum / float64(len(ids))
}

// meanRelErr is the mean relative estimate error over live hosts this
// round; hosts without an estimate yet are skipped.
func meanRelErr(e *gossip.Engine, truth float64) float64 {
	sum, count := 0.0, 0
	n := e.Env().Size()
	for id := 0; id < n; id++ {
		est, ok := e.EstimateOf(gossip.NodeID(id))
		if !ok {
			continue
		}
		sum += math.Abs(est-truth) / math.Abs(truth)
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// damage folds a trajectory into its DamageReport.
func damage(trajectory []float64, tol float64) DamageReport {
	d := DamageReport{RecoveryTol: tol, RecoveryRound: -1}
	for _, v := range trajectory {
		if v > d.MaxRelErr {
			d.MaxRelErr = v
		}
	}
	if len(trajectory) == 0 {
		return d
	}
	d.FinalRelErr = trajectory[len(trajectory)-1]
	for r := len(trajectory); r > 0; r-- {
		if trajectory[r-1] > tol {
			break
		}
		d.RecoveryRound = r - 1
	}
	return d
}
