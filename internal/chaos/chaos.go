// Package chaos is a seeded, deterministic scenario engine for the
// gossip stack: it composes faults (healing partitions, correlated
// regional outages, repeating churn storms, clock-skewed host
// groups), adversaries (Byzantine hosts that lie about masses, replay
// captured payloads, or inflate sketch bits), and defenses (a
// mass-conservation audit plus damage metrics against ground truth)
// into declarative Scenario values, runs them against the round
// engine (classic or columnar), and reports a machine-readable
// Report. The live engine reuses the same Scenario vocabulary through
// Net (a Transport wrapper that turns partition/outage windows into
// link kills and delivery filters).
//
// Determinism contract: the same Scenario and seed produce a
// byte-identical JSON Report on the round engine, regardless of
// backend or worker count.
package chaos

import (
	"fmt"
	"sort"
)

// Fault kinds accepted by Scenario.Faults.
const (
	// FaultPartition splits the population into Parts contiguous
	// blocks for rounds [Start, End); peers across the cut are
	// unreachable, then the partition heals.
	FaultPartition = "partition"
	// FaultOutage fails every host in [Lo, Hi) at round Start and
	// revives them all at round End — a correlated regional outage
	// that heals.
	FaultOutage = "outage"
	// FaultChurnStorm applies per-host fail/revive churn at Rate
	// during repeating bursts: rounds r ≥ Start with
	// (r−Start) mod Period < Burst.
	FaultChurnStorm = "churnstorm"
	// FaultClockSkew makes hosts in [Lo, Hi) participate only every
	// Period-th round during [Start, End) — the round-engine model of
	// a host group ticking on a skewed, slower clock.
	FaultClockSkew = "clockskew"
	// FaultCrashRestart is the crash-with-amnesia fault: the hosts in
	// [Lo, Hi) — a member process's span — crash at round Start and
	// restart at End with RESET protocol state, their accumulated
	// gossip mass gone and only the initial endowment re-sourced.
	// Unlike FaultOutage, which revives hosts with their state intact,
	// this is the round-engine model of the live cluster's
	// kill-and-Replace choreography (internal/supervise restarts the
	// member, Bootstrap Replace reclaims the span). The round runner
	// needs mass semantics to reset, so it rejects crashrestart under
	// ProtoSketchReset.
	FaultCrashRestart = "crashrestart"
)

// Adversary kinds accepted by Scenario.Adversaries.
const (
	// AdvLyingMass makes Byzantine hosts claim their local reading is
	// Value: every emitted mass message carries V = W·Value instead
	// of the host's true value mass.
	AdvLyingMass = "lyingmass"
	// AdvReplay makes Byzantine hosts capture their round-Start
	// emissions and replay those stale payloads to fresh peers every
	// later round, while hoarding everything they receive.
	AdvReplay = "replay"
	// AdvSketchBits makes Byzantine hosts zero every counter in their
	// emitted sketch snapshots — claiming every bit at every level
	// was freshly sourced — which inflates the network-size estimate
	// toward the sketch's ceiling.
	AdvSketchBits = "sketchbits"
)

// Protocol names accepted by Scenario.Protocol.
const (
	// ProtoPushSum is plain Push-Sum mass averaging.
	ProtoPushSum = "pushsum"
	// ProtoRevert is Push-Sum-Revert (λ mass reversion).
	ProtoRevert = "revert"
	// ProtoSketchReset is Count-Sketch-Reset network-size estimation.
	ProtoSketchReset = "sketchreset"
)

// Fault is one scripted fault window inside a Scenario.
type Fault struct {
	// Kind is one of the Fault* constants.
	Kind string `json:"kind"`
	// Start is the first round (or live tick) the fault is active.
	Start int `json:"start"`
	// End is the first round the fault is no longer active. Faults
	// with a window heal at End; FaultChurnStorm ignores End (its
	// bursts repeat until the run ends).
	End int `json:"end,omitempty"`
	// Parts is the number of contiguous partition sides (FaultPartition
	// only); 0 means 2.
	Parts int `json:"parts,omitempty"`
	// Lo, Hi bound the affected host region [Lo, Hi) for FaultOutage
	// and FaultClockSkew.
	Lo int `json:"lo,omitempty"`
	Hi int `json:"hi,omitempty"`
	// Rate is the per-host fail/revive probability per burst round
	// (FaultChurnStorm only).
	Rate float64 `json:"rate,omitempty"`
	// Period is the burst repeat interval (FaultChurnStorm) or the
	// duty cycle (FaultClockSkew: affected hosts act once every
	// Period rounds).
	Period int `json:"period,omitempty"`
	// Burst is the number of consecutive storm rounds per period
	// (FaultChurnStorm only); 0 means 1.
	Burst int `json:"burst,omitempty"`
}

// Adversary is one Byzantine behaviour assignment inside a Scenario.
// The first ⌈Frac·N⌉ hosts are Byzantine; taking a contiguous prefix
// keeps scenarios deterministic and easy to reason about.
type Adversary struct {
	// Kind is one of the Adv* constants.
	Kind string `json:"kind"`
	// Frac is the fraction of hosts behaving Byzantine (0 < Frac ≤ 1).
	Frac float64 `json:"frac"`
	// Value is the claimed local reading for AdvLyingMass.
	Value float64 `json:"value,omitempty"`
	// Start is the first round the adversary misbehaves.
	Start int `json:"start,omitempty"`
}

// Scenario declares one chaos run: a population, a protocol, and the
// fault and adversary schedule. Scenarios are plain data — they
// marshal to/from JSON (see Decode) and the same Scenario+seed always
// produces the same Report.
type Scenario struct {
	// Name identifies the scenario in reports and benchlines.
	Name string `json:"name"`
	// N is the host population size.
	N int `json:"n"`
	// Rounds is the number of gossip rounds to run.
	Rounds int `json:"rounds"`
	// Protocol is one of the Proto* constants.
	Protocol string `json:"protocol"`
	// Lambda is the reversion weight for ProtoRevert (default 0.1).
	Lambda float64 `json:"lambda,omitempty"`
	// Faults is the scripted fault schedule.
	Faults []Fault `json:"faults,omitempty"`
	// Adversaries is the Byzantine behaviour schedule.
	Adversaries []Adversary `json:"adversaries,omitempty"`
	// RecoveryTol is the max relative error under which the
	// population counts as recovered (default 0.05; sketch scenarios
	// want a looser bound, the sketch carries multiplicative error).
	RecoveryTol float64 `json:"recovery_tol,omitempty"`
}

// Validate reports whether the scenario is runnable.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("chaos: scenario needs a name")
	}
	if s.N < 2 {
		return fmt.Errorf("chaos: scenario %q: need N >= 2, got %d", s.Name, s.N)
	}
	if s.Rounds < 1 {
		return fmt.Errorf("chaos: scenario %q: need Rounds >= 1, got %d", s.Name, s.Rounds)
	}
	switch s.Protocol {
	case ProtoPushSum, ProtoRevert, ProtoSketchReset:
	default:
		return fmt.Errorf("chaos: scenario %q: unknown protocol %q", s.Name, s.Protocol)
	}
	if s.Lambda < 0 || s.Lambda >= 1 {
		return fmt.Errorf("chaos: scenario %q: Lambda must be in [0,1), got %v", s.Name, s.Lambda)
	}
	if s.RecoveryTol < 0 {
		return fmt.Errorf("chaos: scenario %q: negative RecoveryTol", s.Name)
	}
	for i, f := range s.Faults {
		if err := s.validateFault(f); err != nil {
			return fmt.Errorf("chaos: scenario %q: fault %d: %w", s.Name, i, err)
		}
	}
	for i, a := range s.Adversaries {
		if err := s.validateAdversary(a); err != nil {
			return fmt.Errorf("chaos: scenario %q: adversary %d: %w", s.Name, i, err)
		}
	}
	return nil
}

func (s Scenario) validateFault(f Fault) error {
	if f.Start < 0 {
		return fmt.Errorf("negative Start %d", f.Start)
	}
	switch f.Kind {
	case FaultPartition:
		if f.End <= f.Start {
			return fmt.Errorf("partition window [%d,%d) is empty", f.Start, f.End)
		}
		if p := f.Parts; p != 0 && (p < 2 || p > s.N) {
			return fmt.Errorf("Parts %d out of range [2,%d]", p, s.N)
		}
	case FaultOutage, FaultClockSkew:
		if f.End <= f.Start {
			return fmt.Errorf("%s window [%d,%d) is empty", f.Kind, f.Start, f.End)
		}
		if f.Lo < 0 || f.Hi <= f.Lo || f.Hi > s.N {
			return fmt.Errorf("%s region [%d,%d) out of range [0,%d)", f.Kind, f.Lo, f.Hi, s.N)
		}
		if f.Kind == FaultOutage && f.Hi-f.Lo >= s.N {
			return fmt.Errorf("outage region covers the whole population")
		}
		if f.Kind == FaultClockSkew && f.Period < 2 {
			return fmt.Errorf("clockskew needs Period >= 2, got %d", f.Period)
		}
	case FaultChurnStorm:
		if f.Rate <= 0 || f.Rate > 1 {
			return fmt.Errorf("churnstorm Rate %v out of (0,1]", f.Rate)
		}
		if f.Period < 1 {
			return fmt.Errorf("churnstorm needs Period >= 1, got %d", f.Period)
		}
		if f.Burst < 0 || f.Burst > f.Period {
			return fmt.Errorf("churnstorm Burst %d out of [0,Period]", f.Burst)
		}
	case FaultCrashRestart:
		if f.End <= f.Start {
			return fmt.Errorf("crashrestart window [%d,%d) is empty", f.Start, f.End)
		}
		if f.Lo < 0 || f.Hi <= f.Lo || f.Hi > s.N {
			return fmt.Errorf("crashrestart region [%d,%d) out of range [0,%d)", f.Lo, f.Hi, s.N)
		}
		if f.Hi-f.Lo >= s.N {
			return fmt.Errorf("crashrestart region covers the whole population")
		}
	default:
		return fmt.Errorf("unknown fault kind %q", f.Kind)
	}
	return nil
}

func (s Scenario) validateAdversary(a Adversary) error {
	if a.Frac <= 0 || a.Frac > 1 {
		return fmt.Errorf("Frac %v out of (0,1]", a.Frac)
	}
	if a.Start < 0 {
		return fmt.Errorf("negative Start %d", a.Start)
	}
	switch a.Kind {
	case AdvLyingMass:
		if s.Protocol == ProtoSketchReset {
			return fmt.Errorf("lyingmass needs a mass protocol, scenario runs %q", s.Protocol)
		}
	case AdvReplay:
		if s.Protocol == ProtoSketchReset {
			return fmt.Errorf("replay needs a mass protocol, scenario runs %q", s.Protocol)
		}
	case AdvSketchBits:
		if s.Protocol != ProtoSketchReset {
			return fmt.Errorf("sketchbits needs protocol %q, scenario runs %q", ProtoSketchReset, s.Protocol)
		}
	default:
		return fmt.Errorf("unknown adversary kind %q", a.Kind)
	}
	return nil
}

// byzantineCount returns how many hosts adversary a corrupts in an
// N-host population: ⌈Frac·N⌉, at least 1.
func (a Adversary) byzantineCount(n int) int {
	c := int(a.Frac * float64(n))
	if float64(c) < a.Frac*float64(n) {
		c++
	}
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	return c
}

// needsMass reports whether the round runner needs mass semantics
// (a Reset target) to execute the fault.
func (f Fault) needsMass() bool { return f.Kind == FaultCrashRestart }

// catalog is the named scenario registry. One entry per fault family
// plus the Byzantine baselines; ByName/Names expose it.
var catalog = map[string]Scenario{
	"partition-heal": {
		Name: "partition-heal", N: 512, Rounds: 80, Protocol: ProtoPushSum,
		Faults: []Fault{{Kind: FaultPartition, Start: 10, End: 40, Parts: 2}},
	},
	"regional-outage": {
		Name: "regional-outage", N: 512, Rounds: 100, Protocol: ProtoRevert, Lambda: 0.1,
		Faults: []Fault{{Kind: FaultOutage, Start: 20, End: 50, Lo: 0, Hi: 128}},
		// λ=0.1 floors the population error near 9%, so recovery is
		// judged against a tolerance above that intrinsic bias.
		RecoveryTol: 0.15,
	},
	"churn-storm": {
		Name: "churn-storm", N: 512, Rounds: 100, Protocol: ProtoRevert, Lambda: 0.1,
		Faults:      []Fault{{Kind: FaultChurnStorm, Start: 10, Rate: 0.05, Period: 20, Burst: 3}},
		RecoveryTol: 0.10,
	},
	"crash-restart": {
		Name: "crash-restart", N: 512, Rounds: 100, Protocol: ProtoRevert, Lambda: 0.1,
		// The last quarter of the id space — one member's span in a
		// four-member cluster — crashes at round 20 and restarts with
		// amnesia at round 45. Same λ=0.1 intrinsic-bias floor as
		// regional-outage.
		Faults:      []Fault{{Kind: FaultCrashRestart, Start: 20, End: 45, Lo: 384, Hi: 512}},
		RecoveryTol: 0.15,
	},
	"clock-skew": {
		Name: "clock-skew", N: 512, Rounds: 100, Protocol: ProtoRevert, Lambda: 0.1,
		Faults: []Fault{{Kind: FaultClockSkew, Start: 10, End: 70, Lo: 384, Hi: 512, Period: 4}},
		// Same λ=0.1 intrinsic-bias floor as regional-outage.
		RecoveryTol: 0.15,
	},
	"sketch-partition": {
		Name: "sketch-partition", N: 512, Rounds: 80, Protocol: ProtoSketchReset,
		Faults:      []Fault{{Kind: FaultPartition, Start: 10, End: 40, Parts: 2}},
		RecoveryTol: 0.75,
	},
	"byzantine-lying-1": {
		Name: "byzantine-lying-1", N: 512, Rounds: 80, Protocol: ProtoRevert, Lambda: 0.1,
		Adversaries: []Adversary{{Kind: AdvLyingMass, Frac: 0.01, Value: 100, Start: 10}},
	},
	"byzantine-lying-5": {
		Name: "byzantine-lying-5", N: 512, Rounds: 80, Protocol: ProtoRevert, Lambda: 0.1,
		Adversaries: []Adversary{{Kind: AdvLyingMass, Frac: 0.05, Value: 100, Start: 10}},
	},
	"byzantine-replay": {
		Name: "byzantine-replay", N: 512, Rounds: 80, Protocol: ProtoPushSum,
		Adversaries: []Adversary{{Kind: AdvReplay, Frac: 0.02, Start: 10}},
	},
	"byzantine-sketch": {
		Name: "byzantine-sketch", N: 512, Rounds: 60, Protocol: ProtoSketchReset,
		Adversaries: []Adversary{{Kind: AdvSketchBits, Frac: 0.02, Start: 10}},
		RecoveryTol: 0.75,
	},
}

// ByName returns a catalog scenario by name.
func ByName(name string) (Scenario, bool) {
	s, ok := catalog[name]
	return s, ok
}

// Names returns the catalog scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(catalog))
	for n := range catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
