package chaos

import (
	"bytes"
	"fmt"
	"testing"
)

// runJSON runs a scenario and returns its report JSON, failing the
// test on any error.
func runJSON(t *testing.T, s Scenario, seed uint64, opts RunOpts) []byte {
	t.Helper()
	rep, err := RunWith(s, seed, opts)
	if err != nil {
		t.Fatalf("RunWith(%s): %v", s.Name, err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatalf("Report.JSON(%s): %v", s.Name, err)
	}
	return data
}

// TestScenarioDeterminism pins the contract: same Scenario + seed ⇒
// byte-identical Report, on both backends and independent of the
// round executor's worker count.
func TestScenarioDeterminism(t *testing.T) {
	for _, name := range Names() {
		s, _ := ByName(name)
		t.Run(name, func(t *testing.T) {
			a := runJSON(t, s, 42, RunOpts{})
			b := runJSON(t, s, 42, RunOpts{})
			if !bytes.Equal(a, b) {
				t.Fatalf("classic report not deterministic:\n%s\nvs\n%s", a, b)
			}
			c := runJSON(t, s, 42, RunOpts{Workers: 3})
			if !bytes.Equal(a, c) {
				t.Fatalf("workers=3 report differs from sequential:\n%s\nvs\n%s", a, c)
			}
		})
	}
	t.Run("columnar", func(t *testing.T) {
		s, _ := ByName("partition-heal")
		a := runJSON(t, s, 42, RunOpts{Columnar: true})
		b := runJSON(t, s, 42, RunOpts{Columnar: true})
		if !bytes.Equal(a, b) {
			t.Fatalf("columnar report not deterministic:\n%s\nvs\n%s", a, b)
		}
	})
}

// TestScenarioHonestAuditClean asserts the defense's specificity:
// every honest fault in the catalog — partitions, outages, churn
// storms, clock skew — preserves mass conservation exactly, so the
// audit must report zero violations.
func TestScenarioHonestAuditClean(t *testing.T) {
	for _, name := range Names() {
		s, _ := ByName(name)
		if len(s.Adversaries) > 0 {
			continue
		}
		for _, columnar := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/columnar=%v", name, columnar), func(t *testing.T) {
				rep, err := RunWith(s, 7, RunOpts{Columnar: columnar})
				if err != nil {
					t.Fatalf("RunWith: %v", err)
				}
				if s.Protocol == ProtoSketchReset {
					if rep.Audit.Applicable {
						t.Fatalf("mass audit claims to apply to %s", s.Protocol)
					}
					return
				}
				if !rep.Audit.Applicable {
					t.Fatalf("mass audit should apply to %s", s.Protocol)
				}
				if rep.Audit.Violations != 0 {
					t.Fatalf("honest scenario flagged: %d violations (first at round %d, max drift %g)",
						rep.Audit.Violations, rep.Audit.FirstViolation, rep.Audit.MaxDrift)
				}
			})
		}
	}
}

// TestScenarioByzantineFlagged asserts the defense's sensitivity:
// every seeded Byzantine scenario on a mass protocol must trip the
// conservation audit, no earlier than the adversary activates; the
// sketch adversary (no mass to audit) must show up as estimator
// damage instead.
func TestScenarioByzantineFlagged(t *testing.T) {
	for _, name := range Names() {
		s, _ := ByName(name)
		if len(s.Adversaries) == 0 {
			continue
		}
		t.Run(name, func(t *testing.T) {
			rep, err := Run(s, 7)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if rep.Byzantine == 0 {
				t.Fatalf("no hosts corrupted")
			}
			if s.Protocol == ProtoSketchReset {
				if rep.Audit.Applicable {
					t.Fatalf("mass audit claims to apply to %s", s.Protocol)
				}
				if rep.Damage.MaxRelErr < 5 {
					t.Fatalf("sketch-bit inflation caused no visible damage: max rel err %g", rep.Damage.MaxRelErr)
				}
				return
			}
			if rep.Audit.Violations == 0 {
				t.Fatalf("Byzantine run not flagged (max drift %g)", rep.Audit.MaxDrift)
			}
			start := s.Adversaries[0].Start
			if rep.Audit.FirstViolation < start {
				t.Fatalf("flagged at round %d, before the adversary activates at %d",
					rep.Audit.FirstViolation, start)
			}
		})
	}
}

// TestPartitionHealConvergence is the scenario-matrix table test:
// every protocol family resumes convergence after a healed 2-way
// partition, with byte-exact classic/columnar parity on the error
// trajectory.
func TestPartitionHealConvergence(t *testing.T) {
	const healEnd = 40
	// Tolerances sit below each protocol's mid-partition error and
	// above its intrinsic noise floor, so RecoveryRound can only land
	// after the heal: Push-Sum converges to ~1e-9 (two side-means
	// differ by ~0.2%), the reverting protocol carries a λ-dependent
	// steady-state bias (λ=0.02 floors near 2.6%), and the sketch's
	// multiplicative error dominates everything else.
	cases := []struct {
		protocol string
		lambda   float64
		tol      float64
	}{
		{ProtoPushSum, 0, 0.001},
		{ProtoRevert, 0.02, 0.03},
		{ProtoSketchReset, 0, 0.75},
	}
	for _, tc := range cases {
		t.Run(tc.protocol, func(t *testing.T) {
			s := Scenario{
				Name: "partition-heal-" + tc.protocol, N: 256, Rounds: 80,
				Protocol: tc.protocol, Lambda: tc.lambda,
				Faults:      []Fault{{Kind: FaultPartition, Start: 10, End: healEnd, Parts: 2}},
				RecoveryTol: tc.tol,
			}
			classic, err := Run(s, 11)
			if err != nil {
				t.Fatalf("classic run: %v", err)
			}
			columnar, err := RunWith(s, 11, RunOpts{Columnar: true})
			if err != nil {
				t.Fatalf("columnar run: %v", err)
			}

			if classic.Damage.RecoveryRound < 0 {
				t.Fatalf("%s never recovered after heal: trajectory tail %v",
					tc.protocol, classic.Trajectory[len(classic.Trajectory)-5:])
			}
			if final := classic.Damage.FinalRelErr; final > tc.tol {
				t.Fatalf("%s final error %g above tolerance %g", tc.protocol, final, tc.tol)
			}
			// The partition must be visible (denied contacts), and for
			// the mass protocols it must push the error above the
			// tolerance while open — which forces the recovery round
			// past the heal, i.e. convergence genuinely RESUMED rather
			// than never having been disturbed.
			if len(classic.Lost) == 0 || classic.Lost[0].Count == 0 {
				t.Fatalf("partition denied no contacts: %+v", classic.Lost)
			}
			if tc.protocol != ProtoSketchReset {
				if during := classic.Trajectory[healEnd-1]; during <= tc.tol {
					t.Fatalf("partition left error %g within tolerance %g — no damage to recover from", during, tc.tol)
				}
				if classic.Damage.RecoveryRound < healEnd {
					t.Fatalf("recovery round %d precedes the heal at %d", classic.Damage.RecoveryRound, healEnd)
				}
			}

			if len(classic.Trajectory) != len(columnar.Trajectory) {
				t.Fatalf("trajectory lengths differ: %d vs %d", len(classic.Trajectory), len(columnar.Trajectory))
			}
			for r := range classic.Trajectory {
				if classic.Trajectory[r] != columnar.Trajectory[r] {
					t.Fatalf("classic/columnar parity broken at round %d: %g vs %g",
						r, classic.Trajectory[r], columnar.Trajectory[r])
				}
			}
		})
	}
}

// TestRunRejects pins the runner's refusal cases: crashrestart
// without a region or without mass semantics, and adversaries on the
// columnar backend.
func TestRunRejects(t *testing.T) {
	s := Scenario{
		Name: "crash-noregion", N: 16, Rounds: 4, Protocol: ProtoPushSum,
		Faults: []Fault{{Kind: FaultCrashRestart, Start: 1, End: 2}},
	}
	if _, err := Run(s, 1); err == nil {
		t.Fatalf("crashrestart without a [Lo,Hi) region accepted")
	}
	s = Scenario{
		Name: "crash-sketch", N: 16, Rounds: 4, Protocol: ProtoSketchReset,
		Faults: []Fault{{Kind: FaultCrashRestart, Start: 1, End: 2, Lo: 8, Hi: 16}},
	}
	if _, err := Run(s, 1); err == nil {
		t.Fatalf("crashrestart accepted without mass semantics to reset")
	}
	s = Scenario{
		Name: "byz-columnar", N: 16, Rounds: 4, Protocol: ProtoPushSum,
		Adversaries: []Adversary{{Kind: AdvLyingMass, Frac: 0.1, Value: 10}},
	}
	if _, err := RunWith(s, 1, RunOpts{Columnar: true}); err == nil {
		t.Fatalf("adversaries accepted on the columnar backend")
	}
}

// TestCrashRestartHeals pins the crashrestart fault on the round
// engine: the span crashes at Start (silence), restarts at End with
// amnesia (reset endowment), the estimator damage peaks at-or-after
// the restart injects the fresh mass, and gossip reabsorbs it —
// recovery lands after the restart round with the mass audit clean on
// both backends, byte-for-byte identical.
func TestCrashRestartHeals(t *testing.T) {
	s, ok := ByName("crash-restart")
	if !ok {
		t.Fatal("crash-restart missing from the catalog")
	}
	rep, err := Run(s, 42)
	if err != nil {
		t.Fatal(err)
	}
	columnar, err := RunWith(s, 42, RunOpts{Columnar: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trajectory) != len(columnar.Trajectory) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(rep.Trajectory), len(columnar.Trajectory))
	}
	for r := range rep.Trajectory {
		if rep.Trajectory[r] != columnar.Trajectory[r] {
			t.Fatalf("classic/columnar parity broken at round %d: %g vs %g",
				r, rep.Trajectory[r], columnar.Trajectory[r])
		}
	}
	crash := s.Faults[0]
	if rep.Audit.Violations != 0 {
		t.Fatalf("honest crashrestart flagged: %d violations, first at %d (max drift %g)",
			rep.Audit.Violations, rep.Audit.FirstViolation, rep.Audit.MaxDrift)
	}
	if rep.Damage.MaxRelErr <= rep.Damage.RecoveryTol {
		t.Fatalf("fault never bit: max rel err %g within tol %g",
			rep.Damage.MaxRelErr, rep.Damage.RecoveryTol)
	}
	if rep.Damage.RecoveryRound < crash.End {
		t.Fatalf("recovery round %d precedes the restart at %d — the amnesia cost nothing",
			rep.Damage.RecoveryRound, crash.End)
	}
	if rep.Damage.RecoveryRound < 0 {
		t.Fatalf("population never recovered: %+v", rep.Damage)
	}
}
