package chaos

import (
	"sync"
	"sync/atomic"

	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live/transport"
)

// Net wraps a live transport with a Scenario's fault schedule:
// partition and outage windows become delivery filters keyed on the
// sender's tick, and the first blocked send toward a destination also
// severs the cached connection through transport.LinkKiller — so a
// TCP member experiences a partition the way a real one happens
// (connection dies, redial fails to matter, traffic is lost), not as
// politely missing messages.
//
// Every member of a cluster runs the same Scenario, so the filters
// agree on both sides of each cut up to tick skew between processes.
type Net struct {
	inner  transport.Transport
	n      int
	faults []Fault
	lost   []atomic.Int64

	mu     sync.Mutex
	killed map[int64]bool // (fault<<32|to) pairs already link-killed
}

var (
	_ transport.Transport  = (*Net)(nil)
	_ transport.LinkKiller = (*Net)(nil)
)

// NewNet wraps inner with the delivery-affecting faults of s
// (partition, outage; other kinds are ignored here). n is the total
// host population, needed to map host ids to partition sides.
func NewNet(inner transport.Transport, n int, s Scenario) *Net {
	net := &Net{inner: inner, n: n, killed: make(map[int64]bool)}
	for _, f := range s.Faults {
		if f.Kind == FaultPartition || f.Kind == FaultOutage {
			net.faults = append(net.faults, f)
		}
	}
	net.lost = make([]atomic.Int64, len(net.faults))
	return net
}

// Send implements transport.Transport: messages crossing an active
// fault are destroyed (and tallied); everything else forwards.
func (c *Net) Send(from, to gossip.NodeID, tick int, payload any) bool {
	if fi := c.blocks(from, to, tick); fi >= 0 {
		c.lost[fi].Add(1)
		c.killOnce(fi, to)
		return false
	}
	return c.inner.Send(from, to, tick, payload)
}

// blocks returns the index of the first fault active at the sender's
// tick that forbids from→to, or −1.
func (c *Net) blocks(from, to gossip.NodeID, tick int) int {
	for i := range c.faults {
		f := &c.faults[i]
		if tick < f.Start || tick >= f.End {
			continue
		}
		switch f.Kind {
		case FaultPartition:
			if partitionSide(int(from), c.n, f.parts()) != partitionSide(int(to), c.n, f.parts()) {
				return i
			}
		case FaultOutage:
			if (int(from) >= f.Lo && int(from) < f.Hi) || (int(to) >= f.Lo && int(to) < f.Hi) {
				return i
			}
		}
	}
	return -1
}

// killOnce severs the cached connection toward to's group the first
// time fault fi blocks traffic that way, making the cut visible to
// the transport's reconnect machinery.
func (c *Net) killOnce(fi int, to gossip.NodeID) {
	killer, ok := c.inner.(transport.LinkKiller)
	if !ok {
		return
	}
	key := int64(fi)<<32 | int64(to)
	c.mu.Lock()
	seen := c.killed[key]
	if !seen {
		c.killed[key] = true
	}
	c.mu.Unlock()
	if !seen {
		killer.KillLink(to)
	}
}

// Lost tallies the messages each fault destroyed so far, in fault
// order.
func (c *Net) Lost() []FaultLoss {
	out := make([]FaultLoss, len(c.faults))
	for i := range c.faults {
		out[i] = FaultLoss{Kind: c.faults[i].Kind, Count: c.lost[i].Load()}
	}
	return out
}

// Drain implements transport.Transport.
func (c *Net) Drain(id gossip.NodeID, fn func(payload any)) { c.inner.Drain(id, fn) }

// Sent implements transport.Transport.
func (c *Net) Sent() int64 { return c.inner.Sent() }

// Dropped implements transport.Transport (fault-destroyed messages
// are not included; they are accounted in Lost).
func (c *Net) Dropped() int64 { return c.inner.Dropped() }

// Close implements transport.Transport.
func (c *Net) Close() error { return c.inner.Close() }

// KillLink implements transport.LinkKiller by forwarding to the
// wrapped transport when it supports link kills.
func (c *Net) KillLink(to gossip.NodeID) bool {
	if killer, ok := c.inner.(transport.LinkKiller); ok {
		return killer.KillLink(to)
	}
	return false
}

// Unwrap exposes the wrapped transport so transport.AsTCP can reach
// a TCP core through the chaos layer.
func (c *Net) Unwrap() transport.Transport { return c.inner }
