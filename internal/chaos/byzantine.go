package chaos

import (
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/xrand"
)

// byzantineAgent is the common wrapper shape: it delegates the whole
// Agent surface to the honest inner node and corrupts only the
// emission path, so the audit can read the host's true state through
// unwrap while the network sees the lie. Wrappers deliberately do not
// implement gossip.AppendEmitter — the engine falls back to Emit, the
// only path the corruption covers.
type byzantineAgent interface {
	gossip.Agent
	unwrap() gossip.Agent
}

// applyAdversaries replaces the first hosts of the population with
// Byzantine wrappers, one contiguous block per adversary in schedule
// order. Returns the number of corrupted hosts.
func applyAdversaries(s Scenario, agents []gossip.Agent) int {
	lo := 0
	for _, a := range s.Adversaries {
		k := a.byzantineCount(len(agents))
		if lo+k > len(agents) {
			k = len(agents) - lo
		}
		for i := lo; i < lo+k; i++ {
			switch a.Kind {
			case AdvLyingMass:
				agents[i] = &lyingAgent{inner: agents[i], value: a.Value, start: a.Start}
			case AdvReplay:
				agents[i] = &replayAgent{inner: agents[i], start: a.Start}
			case AdvSketchBits:
				agents[i] = &sketchBitsAgent{inner: agents[i], start: a.Start}
			}
		}
		lo += k
	}
	return lo
}

// lyingAgent claims its local reading is value: every emitted mass
// message carries V = W·value in place of the true value mass. The
// weight mass stays honest, so the lie corrupts the average without
// touching convergence — the hardest variant to notice from rates
// alone, and exactly what the mass-conservation audit catches as
// value-mass drift.
type lyingAgent struct {
	inner gossip.Agent
	value float64
	start int
}

func (a *lyingAgent) unwrap() gossip.Agent      { return a.inner }
func (a *lyingAgent) BeginRound(round int)      { a.inner.BeginRound(round) }
func (a *lyingAgent) Receive(payload any)       { a.inner.Receive(payload) }
func (a *lyingAgent) EndRound(round int)        { a.inner.EndRound(round) }
func (a *lyingAgent) Estimate() (float64, bool) { return a.inner.Estimate() }

func (a *lyingAgent) Emit(round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	out := a.inner.Emit(round, rng, pick)
	if round < a.start {
		return out
	}
	for i := range out {
		out[i].Payload = lieAboutMass(out[i].Payload, a.value)
	}
	return out
}

// lieAboutMass rewrites a mass payload's value component to claim the
// host's reading is value; unknown payload shapes pass through.
func lieAboutMass(payload any, value float64) any {
	switch m := payload.(type) {
	case pushsum.Mass:
		return pushsum.Mass{W: m.W, V: m.W * value}
	case *pushsum.Mass:
		return pushsum.Mass{W: m.W, V: m.W * value}
	case pushsumrevert.Mass:
		return pushsumrevert.Mass{W: m.W, V: m.W * value}
	case *pushsumrevert.Mass:
		return pushsumrevert.Mass{W: m.W, V: m.W * value}
	}
	return payload
}

// replayAgent captures its round-start emissions and replays those
// stale payloads to freshly picked peers every later round, while
// silently hoarding everything it receives — the captured-sketch
// replay attack. Every replayed message injects fabricated mass, so
// total system mass drifts linearly and the audit flags it.
type replayAgent struct {
	inner    gossip.Agent
	start    int
	captured []any
}

func (a *replayAgent) unwrap() gossip.Agent      { return a.inner }
func (a *replayAgent) BeginRound(round int)      { a.inner.BeginRound(round) }
func (a *replayAgent) Receive(payload any)       { a.inner.Receive(payload) }
func (a *replayAgent) EndRound(round int)        { a.inner.EndRound(round) }
func (a *replayAgent) Estimate() (float64, bool) { return a.inner.Estimate() }

func (a *replayAgent) Emit(round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	if round < a.start {
		return a.inner.Emit(round, rng, pick)
	}
	if a.captured == nil {
		out := a.inner.Emit(round, rng, pick)
		for _, env := range out {
			a.captured = append(a.captured, copyMassPayload(env.Payload))
		}
		return out
	}
	out := make([]gossip.Envelope, 0, len(a.captured))
	for _, p := range a.captured {
		if peer, ok := pick(); ok {
			out = append(out, gossip.Envelope{To: peer, Payload: p})
		}
	}
	return out
}

// copyMassPayload snapshots a mass payload by value so later replays
// are immune to scratch-buffer reuse in the inner agent.
func copyMassPayload(payload any) any {
	switch m := payload.(type) {
	case *pushsum.Mass:
		return *m
	case *pushsumrevert.Mass:
		return *m
	}
	return payload
}

// sketchBitsAgent zeroes every age counter in its emitted sketch
// snapshots — claiming every bit at every level was sourced this
// round. Min-merge spreads the fabricated bits through the honest
// population and the size estimate inflates toward the sketch
// ceiling; the damage metric records the blow-up.
type sketchBitsAgent struct {
	inner gossip.Agent
	start int
}

func (a *sketchBitsAgent) unwrap() gossip.Agent      { return a.inner }
func (a *sketchBitsAgent) BeginRound(round int)      { a.inner.BeginRound(round) }
func (a *sketchBitsAgent) Receive(payload any)       { a.inner.Receive(payload) }
func (a *sketchBitsAgent) EndRound(round int)        { a.inner.EndRound(round) }
func (a *sketchBitsAgent) Estimate() (float64, bool) { return a.inner.Estimate() }

func (a *sketchBitsAgent) Emit(round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	out := a.inner.Emit(round, rng, pick)
	if round < a.start {
		return out
	}
	for i := range out {
		if ages, ok := out[i].Payload.([]uint8); ok {
			// Emit allocates a fresh snapshot per call; zeroing it in
			// place corrupts only the emitted copy, not agent state.
			for j := range ages {
				ages[j] = 0
			}
		}
	}
	return out
}
