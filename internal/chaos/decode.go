package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Decode parses a JSON scenario file. Unknown fields and trailing
// data are errors — scenario files are config, and config typos must
// fail loudly — and the decoded scenario is validated before it is
// returned.
func Decode(data []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("chaos: decoding scenario: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil || len(trailing) > 0 {
		return Scenario{}, fmt.Errorf("chaos: trailing data after scenario document")
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// Encode renders a scenario as indented JSON, the inverse of Decode.
func Encode(s Scenario) ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
