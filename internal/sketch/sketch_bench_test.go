package sketch

import "testing"

func BenchmarkInsertValue100(b *testing.B) {
	s := New(DefaultParams)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.InsertValue(uint64(i), 100)
	}
}

func BenchmarkHashID(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= HashID(uint64(i))
	}
	_ = sink
}

func BenchmarkClone(b *testing.B) {
	s := New(DefaultParams)
	for i := 0; i < 1000; i++ {
		s.Insert(uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Clone()
	}
}
