package sketch

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{Params{Bins: 64, Levels: 24}, true},
		{Params{Bins: 1, Levels: 1}, true},
		{Params{Bins: 0, Levels: 24}, false},
		{Params{Bins: -1, Levels: 24}, false},
		{Params{Bins: 64, Levels: 0}, false},
		{Params{Bins: 64, Levels: 65}, false},
		{Params{Bins: 64, Levels: 64}, true},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.p, err, c.ok)
		}
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with bad params did not panic")
		}
	}()
	New(Params{Bins: 0, Levels: 8})
}

func TestRho(t *testing.T) {
	cases := []struct {
		hash   uint64
		levels int
		want   int
	}{
		{1, 32, 0},      // lowest bit set
		{2, 32, 1},      // bit 1
		{4, 32, 2},      // bit 2
		{0b1100, 32, 2}, // first set bit is 2
		{0, 32, 31},     // all-zero hash saturates at top level
		{1 << 40, 32, 31},
		{1 << 5, 4, 3}, // saturate small level count
	}
	for _, c := range cases {
		if got := Rho(c.hash, c.levels); got != c.want {
			t.Errorf("Rho(%#x, %d) = %d, want %d", c.hash, c.levels, got, c.want)
		}
	}
}

// TestRhoDistribution checks the geometric law P[ρ=k] ≈ 2^-(k+1) that
// all FM estimates rest on.
func TestRhoDistribution(t *testing.T) {
	const n = 200000
	const levels = 24
	counts := make([]int, levels)
	for i := uint64(0); i < n; i++ {
		counts[Rho(HashID(i), levels)]++
	}
	for k := 0; k < 8; k++ {
		expected := float64(n) / math.Exp2(float64(k+1))
		got := float64(counts[k])
		// 5-sigma binomial tolerance
		tol := 5 * math.Sqrt(expected)
		if math.Abs(got-expected) > tol {
			t.Errorf("P[rho=%d]: got %v draws, expected %v±%v", k, got, expected, tol)
		}
	}
}

func TestPlaceBinUniformity(t *testing.T) {
	p := Params{Bins: 16, Levels: 24}
	const n = 160000
	counts := make([]int, p.Bins)
	for i := uint64(0); i < n; i++ {
		pos := p.Place(i)
		if pos.Bin < 0 || pos.Bin >= p.Bins {
			t.Fatalf("bin out of range: %d", pos.Bin)
		}
		if pos.Level < 0 || pos.Level >= p.Levels {
			t.Fatalf("level out of range: %d", pos.Level)
		}
		counts[pos.Bin]++
	}
	expected := float64(n) / float64(p.Bins)
	for b, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("bin %d has %d items, expected ~%.0f", b, c, expected)
		}
	}
}

func TestPlaceDeterministic(t *testing.T) {
	p := DefaultParams
	f := func(id uint64) bool {
		return p.Place(id) == p.Place(id)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAndBit(t *testing.T) {
	s := New(DefaultParams)
	s.Insert(12345)
	pos := DefaultParams.Place(12345)
	if !s.Bit(pos) {
		t.Fatal("inserted identifier's bit not set")
	}
}

func TestR(t *testing.T) {
	s := New(Params{Bins: 2, Levels: 16})
	if s.R(0) != 0 {
		t.Fatalf("empty bin R = %d, want 0", s.R(0))
	}
	s.SetBit(Position{Bin: 0, Level: 0})
	s.SetBit(Position{Bin: 0, Level: 1})
	s.SetBit(Position{Bin: 0, Level: 3}) // gap at 2
	if s.R(0) != 2 {
		t.Fatalf("R = %d, want 2", s.R(0))
	}
	if s.R(1) != 0 {
		t.Fatalf("untouched bin R = %d, want 0", s.R(1))
	}
}

func TestRFullBin(t *testing.T) {
	p := Params{Bins: 1, Levels: 8}
	s := New(p)
	for k := 0; k < p.Levels; k++ {
		s.SetBit(Position{Bin: 0, Level: k})
	}
	if s.R(0) != p.Levels {
		t.Fatalf("full bin R = %d, want %d", s.R(0), p.Levels)
	}
}

func TestMergeIsOR(t *testing.T) {
	a := New(DefaultParams)
	b := New(DefaultParams)
	a.Insert(1)
	b.Insert(2)
	a.Merge(b)
	if !a.Bit(DefaultParams.Place(1)) || !a.Bit(DefaultParams.Place(2)) {
		t.Fatal("merge lost bits")
	}
}

// Property: merge is commutative, associative and idempotent — the
// invariants that make the sketch safe under gossip re-delivery.
func TestMergeAlgebra(t *testing.T) {
	p := Params{Bins: 8, Levels: 16}
	build := func(ids []uint64) *Sketch {
		s := New(p)
		for _, id := range ids {
			s.Insert(id)
		}
		return s
	}
	f := func(x, y, z []uint64) bool {
		a, b, c := build(x), build(y), build(z)

		// commutative
		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !ab.Equal(ba) {
			return false
		}
		// associative
		abc1 := ab.Clone()
		abc1.Merge(c)
		bc := b.Clone()
		bc.Merge(c)
		abc2 := a.Clone()
		abc2.Merge(bc)
		if !abc1.Equal(abc2) {
			return false
		}
		// idempotent
		aa := a.Clone()
		aa.Merge(a)
		return aa.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: duplicate insertion never changes the sketch — the
// duplicate-insensitivity that Considine et al. rely on.
func TestDuplicateInsensitive(t *testing.T) {
	f := func(ids []uint64) bool {
		p := Params{Bins: 8, Levels: 16}
		once := New(p)
		twice := New(p)
		for _, id := range ids {
			once.Insert(id)
			twice.Insert(id)
			twice.Insert(id)
		}
		return once.Equal(twice)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateEmpty(t *testing.T) {
	s := New(DefaultParams)
	if got := s.Estimate(); got != 0 {
		t.Fatalf("empty sketch estimate = %v, want 0", got)
	}
}

// TestEstimateAccuracy inserts known populations and checks the
// estimate is within a few multiples of the analytic error bound.
func TestEstimateAccuracy(t *testing.T) {
	p := Params{Bins: 64, Levels: 24}
	for _, n := range []int{1000, 10000, 100000} {
		s := New(p)
		for i := 0; i < n; i++ {
			s.Insert(uint64(i) * 2654435761)
		}
		est := s.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		// 9.7% expected at 64 bins; allow 4x slack for a single draw.
		if relErr > 4*p.ExpectedRelativeError() {
			t.Errorf("n=%d: estimate %.0f, relative error %.3f > %.3f",
				n, est, relErr, 4*p.ExpectedRelativeError())
		}
	}
}

// TestEstimateMonotone: inserting more identifiers never lowers the
// estimate (bits only turn on).
func TestEstimateMonotone(t *testing.T) {
	p := Params{Bins: 16, Levels: 20}
	s := New(p)
	prev := 0.0
	for i := 0; i < 5000; i++ {
		s.Insert(uint64(i) * 11400714819323198485)
		if i%500 == 0 {
			est := s.Estimate()
			if est < prev {
				t.Fatalf("estimate decreased from %v to %v at i=%d", prev, est, i)
			}
			prev = est
		}
	}
}

func TestInsertValue(t *testing.T) {
	p := Params{Bins: 64, Levels: 24}
	s := New(p)
	// 100 owners each contributing 50 → sum 5000
	for owner := uint64(0); owner < 100; owner++ {
		s.InsertValue(owner, 50)
	}
	est := s.Estimate()
	relErr := math.Abs(est-5000) / 5000
	if relErr > 4*p.ExpectedRelativeError() {
		t.Fatalf("sum estimate %.0f, relative error %.3f", est, relErr)
	}
}

func TestInsertValueZero(t *testing.T) {
	s := New(DefaultParams)
	s.InsertValue(7, 0)
	if s.Estimate() != 0 {
		t.Fatal("InsertValue(_, 0) should leave sketch empty")
	}
}

func TestMergePanicsOnMismatchedParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched merge did not panic")
		}
	}()
	a := New(Params{Bins: 8, Levels: 16})
	b := New(Params{Bins: 16, Levels: 16})
	a.Merge(b)
}

func TestCloneIndependent(t *testing.T) {
	a := New(DefaultParams)
	a.Insert(1)
	b := a.Clone()
	b.Insert(99999)
	if a.Equal(b) {
		t.Fatal("clone mutation affected original equality check unexpectedly")
	}
	if !a.Bit(DefaultParams.Place(1)) {
		t.Fatal("original lost its bit")
	}
}

func TestBitsRoundTrip(t *testing.T) {
	a := New(DefaultParams)
	for i := uint64(0); i < 100; i++ {
		a.Insert(i)
	}
	b := New(DefaultParams)
	b.LoadBits(a.Bits())
	if !a.Equal(b) {
		t.Fatal("Bits/LoadBits round trip failed")
	}
}

func TestLoadBitsPanicsOnWrongLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LoadBits wrong length did not panic")
		}
	}()
	New(DefaultParams).LoadBits(make([]uint64, 3))
}

func TestExpectedRelativeError(t *testing.T) {
	got := Params{Bins: 64, Levels: 24}.ExpectedRelativeError()
	if math.Abs(got-0.0975) > 0.001 {
		t.Fatalf("64-bin expected error = %v, want ≈0.0975 (the paper's 9.7%%)", got)
	}
}

func BenchmarkInsert(b *testing.B) {
	s := New(DefaultParams)
	for i := 0; i < b.N; i++ {
		s.Insert(uint64(i))
	}
}

func BenchmarkMerge(b *testing.B) {
	x := New(DefaultParams)
	y := New(DefaultParams)
	for i := uint64(0); i < 1000; i++ {
		x.Insert(i)
		y.Insert(i + 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Merge(y)
	}
}

func BenchmarkEstimate(b *testing.B) {
	s := New(DefaultParams)
	for i := uint64(0); i < 10000; i++ {
		s.Insert(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Estimate()
	}
}
