// Package sketch implements Flajolet-Martin probabilistic counting
// sketches with stochastic averaging, the substrate for the paper's
// Sketch-Count (Considine et al., ICDE'04) and Count-Sketch-Reset
// protocols.
//
// An identifier i is hashed and assigned a level ρ(i) with geometric
// distribution P[ρ(i)=k] = 2^-(k+1), and a bin uniform in [0, m). The
// sketch is, per bin, the bitwise OR of 2^ρ(i) over all inserted
// identifiers. R(bin) — the length of the contiguous run of ones
// starting at bit 0 — estimates log2(ϕ·n/m), so the number of distinct
// identifiers is estimated as m·2^avg(R)/ϕ with ϕ ≈ 0.77351.
//
// The sketch is duplicate-insensitive and merges by OR, which is what
// makes it usable over gossip: re-delivering or re-merging state never
// changes the estimate.
//
// Note on the paper's Figure 2/5: the estimate there is printed as
// |B|·ϕ·2^avg(R); the original Flajolet-Martin result E[R] ≈ log2(ϕn)
// implies n ≈ 2^R/ϕ, so the ϕ belongs in the denominator. We follow
// Flajolet-Martin (and Considine et al.), i.e. m·2^avg(R)/ϕ.
package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

// Phi is the Flajolet-Martin magic constant relating E[R] to log2(n).
const Phi = 0.77351

// MaxLevels is the largest supported number of bit levels per bin.
const MaxLevels = 64

// Params configures a sketch family. All sketches that interact (merge,
// compare) must share identical Params.
type Params struct {
	// Bins is the stochastic-averaging bucket count m. More bins lower
	// the estimate's variance (expected relative error ≈ 0.78/√m; the
	// paper uses m=64 for ≈9.7%) at a linear cost in space.
	Bins int
	// Levels is the number of bits L per bin. It bounds the countable
	// population: counts up to roughly m·2^(Levels-4) are safe.
	Levels int
}

// DefaultParams matches the paper's evaluation: 64 bins, 24 levels.
var DefaultParams = Params{Bins: 64, Levels: 24}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Bins <= 0 {
		return fmt.Errorf("sketch: Bins must be positive, got %d", p.Bins)
	}
	if p.Levels <= 0 || p.Levels > MaxLevels {
		return fmt.Errorf("sketch: Levels must be in [1,%d], got %d", MaxLevels, p.Levels)
	}
	return nil
}

// Position is a (bin, level) coordinate in a sketch: the single bit an
// identifier turns on.
type Position struct {
	Bin   int
	Level int
}

// HashID mixes an identifier into 64 well-distributed bits using the
// splitmix64 finalizer. The paper calls for an "L-bit cryptographic
// hash"; ρ only requires the geometric level distribution and
// determinism, which any hash with full avalanche provides (verified
// by distribution tests). FNV-1a is *not* sufficient here: its weak
// low-bit avalanche on small sequential inputs skews the trailing-zero
// distribution and biases estimates by 2-3×.
func HashID(id uint64) uint64 {
	x := id + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rho returns the canonical FM level for a hash value: the index of
// the lowest set bit, capped at levels-1 (the paper assigns L when the
// hash is all zeroes; we saturate at the top level).
func Rho(hash uint64, levels int) int {
	if hash == 0 {
		return levels - 1
	}
	r := bits.TrailingZeros64(hash)
	if r >= levels {
		return levels - 1
	}
	return r
}

// Place maps an identifier to its sketch position: the bin comes from
// the high hash bits (uniform), the level from the low bits
// (geometric), so the two coordinates are effectively independent.
func (p Params) Place(id uint64) Position {
	h := HashID(id)
	bin := int((h >> 40) % uint64(p.Bins))
	level := Rho(h&((1<<40)-1), p.Levels)
	return Position{Bin: bin, Level: level}
}

// Sketch is an FM counting sketch: Bins bit-vectors of Levels bits.
// The zero Sketch is not usable; construct with New.
type Sketch struct {
	params Params
	bins   []uint64
}

// New returns an empty sketch with the given parameters.
func New(p Params) *Sketch {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Sketch{params: p, bins: make([]uint64, p.Bins)}
}

// Params returns the sketch's configuration.
func (s *Sketch) Params() Params { return s.params }

// Clone returns a deep copy of the sketch.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{params: s.params, bins: make([]uint64, len(s.bins))}
	copy(c.bins, s.bins)
	return c
}

// CopyFrom overwrites s with other's bits, reusing s's storage. Both
// must share Params. This is the allocation-free counterpart of Clone
// for snapshot buffers that are reused across gossip rounds.
func (s *Sketch) CopyFrom(other *Sketch) {
	if other.params != s.params {
		panic(fmt.Sprintf("sketch: copying mismatched params %+v and %+v", s.params, other.params))
	}
	copy(s.bins, other.bins)
}

// Insert records identifier id.
func (s *Sketch) Insert(id uint64) {
	pos := s.params.Place(id)
	s.bins[pos.Bin] |= 1 << uint(pos.Level)
}

// InsertValue records value v attributed to owner by inserting v
// derived identifiers, the paper's multiple-insertions summation. The
// derived identifiers are (owner, j) pairs, disjoint across owners.
func (s *Sketch) InsertValue(owner uint64, v int) {
	for j := 0; j < v; j++ {
		s.Insert(owner<<20 | uint64(j))
	}
}

// SetBit turns on one explicit position (used by protocols that manage
// their own placement).
func (s *Sketch) SetBit(pos Position) {
	s.bins[pos.Bin] |= 1 << uint(pos.Level)
}

// Bit reports whether the given position is set.
func (s *Sketch) Bit(pos Position) bool {
	return s.bins[pos.Bin]&(1<<uint(pos.Level)) != 0
}

// Merge ORs other into s. Both must share Params.
func (s *Sketch) Merge(other *Sketch) {
	if other.params != s.params {
		panic(fmt.Sprintf("sketch: merging mismatched params %+v and %+v", s.params, other.params))
	}
	for i, b := range other.bins {
		s.bins[i] |= b
	}
}

// Equal reports whether two sketches have identical parameters and
// bits.
func (s *Sketch) Equal(other *Sketch) bool {
	if s.params != other.params {
		return false
	}
	for i := range s.bins {
		if s.bins[i] != other.bins[i] {
			return false
		}
	}
	return true
}

// R returns Flajolet-Martin's R for one bin: the number of contiguous
// ones starting at bit 0 (equivalently, the index of the first zero).
func (s *Sketch) R(bin int) int {
	v := s.bins[bin]
	r := bits.TrailingZeros64(^v)
	if r > s.params.Levels {
		r = s.params.Levels
	}
	return r
}

// AvgR returns the mean R over all bins.
func (s *Sketch) AvgR() float64 {
	var sum int
	for i := 0; i < s.params.Bins; i++ {
		sum += s.R(i)
	}
	return float64(sum) / float64(s.params.Bins)
}

// Estimate returns the estimated number of distinct identifiers
// inserted across all merged sketches: m·2^avg(R)/ϕ. An entirely empty
// sketch estimates 0.
func (s *Sketch) Estimate() float64 {
	empty := true
	for _, b := range s.bins {
		if b != 0 {
			empty = false
			break
		}
	}
	if empty {
		return 0
	}
	return float64(s.params.Bins) * math.Exp2(s.AvgR()) / Phi
}

// Bits returns a copy of the raw bin bit-vectors, low bit = level 0.
func (s *Sketch) Bits() []uint64 {
	out := make([]uint64, len(s.bins))
	copy(out, s.bins)
	return out
}

// LoadBits overwrites the sketch's bins; len(bits) must equal Bins.
func (s *Sketch) LoadBits(bits []uint64) {
	if len(bits) != len(s.bins) {
		panic(fmt.Sprintf("sketch: LoadBits got %d bins, want %d", len(bits), len(s.bins)))
	}
	copy(s.bins, bits)
}

// ExpectedRelativeError returns the analytic stochastic-averaging
// error bound ≈ 0.78/√m for the sketch's bin count (9.7% at m=64).
func (p Params) ExpectedRelativeError() float64 {
	return 0.78 / math.Sqrt(float64(p.Bins))
}
