// Package stats provides the summary statistics used throughout the
// evaluation: running moments, standard deviation against a known
// reference value (the paper's primary error metric), empirical CDFs,
// and quantiles.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates count, mean and variance in one pass using
// Welford's algorithm, which is numerically stable for the long
// accumulations the simulator performs.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the accumulator.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of samples added.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean, or 0 with no samples.
func (r *Running) Mean() float64 { return r.mean }

// Min returns the smallest sample, or 0 with no samples.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample, or 0 with no samples.
func (r *Running) Max() float64 { return r.max }

// Variance returns the population variance, or 0 with fewer than one
// sample.
func (r *Running) Variance() float64 {
	if r.n < 1 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Merge folds other into r, as if all of other's samples had been
// added to r (Chan et al. parallel variance combination).
func (r *Running) Merge(other Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = other
		return
	}
	if other.min < r.min {
		r.min = other.min
	}
	if other.max > r.max {
		r.max = other.max
	}
	na, nb := float64(r.n), float64(other.n)
	delta := other.mean - r.mean
	total := na + nb
	r.mean += delta * nb / total
	r.m2 += other.m2 + delta*delta*na*nb/total
	r.n += other.n
}

// DeviationFrom computes the paper's error metric over a slice of
// estimates: the root-mean-square deviation from a known correct value
// ("standard deviation from the correct value"). NaN estimates are
// skipped; it returns 0 for an empty slice.
func DeviationFrom(estimates []float64, truth float64) float64 {
	var sum float64
	var n int
	for _, e := range estimates {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			continue
		}
		d := e - truth
		sum += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs around its
// own mean.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
// It returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF is an empirical cumulative distribution function over discrete
// integer-valued observations, as plotted in the paper's Figure 6.
type CDF struct {
	counts map[int]int
	total  int
}

// NewCDF returns an empty CDF.
func NewCDF() *CDF {
	return &CDF{counts: make(map[int]int)}
}

// Observe records one observation of value v.
func (c *CDF) Observe(v int) {
	c.counts[v]++
	c.total++
}

// Total returns the number of observations.
func (c *CDF) Total() int { return c.total }

// At returns P[X <= v].
func (c *CDF) At(v int) float64 {
	if c.total == 0 {
		return 0
	}
	cum := 0
	for val, n := range c.counts {
		if val <= v {
			cum += n
		}
	}
	return float64(cum) / float64(c.total)
}

// Support returns the sorted distinct observed values.
func (c *CDF) Support() []int {
	vals := make([]int, 0, len(c.counts))
	for v := range c.counts {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	return vals
}

// Points returns (value, P[X<=value]) pairs over the support, suitable
// for plotting.
func (c *CDF) Points() []CDFPoint {
	vals := c.Support()
	pts := make([]CDFPoint, 0, len(vals))
	cum := 0
	for _, v := range vals {
		cum += c.counts[v]
		pts = append(pts, CDFPoint{Value: v, P: float64(cum) / float64(c.total)})
	}
	return pts
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	Value int
	P     float64
}

// String renders the point as "v:p" for compact table output.
func (p CDFPoint) String() string {
	return fmt.Sprintf("%d:%.3f", p.Value, p.P)
}

// Series is a labelled sequence of (x, y) measurements, one per round
// or per hour, matching one line of one figure in the paper.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Append adds one point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the y value at the largest x not exceeding the query, or
// 0 if the series is empty or starts after x. X must be appended in
// increasing order.
func (s *Series) YAt(x float64) float64 {
	idx := sort.SearchFloat64s(s.X, x)
	if idx < len(s.X) && s.X[idx] == x {
		return s.Y[idx]
	}
	if idx == 0 {
		return 0
	}
	return s.Y[idx-1]
}

// TailMean returns the mean of the last k points of the series (or all
// points if it has fewer), useful for reading converged plateaus.
func (s *Series) TailMean(k int) float64 {
	if s.Len() == 0 {
		return 0
	}
	if k > s.Len() {
		k = s.Len()
	}
	return Mean(s.Y[s.Len()-k:])
}

// MinY returns the smallest y value and its x position; ok is false
// for an empty series.
func (s *Series) MinY() (x, y float64, ok bool) {
	if s.Len() == 0 {
		return 0, 0, false
	}
	x, y = s.X[0], s.Y[0]
	for i := 1; i < s.Len(); i++ {
		if s.Y[i] < y {
			x, y = s.X[i], s.Y[i]
		}
	}
	return x, y, true
}

// FirstBelow returns the first x at which y drops to or below
// threshold; ok is false if it never does.
func (s *Series) FirstBelow(threshold float64) (float64, bool) {
	for i := range s.X {
		if s.Y[i] <= threshold {
			return s.X[i], true
		}
	}
	return 0, false
}
