package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d, want 8", r.N())
	}
	if !almostEqual(r.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	if !almostEqual(r.StdDev(), 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", r.StdDev())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.StdDev() != 0 || r.N() != 0 {
		t.Fatal("zero Running should report zeros")
	}
}

func TestRunningSingle(t *testing.T) {
	var r Running
	r.Add(3.5)
	if r.Mean() != 3.5 || r.Variance() != 0 {
		t.Fatalf("single-sample stats wrong: mean=%v var=%v", r.Mean(), r.Variance())
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// keep magnitudes sane so float comparison tolerances hold
			xs = append(xs, math.Mod(x, 1e6))
		}
		var whole Running
		for _, x := range xs {
			whole.Add(x)
		}
		var left, right Running
		half := len(xs) / 2
		for _, x := range xs[:half] {
			left.Add(x)
		}
		for _, x := range xs[half:] {
			right.Add(x)
		}
		left.Merge(right)
		if left.N() != whole.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		scale := 1 + math.Abs(whole.Mean())
		return almostEqual(left.Mean(), whole.Mean(), 1e-6*scale) &&
			almostEqual(left.Variance(), whole.Variance(), 1e-4*(1+whole.Variance())) &&
			left.Min() == whole.Min() && left.Max() == whole.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging empty changes nothing
	if a != before {
		t.Fatal("merging empty changed accumulator")
	}
	b.Merge(a) // merging into empty copies
	if b != a {
		t.Fatal("merging into empty did not copy")
	}
}

func TestDeviationFrom(t *testing.T) {
	got := DeviationFrom([]float64{49, 51}, 50)
	if !almostEqual(got, 1, 1e-12) {
		t.Fatalf("DeviationFrom = %v, want 1", got)
	}
	if DeviationFrom(nil, 50) != 0 {
		t.Fatal("empty slice should yield 0")
	}
	// NaN and Inf are skipped.
	got = DeviationFrom([]float64{50, math.NaN(), math.Inf(1)}, 50)
	if got != 0 {
		t.Fatalf("NaN/Inf not skipped: %v", got)
	}
}

func TestDeviationFromExact(t *testing.T) {
	f := func(truth float64, n uint8) bool {
		if math.IsNaN(truth) || math.IsInf(truth, 0) {
			return true
		}
		truth = math.Mod(truth, 1e6)
		xs := make([]float64, int(n%32)+1)
		for i := range xs {
			xs[i] = truth
		}
		return DeviationFrom(xs, truth) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !almostEqual(Mean(xs), 2.5, 1e-12) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	want := math.Sqrt(1.25)
	if !almostEqual(StdDev(xs), want, 1e-12) {
		t.Errorf("StdDev = %v, want %v", StdDev(xs), want)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty Mean/StdDev should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty Quantile should be 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(raw []float64, qa, qb float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa = math.Abs(math.Mod(qa, 1))
		qb = math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF()
	for _, v := range []int{1, 1, 2, 3, 3, 3} {
		c.Observe(v)
	}
	if c.Total() != 6 {
		t.Fatalf("Total = %d", c.Total())
	}
	if !almostEqual(c.At(0), 0, 1e-12) {
		t.Errorf("At(0) = %v", c.At(0))
	}
	if !almostEqual(c.At(1), 2.0/6, 1e-12) {
		t.Errorf("At(1) = %v", c.At(1))
	}
	if !almostEqual(c.At(2), 3.0/6, 1e-12) {
		t.Errorf("At(2) = %v", c.At(2))
	}
	if !almostEqual(c.At(3), 1, 1e-12) {
		t.Errorf("At(3) = %v", c.At(3))
	}
	if !almostEqual(c.At(100), 1, 1e-12) {
		t.Errorf("At(100) = %v", c.At(100))
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF()
	if c.At(5) != 0 || c.Total() != 0 || len(c.Points()) != 0 {
		t.Fatal("empty CDF misbehaves")
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	f := func(raw []int8) bool {
		c := NewCDF()
		for _, v := range raw {
			c.Observe(int(v))
		}
		pts := c.Points()
		prevV := math.MinInt32
		prevP := 0.0
		for _, p := range pts {
			if p.Value <= prevV || p.P < prevP {
				return false
			}
			prevV, prevP = p.Value, p.P
		}
		if len(pts) > 0 && !almostEqual(pts[len(pts)-1].P, 1, 1e-12) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFSupportSorted(t *testing.T) {
	c := NewCDF()
	for _, v := range []int{5, -1, 3, 5, 0} {
		c.Observe(v)
	}
	sup := c.Support()
	want := []int{-1, 0, 3, 5}
	if len(sup) != len(want) {
		t.Fatalf("Support = %v", sup)
	}
	for i := range want {
		if sup[i] != want[i] {
			t.Fatalf("Support = %v, want %v", sup, want)
		}
	}
}

func TestCDFPointString(t *testing.T) {
	p := CDFPoint{Value: 3, P: 0.5}
	if p.String() != "3:0.500" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Label = "test"
	for i := 0; i < 5; i++ {
		s.Append(float64(i), float64(10-i))
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.YAt(2) != 8 {
		t.Errorf("YAt(2) = %v", s.YAt(2))
	}
	if s.YAt(2.5) != 8 {
		t.Errorf("YAt(2.5) = %v (should hold last value)", s.YAt(2.5))
	}
	if s.YAt(-1) != 0 {
		t.Errorf("YAt before start = %v", s.YAt(-1))
	}
	if got := s.TailMean(2); !almostEqual(got, 6.5, 1e-12) {
		t.Errorf("TailMean(2) = %v", got)
	}
	if got := s.TailMean(100); !almostEqual(got, 8, 1e-12) {
		t.Errorf("TailMean(100) = %v", got)
	}
	x, y, ok := s.MinY()
	if !ok || x != 4 || y != 6 {
		t.Errorf("MinY = (%v, %v, %v)", x, y, ok)
	}
	fx, found := s.FirstBelow(8)
	if !found || fx != 2 {
		t.Errorf("FirstBelow(8) = (%v, %v)", fx, found)
	}
	if _, found := s.FirstBelow(1); found {
		t.Error("FirstBelow(1) should not be found")
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.TailMean(3) != 0 {
		t.Error("empty TailMean should be 0")
	}
	if _, _, ok := s.MinY(); ok {
		t.Error("empty MinY should be !ok")
	}
	if _, ok := s.FirstBelow(1); ok {
		t.Error("empty FirstBelow should be !ok")
	}
}
