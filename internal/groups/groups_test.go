package groups

import (
	"testing"
	"testing/quick"
)

func TestAssignBasic(t *testing.T) {
	// 0-1-2 chained, 3-4 paired, 5 alone.
	a := Assign(6, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	if a.N() != 6 {
		t.Fatalf("N = %d", a.N())
	}
	if a.Groups() != 3 {
		t.Fatalf("Groups = %d, want 3", a.Groups())
	}
	if !a.SameGroup(0, 2) || !a.SameGroup(3, 4) {
		t.Error("connected devices not grouped")
	}
	if a.SameGroup(0, 3) || a.SameGroup(4, 5) {
		t.Error("disconnected devices grouped")
	}
	// Group ids are ordered by smallest member: {0,1,2}=0, {3,4}=1, {5}=2.
	if a.GroupOf(0) != 0 || a.GroupOf(3) != 1 || a.GroupOf(5) != 2 {
		t.Errorf("group ids: %d %d %d", a.GroupOf(0), a.GroupOf(3), a.GroupOf(5))
	}
	if a.SizeOf(0) != 3 || a.SizeOf(1) != 2 || a.SizeOf(2) != 1 {
		t.Errorf("sizes: %v", a.Sizes())
	}
	if m := a.Members(1); len(m) != 2 || m[0] != 3 || m[1] != 4 {
		t.Errorf("Members(1) = %v", m)
	}
}

func TestAssignNoEdges(t *testing.T) {
	a := Assign(4, nil)
	if a.Groups() != 4 {
		t.Errorf("Groups = %d, want 4 singletons", a.Groups())
	}
	if a.MeanGroupSizePerHost() != 1 || a.MeanComponentSize() != 1 {
		t.Error("singleton means wrong")
	}
}

func TestAssignEmpty(t *testing.T) {
	a := Assign(0, nil)
	if a.N() != 0 || a.Groups() != 0 {
		t.Error("empty assignment malformed")
	}
	if a.MeanGroupSizePerHost() != 0 || a.MeanComponentSize() != 0 {
		t.Error("empty means should be 0")
	}
}

// Property: Assign matches a reference reachability computation (BFS)
// on random graphs.
func TestAssignMatchesBFS(t *testing.T) {
	prop := func(rawEdges []uint16) bool {
		const n = 24
		var edges [][2]int
		adj := make([][]int, n)
		for _, raw := range rawEdges {
			a := int(raw % n)
			b := int((raw / n) % n)
			if a == b {
				continue
			}
			edges = append(edges, [2]int{a, b})
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
		asg := Assign(n, edges)
		// BFS reachability from each device.
		comp := make([]int, n)
		for i := range comp {
			comp[i] = -1
		}
		next := 0
		for s := 0; s < n; s++ {
			if comp[s] != -1 {
				continue
			}
			queue := []int{s}
			comp[s] = next
			for len(queue) > 0 {
				x := queue[0]
				queue = queue[1:]
				for _, y := range adj[x] {
					if comp[y] == -1 {
						comp[y] = next
						queue = append(queue, y)
					}
				}
			}
			next++
		}
		if asg.Groups() != next {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if (comp[i] == comp[j]) != asg.SameGroup(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: sizes always sum to n and every group is non-empty.
func TestSizesPartition(t *testing.T) {
	prop := func(rawEdges []uint16, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		var edges [][2]int
		for _, raw := range rawEdges {
			a := int(raw) % n
			b := int(raw/7) % n
			if a != b {
				edges = append(edges, [2]int{a, b})
			}
		}
		asg := Assign(n, edges)
		total := 0
		for g, s := range asg.Sizes() {
			if s <= 0 {
				return false
			}
			if len(asg.Members(g)) != s {
				return false
			}
			total += s
		}
		return total == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGroupAggregate(t *testing.T) {
	a := Assign(5, [][2]int{{0, 1}, {2, 3}})
	values := []float64{10, 20, 1, 3, 7}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	got := a.GroupAggregate(values, mean)
	want := []float64{15, 15, 2, 2, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("GroupAggregate[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMeanGroupSizePerHostWeighting(t *testing.T) {
	// Groups {0,1,2} and {3}: host-weighted mean = (3+3+3+1)/4 = 2.5,
	// component mean = (3+1)/2 = 2.
	a := Assign(4, [][2]int{{0, 1}, {1, 2}})
	if got := a.MeanGroupSizePerHost(); got != 2.5 {
		t.Errorf("MeanGroupSizePerHost = %v, want 2.5", got)
	}
	if got := a.MeanComponentSize(); got != 2 {
		t.Errorf("MeanComponentSize = %v, want 2", got)
	}
}

func TestCanonicalEdges(t *testing.T) {
	in := [][2]int{{3, 1}, {1, 3}, {2, 2}, {0, 4}, {1, 3}}
	got := CanonicalEdges(in)
	want := [][2]int{{0, 4}, {1, 3}}
	if len(got) != len(want) {
		t.Fatalf("CanonicalEdges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("CanonicalEdges = %v, want %v", got, want)
		}
	}
}
