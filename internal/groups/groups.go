// Package groups computes the paper's notion of "nearby" hosts for
// trace-driven runs: two hosts belong to the same group when a path
// exists between them over the union of all links that have been up at
// any point during the last 10 minutes (§V). Ground truth for the
// trace experiments is computed per group, and each host's error is
// measured against its own group's aggregate.
package groups

import "sort"

// DefaultWindow is the paper's 10-minute edge-union horizon, in
// seconds.
const DefaultWindowSeconds = 600

// Assignment maps each device to its group index. Group indices are
// dense, starting at 0, ordered by each group's smallest member.
type Assignment struct {
	group []int
	sizes []int
}

// Assign partitions n devices into connected components over the given
// undirected edges.
func Assign(n int, edges [][2]int) Assignment {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for _, e := range edges {
		union(e[0], e[1])
	}
	// Densify group ids in order of smallest member.
	group := make([]int, n)
	next := 0
	id := make(map[int]int, n)
	for i := 0; i < n; i++ {
		root := find(i)
		g, ok := id[root]
		if !ok {
			g = next
			id[root] = g
			next++
		}
		group[i] = g
	}
	sizes := make([]int, next)
	for _, g := range group {
		sizes[g]++
	}
	return Assignment{group: group, sizes: sizes}
}

// N returns the number of devices.
func (a Assignment) N() int { return len(a.group) }

// Groups returns the number of groups.
func (a Assignment) Groups() int { return len(a.sizes) }

// GroupOf returns the group index of device i.
func (a Assignment) GroupOf(i int) int { return a.group[i] }

// SizeOf returns the number of devices in group g.
func (a Assignment) SizeOf(g int) int { return a.sizes[g] }

// Members returns the devices in group g in ascending order.
func (a Assignment) Members(g int) []int {
	out := make([]int, 0, a.sizes[g])
	for i, gi := range a.group {
		if gi == g {
			out = append(out, i)
		}
	}
	return out
}

// Sizes returns a copy of the per-group sizes.
func (a Assignment) Sizes() []int {
	out := make([]int, len(a.sizes))
	copy(out, a.sizes)
	return out
}

// SameGroup reports whether devices i and j are grouped together.
func (a Assignment) SameGroup(i, j int) bool { return a.group[i] == a.group[j] }

// MeanGroupSizePerHost returns the average, over hosts, of the size of
// the host's own group — the "average peer count" series plotted
// alongside Figure 11. (Larger groups weigh more because more hosts
// experience them.)
func (a Assignment) MeanGroupSizePerHost() float64 {
	if len(a.group) == 0 {
		return 0
	}
	var sum int
	for _, g := range a.group {
		sum += a.sizes[g]
	}
	return float64(sum) / float64(len(a.group))
}

// MeanComponentSize returns the unweighted average component size.
func (a Assignment) MeanComponentSize() float64 {
	if len(a.sizes) == 0 {
		return 0
	}
	var sum int
	for _, s := range a.sizes {
		sum += s
	}
	return float64(sum) / float64(len(a.sizes))
}

// GroupAggregate computes, for every group, an aggregate of the given
// per-device values using the supplied fold (e.g. mean or sum), and
// returns the per-device view of it: result[i] is the aggregate over
// device i's group.
func (a Assignment) GroupAggregate(values []float64, fold func(members []float64) float64) []float64 {
	perGroup := make([]float64, a.Groups())
	buf := make([][]float64, a.Groups())
	for i, v := range values {
		g := a.group[i]
		buf[g] = append(buf[g], v)
	}
	for g := range perGroup {
		perGroup[g] = fold(buf[g])
	}
	out := make([]float64, len(values))
	for i := range values {
		out[i] = perGroup[a.group[i]]
	}
	return out
}

// CanonicalEdges sorts and deduplicates an edge list into canonical
// (a<b) ascending order, for deterministic comparisons in tests.
func CanonicalEdges(edges [][2]int) [][2]int {
	out := make([][2]int, 0, len(edges))
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if a != b && !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
