// Package metrics provides the evaluation plumbing: ground-truth
// tracking over the live population and engine hooks that record the
// paper's error metric — the standard deviation of host estimates from
// the correct value — into series, per round or per simulated hour.
package metrics

import (
	"math"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/groups"
	"dynagg/internal/stats"
)

// Truth computes the correct aggregate values over the currently live
// population.
type Truth struct {
	values []float64
	pop    *env.Population
}

// NewTruth tracks ground truth for the given per-host data values over
// a population.
func NewTruth(values []float64, pop *env.Population) *Truth {
	return &Truth{values: values, pop: pop}
}

// Average returns the true mean over live hosts (0 if none).
func (t *Truth) Average() float64 {
	n := t.pop.AliveCount()
	if n == 0 {
		return 0
	}
	return t.Sum() / float64(n)
}

// Sum returns the true sum over live hosts.
func (t *Truth) Sum() float64 {
	var sum float64
	for _, id := range t.pop.AliveIDs() {
		sum += t.values[id]
	}
	return sum
}

// Count returns the live host count.
func (t *Truth) Count() float64 { return float64(t.pop.AliveCount()) }

// DeviationHook returns an AfterRound hook appending, each round, the
// RMS deviation of all live estimates from truth() to the series.
func DeviationHook(s *stats.Series, truth func() float64) gossip.Hook {
	return func(round int, e *gossip.Engine) {
		s.Append(float64(round), stats.DeviationFrom(e.Estimates(), truth()))
	}
}

// EstimateMeanHook returns an AfterRound hook recording the mean live
// estimate each round (used to inspect convergence targets).
func EstimateMeanHook(s *stats.Series) gossip.Hook {
	return func(round int, e *gossip.Engine) {
		s.Append(float64(round), stats.Mean(e.Estimates()))
	}
}

// MessageRateHook returns an AfterRound hook recording cumulative
// message counts, for bandwidth comparisons.
func MessageRateHook(s *stats.Series) gossip.Hook {
	return func(round int, e *gossip.Engine) {
		s.Append(float64(round), float64(e.Messages()))
	}
}

// GroupKind selects which per-group aggregate the trace experiments
// measure against.
type GroupKind int

const (
	// GroupAverage compares each host's estimate against its group's
	// mean value (Figure 11 left column).
	GroupAverage GroupKind = iota
	// GroupSize compares against the group's live size (Figure 11
	// right column: "dynamic sum" with one identifier per host is a
	// size estimate).
	GroupSize
	// GroupSum compares against the group's value sum.
	GroupSum
)

// GroupDeviationHook returns an AfterRound hook for trace
// environments: every sampleEvery rounds it recomputes the 10-minute
// groups, derives each live host's correct group aggregate, and
// appends the RMS deviation of host estimates from their own group's
// truth. The x coordinate is simulated hours. If sizeSeries is non-nil
// the per-host mean group size is recorded alongside.
func GroupDeviationHook(s, sizeSeries *stats.Series, tenv *env.TraceEnv, values []float64, kind GroupKind, sampleEvery int) gossip.Hook {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return func(round int, e *gossip.Engine) {
		if round%sampleEvery != 0 {
			return
		}
		asg := tenv.Groups()
		hours := tenv.Now().Hours()

		var sumSq float64
		var n int
		for id := 0; id < tenv.Size(); id++ {
			nid := gossip.NodeID(id)
			if !tenv.Alive(nid, round) {
				continue
			}
			est, ok := e.Agent(nid).Estimate()
			if !ok || math.IsNaN(est) || math.IsInf(est, 0) {
				continue
			}
			truth := groupTruth(asg, id, values, kind)
			d := est - truth
			sumSq += d * d
			n++
		}
		if n > 0 {
			s.Append(hours, math.Sqrt(sumSq/float64(n)))
		} else {
			s.Append(hours, 0)
		}
		if sizeSeries != nil {
			sizeSeries.Append(hours, asg.MeanGroupSizePerHost())
		}
	}
}

// groupTruth computes host id's correct group aggregate.
func groupTruth(asg groups.Assignment, id int, values []float64, kind GroupKind) float64 {
	g := asg.GroupOf(id)
	switch kind {
	case GroupSize:
		return float64(asg.SizeOf(g))
	case GroupSum:
		var sum float64
		for _, m := range asg.Members(g) {
			sum += values[m]
		}
		return sum
	default: // GroupAverage
		var sum float64
		members := asg.Members(g)
		for _, m := range members {
			sum += values[m]
		}
		return sum / float64(len(members))
	}
}
