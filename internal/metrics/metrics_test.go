package metrics

import (
	"math"
	"testing"
	"time"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/stats"
	"dynagg/internal/trace"
)

func TestTruthTracksLivePopulation(t *testing.T) {
	values := []float64{10, 20, 30, 40}
	pop := env.NewPopulation(4)
	truth := NewTruth(values, pop)

	if truth.Sum() != 100 || truth.Average() != 25 || truth.Count() != 4 {
		t.Errorf("initial truth: sum %v avg %v count %v", truth.Sum(), truth.Average(), truth.Count())
	}
	pop.Fail(3)
	if truth.Sum() != 60 || truth.Average() != 20 || truth.Count() != 3 {
		t.Errorf("post-failure truth: sum %v avg %v count %v", truth.Sum(), truth.Average(), truth.Count())
	}
	pop.Fail(0)
	pop.Fail(1)
	pop.Fail(2)
	if truth.Sum() != 0 || truth.Average() != 0 || truth.Count() != 0 {
		t.Errorf("empty truth: sum %v avg %v count %v", truth.Sum(), truth.Average(), truth.Count())
	}
}

func newAvgEngine(t *testing.T, values []float64, hooks []gossip.Hook) (*gossip.Engine, *env.Uniform) {
	t.Helper()
	u := env.NewUniform(len(values))
	agents := make([]gossip.Agent, len(values))
	for i, v := range values {
		agents[i] = pushsum.NewAverage(gossip.NodeID(i), v)
	}
	e, err := gossip.NewEngine(gossip.Config{
		Env: u, Agents: agents, Model: gossip.Push, Seed: 1, AfterRound: hooks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, u
}

func TestDeviationHookRecordsEveryRound(t *testing.T) {
	values := []float64{0, 100}
	var s stats.Series
	truthFn := func() float64 { return 50 }
	e, _ := newAvgEngine(t, values, []gossip.Hook{DeviationHook(&s, truthFn)})
	e.Run(5)
	if s.Len() != 5 {
		t.Fatalf("series length %d, want 5", s.Len())
	}
	for i, x := range s.X {
		if x != float64(i) {
			t.Errorf("x[%d] = %v, want %d", i, x, i)
		}
	}
	// Deviation must shrink as the pair converges (push-gossip between
	// two hosts mixes mass every round).
	if s.Y[4] > s.Y[0] {
		t.Errorf("deviation grew: %v -> %v", s.Y[0], s.Y[4])
	}
}

func TestEstimateMeanHook(t *testing.T) {
	values := []float64{10, 20, 30}
	var s stats.Series
	e, _ := newAvgEngine(t, values, []gossip.Hook{EstimateMeanHook(&s)})
	e.Run(3)
	if s.Len() != 3 {
		t.Fatalf("series length %d", s.Len())
	}
	// Conservation of mass: the mean estimate stays near the true mean.
	for i, y := range s.Y {
		if math.Abs(y-20) > 15 {
			t.Errorf("round %d mean estimate %v implausible", i, y)
		}
	}
}

func TestMessageRateHookMonotone(t *testing.T) {
	values := []float64{1, 2, 3, 4}
	var s stats.Series
	e, _ := newAvgEngine(t, values, []gossip.Hook{MessageRateHook(&s)})
	e.Run(4)
	for i := 1; i < s.Len(); i++ {
		if s.Y[i] < s.Y[i-1] {
			t.Errorf("cumulative messages decreased at round %d", i)
		}
	}
	if s.Y[s.Len()-1] == 0 {
		t.Error("no messages recorded")
	}
}

// Build a trace with two permanent cliques so group truth is exact.
func twoCliqueTrace() *trace.Trace {
	d := 2 * time.Hour
	return &trace.Trace{
		Name: "cliques", N: 4, Duration: d,
		Events: []trace.Event{
			{At: 0, A: 0, B: 1, Up: true},
			{At: 0, A: 2, B: 3, Up: true},
		},
	}
}

func TestGroupDeviationHook(t *testing.T) {
	tr := twoCliqueTrace()
	tenv := env.NewTraceEnv(tr, 30*time.Second, 10*time.Minute)
	values := []float64{0, 10, 100, 200}

	agents := make([]gossip.Agent, 4)
	for i, v := range values {
		agents[i] = pushsum.NewAverage(gossip.NodeID(i), v)
	}
	var s, sizes stats.Series
	e, err := gossip.NewEngine(gossip.Config{
		Env: tenv, Agents: agents, Model: gossip.PushPull, Seed: 2,
		AfterRound: []gossip.Hook{
			GroupDeviationHook(&s, &sizes, tenv, values, GroupAverage, 1),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(30)
	if s.Len() != 30 || sizes.Len() != 30 {
		t.Fatalf("series lengths %d, %d; want 30", s.Len(), sizes.Len())
	}
	// Two 2-cliques: per-host mean group size is 2.
	if sizes.Y[10] != 2 {
		t.Errorf("mean group size %v, want 2", sizes.Y[10])
	}
	// Push/pull within a pair converges in one exchange; deviation from
	// group averages (5 and 150) should go to ~0.
	if s.Y[s.Len()-1] > 1 {
		t.Errorf("final group deviation %v, want ≈ 0", s.Y[s.Len()-1])
	}
	// x coordinates are simulated hours.
	if s.X[s.Len()-1] > 2.01 {
		t.Errorf("x coordinate %v beyond trace hours", s.X[s.Len()-1])
	}
}

func TestGroupDeviationHookSampling(t *testing.T) {
	tr := twoCliqueTrace()
	tenv := env.NewTraceEnv(tr, 30*time.Second, 10*time.Minute)
	values := []float64{0, 10, 100, 200}
	agents := make([]gossip.Agent, 4)
	for i, v := range values {
		agents[i] = pushsum.NewAverage(gossip.NodeID(i), v)
	}
	var s stats.Series
	e, err := gossip.NewEngine(gossip.Config{
		Env: tenv, Agents: agents, Model: gossip.PushPull, Seed: 2,
		AfterRound: []gossip.Hook{
			GroupDeviationHook(&s, nil, tenv, values, GroupSum, 10),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(30)
	if s.Len() != 3 {
		t.Errorf("sampled series length %d, want 3 (every 10th round)", s.Len())
	}
}

func TestGroupTruthKinds(t *testing.T) {
	tr := twoCliqueTrace()
	tenv := env.NewTraceEnv(tr, 30*time.Second, 10*time.Minute)
	tenv.Advance(0)
	asg := tenv.Groups()
	values := []float64{0, 10, 100, 200}

	if got := groupTruth(asg, 0, values, GroupAverage); got != 5 {
		t.Errorf("GroupAverage truth for host 0 = %v, want 5", got)
	}
	if got := groupTruth(asg, 2, values, GroupSum); got != 300 {
		t.Errorf("GroupSum truth for host 2 = %v, want 300", got)
	}
	if got := groupTruth(asg, 1, values, GroupSize); got != 2 {
		t.Errorf("GroupSize truth for host 1 = %v, want 2", got)
	}
}
