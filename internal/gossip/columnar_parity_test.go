package gossip_test

import (
	"fmt"
	"math"
	"testing"

	"dynagg/internal/env"
	"dynagg/internal/failure"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
)

// colCase pairs a protocol's classic (one agent per host) and
// columnar (one struct for the population) constructions.
type colCase struct {
	agents   func(n int) []gossip.Agent
	columnar func(n int) gossip.ColumnarAgent
}

func columnarCases(t *testing.T) map[string]colCase {
	t.Helper()
	values := func(n int) []float64 {
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = float64((i * 31) % 101)
		}
		return vs
	}
	srCfg := sketchreset.Config{
		Params:      sketch.Params{Bins: 8, Levels: 12},
		Identifiers: 1,
	}
	revertCfg := func(variant string) pushsumrevert.Config {
		switch variant {
		case "fulltransfer":
			return pushsumrevert.Config{Lambda: 0.02, FullTransfer: true, Parcels: 4, Window: 3}
		case "adaptive":
			return pushsumrevert.Config{Lambda: 0.02, Adaptive: true}
		default:
			return pushsumrevert.Config{Lambda: 0.02}
		}
	}
	cases := map[string]colCase{
		"pushsum": {
			agents: func(n int) []gossip.Agent {
				agents := make([]gossip.Agent, n)
				for i, v := range values(n) {
					agents[i] = pushsum.NewAverage(gossip.NodeID(i), v)
				}
				return agents
			},
			columnar: func(n int) gossip.ColumnarAgent {
				return pushsum.NewColumnarAverage(values(n))
			},
		},
		"sketchreset": {
			agents: func(n int) []gossip.Agent {
				agents := make([]gossip.Agent, n)
				for i := range agents {
					agents[i] = sketchreset.New(gossip.NodeID(i), srCfg)
				}
				return agents
			},
			columnar: func(n int) gossip.ColumnarAgent {
				return sketchreset.NewColumnar(n, srCfg)
			},
		},
	}
	for _, variant := range []string{"basic", "adaptive", "fulltransfer"} {
		cfg := revertCfg(variant)
		cases["pushsumrevert-"+variant] = colCase{
			agents: func(n int) []gossip.Agent {
				agents := make([]gossip.Agent, n)
				for i, v := range values(n) {
					agents[i] = pushsumrevert.New(gossip.NodeID(i), v, cfg)
				}
				return agents
			},
			columnar: func(n int) gossip.ColumnarAgent {
				return pushsumrevert.NewColumnar(values(n), cfg)
			},
		}
	}
	return cases
}

// columnarFingerprint runs one engine to completion and captures the
// exact bit pattern of every host's estimate (dead hosts included,
// via EstimateOf) plus the traffic counters.
func columnarFingerprint(t *testing.T, cfg gossip.Config, n, rounds int) fingerprint {
	t.Helper()
	engine, err := gossip.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(rounds)
	fp := fingerprint{messages: engine.Messages(), contacts: engine.Contacts()}
	for id := 0; id < n; id++ {
		v, ok := engine.EstimateOf(gossip.NodeID(id))
		if !ok {
			v = math.Inf(-1)
		}
		fp.estimates = append(fp.estimates, math.Float64bits(v))
	}
	return fp
}

// TestColumnarMatchesClassic pins the tentpole determinism contract:
// for each converted protocol, the columnar engine — sequential and
// sharded at several worker counts — produces byte-identical
// estimates, message counts, and contact counts to the classic
// sequential engine over the same seed and failure schedule. A
// mid-run failure wave plus continuous churn exercises dead-host
// gating, lost messages, and revival on both paths. The population is
// deliberately not a multiple of the worker counts.
func TestColumnarMatchesClassic(t *testing.T) {
	const (
		n      = 331
		rounds = 14
		seed   = 9
	)
	build := func(mk func() (agents []gossip.Agent, col gossip.ColumnarAgent), workers int, columnar bool) gossip.Config {
		environment := env.NewUniform(n)
		agents, col := mk()
		cfg := gossip.Config{
			Env:     environment,
			Model:   gossip.Push,
			Seed:    seed,
			Workers: workers,
			BeforeRound: []gossip.Hook{
				failure.RandomAt(rounds/2, 0.3, environment.Population, 17),
				failure.Churn(rounds/2+2, 0.05, environment.Population, 23),
			},
		}
		if columnar {
			cfg.Columnar = col
		} else {
			cfg.Agents = agents
		}
		return cfg
	}
	for name, c := range columnarCases(t) {
		t.Run(name, func(t *testing.T) {
			mkClassic := func() ([]gossip.Agent, gossip.ColumnarAgent) { return c.agents(n), nil }
			mkColumnar := func() ([]gossip.Agent, gossip.ColumnarAgent) { return nil, c.columnar(n) }
			want := columnarFingerprint(t, build(mkClassic, 0, false), n, rounds)
			// The classic parallel executor is pinned elsewhere, but
			// one sample here keeps all three executors in one table.
			fps := map[string]fingerprint{
				"classic/workers=4": columnarFingerprint(t, build(mkClassic, 4, false), n, rounds),
			}
			for _, workers := range []int{0, 1, 4} {
				key := fmt.Sprintf("columnar/workers=%d", workers)
				fps[key] = columnarFingerprint(t, build(mkColumnar, workers, true), n, rounds)
			}
			for key, got := range fps {
				if got.messages != want.messages {
					t.Errorf("%s: Messages = %d, classic sequential %d", key, got.messages, want.messages)
				}
				if got.contacts != want.contacts {
					t.Errorf("%s: Contacts = %d, classic sequential %d", key, got.contacts, want.contacts)
				}
				for i := range want.estimates {
					if got.estimates[i] != want.estimates[i] {
						t.Errorf("%s: host %d estimate bits %#x, classic sequential %#x",
							key, i, got.estimates[i], want.estimates[i])
						break
					}
				}
			}
		})
	}
}

// TestColumnarConfigValidation pins the columnar half of the Config
// contract: push-only, agent-exclusive, population-sized.
func TestColumnarConfigValidation(t *testing.T) {
	values := []float64{1, 2, 3, 4}
	col := pushsum.NewColumnarAverage(values)
	if _, err := gossip.NewEngine(gossip.Config{
		Env: env.NewUniform(4), Columnar: col, Model: gossip.PushPull,
	}); err == nil {
		t.Error("push-pull columnar engine accepted")
	}
	if _, err := gossip.NewEngine(gossip.Config{
		Env:      env.NewUniform(4),
		Columnar: col,
		Agents:   []gossip.Agent{pushsum.NewAverage(0, 1)},
	}); err == nil {
		t.Error("Columnar+Agents engine accepted")
	}
	if _, err := gossip.NewEngine(gossip.Config{
		Env: env.NewUniform(5), Columnar: col,
	}); err == nil {
		t.Error("population/environment size mismatch accepted")
	}
	if _, err := gossip.NewEngine(gossip.Config{
		Env: env.NewUniform(4), Columnar: col,
	}); err != nil {
		t.Errorf("valid columnar config rejected: %v", err)
	}
}
