package gossip_test

import (
	"fmt"
	"math"
	"testing"

	"dynagg/internal/env"
	"dynagg/internal/failure"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/epoch"
	"dynagg/internal/protocol/extremes"
	"dynagg/internal/protocol/invertavg"
	"dynagg/internal/protocol/moments"
	"dynagg/internal/protocol/multi"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchcount"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
)

// colCase pairs a protocol's classic (one agent per host) and
// columnar (one struct for the population) constructions, with the
// gossip models the protocol supports.
type colCase struct {
	models   []gossip.Model
	agents   func(n int) []gossip.Agent
	columnar func(n int) gossip.ColumnarAgent
}

func parityValues(n int) []float64 {
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = float64((i * 31) % 101)
	}
	return vs
}

// columnarCases enumerates the full protocol × model matrix: every
// protocol with a columnar form, in every configuration variant, under
// every gossip model its classic form supports. Keys name the
// subtests.
func columnarCases(t *testing.T) map[string]colCase {
	t.Helper()
	values := parityValues
	both := []gossip.Model{gossip.Push, gossip.PushPull}
	pushOnly := []gossip.Model{gossip.Push}
	srCfg := sketchreset.Config{
		Params:      sketch.Params{Bins: 8, Levels: 12},
		Identifiers: 1,
	}
	scParams := sketch.Params{Bins: 8, Levels: 12}
	exCfg := extremes.Config{Mode: extremes.Max, Cutoff: 10, TableSize: 4}
	revertCfg := func(variant string) pushsumrevert.Config {
		switch variant {
		case "fulltransfer":
			return pushsumrevert.Config{Lambda: 0.02, FullTransfer: true, Parcels: 4, Window: 3}
		case "adaptive":
			return pushsumrevert.Config{Lambda: 0.02, Adaptive: true}
		case "pushpull":
			return pushsumrevert.Config{Lambda: 0.02, PushPull: true}
		default:
			return pushsumrevert.Config{Lambda: 0.02}
		}
	}
	multiValues := func(n int) map[string][]float64 {
		vs := values(n)
		qs := make([]float64, n)
		for i := range qs {
			qs[i] = float64((i*7)%13) + 1
		}
		return map[string][]float64{"load": vs, "queue": qs}
	}
	cases := map[string]colCase{
		"pushsum": {
			models: both,
			agents: func(n int) []gossip.Agent {
				agents := make([]gossip.Agent, n)
				for i, v := range values(n) {
					agents[i] = pushsum.NewAverage(gossip.NodeID(i), v)
				}
				return agents
			},
			columnar: func(n int) gossip.ColumnarAgent {
				return pushsum.NewColumnarAverage(values(n))
			},
		},
		"sketchreset": {
			models: both,
			agents: func(n int) []gossip.Agent {
				agents := make([]gossip.Agent, n)
				for i := range agents {
					agents[i] = sketchreset.New(gossip.NodeID(i), srCfg)
				}
				return agents
			},
			columnar: func(n int) gossip.ColumnarAgent {
				return sketchreset.NewColumnar(n, srCfg)
			},
		},
		"sketchcount": {
			models: both,
			agents: func(n int) []gossip.Agent {
				agents := make([]gossip.Agent, n)
				for i := range agents {
					agents[i] = sketchcount.NewCount(gossip.NodeID(i), scParams)
				}
				return agents
			},
			columnar: func(n int) gossip.ColumnarAgent {
				return sketchcount.NewColumnarCount(n, scParams)
			},
		},
		"extremes": {
			models: both,
			agents: func(n int) []gossip.Agent {
				agents := make([]gossip.Agent, n)
				for i, v := range values(n) {
					agents[i] = extremes.New(gossip.NodeID(i), v, exCfg)
				}
				return agents
			},
			columnar: func(n int) gossip.ColumnarAgent {
				return extremes.NewColumnar(values(n), exCfg)
			},
		},
		"epoch": {
			models: pushOnly, // the classic Node implements no exchange
			agents: func(n int) []gossip.Agent {
				agents := make([]gossip.Agent, n)
				for i, v := range values(n) {
					agents[i] = epoch.New(gossip.NodeID(i), v, epoch.Config{Length: 6})
				}
				return agents
			},
			columnar: func(n int) gossip.ColumnarAgent {
				return epoch.NewColumnar(values(n), epoch.Config{Length: 6})
			},
		},
	}
	for _, variant := range []string{"basic", "adaptive", "fulltransfer", "pushpull"} {
		cfg := revertCfg(variant)
		models := pushOnly
		if variant == "pushpull" {
			models = []gossip.Model{gossip.PushPull}
		}
		cases["pushsumrevert-"+variant] = colCase{
			models: models,
			agents: func(n int) []gossip.Agent {
				agents := make([]gossip.Agent, n)
				for i, v := range values(n) {
					agents[i] = pushsumrevert.New(gossip.NodeID(i), v, cfg)
				}
				return agents
			},
			columnar: func(n int) gossip.ColumnarAgent {
				return pushsumrevert.NewColumnar(values(n), cfg)
			},
		}
	}
	for _, variant := range []string{"push", "pushpull"} {
		cfg := moments.Config{Lambda: 0.02, PushPull: variant == "pushpull"}
		models := pushOnly
		if cfg.PushPull {
			models = []gossip.Model{gossip.PushPull}
		}
		cases["moments-"+variant] = colCase{
			models: models,
			agents: func(n int) []gossip.Agent {
				agents := make([]gossip.Agent, n)
				for i, v := range values(n) {
					agents[i] = moments.New(gossip.NodeID(i), v, cfg)
				}
				return agents
			},
			columnar: func(n int) gossip.ColumnarAgent {
				return moments.NewColumnar(values(n), cfg)
			},
		}
	}
	for _, variant := range []string{"push", "pushpull"} {
		avgCfg := pushsumrevert.Config{Lambda: 0.02, PushPull: variant == "pushpull"}
		model := gossip.Push
		if avgCfg.PushPull {
			model = gossip.PushPull
		}
		cases["invertavg-"+variant] = colCase{
			models: []gossip.Model{model},
			agents: func(n int) []gossip.Agent {
				agents := make([]gossip.Agent, n)
				for i, v := range values(n) {
					agents[i] = invertavg.New(gossip.NodeID(i), v, srCfg, avgCfg)
				}
				return agents
			},
			columnar: func(n int) gossip.ColumnarAgent {
				return invertavg.NewColumnar(values(n), srCfg, avgCfg)
			},
		}
		cases["multi-"+variant] = colCase{
			models: []gossip.Model{model},
			agents: func(n int) []gossip.Agent {
				agents := make([]gossip.Agent, n)
				vals := multiValues(n)
				for i := range agents {
					agents[i] = multi.New(gossip.NodeID(i), map[string]float64{
						"load":  vals["load"][i],
						"queue": vals["queue"][i],
					}, srCfg, avgCfg)
				}
				return agents
			},
			columnar: func(n int) gossip.ColumnarAgent {
				return multi.NewColumnar(multiValues(n), srCfg, avgCfg)
			},
		}
	}
	return cases
}

// columnarEngine builds one engine over the shared failure-wave +
// churn schedule on either execution path.
func columnarEngine(t *testing.T, c colCase, model gossip.Model, n, rounds, workers int, columnar bool) *gossip.Engine {
	t.Helper()
	environment := env.NewUniform(n)
	cfg := gossip.Config{
		Env:     environment,
		Model:   model,
		Seed:    9,
		Workers: workers,
		BeforeRound: []gossip.Hook{
			failure.RandomAt(rounds/2, 0.3, environment.Population, 17),
			failure.Churn(rounds/2+2, 0.05, environment.Population, 23),
		},
	}
	if columnar {
		cfg.Columnar = c.columnar(n)
	} else {
		cfg.Agents = c.agents(n)
	}
	engine, err := gossip.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

// columnarFingerprint runs one engine to completion and captures the
// exact bit pattern of every host's estimate (dead hosts included,
// via EstimateOf) plus the traffic counters.
func columnarFingerprint(t *testing.T, engine *gossip.Engine, n, rounds int) fingerprint {
	t.Helper()
	engine.Run(rounds)
	fp := fingerprint{messages: engine.Messages(), contacts: engine.Contacts()}
	for id := 0; id < n; id++ {
		v, ok := engine.EstimateOf(gossip.NodeID(id))
		if !ok {
			v = math.Inf(-1)
		}
		fp.estimates = append(fp.estimates, math.Float64bits(v))
	}
	return fp
}

// TestColumnarMatchesClassic pins the tentpole determinism contract
// over the full protocol × model matrix: for each converted protocol
// and each gossip model it supports, the columnar engine — sequential
// and sharded at several worker counts — produces byte-identical
// estimates, message counts, and contact counts to the classic
// sequential engine over the same seed and failure schedule. A mid-run
// failure wave plus continuous churn exercises dead-host gating, lost
// messages, and revival on both paths. The population is deliberately
// not a multiple of the worker counts.
func TestColumnarMatchesClassic(t *testing.T) {
	const (
		n      = 331
		rounds = 14
	)
	for name, c := range columnarCases(t) {
		for _, model := range c.models {
			t.Run(fmt.Sprintf("%s/%s", name, model), func(t *testing.T) {
				want := columnarFingerprint(t, columnarEngine(t, c, model, n, rounds, 0, false), n, rounds)
				// The classic parallel executor is pinned elsewhere, but
				// one sample here keeps all three executors in one table.
				fps := map[string]fingerprint{
					"classic/workers=4": columnarFingerprint(t, columnarEngine(t, c, model, n, rounds, 4, false), n, rounds),
				}
				for _, workers := range []int{0, 1, 4} {
					key := fmt.Sprintf("columnar/workers=%d", workers)
					fps[key] = columnarFingerprint(t, columnarEngine(t, c, model, n, rounds, workers, true), n, rounds)
				}
				for key, got := range fps {
					if got.messages != want.messages {
						t.Errorf("%s: Messages = %d, classic sequential %d", key, got.messages, want.messages)
					}
					if got.contacts != want.contacts {
						t.Errorf("%s: Contacts = %d, classic sequential %d", key, got.contacts, want.contacts)
					}
					for i := range want.estimates {
						if got.estimates[i] != want.estimates[i] {
							t.Errorf("%s: host %d estimate bits %#x, classic sequential %#x",
								key, i, got.estimates[i], want.estimates[i])
							break
						}
					}
				}
			})
		}
	}
}

// TestMultiColumnarAggregatesMatchClassic pins the parts of the
// multi-aggregate state the engine-level fingerprint cannot see:
// Estimate reports only the shared network-size half, so the per-name
// running averages and sums are compared host by host here, on both
// gossip models.
func TestMultiColumnarAggregatesMatchClassic(t *testing.T) {
	const (
		n      = 211
		rounds = 12
	)
	for _, model := range []gossip.Model{gossip.Push, gossip.PushPull} {
		t.Run(model.String(), func(t *testing.T) {
			name := "multi-push"
			if model == gossip.PushPull {
				name = "multi-pushpull"
			}
			c := columnarCases(t)[name]
			classic := columnarEngine(t, c, model, n, rounds, 0, false)
			classic.Run(rounds)
			columnar := columnarEngine(t, c, model, n, rounds, 0, true)
			columnar.Run(rounds)
			col := columnar.Columnar().(*multi.Columnar)
			for id := 0; id < n; id++ {
				node := classic.Agent(gossip.NodeID(id)).(*multi.Node)
				for _, agg := range col.Names() {
					wantAvg, wantOK := node.Average(agg)
					gotAvg, gotOK := col.Average(agg, gossip.NodeID(id))
					if wantOK != gotOK || math.Float64bits(wantAvg) != math.Float64bits(gotAvg) {
						t.Fatalf("host %d %s average: columnar (%v, %v), classic (%v, %v)",
							id, agg, gotAvg, gotOK, wantAvg, wantOK)
					}
					wantSum, wantOK := node.Sum(agg)
					gotSum, gotOK := col.Sum(agg, gossip.NodeID(id))
					if wantOK != gotOK || math.Float64bits(wantSum) != math.Float64bits(gotSum) {
						t.Fatalf("host %d %s sum: columnar (%v, %v), classic (%v, %v)",
							id, agg, gotSum, gotOK, wantSum, wantOK)
					}
				}
			}
		})
	}
}

// TestColumnarConfigValidation pins the columnar half of the Config
// contract: agent-exclusive, population-sized, and push/pull gated on
// ColExchanger.
func TestColumnarConfigValidation(t *testing.T) {
	values := []float64{1, 2, 3, 4}
	col := pushsum.NewColumnarAverage(values)
	if _, err := gossip.NewEngine(gossip.Config{
		Env: env.NewUniform(4), Columnar: col, Model: gossip.PushPull,
	}); err != nil {
		t.Errorf("push-pull columnar engine rejected for a ColExchanger protocol: %v", err)
	}
	if _, err := gossip.NewEngine(gossip.Config{
		Env:      env.NewUniform(4),
		Columnar: epoch.NewColumnar(values, epoch.Config{Length: 4}),
		Model:    gossip.PushPull,
	}); err == nil {
		t.Error("push-pull columnar engine accepted for a protocol without ExchangePairs")
	}
	if _, err := gossip.NewEngine(gossip.Config{
		Env:      env.NewUniform(4),
		Columnar: col,
		Agents:   []gossip.Agent{pushsum.NewAverage(0, 1)},
	}); err == nil {
		t.Error("Columnar+Agents engine accepted")
	}
	if _, err := gossip.NewEngine(gossip.Config{
		Env: env.NewUniform(5), Columnar: col,
	}); err == nil {
		t.Error("population/environment size mismatch accepted")
	}
	if _, err := gossip.NewEngine(gossip.Config{
		Env: env.NewUniform(4), Columnar: col,
	}); err != nil {
		t.Errorf("valid columnar config rejected: %v", err)
	}
}
