package gossip_test

import (
	"math"
	"testing"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/epoch"
	"dynagg/internal/protocol/extremes"
	"dynagg/internal/protocol/invertavg"
	"dynagg/internal/protocol/moments"
	"dynagg/internal/protocol/multi"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchcount"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
)

// emitOnly hides a protocol node's EmitAppend (and Exchange) behind a
// plain gossip.Agent, forcing the engine down the Emit adapter path.
type emitOnly struct{ gossip.Agent }

// TestEmitAppendMatchesEmit pins the equivalence of each protocol's
// two emission paths: the allocating Emit (used by the live engine and
// the engine's adapter) and the scratch-backed EmitAppend (the round
// engine's hot path) must produce byte-identical runs. Every protocol
// duplicates its emission math across the two methods, and this is the
// test that keeps the copies from drifting apart.
func TestEmitAppendMatchesEmit(t *testing.T) {
	const (
		n      = 97
		rounds = 12
		seed   = 5
	)
	srCfg := sketchreset.Config{
		Params:      sketch.Params{Bins: 8, Levels: 12},
		Identifiers: 1,
	}
	protocols := map[string]func(i int) gossip.Agent{
		"pushsum": func(i int) gossip.Agent {
			return pushsum.NewAverage(gossip.NodeID(i), float64(i%53))
		},
		"pushsumrevert": func(i int) gossip.Agent {
			return pushsumrevert.New(gossip.NodeID(i), float64(i%53),
				pushsumrevert.Config{Lambda: 0.02})
		},
		"pushsumrevert-fulltransfer": func(i int) gossip.Agent {
			return pushsumrevert.New(gossip.NodeID(i), float64(i%53),
				pushsumrevert.Config{Lambda: 0.02, FullTransfer: true, Parcels: 4, Window: 3})
		},
		"pushsumrevert-adaptive": func(i int) gossip.Agent {
			return pushsumrevert.New(gossip.NodeID(i), float64(i%53),
				pushsumrevert.Config{Lambda: 0.02, Adaptive: true})
		},
		"moments": func(i int) gossip.Agent {
			return moments.New(gossip.NodeID(i), float64(i%53), moments.Config{Lambda: 0.02})
		},
		"epoch": func(i int) gossip.Agent {
			return epoch.New(gossip.NodeID(i), float64(i%53), epoch.Config{Length: 6})
		},
		"extremes": func(i int) gossip.Agent {
			return extremes.New(gossip.NodeID(i), float64((i*31)%n), extremes.Config{Mode: extremes.Max})
		},
		"sketchcount": func(i int) gossip.Agent {
			return sketchcount.NewCount(gossip.NodeID(i), sketch.Params{Bins: 8, Levels: 12})
		},
		"sketchreset": func(i int) gossip.Agent {
			return sketchreset.New(gossip.NodeID(i), srCfg)
		},
		"invertavg": func(i int) gossip.Agent {
			return invertavg.New(gossip.NodeID(i), float64(i%53), srCfg,
				pushsumrevert.Config{Lambda: 0.02})
		},
		"multi": func(i int) gossip.Agent {
			return multi.New(gossip.NodeID(i),
				map[string]float64{"load": float64(i % 53), "temp": float64(i % 7)},
				srCfg, pushsumrevert.Config{Lambda: 0.02})
		},
	}
	for name, mk := range protocols {
		t.Run(name, func(t *testing.T) {
			run := func(hideAppend bool) ([]uint64, int64, int64) {
				agents := make([]gossip.Agent, n)
				for i := range agents {
					a := mk(i)
					if hideAppend {
						if _, ok := a.(gossip.AppendEmitter); !ok {
							t.Fatalf("%T does not implement gossip.AppendEmitter", a)
						}
						a = emitOnly{a}
					}
					agents[i] = a
				}
				engine, err := gossip.NewEngine(gossip.Config{
					Env:    env.NewUniform(n),
					Agents: agents,
					Model:  gossip.Push,
					Seed:   seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				engine.Run(rounds)
				bits := make([]uint64, 0, n)
				for _, a := range agents {
					v, ok := a.Estimate()
					if !ok {
						v = math.Inf(-1)
					}
					bits = append(bits, math.Float64bits(v))
				}
				return bits, engine.Messages(), engine.Contacts()
			}
			wantBits, wantMsgs, wantContacts := run(true) // Emit adapter path
			gotBits, gotMsgs, gotContacts := run(false)   // EmitAppend path
			if gotMsgs != wantMsgs {
				t.Errorf("Messages = %d via EmitAppend, %d via Emit", gotMsgs, wantMsgs)
			}
			if gotContacts != wantContacts {
				t.Errorf("Contacts = %d via EmitAppend, %d via Emit", gotContacts, wantContacts)
			}
			for i := range wantBits {
				if gotBits[i] != wantBits[i] {
					t.Errorf("host %d estimate bits %#x via EmitAppend, %#x via Emit",
						i, gotBits[i], wantBits[i])
					break
				}
			}
		})
	}
}
