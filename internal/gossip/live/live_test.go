package live

import (
	"context"
	"math"
	"testing"
	"time"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
	"dynagg/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	u := env.NewUniform(2)
	agents := []gossip.Agent{pushsum.NewAverage(0, 1), pushsum.NewAverage(1, 2)}

	if _, err := New(Config{Agents: agents, Ticks: 5}); err == nil {
		t.Error("nil env accepted")
	}
	if _, err := New(Config{Env: u, Agents: agents[:1], Ticks: 5}); err == nil {
		t.Error("agent/env size mismatch accepted")
	}
	if _, err := New(Config{Env: u, Agents: agents, Ticks: 0}); err == nil {
		t.Error("zero ticks accepted")
	}
	if _, err := New(Config{Env: u, Agents: agents, Ticks: 5}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

type bareAgent struct{}

func (bareAgent) BeginRound(int)                                             {}
func (bareAgent) Emit(int, *xrand.Rand, gossip.PeerPicker) []gossip.Envelope { return nil }
func (bareAgent) Receive(any)                                                {}
func (bareAgent) EndRound(int)                                               {}
func (bareAgent) Estimate() (float64, bool)                                  { return 0, false }

func TestNewPushPullRequiresExchanger(t *testing.T) {
	u := env.NewUniform(1)
	if _, err := New(Config{
		Env: u, Agents: []gossip.Agent{bareAgent{}}, Ticks: 1, Model: gossip.PushPull,
	}); err == nil {
		t.Error("push/pull live engine accepted non-Exchanger agent")
	}
}

func TestPushSumConvergesUnderPush(t *testing.T) {
	const n = 300
	u := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	var truth float64
	for i := 0; i < n; i++ {
		v := float64(i % 100)
		truth += v
		agents[i] = pushsum.NewAverage(gossip.NodeID(i), v)
	}
	truth /= n
	e, err := New(Config{Env: u, Agents: agents, Model: gossip.Push, Seed: 1, Ticks: 60})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ests := e.Estimates()
	if len(ests) == 0 {
		t.Fatal("no estimates")
	}
	var mean float64
	for _, v := range ests {
		mean += v
	}
	mean /= float64(len(ests))
	// Asynchronous delivery loses a little mass to inbox races at
	// shutdown; the mean estimate should still be near the truth.
	if math.Abs(mean-truth) > 0.2*truth {
		t.Errorf("mean estimate %v, want ≈ %v", mean, truth)
	}
	if e.Sent() == 0 {
		t.Error("no messages sent")
	}
}

func TestPushSumRevertConvergesUnderPushPull(t *testing.T) {
	const n = 300
	u := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	var truth float64
	for i := 0; i < n; i++ {
		v := float64(i % 100)
		truth += v
		agents[i] = pushsumrevert.New(gossip.NodeID(i), v,
			pushsumrevert.Config{Lambda: 0.01, PushPull: true})
	}
	truth /= n
	e, err := New(Config{Env: u, Agents: agents, Model: gossip.PushPull, Seed: 2, Ticks: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Hosts tick without a barrier: one that burns through its ticks
	// early can be left behind by later exchanges it never sees, so the
	// convergence contract is on the population, not each host.
	ests := e.Estimates()
	var mean float64
	for _, est := range ests {
		mean += est
	}
	mean /= float64(len(ests))
	if math.Abs(mean-truth) > 0.15*truth {
		t.Errorf("mean estimate %v, want ≈ %v", mean, truth)
	}
	within := 0
	for _, est := range ests {
		if math.Abs(est-truth) <= 0.25*truth {
			within++
		}
	}
	if within < len(ests)*9/10 {
		t.Errorf("only %d/%d hosts within 25%% of truth", within, len(ests))
	}
}

func TestSketchResetConvergesLive(t *testing.T) {
	const n = 400
	u := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = sketchreset.New(gossip.NodeID(i), sketchreset.Config{
			Params: sketch.DefaultParams, Identifiers: 1,
		})
	}
	e, err := New(Config{Env: u, Agents: agents, Model: gossip.PushPull, Seed: 3, Ticks: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ests := e.Estimates()
	var mean float64
	for _, v := range ests {
		mean += v
	}
	mean /= float64(len(ests))
	if math.Abs(mean-n) > 0.4*n {
		t.Errorf("mean live count estimate %v, want ≈ %d", mean, n)
	}
}

func TestContextCancellation(t *testing.T) {
	const n = 50
	u := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = pushsum.NewAverage(gossip.NodeID(i), 1)
	}
	e, err := New(Config{Env: u, Agents: agents, Model: gossip.Push, Seed: 4, Ticks: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- e.Run(ctx) }()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Run returned nil despite cancellation")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after context cancellation")
	}
}

func TestTinyInboxDrops(t *testing.T) {
	const n = 100
	u := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = pushsum.NewAverage(gossip.NodeID(i), float64(i))
	}
	e, err := New(Config{
		Env: u, Agents: agents, Model: gossip.Push, Seed: 5, Ticks: 50,
		InboxCapacity: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// With capacity-1 inboxes and 100 concurrent pushers, drops are all
	// but guaranteed; the engine must count them, not deadlock.
	if e.Sent() == 0 {
		t.Error("nothing sent")
	}
	t.Logf("sent %d dropped %d", e.Sent(), e.Dropped())
}

func TestEstimatesSkipsDeadHosts(t *testing.T) {
	const n = 10
	u := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = pushsum.NewAverage(gossip.NodeID(i), 1)
	}
	u.Population.Fail(0)
	u.Population.Fail(1)
	e, err := New(Config{Env: u, Agents: agents, Model: gossip.Push, Seed: 6, Ticks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(e.Estimates()); got != n-2 {
		t.Errorf("Estimates returned %d values, want %d", got, n-2)
	}
}

// TestBoundedWorkersConverge exercises the sharded driver: a handful
// of worker goroutines multiplexing all hosts must still converge
// under both models.
func TestBoundedWorkersConverge(t *testing.T) {
	const n = 300
	for _, model := range []gossip.Model{gossip.Push, gossip.PushPull} {
		u := env.NewUniform(n)
		agents := make([]gossip.Agent, n)
		var truth float64
		for i := 0; i < n; i++ {
			v := float64(i % 100)
			truth += v
			agents[i] = pushsumrevert.New(gossip.NodeID(i), v,
				pushsumrevert.Config{Lambda: 0.01, PushPull: model == gossip.PushPull})
		}
		truth /= n
		e, err := New(Config{
			Env: u, Agents: agents, Model: model, Seed: 3, Ticks: 60, Workers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		ests := e.Estimates()
		if len(ests) == 0 {
			t.Fatalf("%v: no estimates", model)
		}
		var mean float64
		for _, est := range ests {
			mean += est
		}
		mean /= float64(len(ests))
		if math.Abs(mean-truth) > 0.2*truth {
			t.Errorf("%v: mean estimate %v, want ≈ %v", model, mean, truth)
		}
	}
}

func TestNegativeWorkersRejected(t *testing.T) {
	u := env.NewUniform(2)
	agents := []gossip.Agent{pushsum.NewAverage(0, 1), pushsum.NewAverage(1, 2)}
	if _, err := New(Config{Env: u, Agents: agents, Ticks: 5, Workers: -1}); err == nil {
		t.Error("negative Workers accepted")
	}
}
