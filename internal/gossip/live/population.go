package live

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dynagg/internal/gossip"
	"dynagg/internal/xrand"
)

// Population is the engine's host-state backend: who the hosts are,
// how one tick of a host shard executes, and how estimates are read
// back. The two implementations are AgentPopulation (one boxed
// gossip.Agent per host — the engine's original form) and
// ColumnarPopulation (dense columns driven per shard).
//
// The interface is sealed: its working methods are unexported, so
// implementations live in this package and the engine can hand them
// internal state without exposing it. Callers only construct
// (NewAgentPopulation, NewColumnarPopulation), pass to Config, and
// inspect via Hosts.
type Population interface {
	// Hosts returns the number of hosts this population drives (the
	// Span width for a partial engine, the environment size
	// otherwise).
	Hosts() int

	// bind validates the population against the engine's configuration
	// and wires it to the engine's transport and randomness. Called
	// once, from New.
	bind(e *Engine) error
	// drivers partitions the population into tick drivers according to
	// Config.Workers. Each driver is swept by its own goroutine.
	drivers(workers int) []driver
	// estimates reads back the live hosts' estimates (Engine.Estimates).
	estimates() []float64
	// local returns the count of messages delivered without touching
	// the transport: self shares and push/pull exchange legs.
	local() int64
}

// driver executes one tick of one host shard; the engine supplies
// pacing and cancellation around it.
type driver interface {
	tick(t int)
}

// AgentPopulation is the classic host backend: one gossip.Agent per
// host, one lock per host, ticked either by per-host goroutines
// (Workers == 0) or by workers sweeping contiguous shards. It is the
// engine's original execution path moved behind the Population
// interface — same locks, same PRNG splits, same drain/emit/fold
// order — so engines built over it behave identically to the
// pre-Population engine, and it remains the only backend supporting
// push/pull and Span.
type AgentPopulation struct {
	agents []gossip.Agent
	e      *Engine
	locks  []sync.Mutex
	rngs   []*xrand.Rand
	// n counts messages that never touch the transport: a host's own
	// retained share and push/pull exchange legs.
	n atomic.Int64
}

var _ Population = (*AgentPopulation)(nil)

// NewAgentPopulation wraps one protocol instance per driven host:
// agent i is host Span.Lo+i (host i for a full-population engine).
func NewAgentPopulation(agents []gossip.Agent) *AgentPopulation {
	return &AgentPopulation{agents: agents}
}

// Agents returns the backing agent slice, aliased, not copied — the
// same slice construction handed in, so estimates and state remain
// reachable after a run.
func (p *AgentPopulation) Agents() []gossip.Agent { return p.agents }

// Hosts implements Population.
func (p *AgentPopulation) Hosts() int { return len(p.agents) }

// bind implements Population: size and capability validation, then
// the per-host locks and split PRNG streams of the original engine.
func (p *AgentPopulation) bind(e *Engine) error {
	cfg := e.cfg
	n := len(p.agents)
	if e.partial {
		if want := int(cfg.Span.Hi - cfg.Span.Lo); n != want {
			return fmt.Errorf("live: Population of %d hosts for span [%d,%d) of %d hosts",
				n, cfg.Span.Lo, cfg.Span.Hi, want)
		}
	} else if n != cfg.Env.Size() {
		return fmt.Errorf("live: Population of %d hosts for environment of size %d", n, cfg.Env.Size())
	}
	if cfg.Model == gossip.PushPull {
		for i, a := range p.agents {
			if _, ok := a.(gossip.Exchanger); !ok {
				return fmt.Errorf("live: agent %d (%T) does not implement Exchanger", i, a)
			}
		}
	}
	p.e = e
	p.locks = make([]sync.Mutex, n)
	p.rngs = make([]*xrand.Rand, n)
	root := xrand.New(cfg.Seed)
	for i := 0; i < n; i++ {
		p.rngs[i] = root.Split(uint64(e.lo) + uint64(i))
	}
	return nil
}

// drivers implements Population: Workers == 0 keeps one driver (hence
// one goroutine) per host; k > 0 shards hosts contiguously onto k
// drivers, exactly the original engine's layout.
func (p *AgentPopulation) drivers(workers int) []driver {
	n := len(p.agents)
	if workers == 0 || workers > n {
		workers = n
	}
	ds := make([]driver, workers)
	for s := 0; s < workers; s++ {
		ds[s] = &agentShard{p: p, lo: s * n / workers, hi: (s + 1) * n / workers}
	}
	return ds
}

// local implements Population.
func (p *AgentPopulation) local() int64 { return p.n.Load() }

// estimates implements Population: per-host locked reads, dead hosts
// (at the final tick) skipped.
func (p *AgentPopulation) estimates() []float64 {
	e := p.e
	out := make([]float64, 0, len(p.agents))
	for i, a := range p.agents {
		id := e.lo + gossip.NodeID(i)
		if !e.cfg.Env.Alive(id, e.finalTick()) {
			continue
		}
		p.locks[i].Lock()
		v, ok := a.Estimate()
		p.locks[i].Unlock()
		if ok {
			out = append(out, v)
		}
	}
	return out
}

// agentShard drives local hosts [lo, hi): one tick of every host per
// tick call, so shard hosts progress together while shards interleave
// freely against each other.
type agentShard struct {
	p      *AgentPopulation
	lo, hi int
}

func (s *agentShard) tick(t int) {
	p := s.p
	e := p.e
	for i := s.lo; i < s.hi; i++ {
		id := e.lo + gossip.NodeID(i)
		if !e.cfg.Env.Alive(id, t) {
			continue
		}
		switch e.cfg.Model {
		case gossip.Push:
			p.pushTick(p.agents[i], id, t, p.rngs[i])
		case gossip.PushPull:
			p.pullTick(p.agents[i], id, t, p.rngs[i])
		}
	}
}

// pushTick runs one asynchronous push iteration: drain, emit, fold.
// The agent lock serializes against concurrent exchanges and estimate
// reads.
func (p *AgentPopulation) pushTick(agent gossip.Agent, id gossip.NodeID, tick int, rng *xrand.Rand) {
	e := p.e
	li := int(id - e.lo)
	p.locks[li].Lock()
	agent.BeginRound(tick)
	// Drain whatever arrived since the last tick.
	e.tr.Drain(id, agent.Receive)
	pick := func() (gossip.NodeID, bool) { return e.cfg.Env.Pick(id, tick, rng) }
	// Deliberately Emit, not EmitAppend: payloads sit in transport
	// queues across tick boundaries here, so they need independent
	// lifetime. gossip.AppendEmitter payloads may alias emitter scratch
	// that is rewritten next tick — only the synchronous round engine,
	// which delivers within the emitting round, may use them.
	envs := agent.Emit(tick, rng, pick)
	// Self messages are the host's own retained share: they must land
	// in the same round (before EndRound folds the inbox) and must
	// never be dropped, or mass would evaporate — so they bypass the
	// transport entirely.
	for _, env := range envs {
		if env.To == id {
			agent.Receive(env.Payload)
			p.n.Add(1)
		}
	}
	agent.EndRound(tick)
	p.locks[li].Unlock()

	for _, env := range envs {
		if env.To == id {
			continue
		}
		e.tr.Send(id, env.To, tick, env.Payload)
	}
}

// pullTick runs one push/pull iteration: pick a peer and perform the
// pairwise exchange under both hosts' locks, ordered by id to prevent
// deadlock. Exchanges are in-process by nature (both agents mutate),
// so they never touch the transport; Span engines therefore reject
// the push/pull model at construction.
func (p *AgentPopulation) pullTick(agent gossip.Agent, id gossip.NodeID, tick int, rng *xrand.Rand) {
	e := p.e
	peer, ok := e.cfg.Env.Pick(id, tick, rng)
	if !ok || peer == id {
		return
	}
	a, b := int(id-e.lo), int(peer-e.lo)
	if a > b {
		a, b = b, a
	}
	p.locks[a].Lock()
	p.locks[b].Lock()
	agent.BeginRound(tick)
	agent.(gossip.Exchanger).Exchange(p.agents[peer-e.lo].(gossip.Exchanger))
	agent.EndRound(tick)
	p.locks[b].Unlock()
	p.locks[a].Unlock()
	p.n.Add(2)
}
