// Package live runs gossip protocols as concurrently ticking hosts
// exchanging messages over a pluggable transport — the Go-native
// counterpart to the deterministic round engine in package gossip.
//
// The round engine answers "what does the protocol do?" reproducibly;
// the live engine answers "does the protocol survive reality?":
// hosts tick independently without a global barrier, message delivery
// is asynchronous, queues overflow and drop (like a radio), and
// push/pull exchanges contend on per-host locks. The paper's protocols
// are designed exactly for such loose environments, so they must
// converge here too — the live engine's tests assert convergence
// within tolerance rather than exact trajectories.
//
// The host population is an abstraction (Population) with two
// implementations:
//
//   - NewAgentPopulation wraps one boxed gossip.Agent per host — the
//     engine's original per-goroutine form, byte-compatible with it,
//     and the only form that supports push/pull and Span.
//   - NewColumnarPopulation drives a gossip.ColumnarAgent: the whole
//     population's state lives in dense columns, per-shard driver
//     loops tick contiguous host ranges, and messages are encoded
//     straight from columns into transport batches (and decoded
//     straight back) with no per-host boxing — the form that scales
//     the live path to a million hosts in one process.
//
// Messages travel through a transport.Transport. The default is the
// in-process channel transport (the engine's original inbox plumbing,
// unchanged); transport.UDP puts every payload on a real loopback
// socket in its internal/wire encoding, and transport.Lossy injects
// message loss over either. With Config.Span, several engines — in
// several OS processes — can each drive a slice of one population over
// UDP, which makes this a distributed system rather than a simulator.
//
// Restrictions compared to the round engine: the environment must be
// time-invariant (Uniform or Grid; contact traces need the global
// clock that rounds provide), and per-run results are not reproducible
// because goroutine scheduling is not. The live engine also always
// drives agents through Emit rather than gossip.AppendEmitter:
// messages cross tick boundaries in transports, so payloads must not
// alias emitter-owned scratch.
package live

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live/transport"
)

// Span designates the slice [Lo, Hi) of the environment's population
// that one engine drives. The zero Span means the full population.
type Span struct {
	Lo, Hi gossip.NodeID
}

// Forever, as Config.Ticks, runs the engine until its context is
// cancelled — the setting for serving processes (an observer gateway)
// whose lifetime is operational, not experimental.
const Forever = -1

// Config assembles a live engine.
type Config struct {
	// Population is the host-state backend the engine drives: build it
	// with NewAgentPopulation (one gossip.Agent per host, the classic
	// per-goroutine form) or NewColumnarPopulation (dense columns,
	// per-shard drivers, batch transport I/O). Exactly one of
	// Population and the deprecated Agents must be set.
	Population Population
	// Agents are the protocol instances, one per driven host: agent i
	// is host Span.Lo+i (host i for a full-population engine).
	//
	// Deprecated: set Population to NewAgentPopulation(agents)
	// instead. New wraps a non-nil Agents slice in exactly that shim,
	// so behavior is identical; the field remains only so existing
	// construction sites keep working.
	Agents []gossip.Agent
	// Env supplies liveness and peer selection. It must be
	// time-invariant: Advance is never called and the round argument
	// passed to Alive/Pick is the host's local tick count.
	Env gossip.Environment
	// Model selects push (transport delivery) or push/pull (pairwise
	// locked exchange; agent populations only).
	Model gossip.Model
	// Seed drives per-host randomness, split by global host id so the
	// engines of a multi-process run draw from disjoint streams.
	Seed uint64
	// Ticks is how many protocol iterations each host performs. The
	// sentinel Forever (-1) ticks until the Run context is cancelled.
	Ticks int
	// InboxCapacity bounds each host's message queue in the default
	// channel transport; messages beyond it are dropped, as a
	// saturated radio would. Zero means transport.DefaultQueue (256).
	// Ignored when Transport is set — the transport owns its queues.
	InboxCapacity int
	// TickEvery paces hosts in wall-clock time: each driver performs
	// one iteration per interval instead of spinning as fast as the
	// scheduler allows. Age-based protocols (Count-Sketch-Reset) bound
	// counter ages assuming the population iterates at loosely equal
	// rates — which free-running goroutines racing a real network do
	// not provide, but a radio duty cycle does. Zero keeps the unpaced
	// free-running mode.
	TickEvery time.Duration
	// Workers bounds the driver goroutines. For an agent population, 0
	// (the default) keeps one goroutine per host — maximal
	// interleaving, the harshest setting for protocol robustness — and
	// k > 0 multiplexes hosts onto k workers, each sweeping a
	// contiguous host shard. For a columnar population drivers own
	// whole transport batch groups, so the effective count is capped
	// at the group count (0 means one driver per group). Either way
	// runs are not reproducible; only the round engine is.
	Workers int
	// Transport carries cross-host messages. Nil selects the
	// in-process channel transport over the full population — the
	// engine's original behavior. Columnar populations additionally
	// require the transport to expose a batch plane
	// (transport.Batcher; the channel and UDP transports both do). The
	// engine never closes the transport; the caller owns its lifetime
	// (the default channel transport needs no closing).
	Transport transport.Transport
	// Span restricts the engine to a slice of the population, with the
	// rest driven by other engines (typically other OS processes)
	// reachable through Transport. Requires an explicit Transport, the
	// push model, and an agent population. The zero Span drives
	// everything.
	Span Span
	// Bootstrap, when set, makes Run form the population's membership
	// before driving any ticks: the engine announces Span to the seed
	// addresses and blocks until the whole population is mapped (see
	// Bootstrap). Requires Span, and a TCP transport at the bottom of
	// the Transport stack — datagram transports exchange addresses out
	// of band instead.
	Bootstrap *Bootstrap
}

// Engine is a running live simulation: the tick/pacing/cancellation
// skeleton around a Population that owns the actual host state.
type Engine struct {
	cfg     Config
	pop     Population
	tr      transport.Transport
	lo      gossip.NodeID // global id of the first driven host
	partial bool
}

// New validates the configuration and builds a live engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Env == nil {
		return nil, fmt.Errorf("live: Config.Env is nil")
	}
	pop := cfg.Population
	switch {
	case pop == nil && cfg.Agents == nil:
		return nil, fmt.Errorf("live: Config.Population is nil (build one with NewAgentPopulation or NewColumnarPopulation)")
	case pop == nil:
		// Deprecated construction path: identical to handing the same
		// slice to NewAgentPopulation yourself.
		pop = NewAgentPopulation(cfg.Agents)
	case cfg.Agents != nil:
		return nil, fmt.Errorf("live: set Config.Population or the deprecated Config.Agents, not both")
	}
	partial := cfg.Span != (Span{})
	if partial {
		if cfg.Span.Lo < 0 || cfg.Span.Lo >= cfg.Span.Hi || int(cfg.Span.Hi) > cfg.Env.Size() {
			return nil, fmt.Errorf("live: Span [%d,%d) outside environment of size %d",
				cfg.Span.Lo, cfg.Span.Hi, cfg.Env.Size())
		}
		if cfg.Transport == nil {
			return nil, fmt.Errorf("live: Span requires an explicit Transport to reach the other hosts")
		}
		if cfg.Model != gossip.Push {
			return nil, fmt.Errorf("live: Span supports only the push model; push/pull exchanges need both agents in-process")
		}
	}
	if cfg.Ticks <= 0 && cfg.Ticks != Forever {
		return nil, fmt.Errorf("live: Ticks must be positive (or live.Forever), got %d", cfg.Ticks)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("live: Workers must be >= 0, got %d", cfg.Workers)
	}
	if cfg.TickEvery < 0 {
		return nil, fmt.Errorf("live: TickEvery must be >= 0, got %v", cfg.TickEvery)
	}
	if lt, ok := cfg.Transport.(*transport.Lossy); ok {
		if err := lt.Validate(); err != nil {
			return nil, fmt.Errorf("live: %w", err)
		}
	}
	if cfg.Bootstrap != nil {
		if err := cfg.Bootstrap.Validate(); err != nil {
			return nil, err
		}
		if cfg.Bootstrap.Span != cfg.Span {
			return nil, fmt.Errorf("live: Bootstrap.Span [%d,%d) differs from Config.Span [%d,%d)",
				cfg.Bootstrap.Span.Lo, cfg.Bootstrap.Span.Hi, cfg.Span.Lo, cfg.Span.Hi)
		}
		// Total may be smaller than the environment: the slots above it
		// are observer spans — hosts that join the gossip (peers pick
		// them, mass flows through them) but are not part of the
		// population the bootstrap waits to see mapped.
		if cfg.Bootstrap.Total > cfg.Env.Size() {
			return nil, fmt.Errorf("live: Bootstrap.Total %d exceeds environment size %d",
				cfg.Bootstrap.Total, cfg.Env.Size())
		}
		if _, ok := transport.AsTCP(cfg.Transport); !ok {
			return nil, fmt.Errorf("live: Bootstrap needs a TCP transport (got %T); datagram transports exchange addresses out of band", cfg.Transport)
		}
	}
	e := &Engine{
		cfg:     cfg,
		pop:     pop,
		tr:      cfg.Transport,
		lo:      cfg.Span.Lo,
		partial: partial,
	}
	if e.tr == nil {
		e.tr = transport.NewChannel(cfg.Env.Size(), cfg.InboxCapacity)
	}
	if err := pop.bind(e); err != nil {
		return nil, err
	}
	return e, nil
}

// Transport returns the transport the engine delivers through (the
// default channel transport when Config.Transport was nil).
func (e *Engine) Transport() transport.Transport { return e.tr }

// Population returns the host-state backend the engine drives. A
// deprecated Config.Agents construction yields the *AgentPopulation
// shim wrapping exactly that slice.
func (e *Engine) Population() Population { return e.pop }

// Sent returns the number of messages successfully enqueued, both
// through the transport and delivered in-process (self shares,
// push/pull exchange legs).
func (e *Engine) Sent() int64 { return e.pop.local() + e.tr.Sent() }

// Dropped returns the number of messages lost in transit: full
// queues, transport.Lossy injection, or dead sockets.
func (e *Engine) Dropped() int64 { return e.tr.Dropped() }

// Run executes the population's ticks concurrently and blocks until
// every driver finishes or the context is cancelled. With
// Config.Bootstrap set, Run first announces this engine's span and
// blocks until the whole population is mapped — no host ticks before
// membership is complete. The population decides its driver layout
// (see Config.Workers); each driver sweeps one tick of its hosts, then
// the next, so a driver's hosts progress together while drivers
// interleave freely against each other. On cancellation every driver
// returns ctx.Err(); Run reports it once.
func (e *Engine) Run(ctx context.Context) error {
	if e.cfg.Bootstrap != nil {
		tcp, _ := transport.AsTCP(e.tr) // validated in New
		if err := e.cfg.Bootstrap.Run(ctx, tcp); err != nil {
			return err
		}
		// Keep re-announcing for the engine's lifetime so a seed that
		// restarts mid-run rebuilds its membership table from our
		// re-registrations (fire-and-forget: announces to a closed or
		// unreachable peer fail quietly and the next cycle retries).
		kaCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		go e.cfg.Bootstrap.KeepAlive(kaCtx, tcp)
	}
	drivers := e.pop.drivers(e.cfg.Workers)
	var wg sync.WaitGroup
	errs := make(chan error, len(drivers))
	for _, d := range drivers {
		wg.Add(1)
		go func(d driver) {
			defer wg.Done()
			if err := e.driveLoop(ctx, d); err != nil {
				errs <- err
			}
		}(d)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// driveLoop runs one driver's ticks under the engine's pacing and
// cancellation rules.
func (e *Engine) driveLoop(ctx context.Context, d driver) error {
	var pacer *time.Ticker
	if e.cfg.TickEvery > 0 {
		pacer = time.NewTicker(e.cfg.TickEvery)
		defer pacer.Stop()
	}
	for tick := 0; e.cfg.Ticks == Forever || tick < e.cfg.Ticks; tick++ {
		if pacer != nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-pacer.C:
			}
		} else {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		d.tick(tick)
	}
	return nil
}

// finalTick is the tick estimates are read "at": the last configured
// tick, or 0 for a Forever engine (whose environment is time-invariant
// by the live engine's rules, so any tick reads the same liveness).
func (e *Engine) finalTick() int {
	if e.cfg.Ticks == Forever {
		return 0
	}
	return e.cfg.Ticks
}

// Estimates returns the driven hosts' current estimates, skipping
// hosts the environment reports dead at the final tick. Call after Run
// returns (or accept racy snapshots during a run — agent populations
// take the host lock per read, so individual estimates are coherent;
// columnar estimates during a run are torn-free per host but
// unsynchronized).
func (e *Engine) Estimates() []float64 {
	return e.pop.estimates()
}
