// Package live runs gossip protocols with one goroutine per simulated
// host, exchanging messages over a pluggable transport — the Go-native
// counterpart to the deterministic round engine in package gossip.
//
// The round engine answers "what does the protocol do?" reproducibly;
// the live engine answers "does the protocol survive reality?":
// hosts tick independently without a global barrier, message delivery
// is asynchronous, queues overflow and drop (like a radio), and
// push/pull exchanges contend on per-host locks. The paper's protocols
// are designed exactly for such loose environments, so they must
// converge here too — the live engine's tests assert convergence
// within tolerance rather than exact trajectories.
//
// Messages travel through a transport.Transport. The default is the
// in-process channel transport (the engine's original inbox plumbing,
// unchanged); transport.UDP puts every payload on a real loopback
// socket in its internal/wire encoding, and transport.Lossy injects
// message loss over either. With Config.Span, several engines — in
// several OS processes — can each drive a slice of one population over
// UDP, which makes this a distributed system rather than a simulator.
//
// Restrictions compared to the round engine: the environment must be
// time-invariant (Uniform or Grid; contact traces need the global
// clock that rounds provide), and per-run results are not reproducible
// because goroutine scheduling is not. The live engine also always
// drives agents through Emit rather than gossip.AppendEmitter:
// messages cross tick boundaries in transports, so payloads must not
// alias emitter-owned scratch.
package live

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live/transport"
	"dynagg/internal/xrand"
)

// Span designates the slice [Lo, Hi) of the environment's population
// that one engine drives. The zero Span means the full population.
type Span struct {
	Lo, Hi gossip.NodeID
}

// Config assembles a live engine.
type Config struct {
	// Agents are the protocol instances, one per driven host: agent i
	// is host Span.Lo+i (host i for a full-population engine).
	Agents []gossip.Agent
	// Env supplies liveness and peer selection. It must be
	// time-invariant: Advance is never called and the round argument
	// passed to Alive/Pick is the host's local tick count.
	Env gossip.Environment
	// Model selects push (transport delivery) or push/pull (pairwise
	// locked exchange).
	Model gossip.Model
	// Seed drives per-host randomness, split by global host id so the
	// engines of a multi-process run draw from disjoint streams.
	Seed uint64
	// Ticks is how many protocol iterations each host performs.
	Ticks int
	// InboxCapacity bounds each host's message queue in the default
	// channel transport; messages beyond it are dropped, as a
	// saturated radio would. Zero means transport.DefaultQueue (256).
	// Ignored when Transport is set — the transport owns its queues.
	InboxCapacity int
	// TickEvery paces hosts in wall-clock time: each host performs one
	// iteration per interval instead of spinning as fast as the
	// scheduler allows. Age-based protocols (Count-Sketch-Reset) bound
	// counter ages assuming the population iterates at loosely equal
	// rates — which free-running goroutines racing a real network do
	// not provide, but a radio duty cycle does. Zero keeps the unpaced
	// free-running mode.
	TickEvery time.Duration
	// Workers bounds the driver goroutines. 0 (the default) keeps one
	// goroutine per host — maximal interleaving, the harshest setting
	// for protocol robustness. k > 0 multiplexes hosts onto k workers,
	// each sweeping the ticks of a contiguous host shard — the mode
	// that scales to populations where per-host goroutines would
	// exhaust memory. Either way runs are not reproducible; only the
	// round engine is.
	Workers int
	// Transport carries cross-host messages. Nil selects the
	// in-process channel transport over the full population — the
	// engine's original behavior. The engine never closes the
	// transport; the caller owns its lifetime (the default channel
	// transport needs no closing).
	Transport transport.Transport
	// Span restricts the engine to a slice of the population, with the
	// rest driven by other engines (typically other OS processes)
	// reachable through Transport. Requires an explicit Transport and
	// the push model: push/pull exchanges need both agents in-process.
	// The zero Span drives everything.
	Span Span
}

// Engine is a running live simulation.
type Engine struct {
	cfg   Config
	tr    transport.Transport
	lo    gossip.NodeID // global id of Agents[0]
	locks []sync.Mutex
	rngs  []*xrand.Rand
	// local counts messages that never touch the transport: a host's
	// own retained share and push/pull exchange legs.
	local atomic.Int64
}

// New validates the configuration and builds a live engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Env == nil {
		return nil, fmt.Errorf("live: Config.Env is nil")
	}
	partial := cfg.Span != (Span{})
	if partial {
		if cfg.Span.Lo < 0 || cfg.Span.Lo >= cfg.Span.Hi || int(cfg.Span.Hi) > cfg.Env.Size() {
			return nil, fmt.Errorf("live: Span [%d,%d) outside environment of size %d",
				cfg.Span.Lo, cfg.Span.Hi, cfg.Env.Size())
		}
		if got, want := len(cfg.Agents), int(cfg.Span.Hi-cfg.Span.Lo); got != want {
			return nil, fmt.Errorf("live: %d agents for span [%d,%d) of %d hosts",
				got, cfg.Span.Lo, cfg.Span.Hi, want)
		}
		if cfg.Transport == nil {
			return nil, fmt.Errorf("live: Span requires an explicit Transport to reach the other hosts")
		}
		if cfg.Model != gossip.Push {
			return nil, fmt.Errorf("live: Span supports only the push model; push/pull exchanges need both agents in-process")
		}
	} else if len(cfg.Agents) != cfg.Env.Size() {
		return nil, fmt.Errorf("live: %d agents for environment of size %d", len(cfg.Agents), cfg.Env.Size())
	}
	if cfg.Ticks <= 0 {
		return nil, fmt.Errorf("live: Ticks must be positive, got %d", cfg.Ticks)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("live: Workers must be >= 0, got %d", cfg.Workers)
	}
	if cfg.TickEvery < 0 {
		return nil, fmt.Errorf("live: TickEvery must be >= 0, got %v", cfg.TickEvery)
	}
	if cfg.Model == gossip.PushPull {
		for i, a := range cfg.Agents {
			if _, ok := a.(gossip.Exchanger); !ok {
				return nil, fmt.Errorf("live: agent %d (%T) does not implement Exchanger", i, a)
			}
		}
	}
	if lt, ok := cfg.Transport.(*transport.Lossy); ok {
		if err := lt.Validate(); err != nil {
			return nil, fmt.Errorf("live: %w", err)
		}
	}
	n := len(cfg.Agents)
	e := &Engine{
		cfg:   cfg,
		tr:    cfg.Transport,
		lo:    cfg.Span.Lo,
		locks: make([]sync.Mutex, n),
		rngs:  make([]*xrand.Rand, n),
	}
	if e.tr == nil {
		e.tr = transport.NewChannel(cfg.Env.Size(), cfg.InboxCapacity)
	}
	root := xrand.New(cfg.Seed)
	for i := 0; i < n; i++ {
		e.rngs[i] = root.Split(uint64(e.lo) + uint64(i))
	}
	return e, nil
}

// Transport returns the transport the engine delivers through (the
// default channel transport when Config.Transport was nil).
func (e *Engine) Transport() transport.Transport { return e.tr }

// Sent returns the number of messages successfully enqueued, both
// through the transport and delivered in-process (self shares,
// push/pull exchange legs).
func (e *Engine) Sent() int64 { return e.local.Load() + e.tr.Sent() }

// Dropped returns the number of messages lost in transit: full
// queues, transport.Lossy injection, or dead sockets.
func (e *Engine) Dropped() int64 { return e.tr.Dropped() }

// Run executes every host's ticks concurrently and blocks until all
// hosts finish or the context is cancelled. With Config.Workers == 0
// each host gets its own goroutine; otherwise Workers goroutines each
// drive a contiguous shard of hosts, sweeping the shard once per tick.
// On cancellation every shard returns ctx.Err(); Run reports it once.
func (e *Engine) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	n := len(e.cfg.Agents)
	workers := e.cfg.Workers
	if workers == 0 || workers > n {
		workers = n
	}
	errs := make(chan error, workers)
	for s := 0; s < workers; s++ {
		lo, hi := s*n/workers, (s+1)*n/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if err := e.shardLoop(ctx, lo, hi); err != nil {
				errs <- err
			}
		}(lo, hi)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// shardLoop drives local hosts [lo, hi): one tick of every host, then
// the next tick, so shard hosts progress together while shards
// interleave freely against each other.
func (e *Engine) shardLoop(ctx context.Context, lo, hi int) error {
	var pacer *time.Ticker
	if e.cfg.TickEvery > 0 {
		pacer = time.NewTicker(e.cfg.TickEvery)
		defer pacer.Stop()
	}
	for tick := 0; tick < e.cfg.Ticks; tick++ {
		if pacer != nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-pacer.C:
			}
		} else {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		for i := lo; i < hi; i++ {
			id := e.lo + gossip.NodeID(i)
			if !e.cfg.Env.Alive(id, tick) {
				continue
			}
			switch e.cfg.Model {
			case gossip.Push:
				e.pushTick(e.cfg.Agents[i], id, tick, e.rngs[i])
			case gossip.PushPull:
				e.pullTick(e.cfg.Agents[i], id, tick, e.rngs[i])
			}
		}
	}
	return nil
}

// pushTick runs one asynchronous push iteration: drain, emit, fold.
// The agent lock serializes against concurrent exchanges and estimate
// reads.
func (e *Engine) pushTick(agent gossip.Agent, id gossip.NodeID, tick int, rng *xrand.Rand) {
	li := int(id - e.lo)
	e.locks[li].Lock()
	agent.BeginRound(tick)
	// Drain whatever arrived since the last tick.
	e.tr.Drain(id, agent.Receive)
	pick := func() (gossip.NodeID, bool) { return e.cfg.Env.Pick(id, tick, rng) }
	// Deliberately Emit, not EmitAppend: payloads sit in transport
	// queues across tick boundaries here, so they need independent
	// lifetime. gossip.AppendEmitter payloads may alias emitter scratch
	// that is rewritten next tick — only the synchronous round engine,
	// which delivers within the emitting round, may use them.
	envs := agent.Emit(tick, rng, pick)
	// Self messages are the host's own retained share: they must land
	// in the same round (before EndRound folds the inbox) and must
	// never be dropped, or mass would evaporate — so they bypass the
	// transport entirely.
	for _, env := range envs {
		if env.To == id {
			agent.Receive(env.Payload)
			e.local.Add(1)
		}
	}
	agent.EndRound(tick)
	e.locks[li].Unlock()

	for _, env := range envs {
		if env.To == id {
			continue
		}
		e.tr.Send(id, env.To, tick, env.Payload)
	}
}

// pullTick runs one push/pull iteration: pick a peer and perform the
// pairwise exchange under both hosts' locks, ordered by id to prevent
// deadlock. Exchanges are in-process by nature (both agents mutate),
// so they never touch the transport; Span engines therefore reject
// the push/pull model at construction.
func (e *Engine) pullTick(agent gossip.Agent, id gossip.NodeID, tick int, rng *xrand.Rand) {
	peer, ok := e.cfg.Env.Pick(id, tick, rng)
	if !ok || peer == id {
		return
	}
	a, b := int(id-e.lo), int(peer-e.lo)
	if a > b {
		a, b = b, a
	}
	e.locks[a].Lock()
	e.locks[b].Lock()
	agent.BeginRound(tick)
	agent.(gossip.Exchanger).Exchange(e.cfg.Agents[peer-e.lo].(gossip.Exchanger))
	agent.EndRound(tick)
	e.locks[b].Unlock()
	e.locks[a].Unlock()
	e.local.Add(2)
}

// Estimates returns the driven hosts' current estimates. Call after
// Run returns (or accept racy snapshots during a run — each read takes
// the host lock, so individual estimates are coherent).
func (e *Engine) Estimates() []float64 {
	out := make([]float64, 0, len(e.cfg.Agents))
	for i, a := range e.cfg.Agents {
		id := e.lo + gossip.NodeID(i)
		if !e.cfg.Env.Alive(id, e.cfg.Ticks) {
			continue
		}
		e.locks[i].Lock()
		v, ok := a.Estimate()
		e.locks[i].Unlock()
		if ok {
			out = append(out, v)
		}
	}
	return out
}
