// Package live runs gossip protocols with one goroutine per simulated
// host, exchanging messages over channels — the Go-native counterpart
// to the deterministic round engine in package gossip.
//
// The round engine answers "what does the protocol do?" reproducibly;
// the live engine answers "does the protocol survive reality?":
// hosts tick independently without a global barrier, message delivery
// is asynchronous, inboxes overflow and drop (like a radio), and
// push/pull exchanges contend on per-host locks. The paper's protocols
// are designed exactly for such loose environments, so they must
// converge here too — the live engine's tests assert convergence
// within tolerance rather than exact trajectories.
//
// Restrictions compared to the round engine: the environment must be
// time-invariant (Uniform or Grid; contact traces need the global
// clock that rounds provide), and per-run results are not reproducible
// because goroutine scheduling is not. The live engine also always
// drives agents through Emit rather than gossip.AppendEmitter:
// messages cross tick boundaries in channels, so payloads must not
// alias emitter-owned scratch.
package live

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"dynagg/internal/gossip"
	"dynagg/internal/xrand"
)

// Config assembles a live engine.
type Config struct {
	// Agents are the protocol instances, one per host.
	Agents []gossip.Agent
	// Env supplies liveness and peer selection. It must be
	// time-invariant: Advance is never called and the round argument
	// passed to Alive/Pick is the host's local tick count.
	Env gossip.Environment
	// Model selects push (channel delivery) or push/pull (pairwise
	// locked exchange).
	Model gossip.Model
	// Seed drives per-host randomness.
	Seed uint64
	// Ticks is how many protocol iterations each host performs.
	Ticks int
	// InboxCapacity bounds each host's message queue; messages beyond
	// it are dropped, as a saturated radio would. Zero means 256.
	InboxCapacity int
	// Workers bounds the driver goroutines. 0 (the default) keeps one
	// goroutine per host — maximal interleaving, the harshest setting
	// for protocol robustness. k > 0 multiplexes hosts onto k workers,
	// each sweeping the ticks of a contiguous host shard — the mode
	// that scales to populations where per-host goroutines would
	// exhaust memory. Either way runs are not reproducible; only the
	// round engine is.
	Workers int
}

// Engine is a running live simulation.
type Engine struct {
	cfg     Config
	inbox   []chan any
	locks   []sync.Mutex
	rngs    []*xrand.Rand
	sent    atomic.Int64
	dropped atomic.Int64
}

// New validates the configuration and builds a live engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Env == nil {
		return nil, fmt.Errorf("live: Config.Env is nil")
	}
	if len(cfg.Agents) != cfg.Env.Size() {
		return nil, fmt.Errorf("live: %d agents for environment of size %d", len(cfg.Agents), cfg.Env.Size())
	}
	if cfg.Ticks <= 0 {
		return nil, fmt.Errorf("live: Ticks must be positive, got %d", cfg.Ticks)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("live: Workers must be >= 0, got %d", cfg.Workers)
	}
	if cfg.InboxCapacity == 0 {
		cfg.InboxCapacity = 256
	}
	if cfg.Model == gossip.PushPull {
		for i, a := range cfg.Agents {
			if _, ok := a.(gossip.Exchanger); !ok {
				return nil, fmt.Errorf("live: agent %d (%T) does not implement Exchanger", i, a)
			}
		}
	}
	n := len(cfg.Agents)
	e := &Engine{
		cfg:   cfg,
		inbox: make([]chan any, n),
		locks: make([]sync.Mutex, n),
		rngs:  make([]*xrand.Rand, n),
	}
	root := xrand.New(cfg.Seed)
	for i := 0; i < n; i++ {
		e.inbox[i] = make(chan any, cfg.InboxCapacity)
		e.rngs[i] = root.Split(uint64(i))
	}
	return e, nil
}

// Sent returns the number of messages successfully enqueued.
func (e *Engine) Sent() int64 { return e.sent.Load() }

// Dropped returns the number of messages lost to full inboxes.
func (e *Engine) Dropped() int64 { return e.dropped.Load() }

// Run executes every host's ticks concurrently and blocks until all
// hosts finish or the context is cancelled. With Config.Workers == 0
// each host gets its own goroutine; otherwise Workers goroutines each
// drive a contiguous shard of hosts, sweeping the shard once per tick.
func (e *Engine) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	n := len(e.cfg.Agents)
	workers := e.cfg.Workers
	if workers == 0 || workers > n {
		workers = n
	}
	errs := make(chan error, workers)
	for s := 0; s < workers; s++ {
		lo, hi := s*n/workers, (s+1)*n/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if err := e.shardLoop(ctx, lo, hi); err != nil {
				errs <- err
			}
		}(lo, hi)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// shardLoop drives hosts [lo, hi): one tick of every host, then the
// next tick, so shard hosts progress together while shards interleave
// freely against each other.
func (e *Engine) shardLoop(ctx context.Context, lo, hi int) error {
	for tick := 0; tick < e.cfg.Ticks; tick++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		for i := lo; i < hi; i++ {
			id := gossip.NodeID(i)
			if !e.cfg.Env.Alive(id, tick) {
				continue
			}
			switch e.cfg.Model {
			case gossip.Push:
				e.pushTick(e.cfg.Agents[i], id, tick, e.rngs[i])
			case gossip.PushPull:
				e.pullTick(e.cfg.Agents[i], id, tick, e.rngs[i])
			}
		}
	}
	return nil
}

// pushTick runs one asynchronous push iteration: drain, emit, fold.
// The agent lock serializes against concurrent exchanges and estimate
// reads.
func (e *Engine) pushTick(agent gossip.Agent, id gossip.NodeID, tick int, rng *xrand.Rand) {
	e.locks[id].Lock()
	agent.BeginRound(tick)
	// Drain whatever arrived since the last tick.
	for {
		select {
		case p := <-e.inbox[id]:
			agent.Receive(p)
		default:
			goto drained
		}
	}
drained:
	pick := func() (gossip.NodeID, bool) { return e.cfg.Env.Pick(id, tick, rng) }
	// Deliberately Emit, not EmitAppend: payloads sit in channels
	// across tick boundaries here, so they need independent lifetime.
	// gossip.AppendEmitter payloads may alias emitter scratch that is
	// rewritten next tick — only the synchronous round engine, which
	// delivers within the emitting round, may use them.
	envs := agent.Emit(tick, rng, pick)
	// Self messages are the host's own retained share: they must land
	// in the same round (before EndRound folds the inbox) and must
	// never be dropped, or mass would evaporate.
	for _, env := range envs {
		if env.To == id {
			agent.Receive(env.Payload)
			e.sent.Add(1)
		}
	}
	agent.EndRound(tick)
	e.locks[id].Unlock()

	for _, env := range envs {
		if env.To == id {
			continue
		}
		select {
		case e.inbox[env.To] <- env.Payload:
			e.sent.Add(1)
		default:
			e.dropped.Add(1)
		}
	}
}

// pullTick runs one push/pull iteration: pick a peer and perform the
// pairwise exchange under both hosts' locks, ordered by id to prevent
// deadlock.
func (e *Engine) pullTick(agent gossip.Agent, id gossip.NodeID, tick int, rng *xrand.Rand) {
	peer, ok := e.cfg.Env.Pick(id, tick, rng)
	if !ok || peer == id {
		return
	}
	a, b := id, peer
	if a > b {
		a, b = b, a
	}
	e.locks[a].Lock()
	e.locks[b].Lock()
	agent.BeginRound(tick)
	agent.(gossip.Exchanger).Exchange(e.cfg.Agents[peer].(gossip.Exchanger))
	agent.EndRound(tick)
	e.locks[b].Unlock()
	e.locks[a].Unlock()
	e.sent.Add(2)
}

// Estimates returns the live hosts' current estimates. Call after Run
// returns (or accept racy snapshots during a run — each read takes the
// host lock, so individual estimates are coherent).
func (e *Engine) Estimates() []float64 {
	out := make([]float64, 0, len(e.cfg.Agents))
	for i, a := range e.cfg.Agents {
		id := gossip.NodeID(i)
		if !e.cfg.Env.Alive(id, e.cfg.Ticks) {
			continue
		}
		e.locks[id].Lock()
		v, ok := a.Estimate()
		e.locks[id].Unlock()
		if ok {
			out = append(out, v)
		}
	}
	return out
}
