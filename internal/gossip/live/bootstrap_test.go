package live

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live/transport"
	"dynagg/internal/protocol/pushsum"
)

// tickPace returns the wall-clock duty cycle for TCP convergence
// tests. Unlike UDP, where Send hands the datagram to the kernel
// inline, TCP sends are queued for an asynchronous writer goroutine —
// a free-running engine finishes all its ticks before the first dial
// completes, so the hosts must tick at a realistic rate for traffic to
// actually flow. The race detector multiplies the per-frame cost, so
// the cycle stretches with it (same idiom as the UDP live tests).
func tickPace() time.Duration {
	if raceEnabled {
		return 20 * time.Millisecond
	}
	return 4 * time.Millisecond
}

// newSpanTCP builds the transport one bootstrap process starts with:
// only its own span is known, everything else is learned via announce.
func newSpanTCP(t *testing.T, lo, hi gossip.NodeID, bind string) *transport.TCP {
	t.Helper()
	tr, err := transport.NewTCP(transport.TCPConfig{
		Groups:      []transport.Group{{Lo: lo, Hi: hi, Addr: bind}},
		Local:       []int{0},
		BackoffMin:  2 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		DialTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBootstrapValidation(t *testing.T) {
	span := Span{Lo: 0, Hi: 4}
	cases := []struct {
		name string
		b    Bootstrap
	}{
		{"no seeds", Bootstrap{Span: span, Total: 8}},
		{"blank seed", Bootstrap{Seeds: []string{" "}, Span: span, Total: 8}},
		{"zero span", Bootstrap{Seeds: []string{"x:1"}, Total: 8}},
		{"empty span", Bootstrap{Seeds: []string{"x:1"}, Span: Span{Lo: 4, Hi: 4}, Total: 8}},
		{"total below span", Bootstrap{Seeds: []string{"x:1"}, Span: Span{Lo: 0, Hi: 9}, Total: 8}},
		{"negative retry", Bootstrap{Seeds: []string{"x:1"}, Span: span, Total: 8, Retry: -1}},
	}
	for _, tc := range cases {
		if err := tc.b.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := (&Bootstrap{Seeds: []string{"x:1"}, Span: span, Total: 8}).Validate(); err != nil {
		t.Errorf("minimal valid bootstrap rejected: %v", err)
	}
}

func TestBootstrapConfigValidation(t *testing.T) {
	const n = 8
	u := env.NewUniform(n)
	tr := newSpanTCP(t, 0, 4, "127.0.0.1:0")
	defer tr.Close()
	agents, _ := pushSumAgents(n)
	base := Config{
		Env: u, Agents: agents[:4], Model: gossip.Push, Seed: 1, Ticks: 1,
		Transport: tr, Span: Span{Lo: 0, Hi: 4},
	}

	cfg := base
	cfg.Bootstrap = &Bootstrap{Seeds: []string{"x:1"}, Span: Span{Lo: 4, Hi: 8}, Total: n}
	if _, err := New(cfg); err == nil {
		t.Error("Bootstrap.Span differing from Config.Span accepted")
	}
	cfg = base
	cfg.Bootstrap = &Bootstrap{Seeds: []string{"x:1"}, Span: base.Span, Total: n + 1}
	if _, err := New(cfg); err == nil {
		t.Error("Bootstrap.Total differing from environment size accepted")
	}
	cfg = base
	cfg.Bootstrap = &Bootstrap{Seeds: []string{"x:1"}, Span: base.Span, Total: n}
	cfg.Transport = transport.NewChannel(n, 0)
	if _, err := New(cfg); err == nil {
		t.Error("Bootstrap over a channel transport accepted")
	}
	// Lossy over TCP must still qualify: AsTCP unwraps the injector.
	cfg = base
	cfg.Bootstrap = &Bootstrap{Seeds: []string{"x:1"}, Span: base.Span, Total: n}
	cfg.Transport = &transport.Lossy{T: tr}
	if _, err := New(cfg); err != nil {
		t.Errorf("Bootstrap over Lossy(TCP) rejected: %v", err)
	}
}

// TestBootstrapSeedPushesMembership pins the push side of the
// protocol: a member whose one successful announce lands BEFORE the
// rest of the population has registered must still learn the later
// spans without ever re-announcing, because the seed pushes each
// accepted announce to every member already in its table. Without the
// push, that member depends on its retry cadence racing the seed
// process's lifetime — a seed that finishes its ticks and exits
// between two retries strands the member at partial coverage.
func TestBootstrapSeedPushesMembership(t *testing.T) {
	const total = 192
	seedTr := newSpanTCP(t, 0, 64, "127.0.0.1:0")
	defer seedTr.Close()
	aTr := newSpanTCP(t, 64, 128, "127.0.0.1:0")
	defer aTr.Close()
	bTr := newSpanTCP(t, 128, 192, "127.0.0.1:0")
	defer bTr.Close()
	seedAddr := seedTr.GroupAddr(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Member A announces with an hour-long Retry: the initial announce
	// is the only one it can send inside the test's deadline, so its
	// completion proves it learned B's span from a seed push.
	aDone := make(chan error, 1)
	go func() {
		b := &Bootstrap{
			Seeds: []string{seedAddr}, Span: Span{Lo: 64, Hi: 128},
			Total: total, Retry: time.Hour, Timeout: 15 * time.Second,
		}
		aDone <- b.Run(ctx, aTr)
	}()
	// Hold B back until the seed has registered A, so A's announce
	// verifiably predates B's.
	for {
		if g := seedTr.Groups(); len(g) == 2 && g[1].Addr != "" {
			break
		}
		select {
		case err := <-aDone:
			t.Fatalf("member A finished before B existed: %v", err)
		case <-time.After(time.Millisecond):
		}
	}
	bDone := make(chan error, 1)
	go func() {
		b := &Bootstrap{
			Seeds: []string{seedAddr}, Span: Span{Lo: 128, Hi: 192},
			Total: total, Retry: 10 * time.Millisecond, Timeout: 15 * time.Second,
		}
		bDone <- b.Run(ctx, bTr)
	}()
	for name, ch := range map[string]chan error{"A": aDone, "B": bDone} {
		if err := <-ch; err != nil {
			t.Fatalf("member %s bootstrap: %v", name, err)
		}
	}
	if !aTr.Covers(total) || !bTr.Covers(total) || !seedTr.Covers(total) {
		t.Fatal("a transport reports incomplete coverage after bootstrap")
	}
}

// bootstrapEngines builds `spans` engines over one population, each
// with its own single-group TCP transport and a Bootstrap pointing at
// the first span's listener — the in-test model of the three-process
// examples/live_cluster demo. Caller runs them concurrently.
func bootstrapEngines(t *testing.T, n int, spans []Span, seedAddr string, trs []*transport.TCP) ([]*Engine, float64) {
	t.Helper()
	agents, truth := pushSumAgents(n)
	engines := make([]*Engine, len(spans))
	for i, span := range spans {
		e, err := New(Config{
			Env: env.NewUniform(n), Agents: agents[span.Lo:span.Hi],
			Model: gossip.Push, Seed: 41, Ticks: 80,
			Transport: trs[i], Span: span,
			TickEvery: tickPace(), Workers: 4,
			Bootstrap: &Bootstrap{
				Seeds: []string{seedAddr}, Span: span, Total: n,
				Retry: 10 * time.Millisecond, Timeout: 20 * time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	return engines, truth
}

func runEngines(t *testing.T, engines []*Engine) {
	t.Helper()
	var wg sync.WaitGroup
	for _, e := range engines {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			if err := e.Run(context.Background()); err != nil {
				t.Error(err)
			}
		}(e)
	}
	wg.Wait()
}

// TestLiveBootstrappedSpanEnginesOverTCPConverge is the in-process
// model of examples/live_cluster: three engines, three spans, three
// TCP transports, membership formed entirely by announcing to the
// first engine's listener — no address shuttling — then Push-Sum
// converges across the bootstrapped links.
func TestLiveBootstrappedSpanEnginesOverTCPConverge(t *testing.T) {
	const n = 96
	spans := []Span{{Lo: 0, Hi: 32}, {Lo: 32, Hi: 64}, {Lo: 64, Hi: 96}}
	trs := make([]*transport.TCP, len(spans))
	for i, s := range spans {
		trs[i] = newSpanTCP(t, s.Lo, s.Hi, "127.0.0.1:0")
		defer trs[i].Close()
	}
	engines, truth := bootstrapEngines(t, n, spans, trs[0].GroupAddr(0), trs)
	runEngines(t, engines)

	// Assert per engine: the spans' local means straddle the global
	// truth symmetrically, so a *combined* mean would read ≈ truth even
	// with zero cross-span traffic. Each span converging to the global
	// mean is what proves the bootstrapped links carried gossip.
	for i, e := range engines {
		mean := meanOf(t, e.Estimates())
		if math.Abs(mean-truth) > 0.2*truth {
			t.Errorf("engine %d mean estimate %v, want ≈ %v", i, mean, truth)
		}
	}
	for i, tr := range trs {
		if !tr.Covers(n) {
			t.Errorf("engine %d membership incomplete: %v", i, tr.Groups())
		}
		if tr.Sent() == 0 {
			t.Errorf("engine %d sent nothing", i)
		}
	}
}

// TestLiveBootstrapLateSeed starts the joiner engines first: their
// announce loops retry into the void until the seed process appears,
// then membership completes and the run converges — the "processes
// start in any order" property the stdio handshake could never offer.
func TestLiveBootstrapLateSeed(t *testing.T) {
	const n = 96
	spans := []Span{{Lo: 0, Hi: 32}, {Lo: 32, Hi: 64}, {Lo: 64, Hi: 96}}

	// Reserve an address for the future seed, then release it.
	probe := newSpanTCP(t, 0, 32, "127.0.0.1:0")
	seedAddr := probe.GroupAddr(0)
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}

	trs := make([]*transport.TCP, len(spans))
	for i, s := range spans[1:] {
		trs[i+1] = newSpanTCP(t, s.Lo, s.Hi, "127.0.0.1:0")
		defer trs[i+1].Close()
	}
	agents, truth := pushSumAgents(n)
	mkEngine := func(i int) *Engine {
		span := spans[i]
		e, err := New(Config{
			Env: env.NewUniform(n), Agents: agents[span.Lo:span.Hi],
			Model: gossip.Push, Seed: 43, Ticks: 60,
			Transport: trs[i], Span: span,
			TickEvery: tickPace(), Workers: 4,
			Bootstrap: &Bootstrap{
				Seeds: []string{seedAddr}, Span: span, Total: n,
				Retry: 10 * time.Millisecond, Timeout: 20 * time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	var wg sync.WaitGroup
	for i := 1; i < len(spans); i++ {
		e := mkEngine(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := e.Run(context.Background()); err != nil {
				t.Error(err)
			}
		}()
	}
	// The joiners are now announcing at a dead address. Start the seed
	// late, on the reserved address.
	time.Sleep(100 * time.Millisecond)
	trs[0] = newSpanTCP(t, 0, 32, seedAddr)
	defer trs[0].Close()
	seed := mkEngine(0)
	if err := seed.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	mean := meanOf(t, seed.Estimates())
	if math.Abs(mean-truth) > 0.25*truth {
		t.Errorf("seed-span mean estimate %v, want ≈ %v", mean, truth)
	}
}

// TestLiveBootstrapSpanConflictFailsFast: a second process claiming an
// already-owned span must not retry for the full timeout — the
// rejection is a deployment bug and surfaces immediately.
func TestLiveBootstrapSpanConflictFailsFast(t *testing.T) {
	const n = 64
	seedTr := newSpanTCP(t, 0, 32, "127.0.0.1:0")
	defer seedTr.Close()
	impTr := newSpanTCP(t, 0, 32, "127.0.0.1:0") // same span, different listener
	defer impTr.Close()

	b := &Bootstrap{
		Seeds: []string{seedTr.GroupAddr(0)}, Span: Span{Lo: 0, Hi: 32}, Total: n,
		Retry: 10 * time.Millisecond, Timeout: 20 * time.Second,
	}
	start := time.Now()
	err := b.Run(context.Background(), impTr)
	if !errors.Is(err, transport.ErrSpanConflict) {
		t.Fatalf("err = %v, want ErrSpanConflict", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("conflict took %v to surface; must fail fast, not retry out the timeout", elapsed)
	}
}

// TestLiveSpanEnginesOverTCPReconnectMidRun repeatedly severs the
// inter-span connections while the engines run: every kill forces a
// redial, frames die in the outage windows, and Push-Sum (which
// tolerates loss by construction) still converges.
func TestLiveSpanEnginesOverTCPReconnectMidRun(t *testing.T) {
	const n = 128
	spans := []Span{{Lo: 0, Hi: 64}, {Lo: 64, Hi: 128}}
	trs := []*transport.TCP{
		newSpanTCP(t, 0, 64, "127.0.0.1:0"),
		newSpanTCP(t, 64, 128, "127.0.0.1:0"),
	}
	defer trs[0].Close()
	defer trs[1].Close()
	engines, truth := bootstrapEngines(t, n, spans, trs[0].GroupAddr(0), trs)

	stop := make(chan struct{})
	var killer sync.WaitGroup
	killer.Add(1)
	go func() {
		defer killer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(15 * time.Millisecond):
			}
			// Alternate sides so both directions exercise the redial.
			trs[i%2].KillLink(gossip.NodeID((i%2)*64 + 1))
			trs[i%2].KillLink(gossip.NodeID((1-i%2)*64 + 1))
		}
	}()
	runEngines(t, engines)
	close(stop)
	killer.Wait()

	// Per engine, not combined: the two halves' local means average to
	// the truth, so only each span individually reaching it proves the
	// links survived the kill loop (see the bootstrap convergence test).
	for i, e := range engines {
		mean := meanOf(t, e.Estimates())
		if math.Abs(mean-truth) > 0.25*truth {
			t.Errorf("engine %d mean estimate %v, want ≈ %v", i, mean, truth)
		}
	}
	if trs[0].Kills()+trs[1].Kills() == 0 {
		t.Error("the kill loop never severed a connection")
	}
}

// TestLivePushSumOverTCPWithLossConverges runs the classic loss
// integration contract on the stream transport: with Lossy over TCP a
// drop draw kills the carrying connection, so convergence here proves
// the protocols ride out repeated link failures and reconnects, not
// just silent datagram loss.
func TestLivePushSumOverTCPWithLossConverges(t *testing.T) {
	const n = 128
	agents, truth := pushSumAgents(n)
	tcp, err := transport.NewTCP(
		transport.WithLoopbackGroups(n, 4),
		transport.WithReconnectBackoff(time.Millisecond, 10*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	lt, err := transport.NewLossy(tcp, transport.WithLoss(0.05), transport.WithLossSeed(12))
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	e, err := New(Config{
		Env: env.NewUniform(n), Agents: agents, Model: gossip.Push, Seed: 11, Ticks: 80,
		Transport: lt, TickEvery: tickPace(), Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mean := meanOf(t, e.Estimates())
	if math.Abs(mean-truth) > 0.2*truth {
		t.Errorf("mean estimate %v, want ≈ %v", mean, truth)
	}
	if tcp.Kills() == 0 {
		t.Error("loss over TCP produced no link kills")
	}
	t.Logf("mean %.2f truth %.2f sent %d dropped %d kills %d",
		mean, truth, e.Sent(), e.Dropped(), tcp.Kills())
}

// TestLiveColumnarOverTCPConverges drives the dense-column backend's
// batch plane over stream framing: whole shard waves as single frames,
// decoded straight back into columns — the columnar population works
// over TCP unchanged.
func TestLiveColumnarOverTCPConverges(t *testing.T) {
	const n = 1024
	values, truth := liveValues(n)
	tcp, err := transport.NewTCP(transport.WithLoopbackGroups(n, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	e, err := New(Config{
		Env: env.NewUniform(n), Population: NewColumnarPopulation(pushsum.NewColumnarAverage(values)),
		Model: gossip.Push, Seed: 13, Ticks: 80, Transport: tcp,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mean := meanOf(t, e.Estimates())
	if math.Abs(mean-truth) > 0.2*truth {
		t.Errorf("mean estimate %v, want ≈ %v", mean, truth)
	}
	if e.Sent() == 0 {
		t.Error("no messages sent")
	}
}

// TestBootstrapKeepAliveRepairsRestartedSeed is the seed-restart
// regression: bootstrap coverage used to be a one-shot handshake, so
// a seed process that died and came back started with an empty
// membership table and no joiner would ever announce again — its
// gossip had nowhere to go for the rest of the epoch. The KeepAlive
// re-announce loop (spawned by Engine.Run after bootstrap completes)
// is the repair channel: a surviving member keeps re-registering, and
// the reborn seed rebuilds full coverage from those announces alone.
func TestBootstrapKeepAliveRepairsRestartedSeed(t *testing.T) {
	const n = 64
	seed := newSpanTCP(t, 0, 32, "127.0.0.1:0")
	seedAddr := seed.GroupAddr(0)
	member := newSpanTCP(t, 32, 64, "127.0.0.1:0")
	defer member.Close()

	b := &Bootstrap{
		Seeds: []string{seedAddr}, Span: Span{Lo: 32, Hi: 64}, Total: n,
		Retry: 10 * time.Millisecond, Timeout: 20 * time.Second,
		ReAnnounce: 20 * time.Millisecond,
	}
	if err := b.Run(context.Background(), member); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if !member.Covers(n) || !seed.Covers(n) {
		t.Fatalf("handshake did not reach full coverage: member=%v seed=%v",
			member.Groups(), seed.Groups())
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go b.KeepAlive(ctx, member)

	// The seed dies mid-epoch and is reborn on the same address with
	// an empty table: it knows only its own span.
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}
	reborn := newSpanTCP(t, 0, 32, seedAddr)
	defer reborn.Close()
	if reborn.Covers(n) {
		t.Fatalf("reborn seed started with full coverage; restart not modeled")
	}

	deadline := time.Now().Add(15 * time.Second)
	for !reborn.Covers(n) {
		if time.Now().After(deadline) {
			t.Fatalf("reborn seed never recovered membership: %v", reborn.Groups())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBootstrapKeepAliveDisabled pins the opt-out: ReAnnounce < 0
// turns the keepalive off, so a restarted seed stays uncovered — the
// pre-repair behavior, available for callers that own re-registration
// some other way.
func TestBootstrapKeepAliveDisabled(t *testing.T) {
	const n = 64
	seed := newSpanTCP(t, 0, 32, "127.0.0.1:0")
	seedAddr := seed.GroupAddr(0)
	member := newSpanTCP(t, 32, 64, "127.0.0.1:0")
	defer member.Close()

	b := &Bootstrap{
		Seeds: []string{seedAddr}, Span: Span{Lo: 32, Hi: 64}, Total: n,
		Retry: 10 * time.Millisecond, Timeout: 20 * time.Second,
		ReAnnounce: -1,
	}
	if err := b.Run(context.Background(), member); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go b.KeepAlive(ctx, member) // must return immediately; nothing announces

	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}
	reborn := newSpanTCP(t, 0, 32, seedAddr)
	defer reborn.Close()
	time.Sleep(200 * time.Millisecond)
	if reborn.Covers(n) {
		t.Fatalf("reborn seed recovered with keepalive disabled: %v", reborn.Groups())
	}
}
