package live

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live/transport"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
)

// pushSumAgents builds n averaging hosts with values i%100 and returns
// the true average.
func pushSumAgents(n int) ([]gossip.Agent, float64) {
	agents := make([]gossip.Agent, n)
	var truth float64
	for i := 0; i < n; i++ {
		v := float64(i % 100)
		truth += v
		agents[i] = pushsum.NewAverage(gossip.NodeID(i), v)
	}
	return agents, truth / float64(n)
}

func meanOf(t *testing.T, ests []float64) float64 {
	t.Helper()
	if len(ests) == 0 {
		t.Fatal("no estimates")
	}
	var mean float64
	for _, v := range ests {
		mean += v
	}
	return mean / float64(len(ests))
}

// TestLivePushSumOverUDPWithLossConverges is the tentpole integration
// contract: Push-Sum at N=256 with every cross-host message traveling
// as a wire-encoded datagram through real loopback sockets (four host
// groups, four sockets) AND 20% injected loss still converges to the
// true average within the live engine's usual tolerance.
func TestLivePushSumOverUDPWithLossConverges(t *testing.T) {
	const n = 256
	u := env.NewUniform(n)
	agents, truth := pushSumAgents(n)
	udp, err := transport.NewUDPLoopback(n, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	e, err := New(Config{
		Env: u, Agents: agents, Model: gossip.Push, Seed: 11, Ticks: 80,
		Transport: &transport.Lossy{T: udp, P: 0.2, Seed: 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mean := meanOf(t, e.Estimates())
	if math.Abs(mean-truth) > 0.2*truth {
		t.Errorf("mean estimate %v, want ≈ %v", mean, truth)
	}
	if e.Sent() == 0 {
		t.Error("no messages sent")
	}
	if e.Dropped() == 0 {
		t.Error("20%% injected loss produced no counted drops")
	}
	t.Logf("mean %.2f truth %.2f sent %d dropped %d", mean, truth, e.Sent(), e.Dropped())
}

// TestLiveSketchResetOverUDPConverges runs the paper's dynamic
// counting protocol over the UDP transport: the RLE counter matrices
// survive the wire and the population count converges.
func TestLiveSketchResetOverUDPConverges(t *testing.T) {
	const n = 128
	u := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	// A 32×16 sketch (±14% expected error) keeps the per-tick datagram
	// volume low enough that the socket readers stay ahead of the
	// senders on a small CI runner; the protocol code path is identical
	// to the paper's 64×24.
	params := sketch.Params{Bins: 32, Levels: 16}
	for i := 0; i < n; i++ {
		agents[i] = sketchreset.New(gossip.NodeID(i), sketchreset.Config{
			Params: params, Identifiers: 1,
		})
	}
	udp, err := transport.NewUDPLoopback(n, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	// Count-Sketch-Reset's age cutoffs assume the population iterates
	// at loosely equal rates, so the hosts are paced in wall-clock
	// time — exactly what a radio duty cycle provides in deployment.
	// Sharded workers keep the goroutine count low enough that the
	// socket readers get scheduled even on a single-core runner; the
	// race detector multiplies decode cost, so the duty cycle
	// stretches with it.
	pace := 4 * time.Millisecond
	if raceEnabled {
		pace = 20 * time.Millisecond
	}
	e, err := New(Config{
		Env: u, Agents: agents, Model: gossip.Push, Seed: 21, Ticks: 40,
		Transport: udp, TickEvery: pace, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mean := meanOf(t, e.Estimates())
	if math.Abs(mean-n) > 0.4*n {
		t.Errorf("mean live count estimate %v, want ≈ %d", mean, n)
	}
}

// TestLiveSpanEnginesOverUDPConverge splits one 256-host population
// across two engines, each owning half through its own UDP transport —
// the in-test model of the two-process examples/live_udp demo,
// including the bind-then-exchange-addresses handshake.
func TestLiveSpanEnginesOverUDPConverge(t *testing.T) {
	const n = 256
	groups := []transport.Group{{Lo: 0, Hi: n / 2}, {Lo: n / 2, Hi: n}}
	mk := func(local int) *transport.UDP {
		cfg := transport.UDPConfig{Groups: append([]transport.Group(nil), groups...), Local: []int{local}}
		cfg.Groups[local].Addr = "127.0.0.1:0"
		tr, err := transport.NewUDP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	trA, trB := mk(0), mk(1)
	defer trA.Close()
	defer trB.Close()
	if err := trA.SetGroupAddr(1, trB.GroupAddr(1)); err != nil {
		t.Fatal(err)
	}
	if err := trB.SetGroupAddr(0, trA.GroupAddr(0)); err != nil {
		t.Fatal(err)
	}

	agents, truth := pushSumAgents(n)
	mkEngine := func(span Span, tr transport.Transport) *Engine {
		e, err := New(Config{
			Env: env.NewUniform(n), Agents: agents[span.Lo:span.Hi],
			Model: gossip.Push, Seed: 31, Ticks: 80,
			Transport: tr, Span: span,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	ea := mkEngine(Span{Lo: 0, Hi: n / 2}, trA)
	eb := mkEngine(Span{Lo: n / 2, Hi: n}, trB)

	var wg sync.WaitGroup
	for _, e := range []*Engine{ea, eb} {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			if err := e.Run(context.Background()); err != nil {
				t.Error(err)
			}
		}(e)
	}
	wg.Wait()

	ests := append(ea.Estimates(), eb.Estimates()...)
	mean := meanOf(t, ests)
	if math.Abs(mean-truth) > 0.2*truth {
		t.Errorf("mean estimate %v, want ≈ %v", mean, truth)
	}
	if trA.Sent() == 0 || trB.Sent() == 0 {
		t.Errorf("both spans must transmit: sent %d / %d", trA.Sent(), trB.Sent())
	}
}

// TestLiveExplicitChannelTransportMatchesDefault pins that handing the
// engine the extracted channel transport explicitly behaves like the
// nil-Transport default: the protocols converge and the engine's
// accounting flows through the transport.
func TestLiveExplicitChannelTransportMatchesDefault(t *testing.T) {
	const n = 300
	u := env.NewUniform(n)
	agents, truth := pushSumAgents(n)
	ch := transport.NewChannel(n, 0)
	e, err := New(Config{
		Env: u, Agents: agents, Model: gossip.Push, Seed: 1, Ticks: 60,
		Transport: ch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mean := meanOf(t, e.Estimates())
	if math.Abs(mean-truth) > 0.2*truth {
		t.Errorf("mean estimate %v, want ≈ %v", mean, truth)
	}
	if e.Sent() <= ch.Sent() {
		t.Errorf("engine Sent %d must include self shares beyond transport's %d", e.Sent(), ch.Sent())
	}
	if e.Dropped() != ch.Dropped() {
		t.Errorf("engine Dropped %d != transport Dropped %d", e.Dropped(), ch.Dropped())
	}
}

// TestLiveCancellationReturnsCtxErrEveryShard exercises the
// cancellation edge path at every worker setting: whichever shard
// observes the cancelled context must surface ctx.Err(), and Run must
// report it rather than nil.
func TestLiveCancellationReturnsCtxErrEveryShard(t *testing.T) {
	const n = 64
	for _, workers := range []int{0, 1, 4, 16} {
		u := env.NewUniform(n)
		agents, _ := pushSumAgents(n)
		e, err := New(Config{
			Env: u, Agents: agents, Model: gossip.Push, Seed: 7,
			Ticks: 1 << 30, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // every shard sees a cancelled context on its first tick
		if err := e.Run(ctx); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: Run = %v, want context.Canceled", workers, err)
		}
	}

	// Mid-run deadline: the shards are deep in their tick loops when
	// the context expires; Run must still return the context's error.
	u := env.NewUniform(n)
	agents, _ := pushSumAgents(n)
	e, err := New(Config{
		Env: u, Agents: agents, Model: gossip.Push, Seed: 8,
		Ticks: 1 << 30, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := e.Run(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Run = %v, want context.DeadlineExceeded", err)
	}
}

// TestLiveDroppedAccountingUnderLossy pins the books: with a loss
// injector over an amply-buffered channel transport, the engine's
// Dropped() must match the injected probability within statistical
// tolerance, and sent+dropped must cover every cross-host attempt.
func TestLiveDroppedAccountingUnderLossy(t *testing.T) {
	const n, p = 200, 0.3
	u := env.NewUniform(n)
	agents, _ := pushSumAgents(n)
	lt := &transport.Lossy{T: transport.NewChannel(n, 4096), P: p, Seed: 99}
	e, err := New(Config{
		Env: u, Agents: agents, Model: gossip.Push, Seed: 9, Ticks: 50,
		Transport: lt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	attempts := lt.Sent() + lt.Dropped()
	if attempts == 0 {
		t.Fatal("no cross-host attempts")
	}
	rate := float64(e.Dropped()) / float64(attempts)
	if math.Abs(rate-p) > 0.03 {
		t.Errorf("observed drop rate %.4f over %d attempts, want ≈ %.2f", rate, attempts, p)
	}
	if e.Dropped() != lt.Dropped() {
		t.Errorf("engine Dropped %d != transport Dropped %d", e.Dropped(), lt.Dropped())
	}
}

// TestLiveSpanValidation pins the partial-population guard rails.
func TestLiveSpanValidation(t *testing.T) {
	u := env.NewUniform(4)
	agents, _ := pushSumAgents(2)
	ch := transport.NewChannel(4, 0)

	if _, err := New(Config{Env: u, Agents: agents, Ticks: 1, Span: Span{Lo: 0, Hi: 2}}); err == nil {
		t.Error("Span without Transport accepted")
	}
	if _, err := New(Config{Env: u, Agents: agents, Ticks: 1, Transport: ch, Span: Span{Lo: 2, Hi: 6}}); err == nil {
		t.Error("Span beyond environment accepted")
	}
	if _, err := New(Config{Env: u, Agents: agents, Ticks: 1, Transport: ch, Span: Span{Lo: 1, Hi: 2}}); err == nil {
		t.Error("agent count != span width accepted")
	}
	if _, err := New(Config{
		Env: u, Agents: agents, Ticks: 1, Transport: ch,
		Model: gossip.PushPull, Span: Span{Lo: 0, Hi: 2},
	}); err == nil {
		t.Error("push/pull Span accepted")
	}
	if _, err := New(Config{
		Env: u, Agents: agents, Ticks: 1,
		Transport: &transport.Lossy{T: ch, P: 2},
	}); err == nil {
		t.Error("invalid Lossy accepted")
	}
	if _, err := New(Config{Env: u, Agents: agents, Ticks: 1, Transport: ch, Span: Span{Lo: 0, Hi: 2}}); err != nil {
		t.Errorf("valid span config rejected: %v", err)
	}
}
