//go:build race

package live

// raceEnabled lets timing-sensitive live tests stretch their duty
// cycle when the race detector multiplies CPU cost: the socket readers
// must keep up with the senders for age-based protocols to converge.
const raceEnabled = true
