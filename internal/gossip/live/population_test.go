package live

import (
	"context"
	"math"
	"testing"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
)

// TestLiveDeprecatedAgentsFieldIsAShim pins the compatibility contract
// of the API redesign: a Config that still sets the deprecated Agents
// field must come out as an AgentPopulation wrapping that exact slice —
// same backing array, not a copy — so every pre-redesign caller keeps
// its aliasing semantics (tests mutate agents after New and expect the
// engine to see it).
func TestLiveDeprecatedAgentsFieldIsAShim(t *testing.T) {
	const n = 32
	u := env.NewUniform(n)
	agents, _ := pushSumAgents(n)
	e, err := New(Config{Env: u, Agents: agents, Model: gossip.Push, Seed: 1, Ticks: 1})
	if err != nil {
		t.Fatal(err)
	}
	ap, ok := e.Population().(*AgentPopulation)
	if !ok {
		t.Fatalf("Population() = %T, want *AgentPopulation", e.Population())
	}
	got := ap.Agents()
	if len(got) != n || &got[0] != &agents[0] {
		t.Error("AgentPopulation must alias the Config.Agents slice, not copy it")
	}
}

// TestLivePopulationConfigValidation pins the New-time errors around
// the redesigned field pair: exactly one of Population and the
// deprecated Agents must be set, and the messages must steer callers
// to the new constructors.
func TestLivePopulationConfigValidation(t *testing.T) {
	u := env.NewUniform(4)
	agents, _ := pushSumAgents(4)

	if _, err := New(Config{Env: u, Ticks: 1}); err == nil {
		t.Error("neither Population nor Agents set: accepted")
	}
	if _, err := New(Config{
		Env: u, Ticks: 1,
		Population: NewAgentPopulation(agents), Agents: agents,
	}); err == nil {
		t.Error("both Population and Agents set: accepted")
	}
	if _, err := New(Config{Env: u, Ticks: 1, Population: NewAgentPopulation(agents)}); err != nil {
		t.Errorf("valid Population config rejected: %v", err)
	}
}

// TestLiveAgentPopulationMatchesDeprecatedPath runs the same workload
// through both construction paths — the deprecated Agents field and an
// explicit NewAgentPopulation — and requires both to converge to the
// truth within the engine's usual tolerance. (Live runs are
// wall-clock-scheduled, so the pin is behavioral equivalence, not
// byte-identical transcripts; the shim test above covers the aliasing
// half of the contract.)
func TestLiveAgentPopulationMatchesDeprecatedPath(t *testing.T) {
	const n = 256
	run := func(explicit bool) float64 {
		u := env.NewUniform(n)
		agents, _ := pushSumAgents(n)
		cfg := Config{Env: u, Model: gossip.Push, Seed: 5, Ticks: 60}
		if explicit {
			cfg.Population = NewAgentPopulation(agents)
		} else {
			cfg.Agents = agents
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return meanOf(t, e.Estimates())
	}
	_, truth := pushSumAgents(n)
	for _, explicit := range []bool{false, true} {
		mean := run(explicit)
		if math.Abs(mean-truth) > 0.2*truth {
			t.Errorf("explicit=%v: mean estimate %v, want ≈ %v", explicit, mean, truth)
		}
	}
}
