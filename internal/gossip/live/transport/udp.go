package transport

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"dynagg/internal/gossip"
	"dynagg/internal/wire"
)

// Group is one contiguous slice [Lo, Hi) of the host population that
// shares a single UDP socket — the paper's picture of many sensors
// behind one radio. A process binds the groups it owns and addresses
// the rest by Addr.
type Group struct {
	Lo, Hi gossip.NodeID
	// Addr is the group's UDP address. For a local group it is the
	// bind address ("127.0.0.1:0" picks an ephemeral port; read the
	// outcome with GroupAddr). For a remote group it may be left empty
	// at construction and supplied later via SetGroupAddr — messages
	// to a group with no known address are dropped, exactly like
	// transmissions to a host that is out of range.
	Addr string
}

// UDPConfig assembles a UDP transport.
type UDPConfig struct {
	// Groups partitions the population; groups must be non-empty,
	// non-overlapping, and sorted by Lo.
	Groups []Group
	// Local lists the indices into Groups this process binds sockets
	// for. Only local hosts can send and receive here.
	Local []int
	// QueueCapacity bounds each local host's receive queue (0 means
	// DefaultQueue). The queue is the post-kernel stage of the radio:
	// datagrams the reader has pulled off the socket but the host has
	// not yet drained. Overflow drops, counted.
	QueueCapacity int
	// ReadBuffer, if positive, sets SO_RCVBUF on each local socket.
	// Shrinking it makes the kernel stage of the radio saturate
	// earlier; those losses are silent (the kernel drops before the
	// transport sees anything), which is the point.
	ReadBuffer int
	// MaxDatagram bounds encoded message size (0 means 64 KiB, the
	// practical UDP ceiling). Messages that encode larger are dropped.
	MaxDatagram int
}

// UDP sends every payload through the internal/wire binary encodings —
// the encodings built for the paper's §IV-B bandwidth argument —
// prefixed with a self-describing envelope header (protocol kind,
// destination, sender, tick), over real loopback sockets. Message loss
// is not simulated here; it happens, in the kernel's socket buffers,
// whenever receivers fall behind.
type UDP struct {
	cfg    UDPConfig
	conns  []*net.UDPConn // parallel to cfg.Local
	addrs  []atomic.Pointer[net.UDPAddr]
	connOf map[int]*net.UDPConn // group index -> local socket
	// hostQ is the per-host inbox plane, built lazily on first use
	// (reader unicast delivery or Drain): a million-host columnar run
	// moves everything over the batch plane, and a quarter-gigabyte of
	// buffered channels per 64k hosts must not be paid for a plane
	// that never carries a message.
	hostQ     atomic.Pointer[map[gossip.NodeID]chan any]
	hostQOnce sync.Once
	batchQ    []chan batchItem // parallel to cfg.Groups; nil for remote groups
	bufs      sync.Pool
	sent      atomic.Int64
	dropped   atomic.Int64
	closed    atomic.Bool
	wg        sync.WaitGroup
}

var _ Transport = (*UDP)(nil)

// NewUDP assembles the configuration from options — a full UDPConfig
// works as one (field-wise overlay), so both styles compose:
//
//	NewUDP(cfg)
//	NewUDP(WithLoopbackGroups(1024, 8), WithReadBuffer(4<<20))
//
// then binds one socket per local group and starts its reader. The
// transport is usable immediately for local traffic; remote groups
// whose Addr was left empty need SetGroupAddr before messages to them
// can leave.
func NewUDP(opts ...UDPOption) (*UDP, error) {
	var cfg UDPConfig
	for _, opt := range opts {
		opt.applyUDP(&cfg)
	}
	return newUDP(cfg)
}

// newUDP builds the transport from a resolved configuration.
func newUDP(cfg UDPConfig) (*UDP, error) {
	if len(cfg.Groups) == 0 {
		return nil, fmt.Errorf("transport: UDPConfig.Groups is empty")
	}
	if len(cfg.Local) == 0 {
		return nil, fmt.Errorf("transport: UDPConfig.Local is empty")
	}
	for i, g := range cfg.Groups {
		if g.Lo >= g.Hi {
			return nil, fmt.Errorf("transport: group %d range [%d,%d) is empty", i, g.Lo, g.Hi)
		}
		if i > 0 && g.Lo < cfg.Groups[i-1].Hi {
			return nil, fmt.Errorf("transport: group %d overlaps or is unsorted", i)
		}
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = DefaultQueue
	}
	if cfg.MaxDatagram <= 0 {
		cfg.MaxDatagram = 64 << 10
	}
	u := &UDP{
		cfg:    cfg,
		addrs:  make([]atomic.Pointer[net.UDPAddr], len(cfg.Groups)),
		connOf: make(map[int]*net.UDPConn, len(cfg.Local)),
		batchQ: make([]chan batchItem, len(cfg.Groups)),
	}
	u.bufs.New = func() any {
		b := make([]byte, 0, 512)
		return &b
	}
	for i, g := range cfg.Groups {
		if g.Addr == "" {
			continue
		}
		addr, err := net.ResolveUDPAddr("udp", g.Addr)
		if err != nil {
			u.closeConns()
			return nil, fmt.Errorf("transport: group %d addr %q: %w", i, g.Addr, err)
		}
		u.addrs[i].Store(addr)
	}
	for _, gi := range cfg.Local {
		if gi < 0 || gi >= len(cfg.Groups) {
			u.closeConns()
			return nil, fmt.Errorf("transport: local group index %d out of range", gi)
		}
		bind := u.addrs[gi].Load()
		if bind == nil {
			u.closeConns()
			return nil, fmt.Errorf("transport: local group %d needs a bind address", gi)
		}
		conn, err := net.ListenUDP("udp", bind)
		if err != nil {
			u.closeConns()
			return nil, fmt.Errorf("transport: bind group %d: %w", gi, err)
		}
		if cfg.ReadBuffer > 0 {
			if err := conn.SetReadBuffer(cfg.ReadBuffer); err != nil {
				conn.Close()
				u.closeConns()
				return nil, fmt.Errorf("transport: SO_RCVBUF group %d: %w", gi, err)
			}
		}
		// Rebind resolved the port (":0" ephemeral); record the real
		// address so Send and GroupAddr see it.
		u.addrs[gi].Store(conn.LocalAddr().(*net.UDPAddr))
		u.conns = append(u.conns, conn)
		u.connOf[gi] = conn
		u.batchQ[gi] = make(chan batchItem, cfg.QueueCapacity)
	}
	for _, conn := range u.conns {
		u.wg.Add(1)
		go u.reader(conn)
	}
	return u, nil
}

// NewUDPLoopback is the single-process convenience constructor: hosts
// [0, hosts) split into `groups` contiguous groups, every group local,
// each bound to an ephemeral loopback port. All cross-host traffic
// then travels through real kernel sockets.
func NewUDPLoopback(hosts, groups, queueCapacity int) (*UDP, error) {
	if hosts <= 0 {
		return nil, fmt.Errorf("transport: hosts must be positive, got %d", hosts)
	}
	return NewUDP(WithLoopbackGroups(hosts, groups), WithQueueCapacity(queueCapacity))
}

// GroupAddr returns the group's resolved UDP address ("" if unknown) —
// for a local group, the actual bound socket address, which is what a
// peer process needs to be told.
func (u *UDP) GroupAddr(group int) string {
	if group < 0 || group >= len(u.addrs) {
		return ""
	}
	if addr := u.addrs[group].Load(); addr != nil {
		return addr.String()
	}
	return ""
}

// SetGroupAddr supplies (or replaces) a remote group's address, the
// second half of the two-process handshake: bind locally first, learn
// the peer's ephemeral address, then aim at it.
func (u *UDP) SetGroupAddr(group int, addr string) error {
	if group < 0 || group >= len(u.cfg.Groups) {
		return fmt.Errorf("transport: group index %d out of range", group)
	}
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: group %d addr %q: %w", group, addr, err)
	}
	u.addrs[group].Store(a)
	return nil
}

// groupOf locates the group owning a host, or -1.
func (u *UDP) groupOf(id gossip.NodeID) int {
	gs := u.cfg.Groups
	i := sort.Search(len(gs), func(i int) bool { return gs[i].Hi > id })
	if i < len(gs) && id >= gs[i].Lo {
		return i
	}
	return -1
}

// Send implements Transport: wire-encode and fire one datagram from
// the sender's group socket. Every failure mode — unroutable host,
// unknown peer address, unencodable or oversized payload, dead socket
// — is a drop, never an error that stops the protocol: gossip
// tolerates loss by design.
func (u *UDP) Send(from, to gossip.NodeID, tick int, payload any) bool {
	gi := u.groupOf(to)
	if gi < 0 || u.closed.Load() {
		u.dropped.Add(1)
		return false
	}
	addr := u.addrs[gi].Load()
	if addr == nil {
		u.dropped.Add(1)
		return false
	}
	conn := u.connOf[u.groupOf(from)]
	if conn == nil {
		conn = u.conns[0]
	}
	bp := u.bufs.Get().(*[]byte)
	buf, err := appendEnvelope((*bp)[:0], from, to, tick, payload)
	if err == nil && len(buf) > u.cfg.MaxDatagram {
		err = fmt.Errorf("transport: %d-byte datagram exceeds MaxDatagram %d", len(buf), u.cfg.MaxDatagram)
	}
	if err == nil {
		_, err = conn.WriteToUDP(buf, addr)
	}
	if buf != nil {
		*bp = buf
	}
	u.bufs.Put(bp)
	if err != nil {
		u.dropped.Add(1)
		return false
	}
	u.sent.Add(1)
	return true
}

// reader pulls datagrams off one group socket, decodes them, and
// queues them for their destination host. A full queue or an
// undecodable datagram is a counted drop; the kernel's own buffer
// overflow upstream of here is the silent kind.
func (u *UDP) reader(conn *net.UDPConn) {
	defer u.wg.Done()
	buf := make([]byte, u.cfg.MaxDatagram)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			if u.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		h, rest, err := wire.DecodeHeader(buf[:n])
		if err != nil {
			u.dropped.Add(1)
			continue
		}
		if h.Kind == kindColumnarBatch {
			// Batch datagram: To is the destination group, From the
			// message count. The body moves to a pooled buffer whole;
			// the columnar live path decodes it at drain time.
			var q chan batchItem
			if int(h.To) < len(u.batchQ) {
				q = u.batchQ[h.To]
			}
			if q == nil {
				u.dropped.Add(int64(h.From))
				continue
			}
			bp := u.bufs.Get().(*[]byte)
			*bp = append((*bp)[:0], rest...)
			select {
			case q <- batchItem{buf: bp, msgs: int(h.From)}:
			default:
				u.bufs.Put(bp)
				u.dropped.Add(int64(h.From))
			}
			continue
		}
		_, payload, err := decodePayload(h, rest)
		if err != nil {
			u.dropped.Add(1)
			continue
		}
		q := u.hostQueues()[gossip.NodeID(h.To)]
		if q == nil {
			u.dropped.Add(1)
			continue
		}
		select {
		case q <- payload:
		default:
			u.dropped.Add(1)
		}
	}
}

// BatchGroups implements Batcher: the socket groups double as batch
// groups.
func (u *UDP) BatchGroups() int { return len(u.cfg.Groups) }

// BatchGroup implements Batcher.
func (u *UDP) BatchGroup(g int) (lo, hi gossip.NodeID) {
	return u.cfg.Groups[g].Lo, u.cfg.Groups[g].Hi
}

// MaxBatchBody implements Batcher: MaxDatagram minus worst-case
// framing.
func (u *UDP) MaxBatchBody() int {
	max := u.cfg.MaxDatagram
	if max > maxUDPPayload {
		max = maxUDPPayload
	}
	return max - maxBatchHeader
}

// SendBatch implements Batcher: one datagram carrying a whole shard's
// wave to one destination group — header (kind, group, message count,
// tick) plus the opaque record body — written from the destination
// group's own socket when it is local (spreading loopback write
// contention), any local socket otherwise. Failure modes are counted
// drops of all msgs messages, mirroring Send.
func (u *UDP) SendBatch(group, tick, msgs int, body []byte) bool {
	if u.closed.Load() || group < 0 || group >= len(u.cfg.Groups) || len(body) > u.MaxBatchBody() {
		u.dropped.Add(int64(msgs))
		return false
	}
	addr := u.addrs[group].Load()
	if addr == nil {
		u.dropped.Add(int64(msgs))
		return false
	}
	conn := u.connOf[group]
	if conn == nil {
		conn = u.conns[0]
	}
	bp := u.bufs.Get().(*[]byte)
	buf := wire.AppendHeader((*bp)[:0], wire.Header{
		Kind: kindColumnarBatch, To: int32(group), From: int32(msgs), Tick: int32(tick),
	})
	buf = append(buf, body...)
	_, err := conn.WriteToUDP(buf, addr)
	*bp = buf
	u.bufs.Put(bp)
	if err != nil {
		u.dropped.Add(int64(msgs))
		return false
	}
	u.sent.Add(int64(msgs))
	return true
}

// DrainBatch implements Batcher.
func (u *UDP) DrainBatch(group int, fn func(body []byte)) {
	if group < 0 || group >= len(u.batchQ) || u.batchQ[group] == nil {
		return
	}
	for {
		select {
		case it := <-u.batchQ[group]:
			fn(*it.buf)
			u.bufs.Put(it.buf)
		default:
			return
		}
	}
}

// hostQueues returns the per-host inbox map — one buffered channel per
// local-group host — building it on first use. The lazy build keeps
// the batch-only columnar path from paying gigabytes for a plane it
// never touches; classic engines hit Drain on their first tick, so for
// them the plane exists microseconds into Run (a datagram landing even
// before that is dropped, which at-most-once delivery already allows).
func (u *UDP) hostQueues() map[gossip.NodeID]chan any {
	if m := u.hostQ.Load(); m != nil {
		return *m
	}
	u.hostQOnce.Do(func() {
		m := make(map[gossip.NodeID]chan any)
		for _, gi := range u.cfg.Local {
			g := u.cfg.Groups[gi]
			for id := g.Lo; id < g.Hi; id++ {
				m[id] = make(chan any, u.cfg.QueueCapacity)
			}
		}
		u.hostQ.Store(&m)
	})
	return *u.hostQ.Load()
}

// Drain implements Transport.
func (u *UDP) Drain(id gossip.NodeID, fn func(payload any)) {
	q := u.hostQueues()[id]
	if q == nil {
		return
	}
	for {
		select {
		case p := <-q:
			fn(p)
		default:
			return
		}
	}
}

// Sent implements Transport: datagrams handed to the kernel. Unlike
// the channel transport, "sent" does not imply the receiver had room —
// the datagram may still die in a socket buffer, or be counted again
// in Dropped when the receive queue sheds it, so Sent+Dropped can
// exceed the number of Send calls. That asymmetry is exactly the
// radio semantics the live engine exists to exercise.
func (u *UDP) Sent() int64 { return u.sent.Load() }

// Dropped implements Transport: encode failures, unroutable
// destinations, and receiver-side losses (undecodable datagrams,
// receive-queue overflow — both counted after the same message was
// counted Sent). Kernel-buffer losses are invisible here by nature.
func (u *UDP) Dropped() int64 { return u.dropped.Load() }

// Close implements Transport: closes every socket and waits for the
// readers to exit.
func (u *UDP) Close() error {
	if u.closed.Swap(true) {
		return nil
	}
	err := u.closeConns()
	u.wg.Wait()
	return err
}

func (u *UDP) closeConns() error {
	var first error
	for _, c := range u.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
