package transport

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"dynagg/internal/gossip"
)

// Group is one contiguous slice [Lo, Hi) of the host population that
// shares a single UDP socket — the paper's picture of many sensors
// behind one radio. A process binds the groups it owns and addresses
// the rest by Addr.
type Group struct {
	Lo, Hi gossip.NodeID
	// Addr is the group's UDP address. For a local group it is the
	// bind address ("127.0.0.1:0" picks an ephemeral port; read the
	// outcome with GroupAddr). For a remote group it may be left empty
	// at construction and supplied later via SetGroupAddr — messages
	// to a group with no known address are dropped, exactly like
	// transmissions to a host that is out of range.
	Addr string
}

// UDPConfig assembles a UDP transport.
type UDPConfig struct {
	// Groups partitions the population; groups must be non-empty,
	// non-overlapping, and sorted by Lo.
	Groups []Group
	// Local lists the indices into Groups this process binds sockets
	// for. Only local hosts can send and receive here.
	Local []int
	// QueueCapacity bounds each local host's receive queue (0 means
	// DefaultQueue). The queue is the post-kernel stage of the radio:
	// datagrams the reader has pulled off the socket but the host has
	// not yet drained. Overflow drops, counted.
	QueueCapacity int
	// ReadBuffer, if positive, sets SO_RCVBUF on each local socket.
	// Shrinking it makes the kernel stage of the radio saturate
	// earlier; those losses are silent (the kernel drops before the
	// transport sees anything), which is the point.
	ReadBuffer int
	// MaxDatagram bounds encoded message size (0 means 64 KiB, the
	// practical UDP ceiling). Messages that encode larger are dropped.
	MaxDatagram int
}

// UDP sends every payload through the internal/wire binary encodings —
// the encodings built for the paper's §IV-B bandwidth argument —
// prefixed with a self-describing envelope header (protocol kind,
// destination, sender, tick), over real loopback sockets. Message loss
// is not simulated here; it happens, in the kernel's socket buffers,
// whenever receivers fall behind.
type UDP struct {
	cfg     UDPConfig
	conns   []*net.UDPConn // parallel to cfg.Local
	addrs   []atomic.Pointer[net.UDPAddr]
	connOf  map[int]*net.UDPConn // group index -> local socket
	queues  map[gossip.NodeID]chan any
	bufs    sync.Pool
	sent    atomic.Int64
	dropped atomic.Int64
	closed  atomic.Bool
	wg      sync.WaitGroup
}

var _ Transport = (*UDP)(nil)

// NewUDP binds one socket per local group and starts its reader. The
// transport is usable immediately for local traffic; remote groups
// whose Addr was left empty need SetGroupAddr before messages to them
// can leave.
func NewUDP(cfg UDPConfig) (*UDP, error) {
	if len(cfg.Groups) == 0 {
		return nil, fmt.Errorf("transport: UDPConfig.Groups is empty")
	}
	if len(cfg.Local) == 0 {
		return nil, fmt.Errorf("transport: UDPConfig.Local is empty")
	}
	for i, g := range cfg.Groups {
		if g.Lo >= g.Hi {
			return nil, fmt.Errorf("transport: group %d range [%d,%d) is empty", i, g.Lo, g.Hi)
		}
		if i > 0 && g.Lo < cfg.Groups[i-1].Hi {
			return nil, fmt.Errorf("transport: group %d overlaps or is unsorted", i)
		}
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = DefaultQueue
	}
	if cfg.MaxDatagram <= 0 {
		cfg.MaxDatagram = 64 << 10
	}
	u := &UDP{
		cfg:    cfg,
		addrs:  make([]atomic.Pointer[net.UDPAddr], len(cfg.Groups)),
		connOf: make(map[int]*net.UDPConn, len(cfg.Local)),
		queues: make(map[gossip.NodeID]chan any),
	}
	u.bufs.New = func() any {
		b := make([]byte, 0, 512)
		return &b
	}
	for i, g := range cfg.Groups {
		if g.Addr == "" {
			continue
		}
		addr, err := net.ResolveUDPAddr("udp", g.Addr)
		if err != nil {
			u.closeConns()
			return nil, fmt.Errorf("transport: group %d addr %q: %w", i, g.Addr, err)
		}
		u.addrs[i].Store(addr)
	}
	for _, gi := range cfg.Local {
		if gi < 0 || gi >= len(cfg.Groups) {
			u.closeConns()
			return nil, fmt.Errorf("transport: local group index %d out of range", gi)
		}
		g := cfg.Groups[gi]
		bind := u.addrs[gi].Load()
		if bind == nil {
			u.closeConns()
			return nil, fmt.Errorf("transport: local group %d needs a bind address", gi)
		}
		conn, err := net.ListenUDP("udp", bind)
		if err != nil {
			u.closeConns()
			return nil, fmt.Errorf("transport: bind group %d: %w", gi, err)
		}
		if cfg.ReadBuffer > 0 {
			if err := conn.SetReadBuffer(cfg.ReadBuffer); err != nil {
				conn.Close()
				u.closeConns()
				return nil, fmt.Errorf("transport: SO_RCVBUF group %d: %w", gi, err)
			}
		}
		// Rebind resolved the port (":0" ephemeral); record the real
		// address so Send and GroupAddr see it.
		u.addrs[gi].Store(conn.LocalAddr().(*net.UDPAddr))
		u.conns = append(u.conns, conn)
		u.connOf[gi] = conn
		for id := g.Lo; id < g.Hi; id++ {
			u.queues[id] = make(chan any, cfg.QueueCapacity)
		}
	}
	// Readers start only after every local group's queues exist: they
	// read the queue map concurrently, so it must be complete (and
	// frozen) first.
	for _, conn := range u.conns {
		u.wg.Add(1)
		go u.reader(conn)
	}
	return u, nil
}

// NewUDPLoopback is the single-process convenience constructor: hosts
// [0, hosts) split into `groups` contiguous groups, every group local,
// each bound to an ephemeral loopback port. All cross-host traffic
// then travels through real kernel sockets.
func NewUDPLoopback(hosts, groups, queueCapacity int) (*UDP, error) {
	if hosts <= 0 {
		return nil, fmt.Errorf("transport: hosts must be positive, got %d", hosts)
	}
	if groups <= 0 {
		groups = 1
	}
	if groups > hosts {
		groups = hosts
	}
	cfg := UDPConfig{QueueCapacity: queueCapacity}
	for g := 0; g < groups; g++ {
		cfg.Groups = append(cfg.Groups, Group{
			Lo:   gossip.NodeID(g * hosts / groups),
			Hi:   gossip.NodeID((g + 1) * hosts / groups),
			Addr: "127.0.0.1:0",
		})
		cfg.Local = append(cfg.Local, g)
	}
	return NewUDP(cfg)
}

// GroupAddr returns the group's resolved UDP address ("" if unknown) —
// for a local group, the actual bound socket address, which is what a
// peer process needs to be told.
func (u *UDP) GroupAddr(group int) string {
	if group < 0 || group >= len(u.addrs) {
		return ""
	}
	if addr := u.addrs[group].Load(); addr != nil {
		return addr.String()
	}
	return ""
}

// SetGroupAddr supplies (or replaces) a remote group's address, the
// second half of the two-process handshake: bind locally first, learn
// the peer's ephemeral address, then aim at it.
func (u *UDP) SetGroupAddr(group int, addr string) error {
	if group < 0 || group >= len(u.cfg.Groups) {
		return fmt.Errorf("transport: group index %d out of range", group)
	}
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("transport: group %d addr %q: %w", group, addr, err)
	}
	u.addrs[group].Store(a)
	return nil
}

// groupOf locates the group owning a host, or -1.
func (u *UDP) groupOf(id gossip.NodeID) int {
	gs := u.cfg.Groups
	i := sort.Search(len(gs), func(i int) bool { return gs[i].Hi > id })
	if i < len(gs) && id >= gs[i].Lo {
		return i
	}
	return -1
}

// Send implements Transport: wire-encode and fire one datagram from
// the sender's group socket. Every failure mode — unroutable host,
// unknown peer address, unencodable or oversized payload, dead socket
// — is a drop, never an error that stops the protocol: gossip
// tolerates loss by design.
func (u *UDP) Send(from, to gossip.NodeID, tick int, payload any) bool {
	gi := u.groupOf(to)
	if gi < 0 || u.closed.Load() {
		u.dropped.Add(1)
		return false
	}
	addr := u.addrs[gi].Load()
	if addr == nil {
		u.dropped.Add(1)
		return false
	}
	conn := u.connOf[u.groupOf(from)]
	if conn == nil {
		conn = u.conns[0]
	}
	bp := u.bufs.Get().(*[]byte)
	buf, err := appendEnvelope((*bp)[:0], from, to, tick, payload)
	if err == nil && len(buf) > u.cfg.MaxDatagram {
		err = fmt.Errorf("transport: %d-byte datagram exceeds MaxDatagram %d", len(buf), u.cfg.MaxDatagram)
	}
	if err == nil {
		_, err = conn.WriteToUDP(buf, addr)
	}
	if buf != nil {
		*bp = buf
	}
	u.bufs.Put(bp)
	if err != nil {
		u.dropped.Add(1)
		return false
	}
	u.sent.Add(1)
	return true
}

// reader pulls datagrams off one group socket, decodes them, and
// queues them for their destination host. A full queue or an
// undecodable datagram is a counted drop; the kernel's own buffer
// overflow upstream of here is the silent kind.
func (u *UDP) reader(conn *net.UDPConn) {
	defer u.wg.Done()
	buf := make([]byte, u.cfg.MaxDatagram)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			if u.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		h, payload, err := decodeEnvelope(buf[:n])
		if err != nil {
			u.dropped.Add(1)
			continue
		}
		q := u.queues[gossip.NodeID(h.To)]
		if q == nil {
			u.dropped.Add(1)
			continue
		}
		select {
		case q <- payload:
		default:
			u.dropped.Add(1)
		}
	}
}

// Drain implements Transport.
func (u *UDP) Drain(id gossip.NodeID, fn func(payload any)) {
	q := u.queues[id]
	if q == nil {
		return
	}
	for {
		select {
		case p := <-q:
			fn(p)
		default:
			return
		}
	}
}

// Sent implements Transport: datagrams handed to the kernel. Unlike
// the channel transport, "sent" does not imply the receiver had room —
// the datagram may still die in a socket buffer, or be counted again
// in Dropped when the receive queue sheds it, so Sent+Dropped can
// exceed the number of Send calls. That asymmetry is exactly the
// radio semantics the live engine exists to exercise.
func (u *UDP) Sent() int64 { return u.sent.Load() }

// Dropped implements Transport: encode failures, unroutable
// destinations, and receiver-side losses (undecodable datagrams,
// receive-queue overflow — both counted after the same message was
// counted Sent). Kernel-buffer losses are invisible here by nature.
func (u *UDP) Dropped() int64 { return u.dropped.Load() }

// Close implements Transport: closes every socket and waits for the
// readers to exit.
func (u *UDP) Close() error {
	if u.closed.Swap(true) {
		return nil
	}
	err := u.closeConns()
	u.wg.Wait()
	return err
}

func (u *UDP) closeConns() error {
	var first error
	for _, c := range u.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
