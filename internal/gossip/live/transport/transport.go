// Package transport decouples the live gossip engine from the medium
// its messages travel over. The engine used to own a slice of buffered
// Go channels; that plumbing is now behind the Transport interface so
// the same protocol code can run over in-process channels (the test
// default, byte-for-byte the old behavior), over real UDP sockets with
// wire-encoded datagrams (package-level loopback today, one hop from a
// real radio), or over either with injected loss — the environment the
// paper's protocols are actually designed for.
//
// A Transport moves payloads between hosts identified by gossip.NodeID
// and owns the sent/dropped accounting. The channel transport decides
// a message's fate at a single station, so each message is counted
// exactly once (sent XOR dropped); a networked transport has two
// stations — the sender's hand-off to the kernel and the receiver's
// queue — and a message that clears the first but dies at the second
// appears in both counters (see UDP.Sent). Delivery is at-most-once
// and unordered, like the saturated radio of the paper's §II: the
// protocols must tolerate both, so the transport never retries and
// never blocks the sender.
package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dynagg/internal/gossip"
	"dynagg/internal/xrand"
)

// DefaultQueue is the per-host receive queue capacity used when a
// configuration leaves it zero — the same default the live engine has
// always used for its inboxes.
const DefaultQueue = 256

// Transport moves protocol payloads between live hosts. Self messages
// never reach a Transport: the live engine delivers a host's retained
// share in-process within the emitting tick (mass must not evaporate),
// so implementations only see cross-host traffic.
//
// Implementations must be safe for concurrent use: every host's driver
// goroutine calls Send and Drain without external synchronization.
type Transport interface {
	// Send attempts to deliver payload from one host to another at the
	// sender's local tick, without blocking. It reports whether the
	// message was accepted toward delivery; false means the message is
	// gone (and counted in Dropped).
	Send(from, to gossip.NodeID, tick int, payload any) bool
	// Drain invokes fn for every payload currently queued for the
	// host, in arrival order, without blocking for more.
	Drain(id gossip.NodeID, fn func(payload any))
	// Sent returns the number of messages accepted toward delivery.
	Sent() int64
	// Dropped returns the number of messages lost in transit.
	Dropped() int64
	// Close releases any resources (sockets, goroutines) the transport
	// holds. Send after Close drops.
	Close() error
}

// Channel is the in-process transport: one buffered Go channel per
// host, non-blocking sends, messages beyond capacity dropped as a
// saturated radio would drop them. This is the live engine's original
// inbox plumbing, extracted verbatim; it remains the default and keeps
// live runs free of sockets and codecs.
type Channel struct {
	inbox   []chan any
	sent    atomic.Int64
	dropped atomic.Int64
	closed  atomic.Bool

	// Batch plane (Batcher): the same group partition the UDP
	// transport would use, one batch queue per group, bodies held in
	// pooled buffers.
	groups    []Group
	batches   []chan batchItem
	batchBufs sync.Pool
}

var _ Transport = (*Channel)(nil)

// NewChannel returns a channel transport for hosts [0, hosts) with the
// given per-host queue capacity (0 means DefaultQueue). Its batch
// plane has a single group spanning every host; multi-shard columnar
// runs want NewChannelGroups.
func NewChannel(hosts, capacity int) *Channel {
	return NewChannelGroups(hosts, capacity, 1)
}

// NewChannelGroups is NewChannel with the batch plane split into
// `groups` contiguous host groups (clamped to [1, hosts]) — the
// in-process mirror of NewUDPLoopback's socket layout, so columnar
// shard counts can be exercised without sockets. The per-host plane is
// unaffected.
func NewChannelGroups(hosts, capacity, groups int) *Channel {
	if capacity <= 0 {
		capacity = DefaultQueue
	}
	if groups <= 0 {
		groups = 1
	}
	if groups > hosts && hosts > 0 {
		groups = hosts
	}
	c := &Channel{
		inbox:   make([]chan any, hosts),
		batches: make([]chan batchItem, groups),
	}
	for i := range c.inbox {
		c.inbox[i] = make(chan any, capacity)
	}
	for g := 0; g < groups; g++ {
		c.groups = append(c.groups, Group{
			Lo: gossip.NodeID(g * hosts / groups),
			Hi: gossip.NodeID((g + 1) * hosts / groups),
		})
		c.batches[g] = make(chan batchItem, capacity)
	}
	c.batchBufs.New = func() any {
		b := make([]byte, 0, 1024)
		return &b
	}
	return c
}

// Send implements Transport: a non-blocking channel send.
func (c *Channel) Send(from, to gossip.NodeID, tick int, payload any) bool {
	if c.closed.Load() {
		c.dropped.Add(1)
		return false
	}
	select {
	case c.inbox[to] <- payload:
		c.sent.Add(1)
		return true
	default:
		c.dropped.Add(1)
		return false
	}
}

// Drain implements Transport: a non-blocking drain loop.
func (c *Channel) Drain(id gossip.NodeID, fn func(payload any)) {
	for {
		select {
		case p := <-c.inbox[id]:
			fn(p)
		default:
			return
		}
	}
}

// Sent implements Transport.
func (c *Channel) Sent() int64 { return c.sent.Load() }

// Dropped implements Transport.
func (c *Channel) Dropped() int64 { return c.dropped.Load() }

// Close implements Transport; the channel transport holds no
// resources beyond garbage-collected memory, but subsequent Sends
// drop, per the interface contract.
func (c *Channel) Close() error {
	c.closed.Store(true)
	return nil
}

// Lossy layers message loss (and optionally delivery delay) over any
// Transport, making convergence-under-loss a first-class scenario
// instead of an emergent property of full inboxes:
//
//	lt := &transport.Lossy{T: transport.NewChannel(n, 0), P: 0.2, Seed: 9}
//
// Each Send is dropped with independent probability P; surviving
// messages are forwarded to the inner transport, after Delay(±Jitter)
// if one is configured. Dropped counts injector losses plus the inner
// transport's own.
type Lossy struct {
	// T is the underlying transport. Required.
	T Transport
	// P is the per-message drop probability in [0, 1].
	P float64
	// Seed drives the injector's private PRNG, so a lossy run is as
	// reproducible as its scheduling allows.
	Seed uint64
	// Delay postpones each surviving delivery; Jitter adds a uniform
	// random extra in [0, Jitter). Zero delivers inline.
	Delay  time.Duration
	Jitter time.Duration

	// mu guards the lazily-built rng AND the closed/delayed pair: a
	// delayed delivery is only ever registered while the injector is
	// open, so Close's Wait cannot race a WaitGroup Add.
	mu      sync.Mutex
	rng     *xrand.Rand
	closed  bool
	dropped atomic.Int64
	delayed sync.WaitGroup
}

var _ Transport = (*Lossy)(nil)

// Send implements Transport.
func (l *Lossy) Send(from, to gossip.NodeID, tick int, payload any) bool {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.dropped.Add(1)
		return false
	}
	if l.rng == nil {
		l.rng = xrand.New(l.Seed)
	}
	drop := l.rng.Prob(l.P)
	var wait time.Duration
	if !drop && l.Delay > 0 {
		wait = l.Delay
		if l.Jitter > 0 {
			wait += time.Duration(l.rng.Float64() * float64(l.Jitter))
		}
		l.delayed.Add(1)
	}
	l.mu.Unlock()
	if drop {
		l.dropped.Add(1)
		l.killLink(to)
		return false
	}
	if wait > 0 {
		time.AfterFunc(wait, func() {
			defer l.delayed.Done()
			l.T.Send(from, to, tick, payload)
		})
		// In flight: it will be counted sent or dropped on arrival.
		return true
	}
	return l.T.Send(from, to, tick, payload)
}

// killLink translates a drop draw for a connection-oriented inner
// transport: a reliable stream has no silent datagram loss, so "this
// message was lost" becomes "the link carrying it failed" — the
// connection is severed and the reconnect window models the outage.
// Datagram transports don't implement LinkKiller and are unaffected.
func (l *Lossy) killLink(to gossip.NodeID) {
	if lk, ok := l.T.(LinkKiller); ok {
		lk.KillLink(to)
	}
}

// KillLink implements LinkKiller by forwarding, so injector stacks
// keep the capability visible.
func (l *Lossy) KillLink(to gossip.NodeID) bool {
	if lk, ok := l.T.(LinkKiller); ok {
		return lk.KillLink(to)
	}
	return false
}

// Drain implements Transport.
func (l *Lossy) Drain(id gossip.NodeID, fn func(payload any)) { l.T.Drain(id, fn) }

// Sent implements Transport.
func (l *Lossy) Sent() int64 { return l.T.Sent() }

// Dropped implements Transport: injected drops plus the inner
// transport's.
func (l *Lossy) Dropped() int64 { return l.dropped.Load() + l.T.Dropped() }

// Close implements Transport: stops accepting messages, waits for
// already-scheduled delayed deliveries, then closes the inner
// transport.
func (l *Lossy) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.delayed.Wait()
	return l.T.Close()
}

// Validate reports whether the injector is usable.
func (l *Lossy) Validate() error {
	if l.T == nil {
		return fmt.Errorf("transport: Lossy.T is nil")
	}
	if l.P < 0 || l.P > 1 {
		return fmt.Errorf("transport: Lossy.P %v outside [0,1]", l.P)
	}
	return nil
}
