package transport

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"dynagg/internal/gossip"
	"dynagg/internal/protocol/extremes"
	"dynagg/internal/protocol/moments"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/sketch"
	"dynagg/internal/wire"
)

// tcpPair builds two TCP transports over one 8-host population, each
// owning one group, with peer addresses exchanged — the stream mirror
// of TestUDPTwoTransportsHandshake's setup. Extra options apply to
// both sides.
func tcpPair(t *testing.T, opts ...TCPOption) (a, b *TCP) {
	t.Helper()
	groups := []Group{{Lo: 0, Hi: 4}, {Lo: 4, Hi: 8}}
	mk := func(local int) *TCP {
		cfg := TCPConfig{Groups: append([]Group(nil), groups...), Local: []int{local}}
		cfg.Groups[local].Addr = "127.0.0.1:0"
		tr, err := NewTCP(append([]TCPOption{cfg}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b = mk(0), mk(1)
	if err := a.SetGroupAddr(1, b.GroupAddr(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.SetGroupAddr(0, a.GroupAddr(0)); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// sendUntilDelivered retries Send on tx until one payload lands at
// `to` on rx — the polling a transport with reconnect windows needs
// where a lossless one could assert a single Send.
func sendUntilDelivered(t *testing.T, tx, rx Transport, from, to gossip.NodeID, payload any) any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		tx.Send(from, to, 0, payload)
		var got any
		n := 0
		rx.Drain(to, func(p any) { got = p; n++ })
		if n > 0 {
			return got
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no payload for host %d within deadline", to)
	return nil
}

func TestTCPTransportRoundTripsEveryPayloadKind(t *testing.T) {
	tr, err := NewTCPLoopback(8, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	sk := sketch.New(sketch.Params{Bins: 4, Levels: 8})
	sk.Insert(12345)
	payloads := []any{
		pushsum.Mass{W: 0.5, V: 2.25},
		&pushsum.Mass{W: 1, V: -3},
		pushsumrevert.Mass{W: 0.125, V: 7},
		moments.Mass{W: 1, V: 2, Q: 4},
		[]uint8{0, 0, 3, 255, 255, 9},
		sk,
		[]extremes.Candidate{{Value: 9.5, Owner: 3, Age: 2}, {Value: -1, Owner: 7, Age: 0}},
	}
	for i, payload := range payloads {
		to := gossip.NodeID(i % 8)
		from := (to + 1) % 8
		if !tr.Send(from, to, i, payload) {
			t.Fatalf("payload %d (%T): Send failed", i, payload)
		}
		got := drainOne(t, tr, to)
		switch want := payload.(type) {
		case pushsum.Mass:
			if got != want {
				t.Errorf("payload %d: got %v, want %v", i, got, want)
			}
		case *pushsum.Mass:
			if got != *want {
				t.Errorf("payload %d: got %v, want %v", i, got, *want)
			}
		case pushsumrevert.Mass:
			if got != want {
				t.Errorf("payload %d: got %v, want %v", i, got, want)
			}
		case moments.Mass:
			if got != want {
				t.Errorf("payload %d: got %v, want %v", i, got, want)
			}
		case []uint8:
			g, ok := got.([]uint8)
			if !ok || !bytes.Equal(g, want) {
				t.Errorf("payload %d: got %T %v", i, got, got)
			}
		case *sketch.Sketch:
			g, ok := got.(*sketch.Sketch)
			if !ok || !g.Equal(want) {
				t.Errorf("payload %d: sketch did not round trip (%T)", i, got)
			}
		case []extremes.Candidate:
			g, ok := got.([]extremes.Candidate)
			if !ok || len(g) != len(want) || g[0] != want[0] {
				t.Errorf("payload %d: got %T %v", i, got, got)
			}
		}
	}
	// Sent is counted at the kernel hand-off in the writer goroutine,
	// so it trails Send acceptance; everything already drained, so it
	// only needs a moment to settle.
	deadline := time.Now().Add(5 * time.Second)
	for tr.Sent() != int64(len(payloads)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if tr.Sent() != int64(len(payloads)) {
		t.Errorf("Sent = %d, want %d", tr.Sent(), len(payloads))
	}
}

func TestTCPTwoTransportsHandshake(t *testing.T) {
	a, b := tcpPair(t)
	defer a.Close()
	defer b.Close()
	if got := sendUntilDelivered(t, a, b, 1, 6, pushsum.Mass{W: 0.5, V: 5}); got != (pushsum.Mass{W: 0.5, V: 5}) {
		t.Errorf("b received %v", got)
	}
	if got := sendUntilDelivered(t, b, a, 6, 1, pushsum.Mass{W: 0.25, V: 9}); got != (pushsum.Mass{W: 0.25, V: 9}) {
		t.Errorf("a received %v", got)
	}
}

// TestTCPBatchRoundTrip drives the columnar plane over a socket pair:
// a whole batch body must arrive intact at the destination group's
// queue, with per-message accounting.
func TestTCPBatchRoundTrip(t *testing.T) {
	a, b := tcpPair(t)
	defer a.Close()
	defer b.Close()
	body := bytes.Repeat([]byte{0xAB, 1, 2, 3}, 100)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		a.SendBatch(1, 7, 3, body)
		var got []byte
		b.DrainBatch(1, func(bb []byte) { got = append([]byte(nil), bb...) })
		if got != nil {
			if !bytes.Equal(got, body) {
				t.Fatalf("batch body did not round trip: %d bytes", len(got))
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("batch never delivered (sent=%d dropped=%d)", a.Sent(), b.Dropped())
}

func TestTCPOversizeBatchDrops(t *testing.T) {
	tr, err := NewTCPLoopback(4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.SendBatch(1, 0, 5, make([]byte, tr.MaxBatchBody()+1)) {
		t.Error("oversize batch accepted")
	}
	if tr.Dropped() != 5 {
		t.Errorf("Dropped = %d, want 5 (per-message accounting)", tr.Dropped())
	}
}

// TestTCPPartialReadsAcrossFrameBoundaries dribbles a valid frame into
// a listener one byte at a time: the scanner must reassemble it across
// reads, never mis-split it.
func TestTCPPartialReadsAcrossFrameBoundaries(t *testing.T) {
	tr, err := NewTCPLoopback(4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	raw, err := net.Dial("tcp", tr.GroupAddr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	env, err := appendEnvelope(nil, 0, 2, 9, pushsum.Mass{W: 0.75, V: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Two frames back to back, sliced into single bytes: the second
	// must survive the first's boundary landing mid-read.
	stream := wire.AppendFrame(wire.AppendFrame(nil, env), env)
	for i := range stream {
		if _, err := raw.Write(stream[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	for got, n := any(nil), 0; ; {
		got, n = nil, 0
		tr.Drain(2, func(p any) { got = p; n++ })
		if n == 2 {
			if got != (pushsum.Mass{W: 0.75, V: 11}) {
				t.Fatalf("reassembled payload = %v", got)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTCPCorruptStreamDropsConnection writes an unframeable byte
// sequence: the receiver cannot resynchronize, so it must hang up
// rather than guess.
func TestTCPCorruptStreamDropsConnection(t *testing.T) {
	tr, err := NewTCPLoopback(4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	raw, err := net.Dial("tcp", tr.GroupAddr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write(bytes.Repeat([]byte{0xFF}, 10)); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Error("receiver kept a corrupt stream open")
	}
}

// TestTCPReconnectAfterPeerRestart kills and resurrects the receiving
// process (a new transport on the same address): the sender's cached
// connection dies, frames sent into the outage drop, and the
// reconnect-with-backoff path reacquires the restarted peer without
// any external coordination.
func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	a, b := tcpPair(t, WithReconnectBackoff(2*time.Millisecond, 50*time.Millisecond))
	defer a.Close()
	sendUntilDelivered(t, a, b, 1, 6, pushsum.Mass{W: 1, V: 1})

	addr := b.GroupAddr(1)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// The restarted peer must bind the same address to be found again.
	cfg := TCPConfig{
		Groups: []Group{{Lo: 0, Hi: 4, Addr: a.GroupAddr(0)}, {Lo: 4, Hi: 8, Addr: addr}},
		Local:  []int{1},
	}
	var b2 *TCP
	deadline := time.Now().Add(10 * time.Second)
	for {
		var err error
		if b2, err = NewTCP(cfg); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer b2.Close()
	// Delivery resuming IS the assertion: it requires a's writer to
	// notice the dead connection and redial. Drop counts are not
	// asserted — a frame can die in the flush after being counted
	// Sent, so a short outage may legally record zero drops.
	if got := sendUntilDelivered(t, a, b2, 1, 6, pushsum.Mass{W: 2, V: 3}); got != (pushsum.Mass{W: 2, V: 3}) {
		t.Errorf("post-restart delivery = %v", got)
	}
}

// TestTCPSlowPeerDoesNotStallOtherGroups aims a hose at a peer that
// accepts and never reads, while talking to a healthy peer on the
// side: the slow link may drop everything, but sends must stay
// non-blocking and the healthy link must keep delivering.
func TestTCPSlowPeerDoesNotStallOtherGroups(t *testing.T) {
	slow, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	go func() {
		for {
			c, err := slow.Accept()
			if err != nil {
				return
			}
			defer c.Close() // accepted, never read
		}
	}()

	groups := []Group{{Lo: 0, Hi: 2, Addr: "127.0.0.1:0"}, {Lo: 2, Hi: 4, Addr: slow.Addr().String()}, {Lo: 4, Hi: 6}}
	a, err := NewTCP(TCPConfig{Groups: groups, Local: []int{0}, QueueCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	bGroups := append([]Group(nil), groups...)
	bGroups[0].Addr = a.GroupAddr(0)
	bGroups[2].Addr = "127.0.0.1:0"
	b, err := NewTCP(TCPConfig{Groups: bGroups, Local: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.SetGroupAddr(2, b.GroupAddr(2)); err != nil {
		t.Fatal(err)
	}

	// 50k sends toward the never-reading peer: each must return
	// immediately (accept-or-drop), no matter how jammed the link is.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50_000; i++ {
			a.Send(0, 3, i, pushsum.Mass{W: 1, V: float64(i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sends toward the slow peer blocked")
	}
	if got := sendUntilDelivered(t, a, b, 0, 5, pushsum.Mass{W: 3, V: 4}); got != (pushsum.Mass{W: 3, V: 4}) {
		t.Errorf("healthy peer received %v", got)
	}
}

func TestTCPKillLinkSeversAndRedials(t *testing.T) {
	a, b := tcpPair(t, WithReconnectBackoff(2*time.Millisecond, 50*time.Millisecond))
	defer a.Close()
	defer b.Close()
	sendUntilDelivered(t, a, b, 1, 6, pushsum.Mass{W: 1, V: 1})
	if !a.KillLink(6) {
		t.Fatal("KillLink found no live connection after a delivery")
	}
	if a.Kills() != 1 {
		t.Errorf("Kills = %d, want 1", a.Kills())
	}
	if got := sendUntilDelivered(t, a, b, 1, 6, pushsum.Mass{W: 5, V: 6}); got != (pushsum.Mass{W: 5, V: 6}) {
		t.Errorf("post-kill delivery = %v", got)
	}
}

// TestLossyOverTCPKillsLinks checks the loss translation: a drop draw
// on a stream transport severs the connection instead of silently
// discarding a datagram.
func TestLossyOverTCPKillsLinks(t *testing.T) {
	a, b := tcpPair(t)
	defer a.Close()
	defer b.Close()
	sendUntilDelivered(t, a, b, 1, 6, pushsum.Mass{W: 1, V: 1}) // establish the link
	lt := &Lossy{T: a, P: 1}
	if lt.Send(1, 6, 0, pushsum.Mass{W: 1, V: 1}) {
		t.Error("P=1 send accepted")
	}
	if a.Kills() != 1 {
		t.Errorf("Kills = %d, want 1 (drop draw should sever the link)", a.Kills())
	}
	if tcp, ok := AsTCP(lt); !ok || tcp != a {
		t.Error("AsTCP failed to unwrap Lossy")
	}
}

// TestTCPAnnounceBootstrapsMembership walks the full three-process
// handshake in-process: two joiners announce to a seed, learn the
// table, and re-announce until everyone covers the population.
func TestTCPAnnounceBootstrapsMembership(t *testing.T) {
	mk := func(lo, hi gossip.NodeID) *TCP {
		tr, err := NewTCP(TCPConfig{
			Groups: []Group{{Lo: lo, Hi: hi, Addr: "127.0.0.1:0"}},
			Local:  []int{0},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	seed, j1, j2 := mk(0, 4), mk(4, 8), mk(8, 12)
	defer seed.Close()
	defer j1.Close()
	defer j2.Close()
	seedAddr := seed.GroupAddr(0)
	// Own addresses must be captured before any merge: registering the
	// seed's lower span shifts this process's own group off index 0.
	j1Addr, j2Addr := j1.GroupAddr(0), j2.GroupAddr(0)

	if err := j1.Announce(seedAddr, 4, 8, j1Addr); err != nil {
		t.Fatal(err)
	}
	if !seed.Covers(8) && seed.Covers(12) {
		t.Error("seed membership inconsistent after first announce")
	}
	if err := j2.Announce(seedAddr, 8, 12, j2Addr); err != nil {
		t.Fatal(err)
	}
	if !seed.Covers(12) {
		t.Errorf("seed does not cover the population: %v", seed.Groups())
	}
	if !j2.Covers(12) {
		t.Errorf("second joiner missed the table: %v", j2.Groups())
	}
	// The first joiner announced before j2 existed; one retry closes
	// the gap — the loop live.Bootstrap runs.
	if err := j1.Announce(seedAddr, 4, 8, j1Addr); err != nil {
		t.Fatal(err)
	}
	if !j1.Covers(12) {
		t.Errorf("first joiner missed the table after re-announce: %v", j1.Groups())
	}

	// Cross-traffic over bootstrapped links, both directions.
	if got := sendUntilDelivered(t, j1, seed, 5, 1, pushsum.Mass{W: 1, V: 2}); got != (pushsum.Mass{W: 1, V: 2}) {
		t.Errorf("joiner→seed = %v", got)
	}
	if got := sendUntilDelivered(t, seed, j2, 1, 10, pushsum.Mass{W: 3, V: 4}); got != (pushsum.Mass{W: 3, V: 4}) {
		t.Errorf("seed→joiner2 = %v", got)
	}
}

// TestTCPSpanObserverHeartbeats pins the liveness feed the health
// detector rides: a seed's observer sees every direct announce with
// age 0, and a joiner's observer learns the OTHER spans' freshness
// from the seed's relayed membership ages — without ever hearing those
// spans announce directly.
func TestTCPSpanObserverHeartbeats(t *testing.T) {
	mk := func(lo, hi gossip.NodeID) *TCP {
		tr, err := NewTCP(TCPConfig{
			Groups: []Group{{Lo: lo, Hi: hi, Addr: "127.0.0.1:0"}},
			Local:  []int{0},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	type obs struct {
		lo  gossip.NodeID
		age time.Duration
	}
	record := func(tr *TCP) *struct {
		mu   sync.Mutex
		seen []obs
	} {
		r := &struct {
			mu   sync.Mutex
			seen []obs
		}{}
		tr.SetSpanObserver(func(lo, hi gossip.NodeID, addr string, age time.Duration) {
			r.mu.Lock()
			r.seen = append(r.seen, obs{lo: lo, age: age})
			r.mu.Unlock()
		})
		return r
	}

	seed, j1, j2 := mk(0, 4), mk(4, 8), mk(8, 12)
	defer seed.Close()
	defer j1.Close()
	defer j2.Close()
	seedObs, j1Obs := record(seed), record(j1)
	seedAddr := seed.GroupAddr(0)
	j1Addr, j2Addr := j1.GroupAddr(0), j2.GroupAddr(0)

	if err := j1.Announce(seedAddr, 4, 8, j1Addr); err != nil {
		t.Fatal(err)
	}
	if err := j2.Announce(seedAddr, 8, 12, j2Addr); err != nil {
		t.Fatal(err)
	}
	// j1 re-announces: its reply now carries the seed's ages for every
	// span, including j2's, which j1 has never heard from directly.
	if err := j1.Announce(seedAddr, 4, 8, j1Addr); err != nil {
		t.Fatal(err)
	}

	seedObs.mu.Lock()
	directs := 0
	for _, o := range seedObs.seen {
		if o.age != 0 {
			t.Errorf("seed saw a non-direct observation: %+v", o)
		}
		if o.lo == 4 || o.lo == 8 {
			directs++
		}
	}
	seedObs.mu.Unlock()
	if directs < 3 {
		t.Errorf("seed observer saw %d direct announces, want >= 3", directs)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		j1Obs.mu.Lock()
		sawJ2 := false
		for _, o := range j1Obs.seen {
			if o.lo == 8 && o.age >= 0 {
				sawJ2 = true
			}
		}
		j1Obs.mu.Unlock()
		if sawJ2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("joiner observer never learned span [8,12)'s freshness from relayed ages")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTCPAnnounceLateSeed reserves an address, announces into the
// void (plain error, retryable), then starts the seed there and
// retries — the late-starting-seed scenario bootstrap must survive.
func TestTCPAnnounceLateSeed(t *testing.T) {
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	seedAddr := probe.Addr().String()
	probe.Close()

	j := mustTCP(t, TCPConfig{Groups: []Group{{Lo: 4, Hi: 8, Addr: "127.0.0.1:0"}}, Local: []int{0}, DialTimeout: 500 * time.Millisecond})
	defer j.Close()
	err = j.Announce(seedAddr, 4, 8, j.GroupAddr(0))
	if err == nil {
		t.Fatal("announce with no seed listening succeeded")
	}
	if errors.Is(err, ErrSpanConflict) {
		t.Fatalf("absent seed misreported as span conflict: %v", err)
	}

	seed := mustTCP(t, TCPConfig{Groups: []Group{{Lo: 0, Hi: 4, Addr: seedAddr}}, Local: []int{0}})
	defer seed.Close()
	if err := j.Announce(seedAddr, 4, 8, j.GroupAddr(0)); err != nil {
		t.Fatalf("announce after seed start: %v", err)
	}
	if !j.Covers(8) {
		t.Errorf("joiner table incomplete: %v", j.Groups())
	}
}

func mustTCP(t *testing.T, cfg TCPConfig) *TCP {
	t.Helper()
	tr, err := NewTCP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestTCPSpanRegistrationConflicts covers the validation satellite:
// identical spans are idempotent, same-span-different-address and
// overlapping spans are ErrSpanConflict — locally via RegisterGroup
// and end-to-end via a rejected announce.
func TestTCPSpanRegistrationConflicts(t *testing.T) {
	seed := mustTCP(t, TCPConfig{Groups: []Group{{Lo: 0, Hi: 4, Addr: "127.0.0.1:0"}}, Local: []int{0}})
	defer seed.Close()
	if err := seed.RegisterGroup(4, 8, "127.0.0.1:40001"); err != nil {
		t.Fatal(err)
	}
	if err := seed.RegisterGroup(4, 8, "127.0.0.1:40001"); err != nil {
		t.Errorf("idempotent re-registration failed: %v", err)
	}
	if err := seed.RegisterGroup(4, 8, "127.0.0.1:40002"); !errors.Is(err, ErrSpanConflict) {
		t.Errorf("same span, different addr: err = %v, want ErrSpanConflict", err)
	}
	if err := seed.RegisterGroup(6, 10, "127.0.0.1:40003"); !errors.Is(err, ErrSpanConflict) {
		t.Errorf("overlapping span: err = %v, want ErrSpanConflict", err)
	}
	if err := seed.RegisterGroup(2, 2, "127.0.0.1:40004"); err == nil {
		t.Error("empty span accepted")
	}

	// End-to-end: a process claiming an already-owned span is rejected
	// in the announce reply.
	imp := mustTCP(t, TCPConfig{Groups: []Group{{Lo: 4, Hi: 8, Addr: "127.0.0.1:0"}}, Local: []int{0}})
	defer imp.Close()
	err := imp.Announce(seed.GroupAddr(0), 4, 8, imp.GroupAddr(0))
	if !errors.Is(err, ErrSpanConflict) {
		t.Errorf("conflicting announce: err = %v, want ErrSpanConflict", err)
	}
}

func TestTCPConfigValidation(t *testing.T) {
	if _, err := NewTCP(); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewTCP(TCPConfig{Groups: []Group{{Lo: 2, Hi: 2, Addr: "127.0.0.1:0"}}, Local: []int{0}}); err == nil {
		t.Error("empty group range accepted")
	}
	if _, err := NewTCP(TCPConfig{
		Groups: []Group{{Lo: 0, Hi: 4, Addr: "127.0.0.1:0"}, {Lo: 2, Hi: 6, Addr: "127.0.0.1:0"}},
		Local:  []int{0, 1},
	}); err == nil {
		t.Error("overlapping groups accepted")
	}
	if _, err := NewTCP(TCPConfig{Groups: []Group{{Lo: 0, Hi: 4}}, Local: []int{0}}); err == nil {
		t.Error("local group without bind address accepted")
	}
	if _, err := NewTCP(TCPConfig{Groups: []Group{{Lo: 0, Hi: 4, Addr: "127.0.0.1:0"}}, Local: []int{3}}); err == nil {
		t.Error("out-of-range local index accepted")
	}
}

func TestTCPSendAfterCloseDrops(t *testing.T) {
	tr, err := NewTCPLoopback(2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Send(0, 1, 0, pushsum.Mass{W: 1, V: 1}) {
		t.Error("send after Close accepted")
	}
}

// TestFrameScannerRecoversFramesAcrossChunks is the deterministic twin
// of FuzzFrameScanner: a stream of frames fed in every chunk size from
// 1 byte up must yield exactly the original frame sequence.
func TestFrameScannerRecoversFramesAcrossChunks(t *testing.T) {
	var stream []byte
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := bytes.Repeat([]byte{byte(i)}, i*13%97)
		want = append(want, p)
		stream = wire.AppendFrame(stream, p)
	}
	for chunk := 1; chunk <= len(stream); chunk += 7 {
		s := frameScanner{max: 1 << 10}
		var got [][]byte
		for off := 0; off < len(stream); off += chunk {
			end := off + chunk
			if end > len(stream) {
				end = len(stream)
			}
			s.feed(stream[off:end])
			for {
				f, err := s.next()
				if err != nil {
					t.Fatalf("chunk %d: %v", chunk, err)
				}
				if f == nil {
					break
				}
				got = append(got, append([]byte(nil), f...))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("chunk %d: recovered %d frames, want %d", chunk, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("chunk %d: frame %d mismatch", chunk, i)
			}
		}
	}
}

// FuzzFrameScanner feeds the TCP receive scanner adversarial streams
// in adversarial chunkings and cross-checks it against one-shot
// DecodeFrame on the whole input: both must yield the same frame
// sequence up to the same verdict (clean, starved, or corrupt).
func FuzzFrameScanner(f *testing.F) {
	f.Add(wire.AppendFrame(wire.AppendFrame(nil, []byte("ab")), nil), 1)
	f.Add(bytes.Repeat([]byte{0xFF}, 12), 3)
	f.Add(wire.AppendFrame(nil, bytes.Repeat([]byte{7}, 300)), 5)
	f.Fuzz(func(t *testing.T, data []byte, chunk int) {
		const max = 1 << 10
		if chunk < 1 {
			chunk = 1 - chunk
		}
		chunk = chunk%64 + 1

		var direct [][]byte
		var directErr error
		for rest := data; ; {
			frame, r, err := wire.DecodeFrame(rest, max)
			if errors.Is(err, wire.ErrShortFrame) {
				break
			}
			if err != nil {
				directErr = err
				break
			}
			direct = append(direct, append([]byte(nil), frame...))
			rest = r
		}

		s := frameScanner{max: max}
		var scanned [][]byte
		var scanErr error
	feed:
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			s.feed(data[off:end])
			for {
				frame, err := s.next()
				if err != nil {
					scanErr = err
					break feed
				}
				if frame == nil {
					break
				}
				scanned = append(scanned, append([]byte(nil), frame...))
			}
		}

		if (scanErr == nil) != (directErr == nil) {
			t.Fatalf("verdicts diverge: scanner %v, direct %v", scanErr, directErr)
		}
		if len(scanned) != len(direct) {
			t.Fatalf("scanner yielded %d frames, direct %d", len(scanned), len(direct))
		}
		for i := range direct {
			if !bytes.Equal(scanned[i], direct[i]) {
				t.Fatalf("frame %d differs between scanner and direct decode", i)
			}
		}
	})
}

// TestMembershipCodecRoundTrip exercises the bootstrap payloads the
// fuzz targets upstream (header, frame) do not cover.
func TestMembershipCodecRoundTrip(t *testing.T) {
	groups := []Group{
		{Lo: 0, Hi: 4, Addr: "127.0.0.1:1111"},
		{Lo: 4, Hi: 8, Addr: ""}, // unknown addr must be omitted
		{Lo: 8, Hi: 12, Addr: "10.0.0.9:2222"},
	}
	entries, ages, reject, err := decodeMembership(appendMembership(nil, groups, nil))
	if err != nil || reject != "" {
		t.Fatalf("decode: %v %q", err, reject)
	}
	if len(entries) != 2 || entries[0] != groups[0] || entries[1] != groups[2] {
		t.Fatalf("entries = %+v", entries)
	}
	// No age section on the wire: every entry decodes as unknown.
	if len(ages) != 2 || ages[0] != AgeUnknown || ages[1] != AgeUnknown {
		t.Fatalf("ages without section = %v, want all AgeUnknown", ages)
	}
	_, _, reject, err = decodeMembership(appendMembershipReject(nil, "span taken"))
	if err != nil || reject != "span taken" {
		t.Fatalf("reject decode: %v %q", err, reject)
	}
	if _, _, _, err := decodeMembership(nil); err == nil {
		t.Error("empty membership payload accepted")
	}
	if _, _, _, err := decodeMembership([]byte{99}); err == nil {
		t.Error("unknown status byte accepted")
	}
}

// TestMembershipAgesRoundTrip pins the additive freshness section:
// ages survive the round trip aligned to the kept (addr-known)
// entries, unknown stays unknown, oversized claims and truncated
// sections decode as all-unknown, and a pre-ages decoder's payload
// (no trailing section) still parses.
func TestMembershipAgesRoundTrip(t *testing.T) {
	groups := []Group{
		{Lo: 0, Hi: 4, Addr: "127.0.0.1:1111"},
		{Lo: 4, Hi: 8, Addr: ""}, // omitted entry: its age must be skipped too
		{Lo: 8, Hi: 12, Addr: "10.0.0.9:2222"},
		{Lo: 12, Hi: 16, Addr: "10.0.0.9:3333"},
	}
	ages := []int64{0, 123, 4500, AgeUnknown}
	entries, got, reject, err := decodeMembership(appendMembership(nil, groups, ages))
	if err != nil || reject != "" {
		t.Fatalf("decode: %v %q", err, reject)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %+v", entries)
	}
	want := []int64{0, 4500, AgeUnknown}
	if len(got) != len(want) {
		t.Fatalf("ages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("age[%d] = %d, want %d", i, got[i], want[i])
		}
	}

	// An age above the wire cap saturates to the cap — still "very
	// stale", never garbage or a decode error.
	_, got, _, err = decodeMembership(appendMembership(nil, groups[:1], []int64{maxAgeMillis + 5}))
	if err != nil || got[0] != maxAgeMillis {
		t.Fatalf("oversized age decoded as %v (err %v), want %d", got, err, int64(maxAgeMillis))
	}

	// A truncated age section is advisory damage only: table intact,
	// ages all unknown.
	full := appendMembership(nil, groups, ages)
	entries, got, _, err = decodeMembership(full[:len(full)-1])
	if err != nil || len(entries) != 3 {
		t.Fatalf("truncated section broke the table: %v %+v", err, entries)
	}
	for i, a := range got {
		if a != AgeUnknown {
			t.Errorf("truncated section: age[%d] = %d, want AgeUnknown", i, a)
		}
	}
}
