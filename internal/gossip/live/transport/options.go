// Option-style construction. Transports used to be assembled by
// struct-literal field poking (`&Lossy{T: udp, P: 0.2, Seed: 9}`,
// `NewUDP(UDPConfig{...})`); the option constructors below compose the
// same knobs — group layout, queue depths, loss, delay, WAN profiles —
// uniformly, so call sites read as a configuration sentence:
//
//	tr, err := transport.NewUDP(
//		transport.WithLoopbackGroups(1_000_000, 8),
//		transport.WithReadBuffer(4<<20))
//	lt, err := transport.NewLossy(tr, transport.WithLoss(0.2), transport.WithLossSeed(12))
//
// A full UDPConfig still satisfies UDPOption (field-wise overlay), so
// pre-options call sites — NewUDP(cfg) — keep compiling unchanged, and
// the Lossy struct fields stay exported for the same reason.
package transport

import (
	"fmt"
	"time"

	"dynagg/internal/gossip"
)

// UDPOption configures NewUDP. Options apply in argument order; later
// options override earlier ones.
type UDPOption interface{ applyUDP(*UDPConfig) }

// udpOptionFunc adapts a function to UDPOption.
type udpOptionFunc func(*UDPConfig)

func (f udpOptionFunc) applyUDP(c *UDPConfig) { f(c) }

// applyUDP lets a complete UDPConfig act as one big option: every
// non-zero field overlays the accumulated configuration. This is the
// compatibility bridge for pre-options call sites.
func (c UDPConfig) applyUDP(dst *UDPConfig) {
	if c.Groups != nil {
		dst.Groups = c.Groups
	}
	if c.Local != nil {
		dst.Local = c.Local
	}
	if c.QueueCapacity != 0 {
		dst.QueueCapacity = c.QueueCapacity
	}
	if c.ReadBuffer != 0 {
		dst.ReadBuffer = c.ReadBuffer
	}
	if c.MaxDatagram != 0 {
		dst.MaxDatagram = c.MaxDatagram
	}
}

// WithGroups sets the population partition (non-empty, non-overlapping,
// sorted by Lo), replacing any earlier layout.
func WithGroups(groups ...Group) UDPOption {
	return udpOptionFunc(func(c *UDPConfig) { c.Groups = groups })
}

// WithLocal lists the group indices this process binds sockets for.
func WithLocal(local ...int) UDPOption {
	return udpOptionFunc(func(c *UDPConfig) { c.Local = local })
}

// WithLoopbackGroups lays hosts [0, hosts) out as `groups` contiguous
// local groups on ephemeral loopback ports — the single-process layout
// NewUDPLoopback has always built, as a composable option.
func WithLoopbackGroups(hosts, groups int) UDPOption {
	return udpOptionFunc(func(c *UDPConfig) {
		if groups <= 0 {
			groups = 1
		}
		if groups > hosts {
			groups = hosts
		}
		c.Groups = c.Groups[:0]
		c.Local = c.Local[:0]
		for g := 0; g < groups; g++ {
			c.Groups = append(c.Groups, Group{
				Lo:   gossip.NodeID(g * hosts / groups),
				Hi:   gossip.NodeID((g + 1) * hosts / groups),
				Addr: "127.0.0.1:0",
			})
			c.Local = append(c.Local, g)
		}
	})
}

// WithQueueCapacity bounds each local host's (and group's) receive
// queue; 0 keeps DefaultQueue.
func WithQueueCapacity(n int) UDPOption {
	return udpOptionFunc(func(c *UDPConfig) { c.QueueCapacity = n })
}

// WithReadBuffer sets SO_RCVBUF on each local socket. Million-host
// columnar runs want several MiB here: a whole shard's wave lands on
// one socket between drains.
func WithReadBuffer(n int) UDPOption {
	return udpOptionFunc(func(c *UDPConfig) { c.ReadBuffer = n })
}

// WithMaxDatagram bounds encoded datagram size; 0 keeps the 64 KiB
// default.
func WithMaxDatagram(n int) UDPOption {
	return udpOptionFunc(func(c *UDPConfig) { c.MaxDatagram = n })
}

// LossyOption configures NewLossy.
type LossyOption func(*Lossy)

// WithLoss sets the per-send drop probability in [0, 1].
func WithLoss(p float64) LossyOption { return func(l *Lossy) { l.P = p } }

// WithLossSeed seeds the injector's private PRNG.
func WithLossSeed(seed uint64) LossyOption { return func(l *Lossy) { l.Seed = seed } }

// WithDelay postpones each surviving delivery by delay plus a uniform
// random extra in [0, jitter).
func WithDelay(delay, jitter time.Duration) LossyOption {
	return func(l *Lossy) {
		l.Delay = delay
		l.Jitter = jitter
	}
}

// WithProfile applies a canned WAN preset — ProfileLAN, Profile3G,
// ProfileSat, or anything ProfileByName resolves — setting loss,
// delay, and jitter in one option.
func WithProfile(p Profile) LossyOption {
	return func(l *Lossy) {
		l.P = p.Loss
		l.Delay = p.Delay
		l.Jitter = p.Jitter
	}
}

// NewLossy layers a validated loss/delay injector over inner. With no
// options it forwards everything — loss comes from WithLoss or
// WithProfile.
func NewLossy(inner Transport, opts ...LossyOption) (*Lossy, error) {
	if inner == nil {
		return nil, fmt.Errorf("transport: NewLossy inner transport is nil")
	}
	l := &Lossy{T: inner}
	for _, opt := range opts {
		opt(l)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}
