// Option-style construction. Transports used to be assembled by
// struct-literal field poking (`&Lossy{T: udp, P: 0.2, Seed: 9}`,
// `NewUDP(UDPConfig{...})`); the option constructors below compose the
// same knobs — group layout, queue depths, loss, delay, WAN profiles —
// uniformly, so call sites read as a configuration sentence:
//
//	tr, err := transport.NewUDP(
//		transport.WithLoopbackGroups(1_000_000, 8),
//		transport.WithReadBuffer(4<<20))
//	lt, err := transport.NewLossy(tr, transport.WithLoss(0.2), transport.WithLossSeed(12))
//
// The knobs both socket transports share — group layout, locality,
// queue capacity — are Options, accepted by NewUDP and NewTCP alike;
// medium-specific knobs (SO_RCVBUF, datagram ceilings, stream framing
// and reconnect pacing) stay UDPOption or TCPOption. A full UDPConfig
// still satisfies UDPOption (field-wise overlay), so pre-options call
// sites — NewUDP(cfg) — keep compiling unchanged, and the Lossy struct
// fields stay exported for the same reason.
package transport

import (
	"fmt"
	"time"

	"dynagg/internal/gossip"
)

// UDPOption configures NewUDP. Options apply in argument order; later
// options override earlier ones.
type UDPOption interface{ applyUDP(*UDPConfig) }

// TCPOption configures NewTCP, with the same ordering rule.
type TCPOption interface{ applyTCP(*TCPConfig) }

// Option is a knob both socket transports understand — group layout,
// locality, queue capacity — so one option list can assemble either
// medium.
type Option interface {
	UDPOption
	TCPOption
}

// udpOptionFunc adapts a function to UDPOption.
type udpOptionFunc func(*UDPConfig)

func (f udpOptionFunc) applyUDP(c *UDPConfig) { f(c) }

// tcpOptionFunc adapts a function to TCPOption.
type tcpOptionFunc func(*TCPConfig)

func (f tcpOptionFunc) applyTCP(c *TCPConfig) { f(c) }

// dualOption adapts a pair of functions to Option.
type dualOption struct {
	udp func(*UDPConfig)
	tcp func(*TCPConfig)
}

func (o dualOption) applyUDP(c *UDPConfig) { o.udp(c) }
func (o dualOption) applyTCP(c *TCPConfig) { o.tcp(c) }

// applyUDP lets a complete UDPConfig act as one big option: every
// non-zero field overlays the accumulated configuration. This is the
// compatibility bridge for pre-options call sites.
func (c UDPConfig) applyUDP(dst *UDPConfig) {
	if c.Groups != nil {
		dst.Groups = c.Groups
	}
	if c.Local != nil {
		dst.Local = c.Local
	}
	if c.QueueCapacity != 0 {
		dst.QueueCapacity = c.QueueCapacity
	}
	if c.ReadBuffer != 0 {
		dst.ReadBuffer = c.ReadBuffer
	}
	if c.MaxDatagram != 0 {
		dst.MaxDatagram = c.MaxDatagram
	}
}

// applyTCP gives TCPConfig the same one-big-option role for NewTCP.
func (c TCPConfig) applyTCP(dst *TCPConfig) {
	if c.Groups != nil {
		dst.Groups = c.Groups
	}
	if c.Local != nil {
		dst.Local = c.Local
	}
	if c.QueueCapacity != 0 {
		dst.QueueCapacity = c.QueueCapacity
	}
	if c.MaxFrame != 0 {
		dst.MaxFrame = c.MaxFrame
	}
	if c.DialTimeout != 0 {
		dst.DialTimeout = c.DialTimeout
	}
	if c.BackoffMin != 0 {
		dst.BackoffMin = c.BackoffMin
	}
	if c.BackoffMax != 0 {
		dst.BackoffMax = c.BackoffMax
	}
}

// WithGroups sets the population partition (non-empty, non-overlapping,
// sorted by Lo), replacing any earlier layout.
func WithGroups(groups ...Group) Option {
	return dualOption{
		udp: func(c *UDPConfig) { c.Groups = groups },
		tcp: func(c *TCPConfig) { c.Groups = groups },
	}
}

// WithLocal lists the group indices this process binds sockets for.
func WithLocal(local ...int) Option {
	return dualOption{
		udp: func(c *UDPConfig) { c.Local = local },
		tcp: func(c *TCPConfig) { c.Local = local },
	}
}

// loopbackLayout lays hosts [0, hosts) out as `groups` contiguous
// local groups on ephemeral loopback ports.
func loopbackLayout(hosts, groups int) ([]Group, []int) {
	if groups <= 0 {
		groups = 1
	}
	if groups > hosts {
		groups = hosts
	}
	gs := make([]Group, 0, groups)
	local := make([]int, 0, groups)
	for g := 0; g < groups; g++ {
		gs = append(gs, Group{
			Lo:   gossip.NodeID(g * hosts / groups),
			Hi:   gossip.NodeID((g + 1) * hosts / groups),
			Addr: "127.0.0.1:0",
		})
		local = append(local, g)
	}
	return gs, local
}

// WithLoopbackGroups lays hosts [0, hosts) out as `groups` contiguous
// local groups on ephemeral loopback ports — the single-process layout
// NewUDPLoopback has always built, as a composable option that NewTCP
// accepts too.
func WithLoopbackGroups(hosts, groups int) Option {
	return dualOption{
		udp: func(c *UDPConfig) { c.Groups, c.Local = loopbackLayout(hosts, groups) },
		tcp: func(c *TCPConfig) { c.Groups, c.Local = loopbackLayout(hosts, groups) },
	}
}

// WithQueueCapacity bounds each local host's (and group's) receive
// queue — and, for the TCP transport, each peer group's send queue;
// 0 keeps DefaultQueue.
func WithQueueCapacity(n int) Option {
	return dualOption{
		udp: func(c *UDPConfig) { c.QueueCapacity = n },
		tcp: func(c *TCPConfig) { c.QueueCapacity = n },
	}
}

// WithReadBuffer sets SO_RCVBUF on each local socket. Million-host
// columnar runs want several MiB here: a whole shard's wave lands on
// one socket between drains.
func WithReadBuffer(n int) UDPOption {
	return udpOptionFunc(func(c *UDPConfig) { c.ReadBuffer = n })
}

// WithMaxDatagram bounds encoded datagram size; 0 keeps the 64 KiB
// default.
func WithMaxDatagram(n int) UDPOption {
	return udpOptionFunc(func(c *UDPConfig) { c.MaxDatagram = n })
}

// WithMaxFrame bounds the TCP transport's frame size, send and
// receive; 0 keeps DefaultMaxFrame.
func WithMaxFrame(n int) TCPOption {
	return tcpOptionFunc(func(c *TCPConfig) { c.MaxFrame = n })
}

// WithDialTimeout bounds each connection attempt (and the announce
// round-trip of the bootstrap protocol); 0 keeps DefaultDialTimeout.
func WithDialTimeout(d time.Duration) TCPOption {
	return tcpOptionFunc(func(c *TCPConfig) { c.DialTimeout = d })
}

// WithReconnectBackoff sets the exponential redial pacing after a
// broken connection: the first retry waits min, doubling up to max.
// Zeros keep DefaultBackoffMin / DefaultBackoffMax.
func WithReconnectBackoff(min, max time.Duration) TCPOption {
	return tcpOptionFunc(func(c *TCPConfig) {
		c.BackoffMin = min
		c.BackoffMax = max
	})
}

// LossyOption configures NewLossy.
type LossyOption func(*Lossy)

// WithLoss sets the per-send drop probability in [0, 1].
func WithLoss(p float64) LossyOption { return func(l *Lossy) { l.P = p } }

// WithLossSeed seeds the injector's private PRNG.
func WithLossSeed(seed uint64) LossyOption { return func(l *Lossy) { l.Seed = seed } }

// WithDelay postpones each surviving delivery by delay plus a uniform
// random extra in [0, jitter).
func WithDelay(delay, jitter time.Duration) LossyOption {
	return func(l *Lossy) {
		l.Delay = delay
		l.Jitter = jitter
	}
}

// WithProfile applies a canned WAN preset — ProfileLAN, Profile3G,
// ProfileSat, or anything ProfileByName resolves — setting loss,
// delay, and jitter in one option.
func WithProfile(p Profile) LossyOption {
	return func(l *Lossy) {
		l.P = p.Loss
		l.Delay = p.Delay
		l.Jitter = p.Jitter
	}
}

// NewLossy layers a validated loss/delay injector over inner. With no
// options it forwards everything — loss comes from WithLoss or
// WithProfile.
func NewLossy(inner Transport, opts ...LossyOption) (*Lossy, error) {
	if inner == nil {
		return nil, fmt.Errorf("transport: NewLossy inner transport is nil")
	}
	l := &Lossy{T: inner}
	for _, opt := range opts {
		opt(l)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}
