package transport

import (
	"encoding/binary"
	"fmt"

	"dynagg/internal/gossip"
)

// Bootstrap control-frame payloads. These ride inside the same
// length-prefixed frames as protocol envelopes (kindAnnounce and
// kindMembership headers), so the TCP reader needs no second parser —
// but they are transport-internal: no protocol ever sees them.
//
// Announce payload:    uvarint lo · uvarint hi · uvarint len · addr
// Membership payload:  status byte (0 ok, 1 reject)
//	ok:     uvarint count · count × (uvarint lo · uvarint hi · uvarint len · addr)
//	reject: uvarint len · reason
//
// Like every decoder fed from a socket, the bounds are explicit:
// addresses cap at maxAddrLen, tables at maxMembershipEntries, reject
// reasons at maxRejectLen. A hostile frame sizes nothing.

const (
	maxAddrLen           = 256
	maxRejectLen         = 512
	maxMembershipEntries = 1 << 16

	membershipOK     = 0
	membershipReject = 1

	// maxAgeMillis caps a freshness age on the wire (~49 days); larger
	// claims decode as unknown. AgeUnknown is the sentinel decoded
	// entries carry when the sender did not (or could not) report one.
	maxAgeMillis = 1<<32 - 2
)

// AgeUnknown marks a membership entry with no freshness information:
// the encoder predates the age section, or the seed has never heard a
// direct announce for the span.
const AgeUnknown = int64(-1)

// appendSpanAddr encodes one (lo, hi, addr) triple.
func appendSpanAddr(dst []byte, lo, hi gossip.NodeID, addr string) []byte {
	dst = binary.AppendUvarint(dst, uint64(uint32(lo)))
	dst = binary.AppendUvarint(dst, uint64(uint32(hi)))
	dst = binary.AppendUvarint(dst, uint64(len(addr)))
	return append(dst, addr...)
}

// decodeSpanAddr decodes one triple, returning the remaining bytes.
func decodeSpanAddr(src []byte) (lo, hi gossip.NodeID, addr string, rest []byte, err error) {
	l, n := binary.Uvarint(src)
	if n <= 0 || l > 1<<31-1 {
		return 0, 0, "", nil, fmt.Errorf("transport: membership span lo")
	}
	src = src[n:]
	h, n := binary.Uvarint(src)
	if n <= 0 || h > 1<<31-1 {
		return 0, 0, "", nil, fmt.Errorf("transport: membership span hi")
	}
	src = src[n:]
	al, n := binary.Uvarint(src)
	if n <= 0 || al > maxAddrLen {
		return 0, 0, "", nil, fmt.Errorf("transport: membership addr length")
	}
	src = src[n:]
	if uint64(len(src)) < al {
		return 0, 0, "", nil, fmt.Errorf("transport: membership addr truncated")
	}
	return gossip.NodeID(l), gossip.NodeID(h), string(src[:al]), src[al:], nil
}

// appendAnnounce encodes the announce payload. The trailing flag byte
// (0 plain, 1 replace) is an additive extension: decoders that predate
// it ignore trailing bytes, and its absence decodes as plain.
func appendAnnounce(dst []byte, lo, hi gossip.NodeID, addr string, replace bool) []byte {
	dst = appendSpanAddr(dst, lo, hi, addr)
	if replace {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func decodeAnnounce(src []byte) (lo, hi gossip.NodeID, addr string, replace bool, err error) {
	lo, hi, addr, rest, err := decodeSpanAddr(src)
	if err != nil {
		return 0, 0, "", false, err
	}
	return lo, hi, addr, len(rest) > 0 && rest[0] == 1, nil
}

// appendMembership encodes the ok reply: every group whose address is
// known. Groups without an address are omitted — the peer cannot dial
// them anyway, and it will learn them from a later announce.
//
// ages, when non-nil, is parallel to groups and carries each span's
// freshness in milliseconds since its last direct announce at the
// sender (AgeUnknown when the sender has no observation). Ages ride as
// a trailing section — one uvarint per kept entry, encoded as age+1
// with 0 meaning unknown — the same additive-extension trick as the
// announce replace flag: decoders that predate the section ignore
// trailing bytes, and its absence decodes as all-unknown.
func appendMembership(dst []byte, groups []Group, ages []int64) []byte {
	dst = append(dst, membershipOK)
	known := 0
	for _, g := range groups {
		if g.Addr != "" {
			known++
		}
	}
	dst = binary.AppendUvarint(dst, uint64(known))
	for _, g := range groups {
		if g.Addr != "" {
			dst = appendSpanAddr(dst, g.Lo, g.Hi, g.Addr)
		}
	}
	if ages == nil {
		return dst
	}
	for i, g := range groups {
		if g.Addr == "" {
			continue
		}
		age := AgeUnknown
		if i < len(ages) {
			age = ages[i]
		}
		switch {
		case age < 0:
			dst = binary.AppendUvarint(dst, 0)
		case age > maxAgeMillis:
			dst = binary.AppendUvarint(dst, maxAgeMillis+1)
		default:
			dst = binary.AppendUvarint(dst, uint64(age)+1)
		}
	}
	return dst
}

// appendMembershipReject encodes the rejection reply.
func appendMembershipReject(dst []byte, reason string) []byte {
	if len(reason) > maxRejectLen {
		reason = reason[:maxRejectLen]
	}
	dst = append(dst, membershipReject)
	dst = binary.AppendUvarint(dst, uint64(len(reason)))
	return append(dst, reason...)
}

// decodeMembership parses a reply into its group table (plus per-entry
// freshness ages, AgeUnknown where absent), or the rejection reason
// when the seed refused the announce. Ages are advisory: a missing or
// garbled trailing age section decodes as all-unknown rather than
// failing the table — an old peer, or a hostile one, can at worst
// withhold freshness, never corrupt membership.
func decodeMembership(src []byte) (entries []Group, ages []int64, reject string, err error) {
	if len(src) == 0 {
		return nil, nil, "", fmt.Errorf("transport: empty membership payload")
	}
	status, src := src[0], src[1:]
	switch status {
	case membershipReject:
		rl, n := binary.Uvarint(src)
		if n <= 0 || rl > maxRejectLen || uint64(len(src[n:])) < rl {
			return nil, nil, "", fmt.Errorf("transport: membership reject reason")
		}
		return nil, nil, string(src[n : n+int(rl)]), nil
	case membershipOK:
		count, n := binary.Uvarint(src)
		if n <= 0 || count > maxMembershipEntries {
			return nil, nil, "", fmt.Errorf("transport: membership entry count")
		}
		src = src[n:]
		entries = make([]Group, 0, count)
		for i := uint64(0); i < count; i++ {
			var g Group
			g.Lo, g.Hi, g.Addr, src, err = decodeSpanAddr(src)
			if err != nil {
				return nil, nil, "", err
			}
			entries = append(entries, g)
		}
		return entries, decodeMembershipAges(src, len(entries)), "", nil
	default:
		return nil, nil, "", fmt.Errorf("transport: membership status %d", status)
	}
}

// decodeMembershipAges parses the trailing freshness section: count
// uvarints, each age+1 in milliseconds with 0 meaning unknown. Any
// shortfall or out-of-range claim yields all-unknown.
func decodeMembershipAges(src []byte, count int) []int64 {
	ages := make([]int64, count)
	for i := range ages {
		ages[i] = AgeUnknown
	}
	for i := 0; i < count; i++ {
		v, n := binary.Uvarint(src)
		if n <= 0 || v > maxAgeMillis+1 {
			for j := range ages {
				ages[j] = AgeUnknown
			}
			return ages
		}
		src = src[n:]
		if v > 0 {
			ages[i] = int64(v - 1)
		}
	}
	return ages
}
