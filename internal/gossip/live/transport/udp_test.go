package transport

import (
	"net"
	"testing"
	"time"

	"dynagg/internal/gossip"
	"dynagg/internal/protocol/extremes"
	"dynagg/internal/protocol/moments"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
	"dynagg/internal/wire"
)

// drainOne polls Drain until one payload arrives (UDP delivery is
// asynchronous through the kernel) or the deadline passes.
func drainOne(t *testing.T, tr Transport, id gossip.NodeID) any {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var got any
		n := 0
		tr.Drain(id, func(p any) { got = p; n++ })
		if n > 0 {
			if n != 1 {
				t.Fatalf("expected 1 payload, drained %d", n)
			}
			return got
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no payload for host %d within deadline", id)
	return nil
}

func TestUDPTransportRoundTripsEveryPayloadKind(t *testing.T) {
	u, err := NewUDPLoopback(8, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()

	sk := sketch.New(sketch.Params{Bins: 4, Levels: 8})
	sk.Insert(12345)
	payloads := []any{
		pushsum.Mass{W: 0.5, V: 2.25},
		&pushsum.Mass{W: 1, V: -3},
		pushsumrevert.Mass{W: 0.125, V: 7},
		moments.Mass{W: 1, V: 2, Q: 4},
		[]uint8{0, 0, 3, 255, 255, 9},
		&sketchreset.Counters{Ages: []uint8{1, 1, 1, 254}},
		sk,
		[]extremes.Candidate{{Value: 9.5, Owner: 3, Age: 2}, {Value: -1, Owner: 7, Age: 0}},
		&extremes.Table{Candidates: []extremes.Candidate{{Value: 4, Owner: 1, Age: 5}}},
	}
	for i, payload := range payloads {
		to := gossip.NodeID(i % 8)
		from := gossip.NodeID((i + 1) % 8)
		if from == to {
			from = (to + 1) % 8
		}
		if !u.Send(from, to, i, payload) {
			t.Fatalf("payload %d (%T): Send failed", i, payload)
		}
		got := drainOne(t, u, to)
		switch want := payload.(type) {
		case pushsum.Mass:
			if got != want {
				t.Errorf("payload %d: got %v, want %v", i, got, want)
			}
		case *pushsum.Mass:
			if got != *want {
				t.Errorf("payload %d: got %v, want %v", i, got, *want)
			}
		case pushsumrevert.Mass:
			if got != want {
				t.Errorf("payload %d: got %v, want %v", i, got, want)
			}
		case moments.Mass:
			if got != want {
				t.Errorf("payload %d: got %v, want %v", i, got, want)
			}
		case []uint8:
			g, ok := got.([]uint8)
			if !ok || len(g) != len(want) {
				t.Fatalf("payload %d: got %T %v", i, got, got)
			}
			for j := range want {
				if g[j] != want[j] {
					t.Errorf("payload %d: counter %d = %d, want %d", i, j, g[j], want[j])
				}
			}
		case *sketchreset.Counters:
			g, ok := got.([]uint8)
			if !ok || len(g) != len(want.Ages) {
				t.Fatalf("payload %d: got %T %v", i, got, got)
			}
		case *sketch.Sketch:
			g, ok := got.(*sketch.Sketch)
			if !ok || !g.Equal(want) {
				t.Fatalf("payload %d: sketch did not round trip (%T)", i, got)
			}
		case []extremes.Candidate:
			g, ok := got.([]extremes.Candidate)
			if !ok || len(g) != len(want) {
				t.Fatalf("payload %d: got %T %v", i, got, got)
			}
			for j := range want {
				if g[j] != want[j] {
					t.Errorf("payload %d: candidate %d = %+v, want %+v", i, j, g[j], want[j])
				}
			}
		case *extremes.Table:
			g, ok := got.([]extremes.Candidate)
			if !ok || len(g) != len(want.Candidates) || g[0] != want.Candidates[0] {
				t.Fatalf("payload %d: got %T %v", i, got, got)
			}
		}
	}
	if u.Sent() != int64(len(payloads)) {
		t.Errorf("Sent = %d, want %d", u.Sent(), len(payloads))
	}
}

func TestUDPUnencodablePayloadDrops(t *testing.T) {
	u, err := NewUDPLoopback(2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if u.Send(0, 1, 0, struct{ X int }{1}) {
		t.Error("unencodable payload accepted")
	}
	if u.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", u.Dropped())
	}
}

func TestUDPQueueOverflowDrops(t *testing.T) {
	u, err := NewUDPLoopback(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	const burst = 64
	for i := 0; i < burst; i++ {
		u.Send(0, 1, i, pushsum.Mass{W: 1, V: float64(i)})
	}
	// The reader must shed everything beyond the 1-slot queue without
	// blocking; delivery is asynchronous, so poll until the books
	// balance or time out.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		delivered := 0
		u.Drain(1, func(any) { delivered++ })
		if delivered > 0 && u.Dropped() > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("sent=%d dropped=%d: expected at least one delivery and one drop", u.Sent(), u.Dropped())
}

func TestUDPTwoTransportsHandshake(t *testing.T) {
	// Two UDP transports over the same 8-host population, each owning
	// one group — the in-test model of the two-process demo, including
	// the bind-then-learn-peer-address handshake.
	groups := []Group{{Lo: 0, Hi: 4}, {Lo: 4, Hi: 8}}
	mk := func(local int) *UDP {
		cfg := UDPConfig{Groups: append([]Group(nil), groups...), Local: []int{local}}
		cfg.Groups[local].Addr = "127.0.0.1:0"
		u, err := NewUDP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	a, b := mk(0), mk(1)
	defer a.Close()
	defer b.Close()
	if err := a.SetGroupAddr(1, b.GroupAddr(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.SetGroupAddr(0, a.GroupAddr(0)); err != nil {
		t.Fatal(err)
	}

	if !a.Send(1, 6, 3, pushsum.Mass{W: 0.5, V: 5}) {
		t.Fatal("a -> b send failed")
	}
	if got := drainOne(t, b, 6); got != (pushsum.Mass{W: 0.5, V: 5}) {
		t.Errorf("b received %v", got)
	}
	if !b.Send(6, 1, 4, pushsum.Mass{W: 0.25, V: 9}) {
		t.Fatal("b -> a send failed")
	}
	if got := drainOne(t, a, 1); got != (pushsum.Mass{W: 0.25, V: 9}) {
		t.Errorf("a received %v", got)
	}
}

func TestUDPSendToUnknownGroupAddrDrops(t *testing.T) {
	cfg := UDPConfig{
		Groups: []Group{{Lo: 0, Hi: 2, Addr: "127.0.0.1:0"}, {Lo: 2, Hi: 4}},
		Local:  []int{0},
	}
	u, err := NewUDP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if u.Send(0, 3, 0, pushsum.Mass{W: 1, V: 1}) {
		t.Error("send to address-less group accepted")
	}
	if u.Send(0, 99, 0, pushsum.Mass{W: 1, V: 1}) {
		t.Error("send to host outside every group accepted")
	}
	if u.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", u.Dropped())
	}
}

func TestUDPConfigValidation(t *testing.T) {
	if _, err := NewUDP(UDPConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewUDP(UDPConfig{
		Groups: []Group{{Lo: 2, Hi: 2, Addr: "127.0.0.1:0"}}, Local: []int{0},
	}); err == nil {
		t.Error("empty group range accepted")
	}
	if _, err := NewUDP(UDPConfig{
		Groups: []Group{{Lo: 0, Hi: 4, Addr: "127.0.0.1:0"}, {Lo: 2, Hi: 6, Addr: "127.0.0.1:0"}},
		Local:  []int{0, 1},
	}); err == nil {
		t.Error("overlapping groups accepted")
	}
	if _, err := NewUDP(UDPConfig{
		Groups: []Group{{Lo: 0, Hi: 4}}, Local: []int{0},
	}); err == nil {
		t.Error("local group without bind address accepted")
	}
	if _, err := NewUDP(UDPConfig{
		Groups: []Group{{Lo: 0, Hi: 4, Addr: "127.0.0.1:0"}}, Local: []int{3},
	}); err == nil {
		t.Error("out-of-range local index accepted")
	}
}

// TestUDPForgedDatagramDoesNotPanicReceivers feeds a bound socket a
// hand-crafted datagram whose counter matrix is far larger than any
// host's sketch: the transport decodes it (the shape is legal wire
// format), and the protocol's Receive must shrug it off as a lost
// radio message instead of panicking the process.
func TestUDPForgedDatagramDoesNotPanicReceivers(t *testing.T) {
	u, err := NewUDPLoopback(2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	raw, err := net.Dial("udp", u.GroupAddr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	forged := wire.AppendHeader(nil, wire.Header{Kind: kindResetCounters, To: 1, From: 0, Tick: 0})
	forged = wire.AppendCounters(forged, make([]uint8, 4096)) // nobody's sketch is this big
	if _, err := raw.Write(forged); err != nil {
		t.Fatal(err)
	}
	payload := drainOne(t, u, 1)
	counters, ok := payload.([]uint8)
	if !ok || len(counters) != 4096 {
		t.Fatalf("forged payload decoded as %T", payload)
	}
	// The guard lives in the protocol: a mis-shaped matrix merges as
	// a no-op rather than indexing out of range.
	node := sketchreset.New(1, sketchreset.Config{Params: sketch.Params{Bins: 4, Levels: 8}, Identifiers: 1})
	before, _ := node.Estimate()
	node.Receive(counters)
	if after, _ := node.Estimate(); after != before {
		t.Errorf("forged matrix changed the estimate %v -> %v", before, after)
	}
}

func TestUDPSendAfterCloseDrops(t *testing.T) {
	u, err := NewUDPLoopback(2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	if u.Send(0, 1, 0, pushsum.Mass{W: 1, V: 1}) {
		t.Error("send after Close accepted")
	}
}
