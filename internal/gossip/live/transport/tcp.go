package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dynagg/internal/backoff"
	"dynagg/internal/gossip"
	"dynagg/internal/wire"
)

// TCP defaults. MaxFrame leaves room for the largest batch frame plus
// slack; the backoff range keeps a dead peer from being hammered while
// letting a restarted one be reacquired within a couple of ticks.
const (
	DefaultMaxFrame    = 1 << 20
	DefaultDialTimeout = 2 * time.Second
	DefaultBackoffMin  = 20 * time.Millisecond
	DefaultBackoffMax  = 2 * time.Second

	// tcpWriteDeadline bounds one coalesced write burst. A peer that
	// stops reading stalls only its own writer goroutine, and only this
	// long — then the connection dies and its traffic becomes drops,
	// which is what a jammed link is.
	tcpWriteDeadline = 5 * time.Second

	// frameSlack is the room Send reserves ahead of the envelope for
	// the frame's uvarint length, written backwards once the payload
	// size is known — one encode pass, no copy.
	frameSlack = binary.MaxVarintLen32
)

// ErrSpanConflict reports a membership registration that contradicts
// the table: the same span at a different address, or a range
// overlapping an existing group. Bootstrap treats it as fatal — two
// processes claiming one host range is a deployment bug, not a
// transient.
var ErrSpanConflict = errors.New("transport: span conflict")

// LinkKiller is the failure-injection hook a connection-oriented
// transport exposes: where a datagram transport loses one message, a
// stream loses the *link*. Lossy uses it to translate its drop draws —
// a draw that would discard a datagram instead kills the connection
// carrying the stream, and reconnect-with-backoff models the outage
// window.
type LinkKiller interface {
	// KillLink severs the cached connection toward the group owning
	// host `to`, reporting whether a live connection was actually cut.
	// The next send toward that group redials.
	KillLink(to gossip.NodeID) bool
}

// Unwrapper is implemented by transport layers that forward to an
// inner transport (fault injectors, filters). AsTCP follows Unwrap
// chains so capability discovery works through any stack of wrappers.
type Unwrapper interface {
	// Unwrap returns the wrapped transport.
	Unwrap() Transport
}

// TCPConfig assembles a TCP transport.
type TCPConfig struct {
	// Groups partitions the population, exactly as for UDP: non-empty,
	// non-overlapping, sorted by Lo. Under bootstrap a process starts
	// with only its own group and learns the rest via RegisterGroup.
	Groups []Group
	// Local lists the indices into Groups this process listens for.
	Local []int
	// QueueCapacity bounds each local host's receive queue, each local
	// group's batch queue, and each peer group's send queue (0 means
	// DefaultQueue).
	QueueCapacity int
	// MaxFrame bounds frame size both ways (0 means DefaultMaxFrame).
	// Oversized sends drop; an oversized *claim* on a received stream
	// is corruption and kills the connection.
	MaxFrame int
	// DialTimeout bounds each connection attempt (0 means
	// DefaultDialTimeout).
	DialTimeout time.Duration
	// BackoffMin/BackoffMax pace redials after a broken connection:
	// first retry after BackoffMin, doubling to BackoffMax (zeros mean
	// the defaults).
	BackoffMin time.Duration
	BackoffMax time.Duration
}

// TCP carries the same self-describing wire envelopes as UDP — and the
// same columnar batch frames — over reliable streams: each message is
// one uvarint-length-prefixed frame (see internal/wire frame.go), so
// the byte stream recovers the datagram boundaries the kernel no
// longer draws.
//
// Connections are cached per peer group and dialed lazily by a
// dedicated writer goroutine per group, which coalesces every queued
// frame into one buffered write burst. A broken connection is not an
// error, it is the medium: frames sent into the outage window drop
// (counted), and the writer redials with exponential backoff. Loss
// injection composes the same way — Lossy over TCP converts drop draws
// into KillLink, so "20% loss" reads as "links fail this often", with
// the reconnect window, not a silent per-datagram coin flip, as the
// outage.
//
// Unlike UDP, the group table is mutable: RegisterGroup (fed by the
// Announce bootstrap handshake) inserts peer groups discovered at run
// time. Registration must finish before a Population binds — batch
// group indices shift as groups are inserted.
type TCP struct {
	cfg TCPConfig

	// view is the immutable snapshot of the group table; RegisterGroup
	// swaps in a rebuilt copy under mu. Hot paths load once per call.
	view atomic.Pointer[tcpView]

	// locals is keyed by group Lo and frozen after construction.
	locals map[gossip.NodeID]*tcpLocal

	// mu guards table mutation and the accepted-connection registry.
	mu       sync.Mutex
	accepted map[net.Conn]struct{}

	// hostQ is the lazily-built per-host inbox plane (same rationale
	// as UDP.hostQ: columnar runs never pay for it).
	hostQ     atomic.Pointer[map[gossip.NodeID]chan any]
	hostQOnce sync.Once

	bufs    sync.Pool
	sent    atomic.Int64
	dropped atomic.Int64
	kills   atomic.Int64
	// reconnects counts successful redials after a connection died;
	// overflow counts messages shed because a bounded queue was full
	// (sender outbox, receiver batch queue, or receiver host inbox).
	// Both are subsets of the stories dropped tells, kept separately
	// so chaos runs can tell link failure from backpressure on
	// /statusz.
	reconnects atomic.Int64
	overflow   atomic.Int64
	closed     atomic.Bool
	done       chan struct{}
	wg         sync.WaitGroup

	// announceAt records the last direct announce heard per span
	// (keyed by Lo, value unix nanos) — the freshness a seed reports in
	// the membership age section so non-seeds can run failure detectors
	// on relayed knowledge.
	announceAt sync.Map

	// spanObs, when set, receives one call per liveness observation
	// (direct announces and relayed membership ages). See
	// SetSpanObserver.
	spanObs atomic.Pointer[SpanObserver]
}

// SpanObserver receives span liveness observations from the membership
// plane: one call per direct announce heard on a listener (age 0) and
// one per relayed membership entry whose seed reported a freshness age
// (elapsed time since the seed last heard that span announce).
// Entries with unknown freshness are not delivered. Observers are
// called from transport reader goroutines and must be fast and safe
// for concurrent use — a health detector's Observe is the intended
// consumer.
type SpanObserver func(lo, hi gossip.NodeID, addr string, age time.Duration)

var (
	_ Transport  = (*TCP)(nil)
	_ Batcher    = (*TCP)(nil)
	_ LinkKiller = (*TCP)(nil)
)

// tcpView is one immutable snapshot of the membership table: groups
// sorted by Lo, peers parallel to them.
type tcpView struct {
	groups []Group
	peers  []*tcpPeer
}

// groupOf locates the group owning a host, or -1.
func (v *tcpView) groupOf(id gossip.NodeID) int {
	gs := v.groups
	i := sort.Search(len(gs), func(i int) bool { return gs[i].Hi > id })
	if i < len(gs) && id >= gs[i].Lo {
		return i
	}
	return -1
}

// tcpLocal is one listening group: its host span, its listener, and
// its batch receive queue.
type tcpLocal struct {
	lo, hi gossip.NodeID
	ln     net.Listener
	batchQ chan batchItem
}

// tcpPeer is the send side toward one group: its (mutable) address,
// its outbox, and the cached connection its writer goroutine owns.
type tcpPeer struct {
	t      *TCP
	addr   atomic.Pointer[string]
	outbox chan outFrame
	// conn mirrors the writer's current connection so KillLink and
	// Close can sever it from outside; only the writer replaces it.
	conn atomic.Pointer[net.Conn]
}

// outFrame is one queued frame: a pooled buffer whose bytes from off
// onward are the complete length-prefixed frame, plus the message
// count it carries (for drop accounting).
type outFrame struct {
	buf  *[]byte
	off  int
	msgs int
}

// NewTCP assembles the configuration from options — Options shared
// with NewUDP (layout, locality, queues) and TCPOptions for the
// stream-specific knobs; a full TCPConfig works as one big option:
//
//	NewTCP(cfg)
//	NewTCP(transport.WithLoopbackGroups(1024, 8), transport.WithMaxFrame(1<<16))
//
// then binds one listener per local group and starts its acceptor and
// one writer per known group. Peer groups whose Addr is unknown (or
// undiscovered — see RegisterGroup/Announce) drop traffic until their
// address is learned, exactly like an out-of-range radio.
func NewTCP(opts ...TCPOption) (*TCP, error) {
	var cfg TCPConfig
	for _, opt := range opts {
		opt.applyTCP(&cfg)
	}
	return newTCP(cfg)
}

// NewTCPLoopback is the single-process convenience constructor,
// mirroring NewUDPLoopback.
func NewTCPLoopback(hosts, groups, queueCapacity int) (*TCP, error) {
	if hosts <= 0 {
		return nil, fmt.Errorf("transport: hosts must be positive, got %d", hosts)
	}
	return NewTCP(WithLoopbackGroups(hosts, groups), WithQueueCapacity(queueCapacity))
}

func newTCP(cfg TCPConfig) (*TCP, error) {
	if len(cfg.Groups) == 0 {
		return nil, fmt.Errorf("transport: TCPConfig.Groups is empty")
	}
	if len(cfg.Local) == 0 {
		return nil, fmt.Errorf("transport: TCPConfig.Local is empty")
	}
	for i, g := range cfg.Groups {
		if g.Lo >= g.Hi {
			return nil, fmt.Errorf("transport: group %d range [%d,%d) is empty", i, g.Lo, g.Hi)
		}
		if i > 0 && g.Lo < cfg.Groups[i-1].Hi {
			return nil, fmt.Errorf("transport: group %d overlaps or is unsorted", i)
		}
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = DefaultQueue
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = DefaultBackoffMin
	}
	if cfg.BackoffMax < cfg.BackoffMin {
		cfg.BackoffMax = DefaultBackoffMax
		if cfg.BackoffMax < cfg.BackoffMin {
			cfg.BackoffMax = cfg.BackoffMin
		}
	}
	t := &TCP{
		cfg:      cfg,
		locals:   make(map[gossip.NodeID]*tcpLocal, len(cfg.Local)),
		accepted: make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	t.bufs.New = func() any {
		b := make([]byte, 0, 512)
		return &b
	}
	addrs := make([]string, len(cfg.Groups))
	for i, g := range cfg.Groups {
		addrs[i] = g.Addr
	}
	closeListeners := func() {
		for _, l := range t.locals {
			l.ln.Close()
		}
	}
	for _, gi := range cfg.Local {
		if gi < 0 || gi >= len(cfg.Groups) {
			closeListeners()
			return nil, fmt.Errorf("transport: local group index %d out of range", gi)
		}
		g := cfg.Groups[gi]
		if g.Addr == "" {
			closeListeners()
			return nil, fmt.Errorf("transport: local group %d needs a bind address", gi)
		}
		ln, err := net.Listen("tcp", g.Addr)
		if err != nil {
			closeListeners()
			return nil, fmt.Errorf("transport: bind group %d: %w", gi, err)
		}
		// Listen resolved the port (":0" ephemeral); record the real
		// address so peers can be told it.
		addrs[gi] = ln.Addr().String()
		t.locals[g.Lo] = &tcpLocal{
			lo: g.Lo, hi: g.Hi, ln: ln,
			batchQ: make(chan batchItem, cfg.QueueCapacity),
		}
	}
	v := &tcpView{groups: append([]Group(nil), cfg.Groups...)}
	for i := range v.groups {
		v.groups[i].Addr = addrs[i]
		v.peers = append(v.peers, t.newPeer(addrs[i]))
	}
	t.view.Store(v)
	for _, p := range v.peers {
		t.wg.Add(1)
		go p.run()
	}
	for _, l := range t.locals {
		t.wg.Add(1)
		go t.acceptLoop(l)
	}
	return t, nil
}

func (t *TCP) newPeer(addr string) *tcpPeer {
	p := &tcpPeer{t: t, outbox: make(chan outFrame, t.cfg.QueueCapacity)}
	if addr != "" {
		p.addr.Store(&addr)
	}
	return p
}

// ---- membership table ----

// SetSpanObserver installs the liveness observer (nil removes it).
// Install it before announce traffic starts; observations made while
// no observer is set are not replayed.
func (t *TCP) SetSpanObserver(fn SpanObserver) {
	if fn == nil {
		t.spanObs.Store(nil)
		return
	}
	t.spanObs.Store(&fn)
}

// observeSpan feeds one liveness observation to the installed
// observer, if any.
func (t *TCP) observeSpan(lo, hi gossip.NodeID, addr string, age time.Duration) {
	if fp := t.spanObs.Load(); fp != nil {
		(*fp)(lo, hi, addr, age)
	}
}

// membershipAges returns, parallel to groups, each span's freshness in
// milliseconds: 0 for this process's own listening spans (we are
// always current about ourselves), elapsed-since-last-announce for
// spans that have announced directly to us, AgeUnknown otherwise.
func (t *TCP) membershipAges(groups []Group) []int64 {
	now := time.Now()
	ages := make([]int64, len(groups))
	for i, g := range groups {
		ages[i] = AgeUnknown
		if _, local := t.locals[g.Lo]; local {
			ages[i] = 0
			continue
		}
		if v, ok := t.announceAt.Load(g.Lo); ok {
			if ms := now.Sub(time.Unix(0, v.(int64))).Milliseconds(); ms >= 0 {
				ages[i] = ms
			} else {
				ages[i] = 0
			}
		}
	}
	return ages
}

// Groups returns a snapshot of the membership table with current
// addresses.
func (t *TCP) Groups() []Group {
	v := t.view.Load()
	out := make([]Group, len(v.groups))
	for i, g := range v.groups {
		g.Addr = ""
		if ap := v.peers[i].addr.Load(); ap != nil {
			g.Addr = *ap
		}
		out[i] = g
	}
	return out
}

// GroupAddr returns the group's address ("" if unknown) — for a local
// group, the actual bound listener address, which is what a peer
// process needs to be told.
func (t *TCP) GroupAddr(group int) string {
	v := t.view.Load()
	if group < 0 || group >= len(v.peers) {
		return ""
	}
	if ap := v.peers[group].addr.Load(); ap != nil {
		return *ap
	}
	return ""
}

// SetGroupAddr supplies (or replaces) a group's address by index.
func (t *TCP) SetGroupAddr(group int, addr string) error {
	v := t.view.Load()
	if group < 0 || group >= len(v.peers) {
		return fmt.Errorf("transport: group index %d out of range", group)
	}
	if _, err := net.ResolveTCPAddr("tcp", addr); err != nil {
		return fmt.Errorf("transport: group %d addr %q: %w", group, addr, err)
	}
	v.peers[group].addr.Store(&addr)
	return nil
}

// Covers reports whether the known groups tile [0, total) with every
// address resolved — the bootstrap completion condition. Groups at or
// above total (observer spans) neither help nor hurt: an observer
// joining mid-bootstrap must not flip anyone's coverage back to false.
func (t *TCP) Covers(total int) bool {
	v := t.view.Load()
	at := gossip.NodeID(0)
	for i, g := range v.groups {
		if int(at) >= total {
			break
		}
		if g.Lo != at {
			return false
		}
		ap := v.peers[i].addr.Load()
		if ap == nil || *ap == "" {
			return false
		}
		at = g.Hi
	}
	return int(at) >= total
}

// RegisterGroup adds (or confirms) one peer group's span and address.
// Re-registering an identical span is idempotent; the same span at a
// different address, or any overlap with an existing group, is
// ErrSpanConflict. Must complete before a Population binds: inserting
// a group shifts batch group indices.
func (t *TCP) RegisterGroup(lo, hi gossip.NodeID, addr string) error {
	return t.registerGroup(lo, hi, addr, false)
}

// ReplaceGroup is RegisterGroup with restart semantics: an exact span
// match at a different address updates the stored address and severs
// the stale cached connection, instead of reporting ErrSpanConflict.
// Overlapping (non-identical) spans still conflict. This is how a
// process that crashed and came back on a new ephemeral port — an
// observer gateway, typically — reclaims its span.
func (t *TCP) ReplaceGroup(lo, hi gossip.NodeID, addr string) error {
	return t.registerGroup(lo, hi, addr, true)
}

func (t *TCP) registerGroup(lo, hi gossip.NodeID, addr string, replace bool) error {
	if lo < 0 || hi <= lo {
		return fmt.Errorf("transport: span [%d,%d) is empty", lo, hi)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed.Load() {
		return fmt.Errorf("transport: closed")
	}
	v := t.view.Load()
	for i, g := range v.groups {
		if lo < g.Hi && g.Lo < hi {
			if lo == g.Lo && hi == g.Hi {
				cur := ""
				if ap := v.peers[i].addr.Load(); ap != nil {
					cur = *ap
				}
				switch {
				case addr == "" || addr == cur:
					return nil
				case cur == "":
					a := addr
					v.peers[i].addr.Store(&a)
					return nil
				case replace:
					if _, local := t.locals[g.Lo]; local {
						// Nobody replaces this process's own listening
						// span out from under it.
						return fmt.Errorf("%w: span [%d,%d) is local, refused replacement from %s",
							ErrSpanConflict, lo, hi, addr)
					}
					a := addr
					v.peers[i].addr.Store(&a)
					// Sever the cached connection toward the stale
					// address; the writer redials the new one. Not
					// counted in Kills(): that is loss injection.
					if cp := v.peers[i].conn.Swap(nil); cp != nil {
						(*cp).Close()
					}
					return nil
				default:
					return fmt.Errorf("%w: span [%d,%d) already registered at %s, announced from %s",
						ErrSpanConflict, lo, hi, cur, addr)
				}
			}
			return fmt.Errorf("%w: span [%d,%d) overlaps registered [%d,%d)",
				ErrSpanConflict, lo, hi, g.Lo, g.Hi)
		}
	}
	p := t.newPeer(addr)
	i := sort.Search(len(v.groups), func(i int) bool { return v.groups[i].Lo >= lo })
	nv := &tcpView{
		groups: make([]Group, 0, len(v.groups)+1),
		peers:  make([]*tcpPeer, 0, len(v.peers)+1),
	}
	nv.groups = append(append(append(nv.groups, v.groups[:i]...), Group{Lo: lo, Hi: hi, Addr: addr}), v.groups[i:]...)
	nv.peers = append(append(append(nv.peers, v.peers[:i]...), p), v.peers[i:]...)
	t.view.Store(nv)
	t.wg.Add(1)
	go p.run()
	return nil
}

// Announce performs one bootstrap round-trip against a seed: dial,
// announce our span and listen address, read the membership reply,
// merge every entry it lists. A rejection surfaces as ErrSpanConflict
// (fatal: someone else owns our span); dial or read failures are plain
// errors the caller retries — the seed may simply not be up yet.
func (t *TCP) Announce(seedAddr string, lo, hi gossip.NodeID, selfAddr string) error {
	return t.announce(seedAddr, lo, hi, selfAddr, false)
}

// AnnounceReplace is Announce with restart semantics: the seed treats
// an exact span match at a new address as this process reclaiming its
// span (see ReplaceGroup) rather than as ErrSpanConflict, and pushes
// the updated table to the rest of the membership.
func (t *TCP) AnnounceReplace(seedAddr string, lo, hi gossip.NodeID, selfAddr string) error {
	return t.announce(seedAddr, lo, hi, selfAddr, true)
}

func (t *TCP) announce(seedAddr string, lo, hi gossip.NodeID, selfAddr string, replace bool) error {
	c, err := net.DialTimeout("tcp", seedAddr, t.cfg.DialTimeout)
	if err != nil {
		return err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(t.cfg.DialTimeout + 2*time.Second))
	payload := wire.AppendHeader(nil, wire.Header{Kind: kindAnnounce})
	payload = appendAnnounce(payload, lo, hi, selfAddr, replace)
	if _, err := c.Write(wire.AppendFrame(nil, payload)); err != nil {
		return err
	}
	scan := frameScanner{max: t.cfg.MaxFrame}
	buf := make([]byte, 4096)
	for {
		n, err := c.Read(buf)
		if n > 0 {
			scan.feed(buf[:n])
			frame, ferr := scan.next()
			if ferr != nil {
				return ferr
			}
			if frame != nil {
				return t.mergeMembership(frame)
			}
		}
		if err != nil {
			return err
		}
	}
}

func (t *TCP) mergeMembership(frame []byte) error {
	h, rest, err := wire.DecodeHeader(frame)
	if err != nil {
		return err
	}
	if h.Kind != kindMembership {
		return fmt.Errorf("transport: announce reply has kind %d, want membership", h.Kind)
	}
	entries, ages, reject, err := decodeMembership(rest)
	if err != nil {
		return err
	}
	if reject != "" {
		return fmt.Errorf("%w: seed rejected announce: %s", ErrSpanConflict, reject)
	}
	return t.mergeEntries(entries, ages)
}

// mergeEntries registers a seed-authored membership table and relays
// each entry's freshness to the span observer. Addresses replace (the
// seed already vetted the change); unknown ages are not observed —
// they say nothing about liveness.
func (t *TCP) mergeEntries(entries []Group, ages []int64) error {
	var first error
	for i, e := range entries {
		// Membership tables are seed-authored: an address change for a
		// known span is a replacement the seed already vetted.
		if err := t.registerGroup(e.Lo, e.Hi, e.Addr, true); err != nil && first == nil {
			first = err
		}
		if i < len(ages) && ages[i] >= 0 {
			t.observeSpan(e.Lo, e.Hi, e.Addr, time.Duration(ages[i])*time.Millisecond)
		}
	}
	return first
}

// ---- send path ----

// frameOff writes the uvarint length of buf[frameSlack:] backwards
// into the slack reserved ahead of it, returning the frame's start
// offset within buf.
func frameOff(buf []byte) int {
	var tmp [frameSlack]byte
	n := binary.PutUvarint(tmp[:], uint64(len(buf)-frameSlack))
	copy(buf[frameSlack-n:frameSlack], tmp[:n])
	return frameSlack - n
}

// Send implements Transport: wire-encode one envelope, frame it, and
// queue it on the destination group's outbox. Acceptance means the
// frame is in flight toward the writer goroutine — it is counted Sent
// only once handed to the kernel, and becomes a counted drop if the
// outbox is full, the connection is down and unredialable, or the
// write fails; gossip tolerates all of it by design.
func (t *TCP) Send(from, to gossip.NodeID, tick int, payload any) bool {
	if t.closed.Load() {
		t.dropped.Add(1)
		return false
	}
	v := t.view.Load()
	gi := v.groupOf(to)
	if gi < 0 {
		t.dropped.Add(1)
		return false
	}
	bp := t.bufs.Get().(*[]byte)
	var slack [frameSlack]byte
	buf, err := appendEnvelope(append((*bp)[:0], slack[:]...), from, to, tick, payload)
	if err == nil && len(buf)-frameSlack > t.cfg.MaxFrame {
		err = fmt.Errorf("transport: %d-byte frame exceeds MaxFrame %d", len(buf)-frameSlack, t.cfg.MaxFrame)
	}
	if err != nil {
		if buf != nil {
			*bp = buf
		}
		t.bufs.Put(bp)
		t.dropped.Add(1)
		return false
	}
	off := frameOff(buf)
	*bp = buf
	return t.enqueue(v.peers[gi], bp, off, 1)
}

func (t *TCP) enqueue(p *tcpPeer, bp *[]byte, off, msgs int) bool {
	select {
	case p.outbox <- outFrame{buf: bp, off: off, msgs: msgs}:
		return true
	default:
		t.bufs.Put(bp)
		t.dropped.Add(int64(msgs))
		t.overflow.Add(int64(msgs))
		return false
	}
}

// dial attempts one connection toward the peer's current address.
func (p *tcpPeer) dial() net.Conn {
	ap := p.addr.Load()
	if ap == nil || *ap == "" {
		return nil
	}
	c, err := net.DialTimeout("tcp", *ap, p.t.cfg.DialTimeout)
	if err != nil {
		return nil
	}
	return c
}

// run is the peer's writer goroutine: it owns the cached connection,
// dials lazily with exponential backoff (the shared internal/backoff
// policy: doubling from BackoffMin to BackoffMax with a little jitter,
// so peers of a restarted process do not redial in lockstep), and
// coalesces every queued frame into one buffered write burst flushed
// when the outbox runs dry. A write failure drops the frame, kills the
// connection, and leaves redialing to the next burst.
func (p *tcpPeer) run() {
	t := p.t
	defer t.wg.Done()
	var conn net.Conn
	var bw *bufio.Writer
	redial := backoff.New(backoff.Policy{Min: t.cfg.BackoffMin, Max: t.cfg.BackoffMax, Jitter: 0.1})
	var nextDial time.Time
	hadConn := false
	closeConn := func() {
		if conn != nil {
			conn.Close()
			p.conn.Store(nil)
			conn, bw = nil, nil
		}
	}
	defer closeConn()
	drop := func(it outFrame) {
		t.dropped.Add(int64(it.msgs))
		t.bufs.Put(it.buf)
	}
	for {
		var it outFrame
		select {
		case <-t.done:
			for {
				select {
				case it := <-p.outbox:
					drop(it)
				default:
					return
				}
			}
		case it = <-p.outbox:
		}
		wrote := false
		for {
			// KillLink severs the connection out from under us; the
			// mirror going nil is the signal to stop trusting ours.
			if conn != nil && p.conn.Load() == nil {
				closeConn()
			}
			if conn == nil && !t.closed.Load() && !time.Now().Before(nextDial) {
				if c := p.dial(); c != nil {
					conn, bw = c, bufio.NewWriterSize(c, 32<<10)
					cc := c
					p.conn.Store(&cc)
					conn.SetWriteDeadline(time.Now().Add(tcpWriteDeadline))
					redial.Reset()
					if hadConn {
						t.reconnects.Add(1)
					}
					hadConn = true
				} else {
					nextDial = time.Now().Add(redial.Next())
				}
			}
			if conn == nil {
				drop(it)
			} else if _, err := bw.Write((*it.buf)[it.off:]); err != nil {
				drop(it)
				closeConn()
			} else {
				t.sent.Add(int64(it.msgs))
				t.bufs.Put(it.buf)
				wrote = true
			}
			select {
			case it = <-p.outbox:
				continue
			default:
			}
			break
		}
		if conn != nil && wrote {
			conn.SetWriteDeadline(time.Now().Add(tcpWriteDeadline))
			if err := bw.Flush(); err != nil {
				// Frames buffered since the last good flush die with
				// the connection after being counted Sent — the same
				// sent-then-lost asymmetry UDP's kernel buffers have.
				closeConn()
			}
		}
	}
}

// KillLink implements LinkKiller: sever the cached connection toward
// the group owning `to`. The writer notices the severed mirror, drops
// what was in flight, and redials on the next burst.
func (t *TCP) KillLink(to gossip.NodeID) bool {
	v := t.view.Load()
	gi := v.groupOf(to)
	if gi < 0 {
		return false
	}
	return t.killPeer(v.peers[gi])
}

func (t *TCP) killPeer(p *tcpPeer) bool {
	if cp := p.conn.Swap(nil); cp != nil {
		(*cp).Close()
		t.kills.Add(1)
		return true
	}
	return false
}

// Kills returns the number of connections severed by KillLink — the
// link-failure count a Lossy-over-TCP run uses where a datagram run
// would read drop counts.
func (t *TCP) Kills() int64 { return t.kills.Load() }

// Reconnects returns the number of times a peer writer successfully
// re-established a connection after a previous one died (by write
// failure, remote close, or KillLink). The first dial toward a peer
// is not a reconnect.
func (t *TCP) Reconnects() int64 { return t.reconnects.Load() }

// OverflowDrops returns the number of messages shed because a bounded
// queue was full: sender outboxes, receiver batch queues, and
// receiver host inboxes. A subset of Dropped — the backpressure
// share, as opposed to losses from dead connections.
func (t *TCP) OverflowDrops() int64 { return t.overflow.Load() }

// AsTCP unwraps capability-forwarding layers (Lossy, or anything
// exposing Unwrap) down to the TCP transport, if one is at the bottom
// of the stack.
func AsTCP(tr Transport) (*TCP, bool) {
	for {
		switch v := tr.(type) {
		case *TCP:
			return v, true
		case *Lossy:
			tr = v.T
		case Unwrapper:
			tr = v.Unwrap()
		default:
			return nil, false
		}
	}
}

// ---- receive path ----

// frameScanner accumulates socket bytes and splits them into frames
// via wire.DecodeFrame, compacting consumed prefixes so the buffer
// stays proportional to one frame plus one read.
type frameScanner struct {
	max int
	buf []byte
	pos int
}

func (s *frameScanner) feed(p []byte) {
	if s.pos == len(s.buf) {
		s.buf, s.pos = s.buf[:0], 0
	} else if s.pos >= 4096 {
		n := copy(s.buf, s.buf[s.pos:])
		s.buf, s.pos = s.buf[:n], 0
	}
	s.buf = append(s.buf, p...)
}

// next returns the next complete frame (aliasing the internal buffer,
// valid until the next feed), nil when more bytes are needed, or an
// error when the stream is corrupt beyond resynchronization.
func (s *frameScanner) next() ([]byte, error) {
	frame, rest, err := wire.DecodeFrame(s.buf[s.pos:], s.max)
	if errors.Is(err, wire.ErrShortFrame) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	s.pos = len(s.buf) - len(rest)
	return frame, nil
}

// acceptLoop owns one local listener.
func (t *TCP) acceptLoop(l *tcpLocal) {
	defer t.wg.Done()
	for {
		c, err := l.ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed.Load() {
			t.mu.Unlock()
			c.Close()
			return
		}
		t.accepted[c] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readConn(c)
	}
}

// readConn pulls frames off one accepted connection and dispatches
// them. Corruption — a bad length, an undecodable envelope is fine but
// an unframeable *stream* is not — has no resynchronization point, so
// it drops the connection; the peer's writer will redial and start a
// clean stream.
func (t *TCP) readConn(c net.Conn) {
	defer t.wg.Done()
	defer func() {
		c.Close()
		t.mu.Lock()
		delete(t.accepted, c)
		t.mu.Unlock()
	}()
	scan := frameScanner{max: t.cfg.MaxFrame}
	buf := make([]byte, 32<<10)
	for {
		n, err := c.Read(buf)
		if n > 0 {
			scan.feed(buf[:n])
			for {
				frame, ferr := scan.next()
				if ferr != nil {
					t.dropped.Add(1)
					return
				}
				if frame == nil {
					break
				}
				t.handleFrame(c, frame)
			}
		}
		if err != nil {
			return
		}
	}
}

// handleFrame dispatches one received frame: batch frames to their
// group queue, bootstrap control frames to the membership layer,
// everything else through the envelope decoder to a host queue.
func (t *TCP) handleFrame(c net.Conn, frame []byte) {
	h, rest, err := wire.DecodeHeader(frame)
	if err != nil {
		t.dropped.Add(1)
		return
	}
	switch h.Kind {
	case kindColumnarBatch:
		// On TCP the batch header's To carries the destination group's
		// Lo host id — stable across bootstrap insertions, unlike the
		// table index UDP uses.
		l := t.locals[gossip.NodeID(h.To)]
		if l == nil {
			t.dropped.Add(int64(h.From))
			return
		}
		bp := t.bufs.Get().(*[]byte)
		*bp = append((*bp)[:0], rest...)
		select {
		case l.batchQ <- batchItem{buf: bp, msgs: int(h.From)}:
		default:
			t.bufs.Put(bp)
			t.dropped.Add(int64(h.From))
			t.overflow.Add(int64(h.From))
		}
	case kindAnnounce:
		t.handleAnnounce(c, rest)
	case kindMembership:
		// Unsolicited membership (not an announce reply): merge what it
		// lists, quietly — extra knowledge never hurts. Address changes
		// replace (the frame is seed-authored; this is how the cluster
		// learns a restarted observer's new address), and relayed
		// freshness ages feed the span observer.
		if entries, ages, reject, err := decodeMembership(rest); err == nil && reject == "" {
			_ = t.mergeEntries(entries, ages)
		}
	default:
		_, payload, err := decodePayload(h, rest)
		if err != nil {
			t.dropped.Add(1)
			return
		}
		q := t.hostQueues()[gossip.NodeID(h.To)]
		if q == nil {
			t.dropped.Add(1)
			return
		}
		select {
		case q <- payload:
		default:
			t.dropped.Add(1)
			t.overflow.Add(1)
		}
	}
}

// handleAnnounce is the seed side of the bootstrap handshake: register
// the announced span, reply on the same connection with either the
// membership table or the rejection.
func (t *TCP) handleAnnounce(c net.Conn, payload []byte) {
	lo, hi, addr, replace, err := decodeAnnounce(payload)
	if err != nil {
		t.dropped.Add(1)
		return
	}
	var reply []byte
	regErr := t.registerGroup(lo, hi, addr, replace)
	if regErr == nil {
		// A direct announce is a heartbeat: record when we heard this
		// span (the freshness the age section reports) and feed the
		// observer. Idempotent keepalive re-announces land here too —
		// that is the detector's steady diet.
		t.announceAt.Store(lo, time.Now().UnixNano())
		t.observeSpan(lo, hi, addr, 0)
		gs := t.Groups()
		reply = appendMembership(nil, gs, t.membershipAges(gs))
	} else {
		reply = appendMembershipReject(nil, regErr.Error())
	}
	frame := wire.AppendHeader(nil, wire.Header{Kind: kindMembership})
	frame = append(frame, reply...)
	c.SetWriteDeadline(time.Now().Add(tcpWriteDeadline))
	c.Write(wire.AppendFrame(nil, frame))
	if regErr == nil {
		t.pushMembership()
	}
}

// pushMembership broadcasts the current membership table to every
// remote peer with a known address, over the regular writer outboxes
// (msgs=0, so Sent/Dropped stay protocol-only; the receive side merges
// unsolicited kindMembership frames). A seed calls this after each
// accepted announce: the announce REPLY only reaches the one process
// that just dialed in, so members registered earlier would otherwise
// depend on their re-announce cadence to learn later spans — and a
// seed that completes its run and exits between a slow member's
// retries leaves that member waiting on coverage forever.
func (t *TCP) pushMembership() {
	frame := wire.AppendHeader(nil, wire.Header{Kind: kindMembership})
	gs := t.Groups()
	frame = appendMembership(frame, gs, t.membershipAges(gs))
	v := t.view.Load()
	for i, p := range v.peers {
		if _, local := t.locals[v.groups[i].Lo]; local {
			continue
		}
		if ap := p.addr.Load(); ap == nil || *ap == "" {
			continue
		}
		bp := t.bufs.Get().(*[]byte)
		var slack [frameSlack]byte
		buf := append(append((*bp)[:0], slack[:]...), frame...)
		off := frameOff(buf)
		*bp = buf
		t.enqueue(p, bp, off, 0)
	}
}

// ---- batch plane ----

// BatchGroups implements Batcher.
func (t *TCP) BatchGroups() int { return len(t.view.Load().groups) }

// BatchGroup implements Batcher.
func (t *TCP) BatchGroup(g int) (lo, hi gossip.NodeID) {
	gr := t.view.Load().groups[g]
	return gr.Lo, gr.Hi
}

// MaxBatchBody implements Batcher: the UDP ceiling (so chan, udp, and
// tcp runs batch identically) unless MaxFrame is tighter.
func (t *TCP) MaxBatchBody() int {
	m := maxUDPPayload - maxBatchHeader
	if f := t.cfg.MaxFrame - maxBatchHeader; f < m {
		m = f
	}
	return m
}

// SendBatch implements Batcher: one frame carrying a whole shard's
// wave, queued on the destination group's outbox. Failure modes are
// counted drops of all msgs messages, mirroring Send.
func (t *TCP) SendBatch(group, tick, msgs int, body []byte) bool {
	v := t.view.Load()
	if t.closed.Load() || group < 0 || group >= len(v.groups) || len(body) > t.MaxBatchBody() {
		t.dropped.Add(int64(msgs))
		return false
	}
	bp := t.bufs.Get().(*[]byte)
	var slack [frameSlack]byte
	buf := wire.AppendHeader(append((*bp)[:0], slack[:]...), wire.Header{
		Kind: kindColumnarBatch, To: int32(v.groups[group].Lo), From: int32(msgs), Tick: int32(tick),
	})
	buf = append(buf, body...)
	off := frameOff(buf)
	*bp = buf
	return t.enqueue(v.peers[group], bp, off, msgs)
}

// DrainBatch implements Batcher.
func (t *TCP) DrainBatch(group int, fn func(body []byte)) {
	v := t.view.Load()
	if group < 0 || group >= len(v.groups) {
		return
	}
	l := t.locals[v.groups[group].Lo]
	if l == nil {
		return
	}
	for {
		select {
		case it := <-l.batchQ:
			fn(*it.buf)
			t.bufs.Put(it.buf)
		default:
			return
		}
	}
}

// ---- per-host receive plane ----

// hostQueues returns the per-host inbox map, building it lazily (see
// UDP.hostQueues for the rationale).
func (t *TCP) hostQueues() map[gossip.NodeID]chan any {
	if m := t.hostQ.Load(); m != nil {
		return *m
	}
	t.hostQOnce.Do(func() {
		m := make(map[gossip.NodeID]chan any)
		for _, l := range t.locals {
			for id := l.lo; id < l.hi; id++ {
				m[id] = make(chan any, t.cfg.QueueCapacity)
			}
		}
		t.hostQ.Store(&m)
	})
	return *t.hostQ.Load()
}

// Drain implements Transport.
func (t *TCP) Drain(id gossip.NodeID, fn func(payload any)) {
	q := t.hostQueues()[id]
	if q == nil {
		return
	}
	for {
		select {
		case p := <-q:
			fn(p)
		default:
			return
		}
	}
}

// Sent implements Transport: frames handed to the kernel. As with UDP,
// "sent" does not imply delivery — a frame can be counted Sent and
// then die with its connection before the flush, or be counted again
// in Dropped when the receiver's queue sheds it.
func (t *TCP) Sent() int64 { return t.sent.Load() }

// Dropped implements Transport: encode failures, unroutable or
// unreachable destinations, outbox and receive-queue overflow, frames
// lost to broken connections.
func (t *TCP) Dropped() int64 { return t.dropped.Load() }

// Close implements Transport: stop accepting, sever every connection,
// and wait for the writers, readers, and acceptors to exit.
func (t *TCP) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.done)
	var first error
	for _, l := range t.locals {
		if err := l.ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.mu.Lock()
	v := t.view.Load()
	for _, p := range v.peers {
		if cp := p.conn.Swap(nil); cp != nil {
			(*cp).Close()
		}
	}
	for c := range t.accepted {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return first
}
