package transport

import (
	"testing"
	"time"
)

// TestProfilePresets pins the canned WAN presets table-driven: each
// preset is valid, resolvable by name, and Wrap hands its three knobs
// to the Lossy injector unchanged.
func TestProfilePresets(t *testing.T) {
	cases := []struct {
		profile  Profile
		name     string
		loss     float64
		delay    time.Duration
		jitter   time.Duration
		lossless bool
	}{
		{ProfileLAN, "lan", 0.0001, 200 * time.Microsecond, 100 * time.Microsecond, true},
		{Profile3G, "3g", 0.02, 100 * time.Millisecond, 50 * time.Millisecond, false},
		{ProfileSat, "sat", 0.01, 280 * time.Millisecond, 10 * time.Millisecond, false},
	}
	if got, want := len(Profiles()), len(cases); got != want {
		t.Fatalf("Profiles() lists %d presets, want %d", got, want)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.profile
			if p.Name != tc.name || p.Loss != tc.loss || p.Delay != tc.delay || p.Jitter != tc.jitter {
				t.Errorf("preset = %+v, want {%s %v %v %v}", p, tc.name, tc.loss, tc.delay, tc.jitter)
			}
			if err := p.Validate(); err != nil {
				t.Errorf("Validate() = %v", err)
			}
			got, ok := ProfileByName(tc.name)
			if !ok || got != p {
				t.Errorf("ProfileByName(%q) = %+v, %v", tc.name, got, ok)
			}
			// A link class ordering sanity check: LAN must be far
			// below the WAN presets in both loss and delay.
			if tc.lossless {
				if p.Loss >= Profile3G.Loss || p.Delay >= Profile3G.Delay {
					t.Errorf("LAN preset (%v, %v) not strictly better than 3G (%v, %v)",
						p.Loss, p.Delay, Profile3G.Loss, Profile3G.Delay)
				}
			}
			l := p.Wrap(NewChannel(2, 4), 7)
			if l.T == nil || l.P != p.Loss || l.Delay != p.Delay || l.Jitter != p.Jitter || l.Seed != 7 {
				t.Errorf("Wrap() = %+v", l)
			}
			if err := l.Validate(); err != nil {
				t.Errorf("wrapped injector invalid: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Errorf("Close() = %v", err)
			}
		})
	}
	if _, ok := ProfileByName("5g"); ok {
		t.Error("unknown preset name resolved")
	}
	if got := ProfileNames(); len(got) != 3 || got[0] != "lan" || got[1] != "3g" || got[2] != "sat" {
		t.Errorf("ProfileNames() = %v", got)
	}
}

// TestProfileLANDelivers runs real messages through the LAN preset:
// delayed deliveries must all land (Close waits for them), and the
// sent/dropped books must cover every message.
func TestProfileLANDelivers(t *testing.T) {
	const msgs = 64
	inner := NewChannel(2, msgs)
	l := ProfileLAN.Wrap(inner, 3)
	accepted := 0
	for i := 0; i < msgs; i++ {
		if l.Send(0, 1, i, i) {
			accepted++
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := 0
	l.Drain(1, func(any) { got++ })
	if got != accepted {
		t.Errorf("delivered %d of %d accepted messages", got, accepted)
	}
	if total := l.Sent() + l.Dropped(); total != msgs {
		t.Errorf("Sent+Dropped = %d, want %d", total, msgs)
	}
}
