package transport

import (
	"encoding/binary"
	"fmt"
	"sort"

	"dynagg/internal/gossip"
	"dynagg/internal/protocol/extremes"
	"dynagg/internal/protocol/moments"
	"dynagg/internal/protocol/multi"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
	"dynagg/internal/wire"
)

// Protocol kind tags carried in the envelope header so a datagram is
// self-describing: the receiver needs no out-of-band agreement about
// which protocol is running to decode (or reject) a payload.
const (
	kindPushSumMass uint8 = iota + 1
	kindRevertMass
	kindMomentsMass
	kindResetCounters
	kindSketchBits
	kindCandidates
	// kindColumnarBatch tags a Batcher datagram: the header's To is
	// the destination group index (on TCP: the destination group's Lo
	// host id, which stays stable while bootstrap is still inserting
	// groups and shifting indices), From the encoded message count, and
	// the body an opaque run of protocol-framed records the columnar
	// live path decodes straight into state columns.
	kindColumnarBatch
	// kindAnnounce and kindMembership are the TCP bootstrap control
	// frames: a joining process announces its [Lo,Hi) span and listen
	// address; the seed replies with the membership table it knows (or
	// a rejection when the span conflicts). See membership.go.
	kindAnnounce
	kindMembership
	// kindMultiBundle tags a multi-protocol bundle: named
	// Push-Sum-Revert masses plus an optional Count-Sketch-Reset
	// counter matrix, the paper's Figure 7 deployment in one datagram.
	kindMultiBundle
)

// maxCounterElements bounds the counter matrices a datagram may carry
// (the paper's sketches are 64×24 = 1536 counters; this leaves two
// orders of magnitude of headroom without letting a hostile datagram
// size an allocation).
const maxCounterElements = 1 << 16

// maxBundleAggregates and maxAggregateNameLen bound a multi bundle: a
// hostile datagram must not be able to size an unbounded map or string
// allocation. Real deployments carry a handful of short names.
const (
	maxBundleAggregates = 1 << 10
	maxAggregateNameLen = 256
)

// appendEnvelope encodes header + payload for one cross-host message.
// Both the value payloads of Emit and the pointer payloads of
// EmitAppend are accepted; an unknown payload type is an error (the
// caller counts it as a drop).
func appendEnvelope(dst []byte, from, to gossip.NodeID, tick int, payload any) ([]byte, error) {
	hdr := func(kind uint8) wire.Header {
		return wire.Header{Kind: kind, To: int32(to), From: int32(from), Tick: int32(tick)}
	}
	switch p := payload.(type) {
	case pushsum.Mass:
		dst = wire.AppendHeader(dst, hdr(kindPushSumMass))
		return wire.AppendMass(dst, p.W, p.V), nil
	case *pushsum.Mass:
		dst = wire.AppendHeader(dst, hdr(kindPushSumMass))
		return wire.AppendMass(dst, p.W, p.V), nil
	case pushsumrevert.Mass:
		dst = wire.AppendHeader(dst, hdr(kindRevertMass))
		return wire.AppendMass(dst, p.W, p.V), nil
	case *pushsumrevert.Mass:
		dst = wire.AppendHeader(dst, hdr(kindRevertMass))
		return wire.AppendMass(dst, p.W, p.V), nil
	case moments.Mass:
		dst = wire.AppendHeader(dst, hdr(kindMomentsMass))
		return wire.AppendMass3(dst, p.W, p.V, p.Q), nil
	case *moments.Mass:
		dst = wire.AppendHeader(dst, hdr(kindMomentsMass))
		return wire.AppendMass3(dst, p.W, p.V, p.Q), nil
	case []uint8:
		dst = wire.AppendHeader(dst, hdr(kindResetCounters))
		return wire.AppendCounters(dst, p), nil
	case *sketchreset.Counters:
		dst = wire.AppendHeader(dst, hdr(kindResetCounters))
		return wire.AppendCounters(dst, p.Ages), nil
	case *sketch.Sketch:
		// The bin words alone don't determine the sketch shape, so the
		// level count rides along ahead of them.
		dst = wire.AppendHeader(dst, hdr(kindSketchBits))
		dst = binary.AppendUvarint(dst, uint64(p.Params().Levels))
		return wire.AppendSketchBits(dst, p.Bits()), nil
	case []extremes.Candidate:
		dst = wire.AppendHeader(dst, hdr(kindCandidates))
		return appendCandidates(dst, p), nil
	case *extremes.Table:
		dst = wire.AppendHeader(dst, hdr(kindCandidates))
		return appendCandidates(dst, p.Candidates), nil
	case multi.Bundle:
		return appendMultiBundle(dst, hdr(kindMultiBundle), p)
	case *multi.Bundle:
		return appendMultiBundle(dst, hdr(kindMultiBundle), *p)
	default:
		return nil, fmt.Errorf("transport: no wire encoding for payload %T", payload)
	}
}

// appendMultiBundle encodes a multi-protocol bundle: an aggregate
// count, then (name, mass) pairs in sorted name order, then a flag
// byte announcing whether the sketch counter matrix follows.
func appendMultiBundle(dst []byte, h wire.Header, b multi.Bundle) ([]byte, error) {
	if len(b.Masses) > maxBundleAggregates {
		return nil, fmt.Errorf("transport: multi bundle with %d aggregates exceeds cap %d", len(b.Masses), maxBundleAggregates)
	}
	dst = wire.AppendHeader(dst, h)
	dst = binary.AppendUvarint(dst, uint64(len(b.Masses)))
	names := make([]string, 0, len(b.Masses))
	for name := range b.Masses {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if len(name) > maxAggregateNameLen {
			return nil, fmt.Errorf("transport: multi aggregate name %d bytes exceeds cap %d", len(name), maxAggregateNameLen)
		}
		var m pushsumrevert.Mass
		switch mp := b.Masses[name].(type) {
		case pushsumrevert.Mass:
			m = mp
		case *pushsumrevert.Mass:
			m = *mp
		default:
			return nil, fmt.Errorf("transport: multi bundle mass %T for %q", b.Masses[name], name)
		}
		dst = binary.AppendUvarint(dst, uint64(len(name)))
		dst = append(dst, name...)
		dst = wire.AppendMass(dst, m.W, m.V)
	}
	switch c := b.Count.(type) {
	case nil:
		dst = append(dst, 0)
	case []uint8:
		dst = append(dst, 1)
		dst = wire.AppendCounters(dst, c)
	case *sketchreset.Counters:
		dst = append(dst, 1)
		dst = wire.AppendCounters(dst, c.Ages)
	default:
		return nil, fmt.Errorf("transport: multi bundle count payload %T", b.Count)
	}
	return dst, nil
}

func appendCandidates(dst []byte, cands []extremes.Candidate) []byte {
	wc := make([]wire.Candidate, len(cands))
	for i, c := range cands {
		wc[i] = wire.Candidate{Value: c.Value, Owner: int32(c.Owner), Age: int32(c.Age)}
	}
	return wire.AppendCandidates(dst, wc)
}

// decodeEnvelope parses one datagram into its header and a payload
// value of the exact Go type the protocol's Receive expects from Emit.
func decodeEnvelope(src []byte) (wire.Header, any, error) {
	h, rest, err := wire.DecodeHeader(src)
	if err != nil {
		return wire.Header{}, nil, err
	}
	return decodePayload(h, rest)
}

// decodePayload decodes the post-header bytes of a per-host datagram
// (the reader peels the header first so batch datagrams can bypass
// payload boxing entirely).
func decodePayload(h wire.Header, rest []byte) (wire.Header, any, error) {
	switch h.Kind {
	case kindPushSumMass:
		w, v, _, err := wire.DecodeMass(rest)
		if err != nil {
			return wire.Header{}, nil, err
		}
		return h, pushsum.Mass{W: w, V: v}, nil
	case kindRevertMass:
		w, v, _, err := wire.DecodeMass(rest)
		if err != nil {
			return wire.Header{}, nil, err
		}
		return h, pushsumrevert.Mass{W: w, V: v}, nil
	case kindMomentsMass:
		w, v, q, _, err := wire.DecodeMass3(rest)
		if err != nil {
			return wire.Header{}, nil, err
		}
		return h, moments.Mass{W: w, V: v, Q: q}, nil
	case kindResetCounters:
		counters, _, err := wire.DecodeCountersAlloc(rest, maxCounterElements)
		if err != nil {
			return wire.Header{}, nil, err
		}
		return h, counters, nil
	case kindSketchBits:
		// The uint64→int narrowing below must not wrap before
		// Params.Validate (the authority on sketch shape) sees the value.
		levels, n := binary.Uvarint(rest)
		if n <= 0 || levels > sketch.MaxLevels {
			return wire.Header{}, nil, fmt.Errorf("transport: sketch datagram: bad level count")
		}
		bits, _, err := wire.DecodeSketchBits(rest[n:])
		if err != nil {
			return wire.Header{}, nil, err
		}
		params := sketch.Params{Bins: len(bits), Levels: int(levels)}
		if err := params.Validate(); err != nil {
			return wire.Header{}, nil, fmt.Errorf("transport: sketch datagram: %w", err)
		}
		s := sketch.New(params)
		s.LoadBits(bits)
		return h, s, nil
	case kindCandidates:
		wc, _, err := wire.DecodeCandidates(rest)
		if err != nil {
			return wire.Header{}, nil, err
		}
		cands := make([]extremes.Candidate, len(wc))
		for i, c := range wc {
			cands[i] = extremes.Candidate{Value: c.Value, Owner: gossip.NodeID(c.Owner), Age: int(c.Age)}
		}
		return h, cands, nil
	case kindMultiBundle:
		count, used := binary.Uvarint(rest)
		if used <= 0 || count > maxBundleAggregates {
			return wire.Header{}, nil, fmt.Errorf("transport: multi bundle: bad aggregate count")
		}
		rest = rest[used:]
		masses := make(map[string]any, count)
		for i := uint64(0); i < count; i++ {
			l, used := binary.Uvarint(rest)
			if used <= 0 || l > maxAggregateNameLen || uint64(len(rest)-used) < l {
				return wire.Header{}, nil, fmt.Errorf("transport: multi bundle: bad aggregate name length")
			}
			name := string(rest[used : used+int(l)])
			rest = rest[used+int(l):]
			w, v, r, err := wire.DecodeMass(rest)
			if err != nil {
				return wire.Header{}, nil, err
			}
			masses[name] = pushsumrevert.Mass{W: w, V: v}
			rest = r
		}
		if len(rest) < 1 {
			return wire.Header{}, nil, fmt.Errorf("transport: multi bundle: missing sketch flag")
		}
		flag := rest[0]
		b := multi.Bundle{Masses: masses}
		switch flag {
		case 0:
		case 1:
			counters, _, err := wire.DecodeCountersAlloc(rest[1:], maxCounterElements)
			if err != nil {
				return wire.Header{}, nil, err
			}
			b.Count = counters
		default:
			return wire.Header{}, nil, fmt.Errorf("transport: multi bundle: bad sketch flag %d", flag)
		}
		return h, b, nil
	default:
		return wire.Header{}, nil, fmt.Errorf("transport: unknown payload kind %d", h.Kind)
	}
}
