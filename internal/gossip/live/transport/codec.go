package transport

import (
	"encoding/binary"
	"fmt"

	"dynagg/internal/gossip"
	"dynagg/internal/protocol/extremes"
	"dynagg/internal/protocol/moments"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
	"dynagg/internal/wire"
)

// Protocol kind tags carried in the envelope header so a datagram is
// self-describing: the receiver needs no out-of-band agreement about
// which protocol is running to decode (or reject) a payload.
const (
	kindPushSumMass uint8 = iota + 1
	kindRevertMass
	kindMomentsMass
	kindResetCounters
	kindSketchBits
	kindCandidates
	// kindColumnarBatch tags a Batcher datagram: the header's To is
	// the destination group index (on TCP: the destination group's Lo
	// host id, which stays stable while bootstrap is still inserting
	// groups and shifting indices), From the encoded message count, and
	// the body an opaque run of protocol-framed records the columnar
	// live path decodes straight into state columns.
	kindColumnarBatch
	// kindAnnounce and kindMembership are the TCP bootstrap control
	// frames: a joining process announces its [Lo,Hi) span and listen
	// address; the seed replies with the membership table it knows (or
	// a rejection when the span conflicts). See membership.go.
	kindAnnounce
	kindMembership
)

// maxCounterElements bounds the counter matrices a datagram may carry
// (the paper's sketches are 64×24 = 1536 counters; this leaves two
// orders of magnitude of headroom without letting a hostile datagram
// size an allocation).
const maxCounterElements = 1 << 16

// appendEnvelope encodes header + payload for one cross-host message.
// Both the value payloads of Emit and the pointer payloads of
// EmitAppend are accepted; an unknown payload type is an error (the
// caller counts it as a drop).
func appendEnvelope(dst []byte, from, to gossip.NodeID, tick int, payload any) ([]byte, error) {
	hdr := func(kind uint8) wire.Header {
		return wire.Header{Kind: kind, To: int32(to), From: int32(from), Tick: int32(tick)}
	}
	switch p := payload.(type) {
	case pushsum.Mass:
		dst = wire.AppendHeader(dst, hdr(kindPushSumMass))
		return wire.AppendMass(dst, p.W, p.V), nil
	case *pushsum.Mass:
		dst = wire.AppendHeader(dst, hdr(kindPushSumMass))
		return wire.AppendMass(dst, p.W, p.V), nil
	case pushsumrevert.Mass:
		dst = wire.AppendHeader(dst, hdr(kindRevertMass))
		return wire.AppendMass(dst, p.W, p.V), nil
	case *pushsumrevert.Mass:
		dst = wire.AppendHeader(dst, hdr(kindRevertMass))
		return wire.AppendMass(dst, p.W, p.V), nil
	case moments.Mass:
		dst = wire.AppendHeader(dst, hdr(kindMomentsMass))
		return wire.AppendMass3(dst, p.W, p.V, p.Q), nil
	case *moments.Mass:
		dst = wire.AppendHeader(dst, hdr(kindMomentsMass))
		return wire.AppendMass3(dst, p.W, p.V, p.Q), nil
	case []uint8:
		dst = wire.AppendHeader(dst, hdr(kindResetCounters))
		return wire.AppendCounters(dst, p), nil
	case *sketchreset.Counters:
		dst = wire.AppendHeader(dst, hdr(kindResetCounters))
		return wire.AppendCounters(dst, p.Ages), nil
	case *sketch.Sketch:
		// The bin words alone don't determine the sketch shape, so the
		// level count rides along ahead of them.
		dst = wire.AppendHeader(dst, hdr(kindSketchBits))
		dst = binary.AppendUvarint(dst, uint64(p.Params().Levels))
		return wire.AppendSketchBits(dst, p.Bits()), nil
	case []extremes.Candidate:
		dst = wire.AppendHeader(dst, hdr(kindCandidates))
		return appendCandidates(dst, p), nil
	case *extremes.Table:
		dst = wire.AppendHeader(dst, hdr(kindCandidates))
		return appendCandidates(dst, p.Candidates), nil
	default:
		return nil, fmt.Errorf("transport: no wire encoding for payload %T", payload)
	}
}

func appendCandidates(dst []byte, cands []extremes.Candidate) []byte {
	wc := make([]wire.Candidate, len(cands))
	for i, c := range cands {
		wc[i] = wire.Candidate{Value: c.Value, Owner: int32(c.Owner), Age: int32(c.Age)}
	}
	return wire.AppendCandidates(dst, wc)
}

// decodeEnvelope parses one datagram into its header and a payload
// value of the exact Go type the protocol's Receive expects from Emit.
func decodeEnvelope(src []byte) (wire.Header, any, error) {
	h, rest, err := wire.DecodeHeader(src)
	if err != nil {
		return wire.Header{}, nil, err
	}
	return decodePayload(h, rest)
}

// decodePayload decodes the post-header bytes of a per-host datagram
// (the reader peels the header first so batch datagrams can bypass
// payload boxing entirely).
func decodePayload(h wire.Header, rest []byte) (wire.Header, any, error) {
	switch h.Kind {
	case kindPushSumMass:
		w, v, _, err := wire.DecodeMass(rest)
		if err != nil {
			return wire.Header{}, nil, err
		}
		return h, pushsum.Mass{W: w, V: v}, nil
	case kindRevertMass:
		w, v, _, err := wire.DecodeMass(rest)
		if err != nil {
			return wire.Header{}, nil, err
		}
		return h, pushsumrevert.Mass{W: w, V: v}, nil
	case kindMomentsMass:
		w, v, q, _, err := wire.DecodeMass3(rest)
		if err != nil {
			return wire.Header{}, nil, err
		}
		return h, moments.Mass{W: w, V: v, Q: q}, nil
	case kindResetCounters:
		counters, _, err := wire.DecodeCountersAlloc(rest, maxCounterElements)
		if err != nil {
			return wire.Header{}, nil, err
		}
		return h, counters, nil
	case kindSketchBits:
		// The uint64→int narrowing below must not wrap before
		// Params.Validate (the authority on sketch shape) sees the value.
		levels, n := binary.Uvarint(rest)
		if n <= 0 || levels > sketch.MaxLevels {
			return wire.Header{}, nil, fmt.Errorf("transport: sketch datagram: bad level count")
		}
		bits, _, err := wire.DecodeSketchBits(rest[n:])
		if err != nil {
			return wire.Header{}, nil, err
		}
		params := sketch.Params{Bins: len(bits), Levels: int(levels)}
		if err := params.Validate(); err != nil {
			return wire.Header{}, nil, fmt.Errorf("transport: sketch datagram: %w", err)
		}
		s := sketch.New(params)
		s.LoadBits(bits)
		return h, s, nil
	case kindCandidates:
		wc, _, err := wire.DecodeCandidates(rest)
		if err != nil {
			return wire.Header{}, nil, err
		}
		cands := make([]extremes.Candidate, len(wc))
		for i, c := range wc {
			cands[i] = extremes.Candidate{Value: c.Value, Owner: gossip.NodeID(c.Owner), Age: int(c.Age)}
		}
		return h, cands, nil
	default:
		return wire.Header{}, nil, fmt.Errorf("transport: unknown payload kind %d", h.Kind)
	}
}
