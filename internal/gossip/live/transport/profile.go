package transport

import (
	"fmt"
	"time"
)

// Profile is a canned WAN condition for the Lossy injector — loss
// probability plus one-way delay with uniform jitter, the same knobs
// netem exposes — so experiments can cite "3G-like" or "sat-link"
// conditions instead of raw probabilities.
type Profile struct {
	// Name is the CLI-facing identifier ("lan", "3g", "sat").
	Name string
	// Loss is the per-message drop probability in [0, 1].
	Loss float64
	// Delay is the one-way delivery delay; Jitter adds a uniform
	// random extra in [0, Jitter).
	Delay  time.Duration
	Jitter time.Duration
}

// The canned presets. Numbers are the commonly cited netem-style
// figures for each link class: a switched LAN is sub-millisecond and
// essentially lossless; a loaded 3G cell adds ~100 ms one-way with
// heavy jitter and a few percent loss; a GEO satellite hop is
// dominated by ~280 ms of propagation with modest jitter.
var (
	ProfileLAN = Profile{Name: "lan", Loss: 0.0001, Delay: 200 * time.Microsecond, Jitter: 100 * time.Microsecond}
	Profile3G  = Profile{Name: "3g", Loss: 0.02, Delay: 100 * time.Millisecond, Jitter: 50 * time.Millisecond}
	ProfileSat = Profile{Name: "sat", Loss: 0.01, Delay: 280 * time.Millisecond, Jitter: 10 * time.Millisecond}
)

// Profiles returns the canned presets, in documentation order.
func Profiles() []Profile {
	return []Profile{ProfileLAN, Profile3G, ProfileSat}
}

// ProfileByName resolves a preset by its Name; ok is false for unknown
// names.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// ProfileNames returns the valid -wan preset names, for CLI help and
// error text.
func ProfileNames() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// Wrap layers the profile's loss, delay, and jitter over t as a Lossy
// injector with the given PRNG seed.
func (p Profile) Wrap(t Transport, seed uint64) *Lossy {
	return &Lossy{T: t, P: p.Loss, Seed: seed, Delay: p.Delay, Jitter: p.Jitter}
}

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	if p.Loss < 0 || p.Loss > 1 {
		return fmt.Errorf("transport: profile %q Loss %v outside [0,1]", p.Name, p.Loss)
	}
	if p.Delay < 0 || p.Jitter < 0 {
		return fmt.Errorf("transport: profile %q has negative delay/jitter", p.Name)
	}
	return nil
}
