package transport

import (
	"bytes"
	"math"
	"testing"
	"time"

	"dynagg/internal/gossip"
)

// TestChannelBatchRoundTrip pins the in-process batch plane: bodies
// come back intact and in order on the group they were sent to, and
// the accounting is per message, not per batch.
func TestChannelBatchRoundTrip(t *testing.T) {
	c := NewChannelGroups(8, 4, 2)
	if got := c.BatchGroups(); got != 2 {
		t.Fatalf("BatchGroups = %d, want 2", got)
	}
	if lo, hi := c.BatchGroup(0); lo != 0 || hi != 4 {
		t.Errorf("BatchGroup(0) = [%d,%d), want [0,4)", lo, hi)
	}
	if lo, hi := c.BatchGroup(1); lo != 4 || hi != 8 {
		t.Errorf("BatchGroup(1) = [%d,%d), want [4,8)", lo, hi)
	}

	if !c.SendBatch(1, 0, 3, []byte("abc")) {
		t.Fatal("SendBatch rejected")
	}
	if !c.SendBatch(1, 0, 2, []byte("de")) {
		t.Fatal("SendBatch rejected")
	}
	if got := c.Sent(); got != 5 {
		t.Errorf("Sent = %d, want 5 (per-message accounting)", got)
	}

	var got [][]byte
	c.DrainBatch(1, func(body []byte) {
		got = append(got, append([]byte(nil), body...))
	})
	if len(got) != 2 || !bytes.Equal(got[0], []byte("abc")) || !bytes.Equal(got[1], []byte("de")) {
		t.Errorf("drained %q, want [abc de]", got)
	}
	c.DrainBatch(0, func([]byte) { t.Error("group 0 received a batch sent to group 1") })
}

// TestChannelBatchOverflowCountsMessages pins the shed path: a full
// batch queue drops the whole batch and charges every message in it
// to Dropped.
func TestChannelBatchOverflowCountsMessages(t *testing.T) {
	c := NewChannelGroups(4, 1, 1) // batch queue capacity 1
	if !c.SendBatch(0, 0, 2, []byte("ok")) {
		t.Fatal("first batch rejected")
	}
	if c.SendBatch(0, 0, 7, []byte("overflow")) {
		t.Fatal("second batch accepted past capacity")
	}
	if got := c.Dropped(); got != 7 {
		t.Errorf("Dropped = %d, want 7 (the shed batch's message count)", got)
	}
	if got := c.Sent(); got != 2 {
		t.Errorf("Sent = %d, want 2", got)
	}
}

// TestChannelBatchBodyIsCopied pins the aliasing contract: SendBatch's
// body is only valid during the call, so the transport must copy —
// mutating the caller's buffer after sending must not corrupt the
// queued batch.
func TestChannelBatchBodyIsCopied(t *testing.T) {
	c := NewChannelGroups(4, 4, 1)
	buf := []byte("before")
	if !c.SendBatch(0, 0, 1, buf) {
		t.Fatal("SendBatch rejected")
	}
	copy(buf, "mangle")
	c.DrainBatch(0, func(body []byte) {
		if !bytes.Equal(body, []byte("before")) {
			t.Errorf("drained %q, want the pre-mutation body", body)
		}
	})
}

// TestUDPBatchRoundTrip sends a batch through a real loopback socket:
// the body must come back on the destination group byte-identical,
// with per-message accounting on both ends.
func TestUDPBatchRoundTrip(t *testing.T) {
	u, err := NewUDPLoopback(64, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()

	body := []byte{0x01, 0xaa, 0xbb, 0xcc}
	if !u.SendBatch(1, 5, 3, body) {
		t.Fatal("SendBatch rejected")
	}
	var got []byte
	deadline := time.Now().Add(5 * time.Second)
	for got == nil && time.Now().Before(deadline) {
		u.DrainBatch(1, func(b []byte) { got = append([]byte(nil), b...) })
		if got == nil {
			time.Sleep(time.Millisecond)
		}
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("drained %x, want %x", got, body)
	}
	if u.Sent() != 3 {
		t.Errorf("Sent = %d, want 3 (per-message accounting)", u.Sent())
	}
	u.DrainBatch(0, func([]byte) { t.Error("group 0 received a batch sent to group 1") })
}

// TestUDPBatchOversizeDropsWhole pins the size ceiling: a body past
// MaxBatchBody can't fit one datagram, so the whole batch drops with
// its messages counted.
func TestUDPBatchOversizeDropsWhole(t *testing.T) {
	u, err := NewUDPLoopback(8, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if u.SendBatch(0, 0, 9, make([]byte, u.MaxBatchBody()+1)) {
		t.Fatal("oversized batch accepted")
	}
	if got := u.Dropped(); got != 9 {
		t.Errorf("Dropped = %d, want 9", got)
	}
}

// TestLossyBatchDropRate pins the injector's batch semantics: one loss
// draw per batch, all of its messages charged together, and the
// per-message drop rate converging to P.
func TestLossyBatchDropRate(t *testing.T) {
	const batches, msgsPer, p = 2000, 3, 0.5
	inner := NewChannelGroups(8, 2*batches, 1)
	l, err := NewLossy(inner, WithLoss(p), WithLossSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	body := []byte("xyz")
	for i := 0; i < batches; i++ {
		l.SendBatch(0, i, msgsPer, body)
	}
	total := float64(batches * msgsPer)
	rate := float64(l.Dropped()) / total
	if math.Abs(rate-p) > 0.05 {
		t.Errorf("drop rate %.4f over %d messages, want ≈ %.2f", rate, int(total), p)
	}
	if l.Dropped()%msgsPer != 0 {
		t.Errorf("Dropped = %d, want a multiple of %d (whole batches)", l.Dropped(), msgsPer)
	}
	if got := l.Sent() + l.Dropped(); got != int64(total) {
		t.Errorf("Sent+Dropped = %d, want %d", got, int(total))
	}
}

// TestAsBatcherUnwrapsCapability pins the capability probe: a Lossy
// stack is a Batcher exactly when its inner transport is one.
func TestAsBatcherUnwrapsCapability(t *testing.T) {
	ch := NewChannelGroups(4, 1, 2)
	if _, ok := AsBatcher(ch); !ok {
		t.Error("Channel must expose its batch plane")
	}
	if _, ok := AsBatcher(&Lossy{T: ch, P: 0.1}); !ok {
		t.Error("Lossy over a Batcher must expose the batch plane")
	}
	if _, ok := AsBatcher(&Lossy{T: plainTransport{}, P: 0.1}); ok {
		t.Error("Lossy over a batchless transport must not claim a batch plane")
	}
	if _, ok := AsBatcher(plainTransport{}); ok {
		t.Error("batchless transport must not claim a batch plane")
	}
}

// plainTransport implements Transport and nothing else.
type plainTransport struct{}

func (plainTransport) Send(from, to gossip.NodeID, tick int, payload any) bool { return false }
func (plainTransport) Drain(id gossip.NodeID, fn func(payload any))            {}
func (plainTransport) Sent() int64                                             { return 0 }
func (plainTransport) Dropped() int64                                          { return 0 }
func (plainTransport) Close() error                                            { return nil }
