package transport

import (
	"testing"
	"time"
)

// TestNewUDPOptionsMatchLoopbackHelper pins the option-style
// constructor against the loopback helper it generalizes: the same
// group layout, every group bound locally.
func TestNewUDPOptionsMatchLoopbackHelper(t *testing.T) {
	a, err := NewUDPLoopback(100, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewUDP(WithLoopbackGroups(100, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.BatchGroups() != b.BatchGroups() {
		t.Fatalf("group counts differ: %d vs %d", a.BatchGroups(), b.BatchGroups())
	}
	for g := 0; g < a.BatchGroups(); g++ {
		alo, ahi := a.BatchGroup(g)
		blo, bhi := b.BatchGroup(g)
		if alo != blo || ahi != bhi {
			t.Errorf("group %d: [%d,%d) vs [%d,%d)", g, alo, ahi, blo, bhi)
		}
		if b.GroupAddr(g) == "" {
			t.Errorf("group %d not bound locally", g)
		}
	}
}

// TestNewUDPAcceptsConfigAsOption pins the compatibility bridge: a
// whole UDPConfig value is itself an option, so pre-redesign call
// sites `NewUDP(cfg)` keep compiling and behaving.
func TestNewUDPAcceptsConfigAsOption(t *testing.T) {
	cfg := UDPConfig{
		Groups: []Group{{Lo: 0, Hi: 8, Addr: "127.0.0.1:0"}, {Lo: 8, Hi: 16, Addr: "127.0.0.1:0"}},
		Local:  []int{0, 1},
	}
	u, err := NewUDP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if got := u.BatchGroups(); got != 2 {
		t.Fatalf("BatchGroups = %d, want 2", got)
	}
	// Options compose over a config base: an explicit queue capacity
	// layered on top must not disturb the group layout.
	v, err := NewUDP(cfg, WithQueueCapacity(32))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if lo, hi := v.BatchGroup(1); lo != 8 || hi != 16 {
		t.Errorf("BatchGroup(1) = [%d,%d), want [8,16)", lo, hi)
	}
}

// TestNewUDPValidation pins the constructor's guard rails through the
// option path.
func TestNewUDPValidation(t *testing.T) {
	if _, err := NewUDP(); err == nil {
		t.Error("NewUDP with no groups accepted")
	}
	if _, err := NewUDP(WithGroups(Group{Lo: 0, Hi: 8})); err == nil {
		t.Error("NewUDP with no local group accepted")
	}
}

// TestNewLossyOptions pins the lossy constructor: nil inner and
// out-of-range probabilities are rejected, and WithProfile installs
// the preset's full loss/delay/jitter triple.
func TestNewLossyOptions(t *testing.T) {
	if _, err := NewLossy(nil, WithLoss(0.1)); err == nil {
		t.Error("nil inner transport accepted")
	}
	ch := NewChannel(4, 0)
	if _, err := NewLossy(ch, WithLoss(1.5)); err == nil {
		t.Error("loss probability 1.5 accepted")
	}
	l, err := NewLossy(ch, WithProfile(Profile3G), WithLossSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if l.P != Profile3G.Loss || l.Delay != Profile3G.Delay || l.Jitter != Profile3G.Jitter {
		t.Errorf("profile not applied: P=%v Delay=%v Jitter=%v, want %+v",
			l.P, l.Delay, l.Jitter, Profile3G)
	}
	if l.Seed != 42 {
		t.Errorf("Seed = %d, want 42", l.Seed)
	}
	m, err := NewLossy(ch, WithLoss(0.25), WithDelay(2*time.Millisecond, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if m.P != 0.25 || m.Delay != 2*time.Millisecond || m.Jitter != time.Millisecond {
		t.Errorf("options not applied: P=%v Delay=%v Jitter=%v", m.P, m.Delay, m.Jitter)
	}
}
