package transport

import (
	"math"
	"testing"
	"time"

	"dynagg/internal/gossip"
	"dynagg/internal/protocol/multi"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/wire"
)

func TestMultiBundleRoundTrip(t *testing.T) {
	tr, err := NewTCPLoopback(8, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	counters := []uint8{255, 0, 3, 7, 255, 1}
	bundles := []multi.Bundle{
		{
			Count: counters,
			Masses: map[string]any{
				"load": pushsumrevert.Mass{W: 0.5, V: 2.25},
				"temp": &pushsumrevert.Mass{W: 0.125, V: -7},
			},
		},
		{Masses: map[string]any{"solo": pushsumrevert.Mass{W: 1, V: math.Pi}}},
		{Count: &sketchreset.Counters{Ages: counters}, Masses: map[string]any{}},
	}
	for i, b := range bundles {
		payload := any(b)
		if i == 1 {
			payload = &bundles[i] // EmitAppend sends pointers
		}
		if !tr.Send(1, 5, i, payload) {
			t.Fatalf("bundle %d: Send failed", i)
		}
		got, ok := drainOne(t, tr, 5).(multi.Bundle)
		if !ok {
			t.Fatalf("bundle %d: decoded to %T", i, got)
		}
		if len(got.Masses) != len(b.Masses) {
			t.Fatalf("bundle %d: %d masses, want %d", i, len(got.Masses), len(b.Masses))
		}
		for name, m := range b.Masses {
			want, wok := m.(pushsumrevert.Mass)
			if !wok {
				want = *m.(*pushsumrevert.Mass)
			}
			if got.Masses[name] != want {
				t.Errorf("bundle %d mass %q = %v, want %v", i, name, got.Masses[name], want)
			}
		}
		wantCount := b.Count != nil
		if gotC, isC := got.Count.([]uint8); isC != wantCount {
			t.Errorf("bundle %d count presence = %v, want %v", i, isC, wantCount)
		} else if isC {
			for j, c := range counters {
				if gotC[j] != c {
					t.Errorf("bundle %d counter %d = %d, want %d", i, j, gotC[j], c)
				}
			}
		}
	}
}

func TestMultiBundleAdversarialDecode(t *testing.T) {
	hdr := wire.AppendHeader(nil, wire.Header{Kind: kindMultiBundle, To: 1, From: 2})
	cases := map[string][]byte{
		"empty body":        hdr,
		"huge agg count":    append(append([]byte{}, hdr...), 0xff, 0xff, 0xff, 0xff, 0x7f),
		"name overruns":     append(append([]byte{}, hdr...), 1, 200, 'x'),
		"truncated mass":    append(append([]byte{}, hdr...), 1, 1, 'x', 9, 9),
		"missing flag":      buildBundleBytes(hdr, "a", nil),
		"bad flag":          append(buildBundleBytes(hdr, "a", nil), 7),
		"truncated counter": append(buildBundleBytes(hdr, "a", nil), 1, 0xff, 0x7f),
	}
	for name, frame := range cases {
		if _, _, err := decodeEnvelope(frame); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// The boundary case that must succeed: zero aggregates, no sketch.
	ok := append(append([]byte{}, hdr...), 0, 0)
	if _, payload, err := decodeEnvelope(ok); err != nil {
		t.Errorf("empty bundle: %v", err)
	} else if b := payload.(multi.Bundle); len(b.Masses) != 0 || b.Count != nil {
		t.Errorf("empty bundle decoded to %+v", b)
	}
}

// FuzzDecodeMultiBundle hammers the bundle decoder with arbitrary
// bytes: it must reject or decode, never panic or over-allocate.
func FuzzDecodeMultiBundle(f *testing.F) {
	hdr := wire.AppendHeader(nil, wire.Header{Kind: kindMultiBundle, To: 1, From: 2})
	f.Add([]byte{})
	f.Add(append(append([]byte{}, hdr...), 0, 0))
	valid, _ := appendMultiBundle(nil, wire.Header{Kind: kindMultiBundle}, multi.Bundle{
		Count:  []uint8{1, 2, 3},
		Masses: map[string]any{"x": pushsumrevert.Mass{W: 1, V: 2}},
	})
	f.Add(valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = decodeEnvelope(data)
	})
}

// buildBundleBytes assembles header + one named mass with no trailing
// sketch flag byte.
func buildBundleBytes(hdr []byte, name string, _ []byte) []byte {
	out := append(append([]byte{}, hdr...), 1, uint8(len(name)))
	out = append(out, name...)
	return wire.AppendMass(out, 1, 2)
}

// TestAnnounceReplaceReclaimsSpan is the observer-restart scenario: a
// span holder dies, comes back on a new ephemeral port, and reclaims
// its span with AnnounceReplace; the seed updates its table and pushes
// the new address to the other members, while a plain re-Announce from
// a different address keeps failing with ErrSpanConflict.
func TestAnnounceReplaceReclaimsSpan(t *testing.T) {
	mk := func(lo, hi gossip.NodeID) *TCP {
		tr, err := NewTCP(TCPConfig{
			Groups: []Group{{Lo: lo, Hi: hi, Addr: "127.0.0.1:0"}},
			Local:  []int{0},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	seed, member := mk(0, 4), mk(4, 8)
	defer seed.Close()
	defer member.Close()
	seedAddr := seed.GroupAddr(0)
	if err := member.Announce(seedAddr, 4, 8, member.GroupAddr(0)); err != nil {
		t.Fatal(err)
	}

	obs1 := mk(8, 9)
	obs1Addr := obs1.GroupAddr(0)
	if err := obs1.Announce(seedAddr, 8, 9, obs1Addr); err != nil {
		t.Fatal(err)
	}
	if !seed.Covers(9) {
		t.Fatalf("seed does not cover observer: %v", seed.Groups())
	}
	obs1.Close()

	// Restarted process, same span, new port: plain announce must be
	// refused, replace must be accepted.
	obs2 := mk(8, 9)
	defer obs2.Close()
	obs2Addr := obs2.GroupAddr(0)
	if err := obs2.Announce(seedAddr, 8, 9, obs2Addr); err == nil {
		t.Fatal("plain re-announce from a new address was accepted")
	}
	if err := obs2.AnnounceReplace(seedAddr, 8, 9, obs2Addr); err != nil {
		t.Fatalf("AnnounceReplace: %v", err)
	}
	find := func(tr *TCP) string {
		for _, g := range tr.Groups() {
			if g.Lo == 8 && g.Hi == 9 {
				return g.Addr
			}
		}
		return ""
	}
	if got := find(seed); got != obs2Addr {
		t.Errorf("seed has observer at %q, want %q", got, obs2Addr)
	}
	// The member learns the replacement via the seed's membership push,
	// which rides the regular outboxes — poll.
	deadline := time.Now().Add(5 * time.Second)
	for find(member) != obs2Addr && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := find(member); got != obs2Addr {
		t.Errorf("member has observer at %q, want %q", got, obs2Addr)
	}
	// A local span can never be replaced out from under its owner.
	if err := seed.ReplaceGroup(0, 4, "127.0.0.1:1"); err == nil {
		t.Error("local span replacement was accepted")
	}
}
