package transport

import (
	"math"
	"testing"
	"time"

	"dynagg/internal/gossip"
)

func TestChannelTransportSendDrainDrop(t *testing.T) {
	c := NewChannel(3, 2)
	defer c.Close()

	if !c.Send(0, 1, 0, "a") || !c.Send(0, 1, 0, "b") {
		t.Fatal("sends within capacity rejected")
	}
	if c.Send(2, 1, 0, "c") {
		t.Error("send beyond capacity accepted")
	}
	if got := c.Sent(); got != 2 {
		t.Errorf("Sent = %d, want 2", got)
	}
	if got := c.Dropped(); got != 1 {
		t.Errorf("Dropped = %d, want 1", got)
	}

	var got []any
	c.Drain(1, func(p any) { got = append(got, p) })
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Drain got %v, want [a b] in arrival order", got)
	}
	got = nil
	c.Drain(1, func(p any) { got = append(got, p) })
	if len(got) != 0 {
		t.Errorf("second Drain got %v, want nothing", got)
	}
}

func TestLossyDropRate(t *testing.T) {
	const n, msgs, p = 4, 20000, 0.3
	l := &Lossy{T: NewChannel(n, msgs), P: p, Seed: 42}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < msgs; i++ {
		l.Send(0, gossip.NodeID(1+i%(n-1)), i, i)
	}
	total := l.Sent() + l.Dropped()
	if total != msgs {
		t.Fatalf("sent %d + dropped %d != %d attempts", l.Sent(), l.Dropped(), msgs)
	}
	rate := float64(l.Dropped()) / float64(total)
	if math.Abs(rate-p) > 0.02 {
		t.Errorf("drop rate %.4f, want ≈ %.2f", rate, p)
	}
}

func TestLossyDelayDelivers(t *testing.T) {
	l := &Lossy{T: NewChannel(2, 4), Delay: 5 * time.Millisecond}
	l.Send(0, 1, 0, "late")
	count := 0
	l.Drain(1, func(any) { count++ })
	if count != 0 {
		t.Fatal("delayed message arrived immediately")
	}
	l.Close() // waits for delayed deliveries
	l.Drain(1, func(any) { count++ })
	if count != 1 {
		t.Errorf("got %d messages after delay, want 1", count)
	}
}

func TestChannelTransportSendAfterCloseDrops(t *testing.T) {
	c := NewChannel(2, 4)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Send(0, 1, 0, "x") {
		t.Error("send after Close accepted")
	}
	if c.Sent() != 0 || c.Dropped() != 1 {
		t.Errorf("sent %d dropped %d, want 0/1", c.Sent(), c.Dropped())
	}
}

func TestLossyTransportSendAfterCloseDrops(t *testing.T) {
	l := &Lossy{T: NewChannel(2, 4), Delay: time.Millisecond}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l.Send(0, 1, 0, "x") {
		t.Error("send after Close accepted")
	}
	if l.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", l.Dropped())
	}
}

func TestLossyValidate(t *testing.T) {
	if err := (&Lossy{P: 0.5}).Validate(); err == nil {
		t.Error("nil inner transport accepted")
	}
	if err := (&Lossy{T: NewChannel(1, 1), P: 1.5}).Validate(); err == nil {
		t.Error("P > 1 accepted")
	}
}
