package transport

import (
	"time"

	"dynagg/internal/gossip"
	"dynagg/internal/xrand"
)

// Batcher is the bulk plane of a transport: where Transport moves one
// boxed payload per call, a Batcher moves one encoded *batch* per call
// — a byte slice holding every message one shard addressed to one host
// group this tick — so a single syscall (or channel operation) serves
// a whole shard's wave. The live engine's ColumnarPopulation encodes
// straight from protocol columns into the batch body and decodes
// straight back into column deliveries; the transport never inspects
// the body beyond moving it.
//
// Groups partition the host population into contiguous [lo, hi)
// ranges, mirroring the UDP transport's socket groups; BatchGroups
// and BatchGroup expose that layout so callers can route by
// destination id and drain the groups they own.
//
// Accounting is per *message*, not per batch: SendBatch's msgs count
// is added to Sent on acceptance or to Dropped on loss, so Sent and
// Dropped stay comparable between the classic and columnar paths (and
// loss-rate assertions keep their meaning). A batch is carried by one
// datagram, so one loss event drops all its messages at once — the
// per-message loss *rate* is preserved in expectation, the
// independence of individual losses is not (real radios burst-lose
// the same way).
//
// Implementations must be safe for concurrent use. The body passed to
// SendBatch is only valid for the duration of the call (the caller
// reuses its encode buffer); the body passed to a DrainBatch callback
// is only valid for the duration of the callback.
type Batcher interface {
	// BatchGroups returns the number of host groups, 0 if the
	// transport has no batch plane (see AsBatcher).
	BatchGroups() int
	// BatchGroup returns group g's host range [lo, hi).
	BatchGroup(g int) (lo, hi gossip.NodeID)
	// MaxBatchBody returns the largest body SendBatch accepts; larger
	// bodies are dropped whole.
	MaxBatchBody() int
	// SendBatch attempts to deliver a batch of msgs encoded messages
	// to group, without blocking. False means the whole batch is gone
	// (and its msgs counted in Dropped).
	SendBatch(group, tick, msgs int, body []byte) bool
	// DrainBatch invokes fn for every batch currently queued for the
	// group, in arrival order, without blocking for more. Only groups
	// the transport receives for locally yield batches.
	DrainBatch(group int, fn func(body []byte))
}

// AsBatcher reports whether t exposes a usable batch plane, unwrapping
// capability-forwarding layers: a Lossy injector is a Batcher exactly
// when its inner transport is one (loss is still injected — the
// injector forwards batches through its own drop/delay logic, never
// around it).
func AsBatcher(t Transport) (Batcher, bool) {
	b, ok := t.(Batcher)
	if !ok || b.BatchGroups() == 0 {
		return nil, false
	}
	return b, true
}

// batchItem is one queued batch: a pooled body buffer plus its message
// count (kept for drop accounting if the queue sheds it).
type batchItem struct {
	buf  *[]byte
	msgs int
}

// maxBatchHeader is the worst-case wire.Header size a batch datagram
// spends on framing: version + kind bytes plus three maximal uvarints.
const maxBatchHeader = 2 + 3*5

// maxUDPPayload is the largest payload a single IPv4 UDP datagram can
// carry: 65535 minus the 8-byte UDP and 20-byte IP headers. Writes
// above it fail with EMSGSIZE even on loopback, so every batch plane
// caps its bodies here — a full-size batch must be one *sendable*
// datagram, not merely one encodable buffer.
const maxUDPPayload = 65507

// ---- Channel batch plane ----

// BatchGroups implements Batcher.
func (c *Channel) BatchGroups() int { return len(c.groups) }

// BatchGroup implements Batcher.
func (c *Channel) BatchGroup(g int) (lo, hi gossip.NodeID) {
	return c.groups[g].Lo, c.groups[g].Hi
}

// MaxBatchBody implements Batcher. The in-process transport has no
// physical datagram ceiling; it mirrors the UDP ceiling so chan and
// udp runs batch identically.
func (c *Channel) MaxBatchBody() int { return maxUDPPayload - maxBatchHeader }

// SendBatch implements Batcher: copy the body into a pooled buffer and
// enqueue it on the group's batch queue, non-blocking; overflow drops
// the whole batch, counted per message.
func (c *Channel) SendBatch(group, tick, msgs int, body []byte) bool {
	if c.closed.Load() || group < 0 || group >= len(c.batches) || len(body) > c.MaxBatchBody() {
		c.dropped.Add(int64(msgs))
		return false
	}
	bp := c.batchBufs.Get().(*[]byte)
	*bp = append((*bp)[:0], body...)
	select {
	case c.batches[group] <- batchItem{buf: bp, msgs: msgs}:
		c.sent.Add(int64(msgs))
		return true
	default:
		c.batchBufs.Put(bp)
		c.dropped.Add(int64(msgs))
		return false
	}
}

// DrainBatch implements Batcher.
func (c *Channel) DrainBatch(group int, fn func(body []byte)) {
	if group < 0 || group >= len(c.batches) {
		return
	}
	for {
		select {
		case it := <-c.batches[group]:
			fn(*it.buf)
			c.batchBufs.Put(it.buf)
		default:
			return
		}
	}
}

// ---- Lossy batch plane ----

// batcher returns the inner transport's batch plane, nil if it has
// none.
func (l *Lossy) batcher() Batcher {
	b, _ := l.T.(Batcher)
	return b
}

// BatchGroups implements Batcher: the inner transport's group count, 0
// when the inner transport has no batch plane (AsBatcher then reports
// the whole stack as batchless).
func (l *Lossy) BatchGroups() int {
	if b := l.batcher(); b != nil {
		return b.BatchGroups()
	}
	return 0
}

// BatchGroup implements Batcher.
func (l *Lossy) BatchGroup(g int) (lo, hi gossip.NodeID) { return l.batcher().BatchGroup(g) }

// MaxBatchBody implements Batcher.
func (l *Lossy) MaxBatchBody() int { return l.batcher().MaxBatchBody() }

// SendBatch implements Batcher: one loss draw per batch — a batch is
// one datagram, and the injector models datagram loss — so all msgs
// messages drop (or survive) together; the per-message drop *rate*
// still converges to P because the draw is independent of batch size.
func (l *Lossy) SendBatch(group, tick, msgs int, body []byte) bool {
	inner := l.batcher()
	if inner == nil {
		l.dropped.Add(int64(msgs))
		return false
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.dropped.Add(int64(msgs))
		return false
	}
	if l.rng == nil {
		l.rng = xrand.New(l.Seed)
	}
	drop := l.rng.Prob(l.P)
	var wait time.Duration
	if !drop && l.Delay > 0 {
		wait = l.Delay
		if l.Jitter > 0 {
			wait += time.Duration(l.rng.Float64() * float64(l.Jitter))
		}
		l.delayed.Add(1)
	}
	l.mu.Unlock()
	if drop {
		l.dropped.Add(int64(msgs))
		// On a stream transport the lost "datagram" is a failed link:
		// sever the connection toward the destination group.
		lo, _ := inner.BatchGroup(group)
		l.killLink(lo)
		return false
	}
	if wait > 0 {
		// The caller reuses body after we return, so a delayed batch
		// needs its own copy.
		held := append([]byte(nil), body...)
		time.AfterFunc(wait, func() {
			defer l.delayed.Done()
			inner.SendBatch(group, tick, msgs, held)
		})
		return true
	}
	return inner.SendBatch(group, tick, msgs, body)
}

// DrainBatch implements Batcher: receive-side pass-through, like Drain.
func (l *Lossy) DrainBatch(group int, fn func(body []byte)) { l.batcher().DrainBatch(group, fn) }

// Compile-time wiring of the batch planes.
var (
	_ Batcher = (*Channel)(nil)
	_ Batcher = (*UDP)(nil)
	_ Batcher = (*TCP)(nil)
	_ Batcher = (*Lossy)(nil)
)
