// Package health is the failure detector of the live stack: it rides
// the membership heartbeat traffic (Bootstrap.KeepAlive re-announces,
// observed directly at seeds and as relayed freshness ages everywhere
// else — see transport.SpanObserver) and turns per-span last-seen
// times into alive/suspect/dead verdicts plus a membership epoch that
// advances on every state transition.
//
// The suspicion threshold is phi-accrual flavoured: rather than a
// fixed timeout, each span's silence is judged against a smoothed
// estimate of its own heartbeat inter-arrival gap (an EWMA), floored
// at the configured cadence. A span that has always announced slowly —
// a clock-skewed host group ticking at a fraction of everyone else's
// rate, or a churn-stormed member whose announces stretch — raises its
// own bar and stays out of the dead list; a span that heartbeated
// briskly and then went silent crosses DeadFactor× its learned gap
// quickly. Consumers: the supervisor (restart dead members), the
// gateway (degrade instead of lying), and any member that wants to
// know who it has lost.
package health

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live/transport"
)

// State is a span's liveness verdict.
type State int

// The detector's verdict ladder. A span enters at Alive on its first
// observation; silence promotes it to Suspect and then Dead; any fresh
// heartbeat demotes it straight back to Alive.
const (
	// Alive: heard from within the suspicion threshold.
	Alive State = iota
	// Suspect: silent past SuspectFactor× the smoothed gap — worth
	// watching, not yet worth acting on.
	Suspect
	// Dead: silent past DeadFactor× the smoothed gap — the supervisor's
	// restart trigger and the gateway's degraded condition.
	Dead
)

// String renders the state for logs and status payloads.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Defaults for Config's zero fields.
const (
	// DefaultHeartbeatEvery matches live.DefaultBootstrapReAnnounce —
	// the keepalive cadence whose re-announces are the heartbeats.
	DefaultHeartbeatEvery = time.Second
	// DefaultSuspectFactor and DefaultDeadFactor scale the smoothed
	// inter-arrival gap into the suspicion and death thresholds.
	DefaultSuspectFactor = 3.0
	DefaultDeadFactor    = 6.0
	// DefaultAlpha is the EWMA weight of the newest gap.
	DefaultAlpha = 0.25
)

// Config tunes a Detector. The zero value works for the default 1s
// keepalive cadence; deployments on a faster cadence set
// HeartbeatEvery to match (see docs/operations.md for the tuning
// runbook).
type Config struct {
	// HeartbeatEvery is the expected heartbeat cadence and the floor
	// under the smoothed gap estimate, so a brand-new span is judged
	// against the configured cadence until it has history. 0 means
	// DefaultHeartbeatEvery.
	HeartbeatEvery time.Duration
	// SuspectFactor promotes a span to Suspect once its silence
	// exceeds SuspectFactor × max(smoothed gap, HeartbeatEvery).
	// 0 means DefaultSuspectFactor.
	SuspectFactor float64
	// DeadFactor likewise gates the Dead verdict; it must exceed
	// SuspectFactor. 0 means DefaultDeadFactor.
	DeadFactor float64
	// Alpha is the EWMA weight of the newest inter-arrival gap,
	// in (0, 1]. 0 means DefaultAlpha.
	Alpha float64
	// MaxGap clamps one observed gap before it enters the EWMA, so a
	// single long outage does not poison the estimate into never
	// suspecting anyone again. 0 means 10 × HeartbeatEvery.
	MaxGap time.Duration
	// Now is the clock (tests inject a virtual one). nil means
	// time.Now.
	Now func() time.Time
}

func (c Config) normalized() Config {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if c.SuspectFactor <= 0 {
		c.SuspectFactor = DefaultSuspectFactor
	}
	if c.DeadFactor <= 0 {
		c.DeadFactor = DefaultDeadFactor
	}
	if c.DeadFactor < c.SuspectFactor {
		c.DeadFactor = c.SuspectFactor
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = DefaultAlpha
	}
	if c.MaxGap <= 0 {
		c.MaxGap = 10 * c.HeartbeatEvery
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// SpanHealth is one span's verdict in a Snapshot.
type SpanHealth struct {
	// Lo, Hi are the span's host range.
	Lo, Hi gossip.NodeID
	// Addr is the span's last known address.
	Addr string
	// State is the current verdict.
	State State
	// Silence is how long since the span was last heard from.
	Silence time.Duration
	// MeanGap is the smoothed heartbeat inter-arrival estimate
	// (0 until a second observation arrives).
	MeanGap time.Duration
}

// Snapshot is the detector's state at one instant: the membership
// epoch and every observed span's verdict, sorted by Lo.
type Snapshot struct {
	// Epoch counts state transitions since the detector started; a
	// consumer that caches membership can compare epochs instead of
	// diffing span lists.
	Epoch uint64
	// Spans lists every span the detector has ever observed.
	Spans []SpanHealth
}

// Degraded reports whether any span below total (a counted worker
// span, not an observer slot) is Dead.
func (s Snapshot) Degraded(total int) bool {
	for _, sp := range s.Spans {
		if int(sp.Lo) < total && sp.State == Dead {
			return true
		}
	}
	return false
}

// spanState is the detector's per-span record.
type spanState struct {
	lo, hi   gossip.NodeID
	addr     string
	lastSeen time.Time
	meanGap  time.Duration
	state    State
}

// Detector turns span liveness observations into verdicts. Safe for
// concurrent use: Observe is called from transport reader goroutines,
// snapshots from wherever the consumer lives.
type Detector struct {
	cfg Config

	mu    sync.Mutex
	spans map[gossip.NodeID]*spanState
	epoch uint64
}

// New returns a Detector with cfg's zero fields defaulted.
func New(cfg Config) *Detector {
	return &Detector{cfg: cfg.normalized(), spans: make(map[gossip.NodeID]*spanState)}
}

// Attach builds a Detector and installs it as tr's span observer, so
// every direct announce and relayed membership age feeds it. The
// caller owns filtering (a gateway typically only judges spans below
// its worker total — see Snapshot.Degraded).
func Attach(tr *transport.TCP, cfg Config) *Detector {
	d := New(cfg)
	tr.SetSpanObserver(func(lo, hi gossip.NodeID, addr string, age time.Duration) {
		d.Observe(lo, hi, addr, age)
	})
	return d
}

// Observe records one heartbeat for a span: age 0 for a directly
// heard announce, positive for relayed freshness (the heartbeat
// happened age ago at the reporting seed). Observations older than
// what is already known are ignored, so relays can arrive out of
// order without rolling liveness backwards.
func (d *Detector) Observe(lo, hi gossip.NodeID, addr string, age time.Duration) {
	if age < 0 {
		return
	}
	now := d.cfg.Now()
	seen := now.Add(-age)
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.spans[lo]
	if !ok {
		d.spans[lo] = &spanState{lo: lo, hi: hi, addr: addr, lastSeen: seen, state: Alive}
		d.epoch++
		return
	}
	gap := seen.Sub(st.lastSeen)
	if gap <= 0 {
		return
	}
	if gap > d.cfg.MaxGap {
		gap = d.cfg.MaxGap
	}
	if st.meanGap == 0 {
		st.meanGap = gap
	} else {
		st.meanGap = time.Duration((1-d.cfg.Alpha)*float64(st.meanGap) + d.cfg.Alpha*float64(gap))
	}
	st.lastSeen = seen
	st.hi = hi
	st.addr = addr
	if st.state != Alive {
		st.state = Alive
		d.epoch++
	}
}

// evaluate re-judges every span against the clock; callers hold mu.
func (d *Detector) evaluate(now time.Time) {
	for _, st := range d.spans {
		silence := now.Sub(st.lastSeen)
		base := st.meanGap
		if base < d.cfg.HeartbeatEvery {
			base = d.cfg.HeartbeatEvery
		}
		var next State
		switch {
		case float64(silence) > d.cfg.DeadFactor*float64(base):
			next = Dead
		case float64(silence) > d.cfg.SuspectFactor*float64(base):
			next = Suspect
		default:
			next = Alive
		}
		if next != st.state {
			st.state = next
			d.epoch++
		}
	}
}

// Snapshot re-evaluates every span against the clock and returns the
// verdicts plus the membership epoch.
func (d *Detector) Snapshot() Snapshot {
	now := d.cfg.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.evaluate(now)
	out := Snapshot{Epoch: d.epoch, Spans: make([]SpanHealth, 0, len(d.spans))}
	for _, st := range d.spans {
		out.Spans = append(out.Spans, SpanHealth{
			Lo: st.lo, Hi: st.hi, Addr: st.addr, State: st.state,
			Silence: now.Sub(st.lastSeen), MeanGap: st.meanGap,
		})
	}
	sort.Slice(out.Spans, func(i, j int) bool { return out.Spans[i].Lo < out.Spans[j].Lo })
	return out
}

// Epoch re-evaluates and returns the current membership epoch.
func (d *Detector) Epoch() uint64 {
	now := d.cfg.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.evaluate(now)
	return d.epoch
}

// DeadSpans re-evaluates and returns the spans currently judged Dead,
// sorted by Lo.
func (d *Detector) DeadSpans() []SpanHealth {
	snap := d.Snapshot()
	dead := snap.Spans[:0]
	for _, sp := range snap.Spans {
		if sp.State == Dead {
			dead = append(dead, sp)
		}
	}
	return dead
}

// Forget drops a span from the detector — for supervisors that have
// decommissioned a member and do not want its corpse re-flagged.
func (d *Detector) Forget(lo gossip.NodeID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.spans[lo]; ok {
		delete(d.spans, lo)
		d.epoch++
	}
}
