package health

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynagg/internal/gossip"
)

// virtualClock is a settable clock safe for concurrent readers.
type virtualClock struct {
	nanos atomic.Int64
}

func newVirtualClock() *virtualClock {
	c := &virtualClock{}
	c.nanos.Store(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	return c
}

func (c *virtualClock) Now() time.Time          { return time.Unix(0, c.nanos.Load()) }
func (c *virtualClock) Advance(d time.Duration) { c.nanos.Add(int64(d)) }

// beat is one scheduled heartbeat: wait `after` since the previous
// beat, then observe the span.
type beat struct{ after time.Duration }

// steady emits n beats at a fixed cadence.
func steady(n int, every time.Duration) []beat {
	out := make([]beat, n)
	for i := range out {
		out[i] = beat{after: every}
	}
	return out
}

// TestNoFalsePositives drives the detector with heartbeat schedules
// shaped like the chaos catalog's clock-skew and churn-storm faults
// and asserts a live-but-slow member is never declared dead. The
// detector is checked after every single beat — a transient Dead
// verdict mid-schedule is a failure even if the member recovers.
func TestNoFalsePositives(t *testing.T) {
	const hb = time.Second
	cases := []struct {
		name     string
		schedule []beat
		// allowSuspect: slow members may legitimately pass through
		// Suspect; the test only forbids Dead.
	}{
		{
			// Catalog clockskew: Period 2 — the skewed group's clock runs
			// at half rate, so its announces arrive every 2×cadence during
			// the fault window, normal before and after.
			name: "clockskew-period-2",
			schedule: append(append(
				steady(10, hb),
				steady(20, 2*hb)...),
				steady(10, hb)...),
		},
		{
			// Catalog clockskew: Period 4 — the worst skew in the catalog.
			// The very first 4×cadence gap must already clear the dead
			// threshold (DeadFactor 6 × base), then the EWMA adapts.
			name: "clockskew-period-4",
			schedule: append(append(
				steady(10, hb),
				steady(20, 4*hb)...),
				steady(10, hb)...),
		},
		{
			// Churn storm: cadence stretches irregularly — bursts of
			// on-time beats punctuated by 2–3× delays as the member fights
			// reconnect churn.
			name: "churnstorm-jittered",
			schedule: func() []beat {
				var s []beat
				delays := []time.Duration{hb, hb, 3 * hb, hb, 2 * hb, hb, hb, 5 * hb / 2, hb, 3 * hb, hb, hb}
				for r := 0; r < 4; r++ {
					for _, d := range delays {
						s = append(s, beat{after: d})
					}
				}
				return s
			}(),
		},
		{
			// Relayed observations: the gateway hears about the span only
			// via aged membership tables, each age ~200ms stale. Staleness
			// shifts every seen-time uniformly and must not matter.
			name:     "relayed-ages",
			schedule: steady(30, hb),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newVirtualClock()
			d := New(Config{HeartbeatEvery: hb, Now: clk.Now})
			age := time.Duration(0)
			if tc.name == "relayed-ages" {
				age = 200 * time.Millisecond
			}
			d.Observe(0, 4, "127.0.0.1:1", age)
			for i, b := range tc.schedule {
				clk.Advance(b.after)
				// Judge the silence just before the beat lands — the
				// worst instant of each gap.
				for _, sp := range d.Snapshot().Spans {
					if sp.State == Dead {
						t.Fatalf("beat %d (%s gap): live member declared dead (silence %v, meanGap %v)",
							i, b.after, sp.Silence, sp.MeanGap)
					}
				}
				d.Observe(0, 4, "127.0.0.1:1", age)
				for _, sp := range d.Snapshot().Spans {
					if sp.State != Alive {
						t.Fatalf("beat %d: fresh heartbeat left state %v, want alive", i, sp.State)
					}
				}
			}
		})
	}
}

// TestDeadDetection is the positive control: a member that stops
// heartbeating is promoted Suspect and then Dead, and the epoch
// advances at each transition.
func TestDeadDetection(t *testing.T) {
	const hb = 100 * time.Millisecond
	clk := newVirtualClock()
	d := New(Config{HeartbeatEvery: hb, Now: clk.Now})
	for i := 0; i < 10; i++ {
		d.Observe(0, 4, "127.0.0.1:1", 0)
		clk.Advance(hb)
	}
	snap := d.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].State != Alive {
		t.Fatalf("warm-up: %+v, want one alive span", snap.Spans)
	}
	epochAlive := snap.Epoch

	// Silence. Default thresholds: suspect at 3×hb, dead at 6×hb.
	clk.Advance(4 * hb)
	snap = d.Snapshot()
	if snap.Spans[0].State != Suspect {
		t.Fatalf("after 4×hb silence: state %v, want suspect", snap.Spans[0].State)
	}
	if snap.Epoch <= epochAlive {
		t.Fatalf("epoch %d did not advance on suspect transition (was %d)", snap.Epoch, epochAlive)
	}
	epochSuspect := snap.Epoch

	clk.Advance(3 * hb)
	snap = d.Snapshot()
	if snap.Spans[0].State != Dead {
		t.Fatalf("after 7×hb silence: state %v, want dead", snap.Spans[0].State)
	}
	if snap.Epoch <= epochSuspect {
		t.Fatal("epoch did not advance on dead transition")
	}
	if dead := d.DeadSpans(); len(dead) != 1 || dead[0].Lo != 0 {
		t.Fatalf("DeadSpans() = %+v, want span 0", dead)
	}
	if !snap.Degraded(16) {
		t.Fatal("Degraded(16) = false with a dead worker span")
	}
	if snap.Degraded(0) {
		t.Fatal("Degraded(0) = true — observer spans must not degrade")
	}

	// Resurrection: one fresh heartbeat flips it straight back.
	d.Observe(0, 4, "127.0.0.1:2", 0)
	snap = d.Snapshot()
	if snap.Spans[0].State != Alive {
		t.Fatalf("after fresh heartbeat: state %v, want alive", snap.Spans[0].State)
	}
	if snap.Spans[0].Addr != "127.0.0.1:2" {
		t.Fatalf("addr %q not updated on resurrection", snap.Spans[0].Addr)
	}
}

// TestOutOfOrderRelaysIgnored verifies a stale relayed age cannot roll
// a span's liveness backwards.
func TestOutOfOrderRelaysIgnored(t *testing.T) {
	clk := newVirtualClock()
	d := New(Config{HeartbeatEvery: time.Second, Now: clk.Now})
	d.Observe(0, 4, "a", 0)
	clk.Advance(time.Second)
	d.Observe(0, 4, "a", 0)
	fresh := d.Snapshot().Spans[0].Silence
	// A relay claiming the last heartbeat was 10s ago arrives late.
	d.Observe(0, 4, "a", 10*time.Second)
	if got := d.Snapshot().Spans[0].Silence; got != fresh {
		t.Fatalf("stale relay moved silence from %v to %v", fresh, got)
	}
	// Negative ages are nonsense and dropped.
	d.Observe(0, 4, "a", -time.Second)
	if got := d.Snapshot().Spans[0].Silence; got != fresh {
		t.Fatalf("negative age moved silence from %v to %v", fresh, got)
	}
}

// TestMaxGapClampsOutage: one long outage must not inflate the EWMA so
// far that a subsequent real death goes undetected.
func TestMaxGapClampsOutage(t *testing.T) {
	const hb = time.Second
	clk := newVirtualClock()
	d := New(Config{HeartbeatEvery: hb, Now: clk.Now})
	d.Observe(0, 4, "a", 0)
	clk.Advance(hb)
	d.Observe(0, 4, "a", 0)
	// An hour-long gap, then recovery.
	clk.Advance(time.Hour)
	d.Observe(0, 4, "a", 0)
	if mg := d.Snapshot().Spans[0].MeanGap; mg > 10*hb {
		t.Fatalf("meanGap %v exceeds MaxGap clamp", mg)
	}
	// With the clamp, 6×MaxGap silence still reaches Dead quickly.
	clk.Advance(61 * hb)
	if st := d.Snapshot().Spans[0].State; st != Dead {
		t.Fatalf("state %v after 61×hb silence, want dead", st)
	}
}

func TestForget(t *testing.T) {
	clk := newVirtualClock()
	d := New(Config{Now: clk.Now})
	d.Observe(0, 4, "a", 0)
	d.Observe(4, 8, "b", 0)
	e := d.Epoch()
	d.Forget(0)
	if d.Epoch() <= e {
		t.Fatal("Forget did not advance the epoch")
	}
	snap := d.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Lo != 4 {
		t.Fatalf("Snapshot after Forget = %+v, want only span 4", snap.Spans)
	}
	d.Forget(0) // idempotent
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Alive: "alive", Suspect: "suspect", Dead: "dead", State(9): "state(9)"} {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(st), got, want)
		}
	}
}

// TestConcurrentObserveSnapshot exercises the locking under the race
// detector: observers hammer from many goroutines while snapshots and
// epoch reads interleave.
func TestConcurrentObserveSnapshot(t *testing.T) {
	d := New(Config{HeartbeatEvery: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lo := gossip.NodeID(g * 4)
			for i := 0; i < 200; i++ {
				d.Observe(lo, lo+4, fmt.Sprintf("127.0.0.1:%d", g), 0)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			d.Snapshot()
			d.Epoch()
			d.DeadSpans()
		}
	}()
	wg.Wait()
	if n := len(d.Snapshot().Spans); n != 4 {
		t.Fatalf("tracked %d spans, want 4", n)
	}
}
