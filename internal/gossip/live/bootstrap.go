package live

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"dynagg/internal/backoff"
	"dynagg/internal/gossip/live/transport"
)

// Bootstrap is the membership configuration for a multi-process Span
// deployment over TCP: instead of a parent process shuttling ephemeral
// addresses between children over stdio (the examples/live_udp
// handshake), every process is told the same static seed list, then
// announces its own [Lo,Hi) span and listen address to each seed and
// retries until the full population is mapped. Seeds accumulate the
// announcements, so any process that can reach one live seed learns
// everyone — and a process that starts before its seed simply retries
// into the void until the seed is up.
type Bootstrap struct {
	// Seeds are the TCP addresses to announce to. Every process of the
	// deployment should use the same list; a seed process lists its own
	// address (announcing to yourself is a no-op that still returns the
	// table). At least one seed is required.
	Seeds []string
	// Span is this process's host range, and must equal Config.Span.
	Span Span
	// Total is the full population size the bootstrap waits to see
	// mapped. It may be smaller than the environment size: spans at or
	// above Total are observer slots (see Span), which announce
	// themselves but are not waited for — an observer can join, leave,
	// and rejoin mid-epoch without gating anyone's bootstrap.
	Total int
	// Replace announces with restart semantics: if a prior incarnation
	// of this span is still registered at a stale address, the seeds
	// update to this process's address instead of reporting
	// ErrSpanConflict, and push the correction to the membership. Set
	// it for processes that legitimately restart under one span — an
	// observer gateway — and leave it off where two processes claiming
	// one span is a deployment bug to be caught.
	Replace bool
	// Retry paces the announce loop (0 means 250ms).
	Retry time.Duration
	// Timeout bounds the whole bootstrap (0 means 30s). On expiry Run
	// reports the groups seen so far, naming what is missing.
	Timeout time.Duration
	// ReAnnounce paces the post-bootstrap keepalive: once coverage
	// completes, the engine keeps re-announcing this span to every
	// seed at this cadence so a seed that crashes and restarts with an
	// empty membership table rebuilds it from the survivors'
	// re-registrations (see KeepAlive). 0 means 1s; negative disables
	// the keepalive.
	ReAnnounce time.Duration
}

// DefaultBootstrapRetry, DefaultBootstrapTimeout, and
// DefaultBootstrapReAnnounce fill the zero fields of Bootstrap.
const (
	DefaultBootstrapRetry      = 250 * time.Millisecond
	DefaultBootstrapTimeout    = 30 * time.Second
	DefaultBootstrapReAnnounce = 1 * time.Second
)

// Validate reports whether the bootstrap configuration is usable.
func (b *Bootstrap) Validate() error {
	if len(b.Seeds) == 0 {
		return fmt.Errorf("live: Bootstrap.Seeds is empty")
	}
	for i, s := range b.Seeds {
		if strings.TrimSpace(s) == "" {
			return fmt.Errorf("live: Bootstrap.Seeds[%d] is empty", i)
		}
	}
	if b.Span == (Span{}) {
		return fmt.Errorf("live: Bootstrap.Span is zero; bootstrap is for partial (Span) engines")
	}
	if b.Span.Lo < 0 || b.Span.Lo >= b.Span.Hi {
		return fmt.Errorf("live: Bootstrap.Span [%d,%d) is empty", b.Span.Lo, b.Span.Hi)
	}
	// A span is either inside the counted population or entirely above
	// it (an observer slot); straddling Total is a configuration error.
	if int(b.Span.Lo) < b.Total && b.Total < int(b.Span.Hi) {
		return fmt.Errorf("live: Bootstrap.Total %d splits span [%d,%d)", b.Total, b.Span.Lo, b.Span.Hi)
	}
	if b.Retry < 0 || b.Timeout < 0 {
		return fmt.Errorf("live: Bootstrap.Retry and Timeout must be >= 0")
	}
	return nil
}

// Run announces this process's span to every seed and blocks until the
// transport's membership table covers [0, Total), the context is
// cancelled, or the timeout expires. It is idempotent: re-running on a
// complete table returns immediately.
//
// A span conflict (another process owns our range, or overlapping
// registrations) is fatal and returned immediately; every other
// announce failure — seed not up yet, connection refused, timeout — is
// retried, which is exactly what a late-starting seed looks like.
func (b *Bootstrap) Run(ctx context.Context, tr *transport.TCP) error {
	retry := b.Retry
	if retry <= 0 {
		retry = DefaultBootstrapRetry
	}
	timeout := b.Timeout
	if timeout <= 0 {
		timeout = DefaultBootstrapTimeout
	}
	self := ""
	for _, g := range tr.Groups() {
		if g.Lo == b.Span.Lo && g.Hi == b.Span.Hi {
			self = g.Addr
		}
	}
	if self == "" {
		return fmt.Errorf("live: bootstrap span [%d,%d) is not a listening group of the transport",
			b.Span.Lo, b.Span.Hi)
	}
	deadline := time.Now().Add(timeout)
	var lastErr error
	// The first announce fires immediately; the rounds after it back
	// off exponentially (capped at 4× the configured retry, ±25%
	// jitter). A seed that is not up yet gets a few brisk retries, then
	// a steady desynchronized trickle instead of a metronome of
	// connection-refused churn — and when a whole cluster restarts at
	// once, the jitter spreads the announce bursts apart.
	pace := backoff.New(backoff.Policy{Min: retry, Max: 4 * retry, Jitter: 0.25})
	var nextAnnounce time.Time // zero: announce immediately
	for {
		if !time.Now().Before(nextAnnounce) {
			for _, seed := range b.Seeds {
				if seed == self {
					continue // our own listener already knows us
				}
				var err error
				if b.Replace {
					err = tr.AnnounceReplace(seed, b.Span.Lo, b.Span.Hi, self)
				} else {
					err = tr.Announce(seed, b.Span.Lo, b.Span.Hi, self)
				}
				if errors.Is(err, transport.ErrSpanConflict) {
					return fmt.Errorf("live: bootstrap: %w", err)
				}
				if err != nil {
					lastErr = err
				}
			}
			nextAnnounce = time.Now().Add(pace.Next())
		}
		if tr.Covers(b.Total) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("live: bootstrap timed out after %v with %s (last announce error: %v)",
				timeout, describeCoverage(tr, b.Total), lastErr)
		}
		// Coverage can complete between announces — a seed process never
		// announces at all; its table fills as the joiners' announces
		// arrive — so poll it much finer than the announce retry.
		// Otherwise a seed sits out up to a whole retry period after the
		// last joiner registers, and in a paced deployment that skew is
		// dozens of ticks the others spend gossiping without it.
		wait := retry
		if poll := 5 * time.Millisecond; poll < wait {
			wait = poll
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
	}
}

// reannounceEvery resolves the keepalive cadence: the default for 0,
// disabled (0 result) for negative values.
func (b *Bootstrap) reannounceEvery() time.Duration {
	switch {
	case b.ReAnnounce < 0:
		return 0
	case b.ReAnnounce == 0:
		return DefaultBootstrapReAnnounce
	default:
		return b.ReAnnounce
	}
}

// KeepAlive re-announces this process's span to every seed at the
// ReAnnounce cadence until the context is cancelled. Bootstrap
// coverage is a one-shot handshake: without a keepalive, a seed that
// restarts mid-epoch comes back with an empty membership table and —
// every joiner having long since finished announcing — no way to ever
// rebuild it, leaving its own traffic aimed at nobody. The periodic
// re-announce is the repair channel: survivors keep re-registering
// (an idempotent no-op at a healthy seed), the restarted seed
// re-learns their spans, and its membership pushes propagate any
// address corrections back out. Announce errors are ignored — an
// unreachable seed is exactly what the next cycle exists to retry.
func (b *Bootstrap) KeepAlive(ctx context.Context, tr *transport.TCP) {
	every := b.reannounceEvery()
	if every <= 0 {
		return
	}
	self := ""
	for _, g := range tr.Groups() {
		if g.Lo == b.Span.Lo && g.Hi == b.Span.Hi {
			self = g.Addr
		}
	}
	if self == "" {
		return
	}
	// A jittered cadence (±25% around ReAnnounce), not a fixed ticker:
	// in a deployment whose members all started together — the common
	// case, they were launched by one script or one supervisor — fixed
	// tickers stay phase-locked forever and every keepalive cycle slams
	// all N announces into the seeds in the same instant. The jitter
	// decorrelates the herds within a few cycles while keeping the mean
	// cadence (and so the failure detector's expected heartbeat rate)
	// at ReAnnounce.
	pace := backoff.New(backoff.Policy{Min: every, Factor: 1, Jitter: 0.25})
	for {
		if err := pace.Sleep(ctx); err != nil {
			return
		}
		for _, seed := range b.Seeds {
			if seed == self {
				continue
			}
			if b.Replace {
				_ = tr.AnnounceReplace(seed, b.Span.Lo, b.Span.Hi, self)
			} else {
				_ = tr.Announce(seed, b.Span.Lo, b.Span.Hi, self)
			}
		}
	}
}

// describeCoverage renders the known membership for timeout errors.
func describeCoverage(tr *transport.TCP, total int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "groups covering ")
	groups := tr.Groups()
	for i, g := range groups {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "[%d,%d)", g.Lo, g.Hi)
		if g.Addr == "" {
			sb.WriteString(" (no addr)")
		}
	}
	fmt.Fprintf(&sb, " of [0,%d)", total)
	return sb.String()
}
