package live

import (
	"context"
	"math"
	"testing"
	"time"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live/transport"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
)

// liveValues builds the i%100 value column used across the live tests
// and returns it with its true average.
func liveValues(n int) ([]float64, float64) {
	values := make([]float64, n)
	var sum float64
	for i := range values {
		values[i] = float64(i % 100)
		sum += values[i]
	}
	return values, sum / float64(n)
}

// TestLiveColumnarPushSumOverUDPWithLossConverges is the columnar
// mirror of the classic tentpole integration test, at 16x the
// population: Push-Sum on the dense-column backend, every cross-shard
// wave batch-encoded into loopback datagrams through eight sockets,
// 20% of batches dropped by the loss injector — and the estimate still
// lands within the live engine's usual tolerance.
func TestLiveColumnarPushSumOverUDPWithLossConverges(t *testing.T) {
	const n = 4096
	values, truth := liveValues(n)
	udp, err := transport.NewUDP(
		transport.WithLoopbackGroups(n, 8),
		transport.WithReadBuffer(4<<20),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	lt, err := transport.NewLossy(udp, transport.WithLoss(0.2), transport.WithLossSeed(12))
	if err != nil {
		t.Fatal(err)
	}
	defer lt.Close()
	e, err := New(Config{
		Env: env.NewUniform(n), Population: NewColumnarPopulation(pushsum.NewColumnarAverage(values)),
		Model: gossip.Push, Seed: 11, Ticks: 80, Transport: lt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mean := meanOf(t, e.Estimates())
	if math.Abs(mean-truth) > 0.2*truth {
		t.Errorf("mean estimate %v, want ≈ %v", mean, truth)
	}
	if e.Sent() == 0 {
		t.Error("no messages sent")
	}
	if e.Dropped() == 0 {
		t.Error("20%% injected loss produced no counted drops")
	}
	t.Logf("mean %.2f truth %.2f sent %d dropped %d", mean, truth, e.Sent(), e.Dropped())
}

// TestLiveColumnarChannelGroupsConverges runs the columnar backend on
// the in-process batch plane: same shard/group routing as UDP, no
// sockets or codecs in the way, so a failure here is in the population
// or batch bookkeeping rather than the wire.
func TestLiveColumnarChannelGroupsConverges(t *testing.T) {
	const n = 1024
	values, truth := liveValues(n)
	e, err := New(Config{
		Env: env.NewUniform(n), Population: NewColumnarPopulation(pushsum.NewColumnarAverage(values)),
		Model: gossip.Push, Seed: 3, Ticks: 60,
		Transport: transport.NewChannelGroups(n, 0, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mean := meanOf(t, e.Estimates())
	if math.Abs(mean-truth) > 0.2*truth {
		t.Errorf("mean estimate %v, want ≈ %v", mean, truth)
	}
}

// TestLiveColumnarRevertConverges covers the second wire hook:
// Push-Sum-Revert's adaptive damping is destination-indexed, so its
// DeliverWire fold must be safe against ticks-late cross-shard
// arrivals. The estimate must still converge to the average.
func TestLiveColumnarRevertConverges(t *testing.T) {
	const n = 1024
	values, truth := liveValues(n)
	e, err := New(Config{
		Env: env.NewUniform(n),
		Population: NewColumnarPopulation(
			pushsumrevert.NewColumnar(values, pushsumrevert.Config{Lambda: 0.01})),
		Model: gossip.Push, Seed: 17, Ticks: 60,
		Transport: transport.NewChannelGroups(n, 0, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mean := meanOf(t, e.Estimates())
	if math.Abs(mean-truth) > 0.2*truth {
		t.Errorf("mean estimate %v, want ≈ %v", mean, truth)
	}
}

// TestLiveColumnarSketchResetPacedConverges covers the third wire
// hook: Count-Sketch-Reset's RLE age matrices ride the batch plane and
// min-merge straight off the wire into the destination columns. Paced
// like the classic UDP variant, small sketch for CI (same tolerance).
func TestLiveColumnarSketchResetPacedConverges(t *testing.T) {
	const n = 512
	pace := 4 * time.Millisecond
	if raceEnabled {
		pace = 20 * time.Millisecond
	}
	e, err := New(Config{
		Env: env.NewUniform(n),
		Population: NewColumnarPopulation(sketchreset.NewColumnar(n, sketchreset.Config{
			Params: sketch.Params{Bins: 32, Levels: 16}, Identifiers: 1,
		})),
		Model: gossip.Push, Seed: 21, Ticks: 40, TickEvery: pace,
		Transport: transport.NewChannelGroups(n, 0, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mean := meanOf(t, e.Estimates())
	if math.Abs(mean-n) > 0.4*n {
		t.Errorf("mean live count estimate %v, want ≈ %d", mean, n)
	}
}

// noBatchTransport strips the batch plane off a Transport: embedding
// the interface promotes only Transport's methods, so the wrapper is
// not a Batcher no matter what it wraps.
type noBatchTransport struct{ transport.Transport }

// TestLiveColumnarValidation pins the columnar backend's guard rails
// at New time: no partial populations, push model only, size match,
// and the transport must expose a batch plane.
func TestLiveColumnarValidation(t *testing.T) {
	const n = 16
	values, _ := liveValues(n)
	mkPop := func() Population {
		return NewColumnarPopulation(pushsum.NewColumnarAverage(values))
	}
	ch := transport.NewChannelGroups(n, 0, 2)

	if _, err := New(Config{
		Env: env.NewUniform(n), Population: mkPop(), Ticks: 1,
		Transport: ch, Span: Span{Lo: 0, Hi: n / 2},
	}); err == nil {
		t.Error("columnar Span accepted")
	}
	if _, err := New(Config{
		Env: env.NewUniform(n), Population: mkPop(), Ticks: 1,
		Transport: ch, Model: gossip.PushPull,
	}); err == nil {
		t.Error("columnar push/pull accepted")
	}
	if _, err := New(Config{
		Env: env.NewUniform(2 * n), Population: mkPop(), Ticks: 1,
		Transport: transport.NewChannelGroups(2*n, 0, 2),
	}); err == nil {
		t.Error("population/environment size mismatch accepted")
	}
	if _, err := New(Config{
		Env: env.NewUniform(n), Population: mkPop(), Ticks: 1,
		Transport: noBatchTransport{ch},
	}); err == nil {
		t.Error("transport without a batch plane accepted")
	}
	if _, err := New(Config{
		Env: env.NewUniform(n), Population: mkPop(), Ticks: 1, Transport: ch,
	}); err != nil {
		t.Errorf("valid columnar config rejected: %v", err)
	}
}
