package live

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live/transport"
	"dynagg/internal/xrand"
)

// ColumnarProtocol is the contract a columnar protocol must satisfy to
// run on the live engine: the round kernels of gossip.ColumnarAgent
// plus three wire hooks that extend the columnar plane across the
// socket boundary. Where the classic live path boxes every payload
// into an interface value and the transport codec re-dispatches on its
// type, these hooks append a message's payload straight from the
// protocol's state columns into a batch body and fold a received
// record straight back into the destination's columns — no
// intermediate payload values, no per-host allocation on the hot path.
//
// Record framing is owned by the live engine: each record in a batch
// body is a uvarint destination host id followed by the protocol's
// payload bytes. AppendWire and DeliverWire see only the payload part.
//
// Async-safety contract: unlike the round engine, delivery here
// crosses tick (and process) boundaries, so a payload must be
// self-contained at decode time — AppendWire runs in the emitting
// shard's tick, immediately after EmitRange, while every m.From-indexed
// snapshot (e.g. Count-Sketch-Reset's shadow block) is still valid,
// and DeliverWire must depend only on the destination's columns plus
// the record bytes.
//
// pushsum.Columnar, pushsumrevert.Columnar, and sketchreset.Columnar
// implement it.
type ColumnarProtocol interface {
	gossip.ColumnarAgent
	// WireKind tags this protocol's batch records; a batch whose first
	// byte does not match the running protocol's kind is discarded
	// whole (a datagram from some other experiment, or garbage).
	WireKind() uint8
	// AppendWire appends emitted message m's payload record to dst,
	// reading from the population's columns, and returns the extended
	// slice.
	AppendWire(dst []byte, m gossip.ColMsg) []byte
	// DeliverWire decodes one payload record from src and folds it
	// into host to's columns, returning the remaining bytes. The live
	// engine bounds-checks to against the draining shard before
	// calling.
	DeliverWire(to gossip.NodeID, src []byte) ([]byte, error)
}

// ColumnarPopulation is the dense host backend: one ColumnarProtocol
// owns the whole population's state, per-host PRNG streams live in one
// flat block, and drivers tick contiguous ranges of whole transport
// batch groups — each tick is a handful of flat kernel calls plus one
// encoded batch per destination group, so a million live hosts fit in
// one process with bounded RSS.
//
// Requirements: the full population (no Span), the push model
// (push/pull pairs cross shard ownership), and a transport exposing a
// batch plane (transport.Batcher — the channel and UDP transports
// both qualify, plain or wrapped in transport.Lossy). Liveness must be
// time-invariant, as everywhere in the live engine: a host that is
// dead at one tick must be dead at every tick, or its queued inbound
// mass would be discarded where the classic path would hold it.
type ColumnarPopulation struct {
	proto ColumnarProtocol
	e     *Engine
	b     transport.Batcher

	// rngStore is the population's PRNG block (16 bytes per host, one
	// allocation); rngs holds per-host pointers into it for
	// gossip.NewColRound.
	rngStore []xrand.Rand
	rngs     []*xrand.Rand
	// alive is the population-wide liveness bitmap; each driver fills
	// its own host range every tick.
	alive []bool
	// ticks counts each host's completed live iterations — the dense
	// column form of the classic path's per-goroutine tick counter.
	ticks []int32
	// groupOf maps a destination host to its batch group, so routing
	// an emission is one slice read.
	groupOf []uint16
	// nLocal counts self-share deliveries (never touch the transport).
	nLocal atomic.Int64
}

var _ Population = (*ColumnarPopulation)(nil)

// NewColumnarPopulation wraps a columnar protocol covering the full
// environment population (proto.Len() hosts).
func NewColumnarPopulation(proto ColumnarProtocol) *ColumnarPopulation {
	return &ColumnarPopulation{proto: proto}
}

// Columnar returns the backing protocol, for state inspection after a
// run.
func (p *ColumnarPopulation) Columnar() ColumnarProtocol { return p.proto }

// Hosts implements Population.
func (p *ColumnarPopulation) Hosts() int { return p.proto.Len() }

// Ticks returns how many live iterations host id has completed — racy
// during a run, exact after.
func (p *ColumnarPopulation) Ticks(id gossip.NodeID) int { return int(p.ticks[id]) }

// bind implements Population.
func (p *ColumnarPopulation) bind(e *Engine) error {
	cfg := e.cfg
	n := p.proto.Len()
	if e.partial {
		return fmt.Errorf("live: ColumnarPopulation drives the full population; Span is not supported (run an AgentPopulation per process instead)")
	}
	if n != cfg.Env.Size() {
		return fmt.Errorf("live: Population of %d hosts for environment of size %d", n, cfg.Env.Size())
	}
	if cfg.Model != gossip.Push {
		return fmt.Errorf("live: ColumnarPopulation supports only the push model; push/pull pairs cross shard ownership")
	}
	b, ok := transport.AsBatcher(e.tr)
	if !ok {
		return fmt.Errorf("live: ColumnarPopulation needs a transport with a batch plane (transport.Batcher); %T has none", e.tr)
	}
	// The batch groups must tile [0, n) exactly: drivers own whole
	// groups, and every host must belong to exactly one.
	at := 0
	for g := 0; g < b.BatchGroups(); g++ {
		lo, hi := b.BatchGroup(g)
		if int(lo) != at || hi <= lo {
			return fmt.Errorf("live: transport batch group %d covers [%d,%d); groups must tile [0,%d) contiguously", g, lo, hi, n)
		}
		at = int(hi)
	}
	if at != n {
		return fmt.Errorf("live: transport batch groups cover [0,%d) for a population of %d hosts", at, n)
	}
	p.e = e
	p.b = b
	p.rngStore = make([]xrand.Rand, n)
	p.rngs = make([]*xrand.Rand, n)
	root := xrand.New(cfg.Seed)
	for i := 0; i < n; i++ {
		p.rngStore[i] = *root.Split(uint64(i))
		p.rngs[i] = &p.rngStore[i]
	}
	p.alive = make([]bool, n)
	p.ticks = make([]int32, n)
	if b.BatchGroups() > 1<<16 {
		return fmt.Errorf("live: %d transport batch groups exceed the %d-group routing limit", b.BatchGroups(), 1<<16)
	}
	p.groupOf = make([]uint16, n)
	for g := 0; g < b.BatchGroups(); g++ {
		lo, hi := b.BatchGroup(g)
		for id := lo; id < hi; id++ {
			p.groupOf[id] = uint16(g)
		}
	}
	return nil
}

// drivers implements Population: drivers own contiguous runs of whole
// batch groups (so every column write — Begin/Emit/End on the host
// range, DeliverWire on drained inbound — stays inside one driver's
// territory and the tick needs no locks). Workers == 0 means one
// driver per group; more workers than groups are clamped.
func (p *ColumnarPopulation) drivers(workers int) []driver {
	groups := p.b.BatchGroups()
	if workers == 0 || workers > groups {
		workers = groups
	}
	ds := make([]driver, workers)
	for s := 0; s < workers; s++ {
		gLo, gHi := s*groups/workers, (s+1)*groups/workers
		lo, _ := p.b.BatchGroup(gLo)
		_, hi := p.b.BatchGroup(gHi - 1)
		rc := gossip.NewColRound(p.e.cfg.Model, p.e.cfg.Env, p.rngs)
		rc.Alive = p.alive
		ds[s] = &colShard{
			p: p, gLo: gLo, gHi: gHi, lo: int(lo), hi: int(hi),
			rc:  rc,
			enc: make([][]byte, groups),
			cnt: make([]int, groups),
		}
	}
	return ds
}

// local implements Population.
func (p *ColumnarPopulation) local() int64 { return p.nLocal.Load() }

// estimates implements Population.
func (p *ColumnarPopulation) estimates() []float64 {
	cfg := p.e.cfg
	n := p.proto.Len()
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		id := gossip.NodeID(i)
		if !cfg.Env.Alive(id, p.e.finalTick()) {
			continue
		}
		if v, ok := p.proto.Estimate(id); ok {
			out = append(out, v)
		}
	}
	return out
}

// colShard drives batch groups [gLo, gHi) — hosts [lo, hi). Per-shard
// scratch (the emission column, the self-share column, one encode
// buffer per destination group) is reused across ticks, so a
// steady-state tick allocates nothing.
type colShard struct {
	p        *ColumnarPopulation
	gLo, gHi int
	lo, hi   int
	rc       *gossip.ColRound
	out      []gossip.ColMsg
	self     []gossip.ColMsg
	enc      [][]byte // per destination group, first byte = WireKind
	cnt      []int    // records currently in enc[g]
}

// tick runs one columnar live iteration for the shard: sample
// liveness, BeginRange, fold every batch that arrived since the last
// tick straight into columns, EmitRange, deliver self shares
// in-process (mass must never evaporate), EndRange, then flush one
// batch per destination group — the classic pushTick, as kernels over
// ranges instead of interface calls per host.
func (s *colShard) tick(t int) {
	p := s.p
	env := p.e.cfg.Env
	proto := p.proto
	rc := s.rc
	rc.Round = t

	alive := p.alive
	for i := s.lo; i < s.hi; i++ {
		a := env.Alive(gossip.NodeID(i), t)
		alive[i] = a
		if a {
			p.ticks[i]++
		}
	}

	proto.BeginRange(rc, s.lo, s.hi)
	for g := s.gLo; g < s.gHi; g++ {
		p.b.DrainBatch(g, s.deliverBatch)
	}

	rc.Out = s.out[:0]
	proto.EmitRange(rc, s.lo, s.hi)
	s.out = rc.Out

	self := s.self[:0]
	for i := range s.out {
		m := s.out[i]
		if m.To == m.From {
			self = append(self, m)
			continue
		}
		s.encode(t, m)
	}
	s.self = self
	if len(self) > 0 {
		proto.Deliver(rc, self)
		p.nLocal.Add(int64(len(self)))
	}
	proto.EndRange(rc, s.lo, s.hi)

	for g := range s.enc {
		if s.cnt[g] > 0 {
			p.b.SendBatch(g, t, s.cnt[g], s.enc[g])
		}
		s.enc[g] = s.enc[g][:0]
		s.cnt[g] = 0
	}
}

// encode appends one cross-host message to its destination group's
// batch, flushing the accumulated records first when the new one would
// push the body past the transport's limit.
func (s *colShard) encode(t int, m gossip.ColMsg) {
	p := s.p
	g := int(p.groupOf[m.To])
	buf := s.enc[g]
	if len(buf) == 0 {
		buf = append(buf, p.proto.WireKind())
	}
	rec0 := len(buf)
	buf = binary.AppendUvarint(buf, uint64(uint32(m.To)))
	buf = p.proto.AppendWire(buf, m)
	max := p.b.MaxBatchBody()
	if len(buf) > max && rec0 > 1 {
		// Ship the records accumulated before this one, then restart
		// the body (kind byte + the new record slid forward).
		p.b.SendBatch(g, t, s.cnt[g], buf[:rec0])
		kind := buf[0]
		n := copy(buf[1:], buf[rec0:])
		buf[0] = kind
		buf = buf[:1+n]
		s.cnt[g] = 0
	}
	if len(buf) > max {
		// A single record larger than the body limit: hand it to the
		// transport alone, which drops and counts it — oversized state
		// simply does not fit the radio — and keep the buffer clean
		// for the records that do fit.
		p.b.SendBatch(g, t, 1, buf)
		s.enc[g] = buf[:0]
		return
	}
	s.enc[g] = buf
	s.cnt[g]++
}

// deliverBatch folds one inbound batch body into the shard's columns:
// check the protocol kind, then walk the records — uvarint destination
// id, protocol payload — bounds-checking every destination against the
// shard's host range so a corrupt datagram cannot write another
// shard's (or nobody's) state. A record that fails to parse discards
// the rest of the batch, mirroring the classic reader's whole-datagram
// drop on decode errors.
func (s *colShard) deliverBatch(body []byte) {
	p := s.p
	if len(body) == 0 || body[0] != p.proto.WireKind() {
		return
	}
	src := body[1:]
	for len(src) > 0 {
		to, n := binary.Uvarint(src)
		if n <= 0 || to < uint64(s.lo) || to >= uint64(s.hi) {
			return
		}
		rest, err := p.proto.DeliverWire(gossip.NodeID(to), src[n:])
		if err != nil {
			return
		}
		src = rest
	}
}
