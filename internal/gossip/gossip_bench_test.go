package gossip_test

import (
	"fmt"
	"testing"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/sysmem"
	"dynagg/internal/xrand"
)

// massAgent is a minimal Push-Sum-like agent for engine overhead
// benchmarks (the real protocols live in internal/protocol). It
// implements both emission contracts so the benchmarks measure the
// zero-allocation message plane, as the real protocols do.
type massAgent struct {
	id   gossip.NodeID
	w, v float64
	iw   float64
	iv   float64
	out  [2]float64 // EmitAppend scratch payload
}

func (a *massAgent) BeginRound(int) { a.iw, a.iv = 0, 0 }
func (a *massAgent) Emit(_ int, _ *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	peer, ok := pick()
	if !ok {
		return []gossip.Envelope{{To: a.id, Payload: [2]float64{a.w, a.v}}}
	}
	h := [2]float64{a.w / 2, a.v / 2}
	return []gossip.Envelope{{To: peer, Payload: h}, {To: a.id, Payload: h}}
}
func (a *massAgent) EmitAppend(dst []gossip.Envelope, _ int, _ *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	peer, ok := pick()
	if !ok {
		a.out = [2]float64{a.w, a.v}
		return append(dst, gossip.Envelope{To: a.id, Payload: &a.out})
	}
	a.out = [2]float64{a.w / 2, a.v / 2}
	return append(dst, gossip.Envelope{To: peer, Payload: &a.out}, gossip.Envelope{To: a.id, Payload: &a.out})
}
func (a *massAgent) Receive(p any) {
	var m [2]float64
	switch v := p.(type) {
	case *[2]float64:
		m = *v
	case [2]float64:
		m = v
	}
	a.iw += m[0]
	a.iv += m[1]
}
func (a *massAgent) EndRound(int)              { a.w, a.v = a.iw, a.iv }
func (a *massAgent) Estimate() (float64, bool) { return a.v / a.w, true }
func (a *massAgent) Exchange(peer gossip.Exchanger) {
	p := peer.(*massAgent)
	mw, mv := (a.w+p.w)/2, (a.v+p.v)/2
	a.w, p.w = mw, mw
	a.v, p.v = mv, mv
}

type benchEnv struct{ n int }

func (e benchEnv) Size() int                     { return e.n }
func (e benchEnv) Alive(gossip.NodeID, int) bool { return true }
func (e benchEnv) Advance(int)                   {}
func (e benchEnv) Pick(id gossip.NodeID, _ int, rng *xrand.Rand) (gossip.NodeID, bool) {
	for {
		c := gossip.NodeID(rng.Intn(e.n))
		if c != id {
			return c, true
		}
	}
}

func benchEngine(b *testing.B, n int, model gossip.Model, workers int) *gossip.Engine {
	b.Helper()
	agents := make([]gossip.Agent, n)
	for i := range agents {
		agents[i] = &massAgent{id: gossip.NodeID(i), w: 1, v: float64(i)}
	}
	e, err := gossip.NewEngine(gossip.Config{Env: benchEnv{n}, Agents: agents, Model: model, Seed: 1, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// benchValues is the shared Push-Sum workload for the AoS/columnar
// comparison benchmarks.
func benchValues(n int) []float64 {
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = float64(i % 101)
	}
	return vs
}

// benchPushSumEngine builds a real Push-Sum engine over the uniform
// environment on either execution path, under either gossip model.
func benchPushSumEngine(b *testing.B, n, workers int, model gossip.Model, columnar bool) *gossip.Engine {
	b.Helper()
	vs := benchValues(n)
	cfg := gossip.Config{Env: env.NewUniform(n), Model: model, Seed: 1, Workers: workers}
	if columnar {
		cfg.Columnar = pushsum.NewColumnarAverage(vs)
	} else {
		agents := make([]gossip.Agent, n)
		for i := range agents {
			agents[i] = pushsum.NewAverage(gossip.NodeID(i), vs[i])
		}
		cfg.Agents = agents
	}
	e, err := gossip.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// stepRounds is the common measured loop: warm the engine past the
// buffer-growth phase, then time steady-state rounds. reportRSS adds
// the process peak-RSS gauge for the memory-ceiling trajectory plus
// the per-round message volume, so the BENCH_results.json 1M rows
// carry (ns/round, msgs/round, peak_rss_bytes) together.
func stepRounds(b *testing.B, e *gossip.Engine, reportRSS bool) {
	b.Helper()
	e.Run(2) // warm-up: emission columns, arena, and outboxes reach capacity
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.StopTimer()
	if reportRSS {
		b.ReportMetric(float64(sysmem.PeakRSSBytes()), "peak-rss-bytes")
		b.ReportMetric(float64(e.Messages()/int64(e.Round())), "msgs/round")
	}
}

// BenchmarkRoundPush measures one push round over 10,000 hosts.
func BenchmarkRoundPush(b *testing.B) {
	e := benchEngine(b, 10000, gossip.Push, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkRoundPushPull measures one push/pull round over 10,000
// hosts.
func BenchmarkRoundPushPull(b *testing.B) {
	e := benchEngine(b, 10000, gossip.PushPull, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngine is the engine's perf trajectory in one table.
//
// The first block is the historical engine-overhead matrix (a minimal
// mass agent, both models, sequential vs sharded) — names unchanged
// so benchstat tracks them across PRs. The second block is the
// execution-path comparison on the real Push-Sum protocol: aos runs
// one heap node per host behind the Agent interface, columnar runs
// the struct-of-arrays path (flat loops over population-wide state
// columns, ColMsg message plane). The third block is the
// million-host configuration the columnar path exists for — skipped
// under -short (see make bench-1m), with peak RSS recorded alongside
// ns/round.
func BenchmarkEngine(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		for _, model := range []gossip.Model{gossip.Push, gossip.PushPull} {
			for _, workers := range []int{0, gossip.DefaultWorkers()} {
				name := fmt.Sprintf("n=%d/%s/workers=%d", n, model, workers)
				b.Run(name, func(b *testing.B) {
					e := benchEngine(b, n, model, workers)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						e.Step()
					}
				})
			}
		}
	}
	for _, n := range []int{10000, 100000} {
		for _, model := range []gossip.Model{gossip.Push, gossip.PushPull} {
			for _, path := range []string{"pushsum-aos", "pushsum-columnar"} {
				for _, workers := range []int{0, gossip.DefaultWorkers()} {
					name := fmt.Sprintf("n=%d/%s/%s/workers=%d", n, model, path, workers)
					b.Run(name, func(b *testing.B) {
						e := benchPushSumEngine(b, n, workers, model, path == "pushsum-columnar")
						stepRounds(b, e, false)
					})
				}
			}
		}
	}
	// N=1,000,000: the ROADMAP's million-host target, both gossip
	// models. The AoS runs are the "before" column of the README
	// table; columnar runs both executors. ~25M messages of warm-up +
	// measurement per case, so -short (the smoke lane) skips the block
	// and `make bench-1m` runs it deliberately.
	if testing.Short() {
		return
	}
	const million = 1000000
	cases := []struct {
		model   gossip.Model
		path    string
		workers int
	}{
		{gossip.Push, "pushsum-aos", 0},
		{gossip.Push, "pushsum-columnar", 0},
		{gossip.Push, "pushsum-columnar", gossip.DefaultWorkers()},
		{gossip.PushPull, "pushsum-aos", 0},
		{gossip.PushPull, "pushsum-columnar", 0},
		{gossip.PushPull, "pushsum-columnar", gossip.DefaultWorkers()},
	}
	for _, c := range cases {
		name := fmt.Sprintf("n=%d/%s/%s/workers=%d", million, c.model, c.path, c.workers)
		b.Run(name, func(b *testing.B) {
			e := benchPushSumEngine(b, million, c.workers, c.model, c.path == "pushsum-columnar")
			stepRounds(b, e, true)
		})
	}
}
