package gossip

import (
	"fmt"
	"testing"

	"dynagg/internal/xrand"
)

// massAgent is a minimal Push-Sum-like agent for engine overhead
// benchmarks (the real protocols live in internal/protocol). It
// implements both emission contracts so the benchmarks measure the
// zero-allocation message plane, as the real protocols do.
type massAgent struct {
	id   NodeID
	w, v float64
	iw   float64
	iv   float64
	out  [2]float64 // EmitAppend scratch payload
}

func (a *massAgent) BeginRound(int) { a.iw, a.iv = 0, 0 }
func (a *massAgent) Emit(_ int, _ *xrand.Rand, pick PeerPicker) []Envelope {
	peer, ok := pick()
	if !ok {
		return []Envelope{{To: a.id, Payload: [2]float64{a.w, a.v}}}
	}
	h := [2]float64{a.w / 2, a.v / 2}
	return []Envelope{{To: peer, Payload: h}, {To: a.id, Payload: h}}
}
func (a *massAgent) EmitAppend(dst []Envelope, _ int, _ *xrand.Rand, pick PeerPicker) []Envelope {
	peer, ok := pick()
	if !ok {
		a.out = [2]float64{a.w, a.v}
		return append(dst, Envelope{To: a.id, Payload: &a.out})
	}
	a.out = [2]float64{a.w / 2, a.v / 2}
	return append(dst, Envelope{To: peer, Payload: &a.out}, Envelope{To: a.id, Payload: &a.out})
}
func (a *massAgent) Receive(p any) {
	var m [2]float64
	switch v := p.(type) {
	case *[2]float64:
		m = *v
	case [2]float64:
		m = v
	}
	a.iw += m[0]
	a.iv += m[1]
}
func (a *massAgent) EndRound(int)              { a.w, a.v = a.iw, a.iv }
func (a *massAgent) Estimate() (float64, bool) { return a.v / a.w, true }
func (a *massAgent) Exchange(peer Exchanger) {
	p := peer.(*massAgent)
	mw, mv := (a.w+p.w)/2, (a.v+p.v)/2
	a.w, p.w = mw, mw
	a.v, p.v = mv, mv
}

type benchEnv struct{ n int }

func (e benchEnv) Size() int              { return e.n }
func (e benchEnv) Alive(NodeID, int) bool { return true }
func (e benchEnv) Advance(int)            {}
func (e benchEnv) Pick(id NodeID, _ int, rng *xrand.Rand) (NodeID, bool) {
	for {
		c := NodeID(rng.Intn(e.n))
		if c != id {
			return c, true
		}
	}
}

func benchEngine(b *testing.B, n int, model Model, workers int) *Engine {
	b.Helper()
	agents := make([]Agent, n)
	for i := range agents {
		agents[i] = &massAgent{id: NodeID(i), w: 1, v: float64(i)}
	}
	e, err := NewEngine(Config{Env: benchEnv{n}, Agents: agents, Model: model, Seed: 1, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkRoundPush measures one push round over 10,000 hosts.
func BenchmarkRoundPush(b *testing.B) {
	e := benchEngine(b, 10000, Push, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkRoundPushPull measures one push/pull round over 10,000
// hosts.
func BenchmarkRoundPushPull(b *testing.B) {
	e := benchEngine(b, 10000, PushPull, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngine compares sequential stepping against the sharded
// executor at N=10,000 and N=100,000 for both models, tracking the
// parallel speedup and the message plane's allocation profile in the
// perf trajectory. workers=0 is the sequential baseline; workers=G
// uses a GOMAXPROCS-sized pool. (Formerly BenchmarkEngineParallel.)
func BenchmarkEngine(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		for _, model := range []Model{Push, PushPull} {
			for _, workers := range []int{0, DefaultWorkers()} {
				name := fmt.Sprintf("n=%d/%s/workers=%d", n, model, workers)
				b.Run(name, func(b *testing.B) {
					e := benchEngine(b, n, model, workers)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						e.Step()
					}
				})
			}
		}
	}
}
