// Package gossip provides the round-based gossip simulation engine the
// paper's evaluation is built on ("Our simulator employs a common
// simplification used to analyze gossip protocols: simulation in
// rounds"). At every round each live host initiates one exchange with
// a peer chosen by the gossip environment; a push/pull round therefore
// costs at least 2n messages.
//
// The engine is deliberately deterministic: given the same seed,
// environment and protocol, every run produces byte-identical results.
// Each host owns a private split of the experiment PRNG, so host
// behaviour is independent of iteration order.
package gossip

import (
	"fmt"

	"dynagg/internal/xrand"
)

// NodeID identifies a simulated host, densely numbered from 0.
type NodeID int32

// Envelope is one protocol message in flight: a payload addressed to a
// destination host. Self-addressed envelopes are legal and common
// (Push-Sum sends half its mass to itself).
type Envelope struct {
	To      NodeID
	Payload any
}

// PeerPicker returns gossip partners for the emitting host this round.
// Each call draws an independent peer; ok is false when the
// environment offers no reachable peer (an isolated host).
type PeerPicker func() (NodeID, bool)

// Agent is one protocol instance running at one host under the push
// gossip model.
//
// The engine calls, every round, in order: BeginRound on every live
// agent; Emit on every live agent (collecting envelopes); Receive on
// the recipient of every envelope; EndRound on every live agent.
// Emission is computed entirely from state at the start of the round —
// agents must not apply received payloads until EndRound.
type Agent interface {
	// BeginRound resets per-round state (such as the inbox).
	BeginRound(round int)
	// Emit returns this round's outgoing messages. pick draws peers
	// from the environment; rng is the host's private generator.
	Emit(round int, rng *xrand.Rand, pick PeerPicker) []Envelope
	// Receive accepts one payload delivered during the current round.
	Receive(payload any)
	// EndRound folds the received payloads into the host state.
	EndRound(round int)
	// Estimate returns the host's current estimate of the aggregate;
	// ok is false before any estimate exists.
	Estimate() (value float64, ok bool)
}

// Exchanger is implemented by agents that additionally support the
// push/pull model: an atomic pairwise exchange in which both ends
// update together (Karp et al.'s half-difference transfer for
// Push-Sum). Exchange must be symmetric in effect regardless of which
// side initiates.
type Exchanger interface {
	Agent
	Exchange(peer Exchanger)
}

// AppendEmitter is the allocation-free emission contract. Instead of
// returning a freshly allocated slice, the agent appends this round's
// envelopes onto an engine-owned scratch slice and returns it —
// exactly the append(dst, ...) idiom of the standard library.
//
// Payload lifetime is the difference from Emit: payloads appended by
// EmitAppend may alias agent-owned scratch memory (a per-host Mass
// field, a reused snapshot buffer) and are only valid until the
// agent's next BeginRound. The round engine delivers every message
// within the emitting round, so it can use EmitAppend everywhere; the
// asynchronous live engine cannot (messages cross tick boundaries in
// channels) and keeps calling Emit, whose payloads must have
// independent lifetime.
//
// Agents implementing AppendEmitter must still implement Emit; the
// engine's adapter falls back to it for agents that don't implement
// this interface, so the Agent contract stays satisfiable unchanged.
type AppendEmitter interface {
	Agent
	EmitAppend(dst []Envelope, round int, rng *xrand.Rand, pick PeerPicker) []Envelope
}

// Environment decides who can talk to whom and when, independent of
// the protocol ("Gossip protocols are distinct from gossip
// environments").
type Environment interface {
	// Size returns the total host population, dead or alive.
	Size() int
	// Alive reports whether the host participates in the given round.
	Alive(id NodeID, round int) bool
	// Pick draws one gossip partner for the host, or ok=false if the
	// host currently has no reachable peer.
	Pick(id NodeID, round int, rng *xrand.Rand) (NodeID, bool)
	// Advance is called once before each round so time-driven
	// environments (traces) can update their topology.
	Advance(round int)
}

// Model selects the gossip exchange pattern.
type Model int

const (
	// Push: each initiator sends state to its peer (and possibly to
	// itself); no reply within the round.
	Push Model = iota
	// PushPull: each initiation is an atomic pairwise exchange; both
	// ends observe each other's state. Requires agents implementing
	// Exchanger (or, on the columnar path, a ColExchanger protocol).
	PushPull
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case Push:
		return "push"
	case PushPull:
		return "push-pull"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Hook is invoked by the engine around rounds; failure schedules and
// metrics recorders are hooks.
type Hook func(round int, e *Engine)

// Config assembles an engine.
type Config struct {
	Env    Environment
	Agents []Agent
	// Columnar selects the struct-of-arrays execution path: one
	// protocol value owning dense per-host state columns for the whole
	// population, run as flat loops instead of per-host interface
	// calls (see columnar.go). Mutually exclusive with Agents. The
	// push/pull model additionally requires the protocol to implement
	// ColExchanger (flat pair-batch exchanges). Results are
	// byte-identical to the classic path for the same seed.
	Columnar ColumnarAgent
	Model    Model
	Seed     uint64
	// Workers selects the round executor. 0 runs the original
	// sequential loop; k >= 1 runs the sharded parallel executor with
	// k workers (DefaultWorkers picks a GOMAXPROCS-sized pool). Both
	// executors produce byte-identical results for the same seed:
	// every host owns a private PRNG split, push deliveries are merged
	// in emitter order, and push/pull exchanges follow a deterministic
	// conflict schedule equivalent to initiator order.
	Workers int
	// BeforeRound hooks run after Env.Advance but before any agent
	// acts, in registration order.
	BeforeRound []Hook
	// AfterRound hooks run after EndRound on all agents.
	AfterRound []Hook
}

// Engine drives a set of agents over an environment, one round at a
// time.
type Engine struct {
	env    Environment
	agents []Agent
	model  Model
	rngs   []*xrand.Rand
	before []Hook
	after  []Hook

	round    int
	messages int64 // protocol payloads delivered (self-delivery included)
	contacts int64 // pairwise meetings (push/pull) or emissions (push)

	// emitters caches the AppendEmitter view of each agent (nil when
	// the agent only implements Emit), so the per-host hot path costs
	// an index load instead of an interface assertion.
	emitters []AppendEmitter

	// Flat arena inbox, reused across rounds (sequential push path).
	// Emissions land in pending in emitter order; a stable bucket sort
	// by destination rebuilds arena each round, with host id's segment
	// at arena[offsets[id]:offsets[id]+counts[id]] — still in emitter
	// order, exactly the delivery sequence the old per-host inboxes
	// produced, but with zero steady-state allocation.
	pending []Envelope
	arena   []Envelope
	counts  []int32
	offsets []int32
	cursor  []int32

	// pick is the reusable peer-picker closure handed to agents in the
	// sequential executor; pickID/pickRound are its captured state,
	// rewritten per host instead of allocating a closure per host.
	pick      PeerPicker
	pickID    NodeID
	pickRound int

	// Columnar path state: the bulk protocol (and its push/pull view,
	// set only when the model needs it), the reusable round context of
	// the sequential executor, the per-round liveness bitmap shared by
	// all columnar executors, and the reusable sequential push/pull
	// pair batch. All nil/empty when the engine runs classic agents.
	col      ColumnarAgent
	colEx    ColExchanger
	colRound ColRound
	colAlive []bool
	colPairs []Pair

	// par holds the sharded executor state; nil in sequential mode.
	par *parExec
}

// NewEngine validates the configuration and builds an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Env == nil {
		return nil, fmt.Errorf("gossip: Config.Env is nil")
	}
	if cfg.Columnar != nil {
		if err := validateColumnar(cfg); err != nil {
			return nil, err
		}
	} else if len(cfg.Agents) != cfg.Env.Size() {
		return nil, fmt.Errorf("gossip: %d agents for environment of size %d",
			len(cfg.Agents), cfg.Env.Size())
	}
	if cfg.Model == PushPull {
		for i, a := range cfg.Agents {
			if _, ok := a.(Exchanger); !ok {
				return nil, fmt.Errorf("gossip: agent %d (%T) does not implement Exchanger required by push-pull", i, a)
			}
		}
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("gossip: Config.Workers must be >= 0, got %d", cfg.Workers)
	}
	n := cfg.Env.Size()
	// Per-host PRNG splits live in one flat block: the generators are
	// hot on every peer pick, and a contiguous layout keeps them
	// cache-resident instead of scattered across the heap (at N=1M
	// this is also one allocation instead of a million).
	root := xrand.New(cfg.Seed)
	store := make([]xrand.Rand, n)
	rngs := make([]*xrand.Rand, n)
	for i := range rngs {
		store[i] = *root.Split(uint64(i))
		rngs[i] = &store[i]
	}
	e := &Engine{
		env:    cfg.Env,
		agents: cfg.Agents,
		model:  cfg.Model,
		rngs:   rngs,
		before: cfg.BeforeRound,
		after:  cfg.AfterRound,
		col:    cfg.Columnar,
	}
	if e.col != nil {
		e.colAlive = make([]bool, n)
		e.colRound = ColRound{Model: e.model, env: e.env, rngs: e.rngs}
		if e.model == PushPull {
			e.colEx = cfg.Columnar.(ColExchanger) // checked by validateColumnar
		}
	} else {
		e.emitters = make([]AppendEmitter, n)
		e.counts = make([]int32, n)
		e.offsets = make([]int32, n)
		e.cursor = make([]int32, n)
		for i, a := range cfg.Agents {
			if ae, ok := a.(AppendEmitter); ok {
				e.emitters[i] = ae
			}
		}
		e.pick = func() (NodeID, bool) {
			return e.env.Pick(e.pickID, e.pickRound, e.rngs[e.pickID])
		}
	}
	if cfg.Workers > 0 {
		e.par = newParExec(e, n, cfg.Workers)
	}
	return e, nil
}

// emitInto collects host id's emissions for round r onto dst: through
// EmitAppend when the agent supports it, otherwise through the Emit
// adapter (one slice + payload boxing per call, the legacy cost).
func (e *Engine) emitInto(dst []Envelope, id int, r int, pick PeerPicker) []Envelope {
	rng := e.rngs[id]
	if ae := e.emitters[id]; ae != nil {
		return ae.EmitAppend(dst, r, rng, pick)
	}
	return append(dst, e.agents[id].Emit(r, rng, pick)...)
}

// Workers returns the size of the engine's worker pool; 0 means the
// sequential executor.
func (e *Engine) Workers() int {
	if e.par == nil {
		return 0
	}
	return e.par.workers
}

// Round returns the number of completed rounds.
func (e *Engine) Round() int { return e.round }

// Messages returns the cumulative count of protocol payloads delivered.
func (e *Engine) Messages() int64 { return e.messages }

// Contacts returns the cumulative count of gossip contacts initiated.
func (e *Engine) Contacts() int64 { return e.contacts }

// Env returns the engine's environment.
func (e *Engine) Env() Environment { return e.env }

// Agent returns the agent at the given host. It panics on a columnar
// engine, which has no per-host agents; use EstimateOf or Columnar.
func (e *Engine) Agent(id NodeID) Agent { return e.agents[id] }

// Agents returns the full agent slice (shared, not copied). It is nil
// on a columnar engine.
func (e *Engine) Agents() []Agent { return e.agents }

// Rng returns host id's private generator (used by hooks that need
// reproducible randomness attributable to a host).
func (e *Engine) Rng(id NodeID) *xrand.Rand { return e.rngs[id] }

// Step executes one gossip round.
func (e *Engine) Step() {
	r := e.round
	e.env.Advance(r)
	for _, h := range e.before {
		h(r, e)
	}
	switch {
	case e.col != nil && e.model == PushPull && e.par != nil:
		e.stepPushPullColumnarParallel(r)
	case e.col != nil && e.model == PushPull:
		e.stepPushPullColumnar(r)
	case e.col != nil && e.par != nil:
		e.stepPushColumnarParallel(r)
	case e.col != nil:
		e.stepPushColumnar(r)
	case e.par != nil && e.model == Push:
		e.stepPushParallel(r)
	case e.par != nil && e.model == PushPull:
		e.stepPushPullParallel(r)
	case e.model == Push:
		e.stepPush(r)
	case e.model == PushPull:
		e.stepPushPull(r)
	}
	for _, h := range e.after {
		h(r, e)
	}
	e.round++
}

// Run executes the given number of rounds.
func (e *Engine) Run(rounds int) {
	for i := 0; i < rounds; i++ {
		e.Step()
	}
}

func (e *Engine) stepPush(r int) {
	n := len(e.agents)
	for id := 0; id < n; id++ {
		if e.env.Alive(NodeID(id), r) {
			e.agents[id].BeginRound(r)
		}
	}
	// Collect all emissions before delivering anything: the round is
	// synchronous, so every message is computed from start-of-round
	// state. Emissions accumulate in the flat pending buffer (emitter
	// order); messages to dead hosts are dropped here, silently — that
	// is the point of the dynamic protocols.
	pending := e.pending[:0]
	counts := e.counts
	for i := range counts {
		counts[i] = 0
	}
	e.pickRound = r
	for id := 0; id < n; id++ {
		nid := NodeID(id)
		if !e.env.Alive(nid, r) {
			continue
		}
		e.pickID = nid
		start := len(pending)
		pending = e.emitInto(pending, id, r, e.pick)
		e.contacts++
		kept := start
		for _, env := range pending[start:] {
			e.messages++
			if e.env.Alive(env.To, r) {
				pending[kept] = env
				counts[env.To]++
				kept++
			}
		}
		pending = pending[:kept]
	}
	e.pending = pending
	// Bucket sort by destination into the arena: offsets are prefix
	// sums of per-host counts, and a stable scatter keeps each host's
	// segment in emitter order.
	offsets, cursor := e.offsets, e.cursor
	var sum int32
	for i, c := range counts {
		offsets[i] = sum
		cursor[i] = sum
		sum += c
	}
	arena := e.arena
	if cap(arena) < len(pending) {
		arena = make([]Envelope, len(pending))
	} else {
		arena = arena[:len(pending)]
	}
	for _, env := range pending {
		arena[cursor[env.To]] = env
		cursor[env.To]++
	}
	e.arena = arena
	for id := 0; id < n; id++ {
		box := arena[offsets[id]:cursor[id]]
		if len(box) == 0 {
			continue
		}
		if e.env.Alive(NodeID(id), r) {
			for _, env := range box {
				e.agents[id].Receive(env.Payload)
			}
		}
	}
	for id := 0; id < n; id++ {
		if e.env.Alive(NodeID(id), r) {
			e.agents[id].EndRound(r)
		}
	}
}

func (e *Engine) stepPushPull(r int) {
	n := len(e.agents)
	for id := 0; id < n; id++ {
		if e.env.Alive(NodeID(id), r) {
			e.agents[id].BeginRound(r)
		}
	}
	for id := 0; id < n; id++ {
		nid := NodeID(id)
		if !e.env.Alive(nid, r) {
			continue
		}
		peer, ok := e.env.Pick(nid, r, e.rngs[id])
		if !ok {
			continue
		}
		e.contacts++
		e.messages += 2 // state travels both ways
		a := e.agents[id].(Exchanger)
		b := e.agents[peer].(Exchanger)
		a.Exchange(b)
	}
	for id := 0; id < n; id++ {
		if e.env.Alive(NodeID(id), r) {
			e.agents[id].EndRound(r)
		}
	}
}

// Estimates returns the current estimates of all live hosts.
func (e *Engine) Estimates() []float64 {
	n := e.env.Size()
	out := make([]float64, 0, n)
	for id := 0; id < n; id++ {
		nid := NodeID(id)
		if !e.env.Alive(nid, e.round) {
			continue
		}
		var v float64
		var ok bool
		if e.col != nil {
			v, ok = e.col.Estimate(nid)
		} else {
			v, ok = e.agents[id].Estimate()
		}
		if ok {
			out = append(out, v)
		}
	}
	return out
}

// EstimateOf returns host id's estimate if the host is alive and has
// one.
func (e *Engine) EstimateOf(id NodeID) (float64, bool) {
	if !e.env.Alive(id, e.round) {
		return 0, false
	}
	if e.col != nil {
		return e.col.Estimate(id)
	}
	return e.agents[id].Estimate()
}
