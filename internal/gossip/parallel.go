// Sharded parallel round executor.
//
// The host array is split into Workers contiguous shards and the
// BeginRound / Emit / deliver / EndRound phases run shard-parallel,
// with a barrier between phases. Determinism holds because every host
// owns a private PRNG split (host behaviour never depends on iteration
// order), environments are read-only between Advance calls, and the
// two order-sensitive steps are made order-identical to the
// sequential executor:
//
//   - Push delivery: each shard buckets its emissions by destination
//     shard, and the destination worker drains source shards in shard
//     order. Shards are contiguous, so shard-then-host order is
//     exactly ascending emitter order — every inbox sees payloads in
//     the same sequence the sequential loop produces.
//   - Push/pull exchange: peers are picked shard-parallel (picks only
//     consume the initiator's PRNG), then exchanges are scheduled into
//     conflict-free waves: an exchange lands in the first wave after
//     the last wave touching either endpoint. Within a wave all
//     exchanges are agent-disjoint, so running them concurrently
//     commutes, and every pair of conflicting exchanges still executes
//     in initiator order — the final state is byte-identical to the
//     sequential loop.
package gossip

import (
	"runtime"
	"sync"
)

// DefaultWorkers returns a GOMAXPROCS-sized worker count for
// Config.Workers.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// delivery is one routed payload in a shard outbox.
type delivery struct {
	to      NodeID
	payload any
}

// pick is one push/pull peer selection.
type pick struct {
	peer NodeID
	ok   bool
}

// shardPick is the captured state of one shard's reusable peer-picker
// closure: rewritten per host instead of allocating a closure per
// host. Only the owning shard's worker touches its entry.
type shardPick struct {
	id    NodeID
	round int
}

// parExec is the scratch state of the sharded executor.
type parExec struct {
	workers int
	n       int

	// outbox[src][dst] buffers deliveries emitted by shard src for
	// hosts owned by shard dst, in emission order.
	outbox   [][][]delivery
	contacts []int64 // per-shard contact counts for one round
	messages []int64 // per-shard message counts for one round

	// emitBuf[s] is shard s's reusable emission scratch, reset per
	// host; pickState[s]/pickers[s] are its reusable picker closure.
	emitBuf   [][]Envelope
	pickState []shardPick
	pickers   []PeerPicker

	picks    []pick  // per-host peer selection (push/pull)
	lastWave []int32 // per-host index of the last wave touching it
	waves    [][]int32

	// Columnar executor state: one round context per shard (each with
	// its own emission column), colOutbox[src][dst] buffering the
	// messages shard src emitted for hosts owned by shard dst, in
	// emission order, and the reusable per-wave pair batch of the
	// columnar push/pull executor. Empty when the engine runs classic
	// agents.
	colRounds []ColRound
	colOutbox [][][]ColMsg
	pairBuf   []Pair
}

func newParExec(e *Engine, n, workers int) *parExec {
	if workers > n && n > 0 {
		workers = n
	}
	p := &parExec{
		workers:   workers,
		n:         n,
		outbox:    make([][][]delivery, workers),
		contacts:  make([]int64, workers),
		messages:  make([]int64, workers),
		emitBuf:   make([][]Envelope, workers),
		pickState: make([]shardPick, workers),
		pickers:   make([]PeerPicker, workers),
		picks:     make([]pick, n),
		lastWave:  make([]int32, n),
	}
	for s := range p.outbox {
		p.outbox[s] = make([][]delivery, workers)
	}
	for s := range p.pickers {
		st := &p.pickState[s]
		p.pickers[s] = func() (NodeID, bool) {
			return e.env.Pick(st.id, st.round, e.rngs[st.id])
		}
	}
	if e.col != nil {
		p.colRounds = make([]ColRound, workers)
		p.colOutbox = make([][][]ColMsg, workers)
		for s := range p.colRounds {
			p.colRounds[s] = ColRound{Model: e.model, env: e.env, rngs: e.rngs}
			p.colOutbox[s] = make([][]ColMsg, workers)
		}
	}
	return p
}

// bounds returns shard s's half-open host range.
func (p *parExec) bounds(s int) (lo, hi int) {
	return s * p.n / p.workers, (s + 1) * p.n / p.workers
}

// shardOf returns the shard owning host id.
func (p *parExec) shardOf(id NodeID) int {
	// Inverse of bounds: host id belongs to the shard whose range
	// contains it. With lo = s*n/w, s = (id*w + w - 1) / n may be off
	// by one at boundaries, so derive it directly.
	s := int(id) * p.workers / p.n
	for lo, _ := p.bounds(s); lo > int(id); lo, _ = p.bounds(s) {
		s--
	}
	for _, hi := p.bounds(s); hi <= int(id); _, hi = p.bounds(s) {
		s++
	}
	return s
}

// forShards runs fn(shard, lo, hi) on every shard concurrently and
// waits for all of them.
func (p *parExec) forShards(fn func(s, lo, hi int)) {
	var wg sync.WaitGroup
	wg.Add(p.workers)
	for s := 0; s < p.workers; s++ {
		go func(s int) {
			defer wg.Done()
			lo, hi := p.bounds(s)
			fn(s, lo, hi)
		}(s)
	}
	wg.Wait()
}

// forChunks splits [0, m) into worker-count contiguous chunks and runs
// fn(chunk, lo, hi) on each concurrently.
func (p *parExec) forChunks(m int, fn func(s, lo, hi int)) {
	var wg sync.WaitGroup
	wg.Add(p.workers)
	for s := 0; s < p.workers; s++ {
		go func(s int) {
			defer wg.Done()
			lo, hi := s*m/p.workers, (s+1)*m/p.workers
			if lo < hi {
				fn(s, lo, hi)
			}
		}(s)
	}
	wg.Wait()
}

// stepPushParallel is the sharded counterpart of stepPush.
func (e *Engine) stepPushParallel(r int) {
	p := e.par
	p.forShards(func(s, lo, hi int) {
		for id := lo; id < hi; id++ {
			if e.env.Alive(NodeID(id), r) {
				e.agents[id].BeginRound(r)
			}
		}
	})
	// Emit phase: every shard buckets its emissions by destination
	// shard. All emission is computed from start-of-round state, so
	// shards never observe each other.
	p.forShards(func(s, lo, hi int) {
		var contacts, messages int64
		out := p.outbox[s]
		buf := p.emitBuf[s]
		st := &p.pickState[s]
		st.round = r
		pickPeer := p.pickers[s]
		for id := lo; id < hi; id++ {
			nid := NodeID(id)
			if !e.env.Alive(nid, r) {
				continue
			}
			st.id = nid
			buf = e.emitInto(buf[:0], id, r, pickPeer)
			contacts++
			for _, env := range buf {
				// Messages to dead hosts are lost silently, exactly as
				// in the sequential loop.
				if e.env.Alive(env.To, r) {
					d := p.shardOf(env.To)
					out[d] = append(out[d], delivery{env.To, env.Payload})
				}
				messages++
			}
		}
		p.emitBuf[s] = buf
		p.contacts[s] = contacts
		p.messages[s] = messages
	})
	for s := 0; s < p.workers; s++ {
		e.contacts += p.contacts[s]
		e.messages += p.messages[s]
	}
	// Deliver phase: the worker owning destination shard d drains
	// source shards in shard order. Contiguous shards make
	// shard-then-host order equal to ascending emitter order, so each
	// host receives payloads in the sequential executor's sequence.
	p.forShards(func(d, lo, hi int) {
		for s := 0; s < p.workers; s++ {
			box := p.outbox[s][d]
			for _, dv := range box {
				e.agents[dv.to].Receive(dv.payload)
			}
			p.outbox[s][d] = box[:0]
		}
		for id := lo; id < hi; id++ {
			if e.env.Alive(NodeID(id), r) {
				e.agents[id].EndRound(r)
			}
		}
	})
}

// stepPushColumnarParallel is the sharded columnar push round: shards
// are contiguous column ranges, so every phase is a flat loop over a
// dense slice of the state arrays — the layout the sharded executor
// was always shaped for. Determinism matches stepPushColumnar: picks
// consume per-host PRNGs, and the destination worker drains source
// outboxes in shard order, which over contiguous shards is ascending
// emitter order.
func (e *Engine) stepPushColumnarParallel(r int) {
	p := e.par
	// Liveness fill + begin phase. BeginRange reads only its own
	// range of the bitmap, which the same closure just filled, so the
	// two fuse without a barrier between them.
	p.forShards(func(s, lo, hi int) {
		rc := &p.colRounds[s]
		rc.Round = r
		rc.Alive = e.colAlive
		p.contacts[s] = int64(e.fillAlive(r, lo, hi))
		e.col.BeginRange(rc, lo, hi)
	})
	// Emit phase: kernels append to the shard's own column, then the
	// same worker routes survivors by destination shard. Routing reads
	// the full liveness bitmap (cross-shard), complete since the
	// previous barrier; emission reads only start-of-round state.
	p.forShards(func(s, lo, hi int) {
		rc := &p.colRounds[s]
		rc.Out = rc.Out[:0]
		e.col.EmitRange(rc, lo, hi)
		p.messages[s] = int64(len(rc.Out))
		out := p.colOutbox[s]
		alive := e.colAlive
		for _, m := range rc.Out {
			// Messages to dead hosts are lost silently, exactly as in
			// the sequential loop.
			if alive[m.To] {
				d := p.shardOf(m.To)
				out[d] = append(out[d], m)
			}
		}
	})
	for s := 0; s < p.workers; s++ {
		e.contacts += p.contacts[s]
		e.messages += p.messages[s]
	}
	// Deliver + end phase: the worker owning destination shard d
	// drains source outboxes in shard order (= emitter order), then
	// folds its own range's round state.
	p.forShards(func(d, lo, hi int) {
		rc := &p.colRounds[d]
		for s := 0; s < p.workers; s++ {
			box := p.colOutbox[s][d]
			if len(box) > 0 {
				e.col.Deliver(rc, box)
			}
			p.colOutbox[s][d] = box[:0]
		}
		e.col.EndRange(rc, lo, hi)
	})
}

// stepPushPullParallel is the sharded counterpart of stepPushPull.
func (e *Engine) stepPushPullParallel(r int) {
	p := e.par
	p.forShards(func(s, lo, hi int) {
		for id := lo; id < hi; id++ {
			if e.env.Alive(NodeID(id), r) {
				e.agents[id].BeginRound(r)
			}
		}
	})
	// Pick phase: peer selection consumes only the initiator's private
	// PRNG and read-only environment state, so it parallelizes freely
	// and yields exactly the peers the sequential loop would draw.
	p.forShards(func(s, lo, hi int) {
		for id := lo; id < hi; id++ {
			nid := NodeID(id)
			p.picks[id] = pick{}
			if !e.env.Alive(nid, r) {
				continue
			}
			if peer, ok := e.env.Pick(nid, r, e.rngs[id]); ok {
				p.picks[id] = pick{peer: peer, ok: true}
			}
		}
	})
	// Schedule phase, then execute waves: a barrier between waves,
	// shard-chunked parallelism inside each (all intra-wave exchanges
	// are agent-disjoint). Conflict chains leave a tail of tiny waves;
	// those run inline — spawning a goroutine fan-out per handful of
	// exchanges costs more than the exchanges themselves, and
	// intra-wave order is free, so inlining cannot change results.
	for _, wave := range p.buildWaves(e) {
		if len(wave) < 2*p.workers {
			for _, id := range wave {
				a := e.agents[id].(Exchanger)
				b := e.agents[p.picks[id].peer].(Exchanger)
				a.Exchange(b)
			}
			continue
		}
		wave := wave
		p.forChunks(len(wave), func(_, lo, hi int) {
			for _, id := range wave[lo:hi] {
				a := e.agents[id].(Exchanger)
				b := e.agents[p.picks[id].peer].(Exchanger)
				a.Exchange(b)
			}
		})
	}
	p.recycleWaves()
	p.forShards(func(s, lo, hi int) {
		for id := lo; id < hi; id++ {
			if e.env.Alive(NodeID(id), r) {
				e.agents[id].EndRound(r)
			}
		}
	})
}

// buildWaves schedules the round's exchanges (from p.picks) into
// deterministic conflict-free waves and books the contact/message
// counters: each exchange lands in the first wave after the last wave
// touching either endpoint. Waves are internally conflict-free while
// conflicting exchanges keep their initiator order across waves, so
// executing waves in order — with any intra-wave parallelism — is
// byte-identical to the sequential initiator-order loop. The scheduler
// itself is sequential and cheap; wave storage is recycled across
// rounds (see recycleWaves).
func (p *parExec) buildWaves(e *Engine) [][]int32 {
	for i := range p.lastWave {
		p.lastWave[i] = -1
	}
	waves := p.waves[:0]
	for id := 0; id < p.n; id++ {
		pk := p.picks[id]
		if !pk.ok {
			continue
		}
		e.contacts++
		e.messages += 2 // state travels both ways
		w := p.lastWave[id]
		if pw := p.lastWave[pk.peer]; pw > w {
			w = pw
		}
		w++
		if int(w) == len(waves) {
			if len(waves) < cap(waves) {
				waves = waves[:len(waves)+1] // reuse last round's storage
			} else {
				waves = append(waves, nil)
			}
		}
		waves[w] = append(waves[w], int32(id))
		p.lastWave[id] = w
		p.lastWave[pk.peer] = w
	}
	p.waves = waves
	return waves
}

// recycleWaves resets the wave storage for the next round.
func (p *parExec) recycleWaves() {
	for i := range p.waves {
		p.waves[i] = p.waves[i][:0]
	}
}

// stepPushPullColumnarParallel is the sharded columnar push/pull
// round: the same pick → wave-schedule → execute structure as the
// classic parallel executor, but each wave is materialised as a flat
// []Pair batch and handed to the protocol's ExchangePairs kernel —
// whole batch inline for the tiny conflict-chain tail waves, chunked
// across workers for large ones (intra-wave pairs are
// endpoint-disjoint, so any partition commutes).
func (e *Engine) stepPushPullColumnarParallel(r int) {
	p := e.par
	// Liveness fill + begin phase, fused as in the columnar push round.
	p.forShards(func(s, lo, hi int) {
		rc := &p.colRounds[s]
		rc.Round = r
		rc.Alive = e.colAlive
		e.fillAlive(r, lo, hi)
		e.col.BeginRange(rc, lo, hi)
	})
	// Pick phase: peer selection consumes only the initiator's private
	// PRNG and read-only environment state, so it parallelizes freely
	// and yields exactly the peers the sequential loop would draw.
	p.forShards(func(s, lo, hi int) {
		alive := e.colAlive
		for id := lo; id < hi; id++ {
			p.picks[id] = pick{}
			if !alive[id] {
				continue
			}
			if peer, ok := e.env.Pick(NodeID(id), r, e.rngs[id]); ok {
				p.picks[id] = pick{peer: peer, ok: true}
			}
		}
	})
	for _, wave := range p.buildWaves(e) {
		pairs := p.pairBuf[:0]
		for _, id := range wave {
			pairs = append(pairs, Pair{A: NodeID(id), B: p.picks[id].peer})
		}
		p.pairBuf = pairs
		if len(pairs) < 2*p.workers {
			e.colEx.ExchangePairs(&p.colRounds[0], pairs)
			continue
		}
		p.forChunks(len(pairs), func(s, lo, hi int) {
			e.colEx.ExchangePairs(&p.colRounds[s], pairs[lo:hi])
		})
	}
	p.recycleWaves()
	p.forShards(func(d, lo, hi int) {
		e.col.EndRange(&p.colRounds[d], lo, hi)
	})
}
