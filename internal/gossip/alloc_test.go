package gossip_test

import (
	"testing"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/epoch"
	"dynagg/internal/protocol/extremes"
	"dynagg/internal/protocol/invertavg"
	"dynagg/internal/protocol/moments"
	"dynagg/internal/protocol/multi"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchcount"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
)

// allocBudgetPerHostRound is the steady-state allocation budget of the
// zero-allocation message plane: at most 2 heap allocations per host
// per round. The real figure is ~0 — emission scratch, the arena inbox,
// and the pick closure are all reused — but the budget leaves headroom
// for incidental runtime allocations (map rehashing, slice growth on
// population spikes) without letting a per-message regression through:
// re-boxing payloads alone would cost 2-3 allocs per host-round.
const allocBudgetPerHostRound = 2.0

// allocsPerHostRound builds an engine over n uniform-gossip hosts,
// warms it past the buffer-growth phase, and measures steady-state
// allocations of Engine.Step per host.
func allocsPerHostRound(t *testing.T, agents []gossip.Agent, workers int) float64 {
	t.Helper()
	n := len(agents)
	engine, err := gossip.NewEngine(gossip.Config{
		Env:     env.NewUniform(n),
		Agents:  agents,
		Model:   gossip.Push,
		Seed:    3,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: scratch slices, snapshot buffers, and the arena grow to
	// their steady-state capacity during the first rounds.
	engine.Run(4)
	perStep := testing.AllocsPerRun(3, func() { engine.Step() })
	return perStep / float64(n)
}

// allocsPerHostRoundColumnar is the columnar twin of
// allocsPerHostRound: same warm-up, same steady-state measurement,
// struct-of-arrays execution path, either gossip model.
func allocsPerHostRoundColumnar(t *testing.T, col gossip.ColumnarAgent, model gossip.Model, workers int) float64 {
	t.Helper()
	n := col.Len()
	engine, err := gossip.NewEngine(gossip.Config{
		Env:      env.NewUniform(n),
		Columnar: col,
		Model:    model,
		Seed:     3,
		Workers:  workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(4)
	perStep := testing.AllocsPerRun(3, func() { engine.Step() })
	return perStep / float64(n)
}

// TestColumnarAllocBudget pins the columnar hot path to the same
// steady-state budget as the classic message plane, for every columnar
// protocol on every gossip model it supports: the flat-column round —
// including the push/pull pair-batch executor's wave scheduling — must
// not allocate once the emission column, pair batches, and wave
// storage have grown to capacity, on both the sequential and sharded
// executors.
func TestColumnarAllocBudget(t *testing.T) {
	const n = 512
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i % 101)
	}
	srCfg := sketchreset.Config{
		Params:      sketch.Params{Bins: 16, Levels: 16},
		Identifiers: 1,
	}
	multiValues := map[string][]float64{"load": values, "queue": values}
	type budgetCase struct {
		models []gossip.Model
		mk     func(model gossip.Model) gossip.ColumnarAgent
	}
	both := []gossip.Model{gossip.Push, gossip.PushPull}
	pushOnly := []gossip.Model{gossip.Push}
	// Variants whose config differs by model (PushPull reversion) build
	// from the model; the rest ignore it.
	revertFor := func(model gossip.Model) pushsumrevert.Config {
		return pushsumrevert.Config{Lambda: 0.02, PushPull: model == gossip.PushPull}
	}
	builders := map[string]budgetCase{
		"pushsum": {both, func(gossip.Model) gossip.ColumnarAgent {
			return pushsum.NewColumnarAverage(values)
		}},
		"pushsumrevert": {both, func(model gossip.Model) gossip.ColumnarAgent {
			return pushsumrevert.NewColumnar(values, revertFor(model))
		}},
		"sketchreset": {both, func(gossip.Model) gossip.ColumnarAgent {
			return sketchreset.NewColumnar(n, srCfg)
		}},
		"sketchcount": {both, func(gossip.Model) gossip.ColumnarAgent {
			return sketchcount.NewColumnarCount(n, sketch.Params{Bins: 16, Levels: 16})
		}},
		"extremes": {both, func(gossip.Model) gossip.ColumnarAgent {
			return extremes.NewColumnar(values, extremes.Config{Mode: extremes.Max})
		}},
		"moments": {both, func(model gossip.Model) gossip.ColumnarAgent {
			return moments.NewColumnar(values, moments.Config{Lambda: 0.02, PushPull: model == gossip.PushPull})
		}},
		"epoch": {pushOnly, func(gossip.Model) gossip.ColumnarAgent {
			return epoch.NewColumnar(values, epoch.Config{Length: 8})
		}},
		"invertavg": {both, func(model gossip.Model) gossip.ColumnarAgent {
			return invertavg.NewColumnar(values, srCfg, revertFor(model))
		}},
		"multi": {both, func(model gossip.Model) gossip.ColumnarAgent {
			return multi.NewColumnar(multiValues, srCfg, revertFor(model))
		}},
	}
	for name, bc := range builders {
		for _, model := range bc.models {
			for _, workers := range []int{0, 2} {
				got := allocsPerHostRoundColumnar(t, bc.mk(model), model, workers)
				if got > allocBudgetPerHostRound {
					t.Errorf("%s %s workers=%d: %.3f allocs per host-round, budget %.1f",
						name, model, workers, got, allocBudgetPerHostRound)
				}
			}
		}
	}
}

// TestPushSumAllocBudget pins the Push-Sum hot path: the paper's
// baseline protocol must gossip through the round engine without
// per-message heap traffic.
func TestPushSumAllocBudget(t *testing.T) {
	const n = 512
	for _, workers := range []int{0, 2} {
		agents := make([]gossip.Agent, n)
		for i := range agents {
			agents[i] = pushsum.NewAverage(gossip.NodeID(i), float64(i%101))
		}
		got := allocsPerHostRound(t, agents, workers)
		if got > allocBudgetPerHostRound {
			t.Errorf("workers=%d: %.3f allocs per host-round, budget %.1f",
				workers, got, allocBudgetPerHostRound)
		}
	}
}

// TestSketchCountAllocBudget pins the Sketch-Count hot path: the
// per-round sketch snapshot must come from the reused per-host buffer,
// not a fresh clone.
func TestSketchCountAllocBudget(t *testing.T) {
	const n = 256
	params := sketch.Params{Bins: 16, Levels: 16}
	agents := make([]gossip.Agent, n)
	for i := range agents {
		agents[i] = sketchcount.NewCount(gossip.NodeID(i), params)
	}
	got := allocsPerHostRound(t, agents, 0)
	if got > allocBudgetPerHostRound {
		t.Errorf("%.3f allocs per host-round, budget %.1f",
			got, allocBudgetPerHostRound)
	}
}

// TestSketchResetAllocBudget pins Count-Sketch-Reset, the paper's
// heaviest payload (the full m×L counter matrix per message).
func TestSketchResetAllocBudget(t *testing.T) {
	const n = 256
	agents := make([]gossip.Agent, n)
	for i := range agents {
		agents[i] = sketchreset.New(gossip.NodeID(i), sketchreset.Config{
			Params:      sketch.Params{Bins: 16, Levels: 16},
			Identifiers: 1,
		})
	}
	got := allocsPerHostRound(t, agents, 0)
	if got > allocBudgetPerHostRound {
		t.Errorf("%.3f allocs per host-round, budget %.1f",
			got, allocBudgetPerHostRound)
	}
}
