// Columnar (struct-of-arrays) execution path.
//
// The classic path runs one heap-allocated agent per host behind the
// Agent interface: every BeginRound/Emit/Receive/EndRound is an
// indirect call landing on a random heap address — at a million hosts
// the round is bound by pointer-chasing, not arithmetic. The columnar
// path inverts the layout: ONE protocol value owns dense per-host
// state arrays for the whole population (Push-Sum becomes w, v, inW,
// inV []float64) and the engine hands it whole host *ranges* per
// phase, so the round body is flat loops over contiguous columns with
// four interface calls per range instead of four per host.
//
// Messages travel the same way: instead of Envelope's `Payload any`
// (an interface box per message), emissions are appended to a dense
// []ColMsg column carrying the destination, the source, and an inline
// (W, V) mass. Mass protocols read the mass; matrix protocols
// (Count-Sketch-Reset) use From to index their own population-wide
// state block. The engine filters dead destinations and counts
// traffic centrally, exactly as the classic path does.
//
// Determinism contract: the columnar path is byte-identical to the
// classic sequential executor. Peer picks consume the same per-host
// PRNG splits through ColRound.Pick, emissions are appended in
// ascending host order with each host's envelopes in the same
// intra-host order as Emit, and Deliver receives messages in emitter
// order — so every destination folds payloads in exactly the sequence
// the per-host inboxes produced. (Float accumulation is
// order-sensitive; preserving fold order is what makes the parity
// exact rather than approximate.)
//
// Push/pull runs on the columnar plane too, through ColExchanger: the
// engine draws every initiator's peer (same PRNG stream as the classic
// loop), materialises the round's exchanges as flat []Pair batches —
// in initiator order sequentially; as the parallel executor's
// deterministic conflict-free waves under Workers > 0 — and the
// protocol executes each batch as one kernel over its columns, with no
// per-pair Exchanger interface calls.
package gossip

import (
	"fmt"

	"dynagg/internal/xrand"
)

// Mass is the inline (weight, value) payload of the columnar message
// plane. Mass-vector protocols gossip it directly; protocols with
// larger state ignore it and address their own columns via
// ColMsg.From.
type Mass struct {
	W float64
	V float64
}

// ColMsg is one message in the columnar plane: a destination, the
// emitting host, and an inline mass. No pointers, no interface boxing
// — a round's traffic is one flat, cache-sequential column.
type ColMsg struct {
	To   NodeID
	From NodeID
	Mass Mass
}

// ColRound is the engine-side context handed to columnar round
// kernels. One value serves a whole executor shard; fields are
// read-only for kernels except Out, which EmitRange appends to.
type ColRound struct {
	// Round is the current round number.
	Round int
	// Model is the engine's gossip model. Kernels whose round-end fold
	// differs between push (apply the delivered inbox) and push/pull
	// (state was updated in place by ExchangePairs) branch on it.
	Model Model
	// Alive is the population-wide liveness bitmap, fixed for the
	// round (the engine samples Environment.Alive once per host after
	// Advance and the BeforeRound hooks).
	Alive []bool
	// Out is the emission column for the current EmitRange call.
	// Kernels append with plain append(); the engine counts, filters
	// dead destinations, and routes afterwards.
	Out []ColMsg

	env  Environment
	rngs []*xrand.Rand
}

// NewColRound builds a round context for drivers that tick columnar
// kernels outside the round engine — the live engine's
// ColumnarPopulation shards. rngs must hold one generator per host,
// indexed by NodeID, from the same Split streams the engine would
// build; the caller owns Round, Alive, and Out between kernel calls.
func NewColRound(model Model, env Environment, rngs []*xrand.Rand) *ColRound {
	return &ColRound{Model: model, env: env, rngs: rngs}
}

// Pick draws one gossip partner for host id from the environment,
// consuming id's private PRNG — the same stream, in the same order,
// as the classic path's PeerPicker.
func (rc *ColRound) Pick(id NodeID) (NodeID, bool) {
	return rc.env.Pick(id, rc.Round, rc.rngs[id])
}

// Rng returns host id's private generator, for kernels that draw
// randomness beyond peer selection.
func (rc *ColRound) Rng(id NodeID) *xrand.Rand { return rc.rngs[id] }

// ColumnarAgent is the bulk-protocol contract: one value owns the
// dense state of the entire population and executes round phases as
// flat loops over host ranges.
//
// The engine calls, every push round, in order: BeginRange covering
// every host; EmitRange covering every host (appending to rc.Out);
// Deliver with the surviving messages in emitter order; EndRange
// covering every host. Under the parallel executor the Begin/Emit/End
// phases are invoked once per contiguous shard range concurrently, and
// Deliver is invoked per destination shard with that shard's messages
// — kernels must therefore only write state belonging to the hosts in
// the given range (or, for Deliver, to the message destinations) and
// may read any host's *start-of-round* state.
//
// Kernels must skip hosts with rc.Alive[id] == false in BeginRange,
// EmitRange, and EndRange, mirroring the classic engine's dead-host
// gating.
type ColumnarAgent interface {
	// Len returns the population size.
	Len() int
	// BeginRange resets per-round columns for hosts [lo, hi).
	BeginRange(rc *ColRound, lo, hi int)
	// EmitRange computes emissions for hosts [lo, hi), appending them
	// to rc.Out in ascending host order. Every live host in the range
	// initiates exactly one gossip contact (plus any self-messages its
	// protocol specifies).
	EmitRange(rc *ColRound, lo, hi int)
	// Deliver folds a batch of messages into their destinations'
	// per-round columns. Messages arrive in emitter order; all
	// destinations are alive this round.
	Deliver(rc *ColRound, msgs []ColMsg)
	// EndRange folds received state into host state and refreshes
	// estimates for hosts [lo, hi).
	EndRange(rc *ColRound, lo, hi int)
	// Estimate returns host id's current estimate of the aggregate;
	// ok is false before any estimate exists.
	Estimate(id NodeID) (value float64, ok bool)
}

// Pair is one push/pull exchange on the columnar plane: initiator A
// meets peer B. Both endpoints are alive when the engine schedules the
// pair.
type Pair struct {
	A NodeID
	B NodeID
}

// ColExchanger is implemented by columnar protocols that additionally
// support the push/pull model. The engine calls, every push/pull
// round, in order: BeginRange covering every host; ExchangePairs with
// the round's exchanges as flat batches; EndRange covering every host.
// EmitRange and Deliver are never called under push/pull.
//
// Batch contract: pairs within one ExchangePairs call may share
// endpoints and MUST be executed strictly in slice order (the
// sequential executor hands the whole round as one initiator-ordered
// batch). Under the parallel executor the engine schedules exchanges
// into conflict-free waves and may split one wave across concurrent
// ExchangePairs calls — those batches are endpoint-disjoint by
// construction, so kernels must only touch the two endpoints' state
// per pair.
type ColExchanger interface {
	ColumnarAgent
	ExchangePairs(rc *ColRound, pairs []Pair)
}

// Columnar returns the engine's columnar protocol, or nil when the
// engine runs classic agents.
func (e *Engine) Columnar() ColumnarAgent { return e.col }

// fillAlive samples the environment's liveness for hosts [lo, hi)
// into the round bitmap and returns the live count. Environment.Alive
// is stable between Advance calls, so sampling once per round is
// equivalent to the classic path's repeated queries — and cheaper.
func (e *Engine) fillAlive(r, lo, hi int) int {
	live := 0
	alive := e.colAlive
	for id := lo; id < hi; id++ {
		a := e.env.Alive(NodeID(id), r)
		alive[id] = a
		if a {
			live++
		}
	}
	return live
}

// stepPushColumnar is the sequential columnar push round: the same
// begin → emit → deliver → end structure as stepPush, but each phase
// is one kernel call over the whole population and messages never
// leave the flat ColMsg column. No bucket sort is needed: folding the
// emission column in raw emitter order gives every destination its
// payloads in exactly the per-inbox order the classic path produced.
func (e *Engine) stepPushColumnar(r int) {
	n := e.col.Len()
	rc := &e.colRound
	rc.Round = r
	rc.Alive = e.colAlive

	live := e.fillAlive(r, 0, n)
	e.col.BeginRange(rc, 0, n)

	rc.Out = rc.Out[:0]
	e.col.EmitRange(rc, 0, n)

	// Every live host initiated one contact; every appended message
	// counts, including those lost to dead destinations — identical
	// accounting to the classic loop.
	e.contacts += int64(live)
	e.messages += int64(len(rc.Out))

	// Drop messages to dead hosts in place (stable, so emitter order
	// is preserved), then deliver the survivors in one flat pass.
	kept := rc.Out[:0]
	for _, m := range rc.Out {
		if rc.Alive[m.To] {
			kept = append(kept, m)
		}
	}
	rc.Out = kept
	if len(kept) > 0 {
		e.col.Deliver(rc, kept)
	}
	e.col.EndRange(rc, 0, n)
}

// stepPushPullColumnar is the sequential columnar push/pull round: the
// same begin → exchange → end structure as stepPushPull, but peers are
// drawn by the engine into one flat []Pair batch (initiator order, the
// classic loop's execution order) and the protocol runs the whole
// batch as a single kernel call over its columns — no per-pair
// Exchanger interface dispatch.
func (e *Engine) stepPushPullColumnar(r int) {
	n := e.col.Len()
	rc := &e.colRound
	rc.Round = r
	rc.Alive = e.colAlive

	e.fillAlive(r, 0, n)
	e.col.BeginRange(rc, 0, n)

	pairs := e.colPairs[:0]
	for id := 0; id < n; id++ {
		if !e.colAlive[id] {
			continue
		}
		nid := NodeID(id)
		peer, ok := e.env.Pick(nid, r, e.rngs[id])
		if !ok {
			continue
		}
		e.contacts++
		e.messages += 2 // state travels both ways
		pairs = append(pairs, Pair{A: nid, B: peer})
	}
	e.colPairs = pairs
	if len(pairs) > 0 {
		e.colEx.ExchangePairs(rc, pairs)
	}
	e.col.EndRange(rc, 0, n)
}

// validateColumnar checks the columnar half of a Config.
func validateColumnar(cfg Config) error {
	if len(cfg.Agents) != 0 {
		return fmt.Errorf("gossip: Config.Columnar and Config.Agents are mutually exclusive")
	}
	if cfg.Model == PushPull {
		if _, ok := cfg.Columnar.(ColExchanger); !ok {
			return fmt.Errorf("gossip: columnar protocol %T does not implement ColExchanger required by push-pull", cfg.Columnar)
		}
	}
	if got, want := cfg.Columnar.Len(), cfg.Env.Size(); got != want {
		return fmt.Errorf("gossip: columnar population %d for environment of size %d", got, want)
	}
	return nil
}
