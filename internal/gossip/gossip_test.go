package gossip

import (
	"testing"

	"dynagg/internal/xrand"
)

// testEnv is a minimal fully connected environment with controllable
// liveness.
type testEnv struct {
	n    int
	dead map[NodeID]bool
}

func newTestEnv(n int) *testEnv { return &testEnv{n: n, dead: map[NodeID]bool{}} }

func (e *testEnv) Size() int                       { return e.n }
func (e *testEnv) Alive(id NodeID, round int) bool { return !e.dead[id] }
func (e *testEnv) Advance(round int)               {}
func (e *testEnv) Pick(id NodeID, round int, rng *xrand.Rand) (NodeID, bool) {
	candidates := make([]NodeID, 0, e.n)
	for c := NodeID(0); int(c) < e.n; c++ {
		if c != id && !e.dead[c] {
			candidates = append(candidates, c)
		}
	}
	if len(candidates) == 0 {
		return 0, false
	}
	return candidates[rng.Intn(len(candidates))], true
}

// echoAgent counts lifecycle calls and forwards a token to one peer
// per round.
type echoAgent struct {
	id       NodeID
	begun    int
	emitted  int
	received int
	ended    int
	est      float64
}

func (a *echoAgent) BeginRound(round int) { a.begun++ }
func (a *echoAgent) Emit(round int, rng *xrand.Rand, pick PeerPicker) []Envelope {
	a.emitted++
	peer, ok := pick()
	if !ok {
		return nil
	}
	return []Envelope{{To: peer, Payload: int(a.id)}}
}
func (a *echoAgent) Receive(payload any)       { a.received++ }
func (a *echoAgent) EndRound(round int)        { a.ended++ }
func (a *echoAgent) Estimate() (float64, bool) { return a.est, true }
func (a *echoAgent) Exchange(peer Exchanger)   {}

func newEngine(t *testing.T, n int, model Model) (*Engine, []*echoAgent, *testEnv) {
	t.Helper()
	env := newTestEnv(n)
	agents := make([]Agent, n)
	raw := make([]*echoAgent, n)
	for i := range agents {
		raw[i] = &echoAgent{id: NodeID(i)}
		agents[i] = raw[i]
	}
	e, err := NewEngine(Config{Env: env, Agents: agents, Model: model, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return e, raw, env
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Error("nil env accepted")
	}
	env := newTestEnv(3)
	if _, err := NewEngine(Config{Env: env, Agents: make([]Agent, 2)}); err == nil {
		t.Error("agent/env size mismatch accepted")
	}
}

func TestNewEnginePushPullRequiresExchanger(t *testing.T) {
	env := newTestEnv(1)
	agents := []Agent{noExchange{}}
	if _, err := NewEngine(Config{Env: env, Agents: agents, Model: PushPull}); err == nil {
		t.Error("push/pull engine accepted non-Exchanger agent")
	}
}

type noExchange struct{}

func (noExchange) BeginRound(int)                               {}
func (noExchange) Emit(int, *xrand.Rand, PeerPicker) []Envelope { return nil }
func (noExchange) Receive(any)                                  {}
func (noExchange) EndRound(int)                                 {}
func (noExchange) Estimate() (float64, bool)                    { return 0, false }

func TestLifecycleOrderPush(t *testing.T) {
	e, raw, _ := newEngine(t, 10, Push)
	e.Run(5)
	for i, a := range raw {
		if a.begun != 5 || a.emitted != 5 || a.ended != 5 {
			t.Errorf("agent %d lifecycle counts: begun=%d emitted=%d ended=%d, want 5 each",
				i, a.begun, a.emitted, a.ended)
		}
	}
	if e.Round() != 5 {
		t.Errorf("Round = %d, want 5", e.Round())
	}
}

func TestMessagesDelivered(t *testing.T) {
	e, raw, _ := newEngine(t, 10, Push)
	e.Run(1)
	// every agent sent exactly one message; all recipients alive
	var received int
	for _, a := range raw {
		received += a.received
	}
	if received != 10 {
		t.Errorf("total received = %d, want 10", received)
	}
	if e.Messages() != 10 {
		t.Errorf("Messages = %d, want 10", e.Messages())
	}
	if e.Contacts() != 10 {
		t.Errorf("Contacts = %d, want 10", e.Contacts())
	}
}

func TestDeadHostsSkipped(t *testing.T) {
	e, raw, env := newEngine(t, 10, Push)
	env.dead[3] = true
	env.dead[7] = true
	e.Run(3)
	for _, id := range []NodeID{3, 7} {
		a := raw[id]
		if a.begun != 0 || a.emitted != 0 || a.received != 0 || a.ended != 0 {
			t.Errorf("dead agent %d was driven: %+v", id, *a)
		}
	}
}

// blindEnv models a mobile network where the initiator cannot tell
// that its peer has departed: Pick keeps returning dead hosts.
type blindEnv struct{ testEnv }

func (e *blindEnv) Pick(id NodeID, round int, rng *xrand.Rand) (NodeID, bool) {
	for c := NodeID(0); int(c) < e.n; c++ {
		if c != id {
			return c, true
		}
	}
	return 0, false
}

func TestMessagesToDeadHostsLost(t *testing.T) {
	env := &blindEnv{testEnv{n: 2, dead: map[NodeID]bool{}}}
	// agent 0 always sends to 1; 1 is dead but Pick still offers it.
	a0 := &echoAgent{id: 0}
	a1 := &echoAgent{id: 1}
	e, err := NewEngine(Config{Env: env, Agents: []Agent{a0, a1}, Model: Push, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	env.dead[1] = true
	e.Run(2)
	if a1.received != 0 {
		t.Errorf("dead agent received %d messages", a1.received)
	}
	// messages are still counted as sent (they were transmitted)
	if e.Messages() == 0 {
		t.Error("expected message transmissions to be counted")
	}
}

func TestHooksRunInOrder(t *testing.T) {
	env := newTestEnv(3)
	agents := make([]Agent, 3)
	for i := range agents {
		agents[i] = &echoAgent{id: NodeID(i)}
	}
	var calls []string
	e, err := NewEngine(Config{
		Env: env, Agents: agents, Seed: 1,
		BeforeRound: []Hook{
			func(r int, e *Engine) { calls = append(calls, "before1") },
			func(r int, e *Engine) { calls = append(calls, "before2") },
		},
		AfterRound: []Hook{func(r int, e *Engine) { calls = append(calls, "after") }},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	want := []string{"before1", "before2", "after"}
	if len(calls) != len(want) {
		t.Fatalf("calls = %v", calls)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("calls = %v, want %v", calls, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e, raw, _ := newEngine(t, 50, Push)
		e.Run(10)
		out := make([]float64, len(raw))
		for i, a := range raw {
			out[i] = float64(a.received)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run not deterministic at host %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// exchAgent tracks pairwise exchanges.
type exchAgent struct {
	echoAgent
	exchanges int
}

func (a *exchAgent) Exchange(peer Exchanger) {
	a.exchanges++
	peer.(*exchAgent).exchanges++
}

func TestPushPullExchanges(t *testing.T) {
	env := newTestEnv(10)
	agents := make([]Agent, 10)
	raw := make([]*exchAgent, 10)
	for i := range agents {
		raw[i] = &exchAgent{echoAgent: echoAgent{id: NodeID(i)}}
		agents[i] = raw[i]
	}
	e, err := NewEngine(Config{Env: env, Agents: agents, Model: PushPull, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(1)
	var total int
	for _, a := range raw {
		total += a.exchanges
	}
	// 10 initiations, each counted at both ends.
	if total != 20 {
		t.Errorf("total exchange participations = %d, want 20", total)
	}
	if e.Contacts() != 10 {
		t.Errorf("Contacts = %d, want 10", e.Contacts())
	}
	if e.Messages() != 20 {
		t.Errorf("Messages = %d, want 20", e.Messages())
	}
	// Emit must never be called under push/pull.
	for i, a := range raw {
		if a.emitted != 0 {
			t.Errorf("agent %d Emit called under push/pull", i)
		}
	}
}

func TestEstimates(t *testing.T) {
	e, raw, env := newEngine(t, 5, Push)
	for i, a := range raw {
		a.est = float64(i)
	}
	env.dead[2] = true
	ests := e.Estimates()
	if len(ests) != 4 {
		t.Fatalf("Estimates returned %d values, want 4", len(ests))
	}
	if _, ok := e.EstimateOf(2); ok {
		t.Error("EstimateOf(dead host) returned ok")
	}
	if v, ok := e.EstimateOf(4); !ok || v != 4 {
		t.Errorf("EstimateOf(4) = %v, %v", v, ok)
	}
}

func TestModelString(t *testing.T) {
	if Push.String() != "push" || PushPull.String() != "push-pull" {
		t.Error("model names wrong")
	}
	if Model(9).String() == "" {
		t.Error("unknown model should still render")
	}
}
