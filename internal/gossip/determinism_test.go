package gossip_test

import (
	"fmt"
	"math"
	"testing"

	"dynagg/internal/env"
	"dynagg/internal/failure"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/extremes"
	"dynagg/internal/protocol/pushsum"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
)

// fingerprint captures everything the determinism contract promises:
// the exact bit pattern of every host's estimate plus the engine's
// message and contact counters.
type fingerprint struct {
	estimates []uint64
	messages  int64
	contacts  int64
}

func runFingerprint(t *testing.T, protocol string, model gossip.Model, n, rounds, workers int) fingerprint {
	t.Helper()
	environment := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	for i := range agents {
		id := gossip.NodeID(i)
		switch protocol {
		case "pushsum":
			agents[i] = pushsum.NewAverage(id, float64(i%97))
		case "sketchreset":
			agents[i] = sketchreset.New(id, sketchreset.Config{
				Params:      sketch.Params{Bins: 8, Levels: 12},
				Identifiers: 1,
			})
		case "extremes":
			agents[i] = extremes.New(id, float64((i*31)%n), extremes.Config{Mode: extremes.Max})
		default:
			t.Fatalf("unknown protocol %q", protocol)
		}
	}
	engine, err := gossip.NewEngine(gossip.Config{
		Env:     environment,
		Agents:  agents,
		Model:   model,
		Seed:    7,
		Workers: workers,
		// Kill a third of the population mid-run so dead-host skipping
		// and lost messages are exercised in both executors.
		BeforeRound: []gossip.Hook{
			failure.RandomAt(rounds/2, 0.33, environment.Population, 11),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(rounds)
	fp := fingerprint{messages: engine.Messages(), contacts: engine.Contacts()}
	for _, a := range agents {
		v, ok := a.Estimate()
		if !ok {
			v = math.Inf(-1)
		}
		fp.estimates = append(fp.estimates, math.Float64bits(v))
	}
	return fp
}

// TestParallelMatchesSequential asserts that the sharded executor
// (Workers = 1, 4, 8) produces byte-identical estimates, message
// counts, and contact counts to the sequential executor (Workers = 0)
// across both gossip models and three protocols. The population is
// deliberately not a multiple of the worker counts so shard boundaries
// are uneven.
func TestParallelMatchesSequential(t *testing.T) {
	const (
		n      = 403
		rounds = 16
	)
	for _, protocol := range []string{"pushsum", "sketchreset", "extremes"} {
		for _, model := range []gossip.Model{gossip.Push, gossip.PushPull} {
			t.Run(fmt.Sprintf("%s/%s", protocol, model), func(t *testing.T) {
				want := runFingerprint(t, protocol, model, n, rounds, 0)
				for _, workers := range []int{1, 4, 8} {
					got := runFingerprint(t, protocol, model, n, rounds, workers)
					if got.messages != want.messages {
						t.Errorf("workers=%d: Messages = %d, sequential %d", workers, got.messages, want.messages)
					}
					if got.contacts != want.contacts {
						t.Errorf("workers=%d: Contacts = %d, sequential %d", workers, got.contacts, want.contacts)
					}
					for i := range want.estimates {
						if got.estimates[i] != want.estimates[i] {
							t.Errorf("workers=%d: host %d estimate bits %#x, sequential %#x",
								workers, i, got.estimates[i], want.estimates[i])
							break
						}
					}
				}
			})
		}
	}
}

// TestParallelWorkersExceedHosts covers the clamp path: more workers
// than hosts must still be deterministic and correct, and
// Engine.Workers must report the clamped pool size.
func TestParallelWorkersExceedHosts(t *testing.T) {
	environment := env.NewUniform(5)
	agents := make([]gossip.Agent, 5)
	for i := range agents {
		agents[i] = pushsum.NewAverage(gossip.NodeID(i), float64(i))
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: environment, Agents: agents, Workers: 32})
	if err != nil {
		t.Fatal(err)
	}
	if got := engine.Workers(); got != 5 {
		t.Errorf("Workers() = %d, want pool clamped to 5 hosts", got)
	}
	sequential, err := gossip.NewEngine(gossip.Config{Env: environment, Agents: agents})
	if err != nil {
		t.Fatal(err)
	}
	if got := sequential.Workers(); got != 0 {
		t.Errorf("Workers() = %d on sequential engine, want 0", got)
	}

	want := runFingerprint(t, "pushsum", gossip.Push, 5, 8, 0)
	got := runFingerprint(t, "pushsum", gossip.Push, 5, 8, 32)
	for i := range want.estimates {
		if got.estimates[i] != want.estimates[i] {
			t.Fatalf("host %d estimate differs with clamped workers", i)
		}
	}
	if got.messages != want.messages || got.contacts != want.contacts {
		t.Fatalf("counters differ: got (%d, %d), want (%d, %d)",
			got.messages, got.contacts, want.messages, want.contacts)
	}
}

// TestNegativeWorkersRejected pins the validation contract.
func TestNegativeWorkersRejected(t *testing.T) {
	environment := env.NewUniform(2)
	agents := []gossip.Agent{
		pushsum.NewAverage(0, 1),
		pushsum.NewAverage(1, 2),
	}
	_, err := gossip.NewEngine(gossip.Config{Env: environment, Agents: agents, Workers: -1})
	if err == nil {
		t.Fatal("negative Workers accepted")
	}
}
