// Package integration holds cross-module tests: each test exercises a
// full pipeline — workload generation, environment, protocol, metrics —
// the way the experiments and examples do, asserting end-to-end
// behaviour rather than unit contracts.
package integration

import (
	"bytes"
	"math"
	"testing"
	"time"

	"dynagg/internal/core"
	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/metrics"
	"dynagg/internal/overlay"
	"dynagg/internal/protocol/epoch"
	"dynagg/internal/protocol/multi"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
	"dynagg/internal/stats"
	"dynagg/internal/trace"
)

// Full trace pipeline: synthesize a trace, round-trip it through the
// interchange format, replay it as an environment, run the
// multi-aggregate protocol over it, and check group-relative error.
func TestTracePipeline(t *testing.T) {
	params := trace.Dataset2()
	params.Days = 2
	tr := trace.Generate(params)

	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	tenv := env.NewTraceEnv(tr2, 0, 0)
	values := make([]float64, tr2.N)
	for i := range values {
		values[i] = float64(10 + i)
	}
	agents := make([]gossip.Agent, tr2.N)
	for i := range agents {
		agents[i] = multi.New(gossip.NodeID(i), map[string]float64{"v": values[i]},
			sketchreset.Config{Params: sketch.DefaultParams, Identifiers: 100, Scale: 100},
			pushsumrevert.Config{Lambda: 0.01, PushPull: true},
		)
	}
	var dev stats.Series
	engine, err := gossip.NewEngine(gossip.Config{
		Env: tenv, Agents: agents, Model: gossip.PushPull, Seed: 3,
		AfterRound: []gossip.Hook{
			metrics.GroupDeviationHook(&dev, nil, tenv, values, metrics.GroupAverage, 120),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(tenv.Rounds())

	if dev.Len() == 0 {
		t.Fatal("no deviation samples recorded")
	}
	// Group-relative error must stay bounded by the value spread.
	for i, y := range dev.Y {
		if math.IsNaN(y) || y > float64(tr2.N)+10 {
			t.Fatalf("sample %d deviation %v unreasonable", i, y)
		}
	}
	// Every device ends with finite estimates for both aggregates.
	for id, a := range engine.Agents() {
		node := a.(*multi.Node)
		if v, ok := node.Average("v"); ok && (math.IsNaN(v) || math.IsInf(v, 0)) {
			t.Errorf("device %d average not finite: %v", id, v)
		}
		if s, ok := node.Size(); ok && (s < 0 || math.IsInf(s, 0)) {
			t.Errorf("device %d size estimate invalid: %v", id, s)
		}
	}
}

// CRAWDAD import feeds the same machinery: contact table → trace →
// environment → protocol.
func TestContactsPipeline(t *testing.T) {
	// A hand-written contact table: a triangle for an hour, then a
	// separate pair.
	src := "1 2 0 3600\n2 3 0 3600\n1 3 0 3600\n4 5 1800 7200\n"
	tr, err := trace.ReadContacts("triangle", bytes.NewReader([]byte(src)))
	if err != nil {
		t.Fatal(err)
	}
	tenv := env.NewTraceEnv(tr, 30*time.Second, 10*time.Minute)
	values := []float64{10, 20, 30, 100, 200}
	agents := make([]gossip.Agent, tr.N)
	for i := range agents {
		agents[i] = pushsumrevert.New(gossip.NodeID(i), values[i],
			pushsumrevert.Config{Lambda: 0.01, PushPull: true})
	}
	engine, err := gossip.NewEngine(gossip.Config{
		Env: tenv, Agents: agents, Model: gossip.PushPull, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 45 simulated minutes: the triangle is connected throughout; the
	// pair links at the 30-minute mark and has 15 minutes to converge.
	engine.Run(90)

	// The triangle converges to its own average (20); devices 4 and 5
	// (linked from 30 min in) converge toward 150.
	for id := 0; id < 3; id++ {
		est, ok := engine.EstimateOf(gossip.NodeID(id))
		if !ok || math.Abs(est-20) > 2 {
			t.Errorf("triangle device %d estimate %v, want ≈ 20", id, est)
		}
	}
	e4, _ := engine.EstimateOf(3)
	e5, _ := engine.EstimateOf(4)
	if math.Abs(e4-150) > 10 || math.Abs(e5-150) > 10 {
		t.Errorf("pair estimates %v, %v; want ≈ 150", e4, e5)
	}
}

// Grid + Invert-Average: the composed sum estimate works on a spatial
// environment with a calibrated cutoff, and decays after a failure.
func TestGridInvertAverageSum(t *testing.T) {
	const side = 16
	grid := env.NewGrid(side, side, side)
	n := grid.Size()
	values := make([]float64, n)
	var want float64
	for i := range values {
		values[i] = float64(i%5 + 1)
		want += values[i]
	}
	net, err := core.NewSum(core.SumConfig{
		Common: core.Common{Env: grid, Seed: 5, Model: gossip.PushPull},
		Values: values,
		Method: core.InvertAverage,
		Lambda: 0.05,
		Cutoff: func(k int) float64 { return 20 + float64(k)/2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(50)
	est, ok := net.EstimateOf(0)
	if !ok || math.Abs(est-want) > 0.5*want {
		t.Errorf("grid sum estimate %v, want ≈ %v", est, want)
	}
}

// Mobility + epoch baseline: epochs synchronize even when connectivity
// is proximity-limited, because mobility mixes the cliques.
func TestMobilityEpochSynchronization(t *testing.T) {
	mob, err := env.NewMobile(env.MobileConfig{
		N: 300, Width: 1200, Height: 1200, Range: 120,
		MinSpeed: 15, MaxSpeed: 45, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	agents := make([]gossip.Agent, 300)
	for i := range agents {
		agents[i] = epoch.New(gossip.NodeID(i), float64(i%10), epoch.Config{Length: 20, Maturity: 10})
	}
	engine, err := gossip.NewEngine(gossip.Config{
		Env: mob, Agents: agents, Model: gossip.Push, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(100)
	// All hosts should be within one epoch of each other.
	min, max := 1<<30, -1
	for _, a := range engine.Agents() {
		e := a.(*epoch.Node).Epoch()
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	if max-min > 1 {
		t.Errorf("epochs diverged under mobility: range [%d, %d]", min, max)
	}
}

// Overlay vs gossip on the same trace topology: on a static snapshot
// the tree is exact while gossip carries the reversion bias; after a
// silent failure the tree loses a subtree while gossip degrades
// gracefully.
func TestOverlayVsGossipOnTraceTopology(t *testing.T) {
	// A static star trace: device 0 at the center, 8 leaves.
	events := make([]trace.Event, 0, 8)
	for leaf := 1; leaf <= 8; leaf++ {
		events = append(events, trace.Event{At: 0, A: 0, B: leaf, Up: true})
	}
	tr := &trace.Trace{Name: "star", N: 9, Duration: time.Hour, Events: events}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tenv := env.NewTraceEnv(tr, 30*time.Second, 10*time.Minute)
	tenv.Advance(0)
	values := []float64{9, 1, 2, 3, 4, 5, 6, 7, 8}

	topo := traceTopology{tenv}
	tree, err := overlay.Build(topo, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Reached() != 9 {
		t.Fatalf("tree reached %d of 9", tree.Reached())
	}
	exact := tree.Collect(values, func(id gossip.NodeID) bool { return true })
	if exact.Average() != 5 {
		t.Errorf("static tree average %v, want exactly 5", exact.Average())
	}

	// A leaf failing silently costs exactly its own contribution (a
	// leaf forwards no one else's partials, so nothing else is lost);
	// the interior-failure subtree loss is asserted in package overlay.
	lost := tree.Collect(values, func(id gossip.NodeID) bool { return id != 1 })
	if lost.Count != 8 || lost.Lost != 0 || lost.Sum != 44 {
		t.Errorf("post-failure collect %+v, want count 8, lost 0, sum 44", lost)
	}
}

type traceTopology struct{ tenv *env.TraceEnv }

func (t traceTopology) Size() int { return t.tenv.Size() }
func (t traceTopology) Alive(id gossip.NodeID) bool {
	return t.tenv.Population.Alive(id)
}
func (t traceTopology) Neighbors(id gossip.NodeID) []gossip.NodeID {
	return t.tenv.NeighborsOf(id)
}

// All aggregate kinds run against the same environment and agree with
// ground truth simultaneously.
func TestAllAggregatesAgree(t *testing.T) {
	const n = 500
	values := make([]float64, n)
	var sum, sq float64
	for i := range values {
		values[i] = float64(i % 80)
		sum += values[i]
		sq += values[i] * values[i]
	}
	mean := sum / n
	stddev := math.Sqrt(sq/n - mean*mean)

	type check struct {
		name string
		net  interface {
			Run(int)
			EstimateOf(gossip.NodeID) (float64, bool)
		}
		want float64
		tol  float64
	}
	mk := func(build func(e *env.Uniform) (*core.Network, error)) *core.Network {
		e := env.NewUniform(n)
		net, err := build(e)
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	checks := []check{
		{"average", mk(func(e *env.Uniform) (*core.Network, error) {
			return core.NewAverage(core.AverageConfig{
				Common: core.Common{Env: e, Seed: 8, Model: gossip.PushPull},
				Values: values, Lambda: 0.01,
			})
		}), mean, 2},
		{"count", mk(func(e *env.Uniform) (*core.Network, error) {
			return core.NewCount(core.CountConfig{
				Common: core.Common{Env: e, Seed: 8, Model: gossip.PushPull},
			})
		}), n, 0.35 * n},
		{"sum", mk(func(e *env.Uniform) (*core.Network, error) {
			return core.NewSum(core.SumConfig{
				Common: core.Common{Env: e, Seed: 8, Model: gossip.PushPull},
				Values: values, Method: core.InvertAverage, Lambda: 0.01,
			})
		}), sum, 0.4 * sum},
		{"stddev", mk(func(e *env.Uniform) (*core.Network, error) {
			return core.NewStdDev(core.StdDevConfig{
				Common: core.Common{Env: e, Seed: 8, Model: gossip.PushPull},
				Values: values, Lambda: 0.01,
			})
		}), stddev, 3},
	}
	for _, c := range checks {
		c.net.Run(30)
		est, ok := c.net.EstimateOf(7)
		if !ok {
			t.Errorf("%s: no estimate", c.name)
			continue
		}
		if math.Abs(est-c.want) > c.tol {
			t.Errorf("%s: estimate %v, want %v ± %v", c.name, est, c.want, c.tol)
		}
	}
}
