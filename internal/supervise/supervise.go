// Package supervise closes the self-healing loop: it launches the
// member processes of a live TCP deployment, acts as their bootstrap
// seed, runs the health detector over their keepalive heartbeats, and
// restarts members the detector pronounces dead — with Replace
// bootstrap semantics, so the fresh incarnation takes over the span
// the corpse still holds in everyone's membership tables.
//
// The supervisor is deliberately outside the counted population: its
// transport listens on an observer span at [Total, Total+1), which
// Covers ignores, so members gate their bootstrap on each other, never
// on the supervisor, and no gossip traffic is ever aimed at it.
//
// Restart-storm protection is budgeted, not unbounded: each member
// gets RestartBudget restarts per BudgetWindow with jittered backoff
// between attempts; a member that burns the budget is declared failed
// and the whole supervision run stops with an error naming it, because
// a crash loop is a bug to surface, not a condition to mask.
package supervise

import (
	"context"
	"fmt"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"time"

	"dynagg/internal/backoff"
	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live/health"
	"dynagg/internal/gossip/live/transport"
)

// Member is one supervised process: a name for logs and Kill, and the
// host span it owns.
type Member struct {
	// Name identifies the member in logs, Stats, and Kill.
	Name string
	// Lo, Hi are the member's host span, inside [0, Total).
	Lo, Hi gossip.NodeID
}

// Spawner builds the command for one incarnation of a member. It must
// return an unstarted *exec.Cmd — the supervisor starts and waits it.
// incarnation is 0 for the first launch and increments per restart;
// spawners use it to pass restart semantics down (a restarted member
// must bootstrap with Replace so the seeds accept its new address over
// the dead incarnation's). Set Stdout/Stderr on the command before
// returning it; exec.Cmd's own copier goroutines are awaited by Wait,
// so an io.Writer there is safe without pipe plumbing.
type Spawner func(m Member, incarnation int) (*exec.Cmd, error)

// Defaults for Config's zero fields.
const (
	DefaultRestartBudget = 5
	DefaultBudgetWindow  = time.Minute
	DefaultPoll          = 25 * time.Millisecond
)

// Config assembles a Supervisor.
type Config struct {
	// Total is the counted population size; member spans live in
	// [0, Total) and the supervisor's observer listener at Total.
	Total int
	// Listen is the supervisor's bind address ("127.0.0.1:0" for an
	// ephemeral port). Members receive the resolved address via
	// SeedAddr.
	Listen string
	// Members are the processes to supervise. Spans must be
	// non-overlapping and inside [0, Total).
	Members []Member
	// Spawn builds each (re)launch. Required.
	Spawn Spawner
	// Detector tunes the failure detector; its HeartbeatEvery should
	// match the members' bootstrap ReAnnounce cadence.
	Detector health.Config
	// RestartBudget caps restarts per member per BudgetWindow
	// (0 means DefaultRestartBudget).
	RestartBudget int
	// BudgetWindow is the sliding window the budget applies over
	// (0 means DefaultBudgetWindow).
	BudgetWindow time.Duration
	// RestartBackoff paces restart attempts for one member; it resets
	// when the member is observed healthy again. Zero means
	// {Min: 250ms, Max: 5s, Jitter: 0.25}.
	RestartBackoff backoff.Policy
	// Poll is the supervision loop cadence (0 means DefaultPoll).
	Poll time.Duration
	// RecoveryGrace bounds how long a restarted member may take to be
	// observed alive before the supervisor gives up on that incarnation
	// and kills it (counting against the budget). 0 means
	// 20 × Detector.HeartbeatEvery.
	RecoveryGrace time.Duration
	// Logf, when set, receives one line per supervision event.
	Logf func(format string, args ...any)
}

// Heal is one completed crash-and-recover cycle: the wall-clock
// anchors the heal benchlines are computed from.
type Heal struct {
	// Member is the healed member's name; Incarnation the replacement
	// that recovered.
	Member      string
	Incarnation int
	// ExitAt is when the old process died, DetectedAt when the
	// detector's dead verdict (or exit observation) landed, RestartAt
	// when the replacement was spawned, RecoveredAt when the detector
	// saw the span alive again.
	ExitAt, DetectedAt, RestartAt, RecoveredAt time.Time
}

// DetectLatency is death-to-verdict.
func (h Heal) DetectLatency() time.Duration { return h.DetectedAt.Sub(h.ExitAt) }

// RecoverLatency is death-to-healthy.
func (h Heal) RecoverLatency() time.Duration { return h.RecoveredAt.Sub(h.ExitAt) }

// Stats summarizes a supervision run.
type Stats struct {
	// Restarts counts every respawn across all members.
	Restarts int
	// Completed counts members that exited cleanly.
	Completed int
	// Failed names members that exhausted their restart budget.
	Failed []string
	// Heals lists every completed crash-and-recover cycle.
	Heals []Heal
}

// memberPhase is the supervision loop's per-member state machine.
type memberPhase int

const (
	phaseRunning memberPhase = iota
	phaseDown                // process exited abnormally; awaiting verdict/backoff
	phaseDone                // exited cleanly — never restarted
	phaseFailed              // restart budget exhausted
)

// memberState is the supervisor's book-keeping for one member.
type memberState struct {
	spec        Member
	phase       memberPhase
	incarnation int
	cmd         *exec.Cmd
	bo          *backoff.Backoff

	exitAt        time.Time
	detectedAt    time.Time
	nextRestartAt time.Time
	restartAt     time.Time
	recovering    bool // respawned, waiting for an alive verdict
	heal          Heal // in-flight heal record
	restarts      []time.Time
}

// exitEvent is a monitor goroutine reporting its process's death.
type exitEvent struct {
	name        string
	incarnation int
	err         error
}

// Supervisor launches, watches, and heals a member fleet. Create with
// New, drive with Run, inject chaos with Kill, read with Stats.
type Supervisor struct {
	cfg Config
	tr  *transport.TCP
	det *health.Detector
	// seedAddr is resolved at construction, while the observer span is
	// the only group: the transport's table re-sorts by Lo as members
	// register, so indexing it later would hand out a member's address.
	seedAddr string

	mu      sync.Mutex
	members map[string]*memberState
	stats   Stats

	exitCh  chan exitEvent
	stopped chan struct{}
	wg      sync.WaitGroup
}

// New validates cfg, binds the supervisor's observer listener, and
// attaches the failure detector. Call Close when done.
func New(cfg Config) (*Supervisor, error) {
	if cfg.Total <= 0 {
		return nil, fmt.Errorf("supervise: Total must be positive, got %d", cfg.Total)
	}
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("supervise: no members")
	}
	if cfg.Spawn == nil {
		return nil, fmt.Errorf("supervise: Spawn is required")
	}
	seen := map[string]bool{}
	spans := make([]Member, len(cfg.Members))
	copy(spans, cfg.Members)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Lo < spans[j].Lo })
	for i, m := range spans {
		if strings.TrimSpace(m.Name) == "" {
			return nil, fmt.Errorf("supervise: member %d has no name", i)
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("supervise: duplicate member name %q", m.Name)
		}
		seen[m.Name] = true
		if m.Lo < 0 || m.Lo >= m.Hi || int(m.Hi) > cfg.Total {
			return nil, fmt.Errorf("supervise: member %q span [%d,%d) outside [0,%d)", m.Name, m.Lo, m.Hi, cfg.Total)
		}
		if i > 0 && m.Lo < spans[i-1].Hi {
			return nil, fmt.Errorf("supervise: member %q span overlaps %q", m.Name, spans[i-1].Name)
		}
	}
	if cfg.RestartBudget <= 0 {
		cfg.RestartBudget = DefaultRestartBudget
	}
	if cfg.BudgetWindow <= 0 {
		cfg.BudgetWindow = DefaultBudgetWindow
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	if cfg.RestartBackoff == (backoff.Policy{}) {
		cfg.RestartBackoff = backoff.Policy{Min: 250 * time.Millisecond, Max: 5 * time.Second, Jitter: 0.25}
	}
	if err := cfg.RestartBackoff.Validate(); err != nil {
		return nil, fmt.Errorf("supervise: RestartBackoff: %w", err)
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.RecoveryGrace <= 0 {
		hb := cfg.Detector.HeartbeatEvery
		if hb <= 0 {
			hb = health.DefaultHeartbeatEvery
		}
		cfg.RecoveryGrace = 20 * hb
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	obs := gossip.NodeID(cfg.Total)
	tr, err := transport.NewTCP(transport.TCPConfig{
		Groups: []transport.Group{{Lo: obs, Hi: obs + 1, Addr: cfg.Listen}},
		Local:  []int{0},
	})
	if err != nil {
		return nil, fmt.Errorf("supervise: %w", err)
	}
	s := &Supervisor{
		cfg:      cfg,
		tr:       tr,
		det:      health.Attach(tr, cfg.Detector),
		seedAddr: tr.GroupAddr(0),
		members:  make(map[string]*memberState, len(cfg.Members)),
		exitCh:   make(chan exitEvent, 4*len(cfg.Members)+16),
		stopped:  make(chan struct{}),
	}
	for _, m := range cfg.Members {
		s.members[m.Name] = &memberState{spec: m, bo: backoff.New(cfg.RestartBackoff)}
	}
	return s, nil
}

// SeedAddr is the supervisor's resolved listener address — the one
// seed every member should bootstrap against.
func (s *Supervisor) SeedAddr() string { return s.seedAddr }

// Detector exposes the failure detector (for status endpoints that
// want the raw verdicts).
func (s *Supervisor) Detector() *health.Detector { return s.det }

// Close releases the supervisor's listener.
func (s *Supervisor) Close() error { return s.tr.Close() }

// Run launches every member and supervises until all of them exit
// cleanly (returns nil), one exhausts its restart budget (returns an
// error naming it), or ctx is cancelled (kills the fleet, returns
// ctx.Err()).
func (s *Supervisor) Run(ctx context.Context) error {
	s.mu.Lock()
	for _, m := range s.members {
		if err := s.spawnLocked(m); err != nil {
			s.mu.Unlock()
			s.shutdown()
			return err
		}
	}
	s.mu.Unlock()

	ticker := time.NewTicker(s.cfg.Poll)
	defer ticker.Stop()
	defer s.shutdown()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case ev := <-s.exitCh:
			s.handleExit(ev)
		case <-ticker.C:
		}
		done, err := s.step()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// Kill terminates a running member's process — the chaos-injection
// hook. The supervisor's own machinery then detects and heals it like
// any other crash.
func (s *Supervisor) Kill(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.members[name]
	if !ok {
		return fmt.Errorf("supervise: unknown member %q", name)
	}
	if m.phase != phaseRunning || m.cmd == nil || m.cmd.Process == nil {
		return fmt.Errorf("supervise: member %q is not running", name)
	}
	s.cfg.Logf("supervise: killing %s (incarnation %d)", name, m.incarnation)
	return m.cmd.Process.Kill()
}

// Stats returns a snapshot of the run so far.
func (s *Supervisor) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.Failed = append([]string(nil), s.stats.Failed...)
	out.Heals = append([]Heal(nil), s.stats.Heals...)
	return out
}

// spawnLocked starts member m's next incarnation; callers hold mu.
func (s *Supervisor) spawnLocked(m *memberState) error {
	cmd, err := s.cfg.Spawn(m.spec, m.incarnation)
	if err != nil {
		return fmt.Errorf("supervise: spawn %s: %w", m.spec.Name, err)
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("supervise: start %s: %w", m.spec.Name, err)
	}
	m.cmd = cmd
	m.phase = phaseRunning
	s.cfg.Logf("supervise: started %s (incarnation %d, pid %d)", m.spec.Name, m.incarnation, cmd.Process.Pid)
	name, inc := m.spec.Name, m.incarnation
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		err := cmd.Wait()
		select {
		case s.exitCh <- exitEvent{name: name, incarnation: inc, err: err}:
		case <-s.stopped:
		}
	}()
	return nil
}

// handleExit processes one monitor report.
func (s *Supervisor) handleExit(ev exitEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.members[ev.name]
	if !ok || ev.incarnation != m.incarnation || m.phase != phaseRunning {
		return // stale report from a superseded incarnation
	}
	now := time.Now()
	if ev.err == nil {
		m.phase = phaseDone
		s.stats.Completed++
		s.cfg.Logf("supervise: %s completed", ev.name)
		return
	}
	m.phase = phaseDown
	m.exitAt = now
	m.nextRestartAt = time.Time{}
	// A kill issued because the detector already flagged the span dead
	// carries its verdict time; a spontaneous crash waits for one.
	if !m.recovering && m.detectedAt.Before(m.exitAt) {
		m.detectedAt = time.Time{}
	}
	s.cfg.Logf("supervise: %s (incarnation %d) exited: %v", ev.name, m.incarnation, ev.err)
}

// step advances the supervision state machine one poll. It returns
// done=true when every member has completed, or an error when one has
// failed permanently.
func (s *Supervisor) step() (done bool, err error) {
	snap := s.det.Snapshot()
	verdict := make(map[gossip.NodeID]health.State, len(snap.Spans))
	known := make(map[gossip.NodeID]bool, len(snap.Spans))
	for _, sp := range snap.Spans {
		verdict[sp.Lo] = sp.State
		known[sp.Lo] = true
	}
	now := time.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	running := 0
	for _, m := range s.members {
		switch m.phase {
		case phaseDone:
		case phaseFailed:
			return false, fmt.Errorf("supervise: member %s exhausted its restart budget (%d in %v)",
				m.spec.Name, s.cfg.RestartBudget, s.cfg.BudgetWindow)
		case phaseRunning:
			running++
			s.stepRunning(m, verdict, now)
		case phaseDown:
			running++
			s.stepDown(m, verdict, known, now)
		}
	}
	return running == 0, nil
}

// stepRunning watches a live process: records recovery when a
// respawned member is seen alive again, and kills a process whose span
// the detector has pronounced dead (wedged: alive as a process, gone
// as a member) or whose restart never became healthy within the grace.
func (s *Supervisor) stepRunning(m *memberState, verdict map[gossip.NodeID]health.State, now time.Time) {
	st, seen := verdict[m.spec.Lo]
	if m.recovering {
		if seen && st == health.Alive {
			m.recovering = false
			m.bo.Reset()
			m.heal.RecoveredAt = now
			s.stats.Heals = append(s.stats.Heals, m.heal)
			s.cfg.Logf("supervise: %s healed (detect %v, recover %v)",
				m.spec.Name, m.heal.DetectLatency(), m.heal.RecoverLatency())
			return
		}
		if now.Sub(m.restartAt) > s.cfg.RecoveryGrace {
			s.cfg.Logf("supervise: %s incarnation %d never became healthy; killing", m.spec.Name, m.incarnation)
			m.detectedAt = now
			if m.cmd != nil && m.cmd.Process != nil {
				_ = m.cmd.Process.Kill()
			}
		}
		return
	}
	if seen && st == health.Dead {
		s.cfg.Logf("supervise: %s pronounced dead while process lives; killing", m.spec.Name)
		m.detectedAt = now
		if m.cmd != nil && m.cmd.Process != nil {
			_ = m.cmd.Process.Kill()
		}
	}
}

// stepDown shepherds a crashed member back: waits for the detector's
// dead verdict (unless the span was never observed — a member that
// died before its first announce has nothing to detect), then
// restarts under budget and backoff.
func (s *Supervisor) stepDown(m *memberState, verdict map[gossip.NodeID]health.State, known map[gossip.NodeID]bool, now time.Time) {
	if m.detectedAt.IsZero() {
		if !known[m.spec.Lo] || verdict[m.spec.Lo] == health.Dead {
			m.detectedAt = now
			s.cfg.Logf("supervise: detected %s dead %v after exit", m.spec.Name, now.Sub(m.exitAt))
		} else {
			return
		}
	}
	if m.nextRestartAt.IsZero() {
		m.nextRestartAt = now.Add(m.bo.Next())
	}
	if now.Before(m.nextRestartAt) {
		return
	}
	// Budget: restarts inside the sliding window.
	keep := m.restarts[:0]
	for _, t := range m.restarts {
		if now.Sub(t) < s.cfg.BudgetWindow {
			keep = append(keep, t)
		}
	}
	m.restarts = keep
	if len(m.restarts) >= s.cfg.RestartBudget {
		m.phase = phaseFailed
		s.stats.Failed = append(s.stats.Failed, m.spec.Name)
		s.cfg.Logf("supervise: %s failed permanently (%d restarts in %v)",
			m.spec.Name, len(m.restarts), s.cfg.BudgetWindow)
		return
	}
	m.restarts = append(m.restarts, now)
	m.incarnation++
	m.heal = Heal{
		Member: m.spec.Name, Incarnation: m.incarnation,
		ExitAt: m.exitAt, DetectedAt: m.detectedAt, RestartAt: now,
	}
	m.recovering = true
	m.restartAt = now
	m.detectedAt = time.Time{}
	if err := s.spawnLocked(m); err != nil {
		// Spawn failure burns a budget slot and retries on backoff.
		s.cfg.Logf("supervise: respawn %s: %v", m.spec.Name, err)
		m.phase = phaseDown
		m.recovering = false
		m.exitAt = now
		m.detectedAt = now
		m.nextRestartAt = now.Add(m.bo.Next())
		return
	}
	s.stats.Restarts++
	m.nextRestartAt = time.Time{}
}

// shutdown kills every live process and waits the monitors out.
func (s *Supervisor) shutdown() {
	close(s.stopped)
	s.mu.Lock()
	for _, m := range s.members {
		if m.phase == phaseRunning && m.cmd != nil && m.cmd.Process != nil {
			_ = m.cmd.Process.Kill()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}
