package supervise

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"dynagg/internal/backoff"
	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live"
	"dynagg/internal/gossip/live/health"
	"dynagg/internal/gossip/live/transport"
)

// TestHelperSuperviseMember is not a test: it is the member process
// the supervisor tests re-exec (the classic helper-process pattern —
// the test binary re-runs itself with this test selected and behavior
// steered by H_* environment variables).
func TestHelperSuperviseMember(t *testing.T) {
	if os.Getenv("SUPERVISE_HELPER") != "1" {
		t.Skip("helper process, spawned by the supervisor tests")
	}
	runHelperMember()
}

// runHelperMember is a minimal supervised member: bootstrap against
// the seed, keep alive at a fast cadence, exit 0 when the configured
// lifetime ends — or crash (exit 1) on cue.
func runHelperMember() {
	if os.Getenv("H_CRASH") == "1" {
		os.Exit(1)
	}
	envInt := func(k string) int { v, _ := strconv.Atoi(os.Getenv(k)); return v }
	lo := gossip.NodeID(envInt("H_LO"))
	hi := gossip.NodeID(envInt("H_HI"))
	total := envInt("H_TOTAL")
	life := time.Duration(envInt("H_LIFE_MS")) * time.Millisecond

	if die := envInt("H_DIE_MS"); die > 0 {
		go func() {
			time.Sleep(time.Duration(die) * time.Millisecond)
			os.Exit(1)
		}()
	}

	tr, err := transport.NewTCP(transport.TCPConfig{
		Groups:     []transport.Group{{Lo: lo, Hi: hi, Addr: "127.0.0.1:0"}},
		Local:      []int{0},
		BackoffMin: 2 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	defer tr.Close()

	ctx, cancel := context.WithTimeout(context.Background(), life)
	defer cancel()
	b := live.Bootstrap{
		Seeds:      []string{os.Getenv("H_SEED")},
		Span:       live.Span{Lo: lo, Hi: hi},
		Total:      total,
		Replace:    os.Getenv("H_REPLACE") == "1",
		Retry:      10 * time.Millisecond,
		Timeout:    10 * time.Second,
		ReAnnounce: 50 * time.Millisecond,
	}
	if err := b.Run(ctx, tr); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "helper bootstrap:", err)
		os.Exit(1)
	}
	b.KeepAlive(ctx, tr) // returns when the lifetime context expires
	// Exit NOW, skipping deferred teardown and test-framework shutdown:
	// a member that stops heartbeating but lingers as a process is
	// indistinguishable from a wedged one, and the supervisor will
	// (correctly) kill it — turning this clean completion into a crash.
	os.Exit(0)
}

// helperSpawner re-execs this test binary as a member. die, when
// positive, makes incarnation 0 crash after that long — restarts live
// their full lifetime.
func helperSpawner(t *testing.T, seedAddr func() string, total int, life time.Duration, die map[string]time.Duration) Spawner {
	t.Helper()
	return func(m Member, incarnation int) (*exec.Cmd, error) {
		cmd := exec.Command(os.Args[0], "-test.run=^TestHelperSuperviseMember$")
		cmd.Env = append(os.Environ(),
			"SUPERVISE_HELPER=1",
			fmt.Sprintf("H_LO=%d", m.Lo),
			fmt.Sprintf("H_HI=%d", m.Hi),
			fmt.Sprintf("H_TOTAL=%d", total),
			"H_SEED="+seedAddr(),
			fmt.Sprintf("H_LIFE_MS=%d", life.Milliseconds()),
		)
		if incarnation > 0 {
			cmd.Env = append(cmd.Env, "H_REPLACE=1")
		} else if d := die[m.Name]; d > 0 {
			cmd.Env = append(cmd.Env, fmt.Sprintf("H_DIE_MS=%d", d.Milliseconds()))
		}
		cmd.Stderr = os.Stderr
		return cmd, nil
	}
}

// TestSupervisorHealsCrashedMembers is the headline: member a crashes
// on its own, member b is killed by chaos injection, and the
// supervisor detects both deaths via the heartbeat detector, respawns
// each with Replace bootstrap, observes them healthy again, and lets
// the run complete cleanly — no launcher intervention.
func TestSupervisorHealsCrashedMembers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process heal test")
	}
	const total = 8
	members := []Member{{Name: "a", Lo: 0, Hi: 4}, {Name: "b", Lo: 4, Hi: 8}}
	var sup *Supervisor
	cfg := Config{
		Total:   total,
		Members: members,
		Spawn: helperSpawner(t, func() string { return sup.SeedAddr() }, total,
			4*time.Second, map[string]time.Duration{"a": 500 * time.Millisecond}),
		// A dead threshold of 2s (20 × 100ms), far above the 50ms announce
		// cadence: on a single-CPU machine, merely starting one
		// race-instrumented child process can monopolize the CPU for a
		// second, starving an already-running sibling's announce loop —
		// and a live-but-starved member must never be restarted (each
		// false restart starves the next sibling, self-sustaining).
		Detector:       health.Config{HeartbeatEvery: 100 * time.Millisecond, SuspectFactor: 10, DeadFactor: 20},
		RestartBackoff: backoff.Policy{Min: 20 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.25},
		Poll:           10 * time.Millisecond,
		RecoveryGrace:  10 * time.Second,
		Logf:           t.Logf,
	}
	var err error
	sup, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	killed := make(chan error, 1)
	go func() {
		// Chaos injection: murder b once the cluster is warm.
		time.Sleep(1200 * time.Millisecond)
		killed <- sup.Kill("b")
	}()
	if err := sup.Run(ctx); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := <-killed; err != nil {
		t.Fatalf("Kill(b): %v", err)
	}

	stats := sup.Stats()
	if stats.Restarts < 2 {
		t.Errorf("Restarts = %d, want >= 2 (one per victim)", stats.Restarts)
	}
	if stats.Completed != 2 {
		t.Errorf("Completed = %d, want 2", stats.Completed)
	}
	if len(stats.Failed) != 0 {
		t.Errorf("Failed = %v, want none", stats.Failed)
	}
	healed := map[string]bool{}
	for _, h := range stats.Heals {
		healed[h.Member] = true
		if h.DetectLatency() <= 0 {
			t.Errorf("heal %s: detect latency %v, want > 0", h.Member, h.DetectLatency())
		}
		if h.RecoverLatency() < h.DetectLatency() {
			t.Errorf("heal %s: recover %v < detect %v", h.Member, h.RecoverLatency(), h.DetectLatency())
		}
		if h.Incarnation < 1 {
			t.Errorf("heal %s: incarnation %d, want >= 1", h.Member, h.Incarnation)
		}
	}
	if !healed["a"] || !healed["b"] {
		t.Errorf("heals recorded for %v, want both a and b (heals: %+v)", healed, stats.Heals)
	}
}

// TestSupervisorRestartBudget pins the storm brake: a member that
// crash-loops burns its budget and the run fails loudly instead of
// respawning forever.
func TestSupervisorRestartBudget(t *testing.T) {
	var sup *Supervisor
	cfg := Config{
		Total:   4,
		Members: []Member{{Name: "crash", Lo: 0, Hi: 4}},
		Spawn: func(m Member, incarnation int) (*exec.Cmd, error) {
			cmd := exec.Command(os.Args[0], "-test.run=^TestHelperSuperviseMember$")
			cmd.Env = append(os.Environ(), "SUPERVISE_HELPER=1", "H_CRASH=1")
			return cmd, nil
		},
		Detector:       health.Config{HeartbeatEvery: 50 * time.Millisecond},
		RestartBudget:  3,
		BudgetWindow:   time.Minute,
		RestartBackoff: backoff.Policy{Min: 5 * time.Millisecond, Max: 20 * time.Millisecond, Jitter: 0.25},
		Poll:           5 * time.Millisecond,
		Logf:           t.Logf,
	}
	var err error
	sup, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	_ = sup // spawner does not need the seed: the member never announces

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	runErr := sup.Run(ctx)
	if runErr == nil {
		t.Fatal("Run returned nil, want restart-budget error")
	}
	stats := sup.Stats()
	if stats.Restarts != 3 {
		t.Errorf("Restarts = %d, want exactly the budget of 3", stats.Restarts)
	}
	if len(stats.Failed) != 1 || stats.Failed[0] != "crash" {
		t.Errorf("Failed = %v, want [crash]", stats.Failed)
	}
}

func TestSuperviseValidation(t *testing.T) {
	spawn := func(Member, int) (*exec.Cmd, error) { return nil, nil }
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no total", Config{Members: []Member{{Name: "a", Lo: 0, Hi: 4}}, Spawn: spawn}},
		{"no members", Config{Total: 4, Spawn: spawn}},
		{"no spawner", Config{Total: 4, Members: []Member{{Name: "a", Lo: 0, Hi: 4}}}},
		{"unnamed member", Config{Total: 4, Members: []Member{{Lo: 0, Hi: 4}}, Spawn: spawn}},
		{"duplicate name", Config{Total: 8, Members: []Member{
			{Name: "a", Lo: 0, Hi: 4}, {Name: "a", Lo: 4, Hi: 8}}, Spawn: spawn}},
		{"span outside total", Config{Total: 4, Members: []Member{{Name: "a", Lo: 0, Hi: 8}}, Spawn: spawn}},
		{"empty span", Config{Total: 4, Members: []Member{{Name: "a", Lo: 2, Hi: 2}}, Spawn: spawn}},
		{"overlap", Config{Total: 8, Members: []Member{
			{Name: "a", Lo: 0, Hi: 5}, {Name: "b", Lo: 4, Hi: 8}}, Spawn: spawn}},
		{"bad backoff", Config{Total: 4, Members: []Member{{Name: "a", Lo: 0, Hi: 4}}, Spawn: spawn,
			RestartBackoff: backoff.Policy{Min: time.Second, Max: time.Millisecond}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	s, err := New(Config{Total: 8, Members: []Member{
		{Name: "a", Lo: 0, Hi: 4}, {Name: "b", Lo: 4, Hi: 8}}, Spawn: spawn})
	if err != nil {
		t.Fatalf("minimal valid config rejected: %v", err)
	}
	if s.SeedAddr() == "" {
		t.Error("SeedAddr() empty")
	}
	if err := s.Kill("nope"); err == nil {
		t.Error("Kill(unknown) succeeded")
	}
	if err := s.Kill("a"); err == nil {
		t.Error("Kill(not running) succeeded")
	}
	s.Close()
}
