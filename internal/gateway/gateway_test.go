package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live"
	"dynagg/internal/gossip/live/health"
	"dynagg/internal/gossip/live/transport"
	"dynagg/internal/protocol/multi"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
)

// tickPace is the wall-clock duty cycle the test clusters run at (see
// package live's TCP tests for why paced ticks are required over TCP).
func tickPace() time.Duration {
	if raceEnabled {
		return 20 * time.Millisecond
	}
	return 4 * time.Millisecond
}

// cluster is a running in-process worker population: the test-side
// model of a multi-process deployment, one TCP transport and engine
// per span.
type cluster struct {
	seedAddr string
	cancel   context.CancelFunc
	wg       sync.WaitGroup
}

func (c *cluster) stop() {
	c.cancel()
	c.wg.Wait()
}

// startCluster launches one engine per span over its own TCP
// transport, all running the multi protocol with DemoValue per-host
// values and a resolver (so dynamically registered names are adopted
// with real values). Engines tick Forever until cluster.stop.
func startCluster(t *testing.T, workers int, spans []live.Span, names []string) *cluster {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	c := &cluster{cancel: cancel}
	trs := make([]*transport.TCP, len(spans))
	for i, s := range spans {
		tr, err := transport.NewTCP(transport.TCPConfig{
			Groups:      []transport.Group{{Lo: s.Lo, Hi: s.Hi, Addr: "127.0.0.1:0"}},
			Local:       []int{0},
			BackoffMin:  2 * time.Millisecond,
			BackoffMax:  50 * time.Millisecond,
			DialTimeout: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
		t.Cleanup(func() { tr.Close() })
	}
	c.seedAddr = trs[0].GroupAddr(0)
	for i, s := range spans {
		agents := make([]gossip.Agent, 0, int(s.Hi-s.Lo))
		for id := s.Lo; id < s.Hi; id++ {
			values := make(map[string]float64, len(names))
			for _, name := range names {
				values[name] = DemoValue(name, int(id))
			}
			n := multi.New(id, values,
				sketchreset.Config{Params: sketch.DefaultParams},
				pushsumrevert.Config{Lambda: DefaultLambda},
			)
			hostID := int(id)
			n.SetResolver(func(name string) (float64, bool) {
				return DemoValue(name, hostID), true
			})
			agents = append(agents, n)
		}
		e, err := live.New(live.Config{
			Population: live.NewAgentPopulation(agents),
			Env:        env.NewUniform(workers + 1), // slot `workers` is the observer
			Model:      gossip.Push,
			Seed:       uint64(97 + i),
			Ticks:      live.Forever,
			TickEvery:  tickPace(),
			Workers:    2,
			Transport:  trs[i],
			Span:       s,
			Bootstrap: &live.Bootstrap{
				Seeds: []string{c.seedAddr}, Span: s, Total: workers,
				Retry: 10 * time.Millisecond, Timeout: 20 * time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		c.wg.Add(1)
		go func(e *live.Engine) {
			defer c.wg.Done()
			if err := e.Run(ctx); err != nil && err != context.Canceled {
				t.Errorf("worker engine: %v", err)
			}
		}(e)
	}
	return c
}

// startGateway builds, bootstraps, and serves a gateway against the
// cluster, returning it with its HTTP test server.
func startGateway(t *testing.T, c *cluster, workers int, names []string) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Workers:      workers,
		Seeds:        []string{c.seedAddr},
		Aggregates:   names,
		TickEvery:    tickPace(),
		SmoothWindow: 8,
		Seed:         7,
		Replace:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(func() {
		cancel()
		s.Wait()
		s.Close()
	})
	if err := s.Start(ctx); err != nil {
		t.Fatalf("gateway bootstrap: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// getJSON fetches url and decodes the body into out, returning the
// status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitConverged polls GET /aggregate/name until it returns 200 with a
// value within tol (relative, floored at 0.5 absolute for near-zero
// truths) of want, or the deadline passes.
func waitConverged(t *testing.T, base, name string, want, tol float64, deadline time.Duration) aggregateBody {
	t.Helper()
	abs := tol * math.Abs(want)
	if abs < 0.5 {
		abs = 0.5
	}
	var last aggregateBody
	var lastStatus int
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		var body aggregateBody
		if st := getJSON(t, base+"/aggregate/"+name, &body); st == http.StatusOK {
			last, lastStatus = body, st
			if math.Abs(body.Average-want) <= abs {
				return body
			}
		} else {
			lastStatus = st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("aggregate %q never converged: last status %d, last body %+v, want average ≈ %v",
		name, lastStatus, last, want)
	return aggregateBody{}
}

// TestGatewayServesConvergedAggregates is the tentpole acceptance
// path: a 3-span worker cluster over real TCP sockets, a gateway
// joining as the observer span, and HTTP reads returning the
// population's converged estimates with no fan-out.
func TestGatewayServesConvergedAggregates(t *testing.T) {
	const workers = 6
	names := []string{"load", "temp"}
	spans := []live.Span{{Lo: 0, Hi: 2}, {Lo: 2, Hi: 4}, {Lo: 4, Hi: 6}}
	c := startCluster(t, workers, spans, names)
	defer c.stop()
	_, hs := startGateway(t, c, workers, names)

	for _, name := range names {
		body := waitConverged(t, hs.URL, name, DemoMean(name, workers), 0.30, 30*time.Second)
		if body.Name != name {
			t.Errorf("body.Name = %q, want %q", body.Name, name)
		}
		if body.Size <= 0 {
			t.Errorf("aggregate %q served with non-positive size %v", name, body.Size)
		}
		if want := body.Average * body.Size; math.Abs(body.Sum-want) > 1e-9 {
			t.Errorf("Sum %v inconsistent with Average×Size %v", body.Sum, want)
		}
	}

	// The listing carries both converged aggregates.
	var list struct {
		Aggregates []aggregateBody `json:"aggregates"`
		Size       float64         `json:"size"`
		Tick       int             `json:"tick"`
	}
	if st := getJSON(t, hs.URL+"/aggregates", &list); st != http.StatusOK {
		t.Fatalf("GET /aggregates = %d", st)
	}
	if len(list.Aggregates) != len(names) {
		t.Errorf("listing has %d aggregates, want %d: %+v", len(list.Aggregates), len(names), list)
	}
	if list.Tick == 0 {
		t.Error("listing reports tick 0 on a running gateway")
	}

	// Health and status report a running, fully-mapped observer.
	if st := getJSON(t, hs.URL+"/healthz", nil); st != http.StatusOK {
		t.Errorf("GET /healthz = %d, want 200", st)
	}
	var status struct {
		Span       string `json:"span"`
		Workers    int    `json:"workers"`
		Tick       int    `json:"tick"`
		Membership []struct {
			Lo   int    `json:"lo"`
			Hi   int    `json:"hi"`
			Addr string `json:"addr"`
		} `json:"membership"`
		Aggregates []struct {
			Name      string `json:"name"`
			Converged bool   `json:"converged"`
		} `json:"aggregates"`
	}
	if st := getJSON(t, hs.URL+"/statusz", &status); st != http.StatusOK {
		t.Fatalf("GET /statusz = %d", st)
	}
	if status.Span != fmt.Sprintf("[%d,%d)", workers, workers+1) {
		t.Errorf("statusz span = %q", status.Span)
	}
	if len(status.Membership) != len(spans)+1 {
		t.Errorf("statusz membership has %d groups, want %d (workers + observer)",
			len(status.Membership), len(spans)+1)
	}
	for _, a := range status.Aggregates {
		if !a.Converged {
			t.Errorf("statusz reports %q unconverged on a converged gateway", a.Name)
		}
	}

	// Unknown names are 404, not 503: the name space is known state.
	if st := getJSON(t, hs.URL+"/aggregate/nope", nil); st != http.StatusNotFound {
		t.Errorf("GET unknown aggregate = %d, want 404", st)
	}
}

// TestGatewayDynamicRegistrationPropagates registers a new aggregate
// through the HTTP API and watches it spread through the worker
// population (whose resolvers supply real values) back to the
// observer.
func TestGatewayDynamicRegistrationPropagates(t *testing.T) {
	const workers = 6
	spans := []live.Span{{Lo: 0, Hi: 3}, {Lo: 3, Hi: 6}}
	c := startCluster(t, workers, spans, []string{"load"})
	defer c.stop()
	_, hs := startGateway(t, c, workers, []string{"load"})
	waitConverged(t, hs.URL, "load", DemoMean("load", workers), 0.30, 30*time.Second)

	// First registration creates (201), the second is idempotent (200).
	resp, err := http.Post(hs.URL+"/aggregate/cpu", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST new aggregate = %d, want 201", resp.StatusCode)
	}
	resp, err = http.Post(hs.URL+"/aggregate/cpu", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST existing aggregate = %d, want 200", resp.StatusCode)
	}

	// The name gossips outward from the observer; resolvers register it
	// with DemoValue, and mass flows back. ±0.5 absolute floor covers
	// small-population noise.
	waitConverged(t, hs.URL, "cpu", DemoMean("cpu", workers), 0.35, 30*time.Second)

	// A registration carrying mass is rejected: observers hold none.
	resp, err = http.Post(hs.URL+"/aggregate/disk", "application/json",
		strings.NewReader(`{"value": 3.5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("POST with non-zero value = %d, want 400", resp.StatusCode)
	}
}

// TestGatewayNotConvergedIs503 pins the no-stale-reads contract at the
// handler level, without a cluster: a gateway whose observer has not
// received mass answers 503 for known names, 404 for unknown ones,
// and 503 on /healthz — never a fabricated 200.
func TestGatewayNotConvergedIs503(t *testing.T) {
	s, err := New(Config{
		Workers: 4,
		Seeds:   []string{"127.0.0.1:1"}, // never dialed: engine not started
		Listen:  "127.0.0.1:0",
		Aggregates: []string{
			"load",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	var eb errorBody
	if st := getJSON(t, hs.URL+"/aggregate/load", &eb); st != http.StatusServiceUnavailable {
		t.Errorf("GET known-but-unconverged = %d, want 503", st)
	}
	if eb.Error == "" {
		t.Error("503 body carries no error message")
	}
	if st := getJSON(t, hs.URL+"/aggregate/ghost", nil); st != http.StatusNotFound {
		t.Errorf("GET unknown = %d, want 404", st)
	}
	if st := getJSON(t, hs.URL+"/healthz", nil); st != http.StatusServiceUnavailable {
		t.Errorf("GET /healthz before start = %d, want 503", st)
	}
	// The listing omits unconverged aggregates rather than serving them.
	var list struct {
		Aggregates []aggregateBody `json:"aggregates"`
	}
	if st := getJSON(t, hs.URL+"/aggregates", &list); st != http.StatusOK {
		t.Errorf("GET /aggregates = %d, want 200", st)
	}
	if len(list.Aggregates) != 0 {
		t.Errorf("unconverged gateway lists %d aggregates, want 0", len(list.Aggregates))
	}
	// Statusz still reports the name as known, just unconverged.
	var status struct {
		Aggregates []struct {
			Name           string `json:"name"`
			Converged      bool   `json:"converged"`
			StalenessTicks int    `json:"staleness_ticks"`
		} `json:"aggregates"`
	}
	if st := getJSON(t, hs.URL+"/statusz", &status); st != http.StatusOK {
		t.Fatalf("GET /statusz = %d", st)
	}
	if len(status.Aggregates) != 1 || status.Aggregates[0].Converged {
		t.Errorf("statusz = %+v, want one unconverged aggregate", status.Aggregates)
	}
	if status.Aggregates[0].StalenessTicks != -1 {
		t.Errorf("staleness before any mass = %d, want -1", status.Aggregates[0].StalenessTicks)
	}
}

// TestObserverJoinsMidEpoch starts the gateway only after the worker
// population has been gossiping on its own: the observer's announce
// arrives mid-epoch, membership reaches it via the seed's push, and it
// converges onto the already-running aggregate.
func TestObserverJoinsMidEpoch(t *testing.T) {
	const workers = 6
	spans := []live.Span{{Lo: 0, Hi: 3}, {Lo: 3, Hi: 6}}
	c := startCluster(t, workers, spans, []string{"load"})
	defer c.stop()

	// Let the workers converge among themselves first.
	time.Sleep(50 * tickPace())

	_, hs := startGateway(t, c, workers, []string{"load"})
	waitConverged(t, hs.URL, "load", DemoMean("load", workers), 0.30, 30*time.Second)
}

// TestObserverRestartReclaimsSpan kills a gateway and starts a
// replacement on a fresh port under the same observer span: with
// Replace semantics the new process reclaims the span instead of dying
// on ErrSpanConflict, and serving resumes.
func TestObserverRestartReclaimsSpan(t *testing.T) {
	const workers = 6
	spans := []live.Span{{Lo: 0, Hi: 3}, {Lo: 3, Hi: 6}}
	c := startCluster(t, workers, spans, []string{"load"})
	defer c.stop()

	s1, err := New(Config{
		Workers: workers, Seeds: []string{c.seedAddr},
		Aggregates: []string{"load"}, TickEvery: tickPace(),
		Seed: 7, Replace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	if err := s1.Start(ctx1); err != nil {
		t.Fatalf("first gateway bootstrap: %v", err)
	}
	// Kill it: its span registration stays in the seeds' tables at the
	// now-dead address — exactly the crash-restart scenario.
	cancel1()
	s1.Wait()
	s1.Close()

	_, hs := startGateway(t, c, workers, []string{"load"})
	waitConverged(t, hs.URL, "load", DemoMean("load", workers), 0.30, 30*time.Second)
}

// TestGatewayDegradesOnDeadWorkerSpan drives the failure detector on a
// virtual clock (no cluster, no sleeps): /healthz flips ok → degraded
// 503 when a worker span's heartbeats stop, reads stay 200 but carry
// the degraded flag and the dead span, and a resurrection heartbeat
// restores everything. Observer slots at or above Workers never count.
func TestGatewayDegradesOnDeadWorkerSpan(t *testing.T) {
	const workers = 96
	var offset time.Duration
	base := time.Now()
	s, err := New(Config{
		Workers:    workers,
		Seeds:      []string{"127.0.0.1:1"}, // never dialed: engine not started
		Aggregates: []string{"load"},
		Health: health.Config{
			HeartbeatEvery: 100 * time.Millisecond,
			Now:            func() time.Time { return base.Add(offset) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for tick := 0; tick <= DefaultSmoothWindow; tick++ {
		s.obs.BeginRound(tick)
		s.obs.Receive(multi.Bundle{Masses: map[string]any{
			"load": pushsumrevert.Mass{W: 0.5, V: 0.5 * DemoMean("load", workers)},
		}})
		s.obs.EndRound(tick)
	}
	if err := s.tcp.RegisterGroup(0, gossip.NodeID(workers), "127.0.0.1:19321"); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// Both worker halves heartbeat, plus an observer slot that will
	// fall silent too — it must never degrade the gateway.
	s.det.Observe(0, 48, "127.0.0.1:19321", 0)
	s.det.Observe(48, 96, "127.0.0.1:19322", 0)
	s.det.Observe(96, 97, "127.0.0.1:19323", 0)

	var hb struct {
		Status   string `json:"status"`
		Degraded bool   `json:"degraded"`
	}
	if st := getJSON(t, hs.URL+"/healthz", &hb); st != http.StatusOK || hb.Degraded {
		t.Fatalf("healthy gateway: status %d, body %+v", st, hb)
	}

	// Ten virtual seconds pass; only [48,96) is heard again. [0,48)
	// and the observer slot cross the dead threshold.
	offset = 10 * time.Second
	s.det.Observe(48, 96, "127.0.0.1:19322", 0)

	if st := getJSON(t, hs.URL+"/healthz", &hb); st != http.StatusServiceUnavailable || hb.Status != "degraded" || !hb.Degraded {
		t.Fatalf("degraded gateway: status %d, body %+v", st, hb)
	}
	var agg struct {
		Name      string `json:"name"`
		Degraded  bool   `json:"degraded"`
		DeadSpans []struct {
			Lo        int   `json:"lo"`
			Hi        int   `json:"hi"`
			SilenceMS int64 `json:"silence_ms"`
		} `json:"dead_spans"`
	}
	if st := getJSON(t, hs.URL+"/aggregate/load", &agg); st != http.StatusOK {
		t.Fatalf("degraded read: status %d", st)
	}
	if !agg.Degraded || len(agg.DeadSpans) != 1 || agg.DeadSpans[0].Lo != 0 || agg.DeadSpans[0].Hi != 48 {
		t.Fatalf("degraded read body: %+v", agg)
	}
	if agg.DeadSpans[0].SilenceMS < 9000 {
		t.Errorf("silence_ms = %d, want ≈10000", agg.DeadSpans[0].SilenceMS)
	}

	// Resurrection: one fresh heartbeat from [0,48) and the verdict
	// snaps back to alive — the gateway recovers with no restart.
	s.det.Observe(0, 48, "127.0.0.1:19321", 0)
	if st := getJSON(t, hs.URL+"/healthz", &hb); st != http.StatusOK || hb.Status != "ok" || hb.Degraded {
		t.Fatalf("recovered gateway: status %d, body %+v", st, hb)
	}
}
