package gateway

import "hash/fnv"

// DemoValue is the deterministic per-host value the demo deployments
// (the dynaggsim gateway/live CLI modes, examples/gateway, and the
// gateway tests) register for an aggregate: a stable function of the
// aggregate name and host id, so every process of a deployment agrees
// on the ground truth without coordination, and tests can compute the
// expected population mean exactly.
//
// Values are small integers in [0, 8): host id mixed with the name's
// FNV hash, modulo 8.
func DemoValue(name string, id int) float64 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return float64((uint32(id) ^ h.Sum32()) % 8)
}

// DemoMean is the exact population mean of DemoValue over hosts
// [0, n) — the ground truth demo deployments converge toward.
func DemoMean(name string, n int) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += DemoValue(name, i)
	}
	return s / float64(n)
}
