package gateway

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// LoadConfig drives RunLoad: a closed-loop read workload against a
// gateway's HTTP front end.
type LoadConfig struct {
	// URL is the full request URL, typically
	// "http://host:port/aggregate/load".
	URL string
	// Clients is the number of concurrent closed-loop requesters
	// (0 means 8).
	Clients int
	// Duration is how long to drive load (0 means 3s).
	Duration time.Duration
}

// LoadReport summarizes one RunLoad run.
type LoadReport struct {
	// Requests is the number of completed requests with a 200 status.
	Requests int64
	// Errors counts transport failures and non-200 statuses.
	Errors int64
	// Elapsed is the measured wall-clock window.
	Elapsed time.Duration
	// RPS is Requests divided by Elapsed seconds.
	RPS float64
	// P50 and P99 are response-latency percentiles over the sampled
	// requests (every request is sampled).
	P50 time.Duration
	P99 time.Duration
}

// String renders the report for logs.
func (r LoadReport) String() string {
	return fmt.Sprintf("%d reqs (%d errors) in %v: %.0f req/s, p50 %v, p99 %v",
		r.Requests, r.Errors, r.Elapsed.Round(time.Millisecond), r.RPS, r.P50, r.P99)
}

// BenchLine renders the report as one Go testing Benchmark row, the
// format cmd/benchjson parses for BENCH_results.json merging.
func (r LoadReport) BenchLine(name string) string {
	return fmt.Sprintf("Benchmark%s 1 %d ns/op %.0f req/s %d p50-ns %d p99-ns",
		name, r.Elapsed.Nanoseconds(), r.RPS, r.P50.Nanoseconds(), r.P99.Nanoseconds())
}

// RunLoad drives Clients concurrent closed-loop GET requesters at the
// URL for the Duration and reports throughput and latency. Each
// client reuses one keep-alive connection (http.Transport default),
// so the measured path is handler execution, not connection setup.
func RunLoad(ctx context.Context, cfg LoadConfig) (LoadReport, error) {
	if cfg.URL == "" {
		return LoadReport{}, fmt.Errorf("gateway: LoadConfig.URL is empty")
	}
	clients := cfg.Clients
	if clients <= 0 {
		clients = 8
	}
	dur := cfg.Duration
	if dur <= 0 {
		dur = 3 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, dur)
	defer cancel()

	tr := &http.Transport{
		MaxIdleConnsPerHost: clients,
	}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}

	type shard struct {
		requests int64
		errors   int64
		lats     []time.Duration
	}
	shards := make([]shard, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			for ctx.Err() == nil {
				t0 := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.URL, nil)
				if err != nil {
					s.errors++
					continue
				}
				resp, err := client.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						return // cancellation, not a server error
					}
					s.errors++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					s.errors++
					continue
				}
				s.requests++
				s.lats = append(s.lats, time.Since(t0))
			}
		}(&shards[c])
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := LoadReport{Elapsed: elapsed}
	var lats []time.Duration
	for i := range shards {
		rep.Requests += shards[i].requests
		rep.Errors += shards[i].errors
		lats = append(lats, shards[i].lats...)
	}
	if elapsed > 0 {
		rep.RPS = float64(rep.Requests) / elapsed.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rep.P50 = lats[len(lats)*50/100]
		rep.P99 = lats[len(lats)*99/100]
	}
	return rep, nil
}
