// Package gateway serves converged gossip estimates over HTTP/JSON.
//
// A gateway process joins the live population as an *observer span*: it
// bootstraps into the TCP membership like any worker (live.Bootstrap),
// runs the multi protocol, and is picked as a gossip peer like any
// other host — but it owns zero sketch identifiers and its aggregates
// carry zero weight, so it converges to the population's answers
// without perturbing them. Queries are then answered straight from the
// observer's local state: no fan-out, no consensus round, just a read —
// the paper's point is that after convergence every host holds the
// answer, so reads are free.
//
// The HTTP surface (see docs/gateway-api.md for the full reference):
//
//	GET  /aggregates        list every known aggregate with estimates
//	GET  /aggregate/{name}  one aggregate's average / sum / size
//	POST /aggregate/{name}  register a new named aggregate
//	GET  /healthz           liveness + membership coverage + degradation
//	GET  /statusz           tick, span, membership map, staleness
//
// Reads return 503 until the observer has actually converged (received
// mass and accumulated a full smoothing window) — never a stale or
// fabricated 200. A single observer's instantaneous estimate carries
// gossip sampling noise, so served values are a trailing-window mean
// over the last SmoothWindow ticks; /statusz reports per-aggregate
// staleness (ticks since mass last arrived) alongside.
//
// Degradation is graceful and loud: a failure detector (package
// health) rides the membership heartbeat traffic, and when a worker
// span goes dead the gateway keeps serving its last converged
// estimates — flagged `degraded` with the dead span list on reads and
// /statusz — while /healthz flips to 503 so load balancers rotate the
// gateway out until the supervisor heals the span.
package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live"
	"dynagg/internal/gossip/live/health"
	"dynagg/internal/gossip/live/transport"
	"dynagg/internal/protocol/multi"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
)

// Config assembles a gateway server.
type Config struct {
	// Workers is the worker population size: worker hosts occupy
	// [0, Workers) and the observer takes the single slot [Workers,
	// Workers+1). Every process of the deployment must agree on it.
	Workers int
	// Seeds are the bootstrap seed addresses (live.Bootstrap.Seeds).
	Seeds []string
	// Listen is the TCP bind address for the observer's transport
	// group ("127.0.0.1:0" for an ephemeral port).
	Listen string
	// Aggregates are names to register before joining; more arrive by
	// listening (the observer auto-registers unknown incoming names)
	// or by POST /aggregate/{name}. May be empty.
	Aggregates []string
	// Lambda is the population's Push-Sum-Revert reversion constant;
	// it must match the workers'. Zero means DefaultLambda.
	Lambda float64
	// TickEvery paces the observer's gossip ticks; it should match the
	// workers' pacing. Zero means DefaultTickEvery.
	TickEvery time.Duration
	// SmoothWindow is how many trailing per-tick estimates are averaged
	// into served values (zero means DefaultSmoothWindow). Reads return
	// 503 until the window has filled once, so it also sets how many
	// mass-bearing ticks "converged" requires.
	SmoothWindow int
	// Seed drives the observer's gossip randomness.
	Seed uint64
	// Replace controls restart semantics (live.Bootstrap.Replace): on
	// by default via New — an observer that crashed and restarted on a
	// new port reclaims its span instead of dying on ErrSpanConflict.
	Replace bool
	// BootstrapTimeout bounds the membership wait (0 means the
	// live.Bootstrap default).
	BootstrapTimeout time.Duration
	// Health tunes the failure detector behind the degraded flag; its
	// HeartbeatEvery should match the workers' keepalive cadence. The
	// zero value matches the 1s bootstrap default.
	Health health.Config
}

// Defaults for the zero Config fields.
const (
	DefaultLambda       = 0.05
	DefaultTickEvery    = 20 * time.Millisecond
	DefaultSmoothWindow = 8
)

// Server is a running gateway: the observer engine plus the HTTP
// front end reading its state.
type Server struct {
	cfg   Config
	obs   *observerAgent
	tcp   *transport.TCP
	det   *health.Detector
	eng   *live.Engine
	mux   *http.ServeMux
	start time.Time

	mu      sync.Mutex
	running bool
	runErr  error
	done    chan struct{}
}

// New validates the configuration and builds the gateway: the TCP
// transport listening for the observer span, the observer protocol
// node, and the live engine configured to bootstrap into the seeds and
// tick forever. Nothing runs until Start.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("gateway: Workers must be positive, got %d", cfg.Workers)
	}
	if len(cfg.Seeds) == 0 {
		return nil, fmt.Errorf("gateway: Seeds is empty")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = DefaultLambda
	}
	if cfg.Lambda < 0 || cfg.Lambda > 1 {
		return nil, fmt.Errorf("gateway: Lambda %v outside [0,1]", cfg.Lambda)
	}
	if cfg.TickEvery == 0 {
		cfg.TickEvery = DefaultTickEvery
	}
	if cfg.SmoothWindow <= 0 {
		cfg.SmoothWindow = DefaultSmoothWindow
	}
	lo := gossip.NodeID(cfg.Workers)
	tcp, err := transport.NewTCP(transport.TCPConfig{
		Groups: []transport.Group{{Lo: lo, Hi: lo + 1, Addr: cfg.Listen}},
		Local:  []int{0},
	})
	if err != nil {
		return nil, fmt.Errorf("gateway: %w", err)
	}
	node := multi.NewObserver(lo, cfg.Aggregates,
		sketchreset.Config{Params: sketch.DefaultParams},
		pushsumrevert.Config{Lambda: cfg.Lambda},
	)
	obs := newObserverAgent(node, cfg.SmoothWindow)
	span := live.Span{Lo: lo, Hi: lo + 1}
	eng, err := live.New(live.Config{
		Population: live.NewAgentPopulation([]gossip.Agent{obs}),
		Env:        env.NewUniform(cfg.Workers + 1),
		Model:      gossip.Push,
		Seed:       cfg.Seed,
		Ticks:      live.Forever,
		TickEvery:  cfg.TickEvery,
		Transport:  tcp,
		Span:       span,
		Bootstrap: &live.Bootstrap{
			Seeds:   cfg.Seeds,
			Span:    span,
			Total:   cfg.Workers,
			Replace: cfg.Replace,
			Timeout: cfg.BootstrapTimeout,
		},
	})
	if err != nil {
		tcp.Close()
		return nil, fmt.Errorf("gateway: %w", err)
	}
	s := &Server{
		cfg: cfg,
		obs: obs,
		tcp: tcp,
		// The detector hears every worker span through this transport:
		// the seeds' announce replies and membership pushes carry relayed
		// freshness ages for the whole population, refreshed by our own
		// keepalive cadence.
		det:   health.Attach(tcp, cfg.Health),
		eng:   eng,
		start: time.Now(),
		done:  make(chan struct{}),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /aggregates", s.handleList)
	s.mux.HandleFunc("GET /aggregate/{name}", s.handleGet)
	s.mux.HandleFunc("POST /aggregate/{name}", s.handlePost)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	return s, nil
}

// Handler returns the gateway's HTTP handler (also what Serve binds),
// so tests and embedders can mount it without a socket.
func (s *Server) Handler() http.Handler { return s.mux }

// TransportAddr returns the observer span's bound TCP address.
func (s *Server) TransportAddr() string { return s.tcp.GroupAddr(0) }

// Start bootstraps into the membership and begins ticking, returning
// once the observer is part of the population (or with the bootstrap
// error). The engine then runs until ctx is cancelled; Wait reports
// its exit.
func (s *Server) Start(ctx context.Context) error {
	bootErr := make(chan error, 1)
	go func() {
		defer close(s.done)
		err := s.eng.Run(ctx) // Run performs the bootstrap before ticking
		s.mu.Lock()
		if !s.running {
			// Run never got past bootstrap.
			bootErr <- err
		}
		s.runErr = err
		s.mu.Unlock()
	}()
	// Bootstrap completion is observable as membership coverage.
	for {
		select {
		case err := <-bootErr:
			return err
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
		if s.tcp.Covers(s.cfg.Workers) {
			s.mu.Lock()
			s.running = true
			s.mu.Unlock()
			return nil
		}
	}
}

// Wait blocks until the engine exits (context cancellation, normally)
// and returns its error.
func (s *Server) Wait() error {
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runErr
}

// Serve runs the HTTP front end on ln until ctx is cancelled. It owns
// the listener and closes it on the way out.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		hs.Shutdown(shctx)
		return ctx.Err()
	case err := <-errc:
		return err
	}
}

// Close releases the transport. Call after the engine has stopped.
func (s *Server) Close() error { return s.tcp.Close() }

// ---- HTTP handlers ----

// aggregateBody is the JSON shape of one served aggregate.
type aggregateBody struct {
	Name string `json:"name"`
	// Average is the smoothed Push-Sum-Revert estimate: the mean of
	// the observer's per-tick estimates over the trailing window.
	Average float64 `json:"average"`
	// Sum is Average × Size — the paper's Figure 7 estimate.
	Sum float64 `json:"sum"`
	// Size is the Count-Sketch-Reset network-size estimate.
	Size float64 `json:"size"`
	// Tick is the observer's gossip tick at read time.
	Tick int `json:"tick"`
	// StalenessTicks is how many ticks ago mass last arrived for this
	// aggregate; 0 means it arrived on the current tick.
	StalenessTicks int `json:"staleness_ticks"`
}

type errorBody struct {
	Error string `json:"error"`
}

// spanBody is one dead worker span in a degradation report.
type spanBody struct {
	Lo   int    `json:"lo"`
	Hi   int    `json:"hi"`
	Addr string `json:"addr"`
	// SilenceMS is how long the span has been unheard, in milliseconds.
	SilenceMS int64 `json:"silence_ms"`
}

// deadSpans lists the worker spans the failure detector currently
// judges dead. Observer slots (at or above Workers) come and go freely
// and never degrade the gateway.
func (s *Server) deadSpans() []spanBody {
	out := make([]spanBody, 0, 2)
	for _, sp := range s.det.DeadSpans() {
		if int(sp.Lo) >= s.cfg.Workers {
			continue
		}
		out = append(out, spanBody{
			Lo: int(sp.Lo), Hi: int(sp.Hi), Addr: sp.Addr,
			SilenceMS: sp.Silence.Milliseconds(),
		})
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	// Degradation does not turn reads into errors: the observer still
	// holds the last converged estimates, and serving them flagged is
	// strictly more useful than a 503 — that is what "graceful" means.
	// Consumers that must not act on drifting data check `degraded`.
	type aggregateResponse struct {
		aggregateBody
		Degraded  bool       `json:"degraded"`
		DeadSpans []spanBody `json:"dead_spans"`
	}
	name := r.PathValue("name")
	snap, status := s.obs.read(name)
	switch status {
	case readUnknown:
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown aggregate: " + name})
	case readNotConverged:
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "not converged"})
	default:
		dead := s.deadSpans()
		writeJSON(w, http.StatusOK, aggregateResponse{
			aggregateBody: snap, Degraded: len(dead) > 0, DeadSpans: dead,
		})
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	type listBody struct {
		Aggregates []aggregateBody `json:"aggregates"`
		Size       float64         `json:"size"`
		Tick       int             `json:"tick"`
	}
	aggs, size, tick := s.obs.readAll()
	writeJSON(w, http.StatusOK, listBody{Aggregates: aggs, Size: size, Tick: tick})
}

func (s *Server) handlePost(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" || len(name) > 256 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "aggregate name must be 1-256 bytes"})
		return
	}
	// An observer holds no mass, so a registration carries no value;
	// a body supplying a non-zero one is a misunderstanding worth
	// rejecting loudly rather than silently dropping.
	var body struct {
		Value float64 `json:"value"`
	}
	if r.Body != nil {
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil && err.Error() != "EOF" {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed JSON body"})
			return
		}
	}
	if body.Value != 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "observer registrations hold no mass; value must be 0 or absent"})
		return
	}
	created := s.obs.register(name)
	type postBody struct {
		Name       string `json:"name"`
		Registered bool   `json:"registered"`
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, postBody{Name: name, Registered: created})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type healthBody struct {
		Status  string `json:"status"`
		Covered bool   `json:"covered"`
		Tick    int    `json:"tick"`
		// Degraded flips when a counted worker span is judged dead.
		Degraded bool `json:"degraded"`
	}
	tick := s.obs.tick()
	covered := s.tcp.Covers(s.cfg.Workers)
	degraded := len(s.deadSpans()) > 0
	switch {
	case !covered || tick == 0:
		writeJSON(w, http.StatusServiceUnavailable, healthBody{Status: "starting", Covered: covered, Tick: tick, Degraded: degraded})
	case degraded:
		// A dead worker span means estimates may drift until the
		// supervisor heals it; 503 here rotates this gateway out of a
		// load balancer while /aggregate reads stay available, flagged.
		writeJSON(w, http.StatusServiceUnavailable, healthBody{Status: "degraded", Covered: covered, Tick: tick, Degraded: true})
	default:
		writeJSON(w, http.StatusOK, healthBody{Status: "ok", Covered: covered, Tick: tick, Degraded: false})
	}
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	type memberBody struct {
		Lo   int    `json:"lo"`
		Hi   int    `json:"hi"`
		Addr string `json:"addr"`
	}
	type aggStatus struct {
		Name           string `json:"name"`
		Converged      bool   `json:"converged"`
		StalenessTicks int    `json:"staleness_ticks"`
	}
	type transportBody struct {
		Kills           int64 `json:"kills"`
		Reconnects      int64 `json:"reconnects"`
		OverflowDropped int64 `json:"overflow_dropped"`
	}
	type statusBody struct {
		Span          string        `json:"span"`
		Workers       int           `json:"workers"`
		Tick          int           `json:"tick"`
		UptimeSeconds float64       `json:"uptime_seconds"`
		Degraded      bool          `json:"degraded"`
		DeadSpans     []spanBody    `json:"dead_spans"`
		Membership    []memberBody  `json:"membership"`
		Sent          int64         `json:"sent"`
		Dropped       int64         `json:"dropped"`
		Transport     transportBody `json:"transport"`
		Aggregates    []aggStatus   `json:"aggregates"`
	}
	var members []memberBody
	for _, g := range s.tcp.Groups() {
		members = append(members, memberBody{Lo: int(g.Lo), Hi: int(g.Hi), Addr: g.Addr})
	}
	var aggs []aggStatus
	for _, st := range s.obs.statuses() {
		aggs = append(aggs, aggStatus{Name: st.name, Converged: st.converged, StalenessTicks: st.staleness})
	}
	dead := s.deadSpans()
	writeJSON(w, http.StatusOK, statusBody{
		Span:          fmt.Sprintf("[%d,%d)", s.cfg.Workers, s.cfg.Workers+1),
		Workers:       s.cfg.Workers,
		Tick:          s.obs.tick(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Degraded:      len(dead) > 0,
		DeadSpans:     dead,
		Membership:    members,
		Sent:          s.tcp.Sent(),
		Dropped:       s.tcp.Dropped(),
		Transport: transportBody{
			Kills:           s.tcp.Kills(),
			Reconnects:      s.tcp.Reconnects(),
			OverflowDropped: s.tcp.OverflowDrops(),
		},
		Aggregates: aggs,
	})
}
