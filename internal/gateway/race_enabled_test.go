//go:build race

package gateway

// raceEnabled stretches timing-sensitive gateway tests when the race
// detector multiplies per-frame CPU cost (same idiom as package live).
const raceEnabled = true
