package gateway

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"dynagg/internal/protocol/multi"
	"dynagg/internal/protocol/pushsumrevert"
)

// primedServer builds a gateway whose observer has already converged —
// by feeding it synthetic mass bundles directly, no cluster — so the
// benchmarks measure the serving path, not gossip.
func primedServer(tb testing.TB, names []string) *Server {
	tb.Helper()
	s, err := New(Config{
		Workers:    64,
		Seeds:      []string{"127.0.0.1:1"}, // never dialed: engine not started
		Aggregates: names,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { s.Close() })
	for tick := 0; tick <= DefaultSmoothWindow; tick++ {
		s.obs.BeginRound(tick)
		masses := make(map[string]any, len(names))
		for _, name := range names {
			masses[name] = pushsumrevert.Mass{W: 0.5, V: 0.5 * DemoMean(name, 64)}
		}
		s.obs.Receive(multi.Bundle{Masses: masses})
		s.obs.EndRound(tick)
	}
	return s
}

// BenchmarkGatewayServe measures the in-process serving path: handler
// dispatch, state read under the observer lock, JSON encoding. This is
// the ≥100k req/s acceptance number — the handler itself sustains far
// more; the socket benchmark below adds kernel round-trips.
func BenchmarkGatewayServe(b *testing.B) {
	if testing.Short() {
		b.Skip("req/s needs a real measurement window, not the -short 1x smoke; run make bench-gateway")
	}
	s := primedServer(b, []string{"load"})
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		req := httptest.NewRequest(http.MethodGet, "/aggregate/load", nil)
		for pb.Next() {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d", w.Code)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkGatewayHTTPSocket measures the same read over real loopback
// sockets with keep-alive connections, one per parallel client.
func BenchmarkGatewayHTTPSocket(b *testing.B) {
	if testing.Short() {
		b.Skip("req/s needs a real measurement window, not the -short 1x smoke; run make bench-gateway")
	}
	s := primedServer(b, []string{"load"})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	url := hs.URL + "/aggregate/load"
	b.SetParallelism(max(1, 32/runtime.GOMAXPROCS(0)))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 1}}
		for pb.Next() {
			resp, err := client.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		client.CloseIdleConnections()
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// TestLoadSmoke drives the RunLoad harness against a primed gateway
// for a short window and asserts reads actually succeeded and the run
// shut down cleanly. The CI gateway lane runs it with
// GATEWAY_LOAD_SECONDS=5 as the load smoke; by default it keeps to the
// sub-second budget of a unit test.
func TestLoadSmoke(t *testing.T) {
	dur := 300 * time.Millisecond
	if sec := os.Getenv("GATEWAY_LOAD_SECONDS"); sec != "" {
		d, err := time.ParseDuration(sec + "s")
		if err != nil {
			t.Fatalf("GATEWAY_LOAD_SECONDS=%q: %v", sec, err)
		}
		dur = d
	}
	s := primedServer(t, []string{"load"})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	rep, err := RunLoad(context.Background(), LoadConfig{
		URL:      hs.URL + "/aggregate/load",
		Clients:  8,
		Duration: dur,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("load run completed zero successful reads")
	}
	if rep.Errors != 0 {
		t.Errorf("load run saw %d errors", rep.Errors)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Errorf("implausible latency percentiles: p50 %v p99 %v", rep.P50, rep.P99)
	}
	t.Logf("%s", rep)
	t.Logf("%s", rep.BenchLine("GatewayLoadSmoke"))
}
