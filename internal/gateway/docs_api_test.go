package gateway

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"dynagg/internal/gossip"
	"dynagg/internal/gossip/live/health"
	"dynagg/internal/protocol/multi"
	"dynagg/internal/protocol/pushsumrevert"
)

// apiDocPath is the API reference this test keeps honest: every
// example annotated with an `api-test` comment is executed against the
// real handlers.
const apiDocPath = "../../docs/gateway-api.md"

// apiTestRE matches the annotation preceding an example payload:
//
//	<!-- api-test: GET /aggregate/load 200 -->
//	<!-- api-test starting: GET /healthz 503 -->
//	<!-- api-test: POST /aggregate/load 400 {"value": 3.5} -->
//
// The optional word after api-test names the server fixture (default
// "main"); the optional JSON tail is the request body.
var apiTestRE = regexp.MustCompile(`<!--\s*api-test(?:\s+(\w+))?:\s*(GET|POST)\s+(\S+)\s+(\d{3})(?:\s+(\{.*\}))?\s*-->`)

// apiExample is one parsed annotation plus the fenced JSON block that
// follows it in the document.
type apiExample struct {
	line     int
	fixture  string
	method   string
	path     string
	status   int
	reqBody  string
	respJSON string
}

// parseAPIDoc extracts every annotated example, in document order.
func parseAPIDoc(t *testing.T) []apiExample {
	t.Helper()
	f, err := os.Open(apiDocPath)
	if err != nil {
		t.Fatalf("opening API reference: %v", err)
	}
	defer f.Close()
	var (
		examples []apiExample
		pending  *apiExample
		inFence  bool
		lineNo   int
	)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if m := apiTestRE.FindStringSubmatch(line); m != nil {
			if pending != nil {
				t.Fatalf("%s:%d: api-test annotation with no ```json block before the next one", apiDocPath, pending.line)
			}
			status, _ := strconv.Atoi(m[4])
			pending = &apiExample{
				line: lineNo, fixture: m[1], method: m[2], path: m[3],
				status: status, reqBody: m[5],
			}
			if pending.fixture == "" {
				pending.fixture = "main"
			}
			continue
		}
		switch {
		case pending != nil && strings.HasPrefix(line, "```json"):
			inFence = true
		case inFence && strings.HasPrefix(line, "```"):
			inFence = false
			examples = append(examples, *pending)
			pending = nil
		case inFence:
			pending.respJSON += line + "\n"
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if pending != nil {
		t.Fatalf("%s:%d: api-test annotation never followed by a ```json block", apiDocPath, pending.line)
	}
	if len(examples) == 0 {
		t.Fatalf("%s: no api-test annotations found — the reference is no longer executable", apiDocPath)
	}
	return examples
}

// docFixtures builds the three server states the documented examples
// run against: "main" is a converged 96-worker gateway (aggregates
// load and temp primed, cold registered but never fed, membership
// coverage faked in so /healthz reports ok), "starting" is a freshly
// built one, and "degraded" is the main fixture with the failure
// detector — driven on a virtual clock — judging worker span [0,48)
// dead.
func docFixtures(t *testing.T) map[string]http.Handler {
	t.Helper()
	const workers = 96
	var clockOffset time.Duration // the degraded fixture's virtual clock
	base := time.Now()
	build := func(names []string, h health.Config) *Server {
		s, err := New(Config{
			Workers:    workers,
			Seeds:      []string{"127.0.0.1:1"}, // never dialed: engine not started
			Aggregates: names,
			Health:     h,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	prime := func(s *Server) {
		for tick := 0; tick <= DefaultSmoothWindow; tick++ {
			s.obs.BeginRound(tick)
			s.obs.Receive(multi.Bundle{Masses: map[string]any{
				"load": pushsumrevert.Mass{W: 0.5, V: 0.5 * DemoMean("load", workers)},
				"temp": pushsumrevert.Mass{W: 0.5, V: 0.5 * DemoMean("temp", workers)},
			}})
			s.obs.EndRound(tick)
		}
		if err := s.tcp.RegisterGroup(0, gossip.NodeID(workers), "127.0.0.1:19321"); err != nil {
			t.Fatal(err)
		}
	}

	main := build([]string{"load", "temp", "cold"}, health.Config{})
	prime(main)

	degraded := build([]string{"load", "temp", "cold"}, health.Config{
		HeartbeatEvery: 100 * time.Millisecond,
		Now:            func() time.Time { return base.Add(clockOffset) },
	})
	prime(degraded)
	// Both halves of the worker population heartbeat once; then ten
	// virtual seconds pass and only [48,96) is heard again, so [0,48)
	// crosses the dead threshold while the rest stays alive.
	degraded.det.Observe(0, 48, "127.0.0.1:19321", 0)
	degraded.det.Observe(48, 96, "127.0.0.1:19322", 0)
	clockOffset = 10 * time.Second
	degraded.det.Observe(48, 96, "127.0.0.1:19322", 0)

	starting := build([]string{"load"}, health.Config{})
	return map[string]http.Handler{
		"main":     main.Handler(),
		"starting": starting.Handler(),
		"degraded": degraded.Handler(),
	}
}

// TestGatewayAPIDocExamples round-trips every documented example
// payload in docs/gateway-api.md against the real handlers: the status
// code, content type, and the exact JSON field names and value types
// must match the document. Top-level strings and booleans (error
// messages, status words, names, flags) must match exactly; numeric
// values and nested strings may differ (ticks, estimates, addresses).
func TestGatewayAPIDocExamples(t *testing.T) {
	fixtures := docFixtures(t)
	for _, ex := range parseAPIDoc(t) {
		at := fmt.Sprintf("%s:%d: %s %s", apiDocPath, ex.line, ex.method, ex.path)
		h, ok := fixtures[ex.fixture]
		if !ok {
			t.Errorf("%s: unknown fixture %q", at, ex.fixture)
			continue
		}
		var body *strings.Reader
		if ex.reqBody != "" {
			body = strings.NewReader(ex.reqBody)
		} else {
			body = strings.NewReader("")
		}
		req := httptest.NewRequest(ex.method, ex.path, body)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != ex.status {
			t.Errorf("%s: documented status %d, handler returned %d (body %s)", at, ex.status, w.Code, w.Body)
			continue
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q, want application/json", at, ct)
		}
		var doc, got any
		if err := json.Unmarshal([]byte(ex.respJSON), &doc); err != nil {
			t.Errorf("%s: documented payload is not valid JSON: %v", at, err)
			continue
		}
		if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
			t.Errorf("%s: handler response is not valid JSON: %v", at, err)
			continue
		}
		if err := matchShape(doc, got, true); err != nil {
			t.Errorf("%s: response does not match the documented example: %v\ndocumented: %s\ngot:        %s",
				at, err, strings.TrimSpace(ex.respJSON), w.Body)
		}
	}
}

// matchShape compares a documented JSON value against a live one:
// object key sets must be identical (recursively), value kinds must
// agree, and at the top level strings and booleans must be equal —
// documented error messages and flags are part of the contract. For
// arrays the first documented element's shape must match the first
// live element's.
func matchShape(doc, got any, topLevel bool) error {
	switch d := doc.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			return fmt.Errorf("documented object, got %T", got)
		}
		for k := range d {
			if _, ok := g[k]; !ok {
				return fmt.Errorf("documented field %q missing from response", k)
			}
		}
		for k := range g {
			if _, ok := d[k]; !ok {
				return fmt.Errorf("response field %q is not documented", k)
			}
		}
		for k, dv := range d {
			if err := matchShape(dv, g[k], topLevel); err != nil {
				return fmt.Errorf("field %q: %w", k, err)
			}
		}
		return nil
	case []any:
		g, ok := got.([]any)
		if !ok {
			return fmt.Errorf("documented array, got %T", got)
		}
		if len(d) == 0 {
			return nil
		}
		if len(g) == 0 {
			return fmt.Errorf("documented non-empty array, response is empty")
		}
		return matchShape(d[0], g[0], false)
	case string:
		g, ok := got.(string)
		if !ok {
			return fmt.Errorf("documented string %q, got %T", d, got)
		}
		if topLevel && g != d {
			return fmt.Errorf("documented %q, got %q", d, g)
		}
		return nil
	case bool:
		g, ok := got.(bool)
		if !ok {
			return fmt.Errorf("documented bool %v, got %T", d, got)
		}
		if topLevel && g != d {
			return fmt.Errorf("documented %v, got %v", d, g)
		}
		return nil
	case float64:
		if _, ok := got.(float64); !ok {
			return fmt.Errorf("documented number %v, got %T", d, got)
		}
		return nil
	case nil:
		if got != nil {
			return fmt.Errorf("documented null, got %T", got)
		}
		return nil
	default:
		return fmt.Errorf("unhandled documented value %T", doc)
	}
}
