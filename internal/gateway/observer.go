package gateway

import (
	"sync"

	"dynagg/internal/gossip"
	"dynagg/internal/protocol/multi"
	"dynagg/internal/xrand"
)

// observerAgent wraps the observer's multi.Node behind a mutex the
// HTTP handlers share with the engine's tick loop. The live engine
// already serializes all agent callbacks per host, so the lock never
// contends with itself — it exists purely so readers see a coherent
// mid-tick state (the engine's own per-host locks are unexported).
//
// Beyond locking, the wrapper keeps what serving needs and the raw
// protocol node does not:
//
//   - the current tick, so responses can report read time;
//   - per-aggregate last-heard ticks (mass arrival observed in
//     Receive), so staleness is reportable;
//   - a trailing ring of per-tick estimates per aggregate. An
//     observer holds only a sliver of mass (it retains half its
//     decayed share and receives on the order of one parcel per
//     tick), so its instantaneous v/w ratio swings ±25% tick to
//     tick even when the population mean is exact. The served value
//     is the ring mean; "converged" means the ring has filled once.
type observerAgent struct {
	mu     sync.Mutex
	node   *multi.Node
	window int

	curTick   int
	lastHeard map[string]int
	rings     map[string]*ring
}

// ring is a fixed trailing window of per-tick estimates.
type ring struct {
	buf []float64
	n   int // samples pushed, capped at len(buf) for mean purposes
	i   int
}

func (r *ring) push(v float64) {
	r.buf[r.i] = v
	r.i = (r.i + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

func (r *ring) mean() float64 {
	if r.n == 0 {
		return 0
	}
	var s float64
	for _, v := range r.buf[:r.n] {
		s += v
	}
	return s / float64(r.n)
}

func (r *ring) full() bool { return r.n == len(r.buf) }

func newObserverAgent(node *multi.Node, window int) *observerAgent {
	return &observerAgent{
		node:      node,
		window:    window,
		lastHeard: make(map[string]int),
		rings:     make(map[string]*ring),
	}
}

// ---- gossip.Agent, delegated under the lock ----

var _ gossip.Agent = (*observerAgent)(nil)

// BeginRound implements gossip.Agent.
func (o *observerAgent) BeginRound(round int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.curTick = round
	o.node.BeginRound(round)
}

// Receive implements gossip.Agent, additionally recording mass
// arrival per aggregate for staleness reporting.
func (o *observerAgent) Receive(p any) {
	o.mu.Lock()
	defer o.mu.Unlock()
	var b multi.Bundle
	switch v := p.(type) {
	case multi.Bundle:
		b = v
	case *multi.Bundle:
		b = *v
	}
	for name := range b.Masses {
		o.lastHeard[name] = o.curTick
	}
	o.node.Receive(p)
}

// Emit implements gossip.Agent.
func (o *observerAgent) Emit(round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.node.Emit(round, rng, pick)
}

// EndRound implements gossip.Agent: after the node folds its inbox,
// the tick's raw estimates feed the smoothing rings.
func (o *observerAgent) EndRound(round int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.node.EndRound(round)
	for _, name := range o.node.Names() {
		avg, ok := o.node.Average(name)
		if !ok {
			continue // no mass yet: nothing to smooth
		}
		r := o.rings[name]
		if r == nil {
			r = &ring{buf: make([]float64, o.window)}
			o.rings[name] = r
		}
		r.push(avg)
	}
}

// Estimate implements gossip.Agent (the network-size estimate, as for
// the underlying multi node).
func (o *observerAgent) Estimate() (float64, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.node.Estimate()
}

// ---- read side, shared with the HTTP handlers ----

type readStatus int

const (
	readOK readStatus = iota
	readUnknown
	readNotConverged
)

// read snapshots one aggregate for serving.
func (o *observerAgent) read(name string) (aggregateBody, readStatus) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.readLocked(name)
}

func (o *observerAgent) readLocked(name string) (aggregateBody, readStatus) {
	if _, ok := o.node.Average(name); !ok {
		// Average reports !ok both for unknown names and for known
		// names that have not received mass; distinguish via Names.
		known := false
		for _, n := range o.node.Names() {
			if n == name {
				known = true
				break
			}
		}
		if !known {
			return aggregateBody{}, readUnknown
		}
		return aggregateBody{}, readNotConverged
	}
	r := o.rings[name]
	if r == nil || !r.full() {
		return aggregateBody{}, readNotConverged
	}
	avg := r.mean()
	size, _ := o.node.Size()
	heard, ok := o.lastHeard[name]
	staleness := -1
	if ok {
		staleness = o.curTick - heard
	}
	return aggregateBody{
		Name:           name,
		Average:        avg,
		Sum:            avg * size,
		Size:           size,
		Tick:           o.curTick,
		StalenessTicks: staleness,
	}, readOK
}

// readAll snapshots every converged aggregate (names still warming up
// are listed by /statusz, not here), plus the size estimate and tick.
func (o *observerAgent) readAll() ([]aggregateBody, float64, int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	var out []aggregateBody
	for _, name := range o.node.Names() {
		if body, st := o.readLocked(name); st == readOK {
			out = append(out, body)
		}
	}
	size, _ := o.node.Size()
	return out, size, o.curTick
}

// register adds a named aggregate (zero-weight, as observers hold no
// mass); it reports whether the name was new. The registration
// propagates by gossip: the observer's next bundles carry the name,
// and hosts with a resolver adopt it.
func (o *observerAgent) register(name string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.node.Register(name, 0)
}

// tick returns the observer's current gossip tick.
func (o *observerAgent) tick() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.curTick
}

// aggState is one aggregate's serving status for /statusz.
type aggState struct {
	name      string
	converged bool
	staleness int // ticks since mass last arrived; -1 if never
}

// statuses reports every known aggregate's serving state.
func (o *observerAgent) statuses() []aggState {
	o.mu.Lock()
	defer o.mu.Unlock()
	var out []aggState
	for _, name := range o.node.Names() {
		r := o.rings[name]
		staleness := -1
		if heard, ok := o.lastHeard[name]; ok {
			staleness = o.curTick - heard
		}
		out = append(out, aggState{
			name:      name,
			converged: r != nil && r.full(),
			staleness: staleness,
		})
	}
	return out
}
