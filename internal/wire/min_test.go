package wire

import (
	"bytes"
	"testing"
)

// TestDecodeCountersMin pins the in-place merge the live columnar path
// uses for Count-Sketch-Reset: decoding into an occupied block keeps
// the element-wise minimum, exactly DeliverFrom with the wire as the
// source.
func TestDecodeCountersMin(t *testing.T) {
	prior := []uint8{5, 0, 255, 7, 7, 200}
	incoming := []uint8{3, 9, 255, 7, 8, 0}
	buf := AppendCounters(nil, incoming)

	dst := append([]uint8(nil), prior...)
	rest, err := DecodeCountersMin(dst, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("rest = %d bytes, want 0", len(rest))
	}
	want := []uint8{3, 0, 255, 7, 7, 0}
	if !bytes.Equal(dst, want) {
		t.Errorf("merged %v, want %v", dst, want)
	}

	// A zero destination (owned pins) can never be raised.
	zeros := make([]uint8, len(incoming))
	if _, err := DecodeCountersMin(zeros, buf); err != nil {
		t.Fatal(err)
	}
	for i, v := range zeros {
		if v != 0 {
			t.Errorf("index %d: pinned zero raised to %d", i, v)
		}
	}

	// Length mismatches and truncations are rejected like the plain
	// decoder's.
	if _, err := DecodeCountersMin(make([]uint8, len(incoming)-1), buf); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := DecodeCountersMin(append([]uint8(nil), prior...), buf[:len(buf)-1]); err == nil {
		t.Error("truncated input accepted")
	}
}
