package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0x42},
		bytes.Repeat([]byte{7}, 300),
	}
	var stream []byte
	for _, p := range payloads {
		stream = AppendFrame(stream, p)
	}
	for i, want := range payloads {
		frame, rest, err := DecodeFrame(stream, 1<<20)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(frame, want) {
			t.Fatalf("frame %d: got %v, want %v", i, frame, want)
		}
		stream = rest
	}
	if len(stream) != 0 {
		t.Fatalf("%d trailing bytes", len(stream))
	}
}

// TestFrameShortPrefixes feeds every strict prefix of a valid frame:
// all must report ErrShortFrame (read more), never a hard error and
// never a bogus frame.
func TestFrameShortPrefixes(t *testing.T) {
	full := AppendFrame(nil, bytes.Repeat([]byte{9}, 200))
	for cut := 0; cut < len(full); cut++ {
		_, rest, err := DecodeFrame(full[:cut], 1<<20)
		if !errors.Is(err, ErrShortFrame) {
			t.Fatalf("prefix of %d bytes: err = %v, want ErrShortFrame", cut, err)
		}
		if len(rest) != cut {
			t.Fatalf("prefix of %d bytes: rest %d, want the whole prefix back", cut, len(rest))
		}
	}
}

func TestFrameRejectsOversizeClaim(t *testing.T) {
	// A frame claiming 1 MiB against a 64 KiB ceiling must fail before
	// any payload arrives — the claim alone is the attack.
	hdr := binary.AppendUvarint(nil, 1<<20)
	if _, _, err := DecodeFrame(hdr, 64<<10); err == nil || errors.Is(err, ErrShortFrame) {
		t.Fatalf("oversize claim: err = %v, want a hard error", err)
	}
}

func TestFrameRejectsUnterminatedLength(t *testing.T) {
	// Ten continuation bytes cannot be completed into a valid uvarint,
	// so the stream is corrupt, not short.
	src := bytes.Repeat([]byte{0x80}, binary.MaxVarintLen64)
	if _, _, err := DecodeFrame(src, 1<<20); err == nil || errors.Is(err, ErrShortFrame) {
		t.Fatalf("unterminated length: err = %v, want a hard error", err)
	}
}
