package wire

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMassRoundTrip(t *testing.T) {
	prop := func(w, v float64) bool {
		buf := AppendMass(nil, w, v)
		if len(buf) != 16 {
			return false
		}
		gw, gv, rest, err := DecodeMass(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		return eq(gw, w) && eq(gv, v)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// eq treats NaN as equal to NaN (bit-level round trip).
func eq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestMass3RoundTrip(t *testing.T) {
	prop := func(w, v, q float64) bool {
		buf := AppendMass3(nil, w, v, q)
		if len(buf) != 24 {
			return false
		}
		gw, gv, gq, rest, err := DecodeMass3(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		return eq(gw, w) && eq(gv, v) && eq(gq, q)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMassDecodeShort(t *testing.T) {
	if _, _, _, err := DecodeMass(make([]byte, 15)); err == nil {
		t.Error("short mass accepted")
	}
	if _, _, _, _, err := DecodeMass3(make([]byte, 20)); err == nil {
		t.Error("short mass3 accepted")
	}
}

func TestCountersRoundTrip(t *testing.T) {
	prop := func(raw []uint8) bool {
		buf := AppendCounters(nil, raw)
		out := make([]uint8, len(raw))
		rest, err := DecodeCounters(out, buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		for i := range raw {
			if out[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCountersCompression(t *testing.T) {
	// A converged matrix: long Never runs plus small-age runs.
	matrix := make([]uint8, 64*24)
	for i := range matrix {
		if i%24 < 6 {
			matrix[i] = uint8(i % 3)
		} else {
			matrix[i] = 255
		}
	}
	buf := AppendCounters(nil, matrix)
	// The Never runs (18 of 24 levels per bin) collapse to 2 bytes
	// each; the varying low levels dominate what remains.
	if len(buf) >= 2*len(matrix)/3 {
		t.Errorf("RLE produced %d bytes for a %d-byte matrix; expected at least 1.5x compression", len(buf), len(matrix))
	}
}

func TestCountersDecodeErrors(t *testing.T) {
	good := AppendCounters(nil, []uint8{1, 1, 2})
	// Wrong destination length.
	if _, err := DecodeCounters(make([]uint8, 5), good); err == nil {
		t.Error("length mismatch accepted")
	}
	// Truncated stream.
	if _, err := DecodeCounters(make([]uint8, 3), good[:len(good)-1]); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, err := DecodeCounters(make([]uint8, 3), nil); err == nil {
		t.Error("empty stream accepted")
	}
	// Run overflowing the matrix.
	bad := AppendCounters(nil, []uint8{1, 1, 1, 1})
	bad[0] = 3 // lie about the element count downward
	if _, err := DecodeCounters(make([]uint8, 3), bad); err == nil {
		t.Error("overflowing run accepted")
	}
}

func TestSketchBitsRoundTrip(t *testing.T) {
	prop := func(bits []uint64) bool {
		buf := AppendSketchBits(nil, bits)
		got, rest, err := DecodeSketchBits(buf)
		if err != nil || len(rest) != 0 || len(got) != len(bits) {
			return false
		}
		for i := range bits {
			if got[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSketchBitsDecodeErrors(t *testing.T) {
	if _, _, err := DecodeSketchBits(nil); err == nil {
		t.Error("empty stream accepted")
	}
	buf := AppendSketchBits(nil, []uint64{1, 2, 3})
	if _, _, err := DecodeSketchBits(buf[:len(buf)-3]); err == nil {
		t.Error("truncated words accepted")
	}
}

func TestCandidatesRoundTrip(t *testing.T) {
	prop := func(raw []int32) bool {
		cands := make([]Candidate, 0, len(raw))
		for i, r := range raw {
			cands = append(cands, Candidate{
				Value: float64(r) / 3,
				Owner: r,
				Age:   int32(i % 40),
			})
		}
		buf := AppendCandidates(nil, cands)
		got, rest, err := DecodeCandidates(buf)
		if err != nil || len(rest) != 0 || len(got) != len(cands) {
			return false
		}
		for i := range cands {
			if got[i] != cands[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCandidatesDecodeErrors(t *testing.T) {
	if _, _, err := DecodeCandidates(nil); err == nil {
		t.Error("empty stream accepted")
	}
	buf := AppendCandidates(nil, []Candidate{{Value: 1, Owner: 2, Age: 3}})
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := DecodeCandidates(buf[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// Messages concatenate: decoding consumes exactly one value and
// returns the rest.
func TestStreamComposition(t *testing.T) {
	var buf []byte
	buf = AppendMass(buf, 1, 2)
	buf = AppendCounters(buf, []uint8{9, 9, 9})
	buf = AppendSketchBits(buf, []uint64{7})

	w, v, rest, err := DecodeMass(buf)
	if err != nil || w != 1 || v != 2 {
		t.Fatalf("mass: %v %v %v", w, v, err)
	}
	counters := make([]uint8, 3)
	rest, err = DecodeCounters(counters, rest)
	if err != nil || counters[2] != 9 {
		t.Fatalf("counters: %v %v", counters, err)
	}
	bits, rest, err := DecodeSketchBits(rest)
	if err != nil || len(rest) != 0 || bits[0] != 7 {
		t.Fatalf("bits: %v %v", bits, err)
	}
}
