// Native Go fuzz targets for every wire decoder that a network
// transport feeds with attacker-controllable bytes (a UDP socket is an
// open radio). The invariants under fuzz: no panics, no unbounded
// allocations, and every accepted input survives a
// decode → encode → decode cycle with identical values. Byte-identical
// re-encoding is NOT asserted: uvarints admit non-minimal forms and
// RLE admits split runs, so distinct encodings may legally carry the
// same value.
//
// `make fuzz-smoke` runs each target for 10 seconds; CI wires that
// into the live lane so decoder regressions are caught on every push.
package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func FuzzDecodeCounters(f *testing.F) {
	f.Add(AppendCounters(nil, []uint8{0, 0, 3, 255, 255, 255}))
	f.Add(AppendCounters(nil, make([]uint8, 64*24)))
	f.Add([]byte{6, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		counters, _, err := DecodeCountersAlloc(data, 64*24)
		if err != nil {
			return
		}
		again, rest, err := DecodeCountersAlloc(AppendCounters(nil, counters), 64*24)
		if err != nil || len(rest) != 0 {
			t.Fatalf("re-decode failed: %v (rest %d)", err, len(rest))
		}
		if !bytes.Equal(again, counters) {
			t.Fatalf("value round trip: got %v, want %v", again, counters)
		}
	})
}

func FuzzDecodeCandidates(f *testing.F) {
	f.Add(AppendCandidates(nil, []Candidate{{Value: 1.5, Owner: 3, Age: 7}}))
	f.Add(AppendCandidates(nil, nil))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		cands, _, err := DecodeCandidates(data)
		if err != nil {
			return
		}
		round, rest, err := DecodeCandidates(AppendCandidates(nil, cands))
		if err != nil || len(rest) != 0 {
			t.Fatalf("re-decode failed: %v (rest %d)", err, len(rest))
		}
		if len(round) != len(cands) {
			t.Fatalf("re-decode length %d, want %d", len(round), len(cands))
		}
		for i := range cands {
			same := round[i].Owner == cands[i].Owner && round[i].Age == cands[i].Age &&
				(round[i].Value == cands[i].Value ||
					(math.IsNaN(round[i].Value) && math.IsNaN(cands[i].Value)))
			if !same {
				t.Fatalf("candidate %d: got %+v, want %+v", i, round[i], cands[i])
			}
		}
	})
}

func FuzzDecodeHeader(f *testing.F) {
	f.Add(AppendHeader(nil, Header{Kind: 1, To: 2, From: 3, Tick: 4}))
	f.Add(AppendHeader(nil, Header{Kind: 255, To: 1<<31 - 1, From: 0, Tick: 1<<31 - 1}))
	f.Add([]byte{envelopeVersion, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, _, err := DecodeHeader(data)
		if err != nil {
			return
		}
		if h.To < 0 || h.From < 0 || h.Tick < 0 {
			t.Fatalf("negative header field accepted: %+v", h)
		}
		again, rest, err := DecodeHeader(AppendHeader(nil, h))
		if err != nil || len(rest) != 0 {
			t.Fatalf("re-decode failed: %v (rest %d)", err, len(rest))
		}
		if again != h {
			t.Fatalf("value round trip: got %+v, want %+v", again, h)
		}
	})
}

func FuzzDecodeSketchBits(f *testing.F) {
	f.Add(AppendSketchBits(nil, []uint64{0, ^uint64(0), 42}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		bits, _, err := DecodeSketchBits(data)
		if err != nil {
			return
		}
		again, rest, err := DecodeSketchBits(AppendSketchBits(nil, bits))
		if err != nil || len(rest) != 0 {
			t.Fatalf("re-decode failed: %v (rest %d)", err, len(rest))
		}
		for i := range bits {
			if again[i] != bits[i] {
				t.Fatalf("word %d: got %x, want %x", i, again[i], bits[i])
			}
		}
	})
}

func FuzzDecodeMass(f *testing.F) {
	f.Add(AppendMass(nil, 1, 2))
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, _, _, err := DecodeMass(data); err != nil {
			return
		}
	})
}

// FuzzDecodeCountersMin cross-checks the in-place min-merge against
// the plain decoder: on accepted input the merged block must be the
// element-wise minimum of the prior block and the decoded values, and
// on ANY input — accepted or not — the merge must never raise a
// counter (the monotonicity that makes partial merges on malformed
// batches safe).
func FuzzDecodeCountersMin(f *testing.F) {
	f.Add(AppendCounters(nil, []uint8{0, 9, 3, 255, 1, 2}))
	f.Add(AppendCounters(nil, make([]uint8, 64*24)))
	f.Add([]byte{6, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 64 * 24
		prior := make([]uint8, n)
		for i := range prior {
			prior[i] = uint8(i * 37)
		}
		merged := append([]uint8(nil), prior...)
		_, minErr := DecodeCountersMin(merged, data)
		for i := range merged {
			if merged[i] > prior[i] {
				t.Fatalf("index %d raised: %d -> %d", i, prior[i], merged[i])
			}
		}
		if minErr != nil {
			return
		}
		values := make([]uint8, n)
		if _, err := DecodeCounters(values, data); err != nil {
			t.Fatalf("DecodeCounters rejected input DecodeCountersMin accepted: %v", err)
		}
		for i := range merged {
			want := prior[i]
			if values[i] < want {
				want = values[i]
			}
			if merged[i] != want {
				t.Fatalf("index %d: got %d, want min(%d,%d)", i, merged[i], prior[i], values[i])
			}
		}
	})
}

// FuzzDecodeFrame attacks the stream-framing layer the TCP transport
// reads socket bytes through: adversarial length claims, truncation at
// every byte, and garbage prefixes. Invariants: no panic, oversize
// claims rejected before allocation, ErrShortFrame inputs returned
// intact for retry, and every accepted frame re-frames to a stream
// that decodes to the same payload.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendFrame(nil, []byte("hello")), 64)
	f.Add(AppendFrame(AppendFrame(nil, nil), []byte{1, 2, 3}), 16)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, 1024)
	f.Add([]byte{0x05, 0x01}, 1024)
	f.Fuzz(func(t *testing.T, data []byte, max int) {
		if max < 0 {
			max = -max
		}
		max %= 1 << 20
		frame, rest, err := DecodeFrame(data, max)
		if errors.Is(err, ErrShortFrame) {
			if len(rest) != len(data) {
				t.Fatalf("short frame consumed %d bytes", len(data)-len(rest))
			}
			return
		}
		if err != nil {
			return
		}
		if max > 0 && len(frame) > max {
			t.Fatalf("accepted %d-byte frame over the %d-byte limit", len(frame), max)
		}
		if len(frame)+len(rest) > len(data) {
			t.Fatalf("frame(%d)+rest(%d) exceed input(%d)", len(frame), len(rest), len(data))
		}
		again, tail, err := DecodeFrame(AppendFrame(nil, frame), len(frame)+1)
		if err != nil || len(tail) != 0 || !bytes.Equal(again, frame) {
			t.Fatalf("re-framed frame did not round-trip: %v", err)
		}
	})
}
