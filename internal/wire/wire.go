// Package wire provides compact binary encodings for every gossip
// payload in the library, so bandwidth — the resource the paper's
// protocols are designed to conserve — can be measured in bytes
// rather than abstract message counts.
//
// The paper's §IV-B bandwidth argument ("Push-Sum-Revert requires
// several orders of magnitude less bandwidth and storage space than
// Count-Sketch-Reset") is about exactly these sizes: a mass vector is
// two floats, while a counter matrix is bins×levels counters. The
// encodings here are what a careful implementation would put on the
// radio:
//
//   - mass vectors: fixed 8-byte float64s (IEEE 754, little endian);
//   - counter matrices: run-length encoding, because a converged
//     matrix is dominated by long runs of Never (255) in the high
//     levels and long runs of small, similar ages in the low ones;
//   - sketch bit vectors: raw 8-byte words (already dense);
//   - extremum candidate tables: varint-packed entries.
//
// All encodings are self-delimiting and round-trip exactly.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// AppendMass appends the wire form of a (w, v) mass vector.
func AppendMass(dst []byte, w, v float64) []byte {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:8], math.Float64bits(w))
	binary.LittleEndian.PutUint64(buf[8:16], math.Float64bits(v))
	return append(dst, buf[:]...)
}

// DecodeMass parses a mass vector, returning the remaining bytes.
func DecodeMass(src []byte) (w, v float64, rest []byte, err error) {
	if len(src) < 16 {
		return 0, 0, nil, fmt.Errorf("wire: mass needs 16 bytes, have %d", len(src))
	}
	w = math.Float64frombits(binary.LittleEndian.Uint64(src[0:8]))
	v = math.Float64frombits(binary.LittleEndian.Uint64(src[8:16]))
	return w, v, src[16:], nil
}

// AppendMass3 appends a (w, v, q) moments mass vector.
func AppendMass3(dst []byte, w, v, q float64) []byte {
	dst = AppendMass(dst, w, v)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(q))
	return append(dst, buf[:]...)
}

// DecodeMass3 parses a moments mass vector.
func DecodeMass3(src []byte) (w, v, q float64, rest []byte, err error) {
	w, v, rest, err = DecodeMass(src)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	if len(rest) < 8 {
		return 0, 0, 0, nil, fmt.Errorf("wire: mass3 needs 8 more bytes, have %d", len(rest))
	}
	q = math.Float64frombits(binary.LittleEndian.Uint64(rest[0:8]))
	return w, v, q, rest[8:], nil
}

// AppendCounters appends a run-length encoding of a counter matrix:
// a uvarint element count, then (uvarint runLength, byte value) pairs.
// Converged matrices compress 10-30×: the high levels are solid Never
// and neighboring counters share small ages.
func AppendCounters(dst []byte, counters []uint8) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(counters)))
	i := 0
	for i < len(counters) {
		j := i + 1
		for j < len(counters) && counters[j] == counters[i] {
			j++
		}
		dst = binary.AppendUvarint(dst, uint64(j-i))
		dst = append(dst, counters[i])
		i = j
	}
	return dst
}

// DecodeCounters parses a run-length-encoded counter matrix into dst
// (which must have the exact expected length), returning the remaining
// bytes.
func DecodeCounters(dst []uint8, src []byte) (rest []byte, err error) {
	total, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, fmt.Errorf("wire: counters: bad element count")
	}
	if int(total) != len(dst) {
		return nil, fmt.Errorf("wire: counters: got %d elements, want %d", total, len(dst))
	}
	src = src[n:]
	at := 0
	for at < len(dst) {
		run, n := binary.Uvarint(src)
		if n <= 0 {
			return nil, fmt.Errorf("wire: counters: bad run length at element %d", at)
		}
		src = src[n:]
		if len(src) < 1 {
			return nil, fmt.Errorf("wire: counters: missing run value at element %d", at)
		}
		v := src[0]
		src = src[1:]
		// Compare in uint64 so an adversarial run length cannot wrap
		// int and slip past the bound.
		if run == 0 || run > uint64(len(dst)-at) {
			return nil, fmt.Errorf("wire: counters: run %d overflows matrix at element %d", run, at)
		}
		for k := 0; k < int(run); k++ {
			dst[at+k] = v
		}
		at += int(run)
	}
	return src, nil
}

// DecodeCountersMin parses a run-length-encoded counter matrix and
// folds it into dst with an element-wise minimum instead of assigning
// — the gossip merge every age-matrix protocol performs on receipt,
// applied straight off the wire with no intermediate matrix. dst must
// have the exact encoded length. On a malformed encoding the runs
// decoded before the error have already been merged; a min-fold is
// monotone, so a partial merge leaves dst in a state some shorter
// valid message could have produced and the caller may simply drop
// the rest.
func DecodeCountersMin(dst []uint8, src []byte) (rest []byte, err error) {
	total, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, fmt.Errorf("wire: counters: bad element count")
	}
	if int(total) != len(dst) {
		return nil, fmt.Errorf("wire: counters: got %d elements, want %d", total, len(dst))
	}
	src = src[n:]
	at := 0
	for at < len(dst) {
		run, n := binary.Uvarint(src)
		if n <= 0 {
			return nil, fmt.Errorf("wire: counters: bad run length at element %d", at)
		}
		src = src[n:]
		if len(src) < 1 {
			return nil, fmt.Errorf("wire: counters: missing run value at element %d", at)
		}
		v := src[0]
		src = src[1:]
		// Compare in uint64 so an adversarial run length cannot wrap
		// int and slip past the bound.
		if run == 0 || run > uint64(len(dst)-at) {
			return nil, fmt.Errorf("wire: counters: run %d overflows matrix at element %d", run, at)
		}
		for k := 0; k < int(run); k++ {
			if v < dst[at+k] {
				dst[at+k] = v
			}
		}
		at += int(run)
	}
	return src, nil
}

// DecodeCountersAlloc parses a run-length-encoded counter matrix whose
// size is not known in advance (a network datagram rather than a
// preconfigured sketch), allocating the result. maxElements bounds the
// allocation so adversarial input cannot force an OOM.
func DecodeCountersAlloc(src []byte, maxElements int) (counters []uint8, rest []byte, err error) {
	total, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, nil, fmt.Errorf("wire: counters: bad element count")
	}
	if total == 0 || total > uint64(maxElements) {
		return nil, nil, fmt.Errorf("wire: counters: element count %d outside [1, %d]", total, maxElements)
	}
	counters = make([]uint8, total)
	rest, err = DecodeCounters(counters, src)
	if err != nil {
		return nil, nil, err
	}
	return counters, rest, nil
}

// AppendSketchBits appends a sketch's bin words: a uvarint count then
// raw 8-byte little-endian words.
func AppendSketchBits(dst []byte, bits []uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(bits)))
	var buf [8]byte
	for _, b := range bits {
		binary.LittleEndian.PutUint64(buf[:], b)
		dst = append(dst, buf[:]...)
	}
	return dst
}

// DecodeSketchBits parses sketch bin words.
func DecodeSketchBits(src []byte) (bits []uint64, rest []byte, err error) {
	count, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, nil, fmt.Errorf("wire: sketch: bad bin count")
	}
	src = src[n:]
	// Compare in uint64 so an adversarial count cannot overflow
	// count*8 past the length check into a huge allocation.
	if count > uint64(len(src))/8 {
		return nil, nil, fmt.Errorf("wire: sketch: need %d bytes, have %d", count*8, len(src))
	}
	bits = make([]uint64, count)
	for i := range bits {
		bits[i] = binary.LittleEndian.Uint64(src[i*8 : i*8+8])
	}
	return bits, src[count*8:], nil
}

// Candidate mirrors extremes.Candidate without importing it (wire is a
// leaf package).
type Candidate struct {
	Value float64
	Owner int32
	Age   int32
}

// AppendCandidates appends an extremum candidate table: a uvarint
// count, then per candidate a raw float64 value, varint owner, varint
// age.
func AppendCandidates(dst []byte, cands []Candidate) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(cands)))
	var buf [8]byte
	for _, c := range cands {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(c.Value))
		dst = append(dst, buf[:]...)
		dst = binary.AppendVarint(dst, int64(c.Owner))
		dst = binary.AppendVarint(dst, int64(c.Age))
	}
	return dst
}

// DecodeCandidates parses an extremum candidate table.
func DecodeCandidates(src []byte) (cands []Candidate, rest []byte, err error) {
	count, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, nil, fmt.Errorf("wire: candidates: bad count")
	}
	src = src[n:]
	// A candidate is at least 10 bytes (8-byte value + 1-byte owner +
	// 1-byte age), so a count the remaining bytes cannot possibly hold
	// is rejected before it sizes an allocation.
	if count > uint64(len(src))/10 {
		return nil, nil, fmt.Errorf("wire: candidates: count %d exceeds %d remaining bytes", count, len(src))
	}
	cands = make([]Candidate, 0, count)
	for i := 0; i < int(count); i++ {
		if len(src) < 8 {
			return nil, nil, fmt.Errorf("wire: candidates: truncated value at %d", i)
		}
		value := math.Float64frombits(binary.LittleEndian.Uint64(src[:8]))
		src = src[8:]
		owner, n := binary.Varint(src)
		if n <= 0 {
			return nil, nil, fmt.Errorf("wire: candidates: bad owner at %d", i)
		}
		src = src[n:]
		age, n := binary.Varint(src)
		if n <= 0 {
			return nil, nil, fmt.Errorf("wire: candidates: bad age at %d", i)
		}
		src = src[n:]
		cands = append(cands, Candidate{Value: value, Owner: int32(owner), Age: int32(age)})
	}
	return cands, src, nil
}
