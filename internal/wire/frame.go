package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Stream framing. A datagram transport gets message boundaries for
// free from the kernel; a stream transport (TCP) must draw them
// itself. Each frame is a uvarint byte length followed by exactly that
// many payload bytes — the payload being the same self-describing
// envelope (Header + protocol encoding, or a batch body) a datagram
// would carry, so the two transports share every codec above this
// line.
//
// The length prefix is the attack surface: a peer (or a corrupted
// stream) can claim any length, so DecodeFrame takes an explicit
// ceiling and refuses larger claims before any allocation happens.

// ErrShortFrame reports that src ends mid-frame: the bytes so far are
// a valid prefix, and the caller should read more and retry. Every
// other DecodeFrame error means the stream is corrupt with no way to
// resynchronize — a stream reader should drop the connection.
var ErrShortFrame = errors.New("wire: short frame")

// AppendFrame appends one length-prefixed frame carrying payload.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// DecodeFrame splits one frame off the front of a stream buffer,
// returning the payload and the remaining bytes. maxFrame bounds the
// accepted payload length (<= 0 means no bound — callers feeding
// socket bytes must pass a real ceiling). The returned frame aliases
// src.
func DecodeFrame(src []byte, maxFrame int) (frame, rest []byte, err error) {
	ln, n := binary.Uvarint(src)
	if n == 0 {
		// Truncated uvarint — unless it is already as long as a uvarint
		// can get, in which case no suffix could complete it.
		if len(src) >= binary.MaxVarintLen64 {
			return nil, nil, fmt.Errorf("wire: frame length is not a valid uvarint")
		}
		return nil, src, ErrShortFrame
	}
	if n < 0 {
		return nil, nil, fmt.Errorf("wire: frame length uvarint overflows 64 bits")
	}
	if maxFrame > 0 && ln > uint64(maxFrame) {
		return nil, nil, fmt.Errorf("wire: %d-byte frame exceeds the %d-byte limit", ln, maxFrame)
	}
	if uint64(len(src)-n) < ln {
		return nil, src, ErrShortFrame
	}
	return src[n : n+int(ln)], src[n+int(ln):], nil
}
