package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// envelopeVersion is the first byte of every transport datagram, so
// incompatible encodings fail loudly instead of mis-decoding.
const envelopeVersion = 1

// Header is the self-describing envelope prepended to every payload a
// network transport puts on a socket: which protocol encoding follows
// (Kind), which host it is addressed to and from, and the sender's
// local tick at emission time. Hosts are int32 to mirror gossip.NodeID
// without importing it (wire is a leaf package).
type Header struct {
	Kind uint8
	To   int32
	From int32
	Tick int32
}

// AppendHeader appends the wire form of an envelope header: a version
// byte, the kind byte, then uvarint To, From, Tick. All three must be
// non-negative.
func AppendHeader(dst []byte, h Header) []byte {
	dst = append(dst, envelopeVersion, h.Kind)
	dst = binary.AppendUvarint(dst, uint64(uint32(h.To)))
	dst = binary.AppendUvarint(dst, uint64(uint32(h.From)))
	dst = binary.AppendUvarint(dst, uint64(uint32(h.Tick)))
	return dst
}

// DecodeHeader parses an envelope header, returning the remaining
// bytes (the payload encoding selected by Kind).
func DecodeHeader(src []byte) (h Header, rest []byte, err error) {
	if len(src) < 2 {
		return Header{}, nil, fmt.Errorf("wire: header needs 2 leading bytes, have %d", len(src))
	}
	if src[0] != envelopeVersion {
		return Header{}, nil, fmt.Errorf("wire: header version %d, want %d", src[0], envelopeVersion)
	}
	h.Kind = src[1]
	src = src[2:]
	for _, field := range []*int32{&h.To, &h.From, &h.Tick} {
		v, n := binary.Uvarint(src)
		if n <= 0 {
			return Header{}, nil, fmt.Errorf("wire: header: bad varint field")
		}
		if v > math.MaxInt32 {
			return Header{}, nil, fmt.Errorf("wire: header: field %d overflows int32", v)
		}
		*field = int32(v)
		src = src[n:]
	}
	return h, src, nil
}
