package wire

import (
	"bytes"
	"testing"
)

func TestHeaderRoundTrip(t *testing.T) {
	headers := []Header{
		{},
		{Kind: 1, To: 0, From: 0, Tick: 0},
		{Kind: 7, To: 3, From: 99999, Tick: 12345},
		{Kind: 255, To: 1<<31 - 1, From: 1<<31 - 1, Tick: 1<<31 - 1},
	}
	for _, h := range headers {
		buf := AppendHeader(nil, h)
		tail := []byte{0xAA, 0xBB}
		got, rest, err := DecodeHeader(append(buf, tail...))
		if err != nil {
			t.Fatalf("DecodeHeader(%+v): %v", h, err)
		}
		if got != h {
			t.Errorf("round trip: got %+v, want %+v", got, h)
		}
		if !bytes.Equal(rest, tail) {
			t.Errorf("rest = %x, want %x", rest, tail)
		}
	}
}

func TestHeaderDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":            nil,
		"one byte":         {envelopeVersion},
		"bad version":      {99, 1, 0, 0, 0},
		"truncated fields": {envelopeVersion, 1, 0x80},
		"missing tick":     {envelopeVersion, 1, 0, 0},
		"field overflow":   append([]byte{envelopeVersion, 1}, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F),
	}
	for name, src := range cases {
		if _, _, err := DecodeHeader(src); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestDecodeCountersAlloc(t *testing.T) {
	counters := []uint8{0, 0, 0, 3, 3, 255, 255, 255}
	buf := AppendCounters(nil, counters)
	got, rest, err := DecodeCountersAlloc(append(buf, 0xEE), 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, counters) {
		t.Errorf("got %v, want %v", got, counters)
	}
	if !bytes.Equal(rest, []byte{0xEE}) {
		t.Errorf("rest = %x", rest)
	}
	if _, _, err := DecodeCountersAlloc(buf, 4); err == nil {
		t.Error("element count above maxElements accepted")
	}
	if _, _, err := DecodeCountersAlloc(AppendCounters(nil, nil), 4); err == nil {
		t.Error("zero element count accepted")
	}
}
