package overlay

import (
	"testing"

	"dynagg/internal/gossip"
)

// lineTopo is a path topology 0-1-2-...-n-1 with controllable liveness.
type lineTopo struct {
	n    int
	dead map[gossip.NodeID]bool
}

func newLine(n int) *lineTopo { return &lineTopo{n: n, dead: map[gossip.NodeID]bool{}} }

func (l *lineTopo) Size() int                   { return l.n }
func (l *lineTopo) Alive(id gossip.NodeID) bool { return !l.dead[id] }
func (l *lineTopo) Neighbors(id gossip.NodeID) []gossip.NodeID {
	var out []gossip.NodeID
	if id > 0 {
		out = append(out, id-1)
	}
	if int(id) < l.n-1 {
		out = append(out, id+1)
	}
	return out
}

// starTopo connects every host to host 0.
type starTopo struct {
	n    int
	dead map[gossip.NodeID]bool
}

func newStar(n int) *starTopo { return &starTopo{n: n, dead: map[gossip.NodeID]bool{}} }

func (s *starTopo) Size() int                   { return s.n }
func (s *starTopo) Alive(id gossip.NodeID) bool { return !s.dead[id] }
func (s *starTopo) Neighbors(id gossip.NodeID) []gossip.NodeID {
	if id == 0 {
		out := make([]gossip.NodeID, 0, s.n-1)
		for i := 1; i < s.n; i++ {
			out = append(out, gossip.NodeID(i))
		}
		return out
	}
	return []gossip.NodeID{0}
}

func TestBuildValidation(t *testing.T) {
	topo := newLine(5)
	if _, err := Build(topo, 9); err == nil {
		t.Error("out-of-range root accepted")
	}
	topo.dead[2] = true
	if _, err := Build(topo, 2); err == nil {
		t.Error("dead root accepted")
	}
}

func TestBuildLine(t *testing.T) {
	topo := newLine(5)
	tree, err := Build(topo, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Reached() != 5 {
		t.Errorf("Reached = %d, want 5", tree.Reached())
	}
	if tree.MaxDepth() != 4 {
		t.Errorf("MaxDepth = %d, want 4", tree.MaxDepth())
	}
	for i := 1; i < 5; i++ {
		if tree.Parent[i] != gossip.NodeID(i-1) {
			t.Errorf("Parent[%d] = %d, want %d", i, tree.Parent[i], i-1)
		}
		if tree.Depth[i] != i {
			t.Errorf("Depth[%d] = %d, want %d", i, tree.Depth[i], i)
		}
	}
	if tree.Parent[0] != -1 || tree.Depth[0] != 0 {
		t.Error("root bookkeeping wrong")
	}
}

func TestBuildSkipsDeadAndUnreachable(t *testing.T) {
	topo := newLine(5)
	topo.dead[2] = true // severs 3,4 from root 0
	tree, err := Build(topo, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Reached() != 2 {
		t.Errorf("Reached = %d, want 2 (hosts 0,1)", tree.Reached())
	}
	if tree.Depth[3] != -1 || tree.Depth[4] != -1 {
		t.Error("unreachable hosts appear in tree")
	}
}

func TestCollectExactOnStaticNetwork(t *testing.T) {
	topo := newStar(10)
	tree, err := Build(topo, 0)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, 10)
	var want float64
	for i := range values {
		values[i] = float64(i * i)
		want += values[i]
	}
	res := tree.Collect(values, func(gossip.NodeID) bool { return true })
	if res.Sum != want || res.Count != 10 || res.Lost != 0 {
		t.Errorf("Collect = %+v, want sum %v count 10 lost 0", res, want)
	}
	if res.Average() != want/10 {
		t.Errorf("Average = %v, want %v", res.Average(), want/10)
	}
	if res.Rounds != tree.MaxDepth() {
		t.Errorf("Rounds = %d, want depth %d", res.Rounds, tree.MaxDepth())
	}
}

// The failure mode the paper describes: a host failing between Build
// and Collect silently drops its whole subtree.
func TestCollectDropsSubtreeOfDeadHost(t *testing.T) {
	topo := newLine(5) // 0-1-2-3-4, tree rooted at 0
	tree, err := Build(topo, 0)
	if err != nil {
		t.Fatal(err)
	}
	values := []float64{1, 1, 1, 1, 1}
	alive := func(id gossip.NodeID) bool { return id != 2 }
	res := tree.Collect(values, alive)
	// Hosts 3 and 4 forward through dead 2: lost. Root collects 0,1.
	if res.Count != 2 {
		t.Errorf("Count = %d, want 2", res.Count)
	}
	if res.Sum != 2 {
		t.Errorf("Sum = %v, want 2", res.Sum)
	}
	if res.Lost == 0 {
		t.Error("no loss recorded despite dead interior host")
	}
}

func TestCollectDeadRoot(t *testing.T) {
	topo := newStar(4)
	tree, err := Build(topo, 0)
	if err != nil {
		t.Fatal(err)
	}
	values := []float64{1, 1, 1, 1}
	res := tree.Collect(values, func(id gossip.NodeID) bool { return id != 0 })
	if res.Count != 0 || res.Sum != 0 {
		t.Errorf("dead root collected %+v", res)
	}
	if res.Lost != 3 {
		t.Errorf("Lost = %d, want 3", res.Lost)
	}
	if res.Average() != 0 {
		t.Errorf("Average with empty count = %v, want 0", res.Average())
	}
}

func TestCollectSingleHost(t *testing.T) {
	topo := newStar(1)
	tree, err := Build(topo, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := tree.Collect([]float64{42}, func(gossip.NodeID) bool { return true })
	if res.Sum != 42 || res.Count != 1 || res.Rounds != 0 {
		t.Errorf("single-host collect = %+v", res)
	}
}
