// Package overlay implements a TAG-style spanning-tree aggregation
// baseline (Madden et al., §II a / §VI): a leader floods an interest,
// hosts arrange into a BFS tree over the current topology, and partial
// aggregates flow up the tree, one hop per round.
//
// The baseline exists to demonstrate the trade the paper describes:
// on a static network the tree computes the aggregate *exactly* in
// O(depth) rounds, but any host that fails between tree construction
// and collection silently disconnects its entire subtree from the
// result. Gossip protocols degrade gracefully; trees do not.
package overlay

import (
	"fmt"

	"dynagg/internal/gossip"
)

// Topology provides the adjacency the tree is built over.
type Topology interface {
	Size() int
	Alive(id gossip.NodeID) bool
	Neighbors(id gossip.NodeID) []gossip.NodeID
}

// Tree is a BFS spanning tree rooted at a leader.
type Tree struct {
	Root   gossip.NodeID
	Parent []gossip.NodeID // Parent[i] = -1 for root and unreached hosts
	Depth  []int           // Depth[i] = -1 for unreached hosts
	Order  []gossip.NodeID // BFS order of reached hosts
}

// Build constructs a BFS tree from root over the live hosts of the
// topology. Unreachable live hosts are simply not in the tree — the
// overlay cannot aggregate what it cannot route to.
func Build(topo Topology, root gossip.NodeID) (*Tree, error) {
	n := topo.Size()
	if int(root) < 0 || int(root) >= n {
		return nil, fmt.Errorf("overlay: root %d outside population of %d", root, n)
	}
	if !topo.Alive(root) {
		return nil, fmt.Errorf("overlay: root %d is not alive", root)
	}
	t := &Tree{
		Root:   root,
		Parent: make([]gossip.NodeID, n),
		Depth:  make([]int, n),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
		t.Depth[i] = -1
	}
	t.Depth[root] = 0
	queue := []gossip.NodeID{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		t.Order = append(t.Order, cur)
		for _, nb := range topo.Neighbors(cur) {
			if !topo.Alive(nb) || t.Depth[nb] >= 0 {
				continue
			}
			t.Depth[nb] = t.Depth[cur] + 1
			t.Parent[nb] = cur
			queue = append(queue, nb)
		}
	}
	return t, nil
}

// Reached returns the number of hosts in the tree.
func (t *Tree) Reached() int { return len(t.Order) }

// MaxDepth returns the tree height (0 for a bare root).
func (t *Tree) MaxDepth() int {
	d := 0
	for _, id := range t.Order {
		if t.Depth[id] > d {
			d = t.Depth[id]
		}
	}
	return d
}

// Result is the outcome of one tree aggregation.
type Result struct {
	Sum   float64
	Count int
	// Rounds is the number of communication rounds consumed: one per
	// tree level for the up-sweep.
	Rounds int
	// Lost is the number of tree hosts whose contribution was dropped
	// because a host on their path to the root had failed by
	// collection time.
	Lost int
}

// Average returns Sum/Count, or 0 when nothing was collected.
func (r Result) Average() float64 {
	if r.Count == 0 {
		return 0
	}
	return r.Sum / float64(r.Count)
}

// Collect runs the up-sweep: each host aggregates its own value with
// its children's partial aggregates and forwards to its parent. alive
// is evaluated at collection time, so hosts that failed after Build
// drop their whole subtree (the failure mode gossip avoids).
func (t *Tree) Collect(values []float64, alive func(gossip.NodeID) bool) Result {
	n := len(t.Parent)
	sum := make([]float64, n)
	cnt := make([]int, n)
	dead := make([]bool, n)
	for _, id := range t.Order {
		if alive(id) {
			sum[id] = values[id]
			cnt[id] = 1
		} else {
			dead[id] = true
		}
	}
	res := Result{Rounds: t.MaxDepth()}
	// Process leaves upward: reverse BFS order guarantees children
	// before parents.
	for i := len(t.Order) - 1; i >= 0; i-- {
		id := t.Order[i]
		if id == t.Root {
			continue
		}
		parent := t.Parent[id]
		if dead[id] || dead[parent] {
			// A dead host forwards nothing; a dead parent swallows the
			// subtree. Everything accumulated below id is lost.
			if !dead[id] {
				res.Lost += cnt[id]
			} else {
				res.Lost += cnt[id] // partials that reached id die with it
			}
			continue
		}
		sum[parent] += sum[id]
		cnt[parent] += cnt[id]
	}
	if !dead[t.Root] {
		res.Sum = sum[t.Root]
		res.Count = cnt[t.Root]
	} else {
		res.Lost += cnt[t.Root]
	}
	return res
}
