// Package extremes applies the paper's age-out technique to extremum
// aggregates: dynamic MIN and MAX over the hosts currently in the
// network.
//
// Static gossip max is trivial — forward the largest value seen and it
// floods in logarithmic time — but, like the counting sketch, it is a
// monotone OR-style computation: when the host holding the maximum
// departs, nothing ever retires its value. The fix is the same as
// Count-Sketch-Reset's (§IV): attach an age to every candidate. The
// host whose own value a candidate carries pins that candidate's age
// at zero; everyone else increments ages each round and keeps the
// minimum age seen per candidate when gossiping. A candidate whose age
// exceeds a propagation cutoff has, with high probability, lost every
// host sourcing it and is dropped.
//
// Each host retains a small table of the best K live candidates rather
// than just the best one, so when the extremum ages out the estimate
// falls back to the runner-up immediately instead of re-flooding from
// scratch.
//
// The cutoff plays the role of f(k): under uniform gossip a still-
// sourced candidate's age is bounded by the network's flood time,
// which is O(log n); DefaultCutoff is generous for populations up to
// millions. Slower environments (spatial grids, sparse traces) need a
// larger cutoff, exactly as §IV-A discusses for the counting sketch.
package extremes

import (
	"fmt"
	"slices"

	"dynagg/internal/gossip"
	"dynagg/internal/xrand"
)

// Mode selects which extremum the protocol maintains.
type Mode int

const (
	// Max maintains the network-wide maximum.
	Max Mode = iota
	// Min maintains the network-wide minimum.
	Min
)

// String returns the mode name.
func (m Mode) String() string {
	if m == Min {
		return "min"
	}
	return "max"
}

// DefaultCutoff is the default candidate age limit: comfortably above
// uniform-gossip flood time (≈ log₂ n + a few rounds) for any
// practical population.
const DefaultCutoff = 30

// DefaultTableSize is the default number of candidates retained.
const DefaultTableSize = 8

// Candidate is one (value, owner) pair with its gossip age.
type Candidate struct {
	Value float64
	Owner gossip.NodeID
	Age   int
}

// Config parametrizes an extremes host.
type Config struct {
	// Mode selects Min or Max.
	Mode Mode
	// Cutoff is the age beyond which a candidate is considered
	// orphaned and dropped. Zero takes DefaultCutoff.
	Cutoff int
	// TableSize is how many candidates each host retains. Zero takes
	// DefaultTableSize.
	TableSize int
}

func (c *Config) fillDefaults() {
	if c.Cutoff == 0 {
		c.Cutoff = DefaultCutoff
	}
	if c.TableSize == 0 {
		c.TableSize = DefaultTableSize
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Cutoff < 0 {
		return fmt.Errorf("extremes: negative Cutoff %d", c.Cutoff)
	}
	if c.TableSize < 0 {
		return fmt.Errorf("extremes: negative TableSize %d", c.TableSize)
	}
	if c.Mode != Min && c.Mode != Max {
		return fmt.Errorf("extremes: unknown Mode %d", c.Mode)
	}
	return nil
}

// Table is the gossiped candidate-table payload of EmitAppend: a
// snapshot of the emitter's table taken at emission time, wrapped in a
// struct so a pointer to it crosses the Envelope.Payload interface
// without boxing a slice header.
type Table struct {
	Candidates []Candidate
}

// Node is one dynamic-extremum host.
type Node struct {
	id    gossip.NodeID
	value float64
	cfg   Config

	// table holds the best candidates, sorted best-first. The host's
	// own candidate is always present with age 0.
	table []Candidate

	// snap is the reusable snapshot sent by EmitAppend; byOwner and
	// mergeBuf are normalize's reusable scratch.
	snap     Table
	byOwner  map[gossip.NodeID]Candidate
	mergeBuf []Candidate
}

var (
	_ gossip.Agent         = (*Node)(nil)
	_ gossip.Exchanger     = (*Node)(nil)
	_ gossip.AppendEmitter = (*Node)(nil)
)

// New returns an extremes host contributing the given value.
func New(id gossip.NodeID, value float64, cfg Config) *Node {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg.fillDefaults()
	n := &Node{id: id, value: value, cfg: cfg}
	n.table = []Candidate{{Value: value, Owner: id, Age: 0}}
	return n
}

// ID returns the host id.
func (n *Node) ID() gossip.NodeID { return n.id }

// Value returns the host's own contribution.
func (n *Node) Value() float64 { return n.value }

// Table returns a copy of the candidate table, best first.
func (n *Node) Table() []Candidate {
	out := make([]Candidate, len(n.table))
	copy(out, n.table)
	return out
}

// better reports whether a beats b for this node's mode, with owner id
// as a deterministic tie-break.
func (n *Node) better(a, b Candidate) bool {
	if a.Value != b.Value {
		if n.cfg.Mode == Max {
			return a.Value > b.Value
		}
		return a.Value < b.Value
	}
	return a.Owner < b.Owner
}

// normalize sorts best-first, deduplicates by owner keeping the
// youngest age, drops aged-out candidates, re-pins the own entry, and
// truncates to the table size. The dedup map is reused across calls so
// the steady state allocates nothing.
func (n *Node) normalize() {
	// Dedup by owner: keep min age (per-owner value is fixed, so any
	// duplicate differs only in age).
	if n.byOwner == nil {
		n.byOwner = make(map[gossip.NodeID]Candidate, len(n.table)+1)
	} else {
		clear(n.byOwner)
	}
	byOwner := n.byOwner
	for _, c := range n.table {
		if prev, ok := byOwner[c.Owner]; !ok || c.Age < prev.Age {
			byOwner[c.Owner] = c
		}
	}
	// Own candidate is always live at age 0.
	byOwner[n.id] = Candidate{Value: n.value, Owner: n.id, Age: 0}

	n.table = n.table[:0]
	for _, c := range byOwner {
		if c.Age > n.cfg.Cutoff {
			continue
		}
		n.table = append(n.table, c)
	}
	slices.SortFunc(n.table, func(a, b Candidate) int {
		if n.better(a, b) {
			return -1
		}
		if n.better(b, a) {
			return 1
		}
		return 0
	})
	if len(n.table) > n.cfg.TableSize {
		n.table = n.table[:n.cfg.TableSize]
	}
}

// BeginRound implements gossip.Agent: age every foreign candidate.
func (n *Node) BeginRound(round int) {
	for i := range n.table {
		if n.table[i].Owner != n.id {
			n.table[i].Age++
		}
	}
	n.normalize()
}

// Emit implements gossip.Agent: the full candidate table goes to one
// random peer.
func (n *Node) Emit(round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	peer, ok := pick()
	if !ok {
		return nil
	}
	snapshot := make([]Candidate, len(n.table))
	copy(snapshot, n.table)
	return []gossip.Envelope{{To: peer, Payload: snapshot}}
}

// EmitAppend implements gossip.AppendEmitter: the same emission, but
// the table snapshot is copied into a per-host buffer reused across
// rounds — amortized zero allocation.
func (n *Node) EmitAppend(dst []gossip.Envelope, round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	peer, ok := pick()
	if !ok {
		return dst
	}
	n.snap.Candidates = append(n.snap.Candidates[:0], n.table...)
	return append(dst, gossip.Envelope{To: peer, Payload: &n.snap})
}

// Receive implements gossip.Agent: merge the incoming table. Merging is
// idempotent and order-insensitive (set union + min-age + truncation),
// so applying on arrival is safe. Both the boxed []Candidate of Emit
// and the scratch-backed *Table of EmitAppend are accepted.
func (n *Node) Receive(payload any) {
	switch p := payload.(type) {
	case *Table:
		n.table = append(n.table, p.Candidates...)
	case []Candidate:
		n.table = append(n.table, p...)
	default:
		panic(fmt.Sprintf("extremes: unexpected payload %T", payload))
	}
	n.normalize()
}

// EndRound implements gossip.Agent.
func (n *Node) EndRound(round int) {}

// Exchange implements gossip.Exchanger: mutual table merge. The merge
// buffer is reused across calls.
func (n *Node) Exchange(peer gossip.Exchanger) {
	p := peer.(*Node)
	merged := append(n.mergeBuf[:0], n.table...)
	merged = append(merged, p.table...)
	n.mergeBuf = merged
	n.table = append(n.table[:0], merged...)
	n.normalize()
	p.table = append(p.table[:0], merged...)
	p.normalize()
}

// Best returns the host's current best candidate.
func (n *Node) Best() Candidate { return n.table[0] }

// Estimate implements gossip.Agent: the best live candidate's value.
func (n *Node) Estimate() (float64, bool) {
	if len(n.table) == 0 {
		return 0, false
	}
	return n.table[0].Value, true
}
