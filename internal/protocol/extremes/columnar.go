package extremes

import (
	"dynagg/internal/gossip"
)

// colCandidate is the columnar plane's compact candidate: the same
// (value, owner, age) triple as Candidate with the integers narrowed
// so a row of them stays cache-resident. Ages never exceed the round
// count, so int32 is exact.
type colCandidate struct {
	value float64
	owner int32
	age   int32
}

// Columnar is the struct-of-arrays form of the dynamic extremum
// protocol: every host's candidate table is a fixed-stride row of ONE
// flat population block (gossip.ColumnarAgent + gossip.ColExchanger).
// Rows are 2×TableSize+1 wide — the normalized table occupies the
// first TableSize slots and the rest is in-place merge headroom (two
// full tables plus the re-pinned own entry), so receiving a snapshot
// (Deliver) or a pairwise exchange never allocates. Gossip messages carry no payload on the columnar plane;
// Deliver merges the emitter's start-of-round snapshot row (shadow
// block) into the destination, exactly the classic path's table copy.
//
// normalize here is map-free (linear dedup over ≤ 2×TableSize+1
// entries) but computes the same deterministic function of the
// candidate multiset as Node.normalize — dedup by owner keeping the
// youngest age, re-pin the own entry at age zero, drop aged-out
// candidates, sort best-first with the owner tie-break, truncate — so
// tables, and therefore estimates, are byte-identical to a population
// of *Node agents on the classic path.
type Columnar struct {
	cfg    Config
	value  []float64
	stride int // row width = 2*TableSize + 1

	table []colCandidate // n*stride; host i's table is the row prefix
	tlen  []int32

	// snap holds each host's emission-time table snapshot (≤ TableSize
	// entries per host), the columnar form of the classic snapshot
	// payload.
	snap    []colCandidate
	snapLen []int32
}

var _ gossip.ColExchanger = (*Columnar)(nil)

// NewColumnar returns the columnar population with contributions vs,
// all hosts sharing cfg.
func NewColumnar(vs []float64, cfg Config) *Columnar {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg.fillDefaults()
	n := len(vs)
	c := &Columnar{
		cfg:     cfg,
		value:   append([]float64(nil), vs...),
		stride:  2*cfg.TableSize + 1,
		table:   make([]colCandidate, n*(2*cfg.TableSize+1)),
		tlen:    make([]int32, n),
		snap:    make([]colCandidate, n*cfg.TableSize),
		snapLen: make([]int32, n),
	}
	for i, v := range vs {
		c.table[i*c.stride] = colCandidate{value: v, owner: int32(i), age: 0}
		c.tlen[i] = 1
	}
	return c
}

// Len implements gossip.ColumnarAgent.
func (c *Columnar) Len() int { return len(c.tlen) }

// Table returns a copy of host id's candidate table, best first.
func (c *Columnar) Table(id gossip.NodeID) []Candidate {
	base := int(id) * c.stride
	out := make([]Candidate, c.tlen[id])
	for j := range out {
		cc := c.table[base+j]
		out[j] = Candidate{Value: cc.value, Owner: gossip.NodeID(cc.owner), Age: int(cc.age)}
	}
	return out
}

// better reports whether a beats b, mirroring Node.better.
func (c *Columnar) better(a, b colCandidate) bool {
	if a.value != b.value {
		if c.cfg.Mode == Max {
			return a.value > b.value
		}
		return a.value < b.value
	}
	return a.owner < b.owner
}

// normalize rebuilds host i's row from whatever multiset currently
// occupies it: dedup by owner keeping the youngest age, re-pin the own
// entry, drop aged-out candidates, sort best-first, truncate to the
// table size. In place, no allocation.
func (c *Columnar) normalize(i int) {
	base := i * c.stride
	row := c.table[base : base+int(c.tlen[i])]
	// Dedup foreign candidates by owner, keeping the minimum age
	// (per-owner value is fixed, so duplicates differ only in age);
	// own entries are discarded here and re-pinned below.
	kept := 0
	for _, cand := range row {
		if cand.owner == int32(i) {
			continue
		}
		dup := false
		for k := 0; k < kept; k++ {
			if row[k].owner == cand.owner {
				if cand.age < row[k].age {
					row[k].age = cand.age
				}
				dup = true
				break
			}
		}
		if !dup {
			row[kept] = cand
			kept++
		}
	}
	// Drop aged-out candidates, then add the own candidate (always
	// live at age 0).
	live := 0
	for k := 0; k < kept; k++ {
		if int(row[k].age) > c.cfg.Cutoff {
			continue
		}
		row[live] = row[k]
		live++
	}
	row = c.table[base : base+live+1]
	row[live] = colCandidate{value: c.value[i], owner: int32(i), age: 0}
	// Insertion sort: owners are unique, so better is a strict total
	// order and the result matches Node.normalize's SortFunc exactly.
	for j := 1; j < len(row); j++ {
		cand := row[j]
		k := j
		for ; k > 0 && c.better(cand, row[k-1]); k-- {
			row[k] = row[k-1]
		}
		row[k] = cand
	}
	n := len(row)
	if n > c.cfg.TableSize {
		n = c.cfg.TableSize
	}
	c.tlen[i] = int32(n)
}

// BeginRange implements gossip.ColumnarAgent: age every foreign
// candidate, then normalize (Node.BeginRound).
func (c *Columnar) BeginRange(rc *gossip.ColRound, lo, hi int) {
	alive := rc.Alive
	for i := lo; i < hi; i++ {
		if !alive[i] {
			continue
		}
		base := i * c.stride
		for j := 0; j < int(c.tlen[i]); j++ {
			if c.table[base+j].owner != int32(i) {
				c.table[base+j].age++
			}
		}
		c.normalize(i)
	}
}

// EmitRange implements gossip.ColumnarAgent: snapshot each live host's
// table into the shadow rows, then address one payload-free message to
// a random peer. Isolated hosts emit nothing, as in Node.Emit.
func (c *Columnar) EmitRange(rc *gossip.ColRound, lo, hi int) {
	alive := rc.Alive
	out := rc.Out
	for i := lo; i < hi; i++ {
		if !alive[i] {
			continue
		}
		id := gossip.NodeID(i)
		peer, ok := rc.Pick(id)
		if !ok {
			continue
		}
		n := int(c.tlen[i])
		copy(c.snap[i*c.cfg.TableSize:i*c.cfg.TableSize+n], c.table[i*c.stride:i*c.stride+n])
		c.snapLen[i] = int32(n)
		out = append(out, gossip.ColMsg{To: peer, From: id})
	}
	rc.Out = out
}

// Deliver implements gossip.ColumnarAgent: append the emitter's
// snapshot to the destination's row (the merge headroom guarantees it
// fits) and normalize — exactly Node.Receive, in emitter order.
func (c *Columnar) Deliver(rc *gossip.ColRound, msgs []gossip.ColMsg) {
	for _, m := range msgs {
		to, from := int(m.To), int(m.From)
		n := int(c.tlen[to])
		sn := int(c.snapLen[from])
		copy(c.table[to*c.stride+n:to*c.stride+n+sn], c.snap[from*c.cfg.TableSize:from*c.cfg.TableSize+sn])
		c.tlen[to] = int32(n + sn)
		c.normalize(to)
	}
}

// EndRange implements gossip.ColumnarAgent (Node.EndRound is empty).
func (c *Columnar) EndRange(rc *gossip.ColRound, lo, hi int) {}

// ExchangePairs implements gossip.ColExchanger: both ends rebuild
// from the union multiset of the two tables (Node.Exchange — normalize
// is a function of the multiset, so the merge buffer order is
// immaterial). Each row's merge headroom holds both tables.
func (c *Columnar) ExchangePairs(rc *gossip.ColRound, pairs []gossip.Pair) {
	for _, pr := range pairs {
		a, b := int(pr.A), int(pr.B)
		alen, blen := int(c.tlen[a]), int(c.tlen[b])
		// Append a's table to b's row first, then b's (still intact)
		// table to a's row.
		copy(c.table[b*c.stride+blen:b*c.stride+blen+alen], c.table[a*c.stride:a*c.stride+alen])
		copy(c.table[a*c.stride+alen:a*c.stride+alen+blen], c.table[b*c.stride:b*c.stride+blen])
		c.tlen[a] = int32(alen + blen)
		c.tlen[b] = int32(alen + blen)
		c.normalize(a)
		c.normalize(b)
	}
}

// Best returns host id's current best candidate.
func (c *Columnar) Best(id gossip.NodeID) Candidate {
	cc := c.table[int(id)*c.stride]
	return Candidate{Value: cc.value, Owner: gossip.NodeID(cc.owner), Age: int(cc.age)}
}

// Estimate implements gossip.ColumnarAgent: the best live candidate's
// value.
func (c *Columnar) Estimate(id gossip.NodeID) (float64, bool) {
	if c.tlen[id] == 0 {
		return 0, false
	}
	return c.table[int(id)*c.stride].value, true
}
