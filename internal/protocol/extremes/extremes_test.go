package extremes

import (
	"testing"
	"testing/quick"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	if err := (Config{Cutoff: -1}).Validate(); err == nil {
		t.Error("negative cutoff accepted")
	}
	if err := (Config{TableSize: -1}).Validate(); err == nil {
		t.Error("negative table size accepted")
	}
	if err := (Config{Mode: Mode(9)}).Validate(); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestModeString(t *testing.T) {
	if Max.String() != "max" || Min.String() != "min" {
		t.Error("mode names wrong")
	}
}

func build(t *testing.T, values []float64, cfg Config, model gossip.Model, seed uint64) (*gossip.Engine, *env.Uniform) {
	t.Helper()
	e := env.NewUniform(len(values))
	agents := make([]gossip.Agent, len(values))
	for i, v := range values {
		agents[i] = New(gossip.NodeID(i), v, cfg)
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: model, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return engine, e
}

func TestMaxFloods(t *testing.T) {
	const n = 500
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	engine, _ := build(t, values, Config{Mode: Max}, gossip.PushPull, 1)
	engine.Run(20)
	for id, a := range engine.Agents() {
		est, ok := a.Estimate()
		if !ok || est != n-1 {
			t.Fatalf("host %d max estimate %v, %v; want %d", id, est, ok, n-1)
		}
	}
}

func TestMinFloods(t *testing.T) {
	const n = 500
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i + 10)
	}
	engine, _ := build(t, values, Config{Mode: Min}, gossip.PushPull, 2)
	engine.Run(20)
	for id, a := range engine.Agents() {
		est, ok := a.Estimate()
		if !ok || est != 10 {
			t.Fatalf("host %d min estimate %v, %v; want 10", id, est, ok)
		}
	}
}

// The headline dynamic behaviour: when the maximum's owner departs,
// every host's estimate falls back to the runner-up within cutoff +
// flood time.
func TestMaxAgesOutAfterOwnerDeparts(t *testing.T) {
	const n = 300
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	cfg := Config{Mode: Max, Cutoff: 15}
	engine, e := build(t, values, cfg, gossip.PushPull, 3)
	engine.Run(20)
	// Kill the top three hosts at once.
	e.Population.Fail(gossip.NodeID(n - 1))
	e.Population.Fail(gossip.NodeID(n - 2))
	e.Population.Fail(gossip.NodeID(n - 3))
	engine.Run(45)
	for id, a := range engine.Agents() {
		if !e.Population.Alive(gossip.NodeID(id)) {
			continue
		}
		est, ok := a.Estimate()
		if !ok || est != n-4 {
			t.Fatalf("host %d estimate %v, %v after departures; want %d", id, est, ok, n-4)
		}
	}
}

func TestMinAgesOutAfterOwnerDeparts(t *testing.T) {
	const n = 300
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	cfg := Config{Mode: Min, Cutoff: 15}
	engine, e := build(t, values, cfg, gossip.PushPull, 4)
	engine.Run(20)
	e.Population.Fail(0)
	engine.Run(45)
	for id, a := range engine.Agents() {
		if !e.Population.Alive(gossip.NodeID(id)) {
			continue
		}
		est, _ := a.Estimate()
		if est != 1 {
			t.Fatalf("host %d min estimate %v after owner departed; want 1", id, est)
		}
	}
}

// A joining host with a new extremum takes over.
func TestJoinRaisesMax(t *testing.T) {
	const n = 200
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	// Host n-1 has the future maximum but starts dead.
	values[n-1] = 1e6
	engine, e := build(t, values, Config{Mode: Max}, gossip.PushPull, 5)
	e.Population.Fail(gossip.NodeID(n - 1))
	engine.Run(15)
	if est, _ := engine.EstimateOf(0); est != n-2 {
		t.Fatalf("pre-join estimate %v, want %d", est, n-2)
	}
	e.Population.Revive(gossip.NodeID(n - 1))
	engine.Run(15)
	if est, _ := engine.EstimateOf(0); est != 1e6 {
		t.Errorf("post-join estimate %v, want 1e6", est)
	}
}

func TestOwnEntryAlwaysPresent(t *testing.T) {
	n := New(7, 3.5, Config{Mode: Max, Cutoff: 2})
	for r := 0; r < 20; r++ {
		n.BeginRound(r)
		n.EndRound(r)
	}
	if est, ok := n.Estimate(); !ok || est != 3.5 {
		t.Errorf("isolated estimate %v, %v; want own value 3.5", est, ok)
	}
	best := n.Best()
	if best.Owner != 7 || best.Age != 0 {
		t.Errorf("best = %+v, want own pinned entry", best)
	}
}

func TestTableBounded(t *testing.T) {
	cfg := Config{Mode: Max, TableSize: 4}
	n := New(0, 0, cfg)
	var incoming []Candidate
	for i := 1; i <= 50; i++ {
		incoming = append(incoming, Candidate{Value: float64(i), Owner: gossip.NodeID(i), Age: 0})
	}
	n.Receive(incoming)
	if got := len(n.Table()); got > 4 {
		t.Errorf("table size %d, want <= 4", got)
	}
	if best := n.Best(); best.Value != 50 {
		t.Errorf("best value %v, want 50", best.Value)
	}
}

// Merge properties: receive is idempotent and order-insensitive.
func TestReceiveIdempotentOrderInsensitive(t *testing.T) {
	prop := func(rawA, rawB []uint8) bool {
		mk := func(raw []uint8) []Candidate {
			var out []Candidate
			for i, r := range raw {
				if i >= 6 {
					break
				}
				owner := gossip.NodeID(r%20 + 1)
				// A host's value is immutable, so any two candidates
				// with the same owner must carry the same value.
				out = append(out, Candidate{
					Value: float64(owner) * 3,
					Owner: owner,
					Age:   int(r % 10),
				})
			}
			return out
		}
		a, b := mk(rawA), mk(rawB)

		n1 := New(0, 25, Config{Mode: Max})
		n1.Receive(a)
		n1.Receive(b)
		n1.Receive(b) // duplicate

		n2 := New(0, 25, Config{Mode: Max})
		n2.Receive(b)
		n2.Receive(a)

		t1, t2 := n1.Table(), n2.Table()
		if len(t1) != len(t2) {
			return false
		}
		for i := range t1 {
			if t1[i] != t2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExchangeSymmetric(t *testing.T) {
	a := New(0, 10, Config{Mode: Max})
	b := New(1, 20, Config{Mode: Max})
	a.Exchange(b)
	ea, _ := a.Estimate()
	eb, _ := b.Estimate()
	if ea != 20 || eb != 20 {
		t.Errorf("estimates after exchange = %v, %v; want 20, 20", ea, eb)
	}
	// Both tables contain both candidates.
	if len(a.Table()) != 2 || len(b.Table()) != 2 {
		t.Errorf("table sizes %d, %d; want 2, 2", len(a.Table()), len(b.Table()))
	}
}

// The push model floods and ages out too: Emit sends the table to one
// random peer per round.
func TestPushModelFloodsAndHeals(t *testing.T) {
	const n = 300
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	engine, e := build(t, values, Config{Mode: Max, Cutoff: 20}, gossip.Push, 6)
	engine.Run(25)
	for id, a := range engine.Agents() {
		if est, _ := a.Estimate(); est != n-1 {
			t.Fatalf("host %d push-model max %v, want %d", id, est, n-1)
		}
	}
	e.Population.Fail(gossip.NodeID(n - 1))
	engine.Run(60)
	healed := 0
	for id, a := range engine.Agents() {
		if !e.Population.Alive(gossip.NodeID(id)) {
			continue
		}
		if est, _ := a.Estimate(); est == n-2 {
			healed++
		}
	}
	// Push-only flooding is slower than push/pull; require the large
	// majority healed rather than every host.
	if healed < (n-1)*9/10 {
		t.Errorf("only %d/%d hosts healed under push model", healed, n-1)
	}
}

func TestAccessorsAndIsolatedEmit(t *testing.T) {
	node := New(4, 2.5, Config{Mode: Min})
	if node.ID() != 4 {
		t.Errorf("ID = %d", node.ID())
	}
	if node.Value() != 2.5 {
		t.Errorf("Value = %v", node.Value())
	}
	// An isolated host emits nothing.
	if envs := node.Emit(0, nil, func() (gossip.NodeID, bool) { return 0, false }); len(envs) != 0 {
		t.Errorf("isolated Emit = %v", envs)
	}
	// A connected host sends exactly its table.
	envs := node.Emit(0, nil, func() (gossip.NodeID, bool) { return 9, true })
	if len(envs) != 1 || envs[0].To != 9 {
		t.Fatalf("Emit = %+v", envs)
	}
	sent := envs[0].Payload.([]Candidate)
	if len(sent) != 1 || sent[0].Owner != 4 {
		t.Errorf("payload = %+v", sent)
	}
}

func TestTieBreakDeterministic(t *testing.T) {
	a := New(0, 5, Config{Mode: Max})
	a.Receive([]Candidate{{Value: 5, Owner: 9, Age: 0}})
	if best := a.Best(); best.Owner != 0 {
		t.Errorf("tie broke to owner %d, want 0 (lowest id)", best.Owner)
	}
}
