package epoch

import (
	"dynagg/internal/gossip"
)

// Columnar is the struct-of-arrays form of epoch-based averaging: one
// value owns the whole population's epoch clocks, mass vectors, and
// inboxes as dense columns (gossip.ColumnarAgent). The epoch-tagged
// mass does not fit ColMsg's inline pair, so messages travel
// payload-free and Deliver reads the emitter's per-round out columns
// via ColMsg.From — every message a host emits in a round carries the
// same (epoch, w, v), so one column slot per host suffices.
//
// Like the classic Node, the protocol is push-only (it implements no
// exchange). Byte-identical to a population of *Node agents on the
// classic push path.
type Columnar struct {
	cfg Config

	v0    []float64
	epoch []int
	age   []int
	w, v  []float64

	inW, inV []float64
	inEpoch  []int
	received []bool

	// outW/outV/outEpoch hold the payload carried by each of host i's
	// messages this round, written in EmitRange and read by Deliver.
	outW, outV []float64
	outEpoch   []int

	prevEst    []float64
	hasPrevEst []bool
}

var _ gossip.ColumnarAgent = (*Columnar)(nil)

// NewColumnar returns the columnar population with data values vs, all
// hosts sharing cfg.
func NewColumnar(vs []float64, cfg Config) *Columnar {
	if cfg.Maturity == 0 {
		cfg.Maturity = cfg.Length / 2
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := len(vs)
	c := &Columnar{
		cfg:        cfg,
		v0:         append([]float64(nil), vs...),
		epoch:      make([]int, n),
		age:        make([]int, n),
		w:          make([]float64, n),
		v:          make([]float64, n),
		inW:        make([]float64, n),
		inV:        make([]float64, n),
		inEpoch:    make([]int, n),
		received:   make([]bool, n),
		outW:       make([]float64, n),
		outV:       make([]float64, n),
		outEpoch:   make([]int, n),
		prevEst:    make([]float64, n),
		hasPrevEst: make([]bool, n),
	}
	for i, v0 := range vs {
		c.w[i] = 1
		c.v[i] = v0
	}
	return c
}

// Len implements gossip.ColumnarAgent.
func (c *Columnar) Len() int { return len(c.w) }

// Epoch returns host id's current epoch number.
func (c *Columnar) Epoch(id gossip.NodeID) int { return c.epoch[id] }

// reset begins a new epoch at host i from its initial state
// (Node.reset).
func (c *Columnar) reset(i, epoch int) {
	if c.w[i] > 1e-12 {
		c.prevEst[i] = c.v[i] / c.w[i]
		c.hasPrevEst[i] = true
	}
	c.epoch[i] = epoch
	c.age[i] = 0
	c.w[i] = 1
	c.v[i] = c.v0[i]
}

// BeginRange implements gossip.ColumnarAgent: advance each live host's
// epoch clock (Node.BeginRound).
func (c *Columnar) BeginRange(rc *gossip.ColRound, lo, hi int) {
	alive := rc.Alive
	for i := lo; i < hi; i++ {
		if !alive[i] {
			continue
		}
		c.inW[i] = 0
		c.inV[i] = 0
		c.inEpoch[i] = c.epoch[i]
		c.received[i] = false
		c.age[i]++
		if c.age[i] >= c.cfg.Length {
			c.reset(i, c.epoch[i]+1)
		}
	}
}

// EmitRange implements gossip.ColumnarAgent: epoch-tagged Push-Sum
// halves, in the same peer-then-self order as Node.Emit.
func (c *Columnar) EmitRange(rc *gossip.ColRound, lo, hi int) {
	alive := rc.Alive
	out := rc.Out
	for i := lo; i < hi; i++ {
		if !alive[i] {
			continue
		}
		id := gossip.NodeID(i)
		c.outEpoch[i] = c.epoch[i]
		peer, ok := rc.Pick(id)
		if !ok {
			// Isolated host: all mass returns to self.
			c.outW[i] = c.w[i]
			c.outV[i] = c.v[i]
			out = append(out, gossip.ColMsg{To: id, From: id})
			continue
		}
		c.outW[i] = c.w[i] / 2
		c.outV[i] = c.v[i] / 2
		out = append(out,
			gossip.ColMsg{To: peer, From: id},
			gossip.ColMsg{To: id, From: id},
		)
	}
	rc.Out = out
}

// Deliver implements gossip.ColumnarAgent: mass from older epochs is
// dropped, mass from a newer epoch preempts everything accumulated so
// far (Node.Receive), folded in emitter order.
func (c *Columnar) Deliver(rc *gossip.ColRound, msgs []gossip.ColMsg) {
	for _, m := range msgs {
		to, from := m.To, m.From
		ep := c.outEpoch[from]
		switch {
		case ep < c.inEpoch[to]:
			// Stale epoch: discard.
		case ep > c.inEpoch[to]:
			c.inEpoch[to] = ep
			c.inW[to] = c.outW[from]
			c.inV[to] = c.outV[from]
			c.received[to] = true
		default:
			c.inW[to] += c.outW[from]
			c.inV[to] += c.outV[from]
			c.received[to] = true
		}
	}
}

// EndRange implements gossip.ColumnarAgent (Node.EndRound): adopt a
// newer epoch by restarting from the initial state plus the received
// mass, otherwise replace the mass with the inbox.
func (c *Columnar) EndRange(rc *gossip.ColRound, lo, hi int) {
	alive := rc.Alive
	for i := lo; i < hi; i++ {
		if !alive[i] || !c.received[i] {
			continue
		}
		if c.inEpoch[i] > c.epoch[i] {
			c.reset(i, c.inEpoch[i])
			c.w[i] += c.inW[i]
			c.v[i] += c.inV[i]
			continue
		}
		c.w[i] = c.inW[i]
		c.v[i] = c.inV[i]
	}
}

// Estimate implements gossip.ColumnarAgent: the current epoch's
// running ratio once mature, otherwise the previous epoch's final
// estimate (Node.Estimate).
func (c *Columnar) Estimate(id gossip.NodeID) (float64, bool) {
	if c.age[id] >= c.cfg.Maturity && c.w[id] > 1e-12 {
		return c.v[id] / c.w[id], true
	}
	if c.hasPrevEst[id] {
		return c.prevEst[id], true
	}
	if c.w[id] > 1e-12 {
		return c.v[id] / c.w[id], true
	}
	return 0, false
}
