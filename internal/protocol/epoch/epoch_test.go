package epoch

import (
	"math"
	"testing"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{Length: 10, Maturity: 5}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (Config{Length: 0}).Validate(); err == nil {
		t.Error("zero length accepted")
	}
	if err := (Config{Length: 5, Maturity: 6}).Validate(); err == nil {
		t.Error("maturity beyond length accepted")
	}
	if err := (Config{Length: 5, Maturity: -1}).Validate(); err == nil {
		t.Error("negative maturity accepted")
	}
}

func TestNewDefaultsMaturity(t *testing.T) {
	n := New(0, 1, Config{Length: 10})
	if n.cfg.Maturity != 5 {
		t.Errorf("default maturity = %d, want Length/2 = 5", n.cfg.Maturity)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with Length 0 did not panic")
		}
	}()
	New(0, 1, Config{Length: -1})
}

func build(t *testing.T, values []float64, cfg Config, seed uint64) (*gossip.Engine, *env.Uniform) {
	t.Helper()
	e := env.NewUniform(len(values))
	agents := make([]gossip.Agent, len(values))
	for i, v := range values {
		agents[i] = New(gossip.NodeID(i), v, cfg)
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: gossip.Push, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return engine, e
}

func TestConvergesWithinEpoch(t *testing.T) {
	values := make([]float64, 300)
	for i := range values {
		values[i] = float64(i % 100)
	}
	truth := 49.5
	engine, _ := build(t, values, Config{Length: 30, Maturity: 20}, 1)
	engine.Run(25) // mature, before the first reset
	for id, a := range engine.Agents() {
		est, ok := a.Estimate()
		if !ok {
			t.Fatalf("host %d has no estimate", id)
		}
		if math.Abs(est-truth) > 1 {
			t.Errorf("host %d estimate %v, want ≈ %v", id, est, truth)
		}
	}
}

func TestEpochAdvances(t *testing.T) {
	values := make([]float64, 50)
	engine, _ := build(t, values, Config{Length: 10, Maturity: 5}, 2)
	engine.Run(35)
	for id, a := range engine.Agents() {
		n := a.(*Node)
		if n.Epoch() < 3 {
			t.Errorf("host %d epoch %d after 35 rounds of length-10 epochs", id, n.Epoch())
		}
	}
}

// All hosts settle on the same epoch: a straggler adopting gossip from
// a newer epoch resets and joins it.
func TestEpochsSynchronize(t *testing.T) {
	values := make([]float64, 100)
	engine, _ := build(t, values, Config{Length: 12, Maturity: 6}, 3)
	engine.Run(40)
	first := engine.Agents()[0].(*Node).Epoch()
	for id, a := range engine.Agents() {
		if e := a.(*Node).Epoch(); abs(e-first) > 1 {
			t.Errorf("host %d epoch %d far from host 0's %d", id, e, first)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// A membership change is eventually reflected — after the epoch that
// follows the change completes — unlike static Push-Sum, which never
// recovers from correlated loss.
func TestRecoversAfterFailureViaReset(t *testing.T) {
	const n = 400
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i % 100)
	}
	engine, e := build(t, values, Config{Length: 25, Maturity: 18}, 4)
	engine.Run(25)
	// Fail the top-valued half.
	var sum float64
	var cnt int
	for i, v := range values {
		if v >= 50 {
			e.Population.Fail(gossip.NodeID(i))
		} else {
			sum += v
			cnt++
		}
	}
	truth := sum / float64(cnt)
	// Run through one full epoch plus maturity so the new epoch's
	// estimate reflects only survivors.
	engine.Run(50)
	var meanErr float64
	ests := engine.Estimates()
	for _, est := range ests {
		meanErr += math.Abs(est - truth)
	}
	meanErr /= float64(len(ests))
	if meanErr > 3 {
		t.Errorf("mean error %v two epochs after failure, want < 3", meanErr)
	}
}

// Before maturity, hosts serve the previous epoch's estimate rather
// than the noisy fresh one.
func TestImmatureEpochServesPreviousEstimate(t *testing.T) {
	n := New(0, 10, Config{Length: 10, Maturity: 8})
	// Simulate a completed epoch with a converged state.
	n.w, n.v = 1, 42 // pretend the epoch converged to 42
	n.age = 9
	n.BeginRound(0) // age hits 10 → reset to epoch 1
	if n.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", n.Epoch())
	}
	est, ok := n.Estimate()
	if !ok || est != 42 {
		t.Errorf("immature estimate = %v, %v; want previous epoch's 42", est, ok)
	}
}

// Stale-epoch mass is discarded on receive.
func TestStaleEpochMassDiscarded(t *testing.T) {
	n := New(0, 10, Config{Length: 100, Maturity: 1})
	n.epoch = 5
	n.BeginRound(0)
	n.Receive(Message{Epoch: 3, W: 100, V: 100})
	n.EndRound(0)
	if n.w == 100 {
		t.Error("stale mass adopted")
	}
}

// Newer-epoch mass preempts current-epoch mass within the same round.
func TestNewerEpochPreempts(t *testing.T) {
	n := New(0, 10, Config{Length: 100, Maturity: 1})
	n.BeginRound(0)
	n.Receive(Message{Epoch: 0, W: 0.5, V: 5})
	n.Receive(Message{Epoch: 2, W: 0.25, V: 1})
	n.Receive(Message{Epoch: 0, W: 0.5, V: 5}) // stale relative to 2 now
	n.EndRound(0)
	if n.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", n.Epoch())
	}
	// State = initial (1, 10) + received (0.25, 1).
	if math.Abs(n.w-1.25) > 1e-9 || math.Abs(n.v-11) > 1e-9 {
		t.Errorf("post-adoption mass = (%v, %v), want (1.25, 11)", n.w, n.v)
	}
}

// Within one epoch (static set, no resets), exchanges conserve mass.
func TestConservationWithinEpoch(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	engine, _ := build(t, values, Config{Length: 1000, Maturity: 1}, 5)
	var wantW, wantV float64
	for _, a := range engine.Agents() {
		n := a.(*Node)
		wantW += n.w
		wantV += n.v
	}
	engine.Run(10)
	var gotW, gotV float64
	for _, a := range engine.Agents() {
		n := a.(*Node)
		gotW += n.w
		gotV += n.v
	}
	if math.Abs(gotW-wantW) > 1e-9 || math.Abs(gotV-wantV) > 1e-9 {
		t.Errorf("mass drifted within epoch: (%v,%v) -> (%v,%v)", wantW, wantV, gotW, gotV)
	}
}
