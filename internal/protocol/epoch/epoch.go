// Package epoch implements the epoch-based dynamic aggregation
// baseline discussed in §II-C (and attributed to Jelasity & Montresor
// in the related work): a static protocol — Push-Sum here — restarted
// at periodic intervals via weak clock synchronization. Every message
// carries an epoch counter; a host that hears a higher epoch resets
// its protocol state and adopts it.
//
// The paper's critique, which the ablation experiment reproduces: the
// optimal epoch length depends on network size (convergence time), yet
// network size is itself an aggregate; epochs shorter than convergence
// never produce a good estimate, while long epochs serve stale values
// after membership changes.
package epoch

import (
	"fmt"

	"dynagg/internal/gossip"
	"dynagg/internal/xrand"
)

// Message is Push-Sum mass tagged with an epoch number.
type Message struct {
	Epoch int
	W, V  float64
}

// Config parametrizes the epoch protocol.
type Config struct {
	// Length is the number of rounds per epoch.
	Length int
	// Maturity is the age (in rounds) after which the running epoch's
	// estimate is trusted; before that, the previous epoch's final
	// estimate is reported. Zero defaults to Length/2.
	Maturity int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Length < 1 {
		return fmt.Errorf("epoch: Length must be >= 1, got %d", c.Length)
	}
	if c.Maturity < 0 || c.Maturity > c.Length {
		return fmt.Errorf("epoch: Maturity %d outside [0, Length]", c.Maturity)
	}
	return nil
}

// Node is one epoch-based averaging host.
type Node struct {
	id  gossip.NodeID
	cfg Config
	v0  float64

	epoch int
	age   int // rounds spent in the current epoch
	w, v  float64

	inW, inV float64
	inEpoch  int // highest epoch seen in this round's inbox
	received bool

	// out is the scratch payload referenced by EmitAppend envelopes.
	out Message

	prevEst    float64
	hasPrevEst bool
}

var (
	_ gossip.Agent         = (*Node)(nil)
	_ gossip.AppendEmitter = (*Node)(nil)
)

// New returns an epoch-averaging host with data value v0.
func New(id gossip.NodeID, v0 float64, cfg Config) *Node {
	if cfg.Maturity == 0 {
		cfg.Maturity = cfg.Length / 2
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Node{id: id, cfg: cfg, v0: v0, w: 1, v: v0}
}

// ID returns the host id.
func (n *Node) ID() gossip.NodeID { return n.id }

// Epoch returns the host's current epoch number.
func (n *Node) Epoch() int { return n.epoch }

// reset begins a new epoch from the host's initial state.
func (n *Node) reset(epoch int) {
	if n.w > 1e-12 {
		n.prevEst = n.v / n.w
		n.hasPrevEst = true
	}
	n.epoch = epoch
	n.age = 0
	n.w, n.v = 1, n.v0
}

// BeginRound implements gossip.Agent: advance the local epoch clock.
func (n *Node) BeginRound(round int) {
	n.inW, n.inV = 0, 0
	n.inEpoch = n.epoch
	n.received = false
	n.age++
	if n.age >= n.cfg.Length {
		n.reset(n.epoch + 1)
	}
}

// Emit implements gossip.Agent: epoch-tagged Push-Sum halves.
func (n *Node) Emit(round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	half := Message{Epoch: n.epoch, W: n.w / 2, V: n.v / 2}
	peer, ok := pick()
	if !ok {
		return []gossip.Envelope{{To: n.id, Payload: Message{Epoch: n.epoch, W: n.w, V: n.v}}}
	}
	return []gossip.Envelope{
		{To: peer, Payload: half},
		{To: n.id, Payload: half},
	}
}

// EmitAppend implements gossip.AppendEmitter: the same emission with
// round-scoped payloads pointing at per-host scratch.
func (n *Node) EmitAppend(dst []gossip.Envelope, round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	peer, ok := pick()
	if !ok {
		n.out = Message{Epoch: n.epoch, W: n.w, V: n.v}
		return append(dst, gossip.Envelope{To: n.id, Payload: &n.out})
	}
	n.out = Message{Epoch: n.epoch, W: n.w / 2, V: n.v / 2}
	return append(dst,
		gossip.Envelope{To: peer, Payload: &n.out},
		gossip.Envelope{To: n.id, Payload: &n.out},
	)
}

// Receive implements gossip.Agent: mass from older epochs is dropped;
// mass from a newer epoch triggers adoption at round end. Both the
// boxed Message of Emit and the scratch-backed *Message of EmitAppend
// are accepted.
func (n *Node) Receive(payload any) {
	var m Message
	switch p := payload.(type) {
	case *Message:
		m = *p
	case Message:
		m = p
	default:
		panic(fmt.Sprintf("epoch: unexpected payload %T", payload))
	}
	switch {
	case m.Epoch < n.inEpoch:
		return // stale epoch: discard
	case m.Epoch > n.inEpoch:
		// Newer epoch preempts everything accumulated so far.
		n.inEpoch = m.Epoch
		n.inW, n.inV = m.W, m.V
		n.received = true
	default:
		n.inW += m.W
		n.inV += m.V
		n.received = true
	}
}

// EndRound implements gossip.Agent.
func (n *Node) EndRound(round int) {
	if !n.received {
		return
	}
	if n.inEpoch > n.epoch {
		// Adopt the newer epoch: restart from the initial state plus
		// the received mass.
		n.reset(n.inEpoch)
		n.w += n.inW
		n.v += n.inV
		return
	}
	n.w, n.v = n.inW, n.inV
}

// Estimate implements gossip.Agent: the current epoch's running ratio
// once mature, otherwise the previous epoch's final estimate.
func (n *Node) Estimate() (float64, bool) {
	if n.age >= n.cfg.Maturity && n.w > 1e-12 {
		return n.v / n.w, true
	}
	if n.hasPrevEst {
		return n.prevEst, true
	}
	if n.w > 1e-12 {
		return n.v / n.w, true
	}
	return 0, false
}
