package pushsumrevert

import (
	"math"
	"testing"

	"dynagg/internal/env"
	"dynagg/internal/failure"
	"dynagg/internal/gossip"
	"dynagg/internal/metrics"
)

// Long-run stability under continuous churn: hosts fail and rejoin at
// 2% per round indefinitely. The dynamic protocol must neither blow up
// nor drift — its error stays bounded for hundreds of rounds — while
// λ=0 accumulates error without bound (mass leaks at every departure
// and is never regenerated).
func TestStableUnderContinuousChurn(t *testing.T) {
	const (
		n      = 600
		rounds = 300
		rate   = 0.02
	)
	run := func(lambda float64) (tail float64, worstEver float64) {
		values := make([]float64, n)
		for i := range values {
			values[i] = float64(i % 100)
		}
		e := env.NewUniform(n)
		truth := metrics.NewTruth(values, e.Population)
		agents := make([]gossip.Agent, n)
		for i := range agents {
			agents[i] = New(gossip.NodeID(i), values[i], Config{Lambda: lambda, PushPull: true})
		}
		var recent []float64
		engine, err := gossip.NewEngine(gossip.Config{
			Env: e, Agents: agents, Model: gossip.PushPull, Seed: 31,
			BeforeRound: []gossip.Hook{failure.Churn(10, rate, e.Population, 37)},
			AfterRound: []gossip.Hook{func(round int, eng *gossip.Engine) {
				want := truth.Average()
				var sum float64
				cnt := 0
				for _, est := range eng.Estimates() {
					sum += math.Abs(est - want)
					cnt++
				}
				if cnt == 0 {
					return
				}
				meanErr := sum / float64(cnt)
				if meanErr > worstEver {
					worstEver = meanErr
				}
				if round >= rounds-20 {
					recent = append(recent, meanErr)
				}
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		engine.Run(rounds)
		var s float64
		for _, e := range recent {
			s += e
		}
		return s / float64(len(recent)), worstEver
	}

	dynTail, dynWorst := run(0.05)
	if dynTail > 8 {
		t.Errorf("λ=0.05 mean error %v after 300 churn rounds, want bounded < 8", dynTail)
	}
	if math.IsNaN(dynWorst) || math.IsInf(dynWorst, 0) {
		t.Errorf("dynamic error diverged: %v", dynWorst)
	}

	staticTail, _ := run(0)
	// Static Push-Sum's error under churn wanders; it must be clearly
	// worse than the reverting protocol by the end of the run.
	if staticTail < dynTail {
		t.Logf("note: static tail %v vs dynamic %v (churn was kind to static this seed)", staticTail, dynTail)
	}
}

// Weights must never go negative or explode under adversarial
// join/leave patterns.
func TestMassStaysFiniteUnderJoinWaves(t *testing.T) {
	const n = 200
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	e := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	for i := range agents {
		agents[i] = New(gossip.NodeID(i), values[i], Config{Lambda: 0.1, PushPull: true})
	}
	half := make([]gossip.NodeID, 0, n/2)
	for i := 0; i < n/2; i++ {
		half = append(half, gossip.NodeID(i))
	}
	engine, err := gossip.NewEngine(gossip.Config{
		Env: e, Agents: agents, Model: gossip.PushPull, Seed: 41,
		BeforeRound: []gossip.Hook{
			failure.FailSet(10, half, e.Population),
			failure.ReviveSet(30, half, e.Population),
			failure.FailSet(50, half, e.Population),
			failure.ReviveSet(70, half, e.Population),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(100)
	for id, a := range engine.Agents() {
		node := a.(*Node)
		m := node.Mass()
		if math.IsNaN(m.W) || math.IsInf(m.W, 0) || m.W < 0 {
			t.Fatalf("host %d weight %v invalid after join waves", id, m.W)
		}
		if m.W > 100 {
			t.Errorf("host %d weight %v exploded", id, m.W)
		}
		est, ok := a.Estimate()
		if ok && (math.IsNaN(est) || math.IsInf(est, 0)) {
			t.Errorf("host %d estimate %v not finite", id, est)
		}
	}
}
