package pushsumrevert

import (
	"dynagg/internal/gossip"
)

// Columnar is the struct-of-arrays form of Push-Sum-Revert: one value
// owns the whole population's mass vectors, reversion targets, and
// Full-Transfer windows as dense columns (gossip.ColumnarAgent). All
// variants are supported — basic λ reversion, Adaptive
// (indegree-scaled) reversion, Full-Transfer, and PushPull (pairwise
// exchanges via gossip.ColExchanger, reversion applied once per round
// at range end) — and each is byte-identical to a population of *Node
// agents on the classic path.
type Columnar struct {
	cfg Config

	v0, w0, mv0 []float64
	w, v        []float64
	inW, inV    []float64
	inMsgs      []int32

	// Full-Transfer estimate windows, flattened host-major: host i's
	// ring buffer is histW[i*Window : (i+1)*Window].
	histW, histV     []float64
	histPos, histLen []int32

	est    []float64
	hasEst []bool
}

var _ gossip.ColExchanger = (*Columnar)(nil)

// NewColumnar returns the columnar population with data values vs,
// all hosts sharing cfg.
func NewColumnar(vs []float64, cfg Config) *Columnar {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := len(vs)
	w0 := cfg.Weight
	if w0 == 0 {
		w0 = 1
	}
	c := &Columnar{
		cfg:    cfg,
		v0:     append([]float64(nil), vs...),
		w0:     make([]float64, n),
		mv0:    make([]float64, n),
		w:      make([]float64, n),
		v:      make([]float64, n),
		inW:    make([]float64, n),
		inV:    make([]float64, n),
		inMsgs: make([]int32, n),
		est:    make([]float64, n),
		hasEst: make([]bool, n),
	}
	if cfg.FullTransfer {
		c.histW = make([]float64, n*cfg.Window)
		c.histV = make([]float64, n*cfg.Window)
		c.histPos = make([]int32, n)
		c.histLen = make([]int32, n)
	}
	for i := 0; i < n; i++ {
		c.w0[i] = w0
		c.mv0[i] = w0 * vs[i]
		c.w[i] = w0
		c.v[i] = w0 * vs[i]
		c.est[i] = vs[i]
		c.hasEst[i] = true
	}
	return c
}

// Len implements gossip.ColumnarAgent.
func (c *Columnar) Len() int { return len(c.w) }

// Config returns the population's configuration.
func (c *Columnar) Config() Config { return c.cfg }

// Mass returns host id's current mass vector.
func (c *Columnar) Mass(id gossip.NodeID) Mass { return Mass{W: c.w[id], V: c.v[id]} }

// Reset restores host id to its initial endowment, discarding held
// mass and the Full-Transfer window — the columnar twin of Node.Reset.
func (c *Columnar) Reset(id gossip.NodeID) {
	i := int(id)
	c.w[i], c.v[i] = c.w0[i], c.mv0[i]
	c.inW[i], c.inV[i] = 0, 0
	c.inMsgs[i] = 0
	if c.cfg.FullTransfer {
		lo := i * c.cfg.Window
		for j := lo; j < lo+c.cfg.Window; j++ {
			c.histW[j], c.histV[j] = 0, 0
		}
		c.histPos[i], c.histLen[i] = 0, 0
	}
	c.est[i], c.hasEst[i] = c.v0[i], true
}

// BeginRange implements gossip.ColumnarAgent.
func (c *Columnar) BeginRange(rc *gossip.ColRound, lo, hi int) {
	alive := rc.Alive
	for i := lo; i < hi; i++ {
		if alive[i] {
			c.inW[i] = 0
			c.inV[i] = 0
			c.inMsgs[i] = 0
		}
	}
}

// EmitRange implements gossip.ColumnarAgent: the variant-specific
// emissions of Node.Emit as one flat loop, same intra-host envelope
// order.
func (c *Columnar) EmitRange(rc *gossip.ColRound, lo, hi int) {
	λ := c.cfg.Lambda
	alive := rc.Alive
	out := rc.Out
	switch {
	case c.cfg.FullTransfer:
		N := c.cfg.Parcels
		for i := lo; i < hi; i++ {
			if !alive[i] {
				continue
			}
			id := gossip.NodeID(i)
			parcel := gossip.Mass{
				W: ((1-λ)*c.w[i] + λ*c.w0[i]) / float64(N),
				V: ((1-λ)*c.v[i] + λ*c.mv0[i]) / float64(N),
			}
			for j := 0; j < N; j++ {
				if peer, ok := rc.Pick(id); ok {
					out = append(out, gossip.ColMsg{To: peer, From: id, Mass: parcel})
				} else {
					// No reachable peer: this parcel stays home rather
					// than evaporating.
					out = append(out, gossip.ColMsg{To: id, From: id, Mass: parcel})
				}
			}
		}
	case c.cfg.Adaptive:
		// Reversion is applied on receipt, scaled by indegree; the
		// message itself is plain Push-Sum mass.
		for i := lo; i < hi; i++ {
			if !alive[i] {
				continue
			}
			id := gossip.NodeID(i)
			peer, ok := rc.Pick(id)
			if !ok {
				out = append(out, gossip.ColMsg{To: id, From: id, Mass: gossip.Mass{W: c.w[i], V: c.v[i]}})
				continue
			}
			half := gossip.Mass{W: c.w[i] / 2, V: c.v[i] / 2}
			out = append(out,
				gossip.ColMsg{To: peer, From: id, Mass: half},
				gossip.ColMsg{To: id, From: id, Mass: half},
			)
		}
	default:
		// Basic: the reverted mass is split between peer and self.
		for i := lo; i < hi; i++ {
			if !alive[i] {
				continue
			}
			id := gossip.NodeID(i)
			half := gossip.Mass{
				W: ((1-λ)*c.w[i] + λ*c.w0[i]) / 2,
				V: ((1-λ)*c.v[i] + λ*c.mv0[i]) / 2,
			}
			peer, ok := rc.Pick(id)
			if !ok {
				out = append(out, gossip.ColMsg{To: id, From: id,
					Mass: gossip.Mass{W: 2 * half.W, V: 2 * half.V}})
				continue
			}
			out = append(out,
				gossip.ColMsg{To: peer, From: id, Mass: half},
				gossip.ColMsg{To: id, From: id, Mass: half},
			)
		}
	}
	rc.Out = out
}

// Deliver implements gossip.ColumnarAgent: the variant-specific
// receive fold of Node.Receive over the message column.
func (c *Columnar) Deliver(rc *gossip.ColRound, msgs []gossip.ColMsg) {
	if c.cfg.Adaptive {
		// §III-A: add λ/2 of the initial mass per message received,
		// damping the received mass by (1-λ).
		λ := c.cfg.Lambda
		for _, m := range msgs {
			c.inW[m.To] += (1-λ)*m.Mass.W + (λ/2)*c.w0[m.To]
			c.inV[m.To] += (1-λ)*m.Mass.V + (λ/2)*c.mv0[m.To]
			c.inMsgs[m.To]++
		}
		return
	}
	for _, m := range msgs {
		c.inW[m.To] += m.Mass.W
		c.inV[m.To] += m.Mass.V
		c.inMsgs[m.To]++
	}
}

// DeliverMsg folds a single message, for composite protocols
// (invertavg) that route a mixed message column and dispatch
// per-message instead of handing over whole batches.
func (c *Columnar) DeliverMsg(m gossip.ColMsg) {
	if c.cfg.Adaptive {
		λ := c.cfg.Lambda
		c.inW[m.To] += (1-λ)*m.Mass.W + (λ/2)*c.w0[m.To]
		c.inV[m.To] += (1-λ)*m.Mass.V + (λ/2)*c.mv0[m.To]
		c.inMsgs[m.To]++
		return
	}
	c.inW[m.To] += m.Mass.W
	c.inV[m.To] += m.Mass.V
	c.inMsgs[m.To]++
}

// ExchangePairs implements gossip.ColExchanger: the pairwise mass
// averaging of Node.Exchange as a flat loop. As on the classic path,
// the reversion decay is applied once per round in EndRange, not per
// exchange.
func (c *Columnar) ExchangePairs(rc *gossip.ColRound, pairs []gossip.Pair) {
	for _, pr := range pairs {
		a, b := pr.A, pr.B
		mw := (c.w[a] + c.w[b]) / 2
		mv := (c.v[a] + c.v[b]) / 2
		c.w[a], c.w[b] = mw, mw
		c.v[a], c.v[b] = mv, mv
	}
}

// EndRange implements gossip.ColumnarAgent.
func (c *Columnar) EndRange(rc *gossip.ColRound, lo, hi int) {
	alive := rc.Alive
	if c.cfg.PushPull {
		// Mass was updated in place by ExchangePairs; apply the
		// reversion decay exactly once per round (Node.endRoundPull).
		λ := c.cfg.Lambda
		for i := lo; i < hi; i++ {
			if !alive[i] {
				continue
			}
			c.w[i] = λ*c.w0[i] + (1-λ)*c.w[i]
			c.v[i] = λ*c.mv0[i] + (1-λ)*c.v[i]
			c.refreshEstimate(i)
		}
		return
	}
	if c.cfg.FullTransfer {
		W := int32(c.cfg.Window)
		for i := lo; i < hi; i++ {
			if !alive[i] {
				continue
			}
			// The host keeps only what arrived; rounds with no
			// arrivals leave it empty-handed until the next delivery.
			c.w[i] = c.inW[i]
			c.v[i] = c.inV[i]
			if c.inMsgs[i] > 0 && c.inW[i] > 0 {
				base := int32(i) * W
				pos := c.histPos[i]
				c.histW[base+pos] = c.inW[i]
				c.histV[base+pos] = c.inV[i]
				c.histPos[i] = (pos + 1) % W
				if c.histLen[i] < W {
					c.histLen[i]++
				}
			}
			c.refreshWindowEstimate(i)
		}
		return
	}
	for i := lo; i < hi; i++ {
		if !alive[i] {
			continue
		}
		c.w[i] = c.inW[i]
		c.v[i] = c.inV[i]
		c.refreshEstimate(i)
	}
}

// Estimate implements gossip.ColumnarAgent.
func (c *Columnar) Estimate(id gossip.NodeID) (float64, bool) {
	return c.est[id], c.hasEst[id]
}

func (c *Columnar) refreshEstimate(i int) {
	if c.w[i] > 1e-12 {
		c.est[i] = c.v[i] / c.w[i]
		c.hasEst[i] = true
	}
}

func (c *Columnar) refreshWindowEstimate(i int) {
	base := i * c.cfg.Window
	var sw, sv float64
	for j := 0; j < int(c.histLen[i]); j++ {
		sw += c.histW[base+j]
		sv += c.histV[base+j]
	}
	if sw > 1e-12 {
		c.est[i] = sv / sw
		c.hasEst[i] = true
	}
}
