package pushsumrevert

import (
	"dynagg/internal/gossip"
	"dynagg/internal/wire"
)

// WireKindRevert tags Push-Sum-Revert records in live columnar
// batches.
const WireKindRevert uint8 = 2

// WireKind implements the live engine's ColumnarProtocol wire hooks.
func (c *Columnar) WireKind() uint8 { return WireKindRevert }

// AppendWire appends message m's payload — its (w, v) mass, 16 fixed
// bytes. All variants put plain mass on the wire; the Adaptive
// variant's damping happens on receipt, indexed by the destination.
func (c *Columnar) AppendWire(dst []byte, m gossip.ColMsg) []byte {
	return wire.AppendMass(dst, m.Mass.W, m.Mass.V)
}

// DeliverWire folds one received mass into host to's inbox columns via
// the variant-aware DeliverMsg (Adaptive reversion reads only the
// destination's own initial-mass columns, so the fold is safe across
// tick and process boundaries).
func (c *Columnar) DeliverWire(to gossip.NodeID, src []byte) ([]byte, error) {
	w, v, rest, err := wire.DecodeMass(src)
	if err != nil {
		return nil, err
	}
	c.DeliverMsg(gossip.ColMsg{To: to, Mass: gossip.Mass{W: w, V: v}})
	return rest, nil
}
