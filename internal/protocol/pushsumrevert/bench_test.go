package pushsumrevert

import (
	"testing"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
)

func benchNetwork(b *testing.B, n int, cfg Config, model gossip.Model) *gossip.Engine {
	b.Helper()
	e := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = New(gossip.NodeID(i), float64(i%100), cfg)
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: model, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return engine
}

// BenchmarkRoundBasic measures one push round of basic Push-Sum-Revert
// over 10,000 hosts.
func BenchmarkRoundBasic(b *testing.B) {
	engine := benchNetwork(b, 10000, Config{Lambda: 0.01}, gossip.Push)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Step()
	}
}

// BenchmarkRoundPushPull measures one push/pull round over 10,000
// hosts.
func BenchmarkRoundPushPull(b *testing.B) {
	engine := benchNetwork(b, 10000, Config{Lambda: 0.01, PushPull: true}, gossip.PushPull)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Step()
	}
}

// BenchmarkRoundFullTransfer measures one full-transfer round (4
// parcels) over 10,000 hosts.
func BenchmarkRoundFullTransfer(b *testing.B) {
	engine := benchNetwork(b, 10000, Config{Lambda: 0.1, FullTransfer: true, Parcels: 4, Window: 3}, gossip.Push)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Step()
	}
}
