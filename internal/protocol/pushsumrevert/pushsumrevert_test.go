package pushsumrevert

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"lambda in range", Config{Lambda: 0.5}, true},
		{"lambda negative", Config{Lambda: -0.1}, false},
		{"lambda above one", Config{Lambda: 1.1}, false},
		{"full transfer valid", Config{Lambda: 0.1, FullTransfer: true, Parcels: 4, Window: 3}, true},
		{"full transfer no parcels", Config{FullTransfer: true, Window: 3}, false},
		{"full transfer no window", Config{FullTransfer: true, Parcels: 4}, false},
		{"full transfer + adaptive", Config{FullTransfer: true, Parcels: 4, Window: 3, Adaptive: true}, false},
		{"full transfer + pushpull", Config{FullTransfer: true, Parcels: 4, Window: 3, PushPull: true}, false},
		{"adaptive + pushpull", Config{Adaptive: true, PushPull: true}, false},
		{"adaptive alone", Config{Lambda: 0.1, Adaptive: true}, true},
		{"pushpull alone", Config{Lambda: 0.1, PushPull: true}, true},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error, got nil", c.name)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config did not panic")
		}
	}()
	New(0, 1, Config{Lambda: 2})
}

func buildEngine(t *testing.T, values []float64, cfg Config, model gossip.Model, seed uint64) (*gossip.Engine, *env.Uniform) {
	t.Helper()
	e := env.NewUniform(len(values))
	agents := make([]gossip.Agent, len(values))
	for i, v := range values {
		agents[i] = New(gossip.NodeID(i), v, cfg)
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: model, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return engine, e
}

func totalMass(engine *gossip.Engine) (w, v float64) {
	for _, a := range engine.Agents() {
		m := a.(*Node).Mass()
		w += m.W
		v += m.V
	}
	return w, v
}

// §III's central lemma: with a static node set, the Revert step
// conserves mass, so Σw = n and Σv = Σv₀ forever — for any λ.
func TestRevertConservesMassStaticSet(t *testing.T) {
	prop := func(raw []int8, lambdaRaw uint8, seed uint64) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 48 {
			raw = raw[:48]
		}
		lambda := float64(lambdaRaw) / 255 // λ ∈ [0,1]
		values := make([]float64, len(raw))
		var wantV float64
		for i, r := range raw {
			values[i] = float64(r)
			wantV += float64(r)
		}
		e := env.NewUniform(len(values))
		agents := make([]gossip.Agent, len(values))
		for i, v := range values {
			agents[i] = New(gossip.NodeID(i), v, Config{Lambda: lambda})
		}
		engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: gossip.Push, Seed: seed})
		if err != nil {
			return false
		}
		engine.Run(6)
		gotW, gotV := totalMass(engine)
		wantW := float64(len(values))
		return math.Abs(gotW-wantW) < 1e-6*(1+wantW) &&
			math.Abs(gotV-wantV) < 1e-6*(1+math.Abs(wantV))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Push/pull mode with the once-per-round reversion also conserves mass
// on a static set.
func TestRevertConservesMassPushPull(t *testing.T) {
	values := []float64{5, 10, 15, 20, 25, 30, 35, 40}
	engine, _ := buildEngine(t, values, Config{Lambda: 0.25, PushPull: true}, gossip.PushPull, 3)
	wantW, wantV := totalMass(engine)
	engine.Run(25)
	gotW, gotV := totalMass(engine)
	if math.Abs(gotW-wantW) > 1e-6 || math.Abs(gotV-wantV) > 1e-6 {
		t.Errorf("mass drifted: (%v,%v) -> (%v,%v)", wantW, wantV, gotW, gotV)
	}
}

// λ=0 must reproduce static Push-Sum: identical estimates for identical
// seeds.
func TestLambdaZeroIsPushSum(t *testing.T) {
	values := make([]float64, 100)
	for i := range values {
		values[i] = float64(i)
	}
	engine, _ := buildEngine(t, values, Config{Lambda: 0}, gossip.Push, 7)
	engine.Run(30)
	truth := 49.5
	for id, a := range engine.Agents() {
		est, _ := a.Estimate()
		if math.Abs(est-truth) > 0.05 {
			t.Errorf("host %d estimate %v, want ≈ %v", id, est, truth)
		}
	}
}

func TestConvergesWithReversion(t *testing.T) {
	values := make([]float64, 400)
	for i := range values {
		values[i] = float64(i % 100)
	}
	truth := 49.5
	engine, _ := buildEngine(t, values, Config{Lambda: 0.01, PushPull: true}, gossip.PushPull, 11)
	engine.Run(40)
	ests := engine.Estimates()
	var worst float64
	for _, e := range ests {
		if d := math.Abs(e - truth); d > worst {
			worst = d
		}
	}
	// Reversion bounds accuracy, so allow a coarser tolerance than
	// static Push-Sum; the estimate must still be close.
	if worst > 5 {
		t.Errorf("worst estimate error %v with λ=0.01, want < 5", worst)
	}
}

// The headline behaviour (Figure 10a): after failing the highest-valued
// half, Push-Sum-Revert reconverges to the survivors' average while
// λ=0 stays stuck near the old average.
func TestReconvergesAfterCorrelatedFailure(t *testing.T) {
	const n = 600
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i % 100)
	}

	run := func(lambda float64) float64 {
		engine, e := buildEngine(t, values, Config{Lambda: lambda, PushPull: true}, gossip.PushPull, 13)
		engine.Run(20)
		// Fail the highest-valued half.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return values[order[a]] > values[order[b]] })
		for _, id := range order[:n/2] {
			e.Population.Fail(gossip.NodeID(id))
		}
		engine.Run(60)
		// Survivors' true average: values 0..49 → 24.5.
		var sum float64
		var cnt int
		for _, id := range e.Population.AliveIDs() {
			sum += values[id]
			cnt++
		}
		truth := sum / float64(cnt)
		ests := engine.Estimates()
		var meanErr float64
		for _, est := range ests {
			meanErr += math.Abs(est - truth)
		}
		return meanErr / float64(len(ests))
	}

	static := run(0)
	dynamic := run(0.1)
	if dynamic > 6 {
		t.Errorf("λ=0.1 mean error %v after failure, want < 6", dynamic)
	}
	if static < 2*dynamic {
		t.Errorf("static error %v should be far worse than dynamic %v", static, dynamic)
	}
}

// Uncorrelated failures should not hurt even λ=0 (Figure 8).
func TestUncorrelatedFailureHarmless(t *testing.T) {
	const n = 600
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i % 100)
	}
	engine, e := buildEngine(t, values, Config{Lambda: 0.01, PushPull: true}, gossip.PushPull, 17)
	engine.Run(20)
	// Fail every other host: value-independent.
	for i := 0; i < n; i += 2 {
		e.Population.Fail(gossip.NodeID(i))
	}
	engine.Run(30)
	var sum float64
	var cnt int
	for _, id := range e.Population.AliveIDs() {
		sum += values[id]
		cnt++
	}
	truth := sum / float64(cnt)
	for _, est := range engine.Estimates() {
		if math.Abs(est-truth) > 5 {
			t.Errorf("estimate %v far from truth %v after uncorrelated failure", est, truth)
		}
	}
}

func TestFullTransferConverges(t *testing.T) {
	const n = 500
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i % 100)
	}
	truth := 49.5
	cfg := Config{Lambda: 0.1, FullTransfer: true, Parcels: 4, Window: 3}
	engine, _ := buildEngine(t, values, cfg, gossip.Push, 19)
	engine.Run(40)
	ests := engine.Estimates()
	var meanErr float64
	for _, est := range ests {
		meanErr += math.Abs(est - truth)
	}
	meanErr /= float64(len(ests))
	if meanErr > 5 {
		t.Errorf("full-transfer mean error %v, want < 5", meanErr)
	}
}

// Full-Transfer removes the self-bias: at equal λ its converged error
// should be no worse than the basic protocol's (Figure 10b vs 10a).
func TestFullTransferBeatsBasicAtHighLambda(t *testing.T) {
	const n = 800
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i % 100)
	}
	truth := 49.5
	meanErr := func(cfg Config, model gossip.Model) float64 {
		engine, _ := buildEngine(t, values, cfg, model, 23)
		engine.Run(50)
		var s float64
		ests := engine.Estimates()
		for _, est := range ests {
			s += math.Abs(est - truth)
		}
		return s / float64(len(ests))
	}
	basic := meanErr(Config{Lambda: 0.5}, gossip.Push)
	full := meanErr(Config{Lambda: 0.5, FullTransfer: true, Parcels: 4, Window: 3}, gossip.Push)
	if full > basic {
		t.Errorf("full-transfer error %v worse than basic %v at λ=0.5", full, basic)
	}
}

func TestAdaptiveConverges(t *testing.T) {
	const n = 500
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i % 100)
	}
	truth := 49.5
	engine, _ := buildEngine(t, values, Config{Lambda: 0.05, Adaptive: true}, gossip.Push, 29)
	engine.Run(40)
	var meanErr float64
	ests := engine.Estimates()
	for _, est := range ests {
		meanErr += math.Abs(est - truth)
	}
	meanErr /= float64(len(ests))
	if meanErr > 5 {
		t.Errorf("adaptive mean error %v, want < 5", meanErr)
	}
}

func TestAccessors(t *testing.T) {
	cfg := Config{Lambda: 0.25}
	n := New(5, 12.5, cfg)
	if n.ID() != 5 {
		t.Errorf("ID = %v", n.ID())
	}
	if n.Value() != 12.5 {
		t.Errorf("Value = %v", n.Value())
	}
	if n.Config() != cfg {
		t.Errorf("Config = %+v", n.Config())
	}
	if m := n.Mass(); m.W != 1 || m.V != 12.5 {
		t.Errorf("initial mass = %+v", m)
	}
	if est, ok := n.Estimate(); !ok || est != 12.5 {
		t.Errorf("initial estimate = %v, %v", est, ok)
	}
}

// An isolated Full-Transfer host must not lose mass: parcels with no
// peer return home.
func TestFullTransferIsolatedKeepsMass(t *testing.T) {
	cfg := Config{Lambda: 0, FullTransfer: true, Parcels: 4, Window: 3}
	n := New(0, 10, cfg)
	for r := 0; r < 5; r++ {
		n.BeginRound(r)
		envs := n.Emit(r, nil, func() (gossip.NodeID, bool) { return 0, false })
		for _, e := range envs {
			if e.To != 0 {
				t.Fatalf("isolated host addressed parcel to %d", e.To)
			}
			n.Receive(e.Payload)
		}
		n.EndRound(r)
	}
	if m := n.Mass(); math.Abs(m.W-1) > 1e-9 || math.Abs(m.V-10) > 1e-9 {
		t.Errorf("mass after isolated rounds = %+v, want {1 10}", m)
	}
	if est, _ := n.Estimate(); math.Abs(est-10) > 1e-9 {
		t.Errorf("estimate = %v, want 10", est)
	}
}

// Weighted averaging: with non-uniform weights the network converges
// on Σwᵢvᵢ/Σwᵢ, and the reversion regenerates the *weighted* mass
// after a correlated departure.
func TestWeightedAverage(t *testing.T) {
	const n = 400
	values := make([]float64, n)
	weights := make([]float64, n)
	var num, den float64
	for i := range values {
		values[i] = float64(i % 100)
		weights[i] = 1 + float64(i%4) // weights 1..4
		num += weights[i] * values[i]
		den += weights[i]
	}
	want := num / den

	e := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	for i := range agents {
		// λ=0.1 so the post-failure recovery completes within the test
		// horizon; the price is a coarser pre-failure plateau.
		agents[i] = New(gossip.NodeID(i), values[i],
			Config{Lambda: 0.1, Weight: weights[i], PushPull: true})
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: gossip.PushPull, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(40)
	// λ=0.1 leaves each host a self-bias proportional to |v₀ − avg|
	// (§III-A), so individual estimates can be ~10 off; the population
	// mean must still sit on the weighted average.
	var meanEst float64
	for id, a := range engine.Agents() {
		est, _ := a.Estimate()
		meanEst += est
		if math.Abs(est-want) > 15 {
			t.Fatalf("host %d weighted estimate %v, want ≈ %v", id, est, want)
		}
		if a.(*Node).Weight() != weights[id] {
			t.Fatalf("host %d Weight() = %v", id, a.(*Node).Weight())
		}
	}
	meanEst /= float64(n)
	if math.Abs(meanEst-want) > 3 {
		t.Fatalf("mean weighted estimate %v, want ≈ %v", meanEst, want)
	}

	// Fail the high-value half; survivors' weighted average is the
	// recovery target.
	var snum, sden float64
	for i, v := range values {
		if v >= 50 {
			e.Population.Fail(gossip.NodeID(i))
		} else {
			snum += weights[i] * v
			sden += weights[i]
		}
	}
	swant := snum / sden
	engine.Run(80)
	var meanErr float64
	cnt := 0
	for _, est := range engine.Estimates() {
		meanErr += math.Abs(est - swant)
		cnt++
	}
	meanErr /= float64(cnt)
	if meanErr > 6 {
		t.Errorf("post-failure weighted error %v, want < 6 (target %v)", meanErr, swant)
	}
}

func TestWeightValidation(t *testing.T) {
	if err := (Config{Weight: -1}).Validate(); err == nil {
		t.Error("negative weight accepted")
	}
	// Zero weight defaults to 1.
	node := New(0, 5, Config{})
	if node.Weight() != 1 {
		t.Errorf("default weight = %v, want 1", node.Weight())
	}
}

// The reversion step pulls an injected perturbation back toward the
// initial value: after many solo rounds with λ>0 the mass returns to
// (1, v₀).
func TestReversionDecaysPerturbation(t *testing.T) {
	n := New(0, 10, Config{Lambda: 0.5, PushPull: true})
	// Perturb the node's mass far from its initial value.
	n.w, n.v = 3, -50
	for r := 0; r < 40; r++ {
		n.BeginRound(r)
		n.EndRound(r) // push/pull mode: reversion applies at round end
	}
	if math.Abs(n.w-1) > 1e-6 || math.Abs(n.v-10) > 1e-6 {
		t.Errorf("mass did not revert: w=%v v=%v, want 1, 10", n.w, n.v)
	}
}
