// Package pushsumrevert implements the paper's first contribution:
// Push-Sum-Revert (§III), a dynamic distributed-averaging protocol
// that maintains a running estimate under silent host departures.
//
// After every gossip exchange, each host decays its mass vector toward
// its initial mass by a reversion constant λ:
//
//	w ← λ·1  + (1−λ)·Σŵ
//	v ← λ·v₀ + (1−λ)·Σv̂
//
// With a static node set the Revert step conserves mass exactly (§III
// proves Σ revert(vᵢ) = Σ vᵢ), so the protocol behaves like Push-Sum.
// When hosts vanish and take mass with them, the reversion regenerates
// mass from the survivors' initial values, pulling the system back to
// the true average of the *remaining* hosts. Larger λ reconverges
// faster but leaves a larger steady-state error (Figure 10a).
//
// Three optimizations from §III-A are implemented:
//
//   - Full-Transfer: a host exports its entire mass each round as N
//     parcels to independently chosen peers and estimates from the sum
//     of the last T rounds in which it received mass. Removing the
//     retained self-share removes the estimate's bias toward the local
//     initial value (Figure 10b).
//   - Push/pull exchange: pairwise mass averaging (Karp et al.),
//     roughly halving initial convergence; λ reversion is applied once
//     per round at round end.
//   - Adaptive λ: instead of a fixed λ once per round, add λ/2 of the
//     initial mass per message received (including the self message).
//     Hosts with high indegree — which receive extra mass that works
//     against reversion — revert proportionally harder; expected total
//     reversion stays λ per round.
package pushsumrevert

import (
	"fmt"

	"dynagg/internal/gossip"
	"dynagg/internal/xrand"
)

// Mass is the gossiped (weight, value) vector.
type Mass struct {
	W float64
	V float64
}

// Config selects the protocol variant.
type Config struct {
	// Lambda is the reversion constant λ ∈ [0, 1]. Zero reproduces
	// static Push-Sum exactly.
	Lambda float64
	// Weight is the host's initial weight w₀; zero means 1. With
	// non-uniform weights the network converges on the weighted
	// average Σwᵢvᵢ/Σwᵢ (Kempe et al.'s weighted averaging, which the
	// paper builds on), and the reversion decays toward (w₀, w₀·v₀)
	// so the weighting survives departures.
	Weight float64
	// FullTransfer enables the §III-A optimization: export all mass
	// each round in Parcels parcels and estimate over a Window of
	// recent rounds.
	FullTransfer bool
	// Parcels is the number of mass parcels N under Full-Transfer
	// (the paper's Figure 10b uses 4). Ignored otherwise.
	Parcels int
	// Window is the number of recent mass-bearing rounds T averaged
	// into the estimate under Full-Transfer (the paper uses 3).
	Window int
	// Adaptive enables indegree-scaled reversion (push model only).
	Adaptive bool
	// PushPull declares that the node will be driven by the engine's
	// push/pull model (pairwise Exchange calls) rather than push
	// emission. The reversion step then runs once per round at round
	// end. Figures 8 and 10a use this mode.
	PushPull bool
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Lambda < 0 || c.Lambda > 1 {
		return fmt.Errorf("pushsumrevert: Lambda %v outside [0,1]", c.Lambda)
	}
	if c.Weight < 0 {
		return fmt.Errorf("pushsumrevert: negative Weight %v", c.Weight)
	}
	if c.FullTransfer {
		if c.Parcels < 1 {
			return fmt.Errorf("pushsumrevert: FullTransfer needs Parcels >= 1, got %d", c.Parcels)
		}
		if c.Window < 1 {
			return fmt.Errorf("pushsumrevert: FullTransfer needs Window >= 1, got %d", c.Window)
		}
		if c.Adaptive {
			return fmt.Errorf("pushsumrevert: FullTransfer and Adaptive are mutually exclusive")
		}
		if c.PushPull {
			return fmt.Errorf("pushsumrevert: FullTransfer and PushPull are mutually exclusive")
		}
	}
	if c.Adaptive && c.PushPull {
		return fmt.Errorf("pushsumrevert: Adaptive and PushPull are mutually exclusive")
	}
	return nil
}

// Node is one Push-Sum-Revert host.
type Node struct {
	id  gossip.NodeID
	cfg Config
	v0  float64
	w0  float64
	mv0 float64 // initial value mass w₀·v₀, the reversion target for v

	w, v float64

	inW, inV float64
	inMsgs   int

	// out is the scratch payload referenced by EmitAppend envelopes
	// (every envelope of a round carries the same mass value, so one
	// scratch slot suffices even for Full-Transfer's N parcels).
	out Mass

	// Full-Transfer estimate window: the last Window rounds in which
	// mass arrived, as a ring buffer.
	histW, histV []float64
	histPos      int
	histLen      int

	est    float64
	hasEst bool
}

var (
	_ gossip.Agent         = (*Node)(nil)
	_ gossip.Exchanger     = (*Node)(nil)
	_ gossip.AppendEmitter = (*Node)(nil)
)

// New returns a Push-Sum-Revert host with data value v0.
func New(id gossip.NodeID, v0 float64, cfg Config) *Node {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	w0 := cfg.Weight
	if w0 == 0 {
		w0 = 1
	}
	n := &Node{id: id, cfg: cfg, v0: v0, w0: w0, mv0: w0 * v0, w: w0, v: w0 * v0}
	if cfg.FullTransfer {
		n.histW = make([]float64, cfg.Window)
		n.histV = make([]float64, cfg.Window)
	}
	n.est = v0
	n.hasEst = true
	return n
}

// NewObserver returns a zero-weight Push-Sum-Revert host: w₀ = 0 and
// v₀·w₀ = 0, so the host contributes no mass of its own and its
// reversion target is empty. It still receives, holds, and forwards
// mass like any other host, which makes its local v/w ratio converge
// to the population average without perturbing it — the read-only
// participant a query gateway needs. Its estimate stays invalid until
// the first mass actually arrives (w > 0), so callers can distinguish
// "not yet converged" from a real value.
//
// Because the reversion step decays toward zero mass, an observer
// destroys a λ fraction of whatever mass it holds each round; the
// population's own reversion regenerates it, exactly the silent-
// departure scenario §III is built to absorb.
func NewObserver(id gossip.NodeID, cfg Config) *Node {
	cfg.Weight = 0
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Node{id: id, cfg: cfg}
	if cfg.FullTransfer {
		n.histW = make([]float64, cfg.Window)
		n.histV = make([]float64, cfg.Window)
	}
	return n
}

// Reset restores the host to its freshly-constructed state: held and
// in-flight gossip mass is discarded, the initial endowment (w₀, w₀·v₀)
// re-sourced, and the Full-Transfer window cleared. It models a crashed
// process restarting from its local data value — the round-engine twin
// of the live cluster's kill-and-Replace choreography. Observers
// (w₀ = 0) reset to an empty, not-yet-converged state.
func (n *Node) Reset() {
	n.w, n.v = n.w0, n.mv0
	n.inW, n.inV = 0, 0
	n.inMsgs = 0
	n.out = Mass{}
	for i := range n.histW {
		n.histW[i], n.histV[i] = 0, 0
	}
	n.histPos, n.histLen = 0, 0
	n.est, n.hasEst = 0, false
	if n.w0 > 0 {
		n.est, n.hasEst = n.v0, true
	}
}

// ID returns the host id.
func (n *Node) ID() gossip.NodeID { return n.id }

// Value returns the host's initial data value v₀.
func (n *Node) Value() float64 { return n.v0 }

// Weight returns the host's initial weight w₀.
func (n *Node) Weight() float64 { return n.w0 }

// Mass returns the host's current mass vector.
func (n *Node) Mass() Mass { return Mass{W: n.w, V: n.v} }

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.cfg }

// BeginRound implements gossip.Agent.
func (n *Node) BeginRound(round int) {
	n.inW, n.inV = 0, 0
	n.inMsgs = 0
}

// Emit implements gossip.Agent.
func (n *Node) Emit(round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	λ := n.cfg.Lambda
	if n.cfg.FullTransfer {
		// Figure 4: the entire (reverted) mass leaves as N parcels to
		// independently selected peers; nothing is retained.
		N := n.cfg.Parcels
		parcel := Mass{
			W: ((1-λ)*n.w + λ*n.w0) / float64(N),
			V: ((1-λ)*n.v + λ*n.mv0) / float64(N),
		}
		out := make([]gossip.Envelope, 0, N)
		for i := 0; i < N; i++ {
			if peer, ok := pick(); ok {
				out = append(out, gossip.Envelope{To: peer, Payload: parcel})
			} else {
				// No reachable peer: this parcel stays home rather
				// than evaporating.
				out = append(out, gossip.Envelope{To: n.id, Payload: parcel})
			}
		}
		return out
	}
	if n.cfg.Adaptive {
		// Reversion is applied on receipt, scaled by indegree; the
		// message itself is plain Push-Sum mass.
		half := Mass{W: n.w / 2, V: n.v / 2}
		peer, ok := pick()
		if !ok {
			return []gossip.Envelope{{To: n.id, Payload: Mass{W: n.w, V: n.v}}}
		}
		return []gossip.Envelope{
			{To: peer, Payload: half},
			{To: n.id, Payload: half},
		}
	}
	// Figure 3: the reverted mass is split between peer and self.
	half := Mass{
		W: ((1-λ)*n.w + λ*n.w0) / 2,
		V: ((1-λ)*n.v + λ*n.mv0) / 2,
	}
	peer, ok := pick()
	if !ok {
		whole := Mass{W: 2 * half.W, V: 2 * half.V}
		return []gossip.Envelope{{To: n.id, Payload: whole}}
	}
	return []gossip.Envelope{
		{To: peer, Payload: half},
		{To: n.id, Payload: half},
	}
}

// EmitAppend implements gossip.AppendEmitter: the same emissions as
// Emit with round-scoped payloads pointing at per-host scratch, so the
// steady state performs no heap allocation.
func (n *Node) EmitAppend(dst []gossip.Envelope, round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	λ := n.cfg.Lambda
	if n.cfg.FullTransfer {
		N := n.cfg.Parcels
		n.out = Mass{
			W: ((1-λ)*n.w + λ*n.w0) / float64(N),
			V: ((1-λ)*n.v + λ*n.mv0) / float64(N),
		}
		for i := 0; i < N; i++ {
			if peer, ok := pick(); ok {
				dst = append(dst, gossip.Envelope{To: peer, Payload: &n.out})
			} else {
				dst = append(dst, gossip.Envelope{To: n.id, Payload: &n.out})
			}
		}
		return dst
	}
	if n.cfg.Adaptive {
		peer, ok := pick()
		if !ok {
			n.out = Mass{W: n.w, V: n.v}
			return append(dst, gossip.Envelope{To: n.id, Payload: &n.out})
		}
		n.out = Mass{W: n.w / 2, V: n.v / 2}
		return append(dst,
			gossip.Envelope{To: peer, Payload: &n.out},
			gossip.Envelope{To: n.id, Payload: &n.out},
		)
	}
	half := Mass{
		W: ((1-λ)*n.w + λ*n.w0) / 2,
		V: ((1-λ)*n.v + λ*n.mv0) / 2,
	}
	peer, ok := pick()
	if !ok {
		n.out = Mass{W: 2 * half.W, V: 2 * half.V}
		return append(dst, gossip.Envelope{To: n.id, Payload: &n.out})
	}
	n.out = half
	return append(dst,
		gossip.Envelope{To: peer, Payload: &n.out},
		gossip.Envelope{To: n.id, Payload: &n.out},
	)
}

// Receive implements gossip.Agent. Both the boxed Mass of Emit and
// the scratch-backed *Mass of EmitAppend are accepted.
func (n *Node) Receive(payload any) {
	var m Mass
	switch p := payload.(type) {
	case *Mass:
		m = *p
	case Mass:
		m = p
	default:
		panic(fmt.Sprintf("pushsumrevert: unexpected payload %T", payload))
	}
	if n.cfg.Adaptive {
		// §III-A: add λ/2 of the initial mass per message received,
		// damping the received mass by (1-λ) so that with the expected
		// two messages per round the update matches the fixed-λ rule.
		λ := n.cfg.Lambda
		n.inW += (1-λ)*m.W + (λ/2)*n.w0
		n.inV += (1-λ)*m.V + (λ/2)*n.mv0
	} else {
		n.inW += m.W
		n.inV += m.V
	}
	n.inMsgs++
}

// EndRound implements gossip.Agent.
func (n *Node) EndRound(round int) {
	if n.cfg.PushPull {
		// Mass was updated in place by Exchange; apply the reversion
		// decay exactly once per round.
		n.endRoundPull()
		return
	}
	if n.cfg.FullTransfer {
		// The host keeps only what arrived; rounds with no arrivals
		// leave it empty-handed until the next delivery.
		n.w, n.v = n.inW, n.inV
		if n.inMsgs > 0 && n.inW > 0 {
			n.histW[n.histPos] = n.inW
			n.histV[n.histPos] = n.inV
			n.histPos = (n.histPos + 1) % n.cfg.Window
			if n.histLen < n.cfg.Window {
				n.histLen++
			}
		}
		n.refreshWindowEstimate()
		return
	}
	n.w, n.v = n.inW, n.inV
	n.refreshEstimate()
}

// Exchange implements gossip.Exchanger: pairwise mass averaging.
// Under push/pull the engine never calls Emit/Receive; EndRound
// applies the reversion decay to the post-exchange mass.
func (n *Node) Exchange(peer gossip.Exchanger) {
	p := peer.(*Node)
	mw := (n.w + p.w) / 2
	mv := (n.v + p.v) / 2
	n.w, p.w = mw, mw
	n.v, p.v = mv, mv
}

// endRoundPull applies the once-per-round reversion decay used under
// the push/pull model.
func (n *Node) endRoundPull() {
	λ := n.cfg.Lambda
	n.w = λ*n.w0 + (1-λ)*n.w
	n.v = λ*n.mv0 + (1-λ)*n.v
	n.refreshEstimate()
}

func (n *Node) refreshEstimate() {
	if n.w > 1e-12 {
		n.est = n.v / n.w
		n.hasEst = true
	}
}

func (n *Node) refreshWindowEstimate() {
	var sw, sv float64
	for i := 0; i < n.histLen; i++ {
		sw += n.histW[i]
		sv += n.histV[i]
	}
	if sw > 1e-12 {
		n.est = sv / sw
		n.hasEst = true
	}
}

// Estimate implements gossip.Agent.
func (n *Node) Estimate() (float64, bool) { return n.est, n.hasEst }
