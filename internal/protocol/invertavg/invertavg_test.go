package invertavg

import (
	"math"
	"testing"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/sketch"
)

func build(t *testing.T, values []float64, lambda float64, pushPull bool, seed uint64) (*gossip.Engine, *env.Uniform) {
	t.Helper()
	e := env.NewUniform(len(values))
	model := gossip.Push
	if pushPull {
		model = gossip.PushPull
	}
	agents := make([]gossip.Agent, len(values))
	for i, v := range values {
		agents[i] = New(gossip.NodeID(i), v,
			sketchreset.Config{Params: sketch.DefaultParams, Identifiers: 1},
			pushsumrevert.Config{Lambda: lambda, PushPull: pushPull},
		)
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: model, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return engine, e
}

func TestEstimateIsProductOfParts(t *testing.T) {
	values := make([]float64, 300)
	for i := range values {
		values[i] = float64(i % 10)
	}
	engine, _ := build(t, values, 0.01, true, 1)
	engine.Run(20)
	n := engine.Agents()[0].(*Node)
	c, okC := n.Count().Estimate()
	a, okA := n.Avg().Estimate()
	est, ok := n.Estimate()
	if !okC || !okA || !ok {
		t.Fatal("missing sub-estimates")
	}
	if math.Abs(est-c*a) > 1e-9 {
		t.Errorf("estimate %v != count %v × avg %v", est, c, a)
	}
}

func TestSumConverges(t *testing.T) {
	const n = 1000
	values := make([]float64, n)
	var want float64
	for i := range values {
		values[i] = float64(i % 10)
		want += values[i]
	}
	engine, _ := build(t, values, 0.01, true, 2)
	engine.Run(25)
	est, ok := engine.EstimateOf(0)
	if !ok {
		t.Fatal("no estimate")
	}
	// Errors multiply: sketch (±3σ ≈ 30%) times averaging (small).
	if math.Abs(est-want) > 0.4*want {
		t.Errorf("sum estimate %v, want %v ± 40%%", est, want)
	}
}

// After correlated failures both halves self-heal, so the sum estimate
// tracks the survivors.
func TestSumRecoversAfterFailure(t *testing.T) {
	const n = 1000
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i % 10)
	}
	engine, e := build(t, values, 0.1, true, 3)
	engine.Run(20)
	// Fail the top-valued half (every value >= 5).
	var want float64
	for i, v := range values {
		if v >= 5 {
			e.Population.Fail(gossip.NodeID(i))
		} else {
			want += v
		}
	}
	engine.Run(40)
	ests := engine.Estimates()
	var mean float64
	for _, v := range ests {
		mean += v
	}
	mean /= float64(len(ests))
	if math.Abs(mean-want) > 0.5*want {
		t.Errorf("post-failure sum estimate %v, want ≈ %v", mean, want)
	}
}

func TestPushModeRuns(t *testing.T) {
	values := make([]float64, 200)
	for i := range values {
		values[i] = 5
	}
	engine, _ := build(t, values, 0.01, false, 4)
	engine.Run(20)
	est, ok := engine.EstimateOf(0)
	if !ok {
		t.Fatal("no estimate under push model")
	}
	want := 5.0 * 200
	if math.Abs(est-want) > 0.5*want {
		t.Errorf("push-mode sum estimate %v, want ≈ %v", est, want)
	}
}

func TestEstimatesFinite(t *testing.T) {
	values := make([]float64, 100)
	engine, _ := build(t, values, 0.5, true, 5)
	engine.Run(10)
	for id, a := range engine.Agents() {
		est, ok := a.Estimate()
		if !ok {
			continue
		}
		if math.IsNaN(est) || math.IsInf(est, 0) {
			t.Errorf("host %d estimate %v not finite", id, est)
		}
	}
}

func TestDefaultIdentifiers(t *testing.T) {
	n := New(0, 1, sketchreset.Config{Params: sketch.DefaultParams}, pushsumrevert.Config{})
	if n.Count().Owned() < 1 {
		t.Error("default Identifiers did not register an identifier")
	}
}
