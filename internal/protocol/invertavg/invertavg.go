// Package invertavg implements the paper's Invert-Average protocol
// (§IV-B, Figure 7): a cheap running estimate of the network-wide sum
// obtained by running Count-Sketch-Reset (network size) and
// Push-Sum-Revert (network average) side by side and combining them.
//
// Note: Figure 7 prints the combination as A_v/netsize, but the §IV-B
// text is explicit — "the two values multiplied together are an
// estimate of the network-wide sum" — and Push-Sum-Revert estimates
// the average, so the product is the sum. We follow the text.
//
// The attraction over multiple-insertion summation is bandwidth: the
// averaging half costs two floats per message, orders of magnitude
// less than a sketch, and one sketch instance amortizes over any
// number of concurrent summations.
package invertavg

import (
	"fmt"

	"dynagg/internal/gossip"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
	"dynagg/internal/xrand"
)

// payload wraps a sub-protocol message so Receive can route it.
type payload struct {
	count any // sketchreset payload, or nil
	avg   any // pushsumrevert payload, or nil
}

// Node runs one Count-Sketch-Reset host and one Push-Sum-Revert host
// at the same simulated device and reports the product of their
// estimates.
type Node struct {
	count *sketchreset.Node
	avg   *pushsumrevert.Node

	// wrapBuf holds EmitAppend's routing wrappers, reused across
	// rounds; envelopes point into it.
	wrapBuf []payload
}

var (
	_ gossip.Agent         = (*Node)(nil)
	_ gossip.Exchanger     = (*Node)(nil)
	_ gossip.AppendEmitter = (*Node)(nil)
)

// New returns an Invert-Average host with data value value.
func New(id gossip.NodeID, value float64, countCfg sketchreset.Config, avgCfg pushsumrevert.Config) *Node {
	if countCfg.Identifiers == 0 {
		countCfg.Identifiers = 1
	}
	return &Node{
		count: sketchreset.New(id, countCfg),
		avg:   pushsumrevert.New(id, value, avgCfg),
	}
}

// Count exposes the embedded Count-Sketch-Reset host.
func (n *Node) Count() *sketchreset.Node { return n.count }

// Avg exposes the embedded Push-Sum-Revert host.
func (n *Node) Avg() *pushsumrevert.Node { return n.avg }

// BeginRound implements gossip.Agent.
func (n *Node) BeginRound(round int) {
	n.count.BeginRound(round)
	n.avg.BeginRound(round)
}

// Emit implements gossip.Agent: both sub-protocols emit, with payloads
// wrapped for routing. Peer selections are drawn independently, as if
// the protocols ran as separate gossip streams.
func (n *Node) Emit(round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	var out []gossip.Envelope
	for _, env := range n.count.Emit(round, rng, pick) {
		out = append(out, gossip.Envelope{To: env.To, Payload: payload{count: env.Payload}})
	}
	for _, env := range n.avg.Emit(round, rng, pick) {
		out = append(out, gossip.Envelope{To: env.To, Payload: payload{avg: env.Payload}})
	}
	return out
}

// EmitAppend implements gossip.AppendEmitter: both sub-protocols emit
// through their own EmitAppend, and the routing wrappers live in a
// per-host buffer reused across rounds — amortized zero allocation.
func (n *Node) EmitAppend(dst []gossip.Envelope, round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	start := len(dst)
	dst = n.count.EmitAppend(dst, round, rng, pick)
	mid := len(dst)
	dst = n.avg.EmitAppend(dst, round, rng, pick)
	need := len(dst) - start
	if cap(n.wrapBuf) < need {
		n.wrapBuf = make([]payload, need)
	}
	buf := n.wrapBuf[:need]
	for i := start; i < len(dst); i++ {
		w := &buf[i-start]
		if i < mid {
			*w = payload{count: dst[i].Payload}
		} else {
			*w = payload{avg: dst[i].Payload}
		}
		dst[i].Payload = w
	}
	return dst
}

// Receive implements gossip.Agent. Both the boxed payload of Emit and
// the scratch-backed *payload of EmitAppend are accepted.
func (n *Node) Receive(p any) {
	var pl payload
	switch v := p.(type) {
	case *payload:
		pl = *v
	case payload:
		pl = v
	default:
		panic(fmt.Sprintf("invertavg: unexpected payload %T", p))
	}
	if pl.count != nil {
		n.count.Receive(pl.count)
	}
	if pl.avg != nil {
		n.avg.Receive(pl.avg)
	}
}

// EndRound implements gossip.Agent.
func (n *Node) EndRound(round int) {
	n.count.EndRound(round)
	n.avg.EndRound(round)
}

// Exchange implements gossip.Exchanger: both sub-protocols exchange
// with the same peer.
func (n *Node) Exchange(peer gossip.Exchanger) {
	p := peer.(*Node)
	n.count.Exchange(p.count)
	n.avg.Exchange(p.avg)
}

// Estimate implements gossip.Agent: size × average = sum.
func (n *Node) Estimate() (float64, bool) {
	c, ok1 := n.count.Estimate()
	a, ok2 := n.avg.Estimate()
	if !ok1 || !ok2 {
		return 0, false
	}
	return c * a, true
}
