package invertavg

import (
	"dynagg/internal/gossip"
	"dynagg/internal/protocol/pushsumrevert"
	"dynagg/internal/protocol/sketchreset"
)

// countTag marks the Count-Sketch-Reset half's messages in the From
// field's high bits — the columnar plane's version of the classic
// payload wrapper. The engine only reads ColMsg.To (routing, liveness),
// so From's upper bits are free for protocol routing; populations are
// bounded by 1<<30 hosts, far above anything the engine can simulate.
const countTag gossip.NodeID = 1 << 30

// Columnar is the struct-of-arrays form of Invert-Average: the
// columnar Count-Sketch-Reset and Push-Sum-Revert populations run side
// by side over one message column (gossip.ColumnarAgent +
// gossip.ColExchanger), with each message routed to its sub-protocol
// by the countTag bit. Emission order per host matches the classic
// Node exactly — count's message first (count's peer draw first), then
// the averaging half's — so PRNG streams and delivery folds are
// byte-identical to a population of *Node agents.
type Columnar struct {
	count *sketchreset.Columnar
	avg   *pushsumrevert.Columnar
}

var _ gossip.ColExchanger = (*Columnar)(nil)

// NewColumnar returns the columnar population of n Invert-Average
// hosts with data values vs.
func NewColumnar(vs []float64, countCfg sketchreset.Config, avgCfg pushsumrevert.Config) *Columnar {
	if countCfg.Identifiers == 0 {
		countCfg.Identifiers = 1
	}
	return &Columnar{
		count: sketchreset.NewColumnar(len(vs), countCfg),
		avg:   pushsumrevert.NewColumnar(vs, avgCfg),
	}
}

// Count exposes the embedded columnar Count-Sketch-Reset population.
func (c *Columnar) Count() *sketchreset.Columnar { return c.count }

// Avg exposes the embedded columnar Push-Sum-Revert population.
func (c *Columnar) Avg() *pushsumrevert.Columnar { return c.avg }

// Len implements gossip.ColumnarAgent.
func (c *Columnar) Len() int { return c.count.Len() }

// BeginRange implements gossip.ColumnarAgent.
func (c *Columnar) BeginRange(rc *gossip.ColRound, lo, hi int) {
	c.count.BeginRange(rc, lo, hi)
	c.avg.BeginRange(rc, lo, hi)
}

// EmitRange implements gossip.ColumnarAgent: per host, the sketch
// message first (with its own independent peer draw, tagged), then the
// averaging half's messages — the same per-host sub-protocol order,
// and therefore the same PRNG stream, as Node.Emit.
func (c *Columnar) EmitRange(rc *gossip.ColRound, lo, hi int) {
	alive := rc.Alive
	for i := lo; i < hi; i++ {
		if !alive[i] {
			continue
		}
		id := gossip.NodeID(i)
		if peer, ok := rc.Pick(id); ok {
			c.count.Snapshot(id)
			rc.Out = append(rc.Out, gossip.ColMsg{To: peer, From: id | countTag})
		}
		c.avg.EmitRange(rc, i, i+1)
	}
}

// Deliver implements gossip.ColumnarAgent: route each message to its
// sub-protocol by the countTag bit, in emitter order.
func (c *Columnar) Deliver(rc *gossip.ColRound, msgs []gossip.ColMsg) {
	for _, m := range msgs {
		if m.From&countTag != 0 {
			c.count.DeliverFrom(m.To, m.From&^countTag)
		} else {
			c.avg.DeliverMsg(m)
		}
	}
}

// EndRange implements gossip.ColumnarAgent.
func (c *Columnar) EndRange(rc *gossip.ColRound, lo, hi int) {
	c.count.EndRange(rc, lo, hi)
	c.avg.EndRange(rc, lo, hi)
}

// ExchangePairs implements gossip.ColExchanger: both sub-protocols
// exchange over the same pairs. The sub-states are disjoint, so
// running the whole batch through one sub-protocol and then the other
// is equivalent to the classic per-pair count-then-avg interleaving.
func (c *Columnar) ExchangePairs(rc *gossip.ColRound, pairs []gossip.Pair) {
	c.count.ExchangePairs(rc, pairs)
	c.avg.ExchangePairs(rc, pairs)
}

// Estimate implements gossip.ColumnarAgent: size × average = sum,
// exactly Node.Estimate.
func (c *Columnar) Estimate(id gossip.NodeID) (float64, bool) {
	cnt, ok1 := c.count.Estimate(id)
	avg, ok2 := c.avg.Estimate(id)
	if !ok1 || !ok2 {
		return 0, false
	}
	return cnt * avg, true
}
