// Package sketchcount implements Considine et al.'s static Sketch-Count
// protocol (the paper's Figure 2): hosts gossip FM counting sketches
// and OR-merge everything they receive. Because the sketch is
// duplicate-insensitive, redundant delivery is harmless and the
// network size (or a sum, via multiple insertions) can be estimated at
// every host.
//
// The protocol's weakness — and the motivation for Count-Sketch-Reset
// — is that bits only ever turn on: once a departed host's identifier
// bit has spread, no surviving host can tell whether another live host
// still sources it, so the estimate can only grow ("the estimate
// increases monotonically").
package sketchcount

import (
	"dynagg/internal/gossip"
	"dynagg/internal/sketch"
	"dynagg/internal/xrand"
)

// Node is one Sketch-Count host.
type Node struct {
	id    gossip.NodeID
	s     *sketch.Sketch
	scale float64 // identifiers inserted per unit of reported value

	// snap is the reusable snapshot sent by EmitAppend: a copy of the
	// sketch taken at emission time, so receivers merging on arrival
	// never observe this host's mid-round merges. Allocated lazily on
	// the first EmitAppend and reused every round after.
	snap *sketch.Sketch
}

var (
	_ gossip.Agent         = (*Node)(nil)
	_ gossip.Exchanger     = (*Node)(nil)
	_ gossip.AppendEmitter = (*Node)(nil)
)

// NewCount returns a host that contributes a single identifier, so the
// converged estimate is the network size.
func NewCount(id gossip.NodeID, p sketch.Params) *Node {
	n := &Node{id: id, s: sketch.New(p), scale: 1}
	n.s.Insert(uint64(id) + 1)
	return n
}

// NewCountScaled returns a host that contributes c identifiers and
// divides its estimate by c. Using c > 1 raises R without changing
// propagation time, sharpening estimates on very small networks (the
// paper uses c=100 for the trace runs).
func NewCountScaled(id gossip.NodeID, p sketch.Params, c int) *Node {
	n := &Node{id: id, s: sketch.New(p), scale: float64(c)}
	n.s.InsertValue(uint64(id)+1, c)
	return n
}

// NewSum returns a host that contributes value identifiers (the
// multiple-insertions summation of §IV-B), so the converged estimate
// is the network-wide sum.
func NewSum(id gossip.NodeID, p sketch.Params, value int) *Node {
	n := &Node{id: id, s: sketch.New(p), scale: 1}
	n.s.InsertValue(uint64(id)+1, value)
	return n
}

// ID returns the host id.
func (n *Node) ID() gossip.NodeID { return n.id }

// Sketch exposes the host's current sketch (shared, not copied).
func (n *Node) Sketch() *sketch.Sketch { return n.s }

// BeginRound implements gossip.Agent.
func (n *Node) BeginRound(round int) {}

// Emit implements gossip.Agent: the whole sketch goes to one random
// peer. (Figure 2 also sends to self; ORing a sketch into itself is
// the identity, so the self-copy is elided.)
func (n *Node) Emit(round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	peer, ok := pick()
	if !ok {
		return nil
	}
	return []gossip.Envelope{{To: peer, Payload: n.s.Clone()}}
}

// EmitAppend implements gossip.AppendEmitter: the same emission, but
// the snapshot is copied into a per-host buffer reused across rounds
// instead of freshly cloned — zero steady-state allocation.
func (n *Node) EmitAppend(dst []gossip.Envelope, round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	peer, ok := pick()
	if !ok {
		return dst
	}
	if n.snap == nil {
		n.snap = sketch.New(n.s.Params())
	}
	n.snap.CopyFrom(n.s)
	return append(dst, gossip.Envelope{To: peer, Payload: n.snap})
}

// Receive implements gossip.Agent. OR-merging immediately is safe:
// the engine delivers only after all hosts have emitted, and the merge
// is order-insensitive and idempotent. A sketch of a different shape
// can only come from the network (a mis-configured peer or a forged
// datagram) and is ignored rather than merged — one more way a radio
// message can be lost.
func (n *Node) Receive(payload any) {
	s := payload.(*sketch.Sketch)
	if s.Params() != n.s.Params() {
		return
	}
	n.s.Merge(s)
}

// EndRound implements gossip.Agent.
func (n *Node) EndRound(round int) {}

// Exchange implements gossip.Exchanger: mutual OR-merge, after which
// both sketches are identical.
func (n *Node) Exchange(peer gossip.Exchanger) {
	p := peer.(*Node)
	n.s.Merge(p.s)
	p.s.Merge(n.s)
}

// Estimate implements gossip.Agent.
func (n *Node) Estimate() (float64, bool) {
	return n.s.Estimate() / n.scale, true
}
