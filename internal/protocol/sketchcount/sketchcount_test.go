package sketchcount

import (
	"math"
	"testing"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/sketch"
)

func runCount(t *testing.T, n, rounds int, model gossip.Model, seed uint64) *gossip.Engine {
	t.Helper()
	e := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = NewCount(gossip.NodeID(i), sketch.DefaultParams)
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: model, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(rounds)
	return engine
}

func TestCountConvergesWithinFMError(t *testing.T) {
	const n = 2000
	engine := runCount(t, n, 25, gossip.PushPull, 1)
	tol := 3 * sketch.DefaultParams.ExpectedRelativeError() * n
	for id, a := range engine.Agents() {
		est, ok := a.Estimate()
		if !ok {
			t.Fatalf("host %d has no estimate", id)
		}
		if math.Abs(est-n) > tol {
			t.Errorf("host %d estimate %v, want %d ± %v", id, est, n, tol)
		}
	}
}

func TestAllHostsAgreeAfterConvergence(t *testing.T) {
	engine := runCount(t, 500, 25, gossip.PushPull, 2)
	first, _ := engine.Agents()[0].Estimate()
	for id, a := range engine.Agents() {
		est, _ := a.Estimate()
		if est != first {
			t.Errorf("host %d estimate %v differs from host 0's %v after convergence", id, est, first)
		}
	}
}

// The static sketch only grows: estimates are monotone non-decreasing
// round over round at every host.
func TestEstimateMonotone(t *testing.T) {
	const n = 500
	e := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = NewCount(gossip.NodeID(i), sketch.DefaultParams)
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: gossip.Push, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	prev := make([]float64, n)
	for r := 0; r < 20; r++ {
		engine.Step()
		for id, a := range engine.Agents() {
			est, _ := a.Estimate()
			if est < prev[id]-1e-9 {
				t.Fatalf("host %d estimate decreased %v -> %v at round %d", id, prev[id], est, r)
			}
			prev[id] = est
		}
	}
}

// Failures do not decrease the static estimate: the bits of departed
// hosts persist (the defect Count-Sketch-Reset fixes).
func TestFailureDoesNotShrinkEstimate(t *testing.T) {
	const n = 1000
	e := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = NewCount(gossip.NodeID(i), sketch.DefaultParams)
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: gossip.PushPull, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(20)
	before, _ := engine.Agents()[0].Estimate()
	for i := 1; i < n; i += 2 {
		e.Population.Fail(gossip.NodeID(i))
	}
	engine.Run(20)
	after, _ := engine.Agents()[0].Estimate()
	if after < before-1e-9 {
		t.Errorf("static sketch estimate shrank after failures: %v -> %v", before, after)
	}
}

func TestSumMode(t *testing.T) {
	const n = 400
	e := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	want := 0
	for i := 0; i < n; i++ {
		v := i % 8
		want += v
		agents[i] = NewSum(gossip.NodeID(i), sketch.DefaultParams, v)
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: gossip.PushPull, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(25)
	tol := 3 * sketch.DefaultParams.ExpectedRelativeError() * float64(want)
	est, ok := engine.Agents()[0].Estimate()
	if !ok || math.Abs(est-float64(want)) > tol {
		t.Errorf("sum estimate %v, want %d ± %v", est, want, tol)
	}
}

// NewCountScaled inflates identifiers and scales the estimate back:
// it should still estimate the host count, with lower variance.
func TestCountScaled(t *testing.T) {
	const n = 50
	e := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = NewCountScaled(gossip.NodeID(i), sketch.DefaultParams, 100)
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: gossip.PushPull, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(20)
	est, ok := engine.Agents()[0].Estimate()
	if !ok {
		t.Fatal("no estimate")
	}
	if math.Abs(est-n) > 0.5*n {
		t.Errorf("scaled count estimate %v, want ≈ %d", est, n)
	}
}

// Duplicate delivery is harmless: merging the same sketch twice changes
// nothing (OR-idempotence).
func TestDuplicateInsensitive(t *testing.T) {
	a := NewCount(0, sketch.DefaultParams)
	b := NewCount(1, sketch.DefaultParams)
	payload := b.Sketch().Clone()
	a.Receive(payload)
	onceEst, _ := a.Estimate()
	onceBits := a.Sketch().Bits()
	a.Receive(payload)
	a.Receive(payload)
	twiceEst, _ := a.Estimate()
	twiceBits := a.Sketch().Bits()
	if onceEst != twiceEst {
		t.Errorf("estimate changed on duplicate merge: %v -> %v", onceEst, twiceEst)
	}
	for i := range onceBits {
		if onceBits[i] != twiceBits[i] {
			t.Errorf("bits changed on duplicate merge at word %d", i)
		}
	}
}

// Exchange leaves both sketches identical (mutual OR).
func TestExchangeSymmetric(t *testing.T) {
	a := NewCount(0, sketch.DefaultParams)
	b := NewCount(1, sketch.DefaultParams)
	a.Exchange(b)
	if !a.Sketch().Equal(b.Sketch()) {
		t.Error("sketches differ after Exchange")
	}
	ea, _ := a.Estimate()
	eb, _ := b.Estimate()
	if ea != eb {
		t.Errorf("estimates differ after Exchange: %v vs %v", ea, eb)
	}
}

func TestEmitSendsSketchToPeer(t *testing.T) {
	a := NewCount(0, sketch.DefaultParams)
	envs := a.Emit(0, nil, func() (gossip.NodeID, bool) { return 7, true })
	if len(envs) != 1 || envs[0].To != 7 {
		t.Fatalf("Emit = %+v, want one envelope to 7", envs)
	}
	if _, ok := envs[0].Payload.(*sketch.Sketch); !ok {
		t.Errorf("payload type %T, want *sketch.Sketch", envs[0].Payload)
	}
	// Isolated host emits nothing.
	if envs := a.Emit(0, nil, func() (gossip.NodeID, bool) { return 0, false }); len(envs) != 0 {
		t.Errorf("isolated Emit = %+v, want none", envs)
	}
}

// A sketch of a different shape can only arrive over a network
// transport (mis-configured peer or forged datagram); merging it
// would panic, so Receive must ignore it like any other lost message.
func TestReceiveIgnoresMismatchedSketchShape(t *testing.T) {
	n := NewCount(0, sketch.DefaultParams)
	before, _ := n.Estimate()
	alien := sketch.New(sketch.Params{Bins: 4, Levels: 8})
	alien.Insert(999)
	n.Receive(alien)
	if after, _ := n.Estimate(); after != before {
		t.Errorf("mismatched sketch changed the estimate %v -> %v", before, after)
	}
}
