package sketchcount

import (
	"math"
	"math/bits"

	"dynagg/internal/gossip"
	"dynagg/internal/sketch"
)

// Columnar is the struct-of-arrays form of Sketch-Count: the whole
// population's FM bit sketches live in ONE flat []uint64 block (host-
// major, one word per bin) instead of one heap sketch per host, and
// the round phases run as flat loops over it (gossip.ColumnarAgent +
// gossip.ColExchanger). Gossip messages carry no payload on the
// columnar plane — Deliver OR-merges the emitter's start-of-round bins
// (double-buffered in shadow) into the destination's, which is exactly
// what the classic path's snapshot payloads did.
//
// Byte-identical to a population of *Node agents on the classic path:
// identifier placement, merge results, and estimates all match for
// both gossip models.
type Columnar struct {
	params sketch.Params
	scale  float64

	// bins is the population bit block; host i's sketch is
	// bins[i*Bins : (i+1)*Bins], low bit = level 0.
	bins []uint64
	// shadow double-buffers the bins at emission time so merges read
	// every emitter's start-of-round sketch regardless of delivery
	// order.
	shadow []uint64
}

var _ gossip.ColExchanger = (*Columnar)(nil)

// newColumnar allocates the empty population block.
func newColumnar(n int, p sketch.Params, scale float64) *Columnar {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Columnar{
		params: p,
		scale:  scale,
		bins:   make([]uint64, n*p.Bins),
		shadow: make([]uint64, n*p.Bins),
	}
}

// insert records one identifier into host i's sketch, with the same
// placement as sketch.Insert.
func (c *Columnar) insert(i int, ident uint64) {
	pos := c.params.Place(ident)
	c.bins[i*c.params.Bins+pos.Bin] |= 1 << uint(pos.Level)
}

// insertValue records value v attributed to owner at host i, the
// multiple-insertions summation of sketch.InsertValue.
func (c *Columnar) insertValue(i int, owner uint64, v int) {
	for j := 0; j < v; j++ {
		c.insert(i, owner<<20|uint64(j))
	}
}

// NewColumnarCount returns the columnar population of n hosts each
// contributing a single identifier (the columnar twin of NewCount), so
// the converged estimate is the network size.
func NewColumnarCount(n int, p sketch.Params) *Columnar {
	c := newColumnar(n, p, 1)
	for i := 0; i < n; i++ {
		c.insert(i, uint64(i)+1)
	}
	return c
}

// NewColumnarCountScaled returns the columnar population with each
// host contributing cnt identifiers and estimates divided by cnt (the
// columnar twin of NewCountScaled).
func NewColumnarCountScaled(n int, p sketch.Params, cnt int) *Columnar {
	c := newColumnar(n, p, float64(cnt))
	for i := 0; i < n; i++ {
		c.insertValue(i, uint64(i)+1, cnt)
	}
	return c
}

// NewColumnarSum returns the columnar population with host i
// contributing values[i] identifiers (the columnar twin of NewSum), so
// the converged estimate is the network-wide sum.
func NewColumnarSum(p sketch.Params, values []int) *Columnar {
	c := newColumnar(len(values), p, 1)
	for i, v := range values {
		c.insertValue(i, uint64(i)+1, v)
	}
	return c
}

// Len implements gossip.ColumnarAgent.
func (c *Columnar) Len() int { return len(c.bins) / c.params.Bins }

// Bit reports whether host id's sketch bit at pos is set.
func (c *Columnar) Bit(id gossip.NodeID, pos sketch.Position) bool {
	return c.bins[int(id)*c.params.Bins+pos.Bin]&(1<<uint(pos.Level)) != 0
}

// BeginRange implements gossip.ColumnarAgent; like Node.BeginRound it
// has nothing to reset — the sketch only ever accumulates.
func (c *Columnar) BeginRange(rc *gossip.ColRound, lo, hi int) {}

// EmitRange implements gossip.ColumnarAgent: snapshot each live host's
// bins into the shadow block (the columnar form of the classic path's
// cloned payload), then address one payload-free message to a random
// peer. Isolated hosts emit nothing, as in Node.Emit.
func (c *Columnar) EmitRange(rc *gossip.ColRound, lo, hi int) {
	alive := rc.Alive
	out := rc.Out
	m := c.params.Bins
	for i := lo; i < hi; i++ {
		if !alive[i] {
			continue
		}
		id := gossip.NodeID(i)
		peer, ok := rc.Pick(id)
		if !ok {
			continue
		}
		copy(c.shadow[i*m:(i+1)*m], c.bins[i*m:(i+1)*m])
		out = append(out, gossip.ColMsg{To: peer, From: id})
	}
	rc.Out = out
}

// Deliver implements gossip.ColumnarAgent: OR the emitter's shadow
// bins into the destination's live bins — order-insensitive and
// idempotent, exactly Node.Receive's merge.
func (c *Columnar) Deliver(rc *gossip.ColRound, msgs []gossip.ColMsg) {
	m := c.params.Bins
	for _, msg := range msgs {
		dst := c.bins[int(msg.To)*m : (int(msg.To)+1)*m]
		src := c.shadow[int(msg.From)*m : (int(msg.From)+1)*m]
		for j, b := range src {
			dst[j] |= b
		}
	}
}

// EndRange implements gossip.ColumnarAgent; estimates are derived on
// demand, as on the classic path.
func (c *Columnar) EndRange(rc *gossip.ColRound, lo, hi int) {}

// ExchangePairs implements gossip.ColExchanger: mutual OR-merge, after
// which both ends' sketches are identical (Node.Exchange).
func (c *Columnar) ExchangePairs(rc *gossip.ColRound, pairs []gossip.Pair) {
	m := c.params.Bins
	for _, pr := range pairs {
		a := c.bins[int(pr.A)*m : (int(pr.A)+1)*m]
		b := c.bins[int(pr.B)*m : (int(pr.B)+1)*m]
		for j := range a {
			a[j] |= b[j]
			b[j] = a[j]
		}
	}
}

// Estimate implements gossip.ColumnarAgent: m·2^avg(R)/ϕ over host
// id's bins, divided by the identifier scale — the same arithmetic, in
// the same order, as sketch.Estimate followed by Node.Estimate.
func (c *Columnar) Estimate(id gossip.NodeID) (float64, bool) {
	m := c.params.Bins
	row := c.bins[int(id)*m : (int(id)+1)*m]
	empty := true
	for _, b := range row {
		if b != 0 {
			empty = false
			break
		}
	}
	if empty {
		return 0, true
	}
	var sum int
	for _, v := range row {
		r := bits.TrailingZeros64(^v)
		if r > c.params.Levels {
			r = c.params.Levels
		}
		sum += r
	}
	avgR := float64(sum) / float64(m)
	return float64(m) * math.Exp2(avgR) / sketch.Phi / c.scale, true
}
