package sketchreset

import (
	"math"
	"testing"

	"dynagg/internal/env"
	"dynagg/internal/failure"
	"dynagg/internal/gossip"
	"dynagg/internal/sketch"
)

// Long-run stability under continuous churn: the count estimate keeps
// tracking the live population as hosts continuously leave and rejoin.
func TestCountTracksUnderContinuousChurn(t *testing.T) {
	const (
		n      = 1500
		rounds = 150
		rate   = 0.02
	)
	run := func(noDecay bool) (worstRel float64) {
		e := env.NewUniform(n)
		agents := make([]gossip.Agent, n)
		for i := 0; i < n; i++ {
			agents[i] = New(gossip.NodeID(i), Config{
				Params: sketch.DefaultParams, Identifiers: 1, NoDecay: noDecay,
			})
		}
		engine, err := gossip.NewEngine(gossip.Config{
			Env: e, Agents: agents, Model: gossip.PushPull, Seed: 51,
			BeforeRound: []gossip.Hook{failure.Churn(20, rate, e.Population, 53)},
			AfterRound: []gossip.Hook{func(round int, eng *gossip.Engine) {
				if round < 40 { // let the protocol settle into the churn regime
					return
				}
				truth := float64(e.Population.AliveCount())
				var sum float64
				cnt := 0
				for _, est := range eng.Estimates() {
					sum += est
					cnt++
				}
				if cnt == 0 {
					return
				}
				rel := math.Abs(sum/float64(cnt)-truth) / truth
				if rel > worstRel {
					worstRel = rel
				}
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		engine.Run(rounds)
		return worstRel
	}

	dynamic := run(false)
	static := run(true)
	// FM noise is ±10%; churn detection lag (the f(k) aging delay) adds
	// a transient factor on top. The estimate must stay inside a
	// factor-of-two band at all times — the failure mode being excluded
	// is the static sketch's drift toward counting everyone who ever
	// participated (≈ 100% error once churn halves the population).
	if dynamic > 0.85 {
		t.Errorf("worst relative count error %v under churn, want < 0.85", dynamic)
	}
	if static < dynamic {
		t.Errorf("static sketch (worst %v) outperformed the dynamic one (%v) under churn", static, dynamic)
	}
}

// A join wave is reflected promptly: revived hosts re-pin their
// identifiers and the estimate climbs back.
func TestCountRecoversAfterRejoin(t *testing.T) {
	const n = 1500
	e := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = New(gossip.NodeID(i), Config{Params: sketch.DefaultParams, Identifiers: 1})
	}
	engine, err := gossip.NewEngine(gossip.Config{
		Env: e, Agents: agents, Model: gossip.PushPull, Seed: 61,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(20)
	for i := 0; i < n/2; i++ {
		e.Population.Fail(gossip.NodeID(i))
	}
	engine.Run(30) // decay to ~n/2
	for i := 0; i < n/2; i++ {
		e.Population.Revive(gossip.NodeID(i))
	}
	engine.Run(20) // re-flood to ~n
	var mean float64
	ests := engine.Estimates()
	for _, v := range ests {
		mean += v
	}
	mean /= float64(len(ests))
	if math.Abs(mean-n) > 0.4*n {
		t.Errorf("estimate %v after rejoin, want ≈ %d", mean, n)
	}
}
