package sketchreset

import (
	"dynagg/internal/gossip"
	"dynagg/internal/wire"
)

// WireKindSketchReset tags Count-Sketch-Reset records in live columnar
// batches.
const WireKindSketchReset uint8 = 4

// WireKind implements the live engine's ColumnarProtocol wire hooks.
func (c *Columnar) WireKind() uint8 { return WireKindSketchReset }

// AppendWire appends message m's payload: the run-length encoding of
// the emitter's start-of-round age matrix. In-process columnar runs
// carry no payload at all (Deliver reads the shadow block directly),
// but across a transport the matrix must travel — this is the classic
// path's snapshot payload, RLE'd per the paper's §IV-B sizes.
//
// The read of shadow[m.From] is only valid in the emitting shard's own
// tick, immediately after EmitRange snapshotted it — exactly when the
// live engine calls AppendWire.
func (c *Columnar) AppendWire(dst []byte, m gossip.ColMsg) []byte {
	from := int(m.From)
	return wire.AppendCounters(dst, c.shadow[from*c.stride:(from+1)*c.stride])
}

// DeliverWire min-merges one received matrix straight into host to's
// live block — wire.DecodeCountersMin is DeliverFrom with the wire as
// the source, no intermediate matrix. to's owned indices are pinned to
// zero and a min can never raise them, so no re-pin is needed; a
// record delayed in flight carries ages a few ticks stale, which only
// weakens its min contribution (the same grace the classic queue gives
// payloads).
func (c *Columnar) DeliverWire(to gossip.NodeID, src []byte) ([]byte, error) {
	dst := c.counters[int(to)*c.stride : (int(to)+1)*c.stride]
	return wire.DecodeCountersMin(dst, src)
}
