// Package sketchreset implements the paper's second contribution:
// Count-Sketch-Reset (§IV, Figure 5), a dynamic counting protocol.
//
// Where Sketch-Count stores a bit per (bin, level), Count-Sketch-Reset
// stores a saturating *age counter* N[n][k]:
//
//   - a host that owns index (n, k) — chosen per the standard FM
//     distributions — pins its counter at 0, sourcing the bit;
//   - every other counter is incremented each round and min-merged on
//     gossip, so a counter's value tracks the gossip distance to the
//     nearest live source of that bit;
//   - a bit is considered set iff its counter is at or below a cutoff
//     f(k). Under uniform gossip the maximum counter of a still-sourced
//     bit is bounded with high probability by a linear function of k —
//     the paper derives f(k) = 7 + k/4 experimentally (Figure 6) —
//     *independent of network size*, because bit k has ~n/2^(k+1)
//     sources and propagation time grows with the log of the source
//     fraction, not of n.
//
// When every host sourcing a bit departs, the bit's minimum counter
// starts advancing one per round, crosses the cutoff, and the bit ages
// out: the count estimate decays back to the live population. This is
// what the static sketch cannot do.
//
// Setting NoDecay (cutoff = ∞) reproduces static Sketch-Count behaviour
// on the same code path — Figure 9's "propagation limiting off" line.
package sketchreset

import (
	"fmt"
	"math"

	"dynagg/internal/gossip"
	"dynagg/internal/sketch"
	"dynagg/internal/xrand"
)

// Never is the counter sentinel meaning "no source ever heard from":
// the initialization value ∞ of Figure 5. Real ages saturate at
// MaxAge so they can never be confused with Never.
const (
	Never  = uint8(255)
	MaxAge = uint8(254)
)

// DefaultCutoff is the paper's experimentally derived maximum
// propagation age for bit k under uniform gossip: f(k) = 7 + k/4.
func DefaultCutoff(k int) float64 { return 7 + float64(k)/4 }

// Config configures a Count-Sketch-Reset host.
type Config struct {
	// Params sizes the underlying sketch (bins m × levels L).
	Params sketch.Params
	// Cutoff is f(k); nil selects DefaultCutoff.
	Cutoff func(k int) float64
	// Identifiers is how many identifiers the host registers: 1 to
	// count hosts, the host's value to sum values (§IV-B multiple
	// insertions), or a constant c to sharpen small-network estimates
	// (the trace runs use 100; Estimate divides by Scale below).
	Identifiers int
	// Scale divides the raw estimate; set to Identifiers when using
	// per-host identifier inflation, or 1 for sums. Zero means 1.
	Scale float64
	// NoDecay disables aging (cutoff = ∞): static Sketch-Count
	// semantics for baseline comparison.
	NoDecay bool
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.Identifiers < 0 {
		return fmt.Errorf("sketchreset: negative Identifiers %d", c.Identifiers)
	}
	return nil
}

// Node is one Count-Sketch-Reset host. Its gossip payload is the full
// counter matrix.
type Node struct {
	id  gossip.NodeID
	cfg Config

	// counters is the m×L age matrix, flattened bin-major.
	counters []uint8
	// owned marks the indices this host sources (pinned to 0).
	owned []int32

	cutoff []float64 // precomputed f(k) per level

	// snap is the reusable snapshot sent by EmitAppend; its Ages
	// buffer is allocated lazily and rewritten every round.
	snap Counters

	est    float64
	hasEst bool
}

// Counters is the gossiped age-counter payload of EmitAppend: a
// snapshot of the m×L matrix taken at emission time, wrapped in a
// struct so a pointer to it crosses the Envelope.Payload interface
// without boxing a slice header.
type Counters struct {
	Ages []uint8
}

var (
	_ gossip.Agent         = (*Node)(nil)
	_ gossip.Exchanger     = (*Node)(nil)
	_ gossip.AppendEmitter = (*Node)(nil)
)

// New returns a Count-Sketch-Reset host. Identifier placement is
// deterministic per (host id, identifier index), matching the FM
// distributions.
func New(id gossip.NodeID, cfg Config) *Node {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Cutoff == nil {
		cfg.Cutoff = DefaultCutoff
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	p := cfg.Params
	n := &Node{
		id:       id,
		cfg:      cfg,
		counters: make([]uint8, p.Bins*p.Levels),
		cutoff:   make([]float64, p.Levels),
	}
	for i := range n.counters {
		n.counters[i] = Never
	}
	for k := 0; k < p.Levels; k++ {
		if cfg.NoDecay {
			n.cutoff[k] = math.Inf(1)
		} else {
			n.cutoff[k] = cfg.Cutoff(k)
		}
	}
	seen := make(map[int32]bool)
	for j := 0; j < cfg.Identifiers; j++ {
		pos := p.Place((uint64(id)+1)<<20 | uint64(j))
		idx := int32(pos.Bin*p.Levels + pos.Level)
		if !seen[idx] {
			seen[idx] = true
			n.owned = append(n.owned, idx)
		}
		n.counters[idx] = 0
	}
	n.refreshEstimate()
	return n
}

// ID returns the host id.
func (n *Node) ID() gossip.NodeID { return n.id }

// Owned returns the number of distinct (bin, level) indices this host
// sources.
func (n *Node) Owned() int { return len(n.owned) }

// CounterAt returns the age counter at (bin, level).
func (n *Node) CounterAt(bin, level int) uint8 {
	return n.counters[bin*n.cfg.Params.Levels+level]
}

// BeginRound implements gossip.Agent: age every counter the host does
// not source (Figure 5 step 2).
func (n *Node) BeginRound(round int) {
	n.age()
}

// age increments all non-owned counters, saturating at MaxAge.
func (n *Node) age() {
	for i, c := range n.counters {
		if c < MaxAge {
			n.counters[i] = c + 1
		}
	}
	// Owned counters are pinned back to zero (cheaper than testing
	// ownership in the hot loop).
	for _, idx := range n.owned {
		n.counters[idx] = 0
	}
}

// Emit implements gossip.Agent: the aged counter matrix goes to one
// random peer (Figure 5 step 3; the self-copy is the identity under
// min-merge and is elided).
func (n *Node) Emit(round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	peer, ok := pick()
	if !ok {
		return nil
	}
	snapshot := make([]uint8, len(n.counters))
	copy(snapshot, n.counters)
	return []gossip.Envelope{{To: peer, Payload: snapshot}}
}

// EmitAppend implements gossip.AppendEmitter: the same emission, but
// the snapshot is copied into a per-host buffer reused across rounds
// instead of freshly allocated — zero steady-state allocation.
func (n *Node) EmitAppend(dst []gossip.Envelope, round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	peer, ok := pick()
	if !ok {
		return dst
	}
	if n.snap.Ages == nil {
		n.snap.Ages = make([]uint8, len(n.counters))
	}
	copy(n.snap.Ages, n.counters)
	return append(dst, gossip.Envelope{To: peer, Payload: &n.snap})
}

// Receive implements gossip.Agent: element-wise min (Figure 5 step 5).
// Min-merge is order-insensitive and idempotent, so merging on arrival
// is safe under the engine's emit-then-deliver ordering. Both the
// boxed []uint8 of Emit and the scratch-backed *Counters of EmitAppend
// are accepted.
func (n *Node) Receive(payload any) {
	switch p := payload.(type) {
	case *Counters:
		n.minMerge(p.Ages)
	case []uint8:
		n.minMerge(p)
	default:
		panic(fmt.Sprintf("sketchreset: unexpected payload %T", payload))
	}
}

func (n *Node) minMerge(other []uint8) {
	// A matrix of the wrong shape can only come from the network (a
	// peer configured with different sketch.Params, or a forged
	// datagram); merging it would be meaningless or panic, so it is
	// ignored — one more way a radio message can be lost.
	if len(other) != len(n.counters) {
		return
	}
	for i, c := range other {
		if c < n.counters[i] {
			n.counters[i] = c
		}
	}
	for _, idx := range n.owned {
		n.counters[idx] = 0
	}
}

// EndRound implements gossip.Agent (Figure 5 steps 6-7).
func (n *Node) EndRound(round int) {
	n.refreshEstimate()
}

// Exchange implements gossip.Exchanger: mutual min-merge ("the peer
// can also respond by sending its own array"), after which both
// matrices agree except at owned indices.
func (n *Node) Exchange(peer gossip.Exchanger) {
	p := peer.(*Node)
	for i := range n.counters {
		m := n.counters[i]
		if p.counters[i] < m {
			m = p.counters[i]
		}
		n.counters[i] = m
		p.counters[i] = m
	}
	for _, idx := range n.owned {
		n.counters[idx] = 0
	}
	for _, idx := range p.owned {
		p.counters[idx] = 0
	}
}

// refreshEstimate derives the bit array (bit k set iff its age is at
// or below f(k)), applies Flajolet-Martin's R per bin, and estimates
// m·2^avg(R)/ϕ, scaled by the identifier inflation factor.
func (n *Node) refreshEstimate() {
	p := n.cfg.Params
	any := false
	var sumR int
	for bin := 0; bin < p.Bins; bin++ {
		base := bin * p.Levels
		r := 0
		for k := 0; k < p.Levels; k++ {
			c := n.counters[base+k]
			if c != Never && float64(c) <= n.cutoff[k] {
				r++
				any = true
			} else {
				break
			}
		}
		// Bits beyond the first unset bit may still be set; R only
		// counts the contiguous prefix, exactly as in the bit sketch.
		sumR += r
	}
	if !any {
		n.est = 0
		n.hasEst = true
		return
	}
	avgR := float64(sumR) / float64(p.Bins)
	n.est = float64(p.Bins) * math.Exp2(avgR) / sketch.Phi / n.cfg.Scale
	n.hasEst = true
}

// Estimate implements gossip.Agent.
func (n *Node) Estimate() (float64, bool) { return n.est, n.hasEst }

// BitSet reports whether the derived bit at (bin, level) is currently
// considered set (age within cutoff).
func (n *Node) BitSet(bin, level int) bool {
	c := n.CounterAt(bin, level)
	return c != Never && float64(c) <= n.cutoff[level]
}
