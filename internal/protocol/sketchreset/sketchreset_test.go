package sketchreset

import (
	"math"
	"testing"
	"testing/quick"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/sketch"
)

var smallParams = sketch.Params{Bins: 16, Levels: 12}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Params: smallParams, Identifiers: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (Config{Params: sketch.Params{}, Identifiers: 1}).Validate(); err == nil {
		t.Error("zero params accepted")
	}
	if err := (Config{Params: smallParams, Identifiers: -1}).Validate(); err == nil {
		t.Error("negative identifiers accepted")
	}
}

func TestDefaultCutoff(t *testing.T) {
	if got := DefaultCutoff(0); got != 7 {
		t.Errorf("f(0) = %v, want 7", got)
	}
	if got := DefaultCutoff(8); got != 9 {
		t.Errorf("f(8) = %v, want 9", got)
	}
	// The paper's bound is linear in k.
	if DefaultCutoff(20)-DefaultCutoff(16) != 1 {
		t.Error("cutoff is not linear with slope 1/4")
	}
}

func TestOwnerPinsCounterAtZero(t *testing.T) {
	n := New(0, Config{Params: smallParams, Identifiers: 1})
	if n.Owned() < 1 {
		t.Fatal("host owns no index")
	}
	for r := 0; r < 10; r++ {
		n.BeginRound(r)
		n.EndRound(r)
	}
	var pinned int
	p := smallParams
	for bin := 0; bin < p.Bins; bin++ {
		for k := 0; k < p.Levels; k++ {
			if n.CounterAt(bin, k) == 0 {
				pinned++
			}
		}
	}
	if pinned != n.Owned() {
		t.Errorf("%d counters at zero, want exactly the %d owned", pinned, n.Owned())
	}
}

// Counters the host does not own advance by exactly 1 per round once
// they hold a finite age, and start at Never.
func TestUnsourcedCountersAge(t *testing.T) {
	a := New(0, Config{Params: smallParams, Identifiers: 1})
	b := New(1, Config{Params: smallParams, Identifiers: 1})
	// Find an index b owns and a does not.
	var bin, level int
	found := false
	for bi := 0; bi < smallParams.Bins && !found; bi++ {
		for k := 0; k < smallParams.Levels && !found; k++ {
			if b.CounterAt(bi, k) == 0 && a.CounterAt(bi, k) == Never {
				bin, level = bi, k
				found = true
			}
		}
	}
	if !found {
		t.Skip("hosts collided on all owned indices (improbable)")
	}
	// Deliver b's matrix to a once.
	a.BeginRound(0)
	snapshot := make([]uint8, smallParams.Bins*smallParams.Levels)
	for bi := 0; bi < smallParams.Bins; bi++ {
		for k := 0; k < smallParams.Levels; k++ {
			snapshot[bi*smallParams.Levels+k] = b.CounterAt(bi, k)
		}
	}
	a.Receive(snapshot)
	a.EndRound(0)
	age0 := a.CounterAt(bin, level)
	if age0 != 0 {
		t.Fatalf("freshly received source counter = %d, want 0", age0)
	}
	// With no further deliveries the counter advances 1 per round.
	for r := 1; r <= 5; r++ {
		a.BeginRound(r)
		a.EndRound(r)
		if got := a.CounterAt(bin, level); int(got) != r {
			t.Fatalf("counter after %d silent rounds = %d, want %d", r, got, r)
		}
	}
}

// Min-merge properties, property-tested: the merged counter is the
// element-wise minimum; merge is idempotent and commutative.
func TestMinMergeProperties(t *testing.T) {
	prop := func(xs, ys []uint8) bool {
		size := smallParams.Bins * smallParams.Levels
		mk := func(src []uint8) *Node {
			n := New(0, Config{Params: smallParams, Identifiers: 0})
			buf := make([]uint8, size)
			for i := range buf {
				if i < len(src) {
					buf[i] = src[i]
				} else {
					buf[i] = Never
				}
			}
			n.Receive(buf)
			return n
		}
		na := mk(xs)
		nb := mk(ys)
		// Merge b into a, then b into a again (idempotence) and a's
		// original payload into b (commutativity).
		bufB := make([]uint8, size)
		bufA := make([]uint8, size)
		for bin := 0; bin < smallParams.Bins; bin++ {
			for k := 0; k < smallParams.Levels; k++ {
				i := bin*smallParams.Levels + k
				bufB[i] = nb.CounterAt(bin, k)
				bufA[i] = na.CounterAt(bin, k)
			}
		}
		na.Receive(bufB)
		na.Receive(bufB)
		nb.Receive(bufA)
		for bin := 0; bin < smallParams.Bins; bin++ {
			for k := 0; k < smallParams.Levels; k++ {
				i := bin*smallParams.Levels + k
				want := bufA[i]
				if bufB[i] < want {
					want = bufB[i]
				}
				if na.CounterAt(bin, k) != want || nb.CounterAt(bin, k) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Exchange leaves both matrices identical except at owned indices,
// which re-pin to zero.
func TestExchangeSymmetric(t *testing.T) {
	a := New(0, Config{Params: smallParams, Identifiers: 1})
	b := New(1, Config{Params: smallParams, Identifiers: 1})
	a.BeginRound(0)
	b.BeginRound(0)
	a.Exchange(b)
	for bin := 0; bin < smallParams.Bins; bin++ {
		for k := 0; k < smallParams.Levels; k++ {
			ca, cb := a.CounterAt(bin, k), b.CounterAt(bin, k)
			if ca != cb && ca != 0 && cb != 0 {
				t.Errorf("counters differ at (%d,%d): %d vs %d", bin, k, ca, cb)
			}
		}
	}
}

func buildNetwork(t *testing.T, n int, cfg Config, seed uint64) (*gossip.Engine, *env.Uniform) {
	t.Helper()
	e := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = New(gossip.NodeID(i), cfg)
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: gossip.PushPull, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return engine, e
}

func TestCountConverges(t *testing.T) {
	const n = 2000
	engine, _ := buildNetwork(t, n, Config{Params: sketch.DefaultParams, Identifiers: 1}, 1)
	engine.Run(25)
	est, ok := engine.EstimateOf(0)
	if !ok {
		t.Fatal("no estimate")
	}
	if math.Abs(est-n) > 0.35*n {
		t.Errorf("count estimate %v, want %d ± 35%%", est, n)
	}
}

// The headline self-healing behaviour (Figure 9): after half the hosts
// fail, the estimate decays back toward the survivor count, while the
// NoDecay baseline stays at the old count.
func TestEstimateDecaysAfterFailure(t *testing.T) {
	const n = 2000
	run := func(noDecay bool) float64 {
		engine, e := buildNetwork(t, n, Config{
			Params: sketch.DefaultParams, Identifiers: 1, NoDecay: noDecay,
		}, 2)
		engine.Run(20)
		for i := 0; i < n; i += 2 {
			e.Population.Fail(gossip.NodeID(i))
		}
		engine.Run(25)
		// Mean estimate over survivors.
		ests := engine.Estimates()
		var s float64
		for _, v := range ests {
			s += v
		}
		return s / float64(len(ests))
	}
	dynamic := run(false)
	static := run(true)
	if math.Abs(dynamic-n/2) > 0.4*n/2 {
		t.Errorf("dynamic estimate %v after failure, want ≈ %d", dynamic, n/2)
	}
	if static < 0.8*n {
		t.Errorf("static estimate %v should stay near the pre-failure %d", static, n)
	}
	if dynamic > static {
		t.Errorf("dynamic estimate %v did not decay below static %v", dynamic, static)
	}
}

// Without any source, every finite counter eventually crosses the
// cutoff and the estimate collapses to zero.
func TestEstimateCollapsesWithoutSources(t *testing.T) {
	// One host with no identifiers, primed with a matrix of small ages.
	n := New(0, Config{Params: smallParams, Identifiers: 0})
	size := smallParams.Bins * smallParams.Levels
	buf := make([]uint8, size)
	n.Receive(buf) // all counters at 0: looks like a huge network
	n.EndRound(0)
	if est, _ := n.Estimate(); est <= 0 {
		t.Fatalf("primed estimate %v, want > 0", est)
	}
	for r := 1; r < 50; r++ {
		n.BeginRound(r)
		n.EndRound(r)
	}
	if est, _ := n.Estimate(); est != 0 {
		t.Errorf("estimate %v after aging out, want 0", est)
	}
}

func TestNoDecayNeverCollapses(t *testing.T) {
	n := New(0, Config{Params: smallParams, Identifiers: 0, NoDecay: true})
	buf := make([]uint8, smallParams.Bins*smallParams.Levels)
	n.Receive(buf)
	n.EndRound(0)
	before, _ := n.Estimate()
	for r := 1; r < 100; r++ {
		n.BeginRound(r)
		n.EndRound(r)
	}
	after, _ := n.Estimate()
	if after != before {
		t.Errorf("NoDecay estimate changed %v -> %v", before, after)
	}
}

func TestIdentifierInflationAndScale(t *testing.T) {
	const n = 30
	engine, _ := buildNetwork(t, n, Config{
		Params: sketch.DefaultParams, Identifiers: 100, Scale: 100,
	}, 3)
	engine.Run(15)
	est, _ := engine.EstimateOf(0)
	if math.Abs(est-n) > 0.5*n {
		t.Errorf("inflated estimate %v, want ≈ %d", est, n)
	}
}

// Counters saturate at MaxAge rather than wrapping to a live value.
func TestCounterSaturation(t *testing.T) {
	n := New(0, Config{Params: smallParams, Identifiers: 0})
	buf := make([]uint8, smallParams.Bins*smallParams.Levels)
	for i := range buf {
		buf[i] = MaxAge - 1
	}
	n.Receive(buf)
	for r := 0; r < 5; r++ {
		n.BeginRound(r)
		n.EndRound(r)
	}
	for bin := 0; bin < smallParams.Bins; bin++ {
		for k := 0; k < smallParams.Levels; k++ {
			if c := n.CounterAt(bin, k); c != MaxAge {
				t.Fatalf("counter at (%d,%d) = %d, want saturated %d", bin, k, c, MaxAge)
			}
		}
	}
}

// Never is distinguishable from saturation: untouched counters stay at
// Never and never contribute a set bit.
func TestNeverCountersStayNever(t *testing.T) {
	n := New(0, Config{Params: smallParams, Identifiers: 0})
	for r := 0; r < 10; r++ {
		n.BeginRound(r)
		n.EndRound(r)
	}
	for bin := 0; bin < smallParams.Bins; bin++ {
		for k := 0; k < smallParams.Levels; k++ {
			if n.BitSet(bin, k) {
				t.Fatalf("bit (%d,%d) set with no sources ever", bin, k)
			}
		}
	}
	if est, ok := n.Estimate(); !ok || est != 0 {
		t.Errorf("estimate = %v, %v; want 0, true", est, ok)
	}
}

// Estimates are always finite and non-negative, whatever garbage
// arrives.
func TestEstimateFiniteNonNegative(t *testing.T) {
	prop := func(raw []uint8) bool {
		n := New(0, Config{Params: smallParams, Identifiers: 1})
		size := smallParams.Bins * smallParams.Levels
		buf := make([]uint8, size)
		copy(buf, raw)
		n.Receive(buf)
		n.EndRound(0)
		est, ok := n.Estimate()
		return ok && !math.IsNaN(est) && !math.IsInf(est, 0) && est >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCustomCutoff(t *testing.T) {
	calls := 0
	cut := func(k int) float64 { calls++; return 100 }
	New(0, Config{Params: smallParams, Identifiers: 1, Cutoff: cut})
	if calls != smallParams.Levels {
		t.Errorf("cutoff evaluated %d times, want once per level (%d)", calls, smallParams.Levels)
	}
}

// A counter matrix of the wrong length can only arrive over a network
// transport (mis-configured peer or forged datagram); min-merging it
// would index out of range, so Receive must ignore it like any other
// lost message.
func TestReceiveIgnoresMismatchedMatrixLength(t *testing.T) {
	n := New(0, Config{Params: sketch.Params{Bins: 4, Levels: 8}, Identifiers: 1})
	before, _ := n.Estimate()
	n.Receive(make([]uint8, 4096))
	n.Receive([]uint8{0})
	if after, _ := n.Estimate(); after != before {
		t.Errorf("mismatched matrix changed the estimate %v -> %v", before, after)
	}
}
