package sketchreset

import (
	"testing"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
	"dynagg/internal/sketch"
)

// BenchmarkRound measures one push/pull Count-Sketch-Reset round over
// 2,000 hosts with the paper's 64×24 sketch — the protocol's gossip
// payload is the full counter matrix, so this dominates the cost of
// the counting experiments.
func BenchmarkRound(b *testing.B) {
	const n = 2000
	e := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = New(gossip.NodeID(i), Config{Params: sketch.DefaultParams, Identifiers: 1})
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: gossip.PushPull, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Step()
	}
}

// BenchmarkMinMerge measures a single counter-matrix min-merge.
func BenchmarkMinMerge(b *testing.B) {
	n1 := New(0, Config{Params: sketch.DefaultParams, Identifiers: 1})
	other := make([]uint8, sketch.DefaultParams.Bins*sketch.DefaultParams.Levels)
	for i := range other {
		other[i] = uint8(i % 250)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n1.minMerge(other)
	}
}

// BenchmarkEstimate measures deriving the bit array and FM estimate
// from the counter matrix.
func BenchmarkEstimate(b *testing.B) {
	n1 := New(0, Config{Params: sketch.DefaultParams, Identifiers: 1})
	buf := make([]uint8, sketch.DefaultParams.Bins*sketch.DefaultParams.Levels)
	for i := range buf {
		buf[i] = uint8(i % 12)
	}
	n1.Receive(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n1.refreshEstimate()
	}
}
