package sketchreset

import (
	"math"

	"dynagg/internal/gossip"
	"dynagg/internal/sketch"
)

// Columnar is the struct-of-arrays form of Count-Sketch-Reset: the
// whole population's m×L age matrices live in ONE flat []uint8 block
// (host-major, bin-major within a host) instead of one heap slice per
// host, and the round phases run as flat loops over it
// (gossip.ColumnarAgent). Gossip messages carry no payload at all on
// the columnar plane — Deliver min-merges the emitter's start-of-round
// block (double-buffered in shadow) into the destination's block,
// which is exactly what the classic path's snapshot payloads did, one
// cache-hostile allocation at a time.
//
// Push/pull is supported through gossip.ColExchanger: each pair
// min-merges the two live blocks into each other and re-pins both
// ends' owned indices, exactly Node.Exchange.
//
// Byte-identical to a population of *Node agents on the classic path:
// identifier placement, aging, cutoffs, and estimates all match.
type Columnar struct {
	cfg    Config
	stride int // counters per host = Bins*Levels

	// counters is the population age block; host i's matrix is
	// counters[i*stride : (i+1)*stride].
	counters []uint8
	// shadow double-buffers the post-age state each round so merges
	// read every emitter's start-of-round matrix regardless of
	// delivery order.
	shadow []uint8

	// owned is the flattened list of indices each host sources, with
	// host i's span at owned[ownedOff[i]:ownedOff[i+1]] (indices are
	// host-relative).
	owned    []int32
	ownedOff []int32

	cutoff []float64 // precomputed f(k) per level
	est    []float64
}

var _ gossip.ColExchanger = (*Columnar)(nil)

// NewColumnar returns the columnar population of n Count-Sketch-Reset
// hosts, all sharing cfg. Identifier placement matches New exactly:
// deterministic per (host id, identifier index).
func NewColumnar(n int, cfg Config) *Columnar {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Cutoff == nil {
		cfg.Cutoff = DefaultCutoff
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	p := cfg.Params
	stride := p.Bins * p.Levels
	c := &Columnar{
		cfg:      cfg,
		stride:   stride,
		counters: make([]uint8, n*stride),
		shadow:   make([]uint8, n*stride),
		cutoff:   make([]float64, p.Levels),
		ownedOff: make([]int32, n+1),
		est:      make([]float64, n),
	}
	for i := range c.counters {
		c.counters[i] = Never
	}
	for k := 0; k < p.Levels; k++ {
		if cfg.NoDecay {
			c.cutoff[k] = math.Inf(1)
		} else {
			c.cutoff[k] = cfg.Cutoff(k)
		}
	}
	for id := 0; id < n; id++ {
		base := id * stride
		start := len(c.owned)
		for j := 0; j < cfg.Identifiers; j++ {
			pos := p.Place((uint64(id)+1)<<20 | uint64(j))
			idx := int32(pos.Bin*p.Levels + pos.Level)
			dup := false
			for _, o := range c.owned[start:] {
				if o == idx {
					dup = true
					break
				}
			}
			if !dup {
				c.owned = append(c.owned, idx)
			}
			c.counters[base+int(idx)] = 0
		}
		c.ownedOff[id+1] = int32(len(c.owned))
		c.refreshEstimate(id)
	}
	return c
}

// Len implements gossip.ColumnarAgent.
func (c *Columnar) Len() int { return len(c.est) }

// Owned returns the number of distinct (bin, level) indices host id
// sources.
func (c *Columnar) Owned(id gossip.NodeID) int {
	return int(c.ownedOff[id+1] - c.ownedOff[id])
}

// CounterAt returns host id's age counter at (bin, level).
func (c *Columnar) CounterAt(id gossip.NodeID, bin, level int) uint8 {
	return c.counters[int(id)*c.stride+bin*c.cfg.Params.Levels+level]
}

// BeginRange implements gossip.ColumnarAgent: age every counter each
// live host does not source (Figure 5 step 2), pinning owned indices
// back to zero.
func (c *Columnar) BeginRange(rc *gossip.ColRound, lo, hi int) {
	alive := rc.Alive
	for i := lo; i < hi; i++ {
		if !alive[i] {
			continue
		}
		block := c.counters[i*c.stride : (i+1)*c.stride]
		for j, v := range block {
			if v < MaxAge {
				block[j] = v + 1
			}
		}
		for _, idx := range c.owned[c.ownedOff[i]:c.ownedOff[i+1]] {
			block[idx] = 0
		}
	}
}

// EmitRange implements gossip.ColumnarAgent: snapshot each live
// host's aged matrix into the shadow block (the columnar form of the
// classic path's per-message snapshot payload), then address one
// payload-free message to a random peer. Isolated hosts emit nothing,
// as in Node.Emit.
func (c *Columnar) EmitRange(rc *gossip.ColRound, lo, hi int) {
	alive := rc.Alive
	out := rc.Out
	for i := lo; i < hi; i++ {
		if !alive[i] {
			continue
		}
		id := gossip.NodeID(i)
		peer, ok := rc.Pick(id)
		if !ok {
			continue
		}
		c.Snapshot(id)
		out = append(out, gossip.ColMsg{To: peer, From: id})
	}
	rc.Out = out
}

// Snapshot copies host id's live matrix into the shadow block — the
// columnar form of the classic path's per-message snapshot payload.
// Composite protocols (invertavg, multi) that drive their own emission
// loop call it before addressing a payload-free message From id.
func (c *Columnar) Snapshot(id gossip.NodeID) {
	copy(c.shadow[int(id)*c.stride:(int(id)+1)*c.stride], c.counters[int(id)*c.stride:(int(id)+1)*c.stride])
}

// Deliver implements gossip.ColumnarAgent: element-wise min of the
// emitter's shadow block into the destination's live block (Figure 5
// step 5). The destination's owned indices were pinned to zero in
// BeginRange and a min can never raise them, so no re-pin is needed —
// the result is bit-for-bit what Node.minMerge produces.
func (c *Columnar) Deliver(rc *gossip.ColRound, msgs []gossip.ColMsg) {
	for _, m := range msgs {
		c.DeliverFrom(m.To, m.From)
	}
}

// DeliverFrom min-merges host from's shadow (start-of-round) matrix
// into host to's live matrix — one message's worth of Deliver, exposed
// for composite protocols that route a mixed message column.
func (c *Columnar) DeliverFrom(to, from gossip.NodeID) {
	dst := c.counters[int(to)*c.stride : (int(to)+1)*c.stride]
	src := c.shadow[int(from)*c.stride : (int(from)+1)*c.stride]
	for j, v := range src {
		if v < dst[j] {
			dst[j] = v
		}
	}
}

// ExchangePairs implements gossip.ColExchanger: mutual min-merge of
// the two ends' live matrices with both owned sets re-pinned to zero
// afterwards — exactly Node.Exchange, over flat blocks.
func (c *Columnar) ExchangePairs(rc *gossip.ColRound, pairs []gossip.Pair) {
	for _, pr := range pairs {
		a := c.counters[int(pr.A)*c.stride : (int(pr.A)+1)*c.stride]
		b := c.counters[int(pr.B)*c.stride : (int(pr.B)+1)*c.stride]
		for j, av := range a {
			m := av
			if b[j] < m {
				m = b[j]
			}
			a[j] = m
			b[j] = m
		}
		for _, idx := range c.owned[c.ownedOff[pr.A]:c.ownedOff[pr.A+1]] {
			a[idx] = 0
		}
		for _, idx := range c.owned[c.ownedOff[pr.B]:c.ownedOff[pr.B+1]] {
			b[idx] = 0
		}
	}
}

// EndRange implements gossip.ColumnarAgent (Figure 5 steps 6-7).
func (c *Columnar) EndRange(rc *gossip.ColRound, lo, hi int) {
	alive := rc.Alive
	for i := lo; i < hi; i++ {
		if alive[i] {
			c.refreshEstimate(i)
		}
	}
}

// Estimate implements gossip.ColumnarAgent. Like the classic node, a
// Count-Sketch-Reset host always has an estimate (possibly 0 before
// any bit is heard).
func (c *Columnar) Estimate(id gossip.NodeID) (float64, bool) {
	return c.est[id], true
}

// BitSet reports whether host id's derived bit at (bin, level) is
// currently considered set (age within cutoff).
func (c *Columnar) BitSet(id gossip.NodeID, bin, level int) bool {
	v := c.CounterAt(id, bin, level)
	return v != Never && float64(v) <= c.cutoff[level]
}

// refreshEstimate derives the bit array, applies Flajolet-Martin's R
// per bin, and estimates m·2^avg(R)/ϕ — the same arithmetic, in the
// same order, as Node.refreshEstimate.
func (c *Columnar) refreshEstimate(i int) {
	p := c.cfg.Params
	block := c.counters[i*c.stride : (i+1)*c.stride]
	any := false
	var sumR int
	for bin := 0; bin < p.Bins; bin++ {
		base := bin * p.Levels
		r := 0
		for k := 0; k < p.Levels; k++ {
			v := block[base+k]
			if v != Never && float64(v) <= c.cutoff[k] {
				r++
				any = true
			} else {
				break
			}
		}
		sumR += r
	}
	if !any {
		c.est[i] = 0
		return
	}
	avgR := float64(sumR) / float64(p.Bins)
	c.est[i] = float64(p.Bins) * math.Exp2(avgR) / sketch.Phi / c.cfg.Scale
}
