package pushsum

import (
	"dynagg/internal/gossip"
	"dynagg/internal/wire"
)

// WireKindPushSum tags Push-Sum records in live columnar batches.
const WireKindPushSum uint8 = 1

// WireKind implements the live engine's ColumnarProtocol wire hooks.
func (c *Columnar) WireKind() uint8 { return WireKindPushSum }

// AppendWire appends message m's payload — its (w, v) mass, 16 fixed
// bytes — straight from the emission column.
func (c *Columnar) AppendWire(dst []byte, m gossip.ColMsg) []byte {
	return wire.AppendMass(dst, m.Mass.W, m.Mass.V)
}

// DeliverWire folds one received mass into host to's inbox columns —
// the columnar Deliver, off the wire. Mass folding commutes, so
// records arriving ticks late (or never) only shrink the in-flight
// mass proportionally; that is exactly the asynchrony Push-Sum
// tolerates.
func (c *Columnar) DeliverWire(to gossip.NodeID, src []byte) ([]byte, error) {
	w, v, rest, err := wire.DecodeMass(src)
	if err != nil {
		return nil, err
	}
	c.inW[to] += w
	c.inV[to] += v
	return rest, nil
}
