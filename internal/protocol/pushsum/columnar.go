package pushsum

import (
	"dynagg/internal/gossip"
)

// Columnar is the struct-of-arrays form of Push-Sum: one value owns
// the mass vectors of the entire population as dense columns and runs
// the round phases as flat loops (gossip.ColumnarAgent). Both gossip
// models are supported — push emission and the push/pull pair-batch
// exchange (gossip.ColExchanger). For the same seed and environment it
// is byte-identical to a population of *Node agents on the classic
// path — the emission order, PRNG draws, and mass fold order are the
// same, only the memory layout differs.
type Columnar struct {
	w0, v0   []float64 // construction-time mass, the Reset targets
	w, v     []float64
	inW, inV []float64
	est      []float64
	hasEst   []bool
}

var _ gossip.ColExchanger = (*Columnar)(nil)

// NewColumnar returns the columnar population with initial values vs
// and weights ws (parallel slices, one entry per host).
func NewColumnar(vs, ws []float64) *Columnar {
	if len(vs) != len(ws) {
		panic("pushsum: NewColumnar values and weights differ in length")
	}
	n := len(vs)
	c := &Columnar{
		w0:     append([]float64(nil), ws...),
		v0:     append([]float64(nil), vs...),
		w:      append([]float64(nil), ws...),
		v:      append([]float64(nil), vs...),
		inW:    make([]float64, n),
		inV:    make([]float64, n),
		est:    make([]float64, n),
		hasEst: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		c.refreshEstimate(i)
	}
	return c
}

// Reset restores host id to its construction-time mass, discarding
// everything gossip accumulated — the columnar twin of Node.Reset.
func (c *Columnar) Reset(id gossip.NodeID) {
	i := int(id)
	c.w[i], c.v[i] = c.w0[i], c.v0[i]
	c.inW[i], c.inV[i] = 0, 0
	c.hasEst[i] = false
	c.refreshEstimate(i)
}

// NewColumnarAverage returns a columnar population configured for
// network averaging: weight 1 and the host's data value, the columnar
// twin of NewAverage.
func NewColumnarAverage(values []float64) *Columnar {
	ws := make([]float64, len(values))
	for i := range ws {
		ws[i] = 1
	}
	return NewColumnar(values, ws)
}

// Len implements gossip.ColumnarAgent.
func (c *Columnar) Len() int { return len(c.w) }

// Mass returns host id's current mass vector.
func (c *Columnar) Mass(id gossip.NodeID) Mass { return Mass{W: c.w[id], V: c.v[id]} }

// BeginRange implements gossip.ColumnarAgent.
func (c *Columnar) BeginRange(rc *gossip.ColRound, lo, hi int) {
	alive := rc.Alive
	for i := lo; i < hi; i++ {
		if alive[i] {
			c.inW[i] = 0
			c.inV[i] = 0
		}
	}
}

// EmitRange implements gossip.ColumnarAgent: half the mass to a
// random peer, half to self, in the same peer-then-self order as
// Node.Emit so delivery folds stay byte-identical.
func (c *Columnar) EmitRange(rc *gossip.ColRound, lo, hi int) {
	alive := rc.Alive
	out := rc.Out
	for i := lo; i < hi; i++ {
		if !alive[i] {
			continue
		}
		id := gossip.NodeID(i)
		peer, ok := rc.Pick(id)
		if !ok {
			// Isolated host: all mass returns to self.
			out = append(out, gossip.ColMsg{To: id, From: id, Mass: gossip.Mass{W: c.w[i], V: c.v[i]}})
			continue
		}
		half := gossip.Mass{W: c.w[i] / 2, V: c.v[i] / 2}
		out = append(out,
			gossip.ColMsg{To: peer, From: id, Mass: half},
			gossip.ColMsg{To: id, From: id, Mass: half},
		)
	}
	rc.Out = out
}

// Deliver implements gossip.ColumnarAgent: fold each mass into its
// destination's inbox columns, in emitter order.
func (c *Columnar) Deliver(rc *gossip.ColRound, msgs []gossip.ColMsg) {
	for _, m := range msgs {
		c.inW[m.To] += m.Mass.W
		c.inV[m.To] += m.Mass.V
	}
}

// EndRange implements gossip.ColumnarAgent. Under the push model a
// live host always receives at least its own message, so the
// classic path's received flag is constant true here. Under push/pull
// mass was updated in place by ExchangePairs and nothing was
// delivered, so only the estimate is refreshed — exactly the classic
// EndRound with received == false.
func (c *Columnar) EndRange(rc *gossip.ColRound, lo, hi int) {
	alive := rc.Alive
	if rc.Model == gossip.PushPull {
		for i := lo; i < hi; i++ {
			if alive[i] {
				c.refreshEstimate(i)
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		if !alive[i] {
			continue
		}
		c.w[i] = c.inW[i]
		c.v[i] = c.inV[i]
		c.refreshEstimate(i)
	}
}

// ExchangePairs implements gossip.ColExchanger: the push/pull
// half-difference transfer of Node.Exchange as a flat loop — after
// each pair both ends hold the mean of the two mass vectors.
func (c *Columnar) ExchangePairs(rc *gossip.ColRound, pairs []gossip.Pair) {
	for _, pr := range pairs {
		a, b := pr.A, pr.B
		mw := (c.w[a] + c.w[b]) / 2
		mv := (c.v[a] + c.v[b]) / 2
		c.w[a], c.w[b] = mw, mw
		c.v[a], c.v[b] = mv, mv
		c.refreshEstimate(int(a))
		c.refreshEstimate(int(b))
	}
}

// Estimate implements gossip.ColumnarAgent: v/w, once the weight is
// non-zero.
func (c *Columnar) Estimate(id gossip.NodeID) (float64, bool) {
	return c.est[id], c.hasEst[id]
}

func (c *Columnar) refreshEstimate(i int) {
	if c.w[i] > 1e-12 {
		c.est[i] = c.v[i] / c.w[i]
		c.hasEst[i] = true
	}
}
