package pushsum

import (
	"math"
	"testing"
	"testing/quick"

	"dynagg/internal/env"
	"dynagg/internal/gossip"
)

func buildAverage(t *testing.T, values []float64, model gossip.Model, seed uint64) (*gossip.Engine, *env.Uniform) {
	t.Helper()
	e := env.NewUniform(len(values))
	agents := make([]gossip.Agent, len(values))
	for i, v := range values {
		agents[i] = NewAverage(gossip.NodeID(i), v)
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: model, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return engine, e
}

func totalMass(engine *gossip.Engine) (w, v float64) {
	for _, a := range engine.Agents() {
		m := a.(*Node).Mass()
		w += m.W
		v += m.V
	}
	return w, v
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestConstructors(t *testing.T) {
	a := NewAverage(3, 42)
	if a.ID() != 3 {
		t.Errorf("ID = %d, want 3", a.ID())
	}
	if m := a.Mass(); m.W != 1 || m.V != 42 {
		t.Errorf("average mass = %+v, want {1 42}", m)
	}
	if est, ok := a.Estimate(); !ok || est != 42 {
		t.Errorf("initial estimate = %v, %v; want 42, true", est, ok)
	}

	c := NewCount(0, true)
	if m := c.Mass(); m.W != 1 || m.V != 1 {
		t.Errorf("initiator count mass = %+v, want {1 1}", m)
	}
	c2 := NewCount(1, false)
	if m := c2.Mass(); m.W != 0 || m.V != 1 {
		t.Errorf("non-initiator count mass = %+v, want {0 1}", m)
	}
	if _, ok := c2.Estimate(); ok {
		t.Error("zero-weight host reported an estimate")
	}

	s := NewSum(0, 7, false)
	if m := s.Mass(); m.W != 0 || m.V != 7 {
		t.Errorf("sum mass = %+v, want {0 7}", m)
	}
}

// Conservation of mass: any number of push rounds leaves Σw and Σv
// unchanged, for arbitrary initial values.
func TestConservationOfMassPush(t *testing.T) {
	prop := func(raw []int8, seed uint64) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		values := make([]float64, len(raw))
		for i, r := range raw {
			values[i] = float64(r)
		}
		e := env.NewUniform(len(values))
		agents := make([]gossip.Agent, len(values))
		for i, v := range values {
			agents[i] = NewAverage(gossip.NodeID(i), v)
		}
		engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: gossip.Push, Seed: seed})
		if err != nil {
			return false
		}
		wantW, wantV := totalMass(engine)
		engine.Run(8)
		gotW, gotV := totalMass(engine)
		return math.Abs(gotW-wantW) < 1e-6*(1+math.Abs(wantW)) &&
			math.Abs(gotV-wantV) < 1e-6*(1+math.Abs(wantV))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Conservation of mass holds under push/pull exchanges too.
func TestConservationOfMassPushPull(t *testing.T) {
	engine, _ := buildAverage(t, []float64{1, 2, 3, 4, 5, 100, -7, 0.5}, gossip.PushPull, 9)
	wantW, wantV := totalMass(engine)
	engine.Run(20)
	gotW, gotV := totalMass(engine)
	if math.Abs(gotW-wantW) > 1e-9 || math.Abs(gotV-wantV) > 1e-9 {
		t.Errorf("mass drifted: (%v,%v) -> (%v,%v)", wantW, wantV, gotW, gotV)
	}
}

func TestAverageConvergencePush(t *testing.T) {
	values := make([]float64, 200)
	for i := range values {
		values[i] = float64(i % 50)
	}
	engine, _ := buildAverage(t, values, gossip.Push, 1)
	engine.Run(40)
	truth := mean(values)
	for id, a := range engine.Agents() {
		est, ok := a.Estimate()
		if !ok {
			t.Fatalf("host %d has no estimate", id)
		}
		if math.Abs(est-truth) > 0.05 {
			t.Errorf("host %d estimate %v, want ≈ %v", id, est, truth)
		}
	}
}

func TestAverageConvergencePushPull(t *testing.T) {
	values := make([]float64, 200)
	for i := range values {
		values[i] = float64(i)
	}
	engine, _ := buildAverage(t, values, gossip.PushPull, 2)
	engine.Run(40)
	truth := mean(values)
	for id, a := range engine.Agents() {
		est, _ := a.Estimate()
		if math.Abs(est-truth) > 0.5 {
			t.Errorf("host %d estimate %v, want ≈ %v", id, est, truth)
		}
	}
}

// Push/pull should converge roughly twice as fast as push (Karp et
// al.); assert it is at least no slower at matched round counts.
func TestPushPullNoSlowerThanPush(t *testing.T) {
	values := make([]float64, 500)
	for i := range values {
		values[i] = float64(i % 100)
	}
	truth := mean(values)
	devAfter := func(model gossip.Model) float64 {
		engine, _ := buildAverage(t, values, model, 3)
		engine.Run(12)
		var worst float64
		for _, a := range engine.Agents() {
			est, _ := a.Estimate()
			if d := math.Abs(est - truth); d > worst {
				worst = d
			}
		}
		return worst
	}
	push := devAfter(gossip.Push)
	pull := devAfter(gossip.PushPull)
	if pull > push*1.5 {
		t.Errorf("push/pull worst error %v much larger than push %v", pull, push)
	}
}

func TestCountMode(t *testing.T) {
	const n = 300
	e := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	for i := 0; i < n; i++ {
		agents[i] = NewCount(gossip.NodeID(i), i == 0)
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: gossip.Push, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(60)
	for id, a := range engine.Agents() {
		est, ok := a.Estimate()
		if !ok {
			continue // hosts that never saw weight cannot estimate
		}
		if math.Abs(est-n) > 0.05*n {
			t.Errorf("host %d count estimate %v, want ≈ %d", id, est, n)
		}
	}
	if est, ok := engine.EstimateOf(0); !ok || math.Abs(est-n) > 0.05*n {
		t.Errorf("initiator estimate %v, %v; want ≈ %d", est, ok, n)
	}
}

func TestSumMode(t *testing.T) {
	const n = 300
	e := env.NewUniform(n)
	agents := make([]gossip.Agent, n)
	var want float64
	for i := 0; i < n; i++ {
		v := float64(i % 10)
		want += v
		agents[i] = NewSum(gossip.NodeID(i), v, i == 0)
	}
	engine, err := gossip.NewEngine(gossip.Config{Env: e, Agents: agents, Model: gossip.Push, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run(60)
	if est, ok := engine.EstimateOf(0); !ok || math.Abs(est-want) > 0.05*want {
		t.Errorf("sum estimate %v, %v; want ≈ %v", est, ok, want)
	}
}

// An isolated host keeps its whole mass and its estimate intact.
func TestIsolatedHostRetainsMass(t *testing.T) {
	n := NewAverage(0, 10)
	n.BeginRound(0)
	envs := n.Emit(0, nil, func() (gossip.NodeID, bool) { return 0, false })
	if len(envs) != 1 || envs[0].To != 0 {
		t.Fatalf("isolated emit = %+v, want one self-envelope", envs)
	}
	n.Receive(envs[0].Payload)
	n.EndRound(0)
	if m := n.Mass(); m.W != 1 || m.V != 10 {
		t.Errorf("mass after isolated round = %+v, want {1 10}", m)
	}
	if est, _ := n.Estimate(); est != 10 {
		t.Errorf("estimate = %v, want 10", est)
	}
}

// Exchange leaves both ends with the pairwise mean: the zero-sum
// half-difference transfer.
func TestExchangeAverages(t *testing.T) {
	a := NewAverage(0, 0)
	b := NewAverage(1, 10)
	a.Exchange(b)
	if m := a.Mass(); m.W != 1 || m.V != 5 {
		t.Errorf("a mass = %+v, want {1 5}", m)
	}
	if m := b.Mass(); m.W != 1 || m.V != 5 {
		t.Errorf("b mass = %+v, want {1 5}", m)
	}
	ea, _ := a.Estimate()
	eb, _ := b.Estimate()
	if ea != 5 || eb != 5 {
		t.Errorf("estimates after exchange = %v, %v; want 5, 5", ea, eb)
	}
}

// A host that receives nothing in a push round (and sent its mass away)
// must not fabricate mass.
func TestNoReceiptKeepsOldMass(t *testing.T) {
	n := NewAverage(0, 8)
	n.BeginRound(0)
	// Emit to a peer; self-share is not delivered in this synthetic
	// scenario (it would be in the real engine).
	_ = n.Emit(0, nil, func() (gossip.NodeID, bool) { return 1, true })
	n.EndRound(0)
	if m := n.Mass(); m.W != 1 || m.V != 8 {
		t.Errorf("mass fabricated or lost: %+v", m)
	}
}
