// Package pushsum implements Kempe, Dobra and Gehrke's Push-Sum
// protocol (FOCS'03), the static distributed-averaging baseline the
// paper extends (its Figure 1).
//
// Every host carries a mass vector (w, v). Each round it sends half of
// its mass to one random peer and half to itself, then replaces its
// mass with the sum of everything it received; v/w converges to
// Σv/Σw. With w=1 everywhere and v the host's value, the estimate is
// the network average; with v=1 everywhere and w=1 only at an
// initiator, it is the network size; with w=1 only at an initiator, it
// is the sum.
//
// The protocol relies on conservation of mass: exchanges are zero-sum,
// so the network-wide Σv and Σw never change — which is exactly what
// breaks under silent departures, motivating Push-Sum-Revert.
//
// The package also implements the push/pull exchange variant (Karp et
// al.): pairs average their mass vectors atomically, roughly halving
// convergence time.
package pushsum

import (
	"fmt"

	"dynagg/internal/gossip"
	"dynagg/internal/xrand"
)

// Mass is the (weight, value) vector gossiped by Push-Sum.
type Mass struct {
	W float64
	V float64
}

// Node is one Push-Sum host.
type Node struct {
	id     gossip.NodeID
	w0, v0 float64 // construction-time mass, the Reset target
	w, v   float64

	inW, inV float64
	received bool

	// out is the scratch payload referenced by EmitAppend envelopes;
	// it is rewritten each round after the previous round's messages
	// have been delivered.
	out Mass

	est    float64
	hasEst bool
}

var (
	_ gossip.Agent         = (*Node)(nil)
	_ gossip.Exchanger     = (*Node)(nil)
	_ gossip.AppendEmitter = (*Node)(nil)
)

// New returns a Push-Sum host with initial value v0 and weight w0.
func New(id gossip.NodeID, v0, w0 float64) *Node {
	n := &Node{id: id, w0: w0, v0: v0, w: w0, v: v0}
	n.refreshEstimate()
	return n
}

// Reset restores the host to its freshly-constructed state: all
// accumulated gossip mass is discarded and the construction-time mass
// re-sourced. It models a crashed process restarting from its local
// data value — the round-engine twin of the live cluster's
// kill-and-Replace choreography.
func (n *Node) Reset() {
	n.w, n.v = n.w0, n.v0
	n.inW, n.inV = 0, 0
	n.received = false
	n.out = Mass{}
	n.hasEst = false
	n.refreshEstimate()
}

// NewAverage returns a host configured for network averaging: weight 1
// and the host's data value.
func NewAverage(id gossip.NodeID, value float64) *Node {
	return New(id, value, 1)
}

// NewCount returns a host configured for network-size estimation:
// value 1 everywhere, weight 1 only at the initiator.
func NewCount(id gossip.NodeID, initiator bool) *Node {
	w := 0.0
	if initiator {
		w = 1
	}
	return New(id, 1, w)
}

// NewSum returns a host configured for summation: the host's value
// everywhere, weight 1 only at the initiator.
func NewSum(id gossip.NodeID, value float64, initiator bool) *Node {
	w := 0.0
	if initiator {
		w = 1
	}
	return New(id, value, w)
}

// ID returns the host id.
func (n *Node) ID() gossip.NodeID { return n.id }

// Mass returns the host's current mass vector.
func (n *Node) Mass() Mass { return Mass{W: n.w, V: n.v} }

// BeginRound implements gossip.Agent.
func (n *Node) BeginRound(round int) {
	n.inW, n.inV = 0, 0
	n.received = false
}

// Emit implements gossip.Agent: half the mass to a random peer, half
// to self (Figure 1 steps 1-2). Payloads are independent values, safe
// for asynchronous delivery (the live engine's contract).
func (n *Node) Emit(round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	half := Mass{W: n.w / 2, V: n.v / 2}
	peer, ok := pick()
	if !ok {
		// Isolated host: all mass returns to self.
		return []gossip.Envelope{{To: n.id, Payload: Mass{W: n.w, V: n.v}}}
	}
	return []gossip.Envelope{
		{To: peer, Payload: half},
		{To: n.id, Payload: half},
	}
}

// EmitAppend implements gossip.AppendEmitter: the same emission with
// round-scoped payloads pointing at per-host scratch, so the steady
// state performs no heap allocation at all.
func (n *Node) EmitAppend(dst []gossip.Envelope, round int, rng *xrand.Rand, pick gossip.PeerPicker) []gossip.Envelope {
	peer, ok := pick()
	if !ok {
		n.out = Mass{W: n.w, V: n.v}
		return append(dst, gossip.Envelope{To: n.id, Payload: &n.out})
	}
	n.out = Mass{W: n.w / 2, V: n.v / 2}
	return append(dst,
		gossip.Envelope{To: peer, Payload: &n.out},
		gossip.Envelope{To: n.id, Payload: &n.out},
	)
}

// Receive implements gossip.Agent (Figure 1 step 3). Both the boxed
// Mass of Emit and the scratch-backed *Mass of EmitAppend are
// accepted.
func (n *Node) Receive(payload any) {
	var m Mass
	switch p := payload.(type) {
	case *Mass:
		m = *p
	case Mass:
		m = p
	default:
		panic(fmt.Sprintf("pushsum: unexpected payload %T", payload))
	}
	n.inW += m.W
	n.inV += m.V
	n.received = true
}

// EndRound implements gossip.Agent (Figure 1 steps 4-6). Under the
// push model a live host always receives at least its own message;
// under push/pull mass is updated in place by Exchange and no messages
// arrive, so the inbox is ignored.
func (n *Node) EndRound(round int) {
	if n.received {
		n.w, n.v = n.inW, n.inV
	}
	n.refreshEstimate()
}

// Exchange implements gossip.Exchanger: the push/pull half-difference
// transfer, after which both ends hold the mean of the two mass
// vectors. The exchange is zero-sum, preserving conservation of mass.
func (n *Node) Exchange(peer gossip.Exchanger) {
	p := peer.(*Node)
	mw := (n.w + p.w) / 2
	mv := (n.v + p.v) / 2
	n.w, p.w = mw, mw
	n.v, p.v = mv, mv
	n.refreshEstimate()
	p.refreshEstimate()
}

// Estimate implements gossip.Agent: v/w, once the weight is non-zero.
func (n *Node) Estimate() (float64, bool) { return n.est, n.hasEst }

func (n *Node) refreshEstimate() {
	if n.w > 1e-12 {
		n.est = n.v / n.w
		n.hasEst = true
	}
}
